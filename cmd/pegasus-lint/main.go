// Command pegasus-lint mechanically enforces the repository's determinism,
// context-propagation, concurrency, and typed-error contracts (DESIGN.md,
// "Enforced invariants") with five analyzers: maporder, ctxflow, poolhold,
// typederr, atomicmix.
//
// Direct mode loads and checks packages like a multichecker:
//
//	pegasus-lint ./...
//	pegasus-lint -json ./internal/core ./internal/server
//
// It exits 0 when no diagnostics survive, 1 on a usage/load error, and 2
// when diagnostics were reported.
//
// Vet-tool mode speaks cmd/go's vet protocol, so the same analyzers run
// through the standard toolchain (and its build cache):
//
//	go vet -vettool=$(go env GOPATH)/bin/pegasus-lint ./...
//
// Suppression: a `//lint:<directive> <justification>` comment on the
// flagged line or the line above silences the diagnostic; the justification
// is mandatory. Directives: ordered (maporder), ctxflow, poolhold,
// typederr, atomicmix.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"strings"

	"pegasus/internal/lint"
	"pegasus/internal/lint/load"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	if len(args) == 1 && args[0] == "-flags" {
		return printFlags()
	}
	fs := flag.NewFlagSet("pegasus-lint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON")
	version := fs.String("V", "", "print version information (cmd/go vet protocol)")
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *version != "" {
		return printVersion()
	}
	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return vetToolMode(rest[0])
	}
	if len(rest) == 0 {
		rest = []string{"./..."}
	}
	return directMode(rest, *jsonOut)
}

// printFlags implements the `-flags` handshake: cmd/go asks a vettool for
// its flag inventory (as JSON) to validate the flags it forwards.
func printFlags() int {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	flags := []jsonFlag{
		{Name: "V", Bool: false, Usage: "print version information (cmd/go vet protocol)"},
		{Name: "json", Bool: true, Usage: "emit diagnostics as JSON"},
	}
	data, err := json.Marshal(flags)
	if err != nil {
		return 1
	}
	fmt.Println(string(data))
	return 0
}

// printVersion implements the `-V=full` handshake cmd/go performs before
// trusting a vettool: the output must parse as
// "<name> version devel ... buildID=<content-id>", where the build ID
// fingerprint keys go vet's result cache to this exact binary.
func printVersion() int {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum := sha256.Sum256(data)
			id = fmt.Sprintf("%x", sum[:16])
		}
	}
	fmt.Printf("pegasus-lint version devel buildID=%s\n", id)
	return 0
}

// directMode is the multichecker path: load packages with the standard
// toolchain and report findings.
func directMode(patterns []string, jsonOut bool) int {
	pkgs, err := load.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pegasus-lint: %v\n", err)
		return 1
	}
	findings, err := lint.Run(pkgs, lint.All())
	if err != nil {
		fmt.Fprintf(os.Stderr, "pegasus-lint: %v\n", err)
		return 1
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(os.Stderr, "pegasus-lint: %v\n", err)
			return 1
		}
	} else {
		for _, f := range findings {
			fmt.Fprintf(os.Stderr, "%s\n", f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "pegasus-lint: %d invariant violation(s)\n", len(findings))
		return 2
	}
	return 0
}

// vetConfig is the JSON unit description cmd/go hands a vettool for each
// package (the unitchecker protocol).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetToolMode analyzes one package as described by a vet .cfg file.
func vetToolMode(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pegasus-lint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "pegasus-lint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// cmd/go expects the facts output file to exist even though
	// pegasus-lint's analyzers exchange no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "pegasus-lint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	// Strip cmd/go's test-variant suffix ("pkg [pkg.test]") so package
	// scoping (maporder.Critical etc.) matches the declared import path.
	importPath := cfg.ImportPath
	if i := strings.Index(importPath, " ["); i >= 0 {
		importPath = importPath[:i]
	}
	var files []string
	for _, f := range cfg.GoFiles {
		if !filepath.IsAbs(f) {
			f = filepath.Join(cfg.Dir, f)
		}
		files = append(files, f)
	}
	fset := token.NewFileSet()
	pkg, err := load.CheckFiles(fset, importPath, files, cfg.PackageFile, cfg.ImportMap)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "pegasus-lint: %v\n", err)
		return 1
	}
	findings, err := lint.Run([]*load.Package{pkg}, lint.All())
	if err != nil {
		fmt.Fprintf(os.Stderr, "pegasus-lint: %v\n", err)
		return 1
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s\n", f)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}
