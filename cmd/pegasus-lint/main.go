// Command pegasus-lint mechanically enforces the repository's determinism,
// context-propagation, concurrency, typed-error, goroutine-accounting,
// lock-order, hot-path-allocation, and error-flow contracts (DESIGN.md,
// "Enforced invariants") with nine analyzers: atomicmix, ctxflow, goleak,
// hotalloc, lockorder, maporder, nilness, poolhold, typederr. Run
// `pegasus-lint -list` for one-line descriptions.
//
// Direct mode loads and checks packages like a multichecker (including
// `go list -test` variants, so _test.go files are covered where an
// analyzer opts in):
//
//	pegasus-lint ./...
//	pegasus-lint -json ./internal/core ./internal/server
//	pegasus-lint -unused-suppressions ./...
//	pegasus-lint -units units.json ./...
//
// With -units, packages come from a pre-computed
// `go list -export -deps -test -json=<load.ListFields>` stream instead of
// a fresh go list run; CI produces that stream once and shares the warmed
// build cache with the vettool pass.
//
// Exit codes (both modes):
//
//	0  no diagnostics survived suppression
//	1  usage, load, or internal error
//	2  diagnostics were reported
//
// Vet-tool mode speaks cmd/go's vet protocol, so the same analyzers run
// through the standard toolchain (and its build cache):
//
//	go vet -vettool=$(go env GOPATH)/bin/pegasus-lint ./...
//
// The -json output is one object:
//
//	{
//	  "findings":   [{"Analyzer": "maporder", "Pos": {...}, "Message": "..."}, ...],
//	  "suppressed": {"maporder": 3, "goleak": 1}
//	}
//
// where findings is sorted by position and suppressed counts the
// diagnostics silenced per analyzer by //lint: comments (absent analyzers
// suppressed nothing). With -unused-suppressions, findings instead lists
// stale or malformed //lint: comments (analyzer "suppressions").
//
// Suppression: a `//lint:<directive> <justification>` comment on the
// flagged line or the line above silences the diagnostic; the justification
// is mandatory. Directives: ordered (maporder), atomicmix, ctxflow, goleak,
// hotalloc, lockorder, nilness, poolhold, typederr.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"strings"

	"pegasus/internal/lint"
	"pegasus/internal/lint/load"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	if len(args) == 1 && args[0] == "-flags" {
		return printFlags()
	}
	fs := flag.NewFlagSet("pegasus-lint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit results as JSON")
	list := fs.Bool("list", false, "list the analyzers and exit")
	unused := fs.Bool("unused-suppressions", false, "flag stale //lint: comments instead of invariant violations")
	units := fs.String("units", "", "load packages from a pre-computed `go list -json` stream (file path or - for stdin)")
	version := fs.String("V", "", "print version information (cmd/go vet protocol)")
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *version != "" {
		return printVersion()
	}
	if *list {
		return printList()
	}
	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return vetToolMode(rest[0])
	}
	if len(rest) == 0 {
		rest = []string{"./..."}
	}
	return directMode(rest, *jsonOut, *unused, *units)
}

// printFlags implements the `-flags` handshake: cmd/go asks a vettool for
// its flag inventory (as JSON) to validate the flags it forwards.
func printFlags() int {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	flags := []jsonFlag{
		{Name: "V", Bool: false, Usage: "print version information (cmd/go vet protocol)"},
		{Name: "json", Bool: true, Usage: "emit results as JSON"},
		{Name: "list", Bool: true, Usage: "list the analyzers and exit"},
		{Name: "unused-suppressions", Bool: true, Usage: "flag stale //lint: comments instead of invariant violations"},
		{Name: "units", Bool: false, Usage: "load packages from a pre-computed go list -json stream"},
	}
	data, err := json.Marshal(flags)
	if err != nil {
		return 1
	}
	fmt.Println(string(data))
	return 0
}

// printVersion implements the `-V=full` handshake cmd/go performs before
// trusting a vettool: the output must parse as
// "<name> version devel ... buildID=<content-id>", where the build ID
// fingerprint keys go vet's result cache to this exact binary.
func printVersion() int {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum := sha256.Sum256(data)
			id = fmt.Sprintf("%x", sum[:16])
		}
	}
	fmt.Printf("pegasus-lint version devel buildID=%s\n", id)
	return 0
}

// printList enumerates the suite: name, suppression directive, and the
// first line of each analyzer's doc.
func printList() int {
	for _, a := range lint.All() {
		summary, _, _ := strings.Cut(a.Doc, "\n")
		fmt.Printf("%-10s //lint:%-10s %s\n", a.Name, a.DirectiveName(), summary)
	}
	return 0
}

// jsonResult is the documented -json output shape (see the package doc).
type jsonResult struct {
	Findings   []lint.Finding `json:"findings"`
	Suppressed map[string]int `json:"suppressed"`
}

// directMode is the multichecker path: load packages (test variants
// included) with the standard toolchain and report findings.
func directMode(patterns []string, jsonOut, unused bool, unitsPath string) int {
	cfg := load.Config{Dir: ".", Tests: true}
	if unitsPath != "" {
		f := os.Stdin
		if unitsPath != "-" {
			var err error
			f, err = os.Open(unitsPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "pegasus-lint: %v\n", err)
				return 1
			}
			defer f.Close()
		}
		cfg.Units = f
	}
	pkgs, err := load.LoadConfig(cfg, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pegasus-lint: %v\n", err)
		return 1
	}
	res, err := lint.Run(pkgs, lint.All())
	if err != nil {
		fmt.Fprintf(os.Stderr, "pegasus-lint: %v\n", err)
		return 1
	}
	findings := res.Findings
	noun := "invariant violation(s)"
	if unused {
		findings = res.UnusedSuppressions(pkgs, lint.All())
		noun = "stale or malformed suppression(s)"
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonResult{Findings: findings, Suppressed: res.Suppressed}); err != nil {
			fmt.Fprintf(os.Stderr, "pegasus-lint: %v\n", err)
			return 1
		}
	} else {
		for _, f := range findings {
			fmt.Fprintf(os.Stderr, "%s\n", f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "pegasus-lint: %d %s\n", len(findings), noun)
		return 2
	}
	return 0
}

// vetConfig is the JSON unit description cmd/go hands a vettool for each
// package (the unitchecker protocol).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetToolMode analyzes one package as described by a vet .cfg file.
func vetToolMode(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pegasus-lint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "pegasus-lint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// cmd/go expects the facts output file to exist even though
	// pegasus-lint's analyzers exchange no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "pegasus-lint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	// Strip cmd/go's test-variant suffix ("pkg [pkg.test]") so package
	// scoping (maporder.Critical etc.) matches the declared import path.
	importPath := cfg.ImportPath
	if i := strings.Index(importPath, " ["); i >= 0 {
		importPath = importPath[:i]
	}
	var files []string
	for _, f := range cfg.GoFiles {
		if !filepath.IsAbs(f) {
			f = filepath.Join(cfg.Dir, f)
		}
		files = append(files, f)
	}
	fset := token.NewFileSet()
	pkg, err := load.CheckFiles(fset, importPath, files, cfg.PackageFile, cfg.ImportMap)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "pegasus-lint: %v\n", err)
		return 1
	}
	res, err := lint.Run([]*load.Package{pkg}, lint.All())
	if err != nil {
		fmt.Fprintf(os.Stderr, "pegasus-lint: %v\n", err)
		return 1
	}
	for _, f := range res.Findings {
		fmt.Fprintf(os.Stderr, "%s\n", f)
	}
	if len(res.Findings) > 0 {
		return 2
	}
	return 0
}
