package main

import (
	"testing"

	"pegasus/internal/lint"
	"pegasus/internal/lint/load"
)

// TestAnalyzerSuite smoke-checks that the full analyzer set loads with
// well-formed metadata.
func TestAnalyzerSuite(t *testing.T) {
	all := lint.All()
	if len(all) != 5 {
		t.Fatalf("expected 5 analyzers, got %d", len(all))
	}
	seen := map[string]bool{}
	for _, a := range all {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v is missing name, doc, or run function", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
}

// TestRepoIsClean runs the full suite over the entire module — exactly what
// `pegasus-lint ./...` and the CI gate do — and demands zero findings. This
// is the executable form of the bootstrap guarantee: every true positive in
// the tree has been fixed or carries a justified //lint: annotation, and a
// reintroduced violation (say, an unordered map range in internal/core)
// fails this test before it ever reaches CI.
func TestRepoIsClean(t *testing.T) {
	pkgs, err := load.Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("suspiciously few packages loaded (%d); did load.Load lose the module root?", len(pkgs))
	}
	findings, err := lint.Run(pkgs, lint.All())
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
