package main

import (
	"os"
	"os/exec"
	"strings"
	"testing"

	"pegasus/internal/lint"
	"pegasus/internal/lint/load"
)

// TestAnalyzerSuite smoke-checks that the full analyzer set loads with
// well-formed metadata.
func TestAnalyzerSuite(t *testing.T) {
	all := lint.All()
	if len(all) != 9 {
		t.Fatalf("expected 9 analyzers, got %d", len(all))
	}
	seen := map[string]bool{}
	dirs := map[string]bool{}
	for _, a := range all {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v is missing name, doc, or run function", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if dirs[a.DirectiveName()] {
			t.Errorf("duplicate suppression directive %q", a.DirectiveName())
		}
		dirs[a.DirectiveName()] = true
	}
}

// loadRepo loads the whole module once per test run, test variants
// included — exactly the package set `pegasus-lint ./...` checks.
func loadRepo(t *testing.T) []*load.Package {
	t.Helper()
	pkgs, err := load.LoadConfig(load.Config{Dir: "../..", Tests: true}, "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("suspiciously few packages loaded (%d); did load.LoadConfig lose the module root?", len(pkgs))
	}
	return pkgs
}

// TestRepoIsClean runs the full suite over the entire module — exactly what
// `pegasus-lint ./...` and the CI gate do — and demands zero findings. This
// is the executable form of the bootstrap guarantee: every true positive in
// the tree has been fixed or carries a justified //lint: annotation, and a
// reintroduced violation (say, an unordered map range in internal/core, or
// an unjoined goroutine in internal/server) fails this test before it ever
// reaches CI. It also demands zero stale suppressions: an annotation whose
// diagnostic has disappeared must be deleted with the fix that removed it.
func TestRepoIsClean(t *testing.T) {
	pkgs := loadRepo(t)
	res, err := lint.Run(pkgs, lint.All())
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, f := range res.Findings {
		t.Errorf("%s", f)
	}
	for _, f := range res.UnusedSuppressions(pkgs, lint.All()) {
		t.Errorf("%s", f)
	}
}

// TestRepoCoversTestFiles pins the test-variant loading that maporder's
// _test.go coverage depends on: the loaded package set must include files
// ending in _test.go for the determinism-critical packages.
func TestRepoCoversTestFiles(t *testing.T) {
	pkgs := loadRepo(t)
	found := false
	for _, pkg := range pkgs {
		if !strings.HasPrefix(pkg.Path, "pegasus/internal/core") {
			continue
		}
		for _, f := range pkg.Files {
			name := pkg.Fset.Position(f.FileStart).Filename
			if strings.HasSuffix(name, "_test.go") {
				found = true
			}
		}
	}
	if !found {
		t.Error("no _test.go files loaded for pegasus/internal/core; test-variant loading is broken and maporder's test coverage is gone")
	}
}

// TestUnitsMode pins the shared-loader path: packages decoded from a
// pre-computed `go list -json` stream must produce the same package set as
// a fresh go list run.
func TestUnitsMode(t *testing.T) {
	raw := goListRaw(t, "../..", "-e=false", "-export", "-deps", "-test",
		"-json="+load.ListFields, "--", "./internal/lint/...")
	fromUnits, err := load.LoadConfig(load.Config{Units: strings.NewReader(raw)})
	if err != nil {
		t.Fatalf("loading from units: %v", err)
	}
	fresh, err := load.LoadConfig(load.Config{Dir: "../..", Tests: true}, "./internal/lint/...")
	if err != nil {
		t.Fatalf("loading fresh: %v", err)
	}
	if len(fromUnits) != len(fresh) {
		t.Fatalf("units path loaded %d packages, fresh load %d", len(fromUnits), len(fresh))
	}
	for i := range fresh {
		if fromUnits[i].Path != fresh[i].Path {
			t.Errorf("package %d: units %q != fresh %q", i, fromUnits[i].Path, fresh[i].Path)
		}
	}
}

func goListRaw(t *testing.T, dir string, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("go list %v: %v", args, err)
	}
	return string(out)
}

// TestListFlag pins the -list output: every analyzer appears with its
// directive and a one-line summary.
func TestListFlag(t *testing.T) {
	out := captureStdout(t, func() {
		if code := run([]string{"-list"}); code != 0 {
			t.Fatalf("pegasus-lint -list exited %d", code)
		}
	})
	for _, a := range lint.All() {
		if !strings.Contains(out, a.Name) {
			t.Errorf("-list output is missing analyzer %q:\n%s", a.Name, out)
		}
		if !strings.Contains(out, "//lint:"+a.DirectiveName()) {
			t.Errorf("-list output is missing directive for %q", a.Name)
		}
	}
}

func captureStdout(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string, 1)
	go func() {
		buf := make([]byte, 0, 4096)
		tmp := make([]byte, 4096)
		for {
			n, err := r.Read(tmp)
			buf = append(buf, tmp[:n]...)
			if err != nil {
				break
			}
		}
		done <- string(buf)
	}()
	fn()
	w.Close()
	os.Stdout = old
	out := <-done
	r.Close()
	return out
}
