package main

import (
	"testing"

	"pegasus"
)

func TestToFloats(t *testing.T) {
	f := toFloats([]int32{0, 5, -1})
	if len(f) != 3 || f[1] != 5 || f[2] != -1 {
		t.Fatalf("toFloats = %v", f)
	}
}

func TestClip(t *testing.T) {
	ns := []pegasus.NodeID{1, 2, 3, 4}
	if got := clip(ns, 2); len(got) != 2 {
		t.Fatalf("clip = %v", got)
	}
	if got := clip(ns, 10); len(got) != 4 {
		t.Fatalf("clip oversized = %v", got)
	}
}
