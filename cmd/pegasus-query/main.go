// Command pegasus-query answers node-similarity queries on a saved summary
// graph and (optionally) compares them with exact answers on the original
// graph.
//
// Usage:
//
//	pegasus-query -summary s.bin -type rwr -node 42
//	pegasus-query -summary s.bin -graph g.txt -type hop -node 42 -top 10
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"pegasus"
)

func main() {
	var (
		sumPath = flag.String("summary", "", "summary file written by the pegasus tool (required)")
		gPath   = flag.String("graph", "", "original edge list; enables accuracy comparison")
		qtype   = flag.String("type", "rwr", "query type: rwr | hop | php | neighbors")
		node    = flag.Uint("node", 0, "query node")
		top     = flag.Int("top", 10, "print the top-k results")
	)
	flag.Parse()
	if *sumPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	s, err := pegasus.LoadSummary(*sumPath)
	if err != nil {
		fatal("load summary: %v", err)
	}
	q := pegasus.NodeID(*node)

	var approx []float64
	switch *qtype {
	case "neighbors":
		ns := s.Neighbors(q)
		fmt.Printf("approximate neighbors of %d (%d): %v\n", q, len(ns), clip(ns, *top))
		return
	case "rwr":
		approx, err = pegasus.SummaryRWR(s, q, pegasus.RWRConfig{})
	case "hop":
		var d []int32
		d, err = pegasus.SummaryHOP(s, q)
		if err == nil {
			approx = toFloats(pegasus.FillUnreached(d, int32(s.NumNodes())))
		}
	case "php":
		approx, err = pegasus.SummaryPHP(s, q, pegasus.PHPConfig{})
	default:
		fatal("unknown query type %q", *qtype)
	}
	if err != nil {
		fatal("query: %v", err)
	}
	printTop(*qtype+" (approximate)", approx, *top)

	if *gPath != "" {
		g, err := pegasus.LoadGraph(*gPath)
		if err != nil {
			fatal("load graph: %v", err)
		}
		var exact []float64
		switch *qtype {
		case "rwr":
			exact, err = pegasus.GraphRWR(g, q, pegasus.RWRConfig{})
		case "hop":
			var d []int32
			d, err = pegasus.GraphHOP(g, q)
			if err == nil {
				exact = toFloats(pegasus.FillUnreached(d, int32(g.NumNodes())))
			}
		case "php":
			exact, err = pegasus.GraphPHP(g, q, pegasus.PHPConfig{})
		}
		if err != nil {
			fatal("exact query: %v", err)
		}
		sm, _ := pegasus.SMAPE(exact, approx)
		sc, _ := pegasus.Spearman(exact, approx)
		fmt.Printf("accuracy vs exact: SMAPE=%.4f Spearman=%.4f\n", sm, sc)
	}
}

func printTop(label string, scores []float64, k int) {
	type nv struct {
		n pegasus.NodeID
		v float64
	}
	all := make([]nv, len(scores))
	for i, v := range scores {
		all[i] = nv{pegasus.NodeID(i), v}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v > all[j].v })
	if k > len(all) {
		k = len(all)
	}
	fmt.Printf("%s top-%d:\n", label, k)
	for i := 0; i < k; i++ {
		fmt.Printf("  node %-8d %.6g\n", all[i].n, all[i].v)
	}
}

func toFloats(d []int32) []float64 {
	out := make([]float64, len(d))
	for i, v := range d {
		out[i] = float64(v)
	}
	return out
}

func clip(ns []pegasus.NodeID, k int) []pegasus.NodeID {
	if len(ns) > k {
		return ns[:k]
	}
	return ns
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pegasus-query: "+format+"\n", args...)
	os.Exit(1)
}
