// Command pegasus-ingest loads a real-world SNAP edge list — plain or
// gzip-compressed, with comments, duplicate edges, self-loops and sparse
// node IDs — through the parallel streaming ingester and writes the
// resulting CSR graph in one of the engine's formats. It is the offline
// preprocessing step for serving real graphs: run it once, then point
// pegasus-serve / pegasus-bench at the output.
//
// Usage:
//
//	pegasus-ingest -in web-Stanford.txt.gz -out web-stanford.pgc
//	pegasus-ingest -in edges.txt -format edgelist -out clean.txt
//	pegasus-ingest -in edges.txt.gz -verify -stats
//
// The ingester is bit-identical for every -workers value; -verify re-ingests
// sequentially and fails if the parallel result differs (the same invariant
// CI enforces in the pegasus-bench scale section).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"pegasus"
)

func main() {
	var (
		in      = flag.String("in", "", "input edge list (plain or .gz; '#'/'%' comments; required)")
		out     = flag.String("out", "", "output graph file (empty: parse and report only)")
		format  = flag.String("format", "compressed", "output format: compressed (delta+varint CSR) | edgelist | snap")
		workers = flag.Int("workers", 0, "parse/merge goroutines (0 = GOMAXPROCS; result is identical for any value)")
		maxMB   = flag.Int64("max-mb", 0, "cap the (decompressed) input size in MiB (0 = unlimited)")
		verify  = flag.Bool("verify", false, "re-ingest sequentially and fail unless the parallel result is bit-identical")
		stats   = flag.Bool("stats", false, "print the full ingestion stats as JSON")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "pegasus-ingest: -in is required")
		flag.Usage()
		os.Exit(2)
	}

	opt := pegasus.IngestOptions{Workers: *workers, MaxBytes: *maxMB << 20}
	start := time.Now()
	res, err := pegasus.IngestEdgeListFile(*in, opt)
	if err != nil {
		fatal("%v", err)
	}
	elapsed := time.Since(start)
	st := res.Stats
	fmt.Fprintf(os.Stderr,
		"ingested %s in %v: |V|=%d |E|=%d (%d lines, %d comments; dropped %d self-loops, %d duplicates; remapped=%v, gzip=%v)\n",
		*in, elapsed.Round(time.Millisecond), st.Nodes, st.Edges, st.Lines, st.Comments,
		st.SelfLoops, st.Duplicates, st.Remapped, st.Gzip)
	if *stats {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(st); err != nil {
			fatal("encode stats: %v", err)
		}
	}

	if *verify {
		seq, err := pegasus.IngestEdgeListFile(*in, pegasus.IngestOptions{Workers: 1, MaxBytes: opt.MaxBytes})
		if err != nil {
			fatal("verify re-ingest: %v", err)
		}
		a, b := pegasus.GraphFingerprint(res.Graph), pegasus.GraphFingerprint(seq.Graph)
		if a != b || seq.Stats != st {
			fatal("verify: parallel (workers=%d) and sequential ingests disagree — determinism broken", *workers)
		}
		fmt.Fprintf(os.Stderr, "verify: fingerprint %s matches the sequential ingest\n", a[:16])
	}

	if *out == "" {
		return
	}
	if *format == "edgelist" {
		if err := pegasus.SaveGraph(*out, res.Graph); err != nil {
			fatal("write %s: %v", *out, err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%s)\n", *out, *format)
		return
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal("%v", err)
	}
	switch *format {
	case "compressed":
		err = pegasus.WriteGraphCompressed(f, res.Graph)
	case "snap":
		err = pegasus.WriteSNAP(f, res.Graph)
	default:
		fatal("unknown -format %q (want compressed | edgelist | snap)", *format)
	}
	if err != nil {
		f.Close()
		fatal("write %s: %v", *out, err)
	}
	if err := f.Close(); err != nil {
		fatal("close %s: %v", *out, err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%s)\n", *out, *format)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pegasus-ingest: "+format+"\n", args...)
	os.Exit(1)
}
