// Command pegasus summarizes a graph from the command line.
//
// Usage:
//
//	pegasus -in graph.txt -ratio 0.5 -targets 3,17,42 -out summary.bin
//
// The input is a whitespace-separated edge list ("u v" per line, '#'
// comments). The output is a binary summary loadable with
// pegasus.LoadSummary (or the pegasus-query tool). With -stats, per-
// iteration engine telemetry is printed to stderr.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"pegasus"
)

func main() {
	var (
		in      = flag.String("in", "", "input edge-list file (required)")
		out     = flag.String("out", "", "output summary file (optional)")
		ratio   = flag.Float64("ratio", 0.5, "compression ratio: budget = ratio x Size(G)")
		bits    = flag.Float64("bits", 0, "absolute bit budget (overrides -ratio when > 0)")
		targets = flag.String("targets", "", "comma-separated target node IDs (empty = non-personalized)")
		alpha   = flag.Float64("alpha", 1.25, "degree of personalization (>= 1)")
		beta    = flag.Float64("beta", 0.1, "adaptive-thresholding parameter (0,1]")
		tmax    = flag.Int("tmax", 20, "maximum iterations")
		seed    = flag.Int64("seed", 0, "random seed")
		workers = flag.Int("workers", 0, "build-pipeline goroutines (0 = GOMAXPROCS, 1 = sequential; output is identical either way)")
		ssummF  = flag.Bool("ssumm", false, "run the SSumM baseline instead of PeGaSus")
		lcc     = flag.Bool("lcc", true, "reduce to the largest connected component first")
		stats   = flag.Bool("stats", false, "print per-iteration statistics to stderr")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	g, err := pegasus.LoadGraph(*in)
	if err != nil {
		fatal("load graph: %v", err)
	}
	if *lcc {
		g, _ = pegasus.LargestComponent(g)
	}
	fmt.Printf("input: |V|=%d |E|=%d size=%.0f bits\n", g.NumNodes(), g.NumEdges(), g.SizeBits())

	var res *pegasus.Result
	if *ssummF {
		res, err = pegasus.SummarizeSSumMCtx(ctx, g, pegasus.SSumMConfig{
			BudgetBits: *bits, BudgetRatio: *ratio, MaxIter: *tmax, Seed: *seed,
			Workers: *workers,
			Trace:   trace(*stats),
		})
	} else {
		res, err = pegasus.SummarizeCtx(ctx, g, pegasus.Config{
			Targets:     parseTargets(*targets),
			Alpha:       *alpha,
			Beta:        *beta,
			MaxIter:     *tmax,
			BudgetBits:  *bits,
			BudgetRatio: *ratio,
			Seed:        *seed,
			Workers:     *workers,
			Trace:       trace(*stats),
		})
	}
	if err != nil {
		fatal("summarize: %v", err)
	}
	s := res.Summary
	fmt.Printf("summary: |S|=%d |P|=%d size=%.0f bits (ratio %.3f), %d iterations, %d superedges dropped, budget met: %v\n",
		s.NumSupernodes(), s.NumSuperedges(), s.SizeBits(), s.CompressionRatio(g),
		res.Iterations, res.DroppedSuperedges, res.BudgetMet)
	fmt.Print(s.Describe())
	if *out != "" {
		if err := s.SaveFile(*out); err != nil {
			fatal("save summary: %v", err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}

func parseTargets(s string) []pegasus.NodeID {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	var out []pegasus.NodeID
	for _, tok := range strings.Split(s, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(tok), 10, 32)
		if err != nil {
			fatal("bad target %q: %v", tok, err)
		}
		out = append(out, pegasus.NodeID(v))
	}
	return out
}

func trace(enabled bool) func(pegasus.IterStats) {
	if !enabled {
		return nil
	}
	return func(st pegasus.IterStats) {
		fmt.Fprintf(os.Stderr, "iter=%d theta=%.4f |S|=%d |P|=%d size=%.0f merges=%d rejections=%d groups=%d\n",
			st.Iteration, st.Theta, st.NumSuper, st.NumSupered, st.SizeBits, st.Merges, st.Rejections, st.Groups)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pegasus: "+format+"\n", args...)
	os.Exit(1)
}
