package main

import "testing"

func TestParseTargets(t *testing.T) {
	if got := parseTargets(""); got != nil {
		t.Fatalf("empty spec = %v, want nil", got)
	}
	if got := parseTargets("  "); got != nil {
		t.Fatalf("blank spec = %v, want nil", got)
	}
	got := parseTargets("1, 2,42")
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 42 {
		t.Fatalf("parseTargets = %v", got)
	}
}

func TestTraceNilWhenDisabled(t *testing.T) {
	if trace(false) != nil {
		t.Fatal("disabled trace should be nil")
	}
	if trace(true) == nil {
		t.Fatal("enabled trace should be non-nil")
	}
}
