// Command pegasus-partition divides a graph into m balanced parts with any
// of the library's partitioners and reports partition quality (edge cut,
// average query fanout, balance) — the preprocessing step of the
// distributed application (§IV) as a standalone tool.
//
// Usage:
//
//	pegasus-partition -in graph.txt -m 8 -method louvain -out labels.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"pegasus"
	"pegasus/internal/graph"
	"pegasus/internal/par"
	"pegasus/internal/partition"
)

func main() {
	var (
		in      = flag.String("in", "", "input edge-list file (required)")
		out     = flag.String("out", "", "output label file: one part ID per node (optional)")
		m       = flag.Int("m", 8, "number of parts")
		method  = flag.String("method", "louvain", "louvain | blp | shpi | shpii | shpkl | random")
		seed    = flag.Int64("seed", 0, "random seed")
		all     = flag.Bool("compare", false, "run every method and print a quality table")
		workers = flag.Int("workers", 0, "methods partitioned concurrently in -compare mode (0 = GOMAXPROCS)")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	g, err := pegasus.LoadGraph(*in)
	if err != nil {
		fatal("load graph: %v", err)
	}
	g, _ = pegasus.LargestComponent(g)
	fmt.Printf("input: |V|=%d |E|=%d\n", g.NumNodes(), g.NumEdges())

	if *all {
		// Each method partitions independently; run them concurrently and
		// print in the fixed method order once all are done.
		methods := append(partition.Methods, partition.MethodRandom)
		results := make([][]uint32, len(methods))
		par.ForEach(*workers, len(methods), func(_, i int) {
			results[i] = partition.Partition(g, *m, methods[i], *seed)
		})
		fmt.Printf("%-8s  %10s  %8s  %9s\n", "method", "edge-cut", "fanout", "imbalance")
		for i, mm := range methods {
			report(g, string(mm), results[i], *m)
		}
		return
	}

	labels, err := pegasus.PartitionGraph(g, *m, *method, *seed)
	if err != nil {
		fatal("%v", err)
	}
	report(g, *method, labels, *m)
	if *out != "" {
		if err := writeLabels(*out, labels); err != nil {
			fatal("write labels: %v", err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}

func report(g *graph.Graph, name string, labels []uint32, m int) {
	fmt.Printf("%-8s  %10d  %8.3f  %9.3f\n",
		name, partition.EdgeCut(g, labels), partition.AvgFanout(g, labels, m),
		partition.Imbalance(labels, m))
}

func writeLabels(path string, labels []uint32) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for u, l := range labels {
		fmt.Fprintf(w, "%d %d\n", u, l)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pegasus-partition: "+format+"\n", args...)
	os.Exit(1)
}
