// Command pegasus-serve runs the summary-serving HTTP daemon: it loads (or
// generates) a graph, builds a personalized summary — or a sharded cluster
// of summaries with a node→shard routing table (§IV) — and answers
// node-similarity queries over JSON endpoints until interrupted.
// POST /v1/summarize hot-reconfigures it with incremental per-shard
// rebuilds (only shards whose targets/budget actually changed are rebuilt).
// See API.md at the repo root for the complete endpoint reference.
//
// Usage:
//
//	pegasus-serve -graph g.txt -addr :8080
//	pegasus-serve -ingest web-Stanford.txt.gz -shards 4           # real SNAP graph
//	pegasus-serve -gen-nodes 5000 -shards 4 -partition louvain -budget 0.3
//	pegasus-serve -graph g.txt -shards 4 -cache-dir /var/cache/pegasus   # warm restarts
//
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/query/rwr -d '{"node": 42}'
//	curl -s -X POST localhost:8080/v1/query/topk -d '{"node": 42, "k": 5}'
//	curl -s -X POST localhost:8080/v1/query/batch -d '{"kind": "rwr", "nodes": [1, 2, 42]}'
//	curl -s -X POST localhost:8080/v1/summarize -d '{"targets": [17, 23]}'
//	curl -s localhost:8080/metrics
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"pegasus"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		gPath    = flag.String("graph", "", "edge list to serve; empty generates an SBM graph")
		ingPath  = flag.String("ingest", "", "real-graph edge list to serve through the parallel SNAP ingester (plain or .gz; comments, duplicate edges, self-loops and sparse node IDs handled; overrides -graph)")
		ingWkrs  = flag.Int("ingest-workers", 0, "ingestion goroutines (0 = GOMAXPROCS; the ingested graph is identical for any value)")
		nodes    = flag.Int("gen-nodes", 2000, "generated graph: node count")
		comms    = flag.Int("gen-communities", 8, "generated graph: community count")
		deg      = flag.Float64("gen-degree", 12, "generated graph: average degree")
		mixing   = flag.Float64("gen-mixing", 0.05, "generated graph: inter-community mixing")
		shards   = flag.Int("shards", 1, "serving shards (>=2 builds an Alg. 3 cluster)")
		method   = flag.String("partition", "random", "partition method: louvain | blp | shpi | shpii | shpkl | random")
		budget   = flag.Float64("budget", 0.5, "per-shard summary budget as a fraction of Size(G)")
		alpha    = flag.Float64("alpha", 0, "degree of personalization (0 = default 1.25)")
		targets  = flag.String("targets", "", "comma-separated target nodes (single-shard personalization)")
		seed     = flag.Int64("seed", 0, "random seed for partitioning and summarization")
		lshBands = flag.Int("lsh-bands", 0, "MinHash-LSH bands for candidate generation in summary builds (0 = single-hash shingle grouping)")
		lshRows  = flag.Int("lsh-rows", 0, "MinHash-LSH rows per band (0 = default 2; requires -lsh-bands > 0)")
		cache    = flag.Int("cache", 4096, "query-result cache entries (negative disables)")
		workers  = flag.Int("workers", 0, "concurrent query computations (0 = GOMAXPROCS)")
		batchMax = flag.Int("batch-max", 256, "max query nodes per POST /v1/query/batch request")
		bworkers = flag.Int("build-workers", 0, "build-pipeline goroutines for startup and hot rebuilds (0 = GOMAXPROCS, 1 = sequential; artifact is identical either way)")
		cacheDir = flag.String("cache-dir", "", "directory for disk-backed shard artifacts: shards are persisted under their content keys and restarts warm-start from disk instead of rebuilding (empty disables)")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-query timeout")
		slowThr  = flag.Duration("slowlog-threshold", 500*time.Millisecond, "record requests at or above this latency in GET /debug/slowlog with their span timeline (negative disables)")
		slowCap  = flag.Int("slowlog-entries", 128, "slow-query log ring-buffer capacity")
		dbgAddr  = flag.String("debug-addr", "", "listen address for the debug server (pprof, /debug/runtime, /debug/slowlog, /metrics); empty disables. Bind it to loopback: profiling endpoints are for operators, not clients")
	)
	flag.Parse()

	var (
		g   *pegasus.Graph
		err error
	)
	switch {
	case *ingPath != "":
		res, ierr := pegasus.IngestEdgeListFile(*ingPath, pegasus.IngestOptions{Workers: *ingWkrs})
		if ierr != nil {
			fatal("ingest graph: %v", ierr)
		}
		g = res.Graph
		st := res.Stats
		fmt.Printf("ingested %s: %d nodes, %d edges (dropped %d self-loops, %d duplicates; remapped=%v, gzip=%v)\n",
			*ingPath, st.Nodes, st.Edges, st.SelfLoops, st.Duplicates, st.Remapped, st.Gzip)
	case *gPath != "":
		g, err = pegasus.LoadGraph(*gPath)
		if err != nil {
			fatal("load graph: %v", err)
		}
		fmt.Printf("loaded %s: %d nodes, %d edges\n", *gPath, g.NumNodes(), g.NumEdges())
	default:
		g = pegasus.GenerateSBM(*nodes, *comms, *deg, *mixing, *seed)
		fmt.Printf("generated SBM graph: %d nodes, %d edges, %d communities\n",
			g.NumNodes(), g.NumEdges(), *comms)
	}

	tg, err := parseTargets(*targets)
	if err != nil {
		fatal("parse targets: %v", err)
	}
	cfg := pegasus.ServerConfig{
		Addr:             *addr,
		Shards:           *shards,
		PartitionMethod:  *method,
		BudgetRatio:      *budget,
		Targets:          tg,
		Alpha:            *alpha,
		Seed:             *seed,
		LSHBands:         *lshBands,
		LSHRows:          *lshRows,
		CacheEntries:     *cache,
		Workers:          *workers,
		BatchMax:         *batchMax,
		BuildWorkers:     *bworkers,
		CacheDir:         *cacheDir,
		QueryTimeout:     *timeout,
		SlowLogThreshold: *slowThr,
		SlowLogEntries:   *slowCap,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Printf("building serving artifact (%d shard(s), budget %.2f, method %s)...\n",
		*shards, *budget, *method)
	start := time.Now()
	s, err := pegasus.NewServer(ctx, g, cfg)
	if err != nil {
		fatal("build: %v", err)
	}
	if *cacheDir != "" {
		bs := s.BootStats()
		fmt.Printf("artifact cache %s: %d shard(s) loaded from disk, %d built (and persisted)\n",
			*cacheDir, bs.Loaded, bs.Rebuilt)
	}
	fmt.Printf("ready in %v; serving on %s\n", time.Since(start).Round(time.Millisecond), *addr)
	if *dbgAddr != "" {
		dbg := &http.Server{Addr: *dbgAddr, Handler: s.DebugHandler()}
		go func() {
			fmt.Printf("debug server (pprof, slowlog, runtime) on %s\n", *dbgAddr)
			if err := dbg.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "pegasus-serve: debug server: %v\n", err)
			}
		}()
		defer dbg.Close()
	}
	if err := s.Run(ctx); err != nil {
		fatal("serve: %v", err)
	}
	fmt.Println("shut down cleanly")
}

func parseTargets(s string) ([]pegasus.NodeID, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]pegasus.NodeID, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseUint(strings.TrimSpace(p), 10, 32)
		if err != nil {
			return nil, err
		}
		out = append(out, pegasus.NodeID(v))
	}
	return out, nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pegasus-serve: "+format+"\n", args...)
	os.Exit(1)
}
