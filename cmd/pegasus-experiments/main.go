// Command pegasus-experiments regenerates the tables and figures of the
// paper's evaluation (§V) on the synthetic dataset stand-ins.
//
// Usage:
//
//	pegasus-experiments -run all                 # everything, default profile
//	pegasus-experiments -run fig7 -profile full  # one experiment, full scale
//	pegasus-experiments -list
//
// Profiles: quick (seconds), default (tens of seconds), full (minutes). The
// per-experiment index mapping experiment IDs to the paper's tables/figures
// lives in DESIGN.md; measured-vs-paper results are recorded in
// EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pegasus/internal/experiments"
)

func main() {
	var (
		run     = flag.String("run", "all", "experiment ID or 'all' (see -list)")
		profile = flag.String("profile", "default", "scale profile: quick | default | full")
		format  = flag.String("format", "table", "output format: table | csv")
		list    = flag.Bool("list", false, "list experiment IDs and exit")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.Names() {
			fmt.Println(id)
		}
		return
	}
	sc, ok := experiments.Profiles[*profile]
	if !ok {
		fmt.Fprintf(os.Stderr, "pegasus-experiments: unknown profile %q\n", *profile)
		os.Exit(2)
	}

	ids := []string{*run}
	if *run == "all" {
		ids = experiments.Names()
	} else if strings.Contains(*run, ",") {
		ids = strings.Split(*run, ",")
	}
	for _, id := range ids {
		start := time.Now()
		tab, err := experiments.Run(strings.TrimSpace(id), sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pegasus-experiments: %s: %v\n", id, err)
			os.Exit(1)
		}
		switch *format {
		case "csv":
			fmt.Printf("# %s\n", tab.Title)
			if err := tab.WriteCSV(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "pegasus-experiments: %v\n", err)
				os.Exit(1)
			}
			fmt.Println()
		default:
			tab.Fprint(os.Stdout)
			fmt.Printf("(%s, profile %s, %s)\n\n", id, sc.Name, time.Since(start).Round(time.Millisecond))
		}
	}
}
