// Command pegasus-gen generates synthetic graphs in edge-list format.
//
// Usage:
//
//	pegasus-gen -model ba -n 10000 -m 5 -out graph.txt
//	pegasus-gen -model ws -n 1000 -k 20 -p 0.01 -out smallworld.txt
//	pegasus-gen -model sbm -n 5000 -communities 25 -deg 10 -mix 0.1 -out sbm.txt
//	pegasus-gen -model er -n 1000 -edges 5000 -out er.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"pegasus"
)

func main() {
	var (
		model = flag.String("model", "ba", "generator: ba | ws | er | sbm | grid")
		n     = flag.Int("n", 1000, "node count")
		gw    = flag.Int("width", 32, "grid: width")
		gh    = flag.Int("height", 32, "grid: height")
		hwy   = flag.Float64("highways", 0.02, "grid: highway chord fraction")
		m     = flag.Int("m", 3, "ba: edges per new node")
		k     = flag.Int("k", 10, "ws: ring degree (even)")
		p     = flag.Float64("p", 0.01, "ws: rewiring probability")
		edges = flag.Int("edges", 5000, "er: edge count")
		comms = flag.Int("communities", 10, "sbm: community count")
		deg   = flag.Float64("deg", 10, "sbm: average degree")
		mix   = flag.Float64("mix", 0.1, "sbm: inter-community edge fraction")
		seed  = flag.Int64("seed", 1, "random seed")
		out   = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	var g *pegasus.Graph
	switch *model {
	case "ba":
		g = pegasus.GenerateBA(*n, *m, *seed)
	case "ws":
		g = pegasus.GenerateWS(*n, *k, *p, *seed)
	case "er":
		g = pegasus.GenerateER(*n, *edges, *seed)
	case "sbm":
		g = pegasus.GenerateSBM(*n, *comms, *deg, *mix, *seed)
	case "grid":
		g = pegasus.GenerateGrid(*gw, *gh, *hwy, *seed)
	default:
		fmt.Fprintf(os.Stderr, "pegasus-gen: unknown model %q\n", *model)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "generated %s graph: |V|=%d |E|=%d\n", *model, g.NumNodes(), g.NumEdges())
	if *out == "" {
		fmt.Printf("# %s |V|=%d |E|=%d seed=%d\n", *model, g.NumNodes(), g.NumEdges(), *seed)
		for _, e := range g.EdgeList() {
			fmt.Printf("%d %d\n", e.U, e.V)
		}
		return
	}
	if err := pegasus.SaveGraph(*out, g); err != nil {
		fmt.Fprintf(os.Stderr, "pegasus-gen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}
