// Command pegasus-gen generates synthetic graphs in edge-list format.
//
// Usage:
//
//	pegasus-gen -model ba -n 10000 -m 5 -out graph.txt
//	pegasus-gen -model ba -n 100000 -m 8 -format snap -out graph.txt.gz
//	pegasus-gen -model ws -n 1000 -k 20 -p 0.01 -out smallworld.txt
//	pegasus-gen -model sbm -n 5000 -communities 25 -deg 10 -mix 0.1 -out sbm.txt
//	pegasus-gen -model er -n 1000 -edges 5000 -out er.txt
//
// -format snap emits the SNAP interchange dialect (tab-separated lines under
// a "# Nodes: N Edges: M" comment header) that pegasus-ingest and the
// -ingest serving flag consume; an -out path ending in .gz is
// gzip-compressed. The scale-tier datasets (-model scale100k / scale1m)
// reproduce the deterministic large-graph fallbacks used by the
// pegasus-bench scale section.
package main

import (
	"compress/gzip"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"pegasus"
	"pegasus/internal/datasets"
)

func main() {
	var (
		model  = flag.String("model", "ba", "generator: ba | ws | er | sbm | grid | scale100k | scale1m")
		n      = flag.Int("n", 1000, "node count")
		gw     = flag.Int("width", 32, "grid: width")
		gh     = flag.Int("height", 32, "grid: height")
		hwy    = flag.Float64("highways", 0.02, "grid: highway chord fraction")
		m      = flag.Int("m", 3, "ba: edges per new node")
		k      = flag.Int("k", 10, "ws: ring degree (even)")
		p      = flag.Float64("p", 0.01, "ws: rewiring probability")
		edges  = flag.Int("edges", 5000, "er: edge count")
		comms  = flag.Int("communities", 10, "sbm: community count")
		deg    = flag.Float64("deg", 10, "sbm: average degree")
		mix    = flag.Float64("mix", 0.1, "sbm: inter-community edge fraction")
		seed   = flag.Int64("seed", 1, "random seed")
		format = flag.String("format", "plain", "output format: plain (\"u v\" lines) | snap (tab-separated + SNAP header)")
		out    = flag.String("out", "", "output file (default stdout; a .gz suffix gzip-compresses)")
	)
	flag.Parse()

	var g *pegasus.Graph
	switch *model {
	case "ba":
		g = pegasus.GenerateBA(*n, *m, *seed)
	case "ws":
		g = pegasus.GenerateWS(*n, *k, *p, *seed)
	case "er":
		g = pegasus.GenerateER(*n, *edges, *seed)
	case "sbm":
		g = pegasus.GenerateSBM(*n, *comms, *deg, *mix, *seed)
	case "grid":
		g = pegasus.GenerateGrid(*gw, *gh, *hwy, *seed)
	case "scale100k", "scale1m":
		d, err := datasets.ByShort(map[string]string{"scale100k": "S5", "scale1m": "S6"}[*model])
		if err != nil {
			fatal("%v", err)
		}
		g = d.Generate(1)
	default:
		fatal("unknown model %q", *model)
	}
	fmt.Fprintf(os.Stderr, "generated %s graph: |V|=%d |E|=%d\n", *model, g.NumNodes(), g.NumEdges())

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal("%v", err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal("close %s: %v", *out, err)
			}
		}()
		w = f
	}
	if strings.HasSuffix(*out, ".gz") {
		zw := gzip.NewWriter(w)
		defer func() {
			if err := zw.Close(); err != nil {
				fatal("gzip close: %v", err)
			}
		}()
		w = zw
	}

	var err error
	switch *format {
	case "snap":
		err = pegasus.WriteSNAP(w, g)
	case "plain":
		if _, err = fmt.Fprintf(w, "# %s |V|=%d |E|=%d seed=%d\n", *model, g.NumNodes(), g.NumEdges(), *seed); err == nil {
			err = writePlain(w, g)
		}
	default:
		fatal("unknown -format %q (want plain | snap)", *format)
	}
	if err != nil {
		fatal("write: %v", err)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote %s (%s)\n", *out, *format)
	}
}

func writePlain(w io.Writer, g *pegasus.Graph) error {
	for _, e := range g.EdgeList() {
		if _, err := fmt.Fprintf(w, "%d %d\n", e.U, e.V); err != nil {
			return err
		}
	}
	return nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pegasus-gen: "+format+"\n", args...)
	os.Exit(1)
}
