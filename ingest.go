package pegasus

import (
	"io"

	"pegasus/internal/distributed"
	"pegasus/internal/ingest"
)

// Ingestion — streaming SNAP edge-list loading at real-graph scale ----------
//
// IngestEdgeList* parse the SNAP interchange format (whitespace/tab-separated
// "u v" lines, '#'/'%' comments, optional gzip) in parallel and assemble a
// CSR graph: self-loops and duplicate edges are eliminated and arbitrary
// 64-bit node IDs are remapped onto the dense [0, n) space, ascending by raw
// ID. The result is bit-identical for every worker count. Unlike LoadGraph
// (which keeps raw IDs and allocates max-ID+1 nodes), the ingester never
// materializes holes: web-Stanford-style sparse ID spaces cost O(edges), not
// O(max ID).

// IngestOptions configures an ingestion run (worker count, size cap).
type IngestOptions = ingest.Options

// IngestStats reports what an ingestion run saw and dropped.
type IngestStats = ingest.Stats

// IngestResult is an ingested graph plus its dense-ID↔raw-ID mapping and
// stats.
type IngestResult = ingest.Result

// ErrIngestFormat is wrapped by every malformed-input ingestion failure.
var ErrIngestFormat = ingest.ErrFormat

// ErrIngestLimit is wrapped when an ingested input exceeds a size or
// representational limit.
var ErrIngestLimit = ingest.ErrLimit

// IngestEdgeListFile ingests an edge-list file (gzip detected from content).
func IngestEdgeListFile(path string, opt IngestOptions) (*IngestResult, error) {
	return ingest.ParseFile(path, opt)
}

// IngestEdgeList ingests an edge list from r (plain or gzip).
func IngestEdgeList(r io.Reader, opt IngestOptions) (*IngestResult, error) {
	return ingest.Parse(r, opt)
}

// IngestEdgeListBytes ingests an in-memory edge list (plain or gzip).
func IngestEdgeListBytes(data []byte, opt IngestOptions) (*IngestResult, error) {
	return ingest.ParseBytes(data, opt)
}

// WriteSNAP writes g in the SNAP edge-list interchange format (tab-separated
// "u v" lines under a comment header). Parse(WriteSNAP(g)) reproduces g
// bit-identically.
func WriteSNAP(w io.Writer, g *Graph) error { return ingest.WriteSNAP(w, g) }

// GraphFingerprint returns the content fingerprint of a graph's full
// structure (the shard-content-key "graph generation" token): equal
// fingerprints mean structurally identical graphs. One O(|V|+|E|) scan.
func GraphFingerprint(g *Graph) string { return distributed.GraphToken(g) }
