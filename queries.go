package pegasus

import (
	"pegasus/internal/graph"
	"pegasus/internal/queries"
)

// Oracle abstracts neighborhood access (Appendix A of the paper: most graph
// algorithms touch the graph only through the neighborhood query, so they
// run unchanged on exact graphs and on summaries).
type Oracle = queries.Oracle

// GraphOracle adapts a Graph to the Oracle interface (exact answers).
func GraphOracle(g *Graph) Oracle { return queries.GraphOracle{G: g} }

// SummaryOracle adapts a Summary to the Oracle interface (approximate
// answers through Alg. 4 neighborhoods, superedge weights respected).
func SummaryOracle(s *Summary) Oracle { return queries.SummaryOracle{S: s} }

// PageRankConfig parameterizes PageRank.
type PageRankConfig = queries.PageRankConfig

// PageRank computes the PageRank vector over any Oracle.
func PageRank(o Oracle, cfg PageRankConfig) []float64 { return queries.PageRank(o, cfg) }

// Degrees returns every node's (weighted) degree over any Oracle.
func Degrees(o Oracle) []float64 { return queries.Degrees(o) }

// ClusteringCoefficient returns the local clustering coefficient of u.
func ClusteringCoefficient(o Oracle, u NodeID) float64 {
	return queries.ClusteringCoefficient(o, u)
}

// EigenvectorCentrality computes eigenvector centrality by shifted power
// iteration (0 values select defaults).
func EigenvectorCentrality(o Oracle, maxIter int, eps float64) []float64 {
	return queries.EigenvectorCentrality(o, maxIter, eps)
}

// DFSOrder returns a depth-first preorder from src over any Oracle.
func DFSOrder(o Oracle, src NodeID) []NodeID { return queries.DFSOrder(o, src) }

// Dijkstra computes weighted shortest-path distances from src (superedge
// weight w crossed at cost 1/w; +Inf for unreachable nodes).
func Dijkstra(o Oracle, src NodeID) ([]float64, error) { return queries.Dijkstra(o, src) }

// RWR runs random walk with restart over any Oracle (the generic Alg. 6).
func RWR(o Oracle, q NodeID, cfg RWRConfig) ([]float64, error) { return queries.RWR(o, q, cfg) }

// HOP runs BFS hop counting over any Oracle (the generic Alg. 5).
func HOP(o Oracle, q NodeID) ([]int32, error) { return queries.HOP(o, q) }

// PHP runs penalized hitting probability over any Oracle.
func PHP(o Oracle, q NodeID, cfg PHPConfig) ([]float64, error) { return queries.PHP(o, q, cfg) }

// PushConfig parameterizes PushRWR.
type PushConfig = queries.PushConfig

// PushRWR approximates RWR by forward push (local search): it touches only
// the region where probability mass is non-negligible, making single
// queries on large graphs or summaries far cheaper than power iteration.
func PushRWR(o Oracle, q NodeID, cfg PushConfig) ([]float64, error) {
	return queries.PushRWR(o, q, cfg)
}

// TopK returns the k highest-scoring nodes in descending order (the k-NN
// answer shape).
func TopK(scores []float64, k int) []NodeID { return queries.TopK(scores, k) }

// QuerySession answers repeated RWR/PHP queries over one artifact while
// sharing the query-independent precompute (the weighted-degree scan) and
// iteration scratch across calls — the amortization behind the paper's
// multi-query workloads. Not safe for concurrent use.
type QuerySession = queries.Session

// NewQuerySession returns a QuerySession over any Oracle.
func NewQuerySession(o Oracle) QuerySession { return queries.NewSession(o) }

// NewSummaryQuerySession returns a QuerySession over a summary graph using
// the block-accelerated evaluators.
func NewSummaryQuerySession(s *Summary) QuerySession { return queries.NewSummarySession(s) }

// RWRBatch answers RWR for every node of qs over one Oracle through a
// shared QuerySession: the weighted-degree vector is computed once for the
// whole batch instead of once per node.
func RWRBatch(o Oracle, qs []NodeID, cfg RWRConfig) ([][]float64, error) {
	return queries.RWRBatch(o, qs, cfg)
}

// SummaryRWRBatch is RWRBatch over the block-accelerated summary evaluator.
func SummaryRWRBatch(s *Summary, qs []NodeID, cfg RWRConfig) ([][]float64, error) {
	return queries.SummaryRWRBatch(s, qs, cfg)
}

// PHPBatch answers PHP for every node of qs over one Oracle through a
// shared QuerySession — PHP shares the RWR precompute, so a batch pays the
// weighted-degree scan once instead of once per node.
func PHPBatch(o Oracle, qs []NodeID, cfg PHPConfig) ([][]float64, error) {
	return queries.PHPBatch(o, qs, cfg)
}

// SummaryPHPBatch is PHPBatch over the block-accelerated summary evaluator.
func SummaryPHPBatch(s *Summary, qs []NodeID, cfg PHPConfig) ([][]float64, error) {
	return queries.SummaryPHPBatch(s, qs, cfg)
}

var _ = graph.NodeID(0) // keep the graph import explicit for NodeID's origin
