package pegasus

import (
	"context"

	"pegasus/internal/obs"
	"pegasus/internal/server"
)

// Observability ---------------------------------------------------------------
//
// The serving daemon traces every request (X-Trace-Id, ?debug=1 timelines,
// the /debug/slowlog ring) through the obs span tracer. The tracer is
// exported here so embedders running the engine directly — library callers
// of Summarize/BuildSummaryCluster — can capture the same build-phase
// timelines: attach a trace to the context they pass in, then snapshot it.

type (
	// Trace is one request's (or one build's) span collection. Attach it to
	// a context with ContextWithTrace and every instrumented layer below —
	// query sessions, the summarization build phases, per-shard cluster
	// builds — records its spans into it.
	Trace = obs.Trace
	// TraceView is the JSON-ready snapshot of a Trace (the shape served in
	// ?debug=1 responses and slow-log entries).
	TraceView = obs.TraceView
	// SpanView is one span of a TraceView.
	SpanView = obs.SpanView
	// SlowLogResponse is the JSON answer of GET /debug/slowlog.
	SlowLogResponse = server.SlowLogResponse
)

// NewTrace returns an empty trace with a fresh unique ID.
func NewTrace() *Trace { return obs.NewTrace() }

// ContextWithTrace attaches t to ctx; instrumented code below records spans
// into it. Tracing never perturbs results — summaries built with a trace
// attached are bit-identical to untraced builds.
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	return obs.WithTrace(ctx, t)
}

// TraceFromContext returns the trace attached to ctx, or nil.
func TraceFromContext(ctx context.Context) *Trace { return obs.FromContext(ctx) }
