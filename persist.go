package pegasus

import (
	"io"

	"pegasus/internal/persist"
)

// Disk-backed shard artifacts ------------------------------------------------
//
// The §IV deployment holds one personalized summary per machine; the persist
// layer makes those artifacts durable. Every artifact is encoded with a
// versioned, checksummed binary codec and filed in a content-addressed store
// under its shard content key, so a restarted cluster (or server — see
// ServerConfig.CacheDir) decodes its shards from disk instead of re-running
// summarization, with the same bit-identity guarantee as in-memory reuse.

type (
	// Artifact is one machine's persistable payload: exactly one of Summary
	// and Subgraph is non-nil.
	Artifact = persist.Artifact
	// ArtifactStore is a content-addressed artifact store over one
	// directory: Put/Get/GC over <dir>/<shardkey>.pgsum files, written with
	// temp-file + rename atomicity.
	ArtifactStore = persist.Store
	// ArtifactStoreStats is a snapshot of a store's hit/miss/byte counters.
	ArtifactStoreStats = persist.Stats
)

// Typed artifact-decoding failures: both mean "treat the artifact as absent
// and rebuild" — ErrArtifactCorrupt for structural damage (truncation, bit
// flips, bad checksums), ErrArtifactVersion for a file written by a codec
// version this build does not read.
var (
	ErrArtifactCorrupt = persist.ErrCorrupt
	ErrArtifactVersion = persist.ErrVersion
)

// OpenArtifactStore opens (creating if needed) a content-addressed artifact
// store over dir. Pass it to ClusterBuildOptions.Store to persist and
// warm-start cluster builds; pegasus-serve wires the same store through
// ServerConfig.CacheDir.
func OpenArtifactStore(dir string) (*ArtifactStore, error) {
	return persist.Open(dir)
}

// EncodeArtifact writes the artifact to w in the versioned, checksummed
// binary format (magic + version header, delta+varint payload, CRC-32
// trailer).
func EncodeArtifact(w io.Writer, a Artifact) error {
	return persist.Encode(w, a)
}

// DecodeArtifact parses an encoded artifact. Corrupt input yields an error
// wrapping ErrArtifactCorrupt, a future codec version one wrapping
// ErrArtifactVersion — never a panic.
func DecodeArtifact(data []byte) (Artifact, error) {
	return persist.Decode(data)
}
