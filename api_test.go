package pegasus_test

import (
	"bytes"
	"context"
	"errors"
	"math"
	"path/filepath"
	"testing"

	"pegasus"
)

func TestPublicAPIQuickstart(t *testing.T) {
	// The README quickstart, end to end through the public surface only.
	g := pegasus.GenerateBA(300, 3, 1)
	res, err := pegasus.Summarize(g, pegasus.Config{
		Targets:     []pegasus.NodeID{42},
		BudgetRatio: 0.5,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summary
	if s.SizeBits() > 0.5*g.SizeBits()+1e-6 {
		t.Fatal("budget exceeded")
	}
	if got := s.Neighbors(42); got == nil {
		t.Fatal("no approximate neighborhood")
	}
	scores, err := pegasus.SummaryRWR(s, 42, pegasus.RWRConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != g.NumNodes() {
		t.Fatal("RWR vector has wrong length")
	}
}

func TestPublicAPIGraphRoundTrip(t *testing.T) {
	g := pegasus.GenerateSBM(120, 4, 8, 0.1, 2)
	dir := t.TempDir()
	gp := filepath.Join(dir, "g.txt")
	if err := pegasus.SaveGraph(gp, g); err != nil {
		t.Fatal(err)
	}
	g2, err := pegasus.LoadGraph(gp)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatal("graph round trip changed edges")
	}
	lcc, ids := pegasus.LargestComponent(g2)
	if lcc.NumNodes() > g2.NumNodes() || len(ids) != lcc.NumNodes() {
		t.Fatal("largest component inconsistent")
	}
}

func TestPublicAPISummaryRoundTrip(t *testing.T) {
	g := pegasus.GenerateBA(150, 2, 3)
	res, err := pegasus.SummarizeNonPersonalized(g, pegasus.Config{BudgetRatio: 0.4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	sp := filepath.Join(dir, "s.bin")
	if err := res.Summary.SaveFile(sp); err != nil {
		t.Fatal(err)
	}
	s2, err := pegasus.LoadSummary(sp)
	if err != nil {
		t.Fatal(err)
	}
	if s2.NumSupernodes() != res.Summary.NumSupernodes() {
		t.Fatal("summary round trip changed shape")
	}
}

func TestPublicAPIBaselineAndMetrics(t *testing.T) {
	g := pegasus.GenerateBA(200, 3, 4)
	res, err := pegasus.SummarizeSSumM(g, pegasus.SSumMConfig{BudgetRatio: 0.5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	w, err := pegasus.NewWeights(g, []pegasus.NodeID{0}, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	pe := pegasus.PersonalizedError(g, res.Summary, w)
	re := pegasus.ReconstructionError(g, res.Summary)
	if pe < 0 || re < 0 || math.IsNaN(pe) || math.IsNaN(re) {
		t.Fatalf("bad errors: %v %v", pe, re)
	}
	exact, _ := pegasus.GraphRWR(g, 0, pegasus.RWRConfig{})
	approx, _ := pegasus.SummaryRWR(res.Summary, 0, pegasus.RWRConfig{})
	sm, err := pegasus.SMAPE(exact, approx)
	if err != nil || sm < 0 || sm > 1 {
		t.Fatalf("SMAPE = %v, err = %v", sm, err)
	}
	sc, err := pegasus.Spearman(exact, approx)
	if err != nil || sc < -1 || sc > 1 {
		t.Fatalf("Spearman = %v, err = %v", sc, err)
	}
}

func TestPublicAPIIdentityAndQueries(t *testing.T) {
	g := pegasus.GenerateWS(100, 4, 0.05, 5)
	s := pegasus.IdentitySummary(g)
	hExact, err := pegasus.GraphHOP(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	hApprox, err := pegasus.SummaryHOP(s, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range hExact {
		if hExact[i] != hApprox[i] {
			t.Fatal("identity summary changed HOP answers")
		}
	}
	p, err := pegasus.GraphPHP(g, 3, pegasus.PHPConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ps, err := pegasus.SummaryPHP(s, 3, pegasus.PHPConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range p {
		if math.Abs(p[i]-ps[i]) > 1e-9 {
			t.Fatal("identity summary changed PHP answers")
		}
	}
	d := pegasus.FillUnreached([]int32{0, -1, 2}, 9)
	if d[1] != 2 {
		t.Fatal("FillUnreached wrong")
	}
}

func TestPublicAPIGenerators(t *testing.T) {
	if g := pegasus.GenerateER(50, 100, 1); g.NumEdges() != 100 {
		t.Fatal("ER generator wrong edge count")
	}
	b := pegasus.NewGraphBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	if g := b.Build(); g.NumEdges() != 2 {
		t.Fatal("builder wrong edge count")
	}
}

func TestPublicAPICompressedGraphIO(t *testing.T) {
	g := pegasus.GenerateBA(400, 3, 6)
	var buf bytes.Buffer
	if err := pegasus.WriteGraphCompressed(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := pegasus.ReadGraphCompressed(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatal("compressed round trip changed graph")
	}
}

func TestPublicAPIStatsAndOracles(t *testing.T) {
	g := pegasus.GenerateBA(200, 3, 7)
	st := pegasus.ComputeGraphStats(g)
	if st.Nodes != 200 || st.Edges != g.NumEdges() {
		t.Fatalf("stats wrong: %+v", st)
	}
	pr := pegasus.PageRank(pegasus.GraphOracle(g), pegasus.PageRankConfig{})
	if len(pr) != 200 {
		t.Fatal("PageRank length wrong")
	}
	top := pegasus.TopK(pr, 5)
	if len(top) != 5 {
		t.Fatal("TopK length wrong")
	}
	push, err := pegasus.PushRWR(pegasus.GraphOracle(g), top[0], pegasus.PushConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(push) != 200 {
		t.Fatal("PushRWR length wrong")
	}
	if d, err := pegasus.Dijkstra(pegasus.GraphOracle(g), 0); err != nil || len(d) != 200 {
		t.Fatalf("Dijkstra: %v", err)
	}
	if o := pegasus.DFSOrder(pegasus.GraphOracle(g), 0); len(o) == 0 {
		t.Fatal("DFSOrder empty")
	}
	_ = pegasus.Degrees(pegasus.SummaryOracle(pegasus.IdentitySummary(g)))
	_ = pegasus.ClusteringCoefficient(pegasus.GraphOracle(g), 0)
	_ = pegasus.EigenvectorCentrality(pegasus.GraphOracle(g), 0, 0)
}

func TestPublicAPIPartitionAndCluster(t *testing.T) {
	g := pegasus.GenerateSBM(300, 4, 10, 0.1, 8)
	g, _ = pegasus.LargestComponent(g)
	labels, err := pegasus.PartitionGraph(g, 4, pegasus.PartitionLouvain, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pegasus.PartitionGraph(g, 4, "bogus", 1); err == nil {
		t.Fatal("unknown method accepted")
	}
	budget := 0.5 * g.SizeBits()
	c, err := pegasus.BuildSummaryCluster(g, labels, 4, budget, pegasus.Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Machines) != 4 {
		t.Fatal("wrong machine count")
	}
	c2, err := pegasus.BuildSubgraphCluster(g, labels, 4, budget)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.HOP(0); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIArtifactStore(t *testing.T) {
	g := pegasus.GenerateSBM(200, 4, 8, 0.1, 3)
	g, _ = pegasus.LargestComponent(g)
	labels := make([]uint32, g.NumNodes())
	for u := range labels {
		labels[u] = uint32(u % 4)
	}
	budget := 0.5 * g.SizeBits()
	store, err := pegasus.OpenArtifactStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cfg := pegasus.Config{Seed: 2, Workers: 1}
	cold, st, err := pegasus.BuildSummaryClusterIncremental(ctx, g, labels, 4, budget, cfg,
		pegasus.ClusterBuildOptions{Workers: 1, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if st.Rebuilt != 4 || st.Loaded != 0 {
		t.Fatalf("cold: rebuilt=%d loaded=%d, want 4/0", st.Rebuilt, st.Loaded)
	}
	warm, st, err := pegasus.BuildSummaryClusterIncremental(ctx, g, labels, 4, budget, cfg,
		pegasus.ClusterBuildOptions{Workers: 1, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if st.Loaded != 4 || st.Rebuilt != 0 {
		t.Fatalf("warm: loaded=%d rebuilt=%d, want 4/0", st.Loaded, st.Rebuilt)
	}
	var a, b bytes.Buffer
	if err := cold.Machines[0].Summary.Write(&a); err != nil {
		t.Fatal(err)
	}
	if err := warm.Machines[0].Summary.Write(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("warm-loaded shard differs from cold build")
	}
	if stats := store.Stats(); stats.Hits != 4 || stats.Puts != 4 {
		t.Fatalf("store stats = %+v, want 4 hits, 4 puts", stats)
	}

	// The codec round-trips through the exported wrappers, and damage is
	// typed.
	var enc bytes.Buffer
	if err := pegasus.EncodeArtifact(&enc, pegasus.Artifact{Summary: cold.Machines[1].Summary}); err != nil {
		t.Fatal(err)
	}
	art, err := pegasus.DecodeArtifact(enc.Bytes())
	if err != nil || art.Summary == nil {
		t.Fatalf("decode: %v", err)
	}
	raw := enc.Bytes()
	raw[len(raw)/2] ^= 0x10
	if _, err := pegasus.DecodeArtifact(raw); !errors.Is(err, pegasus.ErrArtifactCorrupt) {
		t.Fatalf("flipped byte: err = %v, want ErrArtifactCorrupt", err)
	}
}
