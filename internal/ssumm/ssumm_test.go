package ssumm

import (
	"testing"

	"pegasus/internal/core"
	"pegasus/internal/gen"
	"pegasus/internal/metrics"
)

func TestSummarizeMeetsBudget(t *testing.T) {
	g := gen.BarabasiAlbert(300, 3, 1)
	for _, ratio := range []float64{0.3, 0.6} {
		res, err := Summarize(g, Config{BudgetRatio: ratio, Seed: 2})
		if err != nil {
			t.Fatalf("ratio %v: %v", ratio, err)
		}
		if err := res.Summary.Validate(); err != nil {
			t.Fatalf("ratio %v: %v", ratio, err)
		}
		if res.Summary.SizeBits() > ratio*g.SizeBits()+1e-6 {
			t.Errorf("ratio %v: budget exceeded", ratio)
		}
	}
}

func TestFixedScheduleIsUsed(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, 3)
	var thetas []float64
	_, err := Summarize(g, Config{BudgetRatio: 0.2, Seed: 4, Trace: func(s core.IterStats) {
		thetas = append(thetas, s.Theta)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(thetas) < 2 {
		t.Skip("budget met too fast to observe the schedule")
	}
	// θ(t) = 1/(1+t): 0.5, 1/3, 1/4, ...
	want := []float64{0.5, 1.0 / 3, 0.25, 0.2}
	for i := 0; i < len(thetas) && i < len(want); i++ {
		if diff := thetas[i] - want[i]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("theta[%d] = %v, want %v", i, thetas[i], want[i])
		}
	}
}

func TestErrorShrinksWithBudget(t *testing.T) {
	g := gen.BarabasiAlbert(250, 3, 5)
	loose, err := Summarize(g, Config{BudgetRatio: 0.8, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Summarize(g, Config{BudgetRatio: 0.2, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	eLoose := metrics.ReconstructionError(g, loose.Summary)
	eTight := metrics.ReconstructionError(g, tight.Summary)
	if eLoose > eTight {
		t.Fatalf("loose budget error %v exceeds tight budget error %v", eLoose, eTight)
	}
}
