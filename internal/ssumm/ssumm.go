// Package ssumm provides the SSumM baseline (Lee et al., KDD 2020), the
// state-of-the-art non-personalized graph summarizer that PeGaSus is based
// on. Per §III-G it differs from PeGaSus in exactly three ways, all realized
// as presets of the shared engine in internal/core:
//
//   - non-personalized objective: uniform weights (W_uv = 1);
//   - fixed threshold schedule θ(t) = (1+t)^{-1} (0 at t_max) instead of
//     adaptive thresholding;
//   - best-of-two encodings (entropy coding vs error correction) when
//     converting reconstruction error between two supernodes into bits.
package ssumm

import (
	"context"

	"pegasus/internal/core"
	"pegasus/internal/graph"
)

// Config parameterizes SSumM.
type Config struct {
	// BudgetBits is the size budget k in bits; if zero, BudgetRatio is used.
	BudgetBits float64
	// BudgetRatio expresses the budget as a fraction of Size(G); default 0.5.
	BudgetRatio float64
	// MaxIter is t_max (default 20, §V-A).
	MaxIter int
	// Seed drives all randomness.
	Seed int64
	// Workers bounds the parallel build pipeline goroutines (0 = GOMAXPROCS,
	// 1 = sequential); any value yields bit-identical output.
	Workers int
	// Trace, when non-nil, receives per-iteration statistics.
	Trace func(core.IterStats)
}

// Summarize runs SSumM on g.
func Summarize(g *graph.Graph, cfg Config) (*core.Result, error) {
	//lint:ctxflow public convenience entry point for callers without a context; SummarizeCtx is the propagating path
	return SummarizeCtx(context.Background(), g, cfg)
}

// SummarizeCtx is Summarize with cooperative cancellation.
func SummarizeCtx(ctx context.Context, g *graph.Graph, cfg Config) (*core.Result, error) {
	maxIter := cfg.MaxIter
	if maxIter == 0 {
		maxIter = 20
	}
	return core.SummarizeNonPersonalizedCtx(ctx, g, core.Config{
		BudgetBits:  cfg.BudgetBits,
		BudgetRatio: cfg.BudgetRatio,
		MaxIter:     maxIter,
		Seed:        cfg.Seed,
		Workers:     cfg.Workers,
		Encoding:    core.BestOfTwo,
		Threshold:   core.FixedSchedule{TMax: maxIter},
		Trace:       cfg.Trace,
	})
}
