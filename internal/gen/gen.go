// Package gen provides deterministic synthetic-graph generators used by the
// experiments: Barabási–Albert preferential attachment (the paper's
// billion-edge synthetic, Table II row "ST"), Watts–Strogatz small worlds
// (the Fig. 10 effective-diameter sweep), Erdős–Rényi G(n,m), a planted
// partition stochastic block model (stand-ins for the paper's community-rich
// real graphs), and a 2-D lattice road-network-like generator.
//
// All generators are deterministic functions of their parameters and seed,
// and always emit simple undirected graphs.
package gen

import (
	"fmt"
	"math/rand"

	"pegasus/internal/graph"
)

// BarabasiAlbert generates a preferential-attachment graph with n nodes
// where each new node attaches to m existing nodes chosen proportionally to
// degree (the BA model [40] used for the paper's synthetic billion-edge
// graph). The resulting graph is connected and has ~ (n-m)·m edges.
func BarabasiAlbert(n, m int, seed int64) *graph.Graph {
	if n <= 0 || m <= 0 {
		panic(fmt.Sprintf("gen: BarabasiAlbert requires n>0, m>0 (got n=%d m=%d)", n, m))
	}
	if m >= n {
		m = n - 1
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)

	// repeated holds node IDs once per incident edge endpoint; sampling a
	// uniform element of repeated samples nodes proportionally to degree.
	// The capacity hint is computed in int64 and clamped: 2*n*m overflows
	// 32-bit ints at the 10^6-node scale tier, and a near-complete graph
	// (m ≈ n) must not reserve O(n²) up front — append growth covers the
	// tail either way.
	hint := 2 * int64(n) * int64(m)
	if hint > 1<<28 {
		hint = 1 << 28
	}
	repeated := make([]graph.NodeID, 0, int(hint))

	// Seed clique over the first m+1 nodes keeps the graph connected.
	for u := 0; u <= m && u < n; u++ {
		for v := 0; v < u; v++ {
			b.AddEdge(graph.NodeID(u), graph.NodeID(v))
			repeated = append(repeated, graph.NodeID(u), graph.NodeID(v))
		}
	}
	// picks keeps the attachment targets in draw order: appending to
	// repeated in map-iteration order would make the sampling pool — and
	// therefore every later degree-proportional draw — nondeterministic
	// across runs for the same seed.
	chosen := make(map[graph.NodeID]bool, m)
	picks := make([]graph.NodeID, 0, m)
	for u := m + 1; u < n; u++ {
		clear(chosen)
		picks = picks[:0]
		for len(chosen) < m {
			t := repeated[rng.Intn(len(repeated))]
			if !chosen[t] {
				chosen[t] = true
				picks = append(picks, t)
			}
		}
		for _, t := range picks {
			b.AddEdge(graph.NodeID(u), t)
			repeated = append(repeated, graph.NodeID(u), t)
		}
	}
	return b.Build()
}

// WattsStrogatz generates a small-world graph [49]: a ring lattice of n
// nodes where each node connects to its k nearest neighbors (k even), with
// each edge rewired with probability p. p=0 keeps the high-diameter lattice;
// p=0.1 produces a small effective diameter — the Fig. 10 sweep.
func WattsStrogatz(n, k int, p float64, seed int64) *graph.Graph {
	if n <= 0 || k <= 0 || k%2 != 0 {
		panic(fmt.Sprintf("gen: WattsStrogatz requires n>0 and even k>0 (got n=%d k=%d)", n, k))
	}
	if k >= n {
		k = n - 1
		if k%2 == 1 {
			k--
		}
	}
	rng := rand.New(rand.NewSource(seed))
	type pair struct{ u, v graph.NodeID }
	present := make(map[pair]bool, n*k/2)
	norm := func(u, v graph.NodeID) pair {
		if u > v {
			u, v = v, u
		}
		return pair{u, v}
	}
	var edges []pair
	for u := 0; u < n; u++ {
		for j := 1; j <= k/2; j++ {
			v := (u + j) % n
			e := norm(graph.NodeID(u), graph.NodeID(v))
			if !present[e] {
				present[e] = true
				edges = append(edges, e)
			}
		}
	}
	// Rewire: for each lattice edge (u, u+j), with probability p replace v
	// with a uniform random node, avoiding self-loops and duplicates.
	for i := range edges {
		if rng.Float64() >= p {
			continue
		}
		e := edges[i]
		u := e.u
		for attempt := 0; attempt < 2*n; attempt++ {
			w := graph.NodeID(rng.Intn(n))
			if w == u {
				continue
			}
			ne := norm(u, w)
			if present[ne] {
				continue
			}
			delete(present, e)
			present[ne] = true
			edges[i] = ne
			break
		}
	}
	b := graph.NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e.u, e.v)
	}
	return b.Build()
}

// ErdosRenyi generates G(n, m): m distinct uniform random edges over n
// nodes.
func ErdosRenyi(n, m int, seed int64) *graph.Graph {
	if n <= 1 {
		panic("gen: ErdosRenyi requires n>1")
	}
	maxEdges := int64(n) * int64(n-1) / 2
	if int64(m) > maxEdges {
		m = int(maxEdges)
	}
	rng := rand.New(rand.NewSource(seed))
	type pair struct{ u, v graph.NodeID }
	present := make(map[pair]bool, m)
	b := graph.NewBuilder(n)
	for len(present) < m {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		p := pair{u, v}
		if present[p] {
			continue
		}
		present[p] = true
		b.AddEdge(u, v)
	}
	return b.Build()
}

// SBMConfig parameterizes PlantedPartition.
type SBMConfig struct {
	Nodes       int     // total node count
	Communities int     // number of equally sized communities
	AvgDegree   float64 // expected average degree
	MixingP     float64 // fraction of a node's edges that leave its community (0..1)
}

// PlantedPartition generates a stochastic block model graph with equally
// sized communities: each node receives ~AvgDegree/2 edges, a MixingP
// fraction of which go to uniform random nodes outside its community and the
// rest to uniform random nodes inside. These community-rich graphs stand in
// for the paper's social / collaboration / co-purchase datasets.
func PlantedPartition(cfg SBMConfig, seed int64) *graph.Graph {
	if cfg.Nodes <= 1 || cfg.Communities <= 0 {
		panic("gen: PlantedPartition requires Nodes>1, Communities>0")
	}
	if cfg.Communities > cfg.Nodes {
		cfg.Communities = cfg.Nodes
	}
	rng := rand.New(rand.NewSource(seed))
	n := cfg.Nodes
	c := cfg.Communities
	// Community boundary arithmetic is done in int64: u*c and i*n reach
	// 10^12 at the scale tier (n=10^6, c=10^6 worst case), past 32-bit int.
	commOf := func(u int) int { return int(int64(u) * int64(c) / int64(n)) }
	commStart := func(i int) int { return int((int64(i)*int64(n) + int64(c) - 1) / int64(c)) }
	commEnd := func(i int) int { return int(((int64(i)+1)*int64(n) + int64(c) - 1) / int64(c)) } // exclusive
	b := graph.NewBuilder(n)
	edgesPerNode := cfg.AvgDegree / 2
	for u := 0; u < n; u++ {
		cu := commOf(u)
		lo, hi := commStart(cu), commEnd(cu)
		// Draw a Poisson-ish count by stochastic rounding of edgesPerNode.
		cnt := int(edgesPerNode)
		if rng.Float64() < edgesPerNode-float64(cnt) {
			cnt++
		}
		for e := 0; e < cnt; e++ {
			var v int
			if rng.Float64() < cfg.MixingP || hi-lo <= 1 {
				v = rng.Intn(n)
			} else {
				v = lo + rng.Intn(hi-lo)
			}
			if v == u {
				continue
			}
			b.AddEdge(graph.NodeID(u), graph.NodeID(v))
		}
	}
	return b.Build()
}

// Grid2D generates a w×h 4-neighbor lattice, optionally with a fraction of
// random "highway" chords, approximating a road network.
func Grid2D(w, h int, highways float64, seed int64) *graph.Graph {
	if w <= 0 || h <= 0 {
		panic("gen: Grid2D requires positive dimensions")
	}
	n := w * h
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	id := func(x, y int) graph.NodeID { return graph.NodeID(y*w + x) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				b.AddEdge(id(x, y), id(x+1, y))
			}
			if y+1 < h {
				b.AddEdge(id(x, y), id(x, y+1))
			}
		}
	}
	extra := int(highways * float64(n))
	for i := 0; i < extra; i++ {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		if u != v {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}
