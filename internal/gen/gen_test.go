package gen

import (
	"testing"

	"pegasus/internal/graph"
)

func TestBarabasiAlbert(t *testing.T) {
	g := BarabasiAlbert(500, 3, 1)
	if g.NumNodes() != 500 {
		t.Fatalf("|V| = %d, want 500", g.NumNodes())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	_, count := graph.Components(g)
	if count != 1 {
		t.Fatalf("BA graph has %d components, want 1", count)
	}
	// ~ (n-m)*m + seed clique edges; allow slack for dedup.
	want := int64((500-3)*3 + 3)
	if g.NumEdges() < want*8/10 || g.NumEdges() > want {
		t.Fatalf("|E| = %d, want near %d", g.NumEdges(), want)
	}
	// Heavy tail: max degree far above average.
	if float64(g.MaxDegree()) < 3*g.AvgDegree() {
		t.Errorf("BA max degree %d not heavy-tailed vs avg %.1f", g.MaxDegree(), g.AvgDegree())
	}
}

func TestBarabasiAlbertDeterminism(t *testing.T) {
	a := BarabasiAlbert(200, 2, 7)
	b := BarabasiAlbert(200, 2, 7)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("BA not deterministic for fixed seed")
	}
	c := BarabasiAlbert(200, 2, 8)
	// Different seeds should (overwhelmingly) differ in some adjacency.
	same := true
	for u := 0; u < a.NumNodes() && same; u++ {
		x, y := a.Neighbors(graph.NodeID(u)), c.Neighbors(graph.NodeID(u))
		if len(x) != len(y) {
			same = false
			break
		}
		for i := range x {
			if x[i] != y[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical BA graphs")
	}
}

func TestBarabasiAlbertSmallN(t *testing.T) {
	g := BarabasiAlbert(3, 5, 1) // m clamped to n-1
	if g.NumNodes() != 3 {
		t.Fatalf("|V| = %d, want 3", g.NumNodes())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestWattsStrogatzLattice(t *testing.T) {
	g := WattsStrogatz(100, 4, 0, 1)
	if g.NumNodes() != 100 {
		t.Fatalf("|V| = %d, want 100", g.NumNodes())
	}
	if g.NumEdges() != 200 { // n*k/2
		t.Fatalf("|E| = %d, want 200", g.NumEdges())
	}
	for u := 0; u < 100; u++ {
		if d := g.Degree(graph.NodeID(u)); d != 4 {
			t.Fatalf("lattice degree(%d) = %d, want 4", u, d)
		}
	}
}

func TestWattsStrogatzRewiringShrinksDiameter(t *testing.T) {
	lattice := WattsStrogatz(1000, 20, 0, 3)
	rewired := WattsStrogatz(1000, 20, 0.1, 3)
	dl := graph.EffectiveDiameter(lattice, 60, 1)
	dr := graph.EffectiveDiameter(rewired, 60, 1)
	if dr >= dl {
		t.Fatalf("rewiring did not shrink effective diameter: %v >= %v", dr, dl)
	}
	if err := rewired.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Edge count preserved by rewiring.
	if lattice.NumEdges() != rewired.NumEdges() {
		t.Fatalf("rewiring changed |E|: %d -> %d", lattice.NumEdges(), rewired.NumEdges())
	}
}

func TestErdosRenyi(t *testing.T) {
	g := ErdosRenyi(100, 300, 5)
	if g.NumNodes() != 100 || g.NumEdges() != 300 {
		t.Fatalf("|V|=%d |E|=%d, want 100,300", g.NumNodes(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Requesting more than C(n,2) edges clamps.
	small := ErdosRenyi(5, 100, 5)
	if small.NumEdges() != 10 {
		t.Fatalf("clamped |E| = %d, want 10", small.NumEdges())
	}
}

func TestPlantedPartition(t *testing.T) {
	cfg := SBMConfig{Nodes: 600, Communities: 6, AvgDegree: 10, MixingP: 0.05}
	g := PlantedPartition(cfg, 2)
	if g.NumNodes() != 600 {
		t.Fatalf("|V| = %d, want 600", g.NumNodes())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	avg := g.AvgDegree()
	if avg < 6 || avg > 12 {
		t.Fatalf("avg degree %.1f outside expected band around 10", avg)
	}
	// Communities should be assortative: count intra vs inter edges.
	n, c := cfg.Nodes, cfg.Communities
	commOf := func(u graph.NodeID) int { return int(u) * c / n }
	intra, inter := 0, 0
	g.Edges(func(u, v graph.NodeID) bool {
		if commOf(u) == commOf(v) {
			intra++
		} else {
			inter++
		}
		return true
	})
	if intra <= 5*inter {
		t.Fatalf("SBM not assortative enough: intra=%d inter=%d", intra, inter)
	}
}

func TestGrid2D(t *testing.T) {
	g := Grid2D(10, 7, 0, 1)
	if g.NumNodes() != 70 {
		t.Fatalf("|V| = %d, want 70", g.NumNodes())
	}
	// Lattice edges: (w-1)*h + w*(h-1) = 9*7 + 10*6 = 123.
	if g.NumEdges() != 123 {
		t.Fatalf("|E| = %d, want 123", g.NumEdges())
	}
	hw := Grid2D(10, 7, 0.2, 1)
	if hw.NumEdges() <= g.NumEdges() {
		t.Fatal("highways did not add edges")
	}
	if err := hw.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestGeneratorPanics(t *testing.T) {
	assertPanics(t, func() { BarabasiAlbert(0, 1, 1) })
	assertPanics(t, func() { WattsStrogatz(10, 3, 0, 1) }) // odd k
	assertPanics(t, func() { ErdosRenyi(1, 1, 1) })
	assertPanics(t, func() { PlantedPartition(SBMConfig{Nodes: 1, Communities: 1}, 1) })
	assertPanics(t, func() { Grid2D(0, 5, 0, 1) })
}

func assertPanics(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	fn()
}
