package gen

import (
	"testing"

	"pegasus/internal/graph"
)

// Regression tests for the 10^5–10^6-node scale audit: capacity hints and
// community-boundary arithmetic must not overflow, and the generators must
// stay O(|E|) in time and scratch space at the scale tier.

// TestBarabasiAlbertScale pins the exact edge count at the 10^5 tier: BA
// never produces duplicate edges (each new node picks m distinct existing
// targets), so |E| = m(m+1)/2 clique edges + (n-m-1)·m attachment edges.
func TestBarabasiAlbertScale(t *testing.T) {
	n, m := 100_000, 8
	if testing.Short() {
		n = 10_000
	}
	g := BarabasiAlbert(n, m, 501)
	if g.NumNodes() != n {
		t.Fatalf("|V| = %d, want %d", g.NumNodes(), n)
	}
	want := int64(m*(m+1)/2) + int64(n-m-1)*int64(m)
	if g.NumEdges() != want {
		t.Fatalf("|E| = %d, want %d", g.NumEdges(), want)
	}
	if _, count := graph.Components(g); count != 1 {
		t.Fatalf("BA graph has %d components, want 1", count)
	}
}

// TestBarabasiAlbertNearCompleteHint: with m ≈ n the naive 2*n*m capacity
// hint would reserve O(n²); the clamped hint must still produce the correct
// (complete) graph without over-reserving.
func TestBarabasiAlbertNearCompleteHint(t *testing.T) {
	n := 60
	g := BarabasiAlbert(n, n+100, 1) // m clamps to n-1 -> complete graph
	if want := int64(n) * int64(n-1) / 2; g.NumEdges() != want {
		t.Fatalf("|E| = %d, want complete graph %d", g.NumEdges(), want)
	}
}

// TestErdosRenyiEdgeCapClamp: requesting more edges than C(n,2) must clamp
// (the comparison is in int64 so huge m does not wrap).
func TestErdosRenyiEdgeCapClamp(t *testing.T) {
	g := ErdosRenyi(5, 1<<30, 7)
	if g.NumEdges() != 10 {
		t.Fatalf("|E| = %d, want C(5,2) = 10", g.NumEdges())
	}
}

// TestPlantedPartitionManyCommunities exercises the int64 community-boundary
// arithmetic with a community count high enough that i*n would overflow
// 32-bit ints, and checks every node lands inside a valid community slice
// (Validate catches out-of-range endpoints).
func TestPlantedPartitionManyCommunities(t *testing.T) {
	n := 50_000
	if testing.Short() {
		n = 5_000
	}
	g := PlantedPartition(SBMConfig{
		Nodes: n, Communities: n / 10, AvgDegree: 6, MixingP: 0.1,
	}, 11)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if g.NumNodes() != n {
		t.Fatalf("|V| = %d, want %d", g.NumNodes(), n)
	}
	if avg := g.AvgDegree(); avg < 4 || avg > 8 {
		t.Fatalf("average degree %.2f outside [4, 8] around target 6", avg)
	}
}
