// Package typederr enforces the typed-error contract of the persistence
// layer (PR 5) and the repo-wide sentinel-wrapping convention:
//
//   - internal/persist and internal/bitio promise that malformed input
//     bytes yield an error wrapping ErrCorrupt or ErrVersion — never a
//     panic, never an anonymous error. The analyzer flags panic calls,
//     fmt.Errorf without a %w verb, and errors.New outside package-level
//     sentinel declarations in those packages.
//
//   - Repo-wide, passing a sentinel (a package-level `var ErrX = ...`)
//     to fmt.Errorf without %w silently destroys errors.Is identity;
//     flagged everywhere.
//
//   - In the serving/persistence/observability packages, an error result
//     silently dropped by an expression statement is flagged; discard
//     deliberately with `_ = f()` (the convention this analyzer accepts)
//     or handle it. Deferred calls are exempt — `defer f.Close()` on a
//     read-only file is idiomatic; write paths check Close explicitly.
//
// Escape hatch: //lint:typederr <justification>.
package typederr

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"pegasus/internal/lint/analysis"
	"pegasus/internal/lint/lintutil"
)

// TypedPackages must return only sentinel-wrapping errors and never panic
// on input bytes. Tests may append fixture paths.
var TypedPackages = []string{
	"pegasus/internal/persist",
	"pegasus/internal/bitio",
}

// NoDropPackages additionally forbid silently ignored error returns.
// Tests may append fixture paths.
var NoDropPackages = []string{
	"pegasus/internal/persist",
	"pegasus/internal/bitio",
	"pegasus/internal/server",
	"pegasus/internal/obs",
}

// Analyzer enforces the typed-error and error-hygiene contracts.
var Analyzer = &analysis.Analyzer{
	Name: "typederr",
	Doc: "flag untyped errors in persist/bitio, lost sentinel wraps, and silently dropped errors\n\n" +
		"persist/bitio return only ErrCorrupt/ErrVersion-wrapping errors and\n" +
		"never panic on input; fmt.Errorf over a sentinel needs %w; hot-path\n" +
		"error results are handled or discarded with an explicit `_ =`.\n" +
		"Annotate //lint:typederr with a justification to opt out.",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	typed := lintutil.PackageMatches(pass.Pkg.Path(), TypedPackages)
	noDrop := lintutil.PackageMatches(pass.Pkg.Path(), NoDropPackages)
	wrapped := wrapperArguments(pass)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GenDecl:
				// Package-level `var ErrX = errors.New(...)` sentinel
				// declarations are the one legitimate errors.New site in
				// typed packages; skip their initializers entirely.
				if typed && n.Tok == token.VAR && isPackageLevel(pass, n) {
					return false
				}
			case *ast.CallExpr:
				if !wrapped[n] {
					checkCall(pass, n, typed)
				}
			case *ast.ExprStmt:
				if noDrop {
					checkDroppedError(pass, n)
				}
			}
			return true
		})
	}
	return nil, nil
}

// wrapperArguments collects error-constructing calls that appear directly
// as arguments to a same-package call — the `corrupt("where", fmt.Errorf(
// ...))` helper pattern. Responsibility for typing moves to the helper,
// whose own returns this analyzer checks; the inner construction is exempt.
func wrapperArguments(pass *analysis.Pass) map[*ast.CallExpr]bool {
	exempt := map[*ast.CallExpr]bool{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			f := lintutil.CalleeFunc(pass, call)
			if f == nil || f.Pkg() == nil || f.Pkg() != pass.Pkg {
				return true
			}
			for _, arg := range call.Args {
				if inner, ok := ast.Unparen(arg).(*ast.CallExpr); ok {
					exempt[inner] = true
				}
			}
			return true
		})
	}
	return exempt
}

func isPackageLevel(pass *analysis.Pass, decl *ast.GenDecl) bool {
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			if d == decl {
				return true
			}
		}
	}
	return false
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, typed bool) {
	// panic() in a typed package: the decode contract is "typed error,
	// never a panic, on any input bytes".
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
		if typed {
			if _, isBuiltin := pass.ObjectOf(id).(*types.Builtin); isBuiltin {
				pass.Reportf(call.Pos(),
					"panic in %s violates the typed-error contract (return an error wrapping ErrCorrupt/ErrVersion instead, or annotate //lint:typederr)",
					pass.Pkg.Path())
			}
		}
		return
	}
	if lintutil.IsPkgFunc(pass, call, "errors", "New") {
		if typed {
			pass.Reportf(call.Pos(),
				"errors.New outside a package-level sentinel declaration in %s produces an untyped error; wrap ErrCorrupt/ErrVersion with fmt.Errorf(...%%w...) or annotate //lint:typederr",
				pass.Pkg.Path())
		}
		return
	}
	if !lintutil.IsPkgFunc(pass, call, "fmt", "Errorf") || len(call.Args) == 0 {
		return
	}
	format, ok := stringLit(call.Args[0])
	hasWrap := ok && strings.Contains(format, "%w")
	if typed && ok && !hasWrap {
		pass.Reportf(call.Pos(),
			"fmt.Errorf without %%w in %s produces an untyped error; wrap ErrCorrupt/ErrVersion (or the incoming error) or annotate //lint:typederr",
			pass.Pkg.Path())
		return
	}
	if hasWrap || !ok {
		return
	}
	// Repo-wide: a sentinel argument formatted without %w loses its
	// errors.Is identity.
	for _, arg := range call.Args[1:] {
		if name := sentinelName(pass, arg); name != "" {
			pass.Reportf(call.Pos(),
				"fmt.Errorf formats sentinel %s without %%w, destroying errors.Is identity; use %%w or annotate //lint:typederr", name)
			return
		}
	}
}

func stringLit(e ast.Expr) (string, bool) {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	return lit.Value, true
}

// sentinelName reports the name of a package-level error variable named
// Err* that e denotes, or "".
func sentinelName(pass *analysis.Pass, e ast.Expr) string {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return ""
	}
	v, ok := pass.ObjectOf(id).(*types.Var)
	if !ok || v.Pkg() == nil || !strings.HasPrefix(v.Name(), "Err") {
		return ""
	}
	if v.Parent() != v.Pkg().Scope() {
		return ""
	}
	if !lintutil.IsErrorType(v.Type()) {
		return ""
	}
	return v.Name()
}

// neverFails lists packages whose Writer-shaped methods are documented to
// always return a nil error (bytes.Buffer, strings.Builder, hash.Hash);
// forcing `_, _ =` on those would be pure noise.
var neverFails = map[string]bool{"bytes": true, "strings": true, "hash": true}

// checkDroppedError flags expression statements whose call result includes
// an error that is neither assigned nor discarded.
func checkDroppedError(pass *analysis.Pass, stmt *ast.ExprStmt) {
	call, ok := stmt.X.(*ast.CallExpr)
	if !ok {
		return
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if t := pass.TypeOf(sel.X); t != nil {
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if n, ok := t.(*types.Named); ok && n.Obj().Pkg() != nil && neverFails[n.Obj().Pkg().Path()] {
				return
			}
		}
	}
	t := pass.TypeOf(call)
	if t == nil {
		return
	}
	returnsErr := false
	switch t := t.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if lintutil.IsErrorType(t.At(i).Type()) {
				returnsErr = true
			}
		}
	default:
		returnsErr = lintutil.IsErrorType(t)
	}
	if !returnsErr {
		return
	}
	pass.Reportf(stmt.Pos(),
		"error result silently dropped in %s; handle it or discard explicitly (`_ = ...`) or annotate //lint:typederr",
		pass.Pkg.Path())
}
