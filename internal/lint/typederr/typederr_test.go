package typederr_test

import (
	"path/filepath"
	"testing"

	"pegasus/internal/lint/analysistest"
	"pegasus/internal/lint/typederr"
)

func TestTypedErr(t *testing.T) {
	typederr.TypedPackages = append(typederr.TypedPackages, "typederrtyped")
	typederr.NoDropPackages = append(typederr.NoDropPackages, "typederrtyped")
	defer func() {
		typederr.TypedPackages = typederr.TypedPackages[:len(typederr.TypedPackages)-1]
		typederr.NoDropPackages = typederr.NoDropPackages[:len(typederr.NoDropPackages)-1]
	}()
	analysistest.Run(t, filepath.Join("..", "testdata"), typederr.Analyzer,
		"typederrtyped", "typederrwide")
}
