// Package maporder enforces the determinism contract behind every
// bit-identity claim in this repository (golden-fingerprint parallel
// builds, transplant byte-equality, canonical codec): inside
// determinism-critical packages, Go's randomized map iteration order must
// never reach an output, a float accumulation, or a tie-break. The
// analyzer flags `for range` over a map value and ranging directly over
// the unordered maps.Keys/maps.Values/maps.All iterators. The fix is to
// sort the keys first; where iteration order provably cannot matter (e.g.
// the result is itself a set), annotate the loop with
//
//	//lint:ordered <why order cannot affect the output>
package maporder

import (
	"go/ast"
	"go/types"
	"strings"

	"pegasus/internal/lint/analysis"
	"pegasus/internal/lint/lintutil"
)

// Critical lists the determinism-critical package paths (each entry also
// covers its subpackages). A map range outside these packages is not
// flagged. Tests may append fixture paths.
var Critical = []string{
	"pegasus/internal/core",
	"pegasus/internal/distributed",
	"pegasus/internal/persist",
	"pegasus/internal/partition",
	"pegasus/internal/graph",
	"pegasus/internal/ingest",
}

// Analyzer flags unordered map iteration in determinism-critical packages.
var Analyzer = &analysis.Analyzer{
	Name:      "maporder",
	Directive: "ordered",
	Doc: "flag unordered map iteration in determinism-critical packages\n\n" +
		"Ranging over a map (or over maps.Keys/Values/All) observes Go's\n" +
		"randomized iteration order; in " + "pegasus's fingerprinted build and\n" +
		"codec paths that randomness becomes nondeterministic output. Sort\n" +
		"the keys first, or annotate //lint:ordered with a justification.",
	// Golden fingerprints and byte-equality expectations are computed in
	// _test.go files too; an unordered range there makes the *expected*
	// value flap, which is just as nondeterministic as flapping output.
	IncludeTests: true,
	Run:          run,
}

func run(pass *analysis.Pass) (any, error) {
	// External test packages ("pkg_test") inherit pkg's criticality.
	if !lintutil.PackageMatches(strings.TrimSuffix(pass.Pkg.Path(), "_test"), Critical) {
		return nil, nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			x := ast.Unparen(rng.X)
			if t := pass.TypeOf(x); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					pass.Reportf(rng.For,
						"range over map is unordered in determinism-critical package %s; sort the keys first or annotate //lint:ordered",
						pass.Pkg.Path())
					return true
				}
			}
			if call, ok := x.(*ast.CallExpr); ok {
				if lintutil.IsPkgFunc(pass, call, "maps", "Keys", "Values", "All") {
					pass.Reportf(rng.For,
						"range over maps.%s is unordered; collect and sort (e.g. slices.Sorted) or annotate //lint:ordered",
						lintutil.CalleeFunc(pass, call).Name())
				}
			}
			return true
		})
	}
	return nil, nil
}
