package maporder_test

import (
	"path/filepath"
	"testing"

	"pegasus/internal/lint/analysistest"
	"pegasus/internal/lint/maporder"
)

func TestMapOrder(t *testing.T) {
	maporder.Critical = append(maporder.Critical, "maporderfix")
	defer func() { maporder.Critical = maporder.Critical[:len(maporder.Critical)-1] }()
	analysistest.Run(t, filepath.Join("..", "testdata"), maporder.Analyzer,
		"maporderfix", "mapordernoncrit")
}
