// Package lintutil holds the small type-resolution helpers shared by the
// pegasus-lint analyzers.
package lintutil

import (
	"go/ast"
	"go/types"

	"pegasus/internal/lint/analysis"
)

// CalleeFunc resolves the function or method a call expression invokes, or
// nil when it cannot be determined (calls through function-typed variables,
// built-ins, conversions).
func CalleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := pass.ObjectOf(fun).(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		// Package-qualified call: pkg.F.
		if f, ok := pass.ObjectOf(fun.Sel).(*types.Func); ok {
			return f
		}
	}
	return nil
}

// IsPkgFunc reports whether call invokes one of the named functions from
// the package with import path pkgPath.
func IsPkgFunc(pass *analysis.Pass, call *ast.CallExpr, pkgPath string, names ...string) bool {
	f := CalleeFunc(pass, call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != pkgPath {
		return false
	}
	for _, n := range names {
		if f.Name() == n {
			return true
		}
	}
	return false
}

// ReceiverTypeName returns the name of the named type (after stripping one
// pointer) that f is a method on, or "" for plain functions.
func ReceiverTypeName(f *types.Func) string {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// HasContextParam reports whether the function type ft declares a
// context.Context parameter.
func HasContextParam(pass *analysis.Pass, ft *ast.FuncType) bool {
	if ft == nil || ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if t := pass.TypeOf(field.Type); t != nil && IsContextType(t) {
			return true
		}
	}
	return false
}

// IsErrorType reports whether t is the built-in error interface type.
func IsErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// PackageMatches reports whether pkgPath equals one of the listed paths or
// lies beneath one of them (list entry "a/b" matches "a/b" and "a/b/c").
func PackageMatches(pkgPath string, list []string) bool {
	for _, p := range list {
		if pkgPath == p {
			return true
		}
		if len(pkgPath) > len(p) && pkgPath[:len(p)] == p && pkgPath[len(p)] == '/' {
			return true
		}
	}
	return false
}
