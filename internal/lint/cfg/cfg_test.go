package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseBody parses src as the body of a function and returns its graph.
func parseBody(t *testing.T, body string) *Graph {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "t.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fn := file.Decls[len(file.Decls)-1].(*ast.FuncDecl)
	return New(fn.Body)
}

// hitCall returns a hit predicate matching a call to the named function.
func hitCall(name string) func(ast.Node) bool {
	return func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return false
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			return fun.Name == name
		case *ast.SelectorExpr:
			return fun.Sel.Name == name
		}
		return false
	}
}

func TestStraightLine(t *testing.T) {
	g := parseBody(t, "x := 1\n_ = x\njoin()")
	if !g.ExitReachable() {
		t.Fatal("exit unreachable in straight-line body")
	}
	if !g.AllExitPathsHit(hitCall("join")) {
		t.Error("join() on the only path not detected")
	}
	if g.AllExitPathsHit(hitCall("missing")) {
		t.Error("absent call reported as on all paths")
	}
}

func TestIfElseBothArms(t *testing.T) {
	// join() on both arms → all paths hit; only one arm → not all paths.
	both := parseBody(t, "if c() {\njoin()\n} else {\njoin()\n}")
	if !both.AllExitPathsHit(hitCall("join")) {
		t.Error("join in both arms should cover all paths")
	}
	oneArm := parseBody(t, "if c() {\njoin()\n}")
	if oneArm.AllExitPathsHit(hitCall("join")) {
		t.Error("join in one arm must not cover all paths")
	}
	early := parseBody(t, "if c() {\nreturn\n}\njoin()")
	if early.AllExitPathsHit(hitCall("join")) {
		t.Error("early return path skips join; must not count as covered")
	}
}

func TestLoopBackEdgeAndBreak(t *testing.T) {
	g := parseBody(t, "for i := 0; i < 10; i++ {\nif c() {\nbreak\n}\nwork()\n}\njoin()")
	if !g.ExitReachable() {
		t.Fatal("loop with break: exit unreachable")
	}
	if !g.AllExitPathsHit(hitCall("join")) {
		t.Error("join after loop should be on all exit paths")
	}
	// The loop body must have a back edge: some block reaches a block with a
	// smaller index.
	back := false
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if s.Index < b.Index && strings.HasPrefix(s.Kind, "for.") {
				back = true
			}
		}
	}
	if !back {
		t.Errorf("no back edge found:\n%s", g)
	}
}

func TestInfiniteLoopExitUnreachable(t *testing.T) {
	g := parseBody(t, "for {\nwork()\n}")
	if g.ExitReachable() {
		t.Errorf("for{} without break must not reach exit:\n%s", g)
	}
	// Vacuous truth: no entry→exit path exists.
	if !g.AllExitPathsHit(hitCall("never")) {
		t.Error("AllExitPathsHit should be vacuously true when exit is unreachable")
	}
	withBreak := parseBody(t, "for {\nif c() {\nbreak\n}\n}")
	if !withBreak.ExitReachable() {
		t.Error("for{} with break must reach exit")
	}
}

func TestRangeEmptyIterationPath(t *testing.T) {
	// A range may iterate zero times, so a hit only inside the body does
	// not cover all paths.
	g := parseBody(t, "for _, v := range xs() {\n_ = v\njoin()\n}")
	if g.AllExitPathsHit(hitCall("join")) {
		t.Error("join inside range body must not cover the empty-range path")
	}
	after := parseBody(t, "for range xs() {\n}\njoin()")
	if !after.AllExitPathsHit(hitCall("join")) {
		t.Error("join after range should cover all paths")
	}
}

func TestDeferCollectionAndOrder(t *testing.T) {
	g := parseBody(t, "defer a()\nif c() {\ndefer b()\n}\ndefer a2()")
	if len(g.Defers) != 3 {
		t.Fatalf("expected 3 deferred calls, got %d", len(g.Defers))
	}
	names := []string{}
	for _, d := range g.Defers {
		names = append(names, d.Fun.(*ast.Ident).Name)
	}
	if got := strings.Join(names, ","); got != "a,b,a2" {
		t.Errorf("defers out of source order: %s", got)
	}
}

func TestPanicEdge(t *testing.T) {
	g := parseBody(t, "if c() {\npanic(\"boom\")\n}\njoin()")
	// The panic path bypasses join(), so join is NOT on all exit paths.
	if g.AllExitPathsHit(hitCall("join")) {
		t.Errorf("panic edge to exit must bypass join():\n%s", g)
	}
	// But the panic call itself plus join covers everything.
	if !g.AllExitPathsHit(func(n ast.Node) bool {
		return hitCall("join")(n) || isPanicCall(exprOf(n))
	}) {
		t.Error("panic-or-join should cover all paths")
	}
}

func exprOf(n ast.Node) ast.Expr {
	if e, ok := n.(ast.Expr); ok {
		return e
	}
	if s, ok := n.(*ast.ExprStmt); ok {
		return s.X
	}
	return nil
}

func TestSwitchDefaultAndFallthrough(t *testing.T) {
	// Without default, the no-match path skips every case body.
	noDefault := parseBody(t, "switch v() {\ncase 1:\njoin()\ncase 2:\njoin()\n}")
	if noDefault.AllExitPathsHit(hitCall("join")) {
		t.Error("switch without default must keep the no-match path uncovered")
	}
	withDefault := parseBody(t, "switch v() {\ncase 1:\njoin()\ndefault:\njoin()\n}")
	if !withDefault.AllExitPathsHit(hitCall("join")) {
		t.Error("switch with join in every clause incl. default should cover all paths")
	}
	fallth := parseBody(t, "switch v() {\ncase 1:\nfallthrough\ndefault:\njoin()\n}")
	if !fallth.AllExitPathsHit(hitCall("join")) {
		t.Errorf("fallthrough into the covering clause should count:\n%s", fallth)
	}
}

func TestSelectClauses(t *testing.T) {
	g := parseBody(t, "select {\ncase <-a():\njoin()\ncase <-b():\n}")
	if g.AllExitPathsHit(hitCall("join")) {
		t.Error("second select clause lacks join; must not be covered")
	}
	all := parseBody(t, "select {\ncase <-a():\njoin()\ncase <-b():\njoin()\n}")
	if !all.AllExitPathsHit(hitCall("join")) {
		t.Error("join in every clause should cover all paths")
	}
}

func TestLabeledContinueAndGoto(t *testing.T) {
	g := parseBody(t, `
outer:
	for i := 0; i < 3; i++ {
		for {
			if c() {
				continue outer
			}
			break
		}
		work()
	}
	join()`)
	if !g.ExitReachable() {
		t.Fatalf("labeled loops: exit unreachable:\n%s", g)
	}
	if !g.AllExitPathsHit(hitCall("join")) {
		t.Error("join after labeled loops should cover all paths")
	}

	gt := parseBody(t, "i := 0\nloop:\nif c() {\ni++\ngoto loop\n}\njoin()")
	if !gt.ExitReachable() {
		t.Fatalf("goto loop: exit unreachable:\n%s", gt)
	}
	if !gt.AllExitPathsHit(hitCall("join")) {
		t.Error("join after goto loop should cover all paths")
	}
	// And the goto must create a cycle (a real back edge).
	cyc := false
	for _, b := range gt.Blocks {
		for _, s := range b.Succs {
			if s.Index < b.Index && s != gt.Exit {
				cyc = true
			}
		}
	}
	if !cyc {
		t.Errorf("goto produced no back edge:\n%s", gt)
	}
}

func TestWalkShallowSkipsFuncLit(t *testing.T) {
	g := parseBody(t, "go func() {\njoin()\n}()\n")
	// join() only occurs inside the literal; shallow walks must not see it.
	if g.AllExitPathsHit(hitCall("join")) {
		t.Error("call inside a FuncLit must not count for the enclosing function")
	}
}

func TestNodesAppearOnce(t *testing.T) {
	// Every simple node must land in exactly one block: double-stored nodes
	// would double-apply transfer functions.
	g := parseBody(t, `
	x := 1
	if x > 0 {
		x = 2
	} else {
		x = 3
	}
	for i := 0; i < x; i++ {
		x += i
	}
	switch x {
	case 1:
		x = 4
	}
	_ = x`)
	seen := map[ast.Node]string{}
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if prev, dup := seen[n]; dup {
				t.Errorf("node %T stored in both %s and %s", n, prev, b)
			}
			seen[n] = b.String()
		}
	}
}

func TestFuncGraphForms(t *testing.T) {
	src := "package p\nfunc f() { g() }\nvar v = func() { g() }"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "t.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	decl := file.Decls[0].(*ast.FuncDecl)
	if FuncGraph(decl) == nil {
		t.Error("FuncGraph(FuncDecl) = nil")
	}
	lit := file.Decls[1].(*ast.GenDecl).Specs[0].(*ast.ValueSpec).Values[0].(*ast.FuncLit)
	if FuncGraph(lit) == nil {
		t.Error("FuncGraph(FuncLit) = nil")
	}
	if FuncGraph(file) != nil {
		t.Error("FuncGraph(non-function) should be nil")
	}
}
