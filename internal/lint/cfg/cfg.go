// Package cfg builds per-function control-flow graphs over go/ast for the
// pegasus-lint dataflow analyzers. It is the stdlib-only stand-in for
// golang.org/x/tools/go/cfg (which the offline build image cannot fetch),
// deliberately simplified to what the goleak/lockorder/nilness analyzers
// need:
//
//   - every function body becomes a Graph of basic Blocks connected by
//     Succs/Preds edges, with one synthetic Entry and one synthetic Exit;
//   - a return statement edges to Exit; falling off the end of the body
//     edges to Exit; a call to the built-in panic edges to Exit (the
//     "panic edge" — deferred calls still run there, which is why Defers
//     are exposed separately and analyzers treat them as applying on every
//     Exit path);
//   - if/for/range/switch/type-switch/select/goto/labeled statements
//     produce the usual branch and back edges, including labeled
//     break/continue and fallthrough;
//   - blocks store only *simple* nodes (assignments, expressions, sends,
//     go/defer statements, a branch's condition expression, a range
//     statement's key/value variables). Composite control statements are
//     never stored, so walking every block node visits each AST node at
//     most once and in execution order.
//
// Expression evaluation inside one block is treated as atomic: && / || do
// not introduce extra edges. That is a deliberate precision trade-off — the
// invariants checked by the analyzers built on this package (goroutine
// joins, mutex release, error-before-use) are established by statements,
// not by short-circuit sub-expressions.
package cfg

import (
	"fmt"
	"go/ast"
	"strings"
)

// Block is one straight-line sequence of simple nodes. Execution enters at
// the first node and leaves through one of Succs.
type Block struct {
	// Index is the block's position in Graph.Blocks (stable, deterministic:
	// blocks are created in source order).
	Index int
	// Kind describes why the block exists ("entry", "exit", "if.then",
	// "for.head", ...) — for debugging and tests only.
	Kind string
	// Nodes are the simple statements and expressions executed in order.
	Nodes []ast.Node
	// Succs are the possible successor blocks.
	Succs []*Block
	// Preds are the predecessor blocks (the reverse of Succs).
	Preds []*Block
}

func (b *Block) String() string { return fmt.Sprintf("b%d(%s)", b.Index, b.Kind) }

// Graph is the control-flow graph of one function body.
type Graph struct {
	Blocks []*Block
	Entry  *Block
	Exit   *Block
	// Defers lists every deferred call in source order. A deferred call runs
	// on every path that leaves the function after its DeferStmt executed —
	// including panic paths — so analyzers conservatively treat a deferred
	// effect as applying at Exit.
	Defers []*ast.CallExpr
}

// New builds the control-flow graph of body. A nil body (declaration
// without a body) yields a graph whose Entry edges straight to Exit.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{g: &Graph{}}
	b.g.Entry = b.newBlock("entry")
	b.g.Exit = b.newBlock("exit")
	b.cur = b.g.Entry
	if body != nil {
		b.stmtList(body.List)
	}
	b.edge(b.cur, b.g.Exit)
	b.resolveGotos()
	return b.g
}

// FuncGraph builds the graph for a *ast.FuncDecl or *ast.FuncLit; any other
// node returns nil.
func FuncGraph(fn ast.Node) *Graph {
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		return New(fn.Body)
	case *ast.FuncLit:
		return New(fn.Body)
	}
	return nil
}

// WalkShallow walks every sub-node of n in depth-first order, like
// ast.Inspect, but does not descend into function literals: a FuncLit's body
// is a different function with its own graph, and flow analyses must not
// confuse its effects with the enclosing function's. The literal node itself
// is still visited (fn returning false also prunes normally).
func WalkShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return true
		}
		if !fn(m) {
			return false
		}
		if _, isLit := m.(*ast.FuncLit); isLit {
			return false
		}
		return true
	})
}

// ExitReachable reports whether Exit is reachable from Entry — false for
// bodies that can only leave by panicking or that loop forever.
func (g *Graph) ExitReachable() bool {
	return g.reaches(g.Entry, g.Exit, nil)
}

// AllExitPathsHit reports whether every Entry→Exit path passes through at
// least one block containing a node for which hit returns true. Vacuously
// true when Exit is unreachable. Nodes are tested with WalkShallow, so
// matches inside nested function literals do not count.
func (g *Graph) AllExitPathsHit(hit func(ast.Node) bool) bool {
	blocked := map[*Block]bool{}
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			found := false
			WalkShallow(n, func(m ast.Node) bool {
				if found {
					return false
				}
				if hit(m) {
					found = true
					return false
				}
				return true
			})
			if found {
				blocked[blk] = true
				break
			}
		}
	}
	// A path avoiding every hit-block would be a counterexample.
	return !g.reaches(g.Entry, g.Exit, blocked)
}

// reaches reports whether dst is reachable from src without entering a
// blocked block (src itself is exempt from blocking only if not blocked;
// a blocked src cannot start a counterexample path).
func (g *Graph) reaches(src, dst *Block, blocked map[*Block]bool) bool {
	if blocked[src] {
		return false
	}
	seen := map[*Block]bool{src: true}
	stack := []*Block{src}
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if blk == dst {
			return true
		}
		for _, s := range blk.Succs {
			if !seen[s] && !blocked[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}

// String renders the graph compactly for tests: "b0(entry)->b2; ...".
func (g *Graph) String() string {
	var sb strings.Builder
	for _, blk := range g.Blocks {
		fmt.Fprintf(&sb, "%s ->", blk)
		for _, s := range blk.Succs {
			fmt.Fprintf(&sb, " b%d", s.Index)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

type builder struct {
	g   *Graph
	cur *Block
	// loops/switches currently open, innermost last; break/continue resolve
	// against this stack.
	targets []*target
	labels  map[string]*Block
	gotos   []pendingGoto
}

type target struct {
	label     string // "" unless the statement was labeled
	breakB    *Block
	continueB *Block // nil for switch/select
}

type pendingGoto struct {
	from  *Block
	label string
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// seal ends the current block with no fallthrough successor (after return,
// break, panic, ...). Subsequent statements land in a fresh unreachable
// block so they are still represented in the graph.
func (b *builder) seal(kind string) {
	b.cur = b.newBlock(kind)
}

func (b *builder) add(n ast.Node) {
	if n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// stmt builds one statement. label is the label attached to s ("" for
// unlabeled statements); it names the break/continue target of loops and
// switches.
func (b *builder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.LabeledStmt:
		// The label is a join point: both fallthrough and goto enter here.
		lb := b.labelBlock(s.Label.Name)
		b.edge(b.cur, lb)
		b.cur = lb
		b.stmt(s.Stmt, s.Label.Name)
	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.g.Exit)
		b.seal("unreachable.return")
	case *ast.BranchStmt:
		b.branch(s)
	case *ast.DeferStmt:
		b.add(s)
		b.g.Defers = append(b.g.Defers, s.Call)
	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			// The panic edge: control transfers to Exit (through the
			// deferred calls, which Graph.Defers accounts for).
			b.edge(b.cur, b.g.Exit)
			b.seal("unreachable.panic")
		}
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s, label)
	case *ast.RangeStmt:
		b.rangeStmt(s, label)
	case *ast.SwitchStmt:
		b.switchStmt(s, label)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s, label)
	case *ast.SelectStmt:
		b.selectStmt(s, label)
	default:
		// Assign, Decl, IncDec, Send, Go, Empty: straight-line nodes.
		b.add(s)
	}
}

func isPanicCall(x ast.Expr) bool {
	call, ok := ast.Unparen(x).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init, "")
	}
	b.add(s.Cond)
	cond := b.cur
	then := b.newBlock("if.then")
	done := b.newBlock("if.done")
	b.edge(cond, then)
	b.cur = then
	b.stmtList(s.Body.List)
	b.edge(b.cur, done)
	if s.Else != nil {
		els := b.newBlock("if.else")
		b.edge(cond, els)
		b.cur = els
		b.stmt(s.Else, "")
		b.edge(b.cur, done)
	} else {
		b.edge(cond, done)
	}
	b.cur = done
}

func (b *builder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init, "")
	}
	head := b.newBlock("for.head")
	body := b.newBlock("for.body")
	done := b.newBlock("for.done")
	post := head
	if s.Post != nil {
		post = b.newBlock("for.post")
	}
	b.edge(b.cur, head)
	if s.Cond != nil {
		head.Nodes = append(head.Nodes, s.Cond)
		b.edge(head, done)
	}
	b.edge(head, body)
	b.targets = append(b.targets, &target{label: label, breakB: done, continueB: post})
	b.cur = body
	b.stmtList(s.Body.List)
	b.targets = b.targets[:len(b.targets)-1]
	b.edge(b.cur, post)
	if s.Post != nil {
		b.cur = post
		b.stmt(s.Post, "")
		b.edge(b.cur, head)
	}
	b.cur = done
}

func (b *builder) rangeStmt(s *ast.RangeStmt, label string) {
	// The ranged expression is evaluated once, before the loop.
	b.add(s.X)
	head := b.newBlock("range.head")
	body := b.newBlock("range.body")
	done := b.newBlock("range.done")
	b.edge(b.cur, head)
	// Key/Value are (re)assigned at the top of each iteration; storing the
	// bare expressions keeps blocks free of composite statements.
	if s.Key != nil {
		head.Nodes = append(head.Nodes, s.Key)
	}
	if s.Value != nil {
		head.Nodes = append(head.Nodes, s.Value)
	}
	b.edge(head, done) // the range may be empty
	b.edge(head, body)
	b.targets = append(b.targets, &target{label: label, breakB: done, continueB: head})
	b.cur = body
	b.stmtList(s.Body.List)
	b.targets = b.targets[:len(b.targets)-1]
	b.edge(b.cur, head)
	b.cur = done
}

func (b *builder) switchStmt(s *ast.SwitchStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init, "")
	}
	if s.Tag != nil {
		b.add(s.Tag)
	}
	cond := b.cur
	done := b.newBlock("switch.done")
	b.targets = append(b.targets, &target{label: label, breakB: done})
	var clauses []*Block
	hasDefault := false
	for _, cc := range s.Body.List {
		cc, ok := cc.(*ast.CaseClause)
		if !ok {
			continue
		}
		blk := b.newBlock("switch.case")
		if cc.List == nil {
			hasDefault = true
		}
		for _, e := range cc.List {
			blk.Nodes = append(blk.Nodes, e)
		}
		b.edge(cond, blk)
		clauses = append(clauses, blk)
	}
	if !hasDefault {
		b.edge(cond, done)
	}
	// Second pass builds bodies so fallthrough can edge to the next clause.
	i := 0
	for _, cc := range s.Body.List {
		cc, ok := cc.(*ast.CaseClause)
		if !ok {
			continue
		}
		b.cur = clauses[i]
		fallsThrough := buildCaseBody(b, cc.Body)
		if fallsThrough && i+1 < len(clauses) {
			b.edge(b.cur, clauses[i+1])
			b.seal("unreachable.fallthrough")
		}
		b.edge(b.cur, done)
		i++
	}
	b.targets = b.targets[:len(b.targets)-1]
	b.cur = done
}

// buildCaseBody builds a case clause's statements and reports whether the
// clause ends in a fallthrough.
func buildCaseBody(b *builder, body []ast.Stmt) bool {
	for i, st := range body {
		if br, ok := st.(*ast.BranchStmt); ok && br.Tok.String() == "fallthrough" && i == len(body)-1 {
			return true
		}
		b.stmt(st, "")
	}
	return false
}

func (b *builder) typeSwitchStmt(s *ast.TypeSwitchStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init, "")
	}
	b.add(s.Assign)
	cond := b.cur
	done := b.newBlock("typeswitch.done")
	b.targets = append(b.targets, &target{label: label, breakB: done})
	hasDefault := false
	for _, cc := range s.Body.List {
		cc, ok := cc.(*ast.CaseClause)
		if !ok {
			continue
		}
		blk := b.newBlock("typeswitch.case")
		if cc.List == nil {
			hasDefault = true
		}
		b.edge(cond, blk)
		b.cur = blk
		b.stmtList(cc.Body)
		b.edge(b.cur, done)
	}
	if !hasDefault {
		b.edge(cond, done)
	}
	b.targets = b.targets[:len(b.targets)-1]
	b.cur = done
}

func (b *builder) selectStmt(s *ast.SelectStmt, label string) {
	cond := b.cur
	done := b.newBlock("select.done")
	b.targets = append(b.targets, &target{label: label, breakB: done})
	any := false
	for _, cc := range s.Body.List {
		cc, ok := cc.(*ast.CommClause)
		if !ok {
			continue
		}
		any = true
		blk := b.newBlock("select.case")
		b.edge(cond, blk)
		b.cur = blk
		if cc.Comm != nil {
			b.stmt(cc.Comm, "")
		}
		b.stmtList(cc.Body)
		b.edge(b.cur, done)
	}
	b.targets = b.targets[:len(b.targets)-1]
	if !any {
		// `select {}` blocks forever: no successor at all.
		_ = cond
	}
	b.cur = done
}

func (b *builder) branch(s *ast.BranchStmt) {
	switch s.Tok.String() {
	case "break":
		for i := len(b.targets) - 1; i >= 0; i-- {
			t := b.targets[i]
			if s.Label == nil || t.label == s.Label.Name {
				b.edge(b.cur, t.breakB)
				break
			}
		}
		b.seal("unreachable.break")
	case "continue":
		for i := len(b.targets) - 1; i >= 0; i-- {
			t := b.targets[i]
			if t.continueB == nil {
				continue // switches/selects are not continue targets
			}
			if s.Label == nil || t.label == s.Label.Name {
				b.edge(b.cur, t.continueB)
				break
			}
		}
		b.seal("unreachable.continue")
	case "goto":
		if s.Label != nil {
			b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: s.Label.Name})
		}
		b.seal("unreachable.goto")
	case "fallthrough":
		// Handled by switchStmt when terminal; a stray one is a compile
		// error anyway — treat as no-op.
	}
}

// labelBlock returns (creating on demand) the block a label names, so
// forward gotos resolve.
func (b *builder) labelBlock(name string) *Block {
	if b.labels == nil {
		b.labels = map[string]*Block{}
	}
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock("label." + name)
	b.labels[name] = blk
	return blk
}

func (b *builder) resolveGotos() {
	for _, pg := range b.gotos {
		if blk, ok := b.labels[pg.label]; ok {
			b.edge(pg.from, blk)
		}
	}
}
