// Package analysistest runs a pegasus-lint analyzer over GOPATH-style
// fixture packages under testdata/src and checks its diagnostics against
// `// want` expectations, mirroring golang.org/x/tools/go/analysis/
// analysistest (which the offline build image cannot fetch).
//
// Fixture convention: testdata/src/<pkg>/*.go. A line expected to be
// flagged carries a trailing comment
//
//	// want `regexp`
//
// (one or more backquoted or double-quoted regexps, each of which must
// match a distinct diagnostic reported on that line). Files may import
// other fixture packages (resolved from source under testdata/src) and
// anything from the standard library (resolved offline through
// `go list -export`). Diagnostics and expectations must match exactly in
// both directions; suppression comments are honored exactly as in the real
// drivers, so fixtures can assert that an annotated form passes.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"pegasus/internal/lint"
	"pegasus/internal/lint/analysis"
	"pegasus/internal/lint/load"
)

// Run analyzes the fixture packages named by pkgs (directories under
// testdata/src) with a and reports expectation mismatches on t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, name := range pkgs {
		runOne(t, testdata, a, name)
	}
}

func runOne(t *testing.T, testdata string, a *analysis.Analyzer, name string) {
	t.Helper()
	fset := token.NewFileSet()
	imp := &fixtureImporter{
		fset:   fset,
		root:   filepath.Join(testdata, "src"),
		cache:  map[string]*types.Package{},
		parsed: map[string][]*ast.File{},
	}
	extern := map[string]bool{}
	if err := imp.scanImports(name, map[string]bool{}, extern); err != nil {
		t.Fatalf("fixture %s: %v", name, err)
	}
	if err := imp.resolveExports(extern); err != nil {
		t.Fatalf("fixture %s: %v", name, err)
	}
	cp, files, err := imp.checkFixture(name)
	if err != nil {
		t.Fatalf("fixture %s: %v", name, err)
	}
	lp := &load.Package{Path: name, Name: files[0].Name.Name, Fset: fset, Files: files, Types: cp.pkg, Info: cp.info}
	res, err := lint.Run([]*load.Package{lp}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("fixture %s: %v", name, err)
	}
	checkExpectations(t, fset, files, res.Findings, name)
}

// checkExpectations matches findings against // want comments, both ways.
func checkExpectations(t *testing.T, fset *token.FileSet, files []*ast.File, findings []lint.Finding, name string) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pats, ok := parseWant(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				for _, p := range pats {
					re, err := regexp.Compile(p)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, p, err)
					}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}
	matched := map[key][]bool{}
	for _, fd := range findings {
		k := key{fd.Pos.Filename, fd.Pos.Line}
		res := wants[k]
		if matched[k] == nil {
			matched[k] = make([]bool, len(res))
		}
		found := false
		for i, re := range res {
			if !matched[k][i] && re.MatchString(fd.Message) {
				matched[k][i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic at %s: %s", name, fd.Pos, fd.Message)
		}
	}
	var keys []key
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for i, re := range wants[k] {
			if matched[k] == nil || !matched[k][i] {
				t.Errorf("%s: %s:%d: expected diagnostic matching %q, got none", name, k.file, k.line, re)
			}
		}
	}
}

// parseWant extracts the regexps from a `// want ...` comment.
func parseWant(text string) ([]string, bool) {
	rest, ok := strings.CutPrefix(text, "// want ")
	if !ok {
		return nil, false
	}
	var pats []string
	rest = strings.TrimSpace(rest)
	for rest != "" {
		switch rest[0] {
		case '`':
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				return nil, false
			}
			pats = append(pats, rest[1:1+end])
			rest = strings.TrimSpace(rest[end+2:])
		case '"':
			s, err := strconv.QuotedPrefix(rest)
			if err != nil {
				return nil, false
			}
			uq, err := strconv.Unquote(s)
			if err != nil {
				return nil, false
			}
			pats = append(pats, uq)
			rest = strings.TrimSpace(rest[len(s):])
		default:
			return nil, false
		}
	}
	return pats, len(pats) > 0
}

// checkedPkg pairs a type-checked package with its info.
type checkedPkg struct {
	pkg  *types.Package
	info *types.Info
}

// fixtureImporter resolves imports for fixture packages: paths with a
// directory under testdata/src type-check from source; everything else
// resolves through compiler export data located by `go list -export`.
type fixtureImporter struct {
	fset    *token.FileSet
	root    string
	cache   map[string]*types.Package
	parsed  map[string][]*ast.File
	exports map[string]string
	gc      types.Importer
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if p, ok := fi.cache[path]; ok {
		return p, nil
	}
	if fi.isFixture(path) {
		cp, _, err := fi.checkFixture(path)
		if err != nil {
			return nil, err
		}
		return cp.pkg, nil
	}
	if fi.gc == nil {
		fi.gc = load.ExportImporter(fi.fset, fi.exports, nil)
	}
	p, err := fi.gc.Import(path)
	if err != nil {
		return nil, err
	}
	fi.cache[path] = p
	return p, nil
}

func (fi *fixtureImporter) isFixture(path string) bool {
	st, err := os.Stat(filepath.Join(fi.root, path))
	return err == nil && st.IsDir()
}

// parseFixture parses (once) every .go file of a fixture package.
func (fi *fixtureImporter) parseFixture(name string) ([]*ast.File, error) {
	if fs, ok := fi.parsed[name]; ok {
		return fs, nil
	}
	dir := filepath.Join(fi.root, name)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fi.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in fixture %s", dir)
	}
	fi.parsed[name] = files
	return files, nil
}

// scanImports walks the fixture import graph rooted at name, recursing into
// fixture-local imports and collecting everything else into extern.
func (fi *fixtureImporter) scanImports(name string, seen, extern map[string]bool) error {
	if seen[name] {
		return nil
	}
	seen[name] = true
	files, err := fi.parseFixture(name)
	if err != nil {
		return err
	}
	for _, f := range files {
		for _, spec := range f.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				continue
			}
			if fi.isFixture(path) {
				if err := fi.scanImports(path, seen, extern); err != nil {
					return err
				}
			} else {
				extern[path] = true
			}
		}
	}
	return nil
}

// The export-data locations are process-wide state: every fixture pulls the
// same stdlib set, so one `go list` per distinct miss serves all tests.
var (
	exportMu    sync.Mutex
	exportCache = map[string]string{}
)

// resolveExports ensures export data is located for every external import
// (plus transitive deps, via -deps) and snapshots the cache for this run.
func (fi *fixtureImporter) resolveExports(extern map[string]bool) error {
	exportMu.Lock()
	defer exportMu.Unlock()
	var missing []string
	for p := range extern {
		if _, ok := exportCache[p]; !ok {
			missing = append(missing, p)
		}
	}
	sort.Strings(missing)
	if len(missing) > 0 {
		args := append([]string{"-export", "-deps", "-json=ImportPath,Export", "--"}, missing...)
		listed, err := load.GoList(".", args...)
		if err != nil {
			return err
		}
		for _, p := range listed {
			if p.Export != "" {
				exportCache[p.ImportPath] = p.Export
			}
		}
	}
	fi.exports = make(map[string]string, len(exportCache))
	for p, f := range exportCache {
		fi.exports[p] = f
	}
	return nil
}

// checkFixture type-checks one fixture package from source.
func (fi *fixtureImporter) checkFixture(name string) (checkedPkg, []*ast.File, error) {
	files, err := fi.parseFixture(name)
	if err != nil {
		return checkedPkg{}, nil, err
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: fi}
	pkg, err := conf.Check(name, fi.fset, files, info)
	if err != nil {
		return checkedPkg{}, nil, err
	}
	fi.cache[name] = pkg
	return checkedPkg{pkg: pkg, info: info}, files, nil
}
