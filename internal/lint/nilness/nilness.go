// Package nilness tracks error-return dataflow in the persistence and
// serving layers: when a call returns `(value, err)`, the value may not be
// dereferenced until err has been read somewhere (an `if err != nil`, a
// `return err`, a wrap — any use counts), and err itself may not be
// overwritten before it is read. Both shapes are real bugs the type system
// cannot catch: the first is a latent nil-pointer panic on the failure
// path, the second silently drops an error.
//
// The analysis is flow-sensitive: each error variable carries an
// "unread" fact solved over the function's control-flow graph with a
// may-join (unread on any incoming path keeps it unread), so the usual
// early-return idiom
//
//	f, err := open(p)
//	if err != nil { return err }   // reads err on every path below
//	f.Read(buf)                    // ok
//
// is clean, while reordering the read after the deref is flagged. Function
// literals conservatively count as reading every captured error. Only
// packages listed in Swept are analyzed.
//
// Escape hatch: //lint:nilness <why the value is valid despite the error>.
package nilness

import (
	"go/ast"
	"go/types"
	"strings"

	"pegasus/internal/lint/analysis"
	"pegasus/internal/lint/cfg"
	"pegasus/internal/lint/dataflow"
	"pegasus/internal/lint/lintutil"
)

// Swept lists the packages under error-flow enforcement (each entry also
// covers its subpackages). Tests may append fixture paths.
var Swept = []string{
	"pegasus/internal/persist",
	"pegasus/internal/server",
}

// Analyzer flags derefs before the companion error is read, and errors
// overwritten while unread.
var Analyzer = &analysis.Analyzer{
	Name: "nilness",
	Doc: "flag results used before their error is checked, and errors overwritten unread\n\n" +
		"After `v, err := f()`, v may not be dereferenced until err has been\n" +
		"read on every path, and err may not be reassigned while unread.\n" +
		"Annotate //lint:nilness where the value is documented valid on error.",
	Run: run,
}

// Fact lattice per error object: 0 = read (or never assigned), unread = the
// error holds a result that has not been looked at yet.
const unread = 1

func run(pass *analysis.Pass) (any, error) {
	if !lintutil.PackageMatches(strings.TrimSuffix(pass.Pkg.Path(), "_test"), Swept) {
		return nil, nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkFunc(pass, fn.Body)
				}
			case *ast.FuncLit:
				checkFunc(pass, fn.Body)
			}
			return true
		})
	}
	return nil, nil
}

// checker carries the per-function maps shared between the transfer
// function and the reporting pass.
type checker struct {
	pass *analysis.Pass
	// companion[v] = err for every `v, err := call()` site; the deref check
	// consults it. An error paired with multiple values keeps them all.
	companion map[types.Object]types.Object
	body      *ast.BlockStmt
	report    bool
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	c := &checker{pass: pass, companion: map[types.Object]types.Object{}, body: body}
	// Pre-pass: collect companion pairs so the transfer function knows which
	// objects to track before flow reaches the assignment.
	cfg.WalkShallow(body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			c.collectPairs(as)
		}
		return true
	})
	// Also walk statements nested in composite control flow: WalkShallow
	// only skips FuncLit interiors, so the above already saw everything.
	g := cfg.New(body)
	res := dataflow.Solve(g, dataflow.Problem[dataflow.Facts]{
		Dir:      dataflow.Forward,
		Boundary: dataflow.Facts{},
		Init:     func() dataflow.Facts { return dataflow.Facts{} },
		Transfer: func(b *cfg.Block, in dataflow.Facts) dataflow.Facts {
			out := in.Clone()
			for _, n := range b.Nodes {
				c.apply(n, out)
			}
			return out
		},
		Join:  dataflow.JoinMax,
		Equal: dataflow.FactsEqual,
	})
	// Reporting pass: one deterministic walk per block with solved inputs.
	c.report = true
	for _, b := range g.Blocks {
		st := res.In[b].Clone()
		for _, n := range b.Nodes {
			c.apply(n, st)
		}
	}
}

// collectPairs records value→error companions from `v, err := call()`.
func (c *checker) collectPairs(as *ast.AssignStmt) {
	// Multi-value form: N LHS, 1 RHS call.
	if len(as.Rhs) != 1 || len(as.Lhs) < 2 {
		return
	}
	if _, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); !ok {
		return
	}
	var errObj types.Object
	var vals []types.Object
	for _, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := c.pass.TypesInfo.ObjectOf(id)
		if obj == nil {
			continue
		}
		if lintutil.IsErrorType(obj.Type()) {
			errObj = obj
		} else if derefable(obj.Type()) {
			vals = append(vals, obj)
		}
	}
	if errObj == nil {
		return
	}
	for _, v := range vals {
		c.companion[v] = errObj
	}
}

// derefable reports whether using a value of type t can panic when the
// value is its zero value: pointers, maps (writes), interfaces, functions,
// and channels qualify; plain scalars, strings, and structs do not.
func derefable(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Interface, *types.Signature, *types.Chan, *types.Slice:
		return true
	}
	return false
}

// apply updates st with the effects of one CFG node, reporting (when
// c.report is set) derefs of companions with an unread error and
// overwrites of unread errors. Evaluation order: reads on the RHS happen
// before LHS writes.
func (c *checker) apply(n ast.Node, st dataflow.Facts) {
	if as, ok := n.(*ast.AssignStmt); ok {
		for _, rhs := range as.Rhs {
			c.scanReads(rhs, st)
		}
		for _, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				c.scanReads(lhs, st) // m[k] = x reads m and k
				continue
			}
			obj := c.pass.TypesInfo.ObjectOf(id)
			if obj == nil {
				continue
			}
			if lintutil.IsErrorType(obj.Type()) && c.isTracked(obj) {
				if st.Get(obj) == unread && c.report {
					c.pass.Reportf(id.Pos(),
						"%s is overwritten before the previous error was read — the earlier failure is silently dropped; check or wrap it first (or annotate //lint:nilness)", id.Name)
				}
				if c.assignsError(as, id) {
					st[obj] = unread
				} else {
					delete(st, obj)
				}
			}
		}
		return
	}
	c.scanReads(n, st)
}

// isTracked reports whether errObj is the companion of any value.
func (c *checker) isTracked(errObj types.Object) bool {
	for _, e := range c.companion {
		if e == errObj {
			return true
		}
	}
	return false
}

// assignsError reports whether the assignment gives id a (possibly
// non-nil) error: any call result counts; a literal nil clears instead.
func (c *checker) assignsError(as *ast.AssignStmt, id *ast.Ident) bool {
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		return true // multi-value call
	}
	for i, lhs := range as.Lhs {
		if lhs == id && i < len(as.Rhs) {
			if bid, ok := ast.Unparen(as.Rhs[i]).(*ast.Ident); ok && bid.Name == "nil" {
				return false
			}
			return true
		}
	}
	return true
}

// scanReads walks an expression/statement (shallow — FuncLits count as
// reading every tracked error they could capture) marking error reads and
// reporting unguarded derefs.
func (c *checker) scanReads(n ast.Node, st dataflow.Facts) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			// The literal may read or check any captured error at any time;
			// be conservative in the quiet direction.
			for o := range st {
				delete(st, o)
			}
			return false
		case *ast.SelectorExpr:
			// Sel is a field/method name, not a variable read; recursion
			// continues into X, so nested selectors are checked too.
			c.checkDeref(m.X, st)
		case *ast.IndexExpr:
			c.checkDeref(m.X, st)
		case *ast.StarExpr:
			c.checkDeref(m.X, st)
		case *ast.CallExpr:
			if id, ok := ast.Unparen(m.Fun).(*ast.Ident); ok {
				if v := c.pass.TypesInfo.ObjectOf(id); v != nil {
					if _, tracked := c.companion[v]; tracked {
						c.checkDeref(m.Fun, st)
					}
				}
			}
		}
		return c.markIdent(m, st)
	})
}

// markIdent clears the unread fact when m is a use of a tracked error.
func (c *checker) markIdent(m ast.Node, st dataflow.Facts) bool {
	id, ok := m.(*ast.Ident)
	if !ok {
		return true
	}
	obj := c.pass.TypesInfo.Uses[id]
	if obj == nil {
		return true
	}
	if c.isTracked(obj) {
		delete(st, obj) // any use counts as reading the error
	}
	return true
}

// checkDeref reports when e is a tracked companion whose error is unread.
func (c *checker) checkDeref(e ast.Expr, st dataflow.Facts) {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return
	}
	v := c.pass.TypesInfo.Uses[id]
	if v == nil {
		return
	}
	errObj, tracked := c.companion[v]
	if tracked && st.Get(errObj) == unread && c.report {
		c.pass.Reportf(id.Pos(),
			"%s is used before %s is checked — on the failure path this dereferences a zero value; check the error first (or annotate //lint:nilness)", id.Name, errObj.Name())
	}
}
