package nilness_test

import (
	"path/filepath"
	"testing"

	"pegasus/internal/lint/analysistest"
	"pegasus/internal/lint/nilness"
)

func TestNilness(t *testing.T) {
	nilness.Swept = append(nilness.Swept, "nilnesserr")
	defer func() { nilness.Swept = nilness.Swept[:len(nilness.Swept)-1] }()
	analysistest.Run(t, filepath.Join("..", "testdata"), nilness.Analyzer, "nilnesserr")
}
