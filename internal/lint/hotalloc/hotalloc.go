// Package hotalloc keeps the marked hot paths allocation-free. Functions
// whose doc comment carries a `//pegasus:hotpath` marker — the per-node
// random-walk iterations, cache lookups, pooled computes, and codec inner
// loops — sit inside loops that run millions of times per query, where a
// single per-iteration allocation turns into GC pressure that dwarfs the
// arithmetic.
//
// Inside every loop body of a marked function the analyzer flags the
// allocation shapes that escape-analysis reliably heap-allocates:
//
//   - map, slice, or struct-pointer composite literals and make/new calls
//     (a fresh allocation per iteration; hoist outside the loop and reuse);
//   - function literals (a closure allocated per iteration when it captures
//     anything; hoist the closure above the loop and mutate the captured
//     variables instead);
//   - calls into package fmt (formatting allocates, and hot paths should
//     not format at all);
//   - interface boxing: passing a concrete value to an interface-typed
//     parameter or converting to an interface type (the value is copied to
//     the heap to fit in the interface).
//
// Code outside loop bodies is not checked — setup allocation amortizes.
//
// Escape hatch: //lint:hotalloc <why this allocation is amortized or
// unavoidable>.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"pegasus/internal/lint/analysis"
	"pegasus/internal/lint/lintutil"
)

// Marker is the doc-comment marker that opts a function into enforcement.
const Marker = "//pegasus:hotpath"

// Analyzer flags per-iteration allocations in //pegasus:hotpath functions.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "flag per-iteration allocations inside //pegasus:hotpath functions\n\n" +
		"Loop bodies of functions marked //pegasus:hotpath must not allocate:\n" +
		"no composite literals, make/new, closures, fmt calls, or interface\n" +
		"boxing per iteration. Annotate //lint:hotalloc where an allocation\n" +
		"is deliberate.",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotpath(fd) {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil, nil
}

func isHotpath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), Marker) {
			return true
		}
	}
	return false
}

// checkFunc walks fd's body and checks every loop body it contains,
// including loops nested in loops (the inner body is part of the outer
// body, so one pass over all loop-body regions suffices).
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch loop := n.(type) {
		case *ast.ForStmt:
			body = loop.Body
		case *ast.RangeStmt:
			body = loop.Body
		case *ast.FuncLit:
			// A nested literal's loops are its own hot path only if the
			// literal is itself inside a loop — in which case the literal was
			// already flagged. Don't descend.
			return false
		default:
			return true
		}
		checkLoopBody(pass, body)
		return true
	})
}

// checkLoopBody flags allocation shapes directly inside body. Nested loops
// are skipped here (the Inspect in checkFunc visits them separately), so
// each statement is checked exactly once against its innermost loop.
func checkLoopBody(pass *analysis.Pass, body *ast.BlockStmt) {
	for _, stmt := range body.List {
		switch stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			continue
		}
		ast.Inspect(stmt, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ForStmt:
				return false // handled as its own loop body
			case *ast.RangeStmt:
				return false
			case *ast.FuncLit:
				pass.Reportf(n.Pos(),
					"function literal inside a hotpath loop allocates a closure per iteration; hoist it above the loop and mutate captured variables (or annotate //lint:hotalloc)")
				return false
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					if _, lit := ast.Unparen(n.X).(*ast.CompositeLit); lit {
						pass.Reportf(n.Pos(),
							"&composite literal inside a hotpath loop heap-allocates per iteration; hoist and reuse (or annotate //lint:hotalloc)")
					}
				}
			case *ast.CompositeLit:
				if t := pass.TypeOf(n); t != nil && allocatesOnHeap(t) {
					pass.Reportf(n.Pos(),
						"%s literal inside a hotpath loop allocates per iteration; hoist and reuse (or annotate //lint:hotalloc)",
						typeKind(t))
				}
			case *ast.CallExpr:
				checkCall(pass, n)
			}
			return true
		})
	}
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, builtin := pass.ObjectOf(id).(*types.Builtin); builtin {
			switch id.Name {
			case "make", "new":
				pass.Reportf(call.Pos(),
					"%s inside a hotpath loop allocates per iteration; hoist the allocation and reuse (or annotate //lint:hotalloc)", id.Name)
			}
			return
		}
	}
	if f := lintutil.CalleeFunc(pass, call); f != nil && f.Pkg() != nil && f.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(),
			"fmt.%s inside a hotpath loop allocates for formatting; move the formatting out of the loop (or annotate //lint:hotalloc)", f.Name())
		return
	}
	// Interface boxing: a concrete argument passed to an interface-typed
	// parameter is copied to the heap.
	sig, ok := pass.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		// Conversion to an interface type, e.g. any(x) or error(e).
		if t := pass.TypeOf(call.Fun); t != nil && types.IsInterface(t.Underlying()) && len(call.Args) == 1 {
			if at := pass.TypeOf(call.Args[0]); at != nil && !types.IsInterface(at.Underlying()) {
				pass.Reportf(call.Pos(),
					"conversion to %s inside a hotpath loop boxes the value onto the heap (or annotate //lint:hotalloc)", t.String())
			}
		}
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // passing a slice through, no boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt.Underlying()) {
			continue
		}
		at := pass.TypeOf(arg)
		if at == nil || types.IsInterface(at.Underlying()) {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		pass.Reportf(arg.Pos(),
			"passing %s to an interface parameter inside a hotpath loop boxes it onto the heap per iteration (or annotate //lint:hotalloc)",
			at.String())
	}
}

// allocatesOnHeap reports whether a composite literal of type t allocates:
// maps and slices always do; plain structs and arrays are stack values.
func allocatesOnHeap(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Map, *types.Slice:
		return true
	case *types.Pointer:
		return true // &T{} via composite literal of pointer type
	}
	return false
}

func typeKind(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Map:
		return "map"
	case *types.Slice:
		return "slice"
	default:
		return "composite"
	}
}
