package hotalloc_test

import (
	"path/filepath"
	"testing"

	"pegasus/internal/lint/analysistest"
	"pegasus/internal/lint/hotalloc"
)

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, filepath.Join("..", "testdata"), hotalloc.Analyzer, "hotallocloop")
}
