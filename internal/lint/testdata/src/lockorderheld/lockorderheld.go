// Fixture for the lockorder analyzer: the test appends "lockorderheld" to
// lockorder.Scope, so mutexes here must be released on every exit path and
// acquired in one global order.
package lockorderheld

import "sync"

type S struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

func cond() bool { return false }

// ---- flagged shapes ----

func (s *S) leakOnEarlyReturn() {
	s.mu.Lock() // want `s\.mu is not released on every path out of this function`
	if cond() {
		return
	}
	s.mu.Unlock()
}

func (s *S) doubleLock() {
	s.mu.Lock()
	s.mu.Lock() // want `self-deadlock`
	s.mu.Unlock()
	s.mu.Unlock()
}

func (s *S) relockThroughCall() {
	s.mu.Lock()
	s.bump() // want `self-deadlock through the call chain`
	s.mu.Unlock()
}

func (s *S) bump() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}

type Pair struct{ a, b sync.Mutex }

func (p *Pair) abOrder() {
	p.a.Lock()
	p.b.Lock() // want `lock order cycle`
	p.b.Unlock()
	p.a.Unlock()
}

func (p *Pair) baOrder() {
	p.b.Lock()
	p.a.Lock() // want `lock order cycle`
	p.a.Unlock()
	p.b.Unlock()
}

// ---- clean shapes ----

func (s *S) deferred() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

func (s *S) readLocked() int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.n
}

func (s *S) unlockOnAllPaths() int {
	s.mu.Lock()
	if cond() {
		s.mu.Unlock()
		return 0
	}
	v := s.n
	s.mu.Unlock()
	return v
}

// retryLoop mirrors the cache's GetOrCompute shape: drop the lock to do
// slow work, re-acquire, and loop. Flow analysis must see the lock is free
// at the re-acquire and held exactly once at each exit.
func (s *S) retryLoop() int {
	s.mu.Lock()
	for i := 0; i < 3; i++ {
		if cond() {
			s.mu.Unlock()
			slow()
			s.mu.Lock()
			continue
		}
		break
	}
	v := s.n
	s.mu.Unlock()
	return v
}

func slow() {}

type Ordered struct{ a, b sync.Mutex }

// Consistent a-then-b order in every function: acyclic, no findings.
func (o *Ordered) one() {
	o.a.Lock()
	o.b.Lock()
	o.b.Unlock()
	o.a.Unlock()
}

func (o *Ordered) two() {
	o.a.Lock()
	defer o.a.Unlock()
	o.b.Lock()
	defer o.b.Unlock()
}

func (s *S) suppressedHandoff() {
	//lint:lockorder fixture exercises the escape hatch; callee releases
	s.mu.Lock()
}
