// Fixture for the typederr analyzer's repo-wide rule: this package is in
// neither TypedPackages nor NoDropPackages, so only the sentinel-identity
// check applies.
package typederrwide

import (
	"errors"
	"fmt"
)

var ErrStale = errors.New("typederrwide: stale shard")

func refresh(age int) error {
	if age > 10 {
		return fmt.Errorf("shard too old: %v", ErrStale) // want `fmt\.Errorf formats sentinel ErrStale without %w`
	}
	return nil
}

// refreshWrapped is the fixed form: %w preserves errors.Is identity.
func refreshWrapped(age int) error {
	if age > 10 {
		return fmt.Errorf("shard too old: %w", ErrStale)
	}
	return nil
}

// annotated shows the escape hatch.
func annotated(age int) error {
	//lint:typederr user-facing message intentionally flattens the sentinel
	return fmt.Errorf("shard too old after %d days: %v", age, ErrStale)
}

// anonymous errors are fine outside the typed packages.
func anonymous() error {
	return errors.New("not a typed package: allowed")
}

// droppedOutside: dropped errors are only flagged in NoDropPackages.
func droppedOutside(f func() error) {
	f()
}
