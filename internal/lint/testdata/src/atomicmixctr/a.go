// Fixture for the atomicmix analyzer: once any access to a field goes
// through sync/atomic, every access must.
package atomicmixctr

import "sync/atomic"

type counters struct {
	hits   uint64
	misses uint64
}

func (c *counters) hit()  { atomic.AddUint64(&c.hits, 1) }
func (c *counters) miss() { atomic.AddUint64(&c.misses, 1) }

func (c *counters) snapshot() (uint64, uint64) {
	return c.hits, atomic.LoadUint64(&c.misses) // want `hits is accessed with sync/atomic at .* but plainly here`
}

func (c *counters) reset() {
	c.hits = 0 // want `hits is accessed with sync/atomic at .* but plainly here`
	atomic.StoreUint64(&c.misses, 0)
}

// newCounters shows the escape hatch: the value has not escaped yet.
func newCounters() *counters {
	c := &counters{}
	//lint:atomicmix constructor-local; the value has not been published yet
	c.hits = 0
	return c
}

// plainBox is a control: fields never touched by sync/atomic are free.
type plainBox struct{ n int }

func bump(b *plainBox) { b.n++ }

// Package-level variables are tracked the same way as fields.
var inflight int64

func acquire() { atomic.AddInt64(&inflight, 1) }
func release() { atomic.AddInt64(&inflight, -1) }

func gauge() int64 {
	return inflight // want `inflight is accessed with sync/atomic at .* but plainly here`
}
