// Fixture for the maporder analyzer: the test appends "maporderfix" to
// maporder.Critical, so map ranges here must be sorted or annotated.
package maporderfix

import (
	"maps"
	"sort"
)

func sum(m map[int]int) int {
	s := 0
	for k := range m { // want `range over map is unordered in determinism-critical package maporderfix`
		s += k
	}
	return s
}

func sumKeysIter(m map[int]int) int {
	s := 0
	for k := range maps.Keys(m) { // want `range over maps\.Keys is unordered`
		s += k
	}
	return s
}

func sumValuesIter(m map[int]int) int {
	s := 0
	for v := range maps.Values(m) { // want `range over maps\.Values is unordered`
		s += v
	}
	return s
}

func pairs(m map[int]int) int {
	s := 0
	for k, v := range maps.All(m) { // want `range over maps\.All is unordered`
		s += k + v
	}
	return s
}

// sumSorted is the fixed form: collect, sort, then iterate the slice.
func sumSorted(m map[int]int) int {
	keys := make([]int, 0, len(m))
	for k := range m { //lint:ordered keys are sorted immediately below
		keys = append(keys, k)
	}
	sort.Ints(keys)
	s := 0
	for _, k := range keys {
		s += m[k]
	}
	return s
}

// annotatedAbove shows the line-above placement of the directive.
func annotatedAbove(m map[int]bool) int {
	n := 0
	//lint:ordered counting members is order-independent
	for range m {
		n++
	}
	return n
}

// unjustified shows that a bare directive with no justification does NOT
// suppress the diagnostic.
func unjustified(m map[int]int) int {
	s := 0
	//lint:ordered
	for k := range m { // want `range over map is unordered`
		s += k
	}
	return s
}

// sliceRange is a control: ranging a slice is ordered and never flagged.
func sliceRange(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}
