// Fixture for the maporder analyzer: this package is NOT in
// maporder.Critical, so its map ranges are never flagged.
package mapordernoncrit

func sum(m map[int]int) int {
	s := 0
	for k := range m {
		s += k
	}
	return s
}
