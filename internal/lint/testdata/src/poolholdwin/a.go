// Fixture for the poolhold analyzer: the function literal passed to a
// Pool's Run method holds a bounded slot and must not block on work that
// might itself need one.
package poolholdwin

import (
	"context"
	"sync"
)

// Pool mimics the serving layer's bounded worker pool: fn runs while
// holding one of the pool's slots.
type Pool struct{ sem chan struct{} }

func (p *Pool) Run(ctx context.Context, fn func() error) error {
	p.sem <- struct{}{}
	defer func() { <-p.sem }()
	return fn()
}

// Group mimics singleflight.Group.
type Group struct{ mu sync.Mutex }

func (g *Group) Do(key string, fn func() (any, error)) (any, error) { return fn() }

// Cache mimics the result cache's singleflight entry point.
type Cache struct{}

func (c *Cache) GetOrCompute(key string, fn func() (any, error)) (any, error) { return fn() }

func bad(ctx context.Context, p *Pool, g *Group, c *Cache, ch chan int, wg *sync.WaitGroup) {
	_ = p.Run(ctx, func() error {
		<-ch                            // want `channel receive while holding a pool slot`
		wg.Wait()                       // want `WaitGroup\.Wait waits while holding a pool slot`
		_, _ = g.Do("k", nil)           // want `Group\.Do \(singleflight\) waits while holding a pool slot`
		_, _ = c.GetOrCompute("k", nil) // want `Cache\.GetOrCompute \(singleflight\) waits while holding a pool slot`
		select {                        // want `select without default blocks while holding a pool slot`
		case v := <-ch:
			_ = v
		}
		return nil
	})
}

// good shows the accepted forms: goroutines block their own stack, and a
// select with a default clause never blocks.
func good(ctx context.Context, p *Pool, ch chan int) {
	_ = p.Run(ctx, func() error {
		go func() { <-ch }()
		select {
		case v := <-ch:
			_ = v
		default:
		}
		return nil
	})
}

// annotated shows the escape hatch with a deadlock-freedom argument.
func annotated(ctx context.Context, p *Pool, ch chan int) {
	_ = p.Run(ctx, func() error {
		//lint:poolhold ch is buffered and its sender never takes a pool slot
		<-ch
		return nil
	})
}

// Runner is a control: its name does not contain Pool, so its Run method
// opens no slot window.
type Runner struct{}

func (r *Runner) Run(ctx context.Context, fn func() error) error { return fn() }

func control(ctx context.Context, r *Runner, ch chan int) {
	_ = r.Run(ctx, func() error {
		<-ch
		return nil
	})
}

// outside shows that the same blocking calls are fine outside a window.
func outside(ch chan int, wg *sync.WaitGroup) {
	<-ch
	wg.Wait()
}
