// Fixture for the goleak analyzer: goroutines here must be joined by a
// WaitGroup, resolve an external channel on every path, or select on a
// ctx.Done-derived channel.
package goleakspawn

import (
	"context"
	"sync"
)

func work()        {}
func compute() int { return 1 }
func cond() bool   { return false }

// ---- flagged shapes ----

func detached() {
	go func() { // want `goroutine is not joined on every path`
		work()
	}()
}

func joinOnOnePathOnly(ch chan int) {
	go func() { // want `goroutine is not joined on every path`
		if cond() {
			ch <- compute()
		}
	}()
}

func internalChannelJoinsNobody() {
	go func() { // want `goroutine is not joined on every path`
		ch := make(chan int, 1)
		ch <- compute()
	}()
}

func foreverWithoutCancel() {
	go func() { // want `goroutine loops forever with no ctx\.Done-derived cancellation`
		for {
			work()
		}
	}()
}

func opaqueSpawn(f func()) {
	go f() // want `body this package cannot see`
}

// ---- accounted shapes ----

func waitGroupJoined() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

func namedWorker(wg *sync.WaitGroup) {
	defer wg.Done()
	work()
}

func spawnsNamed() {
	var wg sync.WaitGroup
	wg.Add(1)
	go namedWorker(&wg)
	wg.Wait()
}

func resultChannel() chan int {
	ch := make(chan int, 1)
	go func() {
		ch <- compute()
	}()
	return ch
}

func sendOnAllPaths(ch chan int) {
	go func() {
		if cond() {
			ch <- 1
			return
		}
		ch <- 2
	}()
}

func closesExternal(done chan struct{}) {
	go func() {
		defer close(done)
		work()
	}()
}

type looper struct{ ctx context.Context }

func (l *looper) run() {
	for {
		select {
		case <-l.ctx.Done():
			return
		default:
			work()
		}
	}
}

func spawnsMethod(l *looper) {
	go l.run()
}

func ctxDoneViaVariable(ctx context.Context) {
	go func() {
		done := ctx.Done()
		for {
			select {
			case <-done:
				return
			default:
				work()
			}
		}
	}()
}

func suppressed() {
	//lint:goleak fixture exercises the escape hatch; process-lifetime helper
	go func() {
		work()
	}()
}
