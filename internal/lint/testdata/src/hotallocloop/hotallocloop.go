// Fixture for the hotalloc analyzer: loop bodies of functions marked
// //pegasus:hotpath must not allocate per iteration.
package hotallocloop

import "fmt"

func sink(v any)    {}
func take(f func()) {}

// hot is the enforced shape: every allocation inside its loops is flagged.
//
//pegasus:hotpath
func hot(xs []int, out []float64) float64 {
	acc := 0.0
	for i, x := range xs {
		buf := make([]int, 4) // want `make inside a hotpath loop allocates per iteration`
		_ = buf
		m := map[int]int{x: i} // want `map literal inside a hotpath loop allocates per iteration`
		_ = m
		s := []int{x} // want `slice literal inside a hotpath loop allocates per iteration`
		_ = s
		p := &point{x: x} // want `&composite literal inside a hotpath loop heap-allocates per iteration`
		_ = p
		msg := fmt.Sprint(i) // want `fmt\.Sprint inside a hotpath loop allocates for formatting`
		_ = msg
		f := func() { acc++ } // want `function literal inside a hotpath loop allocates a closure per iteration`
		take(f)
		sink(x) // want `passing int to an interface parameter inside a hotpath loop boxes it`
		acc += out[i]
	}
	return acc
}

type point struct{ x int }

// nested loops: each body is checked against its innermost loop.
//
//pegasus:hotpath
func nested(grid [][]float64) float64 {
	acc := 0.0
	for i := range grid {
		for j := range grid[i] {
			w := []float64{acc} // want `slice literal inside a hotpath loop allocates per iteration`
			_ = w
			acc += grid[i][j]
		}
		acc *= 0.5
	}
	return acc
}

// ---- clean shapes ----

// clean is marked but allocation-free: arithmetic, index reads, hoisted
// closure mutated via captured variables, amortized setup outside loops.
//
//pegasus:hotpath
func clean(xs []int, out []float64) float64 {
	scratch := make([]float64, len(xs)) // setup: outside any loop
	var share float64
	add := func(i int) { scratch[i] += share }
	acc := 0.0
	for i, x := range xs {
		share = float64(x) * 0.5
		add(i)
		acc += out[i] + scratch[i]
		v := point{x: x} // struct value: stack-allocated, not flagged
		acc += float64(v.x)
	}
	return acc
}

// unmarked allocates freely: the analyzer is opt-in per function.
func unmarked(xs []int) []string {
	var all []string
	for _, x := range xs {
		all = append(all, fmt.Sprint(x))
	}
	return all
}

//pegasus:hotpath
func suppressed(xs []int) int {
	n := 0
	for range xs {
		b := make([]byte, 1) //lint:hotalloc fixture exercises the escape hatch; amortized by pooling
		n += len(b)
	}
	return n
}
