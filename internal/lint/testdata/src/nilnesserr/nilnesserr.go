// Fixture for the nilness analyzer: the test appends "nilnesserr" to
// nilness.Swept, so (value, err) results here may not be dereferenced
// before err is read, and errors may not be overwritten unread.
package nilnesserr

import "errors"

type R struct{ n int }

func open(ok bool) (*R, error) {
	if !ok {
		return nil, errors.New("nope")
	}
	return &R{n: 1}, nil
}

func lookup(ok bool) (map[string]int, error) {
	if !ok {
		return nil, errors.New("nope")
	}
	return map[string]int{"a": 1}, nil
}

func use(r *R) error { return nil }

// ---- flagged shapes ----

func derefBeforeCheck(ok bool) int {
	r, err := open(ok)
	n := r.n // want `r is used before err is checked`
	if err != nil {
		return 0
	}
	return n
}

func indexBeforeCheck(ok bool) int {
	m, err := lookup(ok)
	v := m["a"] // want `m is used before err is checked`
	if err != nil {
		return 0
	}
	return v
}

func checkedOnOnePathOnly(ok, fast bool) int {
	r, err := open(ok)
	if fast {
		return r.n // want `r is used before err is checked`
	}
	if err != nil {
		return 0
	}
	return r.n
}

func overwriteUnread(ok bool) error {
	r, err := open(ok)
	_, err = open(!ok) // want `err is overwritten before the previous error was read`
	if err != nil {
		return err
	}
	return use(r)
}

// ---- clean shapes ----

func earlyReturn(ok bool) int {
	r, err := open(ok)
	if err != nil {
		return 0
	}
	return r.n
}

func invertedCheck(ok bool) int {
	r, err := open(ok)
	n := 0
	if err == nil {
		n = r.n
	}
	return n
}

func loopRetry(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		r, err := open(i%2 == 0)
		if err != nil {
			continue
		}
		s += r.n
	}
	return s
}

func wrapCountsAsRead(ok bool) (int, error) {
	r, err := open(ok)
	if err != nil {
		return 0, errors.New("open: " + err.Error())
	}
	return r.n, nil
}

func passWithoutDeref(ok bool) error {
	r, err := open(ok)
	if err != nil {
		return err
	}
	return use(r)
}

func reassignedAfterRead(ok bool) error {
	r, err := open(ok)
	if err != nil {
		return err
	}
	_ = r
	_, err = open(!ok) // fine: the first err was read above
	return err
}

func suppressedPartialResult(ok bool) int {
	r, err := open(ok)
	n := r.n //lint:nilness fixture exercises the escape hatch; open documents a non-nil result on error
	_ = err
	return n
}
