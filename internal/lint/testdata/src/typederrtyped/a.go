// Fixture for the typederr analyzer: the test appends "typederrtyped" to
// both TypedPackages and NoDropPackages, so this package is held to the
// full persist/bitio contract.
package typederrtyped

import (
	"bytes"
	"errors"
	"fmt"
)

// Package-level sentinels are the one legitimate errors.New site.
var (
	ErrCorrupt = errors.New("typederrtyped: corrupt")
	ErrVersion = errors.New("typederrtyped: version")
)

func decode(b []byte) error {
	if len(b) == 0 {
		return fmt.Errorf("typederrtyped: empty input") // want `fmt\.Errorf without %w in typederrtyped`
	}
	if b[0] == 0xFF {
		panic("unreachable tag") // want `panic in typederrtyped violates the typed-error contract`
	}
	if b[0] == 0xFE {
		return errors.New("bad tag") // want `errors\.New outside a package-level sentinel declaration in typederrtyped`
	}
	if b[0] == 0xFD {
		return fmt.Errorf("typederrtyped: bad tag %d: %w", b[0], ErrCorrupt)
	}
	return nil
}

func corrupt(where string, err error) error {
	return fmt.Errorf("%s: %v: %w", where, err, ErrCorrupt)
}

// viaHelper shows the wrapper-argument exemption: the helper owns the
// typing, so the inner fmt.Errorf is exempt.
func viaHelper(b []byte) error {
	if len(b) < 4 {
		return corrupt("header", fmt.Errorf("need 4 bytes, have %d", len(b)))
	}
	return nil
}

// annotated shows the escape hatch for encoder-misuse errors.
func annotated(n int) error {
	if n < 0 {
		//lint:typederr encoder-misuse error, not an input-bytes failure
		return fmt.Errorf("typederrtyped: negative count %d", n)
	}
	return nil
}

// buffered shows the never-fails exemption: bytes.Buffer writes are
// documented to always return nil.
func buffered(b *bytes.Buffer) {
	b.WriteByte(0x01)
}

func dropped(f func() error) {
	f()     // want `error result silently dropped in typederrtyped`
	_ = f() // explicit discard is the accepted convention
}
