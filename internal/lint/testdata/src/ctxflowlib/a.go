// Fixture for the ctxflow analyzer: library code must not mint fresh
// context roots and must prefer Ctx-suffixed siblings when a ctx is in
// scope.
package ctxflowlib

import "context"

// SummarizeCtx is the propagating variant.
func SummarizeCtx(ctx context.Context) error { return ctx.Err() }

// Summarize mints a fresh root with no justification: flagged.
func Summarize() error {
	return SummarizeCtx(context.Background()) // want `context\.Background\(\) in library code severs cancellation`
}

// SummarizeDefault is the annotated convenience-wrapper form: passes.
func SummarizeDefault() error {
	//lint:ctxflow public convenience entry point; the Ctx variant is the propagating path
	return SummarizeCtx(context.Background())
}

func todo() context.Context {
	return context.TODO() // want `context\.TODO\(\) in library code severs cancellation`
}

// pipeline has a ctx in scope, so calling the non-Ctx sibling drops it.
func pipeline(ctx context.Context) error {
	if err := Summarize(); err != nil { // want `call to Summarize drops the in-scope ctx; use SummarizeCtx`
		return err
	}
	return SummarizeCtx(ctx)
}

type Engine struct{}

// BuildCtx is the propagating method variant.
func (e *Engine) BuildCtx(ctx context.Context) error { return ctx.Err() }

// Build is an annotated wrapper: its own Background call passes.
func (e *Engine) Build() error {
	//lint:ctxflow convenience wrapper for context-free callers
	return e.BuildCtx(context.Background())
}

func runEngine(ctx context.Context, e *Engine) error {
	return e.Build() // want `call to Build drops the in-scope ctx; use BuildCtx`
}

// spawn shows that a closure inherits the enclosing function's ctx scope.
func spawn(ctx context.Context, e *Engine) func() error {
	return func() error {
		return e.Build() // want `call to Build drops the in-scope ctx; use BuildCtx`
	}
}

// noSibling is a control: no Ctx variant exists, so nothing to prefer.
func helper() error { return nil }

func callsHelper(ctx context.Context) error {
	return helper()
}
