// Fixture for the ctxflow analyzer: package main owns its root contexts,
// so Background/TODO are never flagged here.
package main

import "context"

func main() {
	ctx := context.Background()
	_ = run(ctx)
}

func run(ctx context.Context) error { return ctx.Err() }
