// Package lockorder enforces the two mutex contracts in the concurrent
// serving/observability/persistence packages:
//
//  1. Release on every path — a sync.Mutex/RWMutex acquired in a function
//     must be released (directly or by defer) on every path to that
//     function's exit. A path that returns while holding a lock is a
//     deadlock waiting for the next request.
//
//  2. Consistent acquisition order — the package-wide lock-acquisition
//     graph (an edge A→B whenever B is acquired, directly or through a
//     same-package call chain, while A is held) must stay acyclic. A cycle
//     means two goroutines can acquire the participating locks in opposite
//     orders and deadlock. Acquiring the same write lock again while it is
//     definitely held is reported as a self-deadlock.
//
// The analysis is flow-sensitive (held-sets are solved over each
// function's control-flow graph) and interprocedural within the package
// (per-function acquisition summaries propagate through same-package
// calls; cross-package calls are assumed lock-neutral, which matches the
// repository's layering — lower layers never call back up). Locks are
// identified by the declared field or variable, so two instances of the
// same field (e.g. distinct cache shards) share an identity: a hierarchy
// over same-field instances needs a //lint:lockorder annotation.
//
// Escape hatch: //lint:lockorder <why this order/hold is deadlock-free>.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"pegasus/internal/lint/analysis"
	"pegasus/internal/lint/cfg"
	"pegasus/internal/lint/dataflow"
	"pegasus/internal/lint/lintutil"
)

// Scope lists the packages whose mutex discipline is enforced (each entry
// also covers its subpackages). Tests may append fixture paths.
var Scope = []string{
	"pegasus/internal/server",
	"pegasus/internal/obs",
	"pegasus/internal/persist",
}

// Analyzer checks lock release on all paths and lock-order acyclicity.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "flag mutexes held across an exit path and cyclic lock-acquisition order\n\n" +
		"Every sync.Mutex/RWMutex Lock must be matched by an Unlock (or a\n" +
		"defer) on every path out of the function, and the package's\n" +
		"acquired-while-holding graph must stay acyclic. Annotate\n" +
		"//lint:lockorder with a deadlock-freedom argument for deliberate\n" +
		"exceptions.",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if !lintutil.PackageMatches(strings.TrimSuffix(pass.Pkg.Path(), "_test"), Scope) {
		return nil, nil
	}
	a := &checker{
		pass:    pass,
		decls:   map[types.Object]*ast.FuncDecl{},
		direct:  map[types.Object]map[types.Object]bool{},
		calls:   map[types.Object]map[types.Object]bool{},
		edges:   map[[2]types.Object][]token.Pos{},
		keyName: map[types.Object]string{},
	}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
					a.decls[obj] = fd
				}
			}
		}
	}
	a.summarize()
	// Deterministic function order: source position.
	var fns []types.Object
	for obj := range a.decls {
		fns = append(fns, obj)
	}
	sort.Slice(fns, func(i, j int) bool { return a.decls[fns[i]].Pos() < a.decls[fns[j]].Pos() })
	for _, obj := range fns {
		fd := a.decls[obj]
		a.checkFunc(fd.Body)
		// Function literals get the same path discipline, independently.
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				a.checkFunc(lit.Body)
			}
			return true
		})
	}
	a.reportCycles()
	return nil, nil
}

type checker struct {
	pass  *analysis.Pass
	decls map[types.Object]*ast.FuncDecl
	// direct[f] = lock keys f acquires in its own body (transitively closed
	// by summarize); calls[f] = same-package functions f calls.
	direct map[types.Object]map[types.Object]bool
	calls  map[types.Object]map[types.Object]bool
	// edges[a,b] = positions where b was acquired while a was held.
	edges   map[[2]types.Object][]token.Pos
	keyName map[types.Object]string
}

// lockEvent is one mutex operation found in a node, in evaluation order.
type lockEvent struct {
	key     types.Object
	acquire bool // Lock/RLock vs Unlock/RUnlock
	write   bool // Lock/Unlock (write side)
	defered bool
	pos     token.Pos
	call    *ast.CallExpr
}

// scan extracts mutex operations and same-package calls from one CFG node
// in order. Nested function literals are skipped (checked separately).
func (a *checker) scan(n ast.Node, fn func(ev lockEvent), callFn func(callee types.Object, pos token.Pos)) {
	defered := false
	if ds, ok := n.(*ast.DeferStmt); ok {
		defered = true
		n = ds.Call
	}
	cfg.WalkShallow(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if key, acquire, write, ok := a.lockOp(call); ok {
			fn(lockEvent{key: key, acquire: acquire, write: write, defered: defered, pos: call.Pos(), call: call})
			return true
		}
		if callFn != nil {
			if f := lintutil.CalleeFunc(a.pass, call); f != nil {
				if _, local := a.decls[f]; local {
					callFn(f, call.Pos())
				}
			}
		}
		return true
	})
}

// lockOp classifies call as a mutex operation and resolves the lock key.
func (a *checker) lockOp(call *ast.CallExpr) (key types.Object, acquire, write, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, false, false, false
	}
	switch sel.Sel.Name {
	case "Lock":
		acquire, write = true, true
	case "RLock":
		acquire, write = true, false
	case "Unlock":
		acquire, write = false, true
	case "RUnlock":
		acquire, write = false, false
	default:
		return nil, false, false, false
	}
	f, isFn := a.pass.ObjectOf(sel.Sel).(*types.Func)
	if !isFn || f.Pkg() == nil || f.Pkg().Path() != "sync" {
		return nil, false, false, false
	}
	key = a.lockKey(sel.X)
	if key == nil {
		return nil, false, false, false
	}
	if _, seen := a.keyName[key]; !seen {
		a.keyName[key] = types.ExprString(sel.X)
	}
	return key, acquire, write, true
}

// lockKey resolves the mutex identity behind the receiver expression: the
// declared field for s.mu (any path of selectors/indexes), the variable for
// a plain mu.
func (a *checker) lockKey(e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return a.pass.ObjectOf(x)
	case *ast.SelectorExpr:
		return a.pass.ObjectOf(x.Sel)
	case *ast.IndexExpr:
		return a.lockKey(x.X)
	case *ast.StarExpr:
		return a.lockKey(x.X)
	}
	return nil
}

// summarize computes, for every package function, the set of locks it may
// acquire transitively through same-package calls.
func (a *checker) summarize() {
	for obj, fd := range a.decls {
		acq := map[types.Object]bool{}
		calls := map[types.Object]bool{}
		// Literals run on the spawning function's behalf often enough
		// (immediately-invoked, par callbacks) that their acquisitions
		// count toward the summary conservatively.
		ast.Inspect(fd.Body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if key, acquire, _, ok := a.lockOp(call); ok && acquire {
				acq[key] = true
			} else if f := lintutil.CalleeFunc(a.pass, call); f != nil {
				if _, local := a.decls[f]; local {
					calls[f] = true
				}
			}
			return true
		})
		a.direct[obj] = acq
		a.calls[obj] = calls
	}
	// Transitive closure to a fixpoint.
	for changed := true; changed; {
		changed = false
		for obj := range a.direct {
			for callee := range a.calls[obj] {
				for k := range a.direct[callee] {
					if !a.direct[obj][k] {
						a.direct[obj][k] = true
						changed = true
					}
				}
			}
		}
	}
}

// Lattice values for one lock: 0 = free, 1 = may be held, 2 = must be held.
const (
	lockFree = 0
	mayHold  = 1
	mustHold = 2
)

// transfer applies a block's lock events to a held-state.
func (a *checker) transfer(b *cfg.Block, in dataflow.Facts) dataflow.Facts {
	out := in.Clone()
	for _, n := range b.Nodes {
		a.scan(n, func(ev lockEvent) {
			if ev.defered {
				return // deferred releases apply at exit, not here
			}
			if ev.acquire {
				out[ev.key] = mustHold
			} else {
				delete(out, ev.key)
			}
		}, nil)
	}
	return out
}

func (a *checker) checkFunc(body *ast.BlockStmt) {
	g := cfg.New(body)
	prob := dataflow.Problem[dataflow.Facts]{
		Dir:      dataflow.Forward,
		Boundary: dataflow.Facts{},
		Init:     func() dataflow.Facts { return dataflow.Facts{} },
		Transfer: a.transfer,
		// Pointwise: held on every path → mustHold, some path → mayHold.
		Join: func(x, y dataflow.Facts) dataflow.Facts {
			out := dataflow.Facts{}
			for k, v := range x {
				if w, ok := y[k]; ok {
					m := v
					if w < m {
						m = w
					}
					out[k] = m
				} else {
					out[k] = mayHold
				}
			}
			for k := range y {
				if _, ok := x[k]; !ok {
					out[k] = mayHold
				}
			}
			return out
		},
		Equal: dataflow.FactsEqual,
	}
	res := dataflow.Solve(g, prob)

	// Deferred releases cover every exit below their registration; treating
	// them function-wide is conservative in the right direction for the
	// exit check (a conditional defer that doesn't run still trips the
	// cycle check elsewhere).
	deferRelease := map[types.Object]bool{}
	for _, d := range g.Defers {
		a.scan(d, func(ev lockEvent) {
			if !ev.acquire {
				deferRelease[ev.key] = true
			}
		}, nil)
	}

	// Reporting pass: walk each block once with its solved in-state.
	acquirePos := map[types.Object]token.Pos{}
	for _, b := range g.Blocks {
		held := res.In[b].Clone()
		for _, n := range b.Nodes {
			a.scan(n, func(ev lockEvent) {
				if ev.defered {
					return
				}
				if ev.acquire {
					if held[ev.key] == mustHold && ev.write {
						a.pass.Reportf(ev.pos,
							"%s.Lock() while %s is already held on every path here — self-deadlock; unlock first or annotate //lint:lockorder",
							a.keyName[ev.key], a.keyName[ev.key])
					}
					for other, v := range held {
						if other != ev.key && v >= mayHold {
							a.edge(other, ev.key, ev.pos)
						}
					}
					held[ev.key] = mustHold
					if _, ok := acquirePos[ev.key]; !ok {
						acquirePos[ev.key] = ev.pos
					}
				} else {
					delete(held, ev.key)
				}
			}, func(callee types.Object, pos token.Pos) {
				for other, v := range held {
					if v < mayHold {
						continue
					}
					for k := range a.direct[callee] {
						if k == other {
							a.pass.Reportf(pos,
								"call to %s acquires %s, which is already held here — self-deadlock through the call chain; restructure or annotate //lint:lockorder",
								callee.Name(), a.keyName[other])
						} else {
							a.edge(other, k, pos)
						}
					}
				}
			})
		}
	}

	// Exit check: anything that may still be held and has no deferred
	// release is a leak on some path.
	var leaked []types.Object
	for k, v := range res.In[g.Exit] {
		if v >= mayHold && !deferRelease[k] {
			leaked = append(leaked, k)
		}
	}
	sort.Slice(leaked, func(i, j int) bool { return acquirePos[leaked[i]] < acquirePos[leaked[j]] })
	for _, k := range leaked {
		pos := acquirePos[k]
		if pos == token.NoPos {
			pos = body.Pos()
		}
		a.pass.Reportf(pos,
			"%s is not released on every path out of this function; unlock on all exits or use defer (or annotate //lint:lockorder)",
			a.keyName[k])
	}
}

func (a *checker) edge(from, to types.Object, pos token.Pos) {
	a.edges[[2]types.Object{from, to}] = append(a.edges[[2]types.Object{from, to}], pos)
}

// reportCycles finds acquisition-order cycles and reports the first
// position of each participating edge.
func (a *checker) reportCycles() {
	// Deterministic adjacency from the recorded edges.
	type edge struct {
		from, to types.Object
		pos      token.Pos
	}
	var all []edge
	adj := map[types.Object][]types.Object{}
	for pair, poss := range a.edges {
		minPos := poss[0]
		for _, p := range poss {
			if p < minPos {
				minPos = p
			}
		}
		all = append(all, edge{pair[0], pair[1], minPos})
		adj[pair[0]] = append(adj[pair[0]], pair[1])
	}
	reaches := func(src, dst types.Object) bool {
		seen := map[types.Object]bool{src: true}
		stack := []types.Object{src}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if n == dst {
				return true
			}
			for _, m := range adj[n] {
				if !seen[m] {
					seen[m] = true
					stack = append(stack, m)
				}
			}
		}
		return false
	}
	var cyclic []edge
	for _, e := range all {
		if reaches(e.to, e.from) {
			cyclic = append(cyclic, e)
		}
	}
	sort.Slice(cyclic, func(i, j int) bool { return cyclic[i].pos < cyclic[j].pos })
	for _, e := range cyclic {
		a.pass.Report(analysis.Diagnostic{Pos: e.pos, Message: fmt.Sprintf(
			"lock order cycle: %s is acquired while %s is held, and the package also acquires %s while holding %s — two goroutines taking them in opposite orders deadlock; pick one global order or annotate //lint:lockorder",
			a.keyName[e.to], a.keyName[e.from], a.keyName[e.from], a.keyName[e.to])})
	}
}
