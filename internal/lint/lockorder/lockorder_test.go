package lockorder_test

import (
	"path/filepath"
	"testing"

	"pegasus/internal/lint/analysistest"
	"pegasus/internal/lint/lockorder"
)

func TestLockOrder(t *testing.T) {
	lockorder.Scope = append(lockorder.Scope, "lockorderheld")
	defer func() { lockorder.Scope = lockorder.Scope[:len(lockorder.Scope)-1] }()
	analysistest.Run(t, filepath.Join("..", "testdata"), lockorder.Analyzer, "lockorderheld")
}
