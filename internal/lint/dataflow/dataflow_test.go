package dataflow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"pegasus/internal/lint/cfg"
)

func parseBody(t *testing.T, body string) *cfg.Graph {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "t.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fn := file.Decls[len(file.Decls)-1].(*ast.FuncDecl)
	return cfg.New(fn.Body)
}

// callsIn collects the called identifier names in a block (shallow).
func callsIn(b *cfg.Block) []string {
	var names []string
	for _, n := range b.Nodes {
		cfg.WalkShallow(n, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok {
					names = append(names, id.Name)
				}
			}
			return true
		})
	}
	return names
}

// gen/kill over a one-bit "acquired" lattice: acquire() sets it, release()
// clears it. Forward must-analysis: held at a point only if held on every
// path.
func heldProblem() Problem[int] {
	return Problem[int]{
		Dir:      Forward,
		Boundary: 0,
		Init:     func() int { return 1 }, // optimistic top for a must-analysis
		Transfer: func(b *cfg.Block, in int) int {
			out := in
			for _, name := range callsIn(b) {
				switch name {
				case "acquire":
					out = 1
				case "release":
					out = 0
				}
			}
			return out
		},
		Join:  func(a, b int) int { return min(a, b) },
		Equal: func(a, b int) bool { return a == b },
	}
}

func TestForwardMustJoin(t *testing.T) {
	// acquire on only one arm → not held after the join.
	g := parseBody(t, "if c() {\nacquire()\n}\nprobe()")
	res := Solve(g, heldProblem())
	if got := res.In[g.Exit]; got != 0 {
		t.Errorf("held at exit = %d, want 0 (one arm only)", got)
	}

	both := parseBody(t, "if c() {\nacquire()\n} else {\nacquire()\n}")
	res = Solve(both, heldProblem())
	if got := res.In[both.Exit]; got != 1 {
		t.Errorf("held at exit = %d, want 1 (both arms acquire)", got)
	}
}

func TestLoopConvergence(t *testing.T) {
	// The loop body releases; whether the loop runs zero or many times, the
	// state at exit must converge to "not held" (the zero-iteration path
	// keeps it held only if acquired before the loop and never released
	// after).
	g := parseBody(t, "acquire()\nfor i := 0; i < 9; i++ {\nrelease()\n}\nprobe()")
	res := Solve(g, heldProblem())
	if got := res.In[g.Exit]; got != 0 {
		t.Errorf("held at exit = %d, want 0 (loop may release)", got)
	}

	// Acquire-release balanced inside the loop: held only transiently; at
	// exit not held regardless of trip count.
	bal := parseBody(t, "for i := 0; i < 9; i++ {\nacquire()\nrelease()\n}")
	res = Solve(bal, heldProblem())
	if got := res.In[bal.Exit]; got != 0 {
		t.Errorf("balanced loop: held at exit = %d, want 0", got)
	}

	// Acquire inside the loop without release: the zero-trip path is clean,
	// so a must-analysis reports not-held at exit; a may-analysis (JoinMax
	// direction via max join) reports held.
	leak := parseBody(t, "for i := 0; i < 9; i++ {\nacquire()\n}")
	res = Solve(leak, heldProblem())
	if got := res.In[leak.Exit]; got != 0 {
		t.Errorf("must-analysis at exit = %d, want 0 (zero-trip path)", got)
	}
	may := heldProblem()
	may.Init = func() int { return 0 }
	may.Join = func(a, b int) int { return max(a, b) }
	res = Solve(leak, may)
	if got := res.In[leak.Exit]; got != 1 {
		t.Errorf("may-analysis at exit = %d, want 1 (loop path acquires)", got)
	}
}

func TestBackwardLiveness(t *testing.T) {
	// Backward may-analysis: "a use() call lies ahead". At entry this must
	// be true when use() appears on some path ahead, false otherwise.
	ahead := Problem[int]{
		Dir:      Backward,
		Boundary: 0,
		Init:     func() int { return 0 },
		Transfer: func(b *cfg.Block, in int) int {
			out := in
			for _, name := range callsIn(b) {
				if name == "use" {
					out = 1
				}
			}
			return out
		},
		Join:  func(a, b int) int { return max(a, b) },
		Equal: func(a, b int) bool { return a == b },
	}
	g := parseBody(t, "work()\nif c() {\nuse()\n}")
	res := Solve(g, ahead)
	if got := res.Out[g.Entry]; got != 1 {
		t.Errorf("use ahead at entry = %d, want 1", got)
	}
	none := parseBody(t, "work()\nwork()")
	res = Solve(none, ahead)
	if got := res.Out[none.Entry]; got != 0 {
		t.Errorf("no use anywhere: ahead at entry = %d, want 0", got)
	}
}

func TestSolverDeterminism(t *testing.T) {
	g := parseBody(t, `
	acquire()
	for i := 0; i < 3; i++ {
		if c() {
			release()
		} else {
			acquire()
		}
	}
	probe()`)
	first := Solve(g, heldProblem())
	for i := 0; i < 10; i++ {
		again := Solve(g, heldProblem())
		for _, b := range g.Blocks {
			if first.In[b] != again.In[b] || first.Out[b] != again.Out[b] {
				t.Fatalf("run %d: nondeterministic state at %s", i, b)
			}
		}
	}
}

func newObj(name string) types.Object {
	return types.NewVar(token.NoPos, nil, name, types.Typ[types.Int])
}

func TestFactsHelpers(t *testing.T) {
	a, b := newObj("a"), newObj("b")
	var f Facts
	if f.Get(a) != 0 {
		t.Error("zero Facts must read as 0")
	}
	f = f.Set(a, 2)
	g := f.Set(b, 1)
	if f.Get(b) != 0 {
		t.Error("Set must not mutate the receiver")
	}
	if got := JoinMax(f, g); got.Get(a) != 2 || got.Get(b) != 1 {
		t.Errorf("JoinMax = %v", got)
	}
	if got := JoinMin(f, g); got.Get(a) != 2 || got.Get(b) != 0 {
		t.Errorf("JoinMin = %v", got)
	}
	if !FactsEqual(f.Set(b, 0), f) {
		t.Error("Set(_, 0) must canonicalize to absence")
	}
	if FactsEqual(f, g) {
		t.Error("distinct fact sets reported equal")
	}
	if !FactsEqual(nil, Facts{}) {
		t.Error("nil and empty Facts must be equal")
	}
	// Join must treat absence as 0, not drop keys present on one side only.
	if got := JoinMax(Facts{}, g); got.Get(b) != 1 {
		t.Error("JoinMax lost a key present only on the right")
	}
	if got := JoinMin(g, Facts{}); got.Get(b) != 0 {
		t.Error("JoinMin must zero keys absent on one side")
	}
}
