// Package dataflow is the worklist solver under the flow-sensitive
// pegasus-lint analyzers (goleak, lockorder, nilness). It computes a
// fixpoint of per-block states over a cfg.Graph in either direction, with
// the state type supplied by the client. The solver is deterministic: the
// worklist is processed in ascending block order, and cfg builds blocks in
// source order, so identical inputs always produce identical states (and
// therefore identical diagnostics — the same contract every other part of
// this repository keeps).
//
// For the common shape — a small integer lattice per program variable —
// the Facts type maps types.Object keys to lattice values with pointwise
// join helpers, so an analyzer's Transfer function is just a switch over
// block nodes.
package dataflow

import (
	"go/types"

	"pegasus/internal/lint/cfg"
)

// Direction selects forward (entry→exit) or backward (exit→entry)
// propagation.
type Direction int

const (
	Forward Direction = iota
	Backward
)

// Problem describes one dataflow analysis over a graph.
type Problem[S any] struct {
	Dir Direction

	// Boundary is the input state of the entry block (Forward) or exit
	// block (Backward).
	Boundary S

	// Init produces the optimistic initial input state for every other
	// block (typically bottom: "nothing known yet").
	Init func() S

	// Transfer computes a block's output state from its input state. It
	// must not retain or mutate in (clone first); the solver may call it
	// many times per block.
	Transfer func(b *cfg.Block, in S) S

	// Join combines two states flowing into the same block. It must be
	// commutative, associative, and monotone (joining can only grow a
	// state in lattice order), or the solver may not converge.
	Join func(a, b S) S

	// Equal reports state equality; it terminates the iteration.
	Equal func(a, b S) bool
}

// Result holds the converged states: In[b] is the state entering b in the
// analysis direction, Out[b] the state leaving it.
type Result[S any] struct {
	In  map[*cfg.Block]S
	Out map[*cfg.Block]S
}

// maxRoundsPerBlock bounds solver work for safety: a well-formed finite
// lattice converges in O(height) rounds, so hitting the cap means a buggy
// (non-monotone) Transfer/Join; the partial fixpoint is returned rather
// than looping forever.
const maxRoundsPerBlock = 256

// Solve iterates p over g to a fixpoint and returns the per-block states.
func Solve[S any](g *cfg.Graph, p Problem[S]) Result[S] {
	res := Result[S]{In: map[*cfg.Block]S{}, Out: map[*cfg.Block]S{}}
	boundary := g.Entry
	if p.Dir == Backward {
		boundary = g.Exit
	}
	into := func(b *cfg.Block) []*cfg.Block {
		if p.Dir == Forward {
			return b.Preds
		}
		return b.Succs
	}
	outof := func(b *cfg.Block) []*cfg.Block {
		if p.Dir == Forward {
			return b.Succs
		}
		return b.Preds
	}

	for _, b := range g.Blocks {
		if b == boundary {
			res.In[b] = p.Boundary
		} else {
			res.In[b] = p.Init()
		}
		res.Out[b] = p.Transfer(b, res.In[b])
	}

	// Deterministic worklist: a boolean membership set drained in ascending
	// block order each round.
	pending := make([]bool, len(g.Blocks))
	for i := range pending {
		pending[i] = true
	}
	budget := maxRoundsPerBlock * (len(g.Blocks) + 1)
	for budget > 0 {
		advanced := false
		for i, b := range g.Blocks {
			if !pending[i] {
				continue
			}
			pending[i] = false
			budget--
			in := res.In[b]
			if b != boundary {
				first := true
				for _, q := range into(b) {
					if first {
						in = res.Out[q]
						first = false
					} else {
						in = p.Join(in, res.Out[q])
					}
				}
				if first {
					in = p.Init() // unreachable block: keep optimistic input
				}
			}
			out := p.Transfer(b, in)
			res.In[b] = in
			if !p.Equal(out, res.Out[b]) {
				res.Out[b] = out
				advanced = true
				for _, q := range outof(b) {
					pending[q.Index] = true
				}
			}
		}
		if !advanced {
			break
		}
	}
	return res
}

// Facts is the standard state shape: a small integer lattice value per
// types.Object, with absent keys meaning 0 (bottom). The zero value is an
// empty fact set; all methods treat nil as empty.
type Facts map[types.Object]int

// Get returns the lattice value for o (0 when absent).
func (f Facts) Get(o types.Object) int { return f[o] }

// Clone returns an independent copy of f.
func (f Facts) Clone() Facts {
	c := make(Facts, len(f))
	for k, v := range f {
		c[k] = v
	}
	return c
}

// Set returns f with o set to v, copying first so shared states are never
// mutated (0 deletes the key, keeping Equal canonical).
func (f Facts) Set(o types.Object, v int) Facts {
	c := f.Clone()
	if v == 0 {
		delete(c, o)
	} else {
		c[o] = v
	}
	return c
}

// JoinMax is the pointwise-maximum join — the right join for may-analyses
// where larger values mean "worse is possible on some path".
func JoinMax(a, b Facts) Facts {
	c := a.Clone()
	for k, v := range b {
		if v > c[k] {
			c[k] = v
		}
	}
	return c
}

// JoinMin is the pointwise-minimum join over the keys present in either
// state, with absent keys contributing 0 — the join for must-analyses
// ("only facts established on every path survive").
func JoinMin(a, b Facts) Facts {
	c := make(Facts, len(a))
	for k, v := range a {
		w := b[k]
		m := v
		if w < m {
			m = w
		}
		if m != 0 {
			c[k] = m
		}
	}
	return c
}

// FactsEqual reports pointwise equality, treating absent keys as 0.
func FactsEqual(a, b Facts) bool {
	for k, v := range a {
		if v != b[k] {
			return false
		}
	}
	for k, v := range b {
		if v != a[k] {
			return false
		}
	}
	return true
}
