// Package lint assembles the pegasus-lint analyzer suite: mechanical
// enforcement of the determinism, context-propagation, concurrency,
// typed-error, goroutine-accounting, lock-order, hot-path-allocation, and
// error-flow contracts this repository's speed claims depend on (see
// DESIGN.md, "Enforced invariants"). The analyzers are built on the
// stdlib-only go/analysis mirror in internal/lint/analysis — the simple
// ones walk the AST directly, the flow-sensitive ones (goleak, lockorder,
// nilness) solve dataflow problems over internal/lint/cfg graphs with the
// internal/lint/dataflow worklist solver — and run through
// cmd/pegasus-lint, either directly (`pegasus-lint ./...`) or as a
// `go vet -vettool`.
//
// # Adding an analyzer
//
// An analyzer is a package under internal/lint exporting a
// *analysis.Analyzer whose Run inspects one type-checked package via
// *analysis.Pass and calls pass.Reportf for each violation. To land one:
//
//  1. Pick a Name (and, if the //lint: suppression token should differ,
//     a Directive). `pegasus-lint -list` must stay collision-free — the
//     driver test fails on duplicate directives.
//  2. Make every diagnostic actionable: say what was found, why it breaks
//     the contract, and what to do instead — the message is the only
//     documentation most readers will see.
//  3. Write fixtures first: a failing package under
//     internal/lint/testdata/src/<name> with `// want` comments on each
//     expected diagnostic, and passing shapes in the same file proving
//     the analyzer stays quiet on correct code. Drive both through
//     analysistest.Run; expectations are matched bidirectionally, so a
//     missing or extra diagnostic fails either way.
//  4. Scope deliberately. Repo-wide analyzers run everywhere; contract
//     analyzers declare a package allowlist (see lockorder.Scope,
//     nilness.Swept, maporder.Critical) so the invariant is enforced
//     exactly where it is claimed. Set IncludeTests only when test code
//     can break the invariant (maporder is the precedent).
//  5. For flow-sensitive properties, build on internal/lint/cfg and
//     internal/lint/dataflow instead of ad-hoc AST recursion: define a
//     lattice, a transfer function, and let the solver reach the
//     fixpoint. Report only in a post-fixpoint pass so facts are stable.
//  6. Append the analyzer to All() (alphabetical), then sweep the repo:
//     fix real findings, annotate justified ones with
//     `//lint:<directive> <justification>`, and keep both
//     `pegasus-lint ./...` and `pegasus-lint -unused-suppressions ./...`
//     at exit 0 — TestRepoIsClean enforces exactly that.
//  7. Document the contract in DESIGN.md ("Enforced invariants").
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"pegasus/internal/lint/analysis"
	"pegasus/internal/lint/atomicmix"
	"pegasus/internal/lint/ctxflow"
	"pegasus/internal/lint/goleak"
	"pegasus/internal/lint/hotalloc"
	"pegasus/internal/lint/load"
	"pegasus/internal/lint/lockorder"
	"pegasus/internal/lint/maporder"
	"pegasus/internal/lint/nilness"
	"pegasus/internal/lint/poolhold"
	"pegasus/internal/lint/typederr"
)

// All returns the full pegasus-lint analyzer suite in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		atomicmix.Analyzer,
		ctxflow.Analyzer,
		goleak.Analyzer,
		hotalloc.Analyzer,
		lockorder.Analyzer,
		maporder.Analyzer,
		nilness.Analyzer,
		poolhold.Analyzer,
		typederr.Analyzer,
	}
}

// Finding is one unsuppressed diagnostic with its resolved position.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// Result is the outcome of one Run: the surviving findings plus the
// suppression accounting the -unused-suppressions mode builds on.
type Result struct {
	// Findings are the unsuppressed diagnostics, sorted by position.
	Findings []Finding

	// Suppressed counts, per analyzer name, the diagnostics silenced by a
	// //lint: comment. Test-file diagnostics dropped wholesale (for
	// analyzers without IncludeTests) are not counted — no annotation was
	// involved.
	Suppressed map[string]int

	// used records the file:line of every suppression comment that
	// silenced at least one diagnostic; UnusedSuppressions subtracts it
	// from the set of all //lint: comments.
	used map[string]bool
}

// Run applies every analyzer to every package and returns the surviving
// findings sorted by position plus suppression accounting. Suppression
// rules applied here, uniformly for all drivers (CLI, vettool, tests):
//
//   - a //lint:<directive> justification comment on the diagnostic's line
//     or the line above it suppresses the diagnostic;
//   - diagnostics inside _test.go files are dropped unless the analyzer
//     sets IncludeTests — the invariants guard production paths, and tests
//     routinely violate them on purpose (e.g. ranging a map to build an
//     expectation set). maporder opts in: golden-fingerprint expectations
//     are computed in tests too.
func Run(pkgs []*load.Package, analyzers []*analysis.Analyzer) (*Result, error) {
	res := &Result{Suppressed: map[string]int{}, used: map[string]bool{}}
	for _, pkg := range pkgs {
		fileOf := func(pos token.Pos) *ast.File {
			for _, f := range pkg.Files {
				if f.FileStart <= pos && pos <= f.FileEnd {
					return f
				}
			}
			return nil
		}
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			pass.Report = func(d analysis.Diagnostic) {
				position := pkg.Fset.Position(d.Pos)
				if !a.IncludeTests && strings.HasSuffix(position.Filename, "_test.go") {
					return
				}
				if f := fileOf(d.Pos); f != nil {
					if at := analysis.SuppressionAt(pkg.Fset, f, d.Pos, a.DirectiveName()); at.IsValid() {
						res.Suppressed[a.Name]++
						cp := pkg.Fset.Position(at)
						res.used[fmt.Sprintf("%s:%d", cp.Filename, cp.Line)] = true
						return
					}
				}
				res.Findings = append(res.Findings, Finding{Analyzer: a.Name, Pos: position, Message: d.Message})
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: analyzer %s: %v", pkg.Path, a.Name, err)
			}
		}
	}
	sortFindings(res.Findings)
	return res, nil
}

func sortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// UnusedSuppressions scans every //lint: comment in pkgs and returns a
// finding for each one that did not silence any diagnostic during the Run
// that produced r (the same packages and analyzers must be passed). A
// suppression that fires nothing is debt: either the invariant violation it
// excused is gone (delete the comment) or the directive is misspelled and
// excuses nothing (fix it). Malformed suppressions — an unknown directive,
// or a missing justification — are always findings.
func (r *Result) UnusedSuppressions(pkgs []*load.Package, analyzers []*analysis.Analyzer) []Finding {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.DirectiveName()] = true
	}
	var findings []Finding
	seen := map[string]bool{} // test variants share files with their base package
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					directive, justification, ok := analysis.ParseDirective(c.Text)
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					if seen[key] {
						continue
					}
					seen[key] = true
					switch {
					case !known[directive]:
						findings = append(findings, Finding{Analyzer: "suppressions", Pos: pos, Message: fmt.Sprintf(
							"//lint:%s does not match any analyzer directive — it suppresses nothing; known directives: %s", directive, directiveList(analyzers))})
					case justification == "":
						findings = append(findings, Finding{Analyzer: "suppressions", Pos: pos, Message: fmt.Sprintf(
							"//lint:%s has no justification — a suppression must say why the invariant does not apply (and without one it does not suppress)", directive)})
					case !r.used[key]:
						findings = append(findings, Finding{Analyzer: "suppressions", Pos: pos, Message: fmt.Sprintf(
							"stale //lint:%s suppression: no %s diagnostic is reported here anymore; delete the comment", directive, directive)})
					}
				}
			}
		}
	}
	sortFindings(findings)
	return findings
}

func directiveList(analyzers []*analysis.Analyzer) string {
	var names []string
	for _, a := range analyzers {
		names = append(names, a.DirectiveName())
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
