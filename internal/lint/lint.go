// Package lint assembles the pegasus-lint analyzer suite: mechanical
// enforcement of the determinism, context-propagation, concurrency, and
// typed-error contracts this repository's speed claims depend on (see
// DESIGN.md, "Enforced invariants"). The analyzers are built on the
// stdlib-only go/analysis mirror in internal/lint/analysis and run through
// cmd/pegasus-lint, either directly (`pegasus-lint ./...`) or as a
// `go vet -vettool`.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"pegasus/internal/lint/analysis"
	"pegasus/internal/lint/atomicmix"
	"pegasus/internal/lint/ctxflow"
	"pegasus/internal/lint/load"
	"pegasus/internal/lint/maporder"
	"pegasus/internal/lint/poolhold"
	"pegasus/internal/lint/typederr"
)

// All returns the full pegasus-lint analyzer suite in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		atomicmix.Analyzer,
		ctxflow.Analyzer,
		maporder.Analyzer,
		poolhold.Analyzer,
		typederr.Analyzer,
	}
}

// Finding is one unsuppressed diagnostic with its resolved position.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// Run applies every analyzer to every package and returns the surviving
// findings sorted by position. Suppression rules applied here, uniformly
// for all drivers (CLI, vettool, tests):
//
//   - a //lint:<directive> justification comment on the diagnostic's line
//     or the line above it suppresses the diagnostic;
//   - diagnostics inside _test.go files are dropped — the invariants
//     guard production paths, and tests routinely violate them on purpose
//     (e.g. ranging a map to build an expectation set).
func Run(pkgs []*load.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		fileOf := func(pos token.Pos) *ast.File {
			for _, f := range pkg.Files {
				if f.FileStart <= pos && pos <= f.FileEnd {
					return f
				}
			}
			return nil
		}
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			pass.Report = func(d analysis.Diagnostic) {
				position := pkg.Fset.Position(d.Pos)
				if strings.HasSuffix(position.Filename, "_test.go") {
					return
				}
				if f := fileOf(d.Pos); f != nil && analysis.Suppressed(pkg.Fset, f, d.Pos, a.DirectiveName()) {
					return
				}
				findings = append(findings, Finding{Analyzer: a.Name, Pos: position, Message: d.Message})
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: analyzer %s: %v", pkg.Path, a.Name, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}
