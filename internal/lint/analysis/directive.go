package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// DirectivePrefix introduces a suppression comment. A diagnostic from
// analyzer A at line L is suppressed when line L, or line L-1, carries a
// comment of the form
//
//	//lint:<directive> <justification>
//
// where <directive> is A's DirectiveName (e.g. "ordered" for maporder) and
// <justification> is non-empty: an annotation must say *why* the invariant
// does not apply, not merely switch the check off. This is the single
// escape hatch shared by every pegasus-lint analyzer.
const DirectivePrefix = "//lint:"

// Suppressed reports whether a diagnostic at pos is covered by a
// //lint:<directive> justification comment in file.
func Suppressed(fset *token.FileSet, file *ast.File, pos token.Pos, directive string) bool {
	return SuppressionAt(fset, file, pos, directive).IsValid()
}

// SuppressionAt returns the position of the //lint:<directive> comment
// covering a diagnostic at pos (token.NoPos if none). Drivers use the
// comment position to track which suppressions actually fire, so stale
// annotations can be flagged by `pegasus-lint -unused-suppressions`.
func SuppressionAt(fset *token.FileSet, file *ast.File, pos token.Pos, directive string) token.Pos {
	if !pos.IsValid() {
		return token.NoPos
	}
	line := fset.Position(pos).Line
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			cline := fset.Position(c.Pos()).Line
			if cline != line && cline != line-1 {
				continue
			}
			if directiveMatches(c.Text, directive) {
				return c.Pos()
			}
		}
	}
	return token.NoPos
}

// ParseDirective splits a comment's text into its //lint: directive token
// and justification. ok is false when the comment is not a //lint:
// suppression at all. A well-formed suppression has both a directive and a
// non-empty justification; callers decide how to treat malformed ones.
func ParseDirective(text string) (directive, justification string, ok bool) {
	rest, found := strings.CutPrefix(text, DirectivePrefix)
	if !found {
		return "", "", false
	}
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		return rest[:i], strings.TrimSpace(rest[i+1:]), true
	}
	return rest, "", true
}

// directiveMatches reports whether comment text is a well-formed
// suppression for directive: exact token match plus a non-empty
// justification.
func directiveMatches(text, directive string) bool {
	if !strings.HasPrefix(text, DirectivePrefix) {
		return false
	}
	rest := strings.TrimPrefix(text, DirectivePrefix)
	if !strings.HasPrefix(rest, directive) {
		return false
	}
	rest = rest[len(directive):]
	// Require a separator then at least one non-space character of
	// justification; "//lint:ordered" alone does not suppress.
	if len(rest) == 0 || (rest[0] != ' ' && rest[0] != '\t') {
		return false
	}
	return strings.TrimSpace(rest) != ""
}
