// Package analysis is a minimal, dependency-free mirror of the
// golang.org/x/tools/go/analysis API: an Analyzer is a named check with a
// Run function that inspects one type-checked package (a Pass) and reports
// Diagnostics. The container image used to grow this repository has no
// network access and no module cache, so x/tools cannot be fetched; this
// package reproduces exactly the subset of its API the pegasus-lint
// analyzers need, with the same field names and semantics, so that each
// analyzer would compile against the real go/analysis with only an import
// path change.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and CLI flags. By
	// convention it is a single lower-case word, e.g. "maporder".
	Name string

	// Doc is the help text: first line is a one-sentence summary, the rest
	// explains the contract the analyzer enforces and its escape hatch.
	Doc string

	// Directive is the //lint: token that suppresses this analyzer's
	// diagnostics when written (with a justification) on the flagged line
	// or the line above it. Empty means the analyzer's Name is used.
	Directive string

	// IncludeTests keeps this analyzer's diagnostics in _test.go files.
	// Most invariants guard production paths only, so the driver drops
	// test-file diagnostics by default; determinism checks opt in because
	// golden-fingerprint expectations are computed in tests too.
	IncludeTests bool

	// Run applies the check to a single package and reports diagnostics
	// via pass.Report / pass.Reportf. The returned value is ignored by
	// this driver (the real go/analysis uses it for inter-analyzer
	// facts, which pegasus-lint does not need).
	Run func(*Pass) (any, error)
}

// DirectiveName returns the //lint: suppression token for a.
func (a *Analyzer) DirectiveName() string {
	if a.Directive != "" {
		return a.Directive
	}
	return a.Name
}

// Pass is the unit of work handed to an Analyzer: one fully type-checked
// package plus a sink for diagnostics.
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver installs this; analyzers
	// should prefer Reportf.
	Report func(Diagnostic)
}

// Reportf reports a diagnostic at pos with a fmt.Sprintf message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the type of expression e (or nil if unknown), looking
// through the pass's type information.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if t := p.TypesInfo.TypeOf(e); t != nil {
		return t
	}
	return nil
}

// ObjectOf returns the object denoted by ident, consulting Defs then Uses.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	return p.TypesInfo.ObjectOf(id)
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Pos      token.Pos
	End      token.Pos // optional
	Category string    // optional sub-category within the analyzer
	Message  string
}
