// Package goleak enforces the goroutine-accounting contract: every `go`
// statement in library code must be provably joined or cancellable, or a
// caller that returns early (timeout, cancellation, error) strands the
// goroutine — the failure mode that matters most for the streaming
// compactor and fleet-router work, where per-request goroutines multiply.
//
// A spawned goroutine counts as accounted when its body, analyzed over its
// control-flow graph:
//
//   - calls sync.WaitGroup.Done on every path to exit (a deferred Done
//     covers every exit, including panics);
//   - sends on or closes an externally provided channel on every path to
//     exit (the result-channel pattern: the spawner receives); or
//   - selects on (or receives from) a ctx.Done-derived channel, so
//     cancellation reaches it even when it loops forever.
//
// Goroutines that can only leave their body by looping forever must carry
// the ctx.Done case — a WaitGroup.Done that is never reached joins nothing.
// Package main is exempt (process lifetime owns its goroutines), as are
// _test.go files (the driver drops their diagnostics).
//
// Escape hatch: //lint:goleak <who owns this goroutine and how it ends>.
package goleak

import (
	"go/ast"
	"go/types"

	"pegasus/internal/lint/analysis"
	"pegasus/internal/lint/cfg"
)

// Analyzer flags goroutines that are neither joined nor cancellable.
var Analyzer = &analysis.Analyzer{
	Name: "goleak",
	Doc: "flag go statements whose goroutine is neither joined nor cancellable\n\n" +
		"Every goroutine spawned by library code must be joined by a\n" +
		"sync.WaitGroup, resolve a result channel on every path, or select on\n" +
		"a ctx.Done-derived channel; otherwise an early-returning caller\n" +
		"leaks it. Annotate //lint:goleak with an ownership argument where a\n" +
		"goroutine is deliberately detached.",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Name() == "main" {
		return nil, nil
	}
	// Bodies of same-package functions, so `go f()` can be checked too.
	decls := map[types.Object]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkGo(pass, gs, decls)
			return true
		})
	}
	return nil, nil
}

func checkGo(pass *analysis.Pass, gs *ast.GoStmt, decls map[types.Object]*ast.FuncDecl) {
	var body *ast.BlockStmt
	switch fun := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		body = fun.Body
	case *ast.Ident:
		if fd, ok := decls[pass.TypesInfo.Uses[fun]]; ok {
			body = fd.Body
		}
	case *ast.SelectorExpr:
		if fd, ok := decls[pass.TypesInfo.Uses[fun.Sel]]; ok {
			body = fd.Body
		}
	}
	if body == nil {
		pass.Reportf(gs.Go,
			"go statement spawns a function whose body this package cannot see; the goroutine cannot be proven joined — wrap it in a closure that joins (WaitGroup.Done, result-channel send, or ctx.Done select) or annotate //lint:goleak")
		return
	}
	g := cfg.New(body)

	// A deferred join covers every exit path, panics included.
	for _, d := range g.Defers {
		if isJoinCall(pass, body, d) {
			return
		}
	}
	// Cancellation wiring anywhere in the body keeps an otherwise unbounded
	// goroutine stoppable.
	if hasCtxDone(pass, body) {
		return
	}
	if !g.ExitReachable() {
		pass.Reportf(gs.Go,
			"goroutine loops forever with no ctx.Done-derived cancellation; it can never be stopped or joined — add a ctx.Done select (or annotate //lint:goleak)")
		return
	}
	if g.AllExitPathsHit(func(n ast.Node) bool { return isJoinNode(pass, body, n) }) {
		return
	}
	pass.Reportf(gs.Go,
		"goroutine is not joined on every path: add a deferred WaitGroup.Done, send on/close its result channel on all paths, or select on ctx.Done (or annotate //lint:goleak)")
}

// isJoinNode reports whether n is a join event for a goroutine with the
// given body: a WaitGroup.Done call, or a send on / close of an external
// channel.
func isJoinNode(pass *analysis.Pass, body *ast.BlockStmt, n ast.Node) bool {
	switch n := n.(type) {
	case *ast.SendStmt:
		return isExternalChan(pass, body, n.Chan)
	case *ast.CallExpr:
		return isJoinCall(pass, body, n)
	}
	return false
}

func isJoinCall(pass *analysis.Pass, body *ast.BlockStmt, call *ast.CallExpr) bool {
	if isWaitGroupDone(pass, call) {
		return true
	}
	// close(ch) on an external channel resolves the spawner's receive.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "close" && len(call.Args) == 1 {
		if _, isBuiltin := pass.ObjectOf(id).(*types.Builtin); isBuiltin {
			return isExternalChan(pass, body, call.Args[0])
		}
	}
	return false
}

// isWaitGroupDone reports whether call is (*sync.WaitGroup).Done (directly
// or through an embedded field).
func isWaitGroupDone(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	f, ok := pass.ObjectOf(sel.Sel).(*types.Func)
	if !ok || f.Pkg() == nil {
		return false
	}
	return f.Pkg().Path() == "sync" && f.Name() == "Done"
}

// isExternalChan reports whether e is a channel value that originates
// outside the goroutine body — captured from the enclosing function or
// received as a parameter — so that a send/close on it is observable by the
// spawner. A channel made inside the body joins nobody.
func isExternalChan(pass *analysis.Pass, body *ast.BlockStmt, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Chan); !ok {
		return false
	}
	// Resolve the root identifier; sends through struct fields
	// (s.errc <- v) count as external.
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := pass.ObjectOf(x)
			if obj == nil {
				return false
			}
			// Declared inside the goroutine body → internal.
			return !(obj.Pos() >= body.Pos() && obj.Pos() <= body.End())
		case *ast.SelectorExpr:
			return true
		case *ast.IndexExpr:
			e = x.X
		case *ast.CallExpr:
			return false
		default:
			return false
		}
	}
}

// hasCtxDone reports whether the body receives from a ctx.Done-derived
// channel: `<-ctx.Done()` (in a select case or bare), or a receive from a
// variable assigned from ctx.Done().
func hasCtxDone(pass *analysis.Pass, body *ast.BlockStmt) bool {
	// First pass: channel variables assigned from a Done() call.
	doneVars := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if !isDoneCall(pass, rhs) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
					doneVars[obj] = true
				}
			}
		}
		return true
	})
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		ue, ok := n.(*ast.UnaryExpr)
		if !ok || ue.Op.String() != "<-" {
			return true
		}
		if isDoneCall(pass, ue.X) {
			found = true
			return false
		}
		if id, ok := ast.Unparen(ue.X).(*ast.Ident); ok && doneVars[pass.TypesInfo.ObjectOf(id)] {
			found = true
			return false
		}
		return true
	})
	return found
}

// isDoneCall reports whether e is ctx.Done() for a context.Context ctx.
func isDoneCall(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	f, ok := pass.ObjectOf(sel.Sel).(*types.Func)
	if !ok || f.Pkg() == nil {
		return false
	}
	return f.Pkg().Path() == "context"
}
