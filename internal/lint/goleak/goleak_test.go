package goleak_test

import (
	"path/filepath"
	"testing"

	"pegasus/internal/lint/analysistest"
	"pegasus/internal/lint/goleak"
)

func TestGoleak(t *testing.T) {
	analysistest.Run(t, filepath.Join("..", "testdata"), goleak.Analyzer, "goleakspawn")
}
