package atomicmix_test

import (
	"path/filepath"
	"testing"

	"pegasus/internal/lint/analysistest"
	"pegasus/internal/lint/atomicmix"
)

func TestAtomicMix(t *testing.T) {
	analysistest.Run(t, filepath.Join("..", "testdata"), atomicmix.Analyzer,
		"atomicmixctr")
}
