// Package atomicmix enforces the metrics-counter memory-model contract:
// a field or variable that is ever accessed through sync/atomic (the
// obs/server/persist counters all are) must be accessed through
// sync/atomic *everywhere* — one plain load or store alongside atomic
// updates is a data race the race detector only catches when the exact
// interleaving fires in a test. The analyzer collects every object whose
// address is passed to a sync/atomic function and flags every other plain
// mention of that object in the package. A provably unshared access (e.g.
// inside a constructor before the value escapes) can be annotated
// //lint:atomicmix <why the value is unshared here>.
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"pegasus/internal/lint/analysis"
	"pegasus/internal/lint/lintutil"
)

// Analyzer flags mixed atomic/plain access to the same field or variable.
var Analyzer = &analysis.Analyzer{
	Name: "atomicmix",
	Doc: "flag fields accessed both via sync/atomic and plain loads/stores\n\n" +
		"Once any access to a field goes through sync/atomic, every access\n" +
		"must: mixing in one plain read or write is a data race. Use the\n" +
		"atomic API everywhere, switch the field to an atomic.* type, or\n" +
		"annotate //lint:atomicmix where the value is provably unshared.",
	Run: run,
}

// atomicFuncs are the sync/atomic operations whose first argument is the
// address of the value being operated on.
var atomicFuncs = map[string]bool{
	"AddInt32": true, "AddInt64": true, "AddUint32": true, "AddUint64": true, "AddUintptr": true,
	"LoadInt32": true, "LoadInt64": true, "LoadUint32": true, "LoadUint64": true, "LoadUintptr": true, "LoadPointer": true,
	"StoreInt32": true, "StoreInt64": true, "StoreUint32": true, "StoreUint64": true, "StoreUintptr": true, "StorePointer": true,
	"SwapInt32": true, "SwapInt64": true, "SwapUint32": true, "SwapUint64": true, "SwapUintptr": true, "SwapPointer": true,
	"CompareAndSwapInt32": true, "CompareAndSwapInt64": true, "CompareAndSwapUint32": true,
	"CompareAndSwapUint64": true, "CompareAndSwapUintptr": true, "CompareAndSwapPointer": true,
}

func run(pass *analysis.Pass) (any, error) {
	// Pass 1: objects whose address reaches sync/atomic, and the exact
	// operand expressions inside those calls (which are legitimate uses).
	atomicObjs := map[types.Object]token.Pos{}
	atomicOperands := map[ast.Expr]bool{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			f := lintutil.CalleeFunc(pass, call)
			if f == nil || f.Pkg() == nil || f.Pkg().Path() != "sync/atomic" || !atomicFuncs[f.Name()] {
				return true
			}
			addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || addr.Op != token.AND {
				return true
			}
			operand := ast.Unparen(addr.X)
			if obj := referencedObject(pass, operand); obj != nil {
				if _, seen := atomicObjs[obj]; !seen {
					atomicObjs[obj] = call.Pos()
				}
				atomicOperands[operand] = true
			}
			return true
		})
	}
	if len(atomicObjs) == 0 {
		return nil, nil
	}

	// Pass 2: any other mention of those objects is a plain access.
	type plain struct {
		pos  token.Pos
		obj  types.Object
		site token.Pos
	}
	var plains []plain
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			expr, ok := n.(ast.Expr)
			if !ok {
				return true
			}
			if atomicOperands[expr] {
				return false // the &x.f inside an atomic call
			}
			switch e := expr.(type) {
			case *ast.SelectorExpr:
			case *ast.Ident:
				// A defining occurrence (struct field or var declaration)
				// is not an access.
				if _, isDef := pass.TypesInfo.Defs[e]; isDef {
					return true
				}
			default:
				return true
			}
			obj := referencedObject(pass, expr)
			if obj == nil {
				return true
			}
			if site, isAtomic := atomicObjs[obj]; isAtomic {
				plains = append(plains, plain{pos: expr.Pos(), obj: obj, site: site})
				return false
			}
			// Keep descending: x.f's base x may itself be tracked.
			return true
		})
	}
	sort.Slice(plains, func(i, j int) bool { return plains[i].pos < plains[j].pos })
	for _, p := range plains {
		pass.Reportf(p.pos,
			"%s is accessed with sync/atomic at %s but plainly here — mixed access is a data race; use the atomic API everywhere or annotate //lint:atomicmix",
			p.obj.Name(), pass.Fset.Position(p.site))
	}
	return nil, nil
}

// referencedObject resolves the field or variable an lvalue expression
// denotes: x.f -> the field object f, x -> the variable x. Field objects
// are shared across all selections of the same field, which is what makes
// cross-function mixed-access detection work.
func referencedObject(pass *analysis.Pass, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := pass.ObjectOf(e).(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[e]; ok {
			if v, ok := sel.Obj().(*types.Var); ok && v.IsField() {
				return v
			}
			return nil
		}
		// Package-qualified var (pkg.V).
		if v, ok := pass.ObjectOf(e.Sel).(*types.Var); ok {
			return v
		}
	}
	return nil
}
