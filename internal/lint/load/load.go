// Package load type-checks Go packages for pegasus-lint using only the
// standard toolchain: `go list -export -deps` supplies compiler export data
// for every dependency (stdlib included, fully offline), and go/importer's
// gc importer consumes it, so analyzers always see complete types.Info. It
// is the stand-in for golang.org/x/tools/go/packages, which the build
// image cannot fetch.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// ListPackage is the subset of `go list -json` output the loader consumes.
type ListPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	ImportMap  map[string]string
	DepOnly    bool
	Standard   bool
	ForTest    string // set on test variants: the import path under test
}

// ListFields is the -json field list matching ListPackage; `go list` runs
// that feed DecodeUnits (the shared-loader path in CI) must use it.
const ListFields = "ImportPath,Name,Dir,Export,GoFiles,ImportMap,DepOnly,Standard,ForTest"

// Package is one fully type-checked package ready for analysis.
type Package struct {
	Path  string
	Name  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// GoList runs `go list -json` in dir with the given extra arguments and
// decodes the JSON stream.
func GoList(dir string, args ...string) ([]ListPackage, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", args, err, stderr.Bytes())
	}
	var pkgs []ListPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p ListPackage
		if derr := dec.Decode(&p); derr == io.EOF {
			break
		} else if derr != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %v", args, derr)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// ExportImporter returns a types.Importer that reads gc export data files.
// exports maps an import path to its export data file; importMap (may be
// nil) applies source-level import path remapping (vendoring, test
// variants) before the lookup.
func ExportImporter(fset *token.FileSet, exports, importMap map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		if importMap != nil {
			if real, ok := importMap[path]; ok {
				path = real
			}
		}
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// CheckFiles parses and type-checks the named files as one package with
// import path path, resolving imports through exports/importMap.
func CheckFiles(fset *token.FileSet, path string, filenames []string, exports, importMap map[string]string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	return CheckParsed(fset, path, files, exports, importMap)
}

// CheckParsed type-checks already-parsed files as one package.
func CheckParsed(fset *token.FileSet, path string, files []*ast.File, exports, importMap map[string]string) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: ExportImporter(fset, exports, importMap),
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	name := ""
	if len(files) > 0 {
		name = files[0].Name.Name
	}
	return &Package{Path: path, Name: name, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// Load type-checks the packages matching patterns (e.g. "./...") relative
// to dir, in one `go list -export -deps` invocation, and returns them
// sorted by import path. Dependency-only packages are type-checked via
// export data, never re-parsed.
func Load(dir string, patterns ...string) ([]*Package, error) {
	return LoadConfig(Config{Dir: dir}, patterns...)
}

// Config controls package loading beyond the defaults of Load.
type Config struct {
	// Dir is the working directory for `go list` (defaults to ".").
	Dir string

	// Tests loads `go list -test` variants so _test.go files are analyzed
	// too. Where a test variant exists ("pkg [pkg.test]"), it replaces the
	// plain package — the variant's GoFiles are a superset, so analyzing
	// both would duplicate every non-test diagnostic. Variant paths are
	// normalized: "pkg [pkg.test]" loads as "pkg", and external test
	// packages keep their "pkg_test" path (scoped analyzers trim the
	// suffix). Generated "pkg.test" mains are skipped.
	Tests bool

	// Units, when non-nil, is a pre-computed `go list -json=ListFields`
	// stream (with -export -deps, and -test if Tests is set) to use instead
	// of running go list. CI uses this to run the expensive loader step
	// once and share it between the direct and vettool lint drivers.
	Units io.Reader
}

// DecodeUnits decodes a `go list -json` stream as produced with ListFields.
func DecodeUnits(r io.Reader) ([]ListPackage, error) {
	var pkgs []ListPackage
	dec := json.NewDecoder(r)
	for {
		var p ListPackage
		if derr := dec.Decode(&p); derr == io.EOF {
			break
		} else if derr != nil {
			return nil, fmt.Errorf("decoding go list units: %v", derr)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// LoadConfig type-checks the packages matching patterns according to cfg.
func LoadConfig(cfg Config, patterns ...string) ([]*Package, error) {
	var listed []ListPackage
	var err error
	if cfg.Units != nil {
		listed, err = DecodeUnits(cfg.Units)
	} else {
		dir := cfg.Dir
		if dir == "" {
			dir = "."
		}
		args := []string{"-e=false", "-export", "-deps"}
		if cfg.Tests {
			args = append(args, "-test")
		}
		args = append(args, "-json="+ListFields, "--")
		args = append(args, patterns...)
		listed, err = GoList(dir, args...)
	}
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	superseded := map[string]bool{} // plain paths replaced by a test variant
	var targets []ListPackage
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.DepOnly || p.Standard || p.Name == "" {
			continue
		}
		if strings.HasSuffix(p.ImportPath, ".test") && p.Name == "main" {
			continue // generated test binary main
		}
		if p.ForTest != "" {
			p.ImportPath, _, _ = strings.Cut(p.ImportPath, " [")
			if p.ImportPath == p.ForTest {
				superseded[p.ForTest] = true
			}
		}
		targets = append(targets, p)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		if t.ForTest == "" && superseded[t.ImportPath] {
			continue
		}
		var filenames []string
		for _, name := range t.GoFiles {
			filenames = append(filenames, filepath.Join(t.Dir, name))
		}
		pkg, err := CheckFiles(fset, t.ImportPath, filenames, exports, t.ImportMap)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
