package poolhold_test

import (
	"path/filepath"
	"testing"

	"pegasus/internal/lint/analysistest"
	"pegasus/internal/lint/poolhold"
)

func TestPoolHold(t *testing.T) {
	analysistest.Run(t, filepath.Join("..", "testdata"), poolhold.Analyzer,
		"poolholdwin")
}
