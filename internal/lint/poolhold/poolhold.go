// Package poolhold enforces the serving layer's slot-discipline invariant,
// the deadlock class fixed by hand in PR 3: code running inside a bounded
// worker-pool slot must never block on work that itself needs a slot.
// Concretely, the function literal passed to a Pool's Run method (the
// lexical window during which the slot is held) may not
//
//   - wait on a singleflight (Group.Do/DoChan, Cache.GetOrCompute): the
//     flight leader may need a pool slot of its own, and with every slot
//     occupied by waiters the pool deadlocks;
//   - receive from a channel or run a select without a default clause;
//   - call a Wait method (sync.WaitGroup, sync.Cond, errgroup).
//
// Blocking work belongs outside the slot ("self-pooling compute closures":
// the compute closure acquires the slot, the flight wait happens outside).
// A call site that provably cannot deadlock carries
// //lint:poolhold <why this cannot wait on a slot-holder>.
package poolhold

import (
	"go/ast"
	"go/token"

	"pegasus/internal/lint/analysis"
	"pegasus/internal/lint/lintutil"
)

// Analyzer flags blocking calls lexically inside a pool-slot window.
var Analyzer = &analysis.Analyzer{
	Name: "poolhold",
	Doc: "flag blocking waits inside a worker-pool slot acquire/release window\n\n" +
		"Never wait on a singleflight, channel, or WaitGroup while holding a\n" +
		"bounded pool slot: if the work being awaited needs a slot too, the\n" +
		"pool deadlocks under saturation. Move the wait outside the slot or\n" +
		"annotate //lint:poolhold with a deadlock-freedom argument.",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isPoolRun(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					checkWindow(pass, lit.Body)
				}
			}
			return true
		})
	}
	return nil, nil
}

// isPoolRun reports whether call invokes the Run method of a type whose
// name contains "Pool" — the slot acquire/release window of the repo's
// bounded worker pools.
func isPoolRun(pass *analysis.Pass, call *ast.CallExpr) bool {
	f := lintutil.CalleeFunc(pass, call)
	if f == nil || f.Name() != "Run" {
		return false
	}
	recv := lintutil.ReceiverTypeName(f)
	return recv != "" && containsPool(recv)
}

func containsPool(name string) bool {
	for i := 0; i+4 <= len(name); i++ {
		if name[i:i+4] == "Pool" || name[i:i+4] == "pool" {
			return true
		}
	}
	return false
}

// checkWindow walks the slot-holding window and reports blocking
// constructs. Bodies of `go` statements are excluded: a goroutine spawned
// from the window blocks its own stack, not the slot holder's.
func checkWindow(pass *analysis.Pass, body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pass.Reportf(n.Pos(),
					"channel receive while holding a pool slot can deadlock the pool; move the wait outside the slot or annotate //lint:poolhold")
			}
		case *ast.SelectStmt:
			if !selectHasDefault(n) {
				pass.Reportf(n.Pos(),
					"select without default blocks while holding a pool slot; move the wait outside the slot or annotate //lint:poolhold")
			}
			// Comm clauses were already reported via the select itself;
			// don't double-report each receive inside it.
			for _, stmt := range n.Body.List {
				if comm, ok := stmt.(*ast.CommClause); ok {
					for _, s := range comm.Body {
						checkWindow(pass, s)
					}
				}
			}
			return false
		case *ast.CallExpr:
			if name, blocking := blockingCall(pass, n); blocking {
				pass.Reportf(n.Pos(),
					"%s waits while holding a pool slot — if the awaited work needs a slot, the pool deadlocks; move it outside the slot or annotate //lint:poolhold", name)
			}
		}
		return true
	})
}

func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, stmt := range sel.Body.List {
		if comm, ok := stmt.(*ast.CommClause); ok && comm.Comm == nil {
			return true
		}
	}
	return false
}

// blockingCall classifies calls that wait on other goroutines: any Wait
// method, singleflight-style Do/DoChan on a Group, and the cache's
// singleflight entry point GetOrCompute.
func blockingCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	f := lintutil.CalleeFunc(pass, call)
	if f == nil {
		return "", false
	}
	recv := lintutil.ReceiverTypeName(f)
	switch f.Name() {
	case "Wait":
		if recv != "" {
			return recv + ".Wait", true
		}
	case "Do", "DoChan":
		if recv == "Group" {
			return recv + "." + f.Name() + " (singleflight)", true
		}
	case "GetOrCompute":
		if recv != "" {
			return recv + ".GetOrCompute (singleflight)", true
		}
	}
	return "", false
}
