package ctxflow_test

import (
	"path/filepath"
	"testing"

	"pegasus/internal/lint/analysistest"
	"pegasus/internal/lint/ctxflow"
)

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, filepath.Join("..", "testdata"), ctxflow.Analyzer,
		"ctxflowlib", "ctxflowmain")
}
