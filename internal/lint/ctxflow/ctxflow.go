// Package ctxflow enforces the context-propagation contract established by
// the cancellable build pipeline (PR 2) and the span tracer (PR 6): a
// request's context must flow unbroken from the HTTP handler down to every
// power iteration and build phase, because both cancellation and trace
// spans ride on it. Two rules:
//
//  1. Library code must not mint fresh roots: calls to
//     context.Background() or context.TODO() outside package main are
//     flagged. Deliberate roots (public convenience wrappers, detached
//     shutdown timers) carry //lint:ctxflow <why this is a true root>.
//
//  2. Where a ctx is in scope, ctx-capable siblings must be preferred:
//     calling F when the same package declares a context-taking FCtx (the
//     repo's naming convention for context variants) from a function that
//     has a ctx parameter silently severs cancellation and tracing, and
//     is flagged.
package ctxflow

import (
	"go/ast"
	"go/types"

	"pegasus/internal/lint/analysis"
	"pegasus/internal/lint/lintutil"
)

// Analyzer flags broken context propagation in library packages.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "flag context.Background()/TODO() in library code and calls that drop an in-scope ctx\n\n" +
		"The cancellation and span-propagation contract requires request\n" +
		"contexts to reach every ctx-capable callee. Pass the caller's ctx,\n" +
		"call the Ctx-suffixed sibling, or annotate //lint:ctxflow with the\n" +
		"reason this call site is a true context root.",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Name() == "main" {
		// Binaries own their root contexts (signal.NotifyContext etc.).
		return nil, nil
	}
	for _, file := range pass.Files {
		walkFuncs(file, func(fn funcNode, ctxInScope bool) {
			body := fn.body()
			if body == nil {
				return
			}
			inspectShallow(body, func(n ast.Node) {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return
				}
				checkBackground(pass, call)
				if ctxInScope {
					checkDroppedCtx(pass, call)
				}
			})
		}, func(ft *ast.FuncType) bool {
			return lintutil.HasContextParam(pass, ft)
		})
	}
	return nil, nil
}

// checkBackground flags fresh context roots.
func checkBackground(pass *analysis.Pass, call *ast.CallExpr) {
	if lintutil.IsPkgFunc(pass, call, "context", "Background", "TODO") {
		pass.Reportf(call.Pos(),
			"context.%s() in library code severs cancellation and trace propagation; accept a ctx from the caller or annotate //lint:ctxflow",
			lintutil.CalleeFunc(pass, call).Name())
	}
}

// checkDroppedCtx flags calls to F where a same-package FCtx sibling taking
// a context exists and a ctx is in scope at the call site.
func checkDroppedCtx(pass *analysis.Pass, call *ast.CallExpr) {
	callee := lintutil.CalleeFunc(pass, call)
	if callee == nil || callee.Pkg() == nil || callee.Pkg() != pass.Pkg {
		return
	}
	name := callee.Name()
	if len(name) >= 3 && name[len(name)-3:] == "Ctx" {
		return
	}
	sibling := findCtxSibling(pass, callee)
	if sibling == nil {
		return
	}
	pass.Reportf(call.Pos(),
		"call to %s drops the in-scope ctx; use %s so cancellation and tracing propagate (or annotate //lint:ctxflow)",
		name, sibling.Name())
}

// findCtxSibling returns the <name>Ctx variant of f — a same-package
// function, or a method on the same receiver type, whose signature
// includes a context.Context — or nil.
func findCtxSibling(pass *analysis.Pass, f *types.Func) *types.Func {
	want := f.Name() + "Ctx"
	if recv := lintutil.ReceiverTypeName(f); recv != "" {
		sig := f.Type().(*types.Signature)
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return nil
		}
		for i := 0; i < named.NumMethods(); i++ {
			if m := named.Method(i); m.Name() == want && takesContext(m) {
				return m
			}
		}
		return nil
	}
	if obj, ok := pass.Pkg.Scope().Lookup(want).(*types.Func); ok && takesContext(obj) {
		return obj
	}
	return nil
}

func takesContext(f *types.Func) bool {
	sig, ok := f.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if lintutil.IsContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// funcNode is a FuncDecl or FuncLit.
type funcNode struct {
	decl *ast.FuncDecl
	lit  *ast.FuncLit
}

func (f funcNode) body() *ast.BlockStmt {
	if f.decl != nil {
		return f.decl.Body
	}
	return f.lit.Body
}

func (f funcNode) typ() *ast.FuncType {
	if f.decl != nil {
		return f.decl.Type
	}
	return f.lit.Type
}

// walkFuncs visits every function declaration and literal in file,
// reporting for each whether a ctx parameter is in scope (declared by the
// function itself or captured from an enclosing one). hasCtx decides
// whether a signature declares a context parameter.
func walkFuncs(file *ast.File, visit func(funcNode, bool), hasCtx func(*ast.FuncType) bool) {
	var walk func(n ast.Node, inherited bool)
	walk = func(n ast.Node, inherited bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch fn := m.(type) {
			case *ast.FuncDecl:
				scoped := hasCtx(fn.Type)
				visit(funcNode{decl: fn}, scoped)
				if fn.Body != nil {
					walk(fn.Body, scoped)
				}
				return false
			case *ast.FuncLit:
				scoped := inherited || hasCtx(fn.Type)
				visit(funcNode{lit: fn}, scoped)
				walk(fn.Body, scoped)
				return false
			}
			return true
		})
	}
	for _, decl := range file.Decls {
		if fn, ok := decl.(*ast.FuncDecl); ok {
			scoped := hasCtx(fn.Type)
			visit(funcNode{decl: fn}, scoped)
			if fn.Body != nil {
				walk(fn.Body, scoped)
			}
		}
	}
}

// inspectShallow visits nodes in body without descending into nested
// function literals (they are visited by walkFuncs with their own scope).
func inspectShallow(body ast.Node, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}
