package persist

import (
	"bytes"
	"errors"
	"maps"
	"slices"
	"testing"
)

// FuzzDecode feeds arbitrary bytes to the decoder and pins the codec's
// safety contract:
//
//   - Decode never panics;
//   - every failure is typed (wraps ErrCorrupt or ErrVersion);
//   - every success yields a structurally valid artifact whose re-encoding
//     is a fixpoint: Encode(Decode(b)) decodes again to the same bytes.
//
// The committed seed corpus under testdata/fuzz/FuzzDecode covers both
// artifact kinds and the edge cases (empty, single-supernode, max-weight,
// dense self-loops, weighted/unweighted); f.Add mirrors a subset so the
// target is useful even with a stripped corpus. CI runs a -fuzztime 10s
// smoke pass on every push.
func FuzzDecode(f *testing.F) {
	summaries := caseSummaries(f)
	for _, name := range slices.Sorted(maps.Keys(summaries)) {
		enc, err := EncodeBytes(Artifact{Summary: summaries[name]})
		if err != nil {
			f.Fatalf("seed %s: %v", name, err)
		}
		f.Add(enc)
	}
	subgraphs := caseSubgraphs(f)
	for _, name := range slices.Sorted(maps.Keys(subgraphs)) {
		enc, err := EncodeBytes(Artifact{Subgraph: subgraphs[name]})
		if err != nil {
			f.Fatalf("seed %s: %v", name, err)
		}
		f.Add(enc)
	}
	f.Add([]byte{})
	f.Add([]byte("PGAR"))
	f.Add([]byte("PGAR\x01\x01\x00\x00\x00\x00\x00\x00\x00\x00"))

	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		if (a.Summary == nil) == (a.Subgraph == nil) {
			t.Fatalf("decoded artifact holds %v summary / %v subgraph", a.Summary != nil, a.Subgraph != nil)
		}
		if a.Summary != nil {
			if err := a.Summary.Validate(); err != nil {
				t.Fatalf("decoded summary violates invariants: %v", err)
			}
		}
		re, err := EncodeBytes(a)
		if err != nil {
			t.Fatalf("re-encoding a decoded artifact failed: %v", err)
		}
		b, err := Decode(re)
		if err != nil {
			t.Fatalf("decoding a re-encoded artifact failed: %v", err)
		}
		re2, err := EncodeBytes(b)
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(re, re2) {
			t.Fatal("re-encoding is not a fixpoint")
		}
	})
}
