package persist

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"pegasus/internal/graph"
	"pegasus/internal/summary"
)

func testStore(t *testing.T) *Store {
	t.Helper()
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func testSummary(t testing.TB) *summary.Summary {
	t.Helper()
	superOf := []uint32{0, 0, 1, 2, 2, 2}
	b := summary.NewBuilder(superOf)
	b.AddSuperedge(0, 1, 1)
	b.AddSuperedge(1, 2, 3.5)
	return b.Build()
}

const keyA = "aaaa1111bbbb2222cccc3333dddd4444aaaa1111bbbb2222cccc3333dddd4444"

func TestStorePutGetRoundTrip(t *testing.T) {
	st := testStore(t)
	s := testSummary(t)
	if err := st.Put(keyA, Artifact{Summary: s}); err != nil {
		t.Fatalf("put: %v", err)
	}
	a, ok, err := st.Get(keyA)
	if err != nil || !ok {
		t.Fatalf("get: ok=%v err=%v", ok, err)
	}
	if a.Summary == nil || a.Summary.NumNodes() != s.NumNodes() {
		t.Fatalf("got %+v", a)
	}
	stats := st.Stats()
	if stats.Puts != 1 || stats.Hits != 1 || stats.Misses != 0 {
		t.Errorf("stats = %+v, want 1 put, 1 hit, 0 misses", stats)
	}
	if stats.BytesWritten == 0 || stats.BytesRead != stats.BytesWritten {
		t.Errorf("bytes written %d / read %d, want equal and non-zero", stats.BytesWritten, stats.BytesRead)
	}
	// Subgraph artifacts file and load the same way.
	g := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	key2 := "ffff0000" + keyA[8:]
	if err := st.Put(key2, Artifact{Subgraph: g}); err != nil {
		t.Fatalf("put subgraph: %v", err)
	}
	a, ok, err = st.Get(key2)
	if err != nil || !ok || a.Subgraph == nil || a.Subgraph.NumEdges() != 2 {
		t.Fatalf("get subgraph: a=%+v ok=%v err=%v", a, ok, err)
	}
}

func TestStoreGetMissing(t *testing.T) {
	st := testStore(t)
	a, ok, err := st.Get(keyA)
	if ok || err != nil {
		t.Fatalf("missing key: a=%+v ok=%v err=%v, want miss with nil error", a, ok, err)
	}
	if st.Stats().Misses != 1 {
		t.Errorf("misses = %d, want 1", st.Stats().Misses)
	}
}

// TestStoreGetCorrupt: a damaged artifact file is a typed miss — the caller
// sees ErrCorrupt and rebuilds; nothing panics.
func TestStoreGetCorrupt(t *testing.T) {
	st := testStore(t)
	if err := st.Put(keyA, Artifact{Summary: testSummary(t)}); err != nil {
		t.Fatal(err)
	}
	path, _ := st.Path(keyA)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	a, ok, err := st.Get(keyA)
	if ok {
		t.Fatalf("corrupt artifact decoded: %+v", a)
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("error %v does not wrap ErrCorrupt", err)
	}
	// A fresh Put over the corrupt file heals the entry.
	if err := st.Put(keyA, Artifact{Summary: testSummary(t)}); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := st.Get(keyA); !ok || err != nil {
		t.Fatalf("after healing put: ok=%v err=%v", ok, err)
	}
}

func TestStoreRejectsUnsafeKeys(t *testing.T) {
	st := testStore(t)
	for _, key := range []string{"", ".", "..", "a/b", "../escape", "a.b", "a b", "k\x00", string(make([]byte, 200))} {
		if _, err := st.Path(key); err == nil {
			t.Errorf("key %q accepted", key)
		}
		if err := st.Put(key, Artifact{Summary: testSummary(t)}); err == nil {
			t.Errorf("put under key %q succeeded", key)
		}
	}
}

func TestStoreGC(t *testing.T) {
	st := testStore(t)
	live, dead := keyA, "dead0000"+keyA[8:]
	for _, k := range []string{live, dead} {
		if err := st.Put(k, Artifact{Summary: testSummary(t)}); err != nil {
			t.Fatal(err)
		}
	}
	// A stranded Put temporary from a "crash".
	stray := filepath.Join(st.Dir(), tmpPrefix+"stranded")
	if err := os.WriteFile(stray, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	// An unrelated file the GC must leave alone.
	other := filepath.Join(st.Dir(), "README")
	if err := os.WriteFile(other, []byte("keep me"), 0o644); err != nil {
		t.Fatal(err)
	}

	removed, err := st.GC(func(k string) bool { return k == live })
	if err != nil {
		t.Fatalf("gc: %v", err)
	}
	if removed != 1 {
		t.Errorf("gc removed %d artifacts, want 1", removed)
	}
	keys, err := st.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != live {
		t.Errorf("keys after gc = %v, want [%s]", keys, live)
	}
	if _, err := os.Stat(stray); !errors.Is(err, os.ErrNotExist) {
		t.Error("gc left the stranded temp file")
	}
	if _, err := os.Stat(other); err != nil {
		t.Error("gc removed an unrelated file")
	}
}

// TestStoreConcurrentPutGet exercises the atomicity contract under -race:
// concurrent writers and readers on the same key must only ever observe a
// complete artifact or a miss.
func TestStoreConcurrentPutGet(t *testing.T) {
	st := testStore(t)
	s := testSummary(t)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if err := st.Put(keyA, Artifact{Summary: s}); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				a, ok, err := st.Get(keyA)
				if err != nil {
					t.Errorf("get: %v", err)
					return
				}
				if ok && a.Summary.NumNodes() != s.NumNodes() {
					t.Error("observed a partial artifact")
					return
				}
			}
		}()
	}
	wg.Wait()
}
