package persist

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"maps"
	"math"
	"math/rand"
	"slices"
	"testing"

	"pegasus/internal/graph"
	"pegasus/internal/summary"
)

// randomSummary builds a structurally valid summary over n nodes with up to
// maxS supernode labels and nEdges random superedges. weighted draws random
// positive weights (which may or may not include non-unit ones — the flag is
// derived from the data, and both outcomes are worth round-tripping).
func randomSummary(rng *rand.Rand, n, maxS, nEdges int, weighted bool) *summary.Summary {
	superOf := make([]uint32, n)
	for u := range superOf {
		superOf[u] = uint32(rng.Intn(maxS))
	}
	b := summary.NewBuilder(superOf)
	for i := 0; i < nEdges; i++ {
		la := superOf[rng.Intn(n)]
		lb := superOf[rng.Intn(n)]
		w := 1.0
		if weighted {
			switch rng.Intn(4) {
			case 0:
				w = 1 // unit weights interleaved with non-unit ones
			case 1:
				w = float64(1+rng.Intn(1000)) / 7.0
			case 2:
				w = rng.Float64() + 1e-9
			default:
				w = math.MaxFloat64 * rng.Float64()
				if w == 0 {
					w = 1
				}
			}
		}
		b.AddSuperedge(la, lb, w)
	}
	return b.Build()
}

// caseSummaries enumerates the codec's edge cases plus randomized instances:
// empty, single-supernode, max-weight, dense self-loops, weighted and
// unweighted.
func caseSummaries(t testing.TB) map[string]*summary.Summary {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	cases := map[string]*summary.Summary{}

	// Empty: zero nodes, zero supernodes, zero superedges.
	cases["empty"] = summary.NewBuilder(nil).Build()

	// Single supernode holding every node, with a max-weight self-loop.
	all := make([]uint32, 9)
	b := summary.NewBuilder(all)
	b.AddSuperedge(0, 0, math.MaxFloat64)
	cases["single-supernode-max-weight"] = b.Build()

	// Single supernode, no superedges at all.
	cases["single-supernode-no-edges"] = summary.NewBuilder(make([]uint32, 5)).Build()

	// Dense self-loops: every supernode has a self-loop plus a ring of
	// superedges, weighted.
	superOf := make([]uint32, 24)
	for u := range superOf {
		superOf[u] = uint32(u % 6)
	}
	b = summary.NewBuilder(superOf)
	for a := uint32(0); a < 6; a++ {
		b.AddSuperedge(a, a, float64(a)+0.5)
		b.AddSuperedge(a, (a+1)%6, 2.0)
	}
	cases["dense-self-loops"] = b.Build()

	// Identity summary of a generated graph: unweighted, many supernodes.
	gb := graph.NewBuilder(30)
	for u := 0; u < 30; u++ {
		gb.AddEdge(uint32(u), uint32((u+1)%30))
		gb.AddEdge(uint32(u), uint32((u*7+3)%30))
	}
	cases["identity"] = summary.Identity(gb.Build())

	for i := 0; i < 8; i++ {
		cases[fmt.Sprintf("random-unweighted-%d", i)] = randomSummary(rng, 20+i*13, 3+i, 2+i*5, false)
		cases[fmt.Sprintf("random-weighted-%d", i)] = randomSummary(rng, 20+i*13, 3+i, 2+i*5, true)
	}
	return cases
}

// caseSubgraphs enumerates subgraph-machine artifacts: empty, edgeless,
// isolated trailing nodes, randomized.
func caseSubgraphs(t testing.TB) map[string]*graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	cases := map[string]*graph.Graph{
		"empty":          graph.FromEdges(0, nil),
		"edgeless":       graph.FromEdges(12, nil),
		"trailing-holes": graph.FromEdges(10, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}}),
	}
	for i := 0; i < 6; i++ {
		n := 15 + i*9
		gb := graph.NewBuilder(n)
		for e := 0; e < n*2; e++ {
			gb.AddEdge(uint32(rng.Intn(n)), uint32(rng.Intn(n)))
		}
		cases[fmt.Sprintf("random-%d", i)] = gb.Build()
	}
	return cases
}

// TestSummaryRoundTrip pins the codec's central property on summaries:
// Encode(Decode(x)) == x byte-for-byte, the decoded summary is structurally
// valid, and its legacy Write serialization — the byte-identity yardstick
// the incremental-rebuild tests use — matches the original's exactly.
func TestSummaryRoundTrip(t *testing.T) {
	cases := caseSummaries(t)
	for _, name := range slices.Sorted(maps.Keys(cases)) {
		s := cases[name]
		t.Run(name, func(t *testing.T) {
			enc, err := EncodeBytes(Artifact{Summary: s})
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			a, err := Decode(enc)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if a.Summary == nil || a.Subgraph != nil {
				t.Fatalf("decoded artifact kind mismatch: %+v", a)
			}
			if err := a.Summary.Validate(); err != nil {
				t.Fatalf("decoded summary invalid: %v", err)
			}
			re, err := EncodeBytes(a)
			if err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			if !bytes.Equal(enc, re) {
				t.Fatalf("Encode(Decode(x)) != x: %d vs %d bytes", len(re), len(enc))
			}
			var w1, w2 bytes.Buffer
			if err := s.Write(&w1); err != nil {
				t.Fatal(err)
			}
			if err := a.Summary.Write(&w2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
				t.Fatal("decoded summary's Write bytes differ from the original's — bit-identity broken")
			}
		})
	}
}

// TestSubgraphRoundTrip is the same property for subgraph-machine artifacts.
func TestSubgraphRoundTrip(t *testing.T) {
	cases := caseSubgraphs(t)
	for _, name := range slices.Sorted(maps.Keys(cases)) {
		g := cases[name]
		t.Run(name, func(t *testing.T) {
			enc, err := EncodeBytes(Artifact{Subgraph: g})
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			a, err := Decode(enc)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if a.Subgraph == nil || a.Summary != nil {
				t.Fatalf("decoded artifact kind mismatch: %+v", a)
			}
			if a.Subgraph.NumNodes() != g.NumNodes() || a.Subgraph.NumEdges() != g.NumEdges() {
				t.Fatalf("decoded |V|=%d |E|=%d, want |V|=%d |E|=%d",
					a.Subgraph.NumNodes(), a.Subgraph.NumEdges(), g.NumNodes(), g.NumEdges())
			}
			re, err := EncodeBytes(a)
			if err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			if !bytes.Equal(enc, re) {
				t.Fatal("Encode(Decode(x)) != x for subgraph artifact")
			}
		})
	}
}

// TestEncodeRejectsAmbiguousArtifact: an artifact must hold exactly one
// payload kind.
func TestEncodeRejectsAmbiguousArtifact(t *testing.T) {
	if _, err := EncodeBytes(Artifact{}); err == nil {
		t.Error("encoding an empty artifact succeeded")
	}
	s := summary.NewBuilder(make([]uint32, 3)).Build()
	g := graph.FromEdges(3, nil)
	if _, err := EncodeBytes(Artifact{Summary: s, Subgraph: g}); err == nil {
		t.Error("encoding a two-kind artifact succeeded")
	}
}

// fixCRC recomputes the trailer over everything before it, so tests can
// craft payload mutations that only the structural checks (not the
// checksum) must catch.
func fixCRC(data []byte) []byte {
	out := append([]byte(nil), data...)
	binary.LittleEndian.PutUint32(out[len(out)-trailerLen:], crc32.ChecksumIEEE(out[:len(out)-trailerLen]))
	return out
}

// referenceEncoding returns one representative valid artifact encoding.
func referenceEncoding(t testing.TB) []byte {
	t.Helper()
	superOf := []uint32{0, 0, 1, 1, 2}
	b := summary.NewBuilder(superOf)
	b.AddSuperedge(0, 1, 1)
	b.AddSuperedge(1, 2, 2.5)
	b.AddSuperedge(2, 2, 0.25)
	enc, err := EncodeBytes(Artifact{Summary: b.Build()})
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

// mustCorrupt asserts that decoding fails with a typed ErrCorrupt (never a
// panic, never success, never an untyped error).
func mustCorrupt(t *testing.T, data []byte, what string) {
	t.Helper()
	_, err := Decode(data)
	if err == nil {
		t.Fatalf("%s: decode succeeded", what)
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("%s: error %v does not wrap ErrCorrupt", what, err)
	}
}

// TestDecodeZeroLength: an empty file is ErrCorrupt.
func TestDecodeZeroLength(t *testing.T) {
	mustCorrupt(t, nil, "nil input")
	mustCorrupt(t, []byte{}, "zero-length input")
}

// TestDecodeTruncated: every proper prefix of a valid encoding fails typed.
func TestDecodeTruncated(t *testing.T) {
	enc := referenceEncoding(t)
	for k := 0; k < len(enc); k++ {
		mustCorrupt(t, enc[:k], fmt.Sprintf("truncation to %d/%d bytes", k, len(enc)))
	}
}

// TestDecodeFlippedByte: flipping any single byte anywhere in the file —
// header, payload, or trailer — fails typed. The CRC covers the body and the
// trailer is compared against it, so no single flip can slip through.
func TestDecodeFlippedByte(t *testing.T) {
	enc := referenceEncoding(t)
	for i := range enc {
		for _, flip := range []byte{0x01, 0x80, 0xff} {
			mut := append([]byte(nil), enc...)
			mut[i] ^= flip
			mustCorrupt(t, mut, fmt.Sprintf("byte %d flipped with %#x", i, flip))
		}
	}
}

// TestDecodeWrongMagic: a wrong magic is ErrCorrupt even with a valid CRC.
func TestDecodeWrongMagic(t *testing.T) {
	enc := referenceEncoding(t)
	mut := append([]byte(nil), enc...)
	copy(mut, "NOPE")
	mustCorrupt(t, fixCRC(mut), "wrong magic with fixed CRC")
}

// TestDecodeFutureVersion: a structurally intact file from a future codec
// version is ErrVersion — distinguishable from corruption, equally
// recoverable (rebuild).
func TestDecodeFutureVersion(t *testing.T) {
	enc := referenceEncoding(t)
	for _, v := range []byte{0, 2, 77, 255} {
		mut := append([]byte(nil), enc...)
		mut[4] = v
		_, err := Decode(fixCRC(mut))
		if err == nil {
			t.Fatalf("version %d decoded", v)
		}
		if !errors.Is(err, ErrVersion) {
			t.Fatalf("version %d: error %v does not wrap ErrVersion", v, err)
		}
		if errors.Is(err, ErrCorrupt) {
			t.Fatalf("version %d: error %v wraps ErrCorrupt too — the two must stay distinct", v, err)
		}
	}
}

// TestDecodeUnknownKind: an unknown artifact kind is ErrCorrupt.
func TestDecodeUnknownKind(t *testing.T) {
	enc := referenceEncoding(t)
	mut := append([]byte(nil), enc...)
	mut[5] = 9
	mustCorrupt(t, fixCRC(mut), "unknown kind with fixed CRC")
}

// TestDecodeTrailingGarbage: extra bytes between payload and trailer are
// rejected even when the CRC is recomputed over them — canonical encodings
// consume the payload exactly.
func TestDecodeTrailingGarbage(t *testing.T) {
	enc := referenceEncoding(t)
	mut := append([]byte(nil), enc[:len(enc)-trailerLen]...)
	mut = append(mut, 0xAB, 0, 0, 0, 0)
	mustCorrupt(t, fixCRC(mut), "trailing garbage with fixed CRC")
}

// TestDecodeHugeCounts: headers claiming absurd node counts are rejected
// before any proportional allocation happens (each node costs at least one
// payload byte, so the count can never exceed the payload length).
func TestDecodeHugeCounts(t *testing.T) {
	for _, kind := range []byte{kindSummary, kindSubgraph} {
		data := []byte{'P', 'G', 'A', 'R', codecVersion, kind,
			0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01, // huge varint |V|
			0, 0, 0, 0, 0, 0} // filler + CRC space
		mustCorrupt(t, fixCRC(data), fmt.Sprintf("huge node count, kind %d", kind))
	}
}
