package persist

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"
)

// ext is the artifact file extension; a store directory contains one
// <key>.pgsum file per persisted artifact plus (transiently) .tmp-* files
// mid-Put.
const ext = ".pgsum"

// tmpPrefix marks in-flight Put temporaries; a crash can strand them, and
// GC sweeps them up.
const tmpPrefix = ".tmp-"

// Store is a content-addressed artifact store over one directory: artifact
// bytes live at <dir>/<key>.pgsum, where the key is a shard content key
// (distributed.ShardKey) — a collision-resistant fingerprint of everything
// that determines the artifact's bytes. Content addressing makes files
// immutable once written: a Put under an existing key rewrites the same
// bytes, so readers never observe a file changing under them, and Put's
// temp-file + rename protocol means a reader either sees a complete
// artifact or none at all (crashes leave only .tmp-* strays, which GC
// removes).
//
// A Store is safe for concurrent use. One serving process should own a
// directory: GC deletes everything outside the keep set, so two clusters
// sharing a directory would collect each other's artifacts.
type Store struct {
	dir string

	hits      atomic.Uint64
	misses    atomic.Uint64
	puts      atomic.Uint64
	putErrors atomic.Uint64
	bytesW    atomic.Uint64
	bytesR    atomic.Uint64
	loadUs    atomic.Uint64
}

// Open returns a Store over dir, creating the directory if needed.
func Open(dir string) (*Store, error) {
	if dir == "" {
		//lint:typederr store-configuration error, not an artifact-bytes failure
		return nil, errors.New("persist: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: open store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's directory.
func (st *Store) Dir() string { return st.dir }

// Path returns the file path an artifact with the given key lives at. Keys
// must be path-safe tokens (shard content keys are lowercase hex); anything
// else — separators, dots, empty — is rejected so a key can never escape
// the store directory.
func (st *Store) Path(key string) (string, error) {
	if key == "" || len(key) > 128 {
		//lint:typederr key-validation (usage) error, not an artifact-bytes failure
		return "", fmt.Errorf("persist: invalid artifact key %q", key)
	}
	for _, c := range key {
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '-', c == '_':
		default:
			//lint:typederr key-validation (usage) error, not an artifact-bytes failure
			return "", fmt.Errorf("persist: invalid artifact key %q", key)
		}
	}
	return filepath.Join(st.dir, key+ext), nil
}

// Put encodes the artifact and files it under key atomically: the bytes go
// to a temp file in the store directory first and are renamed into place,
// so a concurrent Get (or a crash) can never observe a partial artifact.
// Errors are also counted on the store's stats — build paths persist
// best-effort and may ignore the return.
func (st *Store) Put(key string, a Artifact) error {
	err := st.put(key, a)
	if err != nil {
		st.putErrors.Add(1)
	}
	return err
}

func (st *Store) put(key string, a Artifact) error {
	path, err := st.Path(key)
	if err != nil {
		return err
	}
	raw, err := EncodeBytes(a)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(st.dir, tmpPrefix+"*")
	if err != nil {
		return fmt.Errorf("persist: put %s: %w", key, err)
	}
	if _, err := tmp.Write(raw); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("persist: put %s: %w", key, err)
	}
	// Flush the data to stable storage BEFORE the rename becomes visible:
	// without this, a power loss can persist the rename ahead of the data
	// blocks and leave a complete-looking file full of garbage at the final
	// path (the CRC would catch it, but the durability claim would be a
	// lie — and the warm start would silently lose that shard).
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("persist: put %s: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("persist: put %s: %w", key, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("persist: put %s: %w", key, err)
	}
	// Persist the rename itself (the directory entry) best-effort; a lost
	// rename after a crash is just a miss on the next boot, never a partial
	// artifact, so a failure here is not worth failing the Put.
	if d, err := os.Open(st.dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	st.puts.Add(1)
	st.bytesW.Add(uint64(len(raw)))
	return nil
}

// Get loads and decodes the artifact filed under key. A missing artifact is
// (Artifact{}, false, nil); an unreadable or corrupt one is (Artifact{},
// false, err) with err wrapping ErrCorrupt/ErrVersion where applicable —
// callers treat both as a miss and rebuild, the error carrying the why.
func (st *Store) Get(key string) (Artifact, bool, error) {
	path, err := st.Path(key)
	if err != nil {
		st.misses.Add(1)
		return Artifact{}, false, err
	}
	start := time.Now()
	raw, err := os.ReadFile(path)
	if err != nil {
		st.misses.Add(1)
		if errors.Is(err, fs.ErrNotExist) {
			return Artifact{}, false, nil
		}
		return Artifact{}, false, fmt.Errorf("persist: get %s: %w", key, err)
	}
	a, err := Decode(raw)
	if err != nil {
		st.misses.Add(1)
		return Artifact{}, false, fmt.Errorf("persist: get %s: %w", key, err)
	}
	st.hits.Add(1)
	st.bytesR.Add(uint64(len(raw)))
	st.loadUs.Add(uint64(time.Since(start).Microseconds()))
	return a, true, nil
}

// Keys lists the artifact keys currently filed in the store.
func (st *Store) Keys() ([]string, error) {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, fmt.Errorf("persist: list store: %w", err)
	}
	var keys []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ext) || strings.HasPrefix(name, tmpPrefix) {
			continue
		}
		keys = append(keys, strings.TrimSuffix(name, ext))
	}
	return keys, nil
}

// GC removes every artifact whose key the keep predicate rejects, plus any
// stranded Put temporaries, and returns how many artifacts were removed.
// Content addressing makes this safe at any time: an artifact outside the
// live key set can never be read again (its key would have to be re-derived
// from the same inputs, which would also re-derive its bytes), so removal
// only reclaims space.
func (st *Store) GC(keep func(key string) bool) (int, error) {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return 0, fmt.Errorf("persist: gc: %w", err)
	}
	removed := 0
	var firstErr error
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			continue
		}
		if strings.HasPrefix(name, tmpPrefix) {
			// A crashed Put's stray; its rename never happened.
			if err := os.Remove(filepath.Join(st.dir, name)); err != nil && firstErr == nil {
				firstErr = err
			}
			continue
		}
		if !strings.HasSuffix(name, ext) {
			continue
		}
		if keep != nil && keep(strings.TrimSuffix(name, ext)) {
			continue
		}
		if err := os.Remove(filepath.Join(st.dir, name)); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		removed++
	}
	return removed, firstErr
}

// Stats is a point-in-time snapshot of the store's counters.
type Stats struct {
	// Hits counts Gets that decoded a valid artifact.
	Hits uint64 `json:"hits"`
	// Misses counts Gets that found nothing usable (absent, unreadable, or
	// corrupt — the caller rebuilt).
	Misses uint64 `json:"misses"`
	// Puts counts artifacts successfully written; PutErrors failed attempts.
	Puts      uint64 `json:"puts"`
	PutErrors uint64 `json:"put_errors"`
	// BytesWritten / BytesRead total the encoded artifact bytes moved.
	BytesWritten uint64 `json:"bytes_written"`
	BytesRead    uint64 `json:"bytes_read"`
	// LoadMs is the cumulative wall-clock time spent reading+decoding hits.
	LoadMs float64 `json:"load_ms"`
}

// Stats returns a snapshot of the store's counters.
func (st *Store) Stats() Stats {
	return Stats{
		Hits:         st.hits.Load(),
		Misses:       st.misses.Load(),
		Puts:         st.puts.Load(),
		PutErrors:    st.putErrors.Load(),
		BytesWritten: st.bytesW.Load(),
		BytesRead:    st.bytesR.Load(),
		LoadMs:       float64(st.loadUs.Load()) / 1000.0,
	}
}
