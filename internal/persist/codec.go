// Package persist makes shard artifacts durable: a versioned, checksummed
// binary codec for the two artifact kinds a distributed.Machine can hold —
// a personalized summary.Summary or a local subgraph — plus a
// content-addressed Store that files each encoded artifact under its shard
// content key (distributed.ShardKey). Together they turn the paper's §IV
// deployment, which holds one personalized summary per machine, into a
// restartable one: a rebooted server decodes its cluster from disk instead
// of re-running summarization, and clusters whose m×budget exceeds RAM can
// page artifacts in by key.
//
// The codec is canonical: Encode(Decode(x)) == x byte-for-byte for every x
// Encode produces, which is what lets a disk hit honor the same bit-identity
// contract as in-memory shard reuse (equal content keys imply bit-identical
// artifacts, on disk or off).
//
// File layout (version 1):
//
//	offset 0  magic "PGAR" (4 bytes)
//	offset 4  version (1 byte)
//	offset 5  kind (1 byte: 1 = summary, 2 = subgraph)
//	offset 6  payload (bitio varints + delta-coded sorted lists)
//	trailer   CRC-32 (IEEE, little-endian) over everything before it
//
// Decoding never panics on corrupt input: every structural violation —
// truncation, bit flips, bad magic, trailing garbage, non-canonical
// shapes — returns an error wrapping ErrCorrupt, and a version this build
// does not understand returns one wrapping ErrVersion, so callers can fall
// back to rebuilding the shard.
package persist

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"pegasus/internal/bitio"
	"pegasus/internal/graph"
	"pegasus/internal/summary"
)

var (
	// ErrCorrupt marks an artifact that is structurally invalid: truncated,
	// checksum-mismatched, or carrying an impossible payload. Callers should
	// treat the artifact as absent and rebuild.
	ErrCorrupt = errors.New("corrupt artifact")
	// ErrVersion marks an artifact written by a codec version this build does
	// not understand (its checksum is intact — the file is fine, the reader
	// is old). Callers should treat the artifact as absent and rebuild.
	ErrVersion = errors.New("unsupported artifact version")
)

var artifactMagic = [4]byte{'P', 'G', 'A', 'R'}

const (
	codecVersion = 1

	kindSummary  = 1
	kindSubgraph = 2

	// trailerLen is the CRC-32 trailer size; headerLen the fixed prefix.
	trailerLen = 4
	headerLen  = 6
)

// Artifact is one machine's persistable payload: exactly one of Summary and
// Subgraph is non-nil (mirroring distributed.Machine, which persist cannot
// import without a cycle — distributed consumes this package).
type Artifact struct {
	Summary  *summary.Summary
	Subgraph *graph.Graph
}

// Encode writes the artifact to w in the versioned, checksummed format.
func Encode(w io.Writer, a Artifact) error {
	raw, err := EncodeBytes(a)
	if err != nil {
		return err
	}
	_, err = w.Write(raw)
	return err
}

// EncodeBytes encodes the artifact into a byte slice.
func EncodeBytes(a Artifact) ([]byte, error) {
	var buf bytes.Buffer
	buf.Write(artifactMagic[:])
	buf.WriteByte(codecVersion)
	switch {
	case a.Summary != nil && a.Subgraph == nil:
		buf.WriteByte(kindSummary)
		if err := encodeSummary(&buf, a.Summary); err != nil {
			return nil, err
		}
	case a.Subgraph != nil && a.Summary == nil:
		buf.WriteByte(kindSubgraph)
		if err := encodeSubgraph(&buf, a.Subgraph); err != nil {
			return nil, err
		}
	default:
		//lint:typederr encode-side usage error (malformed Artifact value), not an input-bytes failure
		return nil, fmt.Errorf("persist: artifact must hold exactly one of summary and subgraph")
	}
	var crc [trailerLen]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(buf.Bytes()))
	buf.Write(crc[:])
	return buf.Bytes(), nil
}

// Decode parses an artifact from data. It accepts only complete, canonical,
// checksum-intact encodings; anything else yields ErrCorrupt or ErrVersion
// (wrapped with detail), never a panic.
func Decode(data []byte) (Artifact, error) {
	if len(data) < headerLen+trailerLen {
		return Artifact{}, fmt.Errorf("persist: %d-byte file shorter than header+trailer: %w", len(data), ErrCorrupt)
	}
	if !bytes.Equal(data[:4], artifactMagic[:]) {
		return Artifact{}, fmt.Errorf("persist: bad magic %q: %w", data[:4], ErrCorrupt)
	}
	body, trailer := data[:len(data)-trailerLen], data[len(data)-trailerLen:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(trailer); got != want {
		return Artifact{}, fmt.Errorf("persist: checksum mismatch (file %08x, computed %08x): %w", want, got, ErrCorrupt)
	}
	// Version is checked after the checksum so a future-version file — whose
	// payload this build cannot parse but whose bytes are intact — reports
	// ErrVersion, while a bit flip that happens to land on the version byte
	// still reports ErrCorrupt.
	if v := body[4]; v != codecVersion {
		return Artifact{}, fmt.Errorf("persist: artifact version %d (this build reads %d): %w", v, codecVersion, ErrVersion)
	}
	kind, payload := body[5], body[6:]
	r := bitio.NewReader(bytes.NewReader(payload))
	var a Artifact
	var err error
	switch kind {
	case kindSummary:
		a.Summary, err = decodeSummary(r, len(payload))
	case kindSubgraph:
		a.Subgraph, err = decodeSubgraph(r, len(payload))
	default:
		return Artifact{}, fmt.Errorf("persist: unknown artifact kind %d: %w", kind, ErrCorrupt)
	}
	if err != nil {
		return Artifact{}, err
	}
	// Canonical encodings have nothing between the payload and the trailer;
	// trailing garbage (which the CRC would bless, being computed over it)
	// must not decode.
	if !r.Exhausted() {
		return Artifact{}, fmt.Errorf("persist: trailing bytes after payload: %w", ErrCorrupt)
	}
	return a, nil
}

const (
	flagWeighted = 1 << 0
)

// encodeSummary writes the summary payload: |V|, |S|, flags, the per-
// supernode sorted member lists, the upper-triangle (b >= a) sorted
// superneighbor lists, then — for weighted summaries only — the weight of
// each upper-triangle superedge in list order. Member and neighbor lists
// are delta+varint coded; all-1 weights are elided entirely.
//
//pegasus:hotpath codec inner loops: one iteration per supernode on every artifact write
func encodeSummary(w io.Writer, s *summary.Summary) error {
	bw := bitio.NewWriter(w)
	n, ns := s.NumNodes(), s.NumSupernodes()
	bw.PutUvarint(uint64(n))
	bw.PutUvarint(uint64(ns))
	flags := uint64(0)
	if s.Weighted() {
		flags |= flagWeighted
	}
	bw.PutUvarint(flags)
	for a := 0; a < ns; a++ {
		bw.PutDeltas(s.Members(uint32(a)))
	}
	var upper []uint32
	var weights []float64
	var cur uint32
	collect := func(b uint32, wt float64) {
		if b >= cur {
			upper = append(upper, b)
			if s.Weighted() {
				weights = append(weights, wt)
			}
		}
	}
	for cur = 0; cur < uint32(ns); cur++ {
		upper = upper[:0]
		s.ForEachSuperNeighbor(cur, collect)
		bw.PutDeltas(upper)
	}
	for _, wt := range weights {
		bw.PutFloat64(wt)
	}
	if err := bw.Err(); err != nil {
		return err
	}
	return bw.Flush()
}

// decodeSummary parses a summary payload, enforcing every invariant the
// encoder guarantees: member lists partition [0,|V|), supernodes appear in
// first-member order (so the rebuilt Builder's dense remap is the identity
// and re-encoding is byte-stable), superedges stay in range, and weights are
// positive with at least one ≠ 1 iff the weighted flag is set.
func decodeSummary(r *bitio.Reader, payloadLen int) (*summary.Summary, error) {
	n64 := r.Uvarint()
	ns64 := r.Uvarint()
	flags := r.Uvarint()
	if err := r.Err(); err != nil {
		return nil, corrupt("summary header", err)
	}
	// Every node contributes at least one byte to its member-list entry, so a
	// node count beyond the payload length cannot be honest — reject before
	// allocating.
	if n64 > uint64(payloadLen) {
		return nil, corrupt("node count", fmt.Errorf("|V|=%d exceeds %d payload bytes", n64, payloadLen))
	}
	if ns64 > n64 {
		return nil, corrupt("supernode count", fmt.Errorf("|S|=%d exceeds |V|=%d", ns64, n64))
	}
	if flags&^flagWeighted != 0 {
		return nil, corrupt("flags", fmt.Errorf("unknown flag bits %#x", flags))
	}
	n, ns := int(n64), int(ns64)
	weighted := flags&flagWeighted != 0

	superOf := make([]uint32, n)
	seen := make([]bool, n)
	prevFirst := int64(-1)
	for a := 0; a < ns; a++ {
		ms := r.Deltas(n)
		if err := r.Err(); err != nil {
			return nil, corrupt(fmt.Sprintf("members of supernode %d", a), err)
		}
		if len(ms) == 0 {
			return nil, corrupt("members", fmt.Errorf("supernode %d is empty", a))
		}
		// First members strictly increase across supernodes exactly when the
		// IDs follow first-occurrence order — the canonical labeling every
		// Builder-built summary has. Anything else would re-encode
		// differently, so it cannot have come from Encode.
		if int64(ms[0]) <= prevFirst {
			return nil, corrupt("members", fmt.Errorf("supernode %d out of first-occurrence order", a))
		}
		prevFirst = int64(ms[0])
		for _, u := range ms {
			if int(u) >= n {
				return nil, corrupt("members", fmt.Errorf("node %d out of range (|V|=%d)", u, n))
			}
			if seen[u] {
				return nil, corrupt("members", fmt.Errorf("node %d in two supernodes", u))
			}
			seen[u] = true
			superOf[u] = uint32(a)
		}
	}
	for u, ok := range seen {
		if !ok {
			return nil, corrupt("members", fmt.Errorf("node %d in no supernode", u))
		}
	}

	type edge struct {
		a, b uint32
	}
	var edges []edge
	for a := 0; a < ns; a++ {
		upper := r.Deltas(ns - a)
		if err := r.Err(); err != nil {
			return nil, corrupt(fmt.Sprintf("superneighbors of %d", a), err)
		}
		for _, b := range upper {
			if b < uint32(a) || int(b) >= ns {
				return nil, corrupt("superedge", fmt.Errorf("{%d,%d} outside the upper triangle of |S|=%d", a, b, ns))
			}
			edges = append(edges, edge{uint32(a), b})
		}
	}

	b := summary.NewBuilder(superOf)
	sawNonUnit := false
	for _, e := range edges {
		wt := 1.0
		if weighted {
			wt = r.Float64()
			if err := r.Err(); err != nil {
				return nil, corrupt("superedge weight", err)
			}
			// wt > 0 is false for NaN too, so this also keeps NaN out of the
			// Builder (whose own check would let NaN through).
			if !(wt > 0) {
				return nil, corrupt("superedge weight", fmt.Errorf("non-positive weight %v on {%d,%d}", wt, e.a, e.b))
			}
			if wt != 1 {
				sawNonUnit = true
			}
		}
		b.AddSuperedge(e.a, e.b, wt)
	}
	if weighted && !sawNonUnit {
		// All-1 weights encode with the flag clear; a set flag over unit
		// weights is non-canonical and would not re-encode to itself.
		return nil, corrupt("flags", errors.New("weighted flag set but every weight is 1"))
	}
	return b.Build(), nil
}

// encodeSubgraph writes the subgraph payload: |V| then each node's sorted
// adjacency restricted to the upper triangle (v > u), delta+varint coded.
//
//pegasus:hotpath codec inner loops: one iteration per node on every artifact write
func encodeSubgraph(w io.Writer, g *graph.Graph) error {
	bw := bitio.NewWriter(w)
	n := g.NumNodes()
	bw.PutUvarint(uint64(n))
	var upper []uint32
	for u := 0; u < n; u++ {
		upper = upper[:0]
		for _, v := range g.Neighbors(uint32(u)) {
			if v > uint32(u) {
				upper = append(upper, v)
			}
		}
		bw.PutDeltas(upper)
	}
	if err := bw.Err(); err != nil {
		return err
	}
	return bw.Flush()
}

// decodeSubgraph parses a subgraph payload back into a CSR graph spanning
// the full recorded node-ID space (isolated trailing nodes included — the
// §IV subgraph artifact spans all of V).
func decodeSubgraph(r *bitio.Reader, payloadLen int) (*graph.Graph, error) {
	n64 := r.Uvarint()
	if err := r.Err(); err != nil {
		return nil, corrupt("subgraph header", err)
	}
	// Each node's (possibly empty) adjacency list costs at least its 1-byte
	// length varint.
	if n64 > uint64(payloadLen) {
		return nil, corrupt("node count", fmt.Errorf("|V|=%d exceeds %d payload bytes", n64, payloadLen))
	}
	n := int(n64)
	var edges []graph.Edge
	for u := 0; u < n; u++ {
		vs := r.Deltas(n)
		if err := r.Err(); err != nil {
			return nil, corrupt(fmt.Sprintf("adjacency of node %d", u), err)
		}
		for _, v := range vs {
			if v <= uint32(u) || int(v) >= n {
				return nil, corrupt("edge", fmt.Errorf("{%d,%d} outside the upper triangle of |V|=%d", u, v, n))
			}
			edges = append(edges, graph.Edge{U: uint32(u), V: v})
		}
	}
	return graph.FromEdges(n, edges), nil
}

// corrupt wraps a parse failure as ErrCorrupt with location detail.
func corrupt(where string, err error) error {
	return fmt.Errorf("persist: %s: %v: %w", where, err, ErrCorrupt)
}
