package weights

import (
	"math"
	"testing"

	"pegasus/internal/gen"
	"pegasus/internal/graph"
)

// TestNewParallelMatchesSequential: the sharded π computation must be
// bit-identical to the sequential one for every worker count (same Pow
// per node, same sequential Z).
func TestNewParallelMatchesSequential(t *testing.T) {
	g := gen.BarabasiAlbert(3000, 3, 1)
	targets := []graph.NodeID{0, 10, 20}
	ref, err := New(g, targets, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{0, 2, 4, 8} {
		got, err := NewParallel(g, targets, 1.5, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if got.Z != ref.Z {
			t.Fatalf("workers=%d: Z=%v != %v", w, got.Z, ref.Z)
		}
		for u := range ref.Pi {
			if math.Float64bits(got.Pi[u]) != math.Float64bits(ref.Pi[u]) {
				t.Fatalf("workers=%d: Pi[%d]=%v != %v", w, u, got.Pi[u], ref.Pi[u])
			}
		}
	}
}
