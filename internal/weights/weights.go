// Package weights implements the personalized weighting of Eq. (2):
//
//	W_uv = α^{−(D(u,T)+D(v,T))} / Z
//
// where D(u,T) is the minimum hop count between u and any target node, α ≥ 1
// is the degree of personalization, and Z normalizes the average weight over
// all ordered node pairs (u ≠ v) to 1.
//
// The factorization W_uv = π_u·π_v/Z with π_u = α^{−D(u,T)} is what makes
// PeGaSus linear: per-supernode aggregates Π_A = Σ_{u∈A} π_u and
// Q_A = Σ_{u∈A} π_u² suffice to evaluate all pairwise error terms (the
// paper's online-appendix Eqs. 13–15).
package weights

import (
	"fmt"
	"math"

	"pegasus/internal/graph"
	"pegasus/internal/par"
)

// Weights holds the per-node personalized weights for one (T, α) choice.
type Weights struct {
	Alpha float64 // degree of personalization (α ≥ 1)
	Pi    []float64
	Z     float64 // normalizer: mean of π_u·π_v over ordered pairs u≠v is 1
	dist  []int32 // D(u,T); Unreached for nodes disconnected from T
}

// New computes personalized weights for target set targets on g. An empty or
// nil target set, or α == 1, yields the non-personalized uniform weighting
// (π ≡ 1, Z = 1), under which Eq. (1) reduces to the plain reconstruction
// error (§III-G).
//
// Nodes unreachable from every target receive the smallest weight observed
// plus one hop (they are "infinitely far"; using diameter+1 keeps weights
// positive and the cost function finite).
func New(g *graph.Graph, targets []graph.NodeID, alpha float64) (*Weights, error) {
	return NewParallel(g, targets, alpha, 1)
}

// NewParallel is New with the per-node π = α^{−D(u,T)} exponentiation
// range-sharded across the given number of workers (0 = GOMAXPROCS). Each
// node's weight is computed independently, so the result is bit-identical
// for any worker count; the BFS and the Z normalizer (whose floating-point
// sum is order-sensitive) stay sequential.
func NewParallel(g *graph.Graph, targets []graph.NodeID, alpha float64, workers int) (*Weights, error) {
	n := g.NumNodes()
	if alpha < 1 {
		return nil, fmt.Errorf("weights: alpha must be >= 1, got %v", alpha)
	}
	w := &Weights{Alpha: alpha, Pi: make([]float64, n)}
	if len(targets) == 0 || alpha == 1 {
		for i := range w.Pi {
			w.Pi[i] = 1
		}
		w.Z = 1
		w.dist = make([]int32, n) // all zeros: D(u,V)=0 for T=V semantics
		return w, nil
	}
	for _, t := range targets {
		if int(t) >= n {
			return nil, fmt.Errorf("weights: target %d out of range (|V|=%d)", t, n)
		}
	}
	w.dist = graph.MultiSourceBFS(g, targets)
	maxD := int32(0)
	for _, d := range w.dist {
		if d > maxD {
			maxD = d
		}
	}
	par.Range(workers, n, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			d := w.dist[u]
			if d == graph.Unreached {
				d = maxD + 1
			}
			w.Pi[u] = math.Pow(alpha, -float64(d))
		}
	})
	w.Z = normalizer(w.Pi)
	return w, nil
}

// normalizer computes Z per Footnote 2:
// Z = [ (Σ_u π_u)² − Σ_u π_u² ] / (|V|·(|V|−1)), the average of π_u·π_v over
// ordered pairs u ≠ v.
func normalizer(pi []float64) float64 {
	n := len(pi)
	if n < 2 {
		return 1
	}
	var sum, sumSq float64
	for _, p := range pi {
		sum += p
		sumSq += p * p
	}
	z := (sum*sum - sumSq) / (float64(n) * float64(n-1))
	if z <= 0 {
		return 1 // degenerate (all-zero π); keep the cost finite
	}
	return z
}

// Distance returns D(u,T) (hops to the closest target), or -1 when u is
// disconnected from every target.
func (w *Weights) Distance(u graph.NodeID) int32 { return w.dist[u] }

// Pair returns W_uv = π_u·π_v/Z for u ≠ v; the diagonal is never used by the
// objective but returns the analogous value.
func (w *Weights) Pair(u, v graph.NodeID) float64 {
	return w.Pi[u] * w.Pi[v] / w.Z
}

// TotalPi returns Σ_u π_u.
func (w *Weights) TotalPi() float64 {
	var s float64
	for _, p := range w.Pi {
		s += p
	}
	return s
}

// Uniform returns the non-personalized weighting over n nodes (π ≡ 1, Z=1),
// the SSumM objective.
func Uniform(n int) *Weights {
	pi := make([]float64, n)
	for i := range pi {
		pi[i] = 1
	}
	return &Weights{Alpha: 1, Pi: pi, Z: 1, dist: make([]int32, n)}
}
