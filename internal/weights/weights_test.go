package weights

import (
	"math"
	"testing"
	"testing/quick"

	"pegasus/internal/gen"
	"pegasus/internal/graph"
)

func path(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	return b.Build()
}

func TestUniformWhenNoTargets(t *testing.T) {
	g := path(5)
	w, err := New(g, nil, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	for u, p := range w.Pi {
		if p != 1 {
			t.Fatalf("Pi[%d] = %v, want 1", u, p)
		}
	}
	if w.Z != 1 {
		t.Fatalf("Z = %v, want 1", w.Z)
	}
}

func TestUniformWhenAlphaOne(t *testing.T) {
	g := path(5)
	w, err := New(g, []graph.NodeID{0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range w.Pi {
		if p != 1 {
			t.Fatal("alpha=1 must give uniform weights")
		}
	}
}

func TestPersonalizedDecay(t *testing.T) {
	g := path(5)
	alpha := 2.0
	w, err := New(g, []graph.NodeID{0}, alpha)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 5; u++ {
		want := math.Pow(alpha, -float64(u))
		if math.Abs(w.Pi[u]-want) > 1e-12 {
			t.Errorf("Pi[%d] = %v, want %v", u, w.Pi[u], want)
		}
		if w.Distance(graph.NodeID(u)) != int32(u) {
			t.Errorf("Distance(%d) = %d, want %d", u, w.Distance(graph.NodeID(u)), u)
		}
	}
}

func TestMultiTargetUsesClosest(t *testing.T) {
	g := path(5)
	w, err := New(g, []graph.NodeID{0, 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantD := []int32{0, 1, 2, 1, 0}
	for u, d := range wantD {
		if w.Distance(graph.NodeID(u)) != d {
			t.Errorf("Distance(%d) = %d, want %d", u, w.Distance(graph.NodeID(u)), d)
		}
	}
}

func TestAverageWeightIsOne(t *testing.T) {
	// Z must normalize the mean of W_uv over ordered pairs u != v to 1.
	g := gen.BarabasiAlbert(60, 2, 3)
	w, err := New(g, []graph.NodeID{0, 7}, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumNodes()
	var sum float64
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v {
				sum += w.Pair(graph.NodeID(u), graph.NodeID(v))
			}
		}
	}
	mean := sum / float64(n*(n-1))
	if math.Abs(mean-1) > 1e-9 {
		t.Fatalf("mean weight = %v, want 1", mean)
	}
}

func TestDisconnectedNodesGetFiniteWeight(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1) // nodes 2,3 isolated
	g := b.Build()
	w, err := New(g, []graph.NodeID{0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if w.Pi[2] <= 0 || math.IsInf(w.Pi[2], 0) || math.IsNaN(w.Pi[2]) {
		t.Fatalf("disconnected Pi = %v, want positive finite", w.Pi[2])
	}
	if w.Pi[2] >= w.Pi[1] {
		t.Fatalf("disconnected node should weigh less than a reached node")
	}
	if w.Distance(2) != graph.Unreached {
		t.Fatalf("Distance(disconnected) = %d, want Unreached", w.Distance(2))
	}
}

func TestInvalidInputs(t *testing.T) {
	g := path(3)
	if _, err := New(g, []graph.NodeID{0}, 0.5); err == nil {
		t.Error("want error for alpha < 1")
	}
	if _, err := New(g, []graph.NodeID{99}, 1.5); err == nil {
		t.Error("want error for out-of-range target")
	}
}

func TestHigherAlphaMoreConcentrated(t *testing.T) {
	g := gen.BarabasiAlbert(200, 2, 9)
	w1, _ := New(g, []graph.NodeID{0}, 1.25)
	w2, _ := New(g, []graph.NodeID{0}, 2)
	// Ratio of close weight to far weight grows with alpha.
	var farNode graph.NodeID
	maxD := int32(-1)
	for u := 0; u < g.NumNodes(); u++ {
		if d := w1.Distance(graph.NodeID(u)); d > maxD {
			maxD = d
			farNode = graph.NodeID(u)
		}
	}
	r1 := w1.Pi[0] / w1.Pi[farNode]
	r2 := w2.Pi[0] / w2.Pi[farNode]
	if r2 <= r1 {
		t.Fatalf("alpha=2 concentration %v not greater than alpha=1.25 %v", r2, r1)
	}
}

func TestUniformConstructor(t *testing.T) {
	w := Uniform(10)
	if len(w.Pi) != 10 || w.Z != 1 || w.Alpha != 1 {
		t.Fatal("Uniform misconfigured")
	}
	if w.Pair(0, 1) != 1 {
		t.Fatal("uniform pair weight must be 1")
	}
}

func TestPropertyPairSymmetricPositive(t *testing.T) {
	g := gen.BarabasiAlbert(80, 2, 5)
	w, err := New(g, []graph.NodeID{3, 11}, 1.75)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b uint16) bool {
		u := graph.NodeID(int(a) % g.NumNodes())
		v := graph.NodeID(int(b) % g.NumNodes())
		p := w.Pair(u, v)
		return p > 0 && p == w.Pair(v, u)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
