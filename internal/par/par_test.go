package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
}

func TestRangeCoversEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 100, 5000} {
		for _, w := range []int{1, 2, 7} {
			seen := make([]int32, n)
			Range(w, n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&seen[i], 1)
				}
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("n=%d w=%d: index %d visited %d times", n, w, i, c)
				}
			}
		}
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 5, 1000} {
		for _, w := range []int{1, 2, 8} {
			seen := make([]int32, n)
			ForEach(w, n, func(worker, i int) {
				if worker < 0 || worker >= Workers(w) {
					t.Errorf("worker id %d out of range", worker)
				}
				atomic.AddInt32(&seen[i], 1)
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("n=%d w=%d: index %d visited %d times", n, w, i, c)
				}
			}
		}
	}
}

// TestForEachInlineIsOrdered: the workers<=1 path must run in index order on
// the caller (the engine's sequential scoring path relies on it).
func TestForEachInlineIsOrdered(t *testing.T) {
	var order []int
	ForEach(1, 5, func(worker, i int) {
		if worker != 0 {
			t.Errorf("inline worker id = %d", worker)
		}
		order = append(order, i)
	})
	for i, v := range order {
		if i != v {
			t.Fatalf("inline order %v not ascending", order)
		}
	}
}
