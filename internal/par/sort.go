package par

import "slices"

// Parallel sorting: per-block sorts followed by pairwise merge rounds.
// Originally built (and property-tested) for the ingest pipeline's packed
// edge keys, now shared with the engine's sort-based candidate grouping.
// Both entry points guarantee the same contract as the rest of this
// package: the output is identical for every worker count.

// sortMinBlock is the smallest block worth its own goroutine: below this
// the spawn/merge overhead exceeds the sorting work and we sort inline.
const sortMinBlock = 1 << 15

// SortUint64 sorts s ascending with up to `workers` goroutines (0 =
// GOMAXPROCS): the slice is cut into equal blocks, each block is sorted
// concurrently, and sorted blocks are combined by pairwise merge rounds.
// Identical multisets produce identical outputs for any worker count
// (uint64 values are indistinguishable under ==, so ties cannot reorder
// observably).
func SortUint64(s []uint64, workers int) {
	blocks := blockCount(len(s), workers)
	if blocks <= 1 {
		slices.Sort(s)
		return
	}
	bounds := blockBounds(len(s), blocks)
	ForEach(workers, blocks, func(_, b int) {
		slices.Sort(s[bounds[b]:bounds[b+1]])
	})
	scratch := make([]uint64, len(s))
	mergeRounds(s, scratch, bounds, workers, func(dst, a, b []uint64) {
		i, j, k := 0, 0, 0
		for i < len(a) && j < len(b) {
			if a[i] <= b[j] {
				dst[k] = a[i]
				i++
			} else {
				dst[k] = b[j]
				j++
			}
			k++
		}
		copy(dst[k:], a[i:])
		copy(dst[k+len(a)-i:], b[j:])
	})
}

// SortStableFunc sorts s by cmp with up to `workers` goroutines (0 =
// GOMAXPROCS). The sort is stable: elements comparing equal keep their
// original relative order. Stability is what makes the result a pure
// function of (input, cmp) — every block partitioning merges back to the
// one stable permutation, so the output is bit-identical for any worker
// count even when cmp has ties.
func SortStableFunc[T any](s []T, workers int, cmp func(a, b T) int) {
	blocks := blockCount(len(s), workers)
	if blocks <= 1 {
		slices.SortStableFunc(s, cmp)
		return
	}
	bounds := blockBounds(len(s), blocks)
	ForEach(workers, blocks, func(_, b int) {
		slices.SortStableFunc(s[bounds[b]:bounds[b+1]], cmp)
	})
	scratch := make([]T, len(s))
	mergeRounds(s, scratch, bounds, workers, func(dst, a, b []T) {
		// Left run wins ties: a's elements precede b's in the original
		// slice, so <= preserves their relative order (stability).
		i, j, k := 0, 0, 0
		for i < len(a) && j < len(b) {
			if cmp(a[i], b[j]) <= 0 {
				dst[k] = a[i]
				i++
			} else {
				dst[k] = b[j]
				j++
			}
			k++
		}
		copy(dst[k:], a[i:])
		copy(dst[k+len(a)-i:], b[j:])
	})
}

const (
	radixBits    = 8
	radixBuckets = 1 << radixBits
	radixPasses  = 64 / radixBits
)

// KeySorter stably sorts parallel (uint64 key, uint32 payload) arrays by
// key with an LSD radix sort, the workhorse of the engine's sort-based
// candidate grouping: shingles are the keys, supernode slots the payloads,
// and stability means equal-shingle slots keep their input order — so the
// output is the unique stable permutation, bit-identical for every worker
// count. The zero value is ready to use; the ping-pong and histogram
// scratch is retained across calls, so steady-state sorts allocate nothing.
type KeySorter struct {
	k      []uint64
	v      []uint32
	counts []int
}

// Sort reorders keys ascending and applies the same permutation to vals
// (len(vals) must equal len(keys)). Each of the eight byte-digit passes
// counts per block in parallel, computes global stable offsets serially
// (digit-major, block-minor — a few KiB of work), and scatters in parallel:
// an element's destination depends only on how many equal-digit elements
// precede it in the array, never on the block decomposition. Passes whose
// digit is constant across all keys are skipped.
func (s *KeySorter) Sort(keys []uint64, vals []uint32, workers int) {
	n := len(keys)
	if len(vals) != n {
		panic("par: KeySorter key/value length mismatch")
	}
	if n < 2 {
		return
	}
	blocks := blockCount(n, workers)
	if blocks < 1 {
		blocks = 1
	}
	if cap(s.k) < n {
		s.k = make([]uint64, n)
		s.v = make([]uint32, n)
	}
	if len(s.counts) < blocks*radixBuckets {
		s.counts = make([]int, blocks*radixBuckets)
	}
	bounds := blockBounds(n, blocks)
	srcK, srcV := keys, vals
	dstK, dstV := s.k[:n], s.v[:n]
	for pass := 0; pass < radixPasses; pass++ {
		shift := pass * radixBits
		counts := s.counts[:blocks*radixBuckets]
		clear(counts)
		count := func(b int) {
			c := counts[b*radixBuckets : (b+1)*radixBuckets]
			for _, k := range srcK[bounds[b]:bounds[b+1]] {
				c[int(k>>shift)&(radixBuckets-1)]++
			}
		}
		if blocks == 1 {
			count(0)
		} else {
			ForEach(workers, blocks, func(_, b int) { count(b) })
		}
		// Turn counts into global stable start offsets (digit-major,
		// block-minor). A digit owning every key means the pass is a no-op.
		skip := false
		pos := 0
		for d := 0; d < radixBuckets && !skip; d++ {
			dTotal := 0
			for b := 0; b < blocks; b++ {
				i := b*radixBuckets + d
				dTotal += counts[i]
				counts[i], pos = pos, pos+counts[i]
			}
			skip = dTotal == n
		}
		if skip {
			continue
		}
		scatter := func(b int) {
			c := counts[b*radixBuckets : (b+1)*radixBuckets]
			for i := bounds[b]; i < bounds[b+1]; i++ {
				d := int(srcK[i]>>shift) & (radixBuckets - 1)
				j := c[d]
				c[d]++
				dstK[j] = srcK[i]
				dstV[j] = srcV[i]
			}
		}
		if blocks == 1 {
			scatter(0)
		} else {
			ForEach(workers, blocks, func(_, b int) { scatter(b) })
		}
		srcK, srcV, dstK, dstV = dstK, dstV, srcK, srcV
	}
	if &srcK[0] != &keys[0] {
		copy(keys, srcK)
		copy(vals, srcV)
	}
}

// blockCount picks how many sorted blocks to produce for n elements.
func blockCount(n, workers int) int {
	blocks := Workers(workers)
	if max := n / sortMinBlock; blocks > max {
		blocks = max
	}
	return blocks
}

// blockBounds cuts [0,n) into `blocks` near-equal contiguous ranges.
func blockBounds(n, blocks int) []int {
	bounds := make([]int, blocks+1)
	for b := 0; b <= blocks; b++ {
		bounds[b] = int(int64(b) * int64(n) / int64(blocks))
	}
	return bounds
}

// mergeRounds combines adjacent sorted runs of s (delimited by bounds) with
// pairwise merge rounds between s and scratch, using `merge` to combine two
// adjacent runs, and leaves the fully merged result in s.
func mergeRounds[T any](s, scratch []T, bounds []int, workers int, merge func(dst, a, b []T)) {
	src, dst := s, scratch
	for len(bounds) > 2 {
		nb := make([]int, 0, len(bounds)/2+1)
		nb = append(nb, 0)
		pairs := (len(bounds) - 1) / 2
		ForEach(workers, pairs, func(_, p int) {
			lo, mid, hi := bounds[2*p], bounds[2*p+1], bounds[2*p+2]
			merge(dst[lo:hi], src[lo:mid], src[mid:hi])
		})
		for p := 0; p < pairs; p++ {
			nb = append(nb, bounds[2*p+2])
		}
		if len(bounds)%2 == 0 { // odd run out: carry it over
			lo, hi := bounds[len(bounds)-2], bounds[len(bounds)-1]
			copy(dst[lo:hi], src[lo:hi])
			nb = append(nb, hi)
		}
		bounds = nb
		src, dst = dst, src
	}
	if len(s) > 0 && &src[0] != &s[0] {
		copy(s, src)
	}
}
