package par

import (
	"math/rand"
	"slices"
	"testing"
)

func TestSortUint64MatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, size := range []int{0, 1, 1000, 1 << 16, 1<<17 + 991} {
		a := make([]uint64, size)
		for i := range a {
			a[i] = rng.Uint64() % 512 // dense duplicates
		}
		b := slices.Clone(a)
		want := slices.Clone(a)
		slices.Sort(want)
		for _, w := range []int{1, 2, 3, 8} {
			copy(b, a)
			SortUint64(b, w)
			if !slices.Equal(b, want) {
				t.Fatalf("size %d workers %d: parallel sort differs from slices.Sort", size, w)
			}
		}
	}
}

// TestSortStableFuncWorkerInvariance is the contract the candidate-grouping
// pipeline leans on: with ties under cmp, every worker count must reproduce
// the stable permutation bit for bit.
func TestSortStableFuncWorkerInvariance(t *testing.T) {
	type pair struct {
		key uint64
		pos int
	}
	rng := rand.New(rand.NewSource(11))
	for _, size := range []int{0, 1, 100, 70000, 1<<17 + 13} {
		s := make([]pair, size)
		for i := range s {
			// Few distinct keys: lots of ties, so stability is load-bearing.
			s[i] = pair{key: rng.Uint64() % 17, pos: i}
		}
		cmp := func(a, b pair) int {
			switch {
			case a.key < b.key:
				return -1
			case a.key > b.key:
				return 1
			}
			return 0
		}
		want := slices.Clone(s)
		slices.SortStableFunc(want, cmp)
		for _, w := range []int{1, 2, 5, 8} {
			got := slices.Clone(s)
			SortStableFunc(got, w, cmp)
			if !slices.Equal(got, want) {
				t.Fatalf("size %d workers %d: stable sort not worker-count invariant", size, w)
			}
			for i := 1; i < len(got); i++ {
				if got[i-1].key == got[i].key && got[i-1].pos > got[i].pos {
					t.Fatalf("size %d workers %d: stability violated at %d", size, w, i)
				}
			}
		}
	}
}

// TestKeySorterMatchesStableReference: the radix sorter must produce the
// stable permutation (equal keys keep input order) for every worker count,
// including reuse of one sorter across differently-sized inputs.
func TestKeySorterMatchesStableReference(t *testing.T) {
	type kv struct {
		k uint64
		v uint32
	}
	rng := rand.New(rand.NewSource(23))
	var s KeySorter // reused across sizes: scratch growth must not corrupt
	for _, size := range []int{0, 1, 2, 500, 70000, 1<<17 + 41} {
		ref := make([]kv, size)
		for i := range ref {
			// Mixed regimes: dense duplicates in half the keys, full-width
			// hashes in the rest (exercises both skip and scatter passes).
			if i%2 == 0 {
				ref[i] = kv{k: rng.Uint64() % 97, v: uint32(i)}
			} else {
				ref[i] = kv{k: rng.Uint64(), v: uint32(i)}
			}
		}
		want := slices.Clone(ref)
		slices.SortStableFunc(want, func(a, b kv) int {
			switch {
			case a.k < b.k:
				return -1
			case a.k > b.k:
				return 1
			}
			return 0
		})
		for _, w := range []int{1, 2, 3, 8} {
			keys := make([]uint64, size)
			vals := make([]uint32, size)
			for i, e := range ref {
				keys[i], vals[i] = e.k, e.v
			}
			s.Sort(keys, vals, w)
			for i := range want {
				if keys[i] != want[i].k || vals[i] != want[i].v {
					t.Fatalf("size %d workers %d: mismatch at %d: (%d,%d) want (%d,%d)",
						size, w, i, keys[i], vals[i], want[i].k, want[i].v)
				}
			}
		}
	}
}

func TestKeySorterLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on key/value length mismatch")
		}
	}()
	var s KeySorter
	s.Sort(make([]uint64, 3), make([]uint32, 2), 1)
}
