// Package par provides the small deterministic data-parallel primitives the
// build pipeline is built on. Every helper here divides work into contiguous
// index ranges whose outputs land in disjoint slice regions, so results are
// bit-identical for any worker count — parallelism changes wall-clock time,
// never the answer (see DESIGN.md §"Parallel build pipeline").
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// minPerWorker is the smallest range worth a goroutine: below this the
// spawn/join overhead exceeds the work and Range runs inline.
const minPerWorker = 1024

// Workers resolves a worker-count setting: 0 selects GOMAXPROCS, anything
// else is returned as given (callers validate negatives at config time).
func Workers(w int) int {
	if w == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// Range runs fn over [0,n) split into at most `workers` contiguous chunks,
// one goroutine per chunk, and waits for all of them. With workers <= 1 or a
// small n it simply calls fn(0, n) inline. fn must only write state owned by
// its own index range.
func Range(workers, n int, fn func(lo, hi int)) {
	workers = Workers(workers)
	if max := n / minPerWorker; workers > max {
		workers = max
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ForEach runs fn for every index in [0,n) over a work-stealing pool of at
// most `workers` goroutines (0 = GOMAXPROCS) and waits for all of them.
// Unlike Range, indices are handed out dynamically, so it suits tasks of
// uneven cost (candidate-pair scoring, per-shard summary builds). The first
// argument to fn identifies the executing worker in [0,workers), letting
// callers keep per-worker scratch; fn must not assume which indices land on
// which worker. With workers <= 1 (or n <= 1) indices run inline on the
// caller, in order, as worker 0.
func ForEach(workers, n int, fn func(worker, i int)) {
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
}
