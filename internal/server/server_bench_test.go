package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"pegasus/internal/gen"
)

// The load-smoke benchmarks measure end-to-end serving latency of an RWR
// query through the full handler path (routing, pool, cache, JSON), giving
// future serving PRs a perf baseline:
//
//	go test -bench 'BenchmarkServe' -benchtime 2s ./internal/server/
var (
	benchOnce sync.Once
	benchSrv  *Server
	benchErr  error
)

func benchServer(b *testing.B) *Server {
	b.Helper()
	benchOnce.Do(func() {
		g := gen.PlantedPartition(gen.SBMConfig{
			Nodes: 1000, Communities: 8, AvgDegree: 10, MixingP: 0.05,
		}, 21)
		benchSrv, benchErr = New(context.Background(), g, Config{
			Shards:          2,
			PartitionMethod: "random",
			BudgetRatio:     0.4,
			Seed:            21,
		})
	})
	if benchErr != nil {
		b.Fatalf("build bench server: %v", benchErr)
	}
	return benchSrv
}

func benchQuery(b *testing.B, s *Server, h http.Handler, node uint32) {
	b.Helper()
	body, _ := json.Marshal(QueryRequest{Node: node})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/query/rwr", bytes.NewReader(body)))
	if rec.Code != http.StatusOK {
		b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
}

// BenchmarkServeRWRUncached purges the cache every iteration: each query
// pays the full power iteration on the owning shard's summary.
func BenchmarkServeRWRUncached(b *testing.B) {
	s := benchServer(b)
	h := s.Handler()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.cache.Purge()
		benchQuery(b, s, h, 42)
	}
}

// BenchmarkServeRWRCached repeats one warm query: the cost is routing, cache
// lookup and JSON encoding only.
func BenchmarkServeRWRCached(b *testing.B) {
	s := benchServer(b)
	h := s.Handler()
	benchQuery(b, s, h, 42) // warm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchQuery(b, s, h, 42)
	}
}

// BenchmarkServeRWRCachedParallel hammers one warm query from all procs —
// the contention profile of a hot key.
func BenchmarkServeRWRCachedParallel(b *testing.B) {
	s := benchServer(b)
	h := s.Handler()
	benchQuery(b, s, h, 42) // warm
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			benchQuery(b, s, h, 42)
		}
	})
}
