package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"pegasus/internal/obs"
)

// spanNames collects the set of span names in a timeline.
func spanNames(v *obs.TraceView) map[string]int {
	names := map[string]int{}
	if v == nil {
		return names
	}
	for _, s := range v.Spans {
		names[s.Name]++
	}
	return names
}

// TestQueryDebugTimeline is the acceptance check for request tracing: a
// ?debug=1 query response must carry a span timeline including (at least)
// the handler, cache, and session-evaluation spans, and the X-Trace-Id
// header must match the timeline's trace ID.
func TestQueryDebugTimeline(t *testing.T) {
	s := testServer(t)
	h := s.Handler()

	// An uncached node so the compute path (and its session span) runs.
	res, raw := postJSON(t, h, "/v1/query/rwr?debug=1", QueryRequest{Node: 271})
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", res.StatusCode, raw)
	}
	var resp QueryResponse
	decodeInto(t, raw, &resp)
	if resp.Trace == nil {
		t.Fatal("?debug=1 response has no trace timeline")
	}
	hdr := res.Header.Get("X-Trace-Id")
	if hdr == "" {
		t.Fatal("X-Trace-Id header missing")
	}
	if resp.Trace.TraceID != hdr {
		t.Errorf("timeline trace id %q != X-Trace-Id header %q", resp.Trace.TraceID, hdr)
	}
	names := spanNames(resp.Trace)
	for _, want := range []string{"handler", "cache", "compute.rwr", "session.rwr"} {
		if names[want] == 0 {
			t.Errorf("timeline missing %q span; have %v", want, names)
		}
	}
	// The handler span is still open while the response is being written.
	if root := resp.Trace.Spans[0]; root.Name != "handler" || !root.Open {
		t.Errorf("first span = %+v, want an open handler root", root)
	}

	// A second identical request hits the cache: no session span, and a
	// distinct trace ID.
	res2, raw2 := postJSON(t, h, "/v1/query/rwr?debug=1", QueryRequest{Node: 271})
	var resp2 QueryResponse
	decodeInto(t, raw2, &resp2)
	if !resp2.Cached {
		t.Fatalf("second identical query not cached: %s", raw2)
	}
	if id2 := res2.Header.Get("X-Trace-Id"); id2 == hdr {
		t.Error("two requests share one trace ID")
	}
	if n := spanNames(resp2.Trace); n["session.rwr"] != 0 {
		t.Errorf("cache hit ran a session span: %v", n)
	}
}

func TestQueryWithoutDebugHasNoTrace(t *testing.T) {
	s := testServer(t)
	res, raw := postJSON(t, s.Handler(), "/v1/query/rwr", QueryRequest{Node: 5})
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", res.StatusCode, raw)
	}
	if strings.Contains(string(raw), `"trace"`) {
		t.Errorf("response leaks a trace field without ?debug=1: %s", raw)
	}
	if res.Header.Get("X-Trace-Id") == "" {
		t.Error("X-Trace-Id header must be set even without ?debug=1")
	}
}

func TestBatchDebugTimeline(t *testing.T) {
	s := testServer(t)
	res, raw := postJSON(t, s.Handler(), "/v1/query/batch?debug=1",
		BatchRequest{Kind: "rwr", Nodes: []uint32{4, 5, 6, 7}})
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", res.StatusCode, raw)
	}
	var resp BatchResponse
	decodeInto(t, raw, &resp)
	if resp.Trace == nil {
		t.Fatal("?debug=1 batch response has no trace timeline")
	}
	names := spanNames(resp.Trace)
	if names["batch.shard"] != resp.ShardGroups {
		t.Errorf("got %d batch.shard spans, want one per shard group (%d); have %v",
			names["batch.shard"], resp.ShardGroups, names)
	}
}

// TestSummarizeDebugTimeline checks the build-pipeline half of the tracing
// acceptance criteria: a traced rebuild exposes per-shard spans with the
// engine phases (shingle, candidate grouping, merge) nested inside.
func TestSummarizeDebugTimeline(t *testing.T) {
	s, err := New(context.Background(), testGraph(), Config{
		Shards:          2,
		PartitionMethod: "random",
		BudgetRatio:     0.5,
		Seed:            7,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Change the budget so every shard's content key changes and both
	// actually rebuild (a no-op request transplants without build spans).
	ratio := 0.45
	res, raw := postJSON(t, s.Handler(), "/v1/summarize?debug=1",
		SummarizeRequest{BudgetRatio: &ratio})
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", res.StatusCode, raw)
	}
	var resp SummarizeResponse
	decodeInto(t, raw, &resp)
	if resp.Rebuilt != 2 {
		t.Fatalf("rebuilt %d shards, want 2", resp.Rebuilt)
	}
	if resp.Trace == nil {
		t.Fatal("?debug=1 summarize response has no trace timeline")
	}
	names := spanNames(resp.Trace)
	if names["rebuild"] != 1 {
		t.Errorf("want exactly one rebuild span, have %v", names)
	}
	if names["build.shard"] != 2 {
		t.Errorf("want one build.shard span per rebuilt shard, have %v", names)
	}
	for _, phase := range []string{"build.weights", "build.shingle", "build.candidates", "build.merge", "build.finalize"} {
		if names[phase] == 0 {
			t.Errorf("timeline missing build phase %q; have %v", phase, names)
		}
	}
	// Phase spans must nest under a build.shard span (possibly indirectly).
	idx := map[int]string{}
	for i, sp := range resp.Trace.Spans {
		idx[i] = sp.Name
	}
	for _, sp := range resp.Trace.Spans {
		if sp.Name != "build.merge" {
			continue
		}
		p := sp.Parent
		for p >= 0 && idx[p] != "build.shard" {
			p = resp.Trace.Spans[p].Parent
		}
		if p < 0 {
			t.Error("build.merge span has no build.shard ancestor")
		}
	}
}

func TestMetricsPrometheusFormat(t *testing.T) {
	s := testServer(t)
	h := s.Handler()
	// Serve at least one query so counters are non-trivial.
	postJSON(t, h, "/v1/query/rwr", QueryRequest{Node: 8})

	res, raw := do(t, h, httptest.NewRequest("GET", "/metrics?format=prometheus", nil))
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", res.StatusCode, raw)
	}
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type %q, want text exposition format 0.0.4", ct)
	}
	body := string(raw)
	for _, want := range []string{
		"# TYPE pegasus_requests_total counter",
		"# TYPE pegasus_request_duration_seconds histogram",
		`pegasus_request_duration_seconds_bucket{le="+Inf"}`,
		"pegasus_request_duration_seconds_sum",
		"pegasus_request_duration_seconds_count",
		`pegasus_endpoint_requests_total{endpoint="query/rwr"}`,
		`pegasus_cache_lookups_total{result="hit"}`,
		`pegasus_shard_queries_total{shard="0"}`,
		"# TYPE pegasus_goroutines gauge",
		"pegasus_generation",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Every line must parse as a comment or a sample.
	line := regexp.MustCompile(`^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (-?[0-9.e+-]+|\+Inf|-Inf|NaN))$`)
	for _, l := range strings.Split(strings.TrimSuffix(body, "\n"), "\n") {
		if !line.MatchString(l) {
			t.Errorf("unparseable exposition line: %q", l)
		}
	}

	// Histogram buckets must be cumulative (non-decreasing counts).
	bucket := regexp.MustCompile(`^pegasus_request_duration_seconds_bucket\{le="[^"]*"\} ([0-9]+)$`)
	last := int64(-1)
	for _, l := range strings.Split(body, "\n") {
		m := bucket.FindStringSubmatch(l)
		if m == nil {
			continue
		}
		var v int64
		if _, err := json.Number(m[1]).Int64(); err == nil {
			n, _ := json.Number(m[1]).Int64()
			v = n
		}
		if v < last {
			t.Errorf("histogram buckets not cumulative at %q", l)
		}
		last = v
	}

	// Unknown formats are rejected, JSON stays the default.
	res, _ = do(t, h, httptest.NewRequest("GET", "/metrics?format=xml", nil))
	if res.StatusCode != http.StatusBadRequest {
		t.Errorf("format=xml got status %d, want 400", res.StatusCode)
	}
}

// TestMetricsJSONShape guards the JSON snapshot's backward compatibility:
// all pre-existing top-level fields survive, and the new runtime section is
// present and plausible.
func TestMetricsJSONShape(t *testing.T) {
	s := testServer(t)
	h := s.Handler()
	postJSON(t, h, "/v1/query/rwr", QueryRequest{Node: 9})
	res, raw := do(t, h, httptest.NewRequest("GET", "/metrics", nil))
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", res.StatusCode, raw)
	}
	var m map[string]json.RawMessage
	decodeInto(t, raw, &m)
	for _, k := range []string{
		"uptime_seconds", "requests", "errors", "qps", "latency_avg_ms",
		"latency_p50_ms", "latency_p90_ms", "latency_p99_ms", "cache", "batch",
		"rebuild", "endpoints", "shard_queries", "in_flight", "generation",
		"runtime",
	} {
		if _, ok := m[k]; !ok {
			t.Errorf("JSON snapshot missing field %q", k)
		}
	}
	var snap Snapshot
	decodeInto(t, raw, &snap)
	if snap.Runtime.Goroutines < 1 {
		t.Errorf("runtime.goroutines = %d, want >= 1", snap.Runtime.Goroutines)
	}
	if snap.Runtime.HeapAllocBytes == 0 {
		t.Error("runtime.heap_alloc_bytes = 0")
	}
	if snap.Runtime.UptimeSeconds < 0 {
		t.Error("runtime.uptime_seconds negative")
	}
	// The endpoints map keeps its flat name→count shape.
	var eps map[string]uint64
	decodeInto(t, []byte(m["endpoints"]), &eps)
	if eps["query/rwr"] == 0 {
		t.Errorf("endpoints[query/rwr] = 0 after a query; map: %v", eps)
	}
}

func TestSlowlogEndpoint(t *testing.T) {
	// Threshold 1ns: every request is slow, so the log fills immediately.
	s, err := New(context.Background(), testGraph(), Config{
		BudgetRatio:      0.5,
		Seed:             7,
		SlowLogThreshold: time.Nanosecond,
		SlowLogEntries:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	for i := 0; i < 6; i++ {
		postJSON(t, h, "/v1/query/rwr", QueryRequest{Node: uint32(i)})
	}
	res, raw := do(t, h, httptest.NewRequest("GET", "/debug/slowlog", nil))
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", res.StatusCode, raw)
	}
	var resp SlowLogResponse
	decodeInto(t, raw, &resp)
	if resp.Capacity != 4 {
		t.Errorf("capacity %d, want 4", resp.Capacity)
	}
	if resp.Total < 6 {
		t.Errorf("total %d, want >= 6", resp.Total)
	}
	if len(resp.Entries) != 4 {
		t.Fatalf("retained %d entries, want 4 (ring eviction)", len(resp.Entries))
	}
	e := resp.Entries[0]
	if e.Endpoint != "slowlog" && e.Endpoint != "query/rwr" {
		t.Errorf("unexpected newest endpoint %q", e.Endpoint)
	}
	for _, e := range resp.Entries {
		if e.TraceID == "" || e.Trace == nil {
			t.Errorf("slowlog entry missing trace: %+v", e)
		}
		if e.DurationMs < 0 {
			t.Errorf("negative duration: %+v", e)
		}
	}
}

func TestSlowlogDisabled(t *testing.T) {
	s, err := New(context.Background(), testGraph(), Config{
		BudgetRatio:      0.5,
		Seed:             7,
		SlowLogThreshold: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	postJSON(t, h, "/v1/query/rwr", QueryRequest{Node: 3})
	_, raw := do(t, h, httptest.NewRequest("GET", "/debug/slowlog", nil))
	var resp SlowLogResponse
	decodeInto(t, raw, &resp)
	if resp.Total != 0 || len(resp.Entries) != 0 {
		t.Errorf("negative threshold must disable the log, got total=%d entries=%d", resp.Total, len(resp.Entries))
	}
}

// TestStatusRecorderFlush checks the Flusher passthrough: handlers that
// stream must still reach the underlying connection's Flush through the
// metrics wrapper.
func TestStatusRecorderFlush(t *testing.T) {
	s := testServer(t)
	probe := s.instrument(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f, ok := w.(http.Flusher)
		if !ok {
			t.Error("wrapped ResponseWriter does not expose http.Flusher")
			return
		}
		w.WriteHeader(http.StatusOK)
		f.Flush()
	}))
	rec := httptest.NewRecorder()
	probe.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if !rec.Flushed {
		t.Error("Flush did not reach the underlying ResponseWriter")
	}
}

// TestStatusRecorderDefaults checks the two statusRecorder fixes: implicit
// 200 when WriteHeader is never called, and first-write-wins status capture.
func TestStatusRecorderDefaults(t *testing.T) {
	rec := &statusRecorder{ResponseWriter: httptest.NewRecorder()}
	if rec.Status() != http.StatusOK {
		t.Errorf("Status() before WriteHeader = %d, want 200", rec.Status())
	}
	rec.WriteHeader(http.StatusTeapot)
	rec.WriteHeader(http.StatusInternalServerError) // superfluous; first wins
	if rec.Status() != http.StatusTeapot {
		t.Errorf("Status() = %d, want the first WriteHeader (418)", rec.Status())
	}
}

func TestDebugHandler(t *testing.T) {
	s := testServer(t)
	h := s.DebugHandler()
	for _, path := range []string{"/debug/runtime", "/debug/slowlog", "/metrics", "/debug/pprof/"} {
		res, raw := do(t, h, httptest.NewRequest("GET", path, nil))
		if res.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d: %.120s", path, res.StatusCode, raw)
		}
	}
	var rt obs.RuntimeStats
	_, raw := do(t, h, httptest.NewRequest("GET", "/debug/runtime", nil))
	decodeInto(t, raw, &rt)
	if rt.Goroutines < 1 || rt.HeapAllocBytes == 0 {
		t.Errorf("implausible runtime stats: %+v", rt)
	}
}
