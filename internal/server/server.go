// Package server implements pegasus-serve, the concurrent summary-serving
// subsystem: an stdlib-only HTTP daemon that loads or builds a graph, holds
// either one personalized summary or a sharded distributed.Cluster, and
// answers node-similarity queries over JSON endpoints. Every query on node q
// is routed to the shard owning q (the routing table of §IV), answered on
// that shard's summary alone, and cached in a sharded LRU with singleflight
// deduplication. A bounded worker pool keeps heavy power iterations from
// exhausting the host, and every computation honors the request context for
// timeouts and cancellation.
//
// Endpoints:
//
//	POST /v1/query/{rwr|hop|php|pagerank|topk}   answer a query (JSON body)
//	GET  /v1/summary/report                      per-shard summary structure
//	POST /v1/summarize                           rebuild with new targets/budget
//	GET  /healthz                                liveness probe
//	GET  /metrics                                QPS, latency percentiles, cache
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"

	"pegasus/internal/distributed"
	"pegasus/internal/graph"
	"pegasus/internal/obs"
	"pegasus/internal/persist"
)

// Server is the serving daemon state. Construct with New, mount Handler on
// any http server (tests use httptest), or let Run manage the listener and
// graceful shutdown.
type Server struct {
	cfg     Config
	g       *graph.Graph
	cache   *Cache
	pool    *Pool
	metrics *Metrics
	// slowlog retains the most recent requests that crossed
	// cfg.SlowLogThreshold, each with its span timeline (GET /debug/slowlog).
	slowlog *obs.SlowLog
	// store is the on-disk artifact store behind cfg.CacheDir (nil when
	// persistence is disabled). Builds consult it before summarizing and
	// persist what they build, making restarts warm.
	store *persist.Store
	// bootStats records how the startup build satisfied each shard — a warm
	// start from a populated cache dir reports Loaded == m, Rebuilt == 0.
	bootStats distributed.BuildStats
	// graphToken is distributed.GraphToken(g), computed once — the graph is
	// immutable for the server's lifetime — and folded into every shard
	// content key.
	graphToken string

	// mu guards backend swaps (POST /v1/summarize) and buildCfg; the atomics
	// below make reads lock-free on the query path.
	mu       sync.Mutex
	buildCfg Config // parameters the current backend was built with
	backend  atomic.Pointer[backendBox]
	gen      atomic.Uint64

	// addr holds the bound listener address once Run starts serving.
	addr atomic.Pointer[string]
}

// backendBox pairs a backend with the generation it was built under, so a
// query observes one consistent (backend, generation) pair.
type backendBox struct {
	be  backend
	gen uint64
	// keys are the per-shard content keys of this build (nil when the
	// config was not fingerprintable).
	keys []string
	// shardGens are the per-shard generations the cache keys embed: a shard
	// transplanted by an incremental rebuild keeps the generation of the
	// build that actually produced its artifact, so cached results for that
	// shard — bit-identical by the content-key argument — stay addressable
	// across the rebuild. Rebuilt shards adopt the new generation, which
	// orphans their old entries (LRU pressure evicts them).
	shardGens []uint64
}

// sgen returns the cache-key generation of one shard.
func (b *backendBox) sgen(shard int) uint64 {
	if shard >= 0 && shard < len(b.shardGens) {
		return b.shardGens[shard]
	}
	return b.gen
}

// New builds the serving artifact for g per cfg (this runs summarization and
// can take a while on large graphs) and returns a ready Server.
func New(ctx context.Context, g *graph.Graph, cfg Config) (*Server, error) {
	if ctx == nil {
		ctx = context.Background() //lint:ctxflow nil-ctx compatibility default for direct library construction
	}
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if g == nil || g.NumNodes() == 0 {
		return nil, errors.New("server: nil or empty graph")
	}
	var store *persist.Store
	if cfg.CacheDir != "" {
		var err error
		if store, err = persist.Open(cfg.CacheDir); err != nil {
			return nil, err
		}
	}
	token := distributed.GraphToken(g)
	be, keys, stats, err := buildBackend(ctx, g, cfg, token, nil, store)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:        cfg,
		g:          g,
		store:      store,
		bootStats:  stats,
		graphToken: token,
		buildCfg:   cfg,
		cache:      NewCache(cfg.CacheEntries),
		pool:       NewPool(cfg.Workers),
		metrics:    NewMetrics(be.numShards()),
		slowlog:    obs.NewSlowLog(cfg.SlowLogEntries),
	}
	s.gcStore(keys)
	shardGens := make([]uint64, be.numShards())
	for i := range shardGens {
		shardGens[i] = 1
	}
	s.backend.Store(&backendBox{be: be, gen: 1, keys: keys, shardGens: shardGens})
	s.gen.Store(1)
	return s, nil
}

// gcStore trims the artifact store to the given live key set after a
// successful build: content addressing makes anything outside the serving
// keys unreachable (re-deriving a key re-derives its bytes), so removal
// only reclaims disk. Skipped when any key is missing — an unkeyable build
// cannot name what it is using.
func (s *Server) gcStore(keys []string) {
	if s.store == nil || len(keys) == 0 {
		return
	}
	live := make(map[string]bool, len(keys))
	for _, k := range keys {
		if k == "" {
			return
		}
		live[k] = true
	}
	_, _ = s.store.GC(func(k string) bool { return live[k] })
}

// BootStats reports how the startup build satisfied each shard: a warm
// start from a populated cache dir loads every shard from disk
// (Loaded == shards, Rebuilt == 0); a cold start builds them all.
func (s *Server) BootStats() distributed.BuildStats { return s.bootStats }

// Config returns the effective (defaulted) configuration.
func (s *Server) Config() Config { return s.cfg }

// Graph returns the graph the server was built from.
func (s *Server) Graph() *graph.Graph { return s.g }

// current returns the active backend and its generation.
func (s *Server) current() *backendBox { return s.backend.Load() }

// rebuild replaces the backend incrementally and bumps the generation:
// only shards whose content key changed are rebuilt, the rest transplant
// their summaries (and keep their per-shard cache generation, so their
// cached answers — including ranked top-k entries — survive the swap).
// apply derives the new build config from the current one; it runs under
// s.mu so concurrent re-summarize requests compose instead of losing each
// other's overrides. Rebuilds serialize on s.mu; queries keep flowing
// against the old backend until the swap. Returns the box it stored plus
// the per-shard build stats, so the /v1/summarize response describes this
// rebuild even when a concurrent one lands right after.
func (s *Server) rebuild(ctx context.Context, apply func(Config) Config) (*backendBox, distributed.BuildStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cfg := apply(s.buildCfg)
	old := s.current()
	be, keys, stats, err := buildBackend(ctx, s.g, cfg, s.graphToken, old, s.store)
	if err != nil {
		return nil, stats, err
	}
	gen := s.gen.Add(1)
	// Carry a reused shard's generation forward ONLY on a same-index key
	// match. Cache keys are node-scoped and do not name the shard, so the
	// carried generation must certify "shard i's artifact is unchanged" —
	// a cross-index transplant (shard i reusing a machine that sat at
	// index j of the previous cluster) still saves the build but must take
	// the new generation, or entries node→shard-i cached under shard i's
	// old artifact could be served against the transplanted one.
	shardGens := make([]uint64, be.numShards())
	for i := range shardGens {
		shardGens[i] = gen
		if i < len(stats.ReusedShards) && stats.ReusedShards[i] &&
			i < len(keys) && i < len(old.keys) && i < len(old.shardGens) &&
			keys[i] != "" && keys[i] == old.keys[i] {
			shardGens[i] = old.shardGens[i]
		}
	}
	box := &backendBox{be: be, gen: gen, keys: keys, shardGens: shardGens}
	s.backend.Store(box)
	s.buildCfg = cfg
	// Cache retention rule: when at least one shard was reused, its entries
	// (addressed by the carried-over shard generation) are still valid and
	// stay; stale entries of rebuilt shards are unreachable — their shard
	// generation advanced — and age out under LRU pressure. A full rebuild
	// has nothing worth keeping, so purge eagerly.
	if stats.Reused == 0 {
		s.cache.Purge()
	}
	s.gcStore(keys)
	s.metrics.ObserveRebuild(stats.Rebuilt, stats.Reused, stats.Loaded)
	return box, stats, nil
}

// Addr returns the bound listener address once Run is serving ("" before).
func (s *Server) Addr() string {
	if p := s.addr.Load(); p != nil {
		return *p
	}
	return ""
}

// Run listens on cfg.Addr and serves until ctx is cancelled, then drains
// in-flight requests for up to cfg.ShutdownGrace. It returns nil on a clean
// shutdown.
func (s *Server) Run(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("server: listen: %w", err)
	}
	bound := ln.Addr().String()
	s.addr.Store(&bound)

	hs := &http.Server{
		Handler: s.Handler(),
		BaseContext: func(net.Listener) context.Context {
			return context.WithoutCancel(ctx)
		},
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	//lint:ctxflow the serve ctx is already cancelled here; the drain budget must be a fresh root or Shutdown would return immediately
	shutdownCtx, cancel := context.WithTimeout(context.Background(), s.cfg.ShutdownGrace)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("server: shutdown: %w", err)
	}
	<-errc // always http.ErrServerClosed after a clean Shutdown
	return nil
}
