package server

import (
	"context"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pegasus/internal/gen"
)

// TestValidateRejectsNonFinite: NaN defeats plain range checks (NaN < 0 and
// NaN > 1 are both false); before the fix a NaN restart/c/damping/eps
// passed validation, poisoned the power iteration, formatted as "NaN" in
// the cache key, and made the response unencodable. JSON cannot carry NaN
// over HTTP (the decoder rejects it), so the guard is exercised directly —
// these types are also part of the programmatic root API.
func TestValidateRejectsNonFinite(t *testing.T) {
	bad := []float64{math.NaN(), math.Inf(1), math.Inf(-1)}
	for _, v := range bad {
		for _, p := range []QueryParams{
			{Restart: fp(v)},
			{C: fp(v)},
			{Damping: fp(v)},
			{Eps: fp(v)},
		} {
			if msg := p.validate(); msg == "" {
				t.Errorf("QueryParams %+v with value %v passed validation", p, v)
			}
		}
		if msg := (SummarizeRequest{BudgetRatio: fp(v)}).validate(); msg == "" {
			t.Errorf("SummarizeRequest budget_ratio %v passed validation", v)
		}
		if msg := (SummarizeRequest{Alpha: fp(v)}).validate(); msg == "" {
			t.Errorf("SummarizeRequest alpha %v passed validation", v)
		}
	}
	if msg := (QueryParams{Restart: fp(0.3), Eps: fp(1e-6)}).validate(); msg != "" {
		t.Errorf("valid params rejected: %s", msg)
	}
}

// TestConfigRejectsNonFinite: the same NaN hole existed in ServerConfig.
func TestConfigRejectsNonFinite(t *testing.T) {
	if _, err := (Config{BudgetRatio: math.NaN()}).withDefaults(); err == nil {
		t.Error("NaN BudgetRatio accepted")
	}
	if _, err := (Config{Alpha: math.Inf(1)}).withDefaults(); err == nil {
		t.Error("+Inf Alpha accepted")
	}
	if _, err := (Config{BatchMax: -1}).withDefaults(); err == nil {
		t.Error("negative BatchMax accepted")
	}
}

// TestExplicitZeroParams: an explicit `"restart": 0` used to be silently
// replaced by the default 0.05 (zero-vs-default ambiguity). Pointer
// semantics now reject explicit zeros with a clear 400 naming the default,
// while absent fields and explicitly-spelled defaults share one cache
// entry.
func TestExplicitZeroParams(t *testing.T) {
	s := testServer(t)
	h := s.Handler()

	for _, tc := range []struct{ name, body, wantIn string }{
		{"restart zero", `{"node":1,"restart":0}`, "restart must be in (0,1]"},
		{"c zero", `{"node":1,"c":0}`, "c must be in (0,1]"},
		{"damping zero", `{"node":1,"damping":0}`, "damping must be in (0,1]"},
		{"eps zero", `{"node":1,"eps":0}`, "eps must be a finite positive number"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, raw := do(t, h, httptest.NewRequest("POST", "/v1/query/rwr", strings.NewReader(tc.body)))
			if res.StatusCode != 400 {
				t.Fatalf("status %d, want 400: %s", res.StatusCode, raw)
			}
			if !strings.Contains(string(raw), tc.wantIn) || !strings.Contains(string(raw), "default") {
				t.Errorf("error %s does not explain the (0,1]/default rule", raw)
			}
		})
	}

	// Round-trip: absent params and explicitly-spelled defaults must resolve
	// to the same cache entry (the default-selection rule lives in one
	// place), and null must behave like absent.
	res, raw := do(t, h, httptest.NewRequest("POST", "/v1/query/rwr", strings.NewReader(`{"node":77}`)))
	if res.StatusCode != 200 {
		t.Fatalf("implicit-default query: status %d: %s", res.StatusCode, raw)
	}
	res, raw = do(t, h, httptest.NewRequest("POST", "/v1/query/rwr",
		strings.NewReader(`{"node":77,"restart":0.05,"eps":1e-9,"max_iter":1000}`)))
	if res.StatusCode != 200 {
		t.Fatalf("explicit-default query: status %d: %s", res.StatusCode, raw)
	}
	var resp QueryResponse
	decodeInto(t, raw, &resp)
	if !resp.Cached {
		t.Error("explicitly-spelled defaults did not share the implicit-default cache entry")
	}
	res, raw = do(t, h, httptest.NewRequest("POST", "/v1/query/rwr",
		strings.NewReader(`{"node":77,"restart":null}`)))
	if res.StatusCode != 200 {
		t.Fatalf("null-param query: status %d: %s", res.StatusCode, raw)
	}
	decodeInto(t, raw, &resp)
	if !resp.Cached {
		t.Error("null param did not behave like an absent param")
	}

	// A non-default restart is honored: distinct cache key, distinct answer.
	res, raw = do(t, h, httptest.NewRequest("POST", "/v1/query/rwr",
		strings.NewReader(`{"node":77,"restart":0.5}`)))
	if res.StatusCode != 200 {
		t.Fatalf("explicit restart: status %d: %s", res.StatusCode, raw)
	}
	decodeInto(t, raw, &resp)
	if resp.Cached {
		t.Error("restart 0.5 shared the restart 0.05 cache entry")
	}
}

// TestSummarizeZeroVsDefault: POST /v1/summarize used to claim
// "budget_ratio must be positive" while treating 0 as keep-current. Now an
// absent field keeps the current setting and an explicit 0 is a 400 whose
// message states both rules.
func TestSummarizeZeroVsDefault(t *testing.T) {
	g := gen.PlantedPartition(gen.SBMConfig{Nodes: 100, Communities: 2, AvgDegree: 6, MixingP: 0.1}, 37)
	s, err := New(context.Background(), g, Config{BudgetRatio: 0.6, Seed: 37})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	for _, tc := range []struct{ name, body, wantIn string }{
		{"budget zero", `{"budget_ratio":0}`, "keep the current setting"},
		{"budget negative", `{"budget_ratio":-0.5}`, "finite positive"},
		{"alpha zero", `{"alpha":0}`, "alpha must be finite"},
		{"alpha below one", `{"alpha":0.5}`, "alpha must be finite"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, raw := do(t, h, httptest.NewRequest("POST", "/v1/summarize", strings.NewReader(tc.body)))
			if res.StatusCode != 400 {
				t.Fatalf("status %d, want 400: %s", res.StatusCode, raw)
			}
			if !strings.Contains(string(raw), tc.wantIn) {
				t.Errorf("error %s does not mention %q", raw, tc.wantIn)
			}
		})
	}
	// None of the rejections may have triggered a rebuild.
	if gen := s.current().gen; gen != 1 {
		t.Fatalf("generation %d after rejected summarize requests, want 1", gen)
	}

	// Absent fields keep the current settings and still rebuild.
	res, raw := do(t, h, httptest.NewRequest("POST", "/v1/summarize", strings.NewReader(`{}`)))
	if res.StatusCode != 200 {
		t.Fatalf("empty summarize: status %d: %s", res.StatusCode, raw)
	}
	var rep ReportResponse
	decodeInto(t, raw, &rep)
	if rep.Generation != 2 {
		t.Fatalf("generation %d, want 2", rep.Generation)
	}
}

// TestTopKRankingPooled: ranking used to run on the handler goroutine
// outside the bounded worker pool, so cached topk queries re-ranked the
// score vector with unbounded CPU. Now ranking holds a pool slot: with a
// size-1 pool that is busy, a topk query over cached scores must wait (and
// time out), and once the pool frees it must answer; the ranked answer
// itself is then cached, so a repeat does not re-rank at all.
func TestTopKRankingPooled(t *testing.T) {
	g := gen.PlantedPartition(gen.SBMConfig{Nodes: 120, Communities: 2, AvgDegree: 6, MixingP: 0.1}, 43)
	s, err := New(context.Background(), g, Config{BudgetRatio: 0.6, Seed: 43, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	// Warm the underlying RWR score vector (uses the only pool slot, then
	// releases it).
	res, raw := postJSON(t, h, "/v1/query/rwr", QueryRequest{Node: 5})
	if res.StatusCode != 200 {
		t.Fatalf("warm rwr: status %d: %s", res.StatusCode, raw)
	}

	// Occupy the single pool slot.
	release := make(chan struct{})
	occupied := make(chan struct{})
	go func() {
		_ = s.pool.Run(context.Background(), func() error {
			close(occupied)
			<-release
			return nil
		})
	}()
	<-occupied

	// The scores are cached, so the only pool-bound work left is ranking —
	// which must block on the busy pool until the short request deadline.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req := httptest.NewRequest("POST", "/v1/query/topk",
		strings.NewReader(`{"node":5,"k":3}`)).WithContext(ctx)
	res, raw = do(t, h, req)
	if res.StatusCode != 504 {
		t.Fatalf("topk with saturated pool: status %d, want 504 (ranking must be pool-bounded): %s",
			res.StatusCode, raw)
	}

	close(release)
	res, raw = postJSON(t, h, "/v1/query/topk", QueryRequest{Node: 5, QueryParams: QueryParams{K: 3}})
	if res.StatusCode != 200 {
		t.Fatalf("topk after pool freed: status %d: %s", res.StatusCode, raw)
	}
	var first QueryResponse
	decodeInto(t, raw, &first)
	if len(first.Top) != 3 {
		t.Fatalf("%d top entries, want 3", len(first.Top))
	}

	// Repeat: the ranked answer is cached — no third ranking pass.
	res, raw = postJSON(t, h, "/v1/query/topk", QueryRequest{Node: 5, QueryParams: QueryParams{K: 3}})
	if res.StatusCode != 200 {
		t.Fatalf("repeat topk: status %d: %s", res.StatusCode, raw)
	}
	var second QueryResponse
	decodeInto(t, raw, &second)
	if !second.Cached {
		t.Error("repeated identical topk was not served from the ranked-answer cache")
	}
	// Different k is a different ranked answer, not a hit.
	res, raw = postJSON(t, h, "/v1/query/topk", QueryRequest{Node: 5, QueryParams: QueryParams{K: 7}})
	if res.StatusCode != 200 {
		t.Fatalf("k=7 topk: status %d: %s", res.StatusCode, raw)
	}
	var third QueryResponse
	decodeInto(t, raw, &third)
	if third.Cached {
		t.Error("k=7 answer claimed a cache hit against the k=3 entry")
	}
	if len(third.Top) != 7 {
		t.Fatalf("%d top entries, want 7", len(third.Top))
	}
}
