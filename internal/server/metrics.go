package server

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"pegasus/internal/obs"
	"pegasus/internal/persist"
)

// histBuckets is the number of latency histogram buckets; bucket 0 counts
// sub-microsecond requests and bucket i >= 1 counts latencies in
// [2^(i-1), 2^i) microseconds (the bits.Len64 bucketing below), so the
// histogram spans 1µs to ~9 minutes.
const histBuckets = 30

// Metrics aggregates serving telemetry with lock-free counters on the hot
// path. Per-endpoint and per-shard counters are fixed arrays of atomics
// sized at construction.
type Metrics struct {
	start    time.Time
	requests atomic.Uint64
	errors   atomic.Uint64

	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64
	cacheShared atomic.Uint64

	batches     atomic.Uint64
	batchItems  atomic.Uint64
	batchGroups atomic.Uint64

	rebuilds      atomic.Uint64
	shardsRebuilt atomic.Uint64
	shardsReused  atomic.Uint64
	shardsLoaded  atomic.Uint64

	latency [histBuckets]atomic.Uint64
	latSum  atomic.Uint64 // microseconds

	mu        sync.Mutex
	endpoints map[string]*endpointStats
	shards    []atomic.Uint64
}

// endpointStats is the per-endpoint slice of the telemetry: a request count
// plus its own latency histogram, so the Prometheus exposition can break
// durations down by endpoint while the JSON snapshot keeps publishing the
// counts alone (its shape predates the histograms and stays compatible).
type endpointStats struct {
	count  atomic.Uint64
	errors atomic.Uint64
	sumUs  atomic.Uint64
	hist   [histBuckets]atomic.Uint64
}

// NewMetrics returns a Metrics tracking numShards per-shard counters.
func NewMetrics(numShards int) *Metrics {
	return &Metrics{
		start:     time.Now(),
		endpoints: make(map[string]*endpointStats),
		shards:    make([]atomic.Uint64, numShards),
	}
}

// ObserveRequest records one served request: its endpoint, latency, and
// whether it ended in an error status.
func (m *Metrics) ObserveRequest(endpoint string, d time.Duration, isError bool) {
	m.requests.Add(1)
	if isError {
		m.errors.Add(1)
	}
	us := uint64(d.Microseconds())
	m.latSum.Add(us)
	b := bits.Len64(us) // [2^(b-1), 2^b) for us > 0
	if b >= histBuckets {
		b = histBuckets - 1
	}
	m.latency[b].Add(1)
	ep := m.endpointStats(endpoint)
	ep.count.Add(1)
	if isError {
		ep.errors.Add(1)
	}
	ep.sumUs.Add(us)
	ep.hist[b].Add(1)
}

func (m *Metrics) endpointStats(endpoint string) *endpointStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.endpoints[endpoint]
	if !ok {
		c = new(endpointStats)
		m.endpoints[endpoint] = c
	}
	return c
}

// ObserveShard records a query routed to shard i.
func (m *Metrics) ObserveShard(i int) {
	if i >= 0 && i < len(m.shards) {
		m.shards[i].Add(1)
	}
}

// ObserveBatch records one batch request: how many query nodes it carried
// and how many distinct shard groups it fanned out to.
func (m *Metrics) ObserveBatch(items, groups int) {
	m.batches.Add(1)
	m.batchItems.Add(uint64(items))
	m.batchGroups.Add(uint64(groups))
}

// ObserveRebuild records one POST /v1/summarize rebuild: how many shard
// summaries were rebuilt from scratch, how many were transplanted from the
// previous backend, and how many were decoded from the artifact store.
func (m *Metrics) ObserveRebuild(rebuilt, reused, loaded int) {
	m.rebuilds.Add(1)
	m.shardsRebuilt.Add(uint64(rebuilt))
	m.shardsReused.Add(uint64(reused))
	m.shardsLoaded.Add(uint64(loaded))
}

// ObserveCache records a cache lookup outcome.
func (m *Metrics) ObserveCache(s CacheStatus) {
	switch s {
	case CacheHit:
		m.cacheHits.Add(1)
	case CacheShared:
		m.cacheShared.Add(1)
	default:
		m.cacheMisses.Add(1)
	}
}

// percentile returns the upper bound of the bucket containing the p-th
// percentile request (p in [0,1]), in milliseconds.
func (m *Metrics) percentile(p float64) float64 {
	var counts [histBuckets]uint64
	total := uint64(0)
	for i := range counts {
		counts[i] = m.latency[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	rank := uint64(p * float64(total))
	if rank >= total {
		rank = total - 1
	}
	cum := uint64(0)
	for i, c := range counts {
		cum += c
		if cum > rank {
			return float64(uint64(1)<<uint(i)) / 1000.0 // bucket upper bound, µs→ms
		}
	}
	return float64(uint64(1)<<uint(histBuckets)) / 1000.0
}

// BatchMetrics is the batch-endpoint section of a metrics snapshot.
type BatchMetrics struct {
	// Count is the number of POST /v1/query/batch requests served.
	Count uint64 `json:"count"`
	// Items is the total number of query nodes across all batches.
	Items uint64 `json:"items"`
	// ShardGroups is the total routing fan-out across all batches.
	ShardGroups uint64 `json:"shard_groups"`
	// AvgSize is Items/Count — how many queries one round-trip amortizes.
	AvgSize float64 `json:"avg_size"`
	// AvgFanout is ShardGroups/Count — how many shards a batch touches.
	AvgFanout float64 `json:"avg_fanout"`
}

// RebuildMetrics is the incremental-rebuild section of a metrics snapshot.
type RebuildMetrics struct {
	// Count is the number of successful POST /v1/summarize rebuilds.
	Count uint64 `json:"count"`
	// ShardsRebuilt is the total number of shard summaries built from
	// scratch across all rebuilds.
	ShardsRebuilt uint64 `json:"shards_rebuilt"`
	// ShardsReused is the total number of shard summaries transplanted
	// bit-identically instead of rebuilt.
	ShardsReused uint64 `json:"shards_reused"`
	// ShardsLoaded is the total number of shard summaries decoded from the
	// on-disk artifact store instead of rebuilt (zero without a cache dir).
	ShardsLoaded uint64 `json:"shards_loaded"`
	// ReuseRate is the fraction of shards satisfied without summarizing —
	// (ShardsReused + ShardsLoaded) / all shards across rebuilds.
	ReuseRate float64 `json:"reuse_rate"`
}

// CacheMetrics is the cache section of a metrics snapshot.
type CacheMetrics struct {
	Hits    uint64  `json:"hits"`
	Misses  uint64  `json:"misses"`
	Shared  uint64  `json:"shared"` // singleflight-deduplicated lookups
	HitRate float64 `json:"hit_rate"`
	Entries int     `json:"entries"`
}

// Snapshot is a point-in-time view of the serving telemetry, served as JSON
// by GET /metrics.
type Snapshot struct {
	UptimeSeconds float64        `json:"uptime_seconds"`
	Requests      uint64         `json:"requests"`
	Errors        uint64         `json:"errors"`
	QPS           float64        `json:"qps"`
	LatencyAvgMs  float64        `json:"latency_avg_ms"`
	LatencyP50Ms  float64        `json:"latency_p50_ms"`
	LatencyP90Ms  float64        `json:"latency_p90_ms"`
	LatencyP99Ms  float64        `json:"latency_p99_ms"`
	Cache         CacheMetrics   `json:"cache"`
	Batch         BatchMetrics   `json:"batch"`
	Rebuild       RebuildMetrics `json:"rebuild"`
	// Persist is the artifact-store section (hits, misses, bytes moved,
	// cumulative load time); nil when no cache dir is configured.
	Persist      *PersistMetrics   `json:"persist,omitempty"`
	Endpoints    map[string]uint64 `json:"endpoints"`
	ShardQueries []uint64          `json:"shard_queries"`
	InFlight     int               `json:"in_flight"`
	Generation   uint64            `json:"generation"`
	// Runtime is the Go runtime section: process health next to the request
	// counters. Purely additive — every pre-existing field above keeps its
	// name and shape.
	Runtime RuntimeMetrics `json:"runtime"`
}

// RuntimeMetrics is the Go runtime section of a metrics snapshot.
type RuntimeMetrics struct {
	Goroutines     int     `json:"goroutines"`
	HeapAllocBytes uint64  `json:"heap_alloc_bytes"`
	HeapSysBytes   uint64  `json:"heap_sys_bytes"`
	HeapObjects    uint64  `json:"heap_objects"`
	GCCount        uint32  `json:"gc_count"`
	GCPauseTotalMs float64 `json:"gc_pause_total_ms"`
	UptimeSeconds  float64 `json:"uptime_seconds"`
}

// PersistMetrics is the artifact-store section of a metrics snapshot: the
// disk-tier counterpart of the query cache's hit/miss counters. It is the
// store's own stats snapshot verbatim (persist.Stats defines the fields and
// JSON shape), so new store counters appear in /metrics without a mirror
// struct to keep in sync.
type PersistMetrics = persist.Stats

// SnapshotNow assembles a snapshot; cacheEntries, inFlight, generation and
// persist come from the server because Metrics does not own those
// components (persist is nil when no artifact store is configured).
func (m *Metrics) SnapshotNow(cacheEntries, inFlight int, generation uint64, persist *PersistMetrics) Snapshot {
	uptime := time.Since(m.start).Seconds()
	reqs := m.requests.Load()
	hits, misses, shared := m.cacheHits.Load(), m.cacheMisses.Load(), m.cacheShared.Load()
	s := Snapshot{
		UptimeSeconds: uptime,
		Requests:      reqs,
		Errors:        m.errors.Load(),
		LatencyP50Ms:  m.percentile(0.50),
		LatencyP90Ms:  m.percentile(0.90),
		LatencyP99Ms:  m.percentile(0.99),
		Cache: CacheMetrics{
			Hits:    hits,
			Misses:  misses,
			Shared:  shared,
			Entries: cacheEntries,
		},
		Endpoints:    make(map[string]uint64),
		ShardQueries: make([]uint64, len(m.shards)),
		InFlight:     inFlight,
		Generation:   generation,
	}
	if uptime > 0 {
		s.QPS = float64(reqs) / uptime
	}
	if reqs > 0 {
		s.LatencyAvgMs = float64(m.latSum.Load()) / float64(reqs) / 1000.0
	}
	if lookups := hits + misses + shared; lookups > 0 {
		// Shared lookups count as hits: the work was deduplicated away.
		s.Cache.HitRate = float64(hits+shared) / float64(lookups)
	}
	s.Batch = BatchMetrics{
		Count:       m.batches.Load(),
		Items:       m.batchItems.Load(),
		ShardGroups: m.batchGroups.Load(),
	}
	if s.Batch.Count > 0 {
		s.Batch.AvgSize = float64(s.Batch.Items) / float64(s.Batch.Count)
		s.Batch.AvgFanout = float64(s.Batch.ShardGroups) / float64(s.Batch.Count)
	}
	s.Rebuild = RebuildMetrics{
		Count:         m.rebuilds.Load(),
		ShardsRebuilt: m.shardsRebuilt.Load(),
		ShardsReused:  m.shardsReused.Load(),
		ShardsLoaded:  m.shardsLoaded.Load(),
	}
	if total := s.Rebuild.ShardsRebuilt + s.Rebuild.ShardsReused + s.Rebuild.ShardsLoaded; total > 0 {
		s.Rebuild.ReuseRate = float64(s.Rebuild.ShardsReused+s.Rebuild.ShardsLoaded) / float64(total)
	}
	s.Persist = persist
	m.mu.Lock()
	for name, c := range m.endpoints {
		s.Endpoints[name] = c.count.Load()
	}
	m.mu.Unlock()
	for i := range m.shards {
		s.ShardQueries[i] = m.shards[i].Load()
	}
	rt := obs.ReadRuntime()
	s.Runtime = RuntimeMetrics{
		Goroutines:     rt.Goroutines,
		HeapAllocBytes: rt.HeapAllocBytes,
		HeapSysBytes:   rt.HeapSysBytes,
		HeapObjects:    rt.HeapObjects,
		GCCount:        rt.GCCount,
		GCPauseTotalMs: rt.GCPauseTotalMs,
		UptimeSeconds:  uptime,
	}
	return s
}
