package server

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"

	"pegasus/internal/graph"
	"pegasus/internal/obs"
	"pegasus/internal/queries"
)

// BatchRequest is the JSON body of POST /v1/query/batch: one query kind,
// one shared parameter set, and a vector of query nodes. The server routes
// the whole vector in one pass, groups the nodes by owning shard, and
// answers the per-shard groups concurrently — the multi-query workload
// shape of §IV/§V in one HTTP round-trip instead of len(nodes) round-trips.
type BatchRequest struct {
	// Kind is the query kind: "rwr", "hop", "php", "pagerank" or "topk".
	Kind string `json:"kind"`
	// Nodes are the query nodes, at most ServerConfig.BatchMax of them.
	// Duplicates are answered per occurrence; when the result cache is
	// enabled (the default), repeats are served from the first
	// occurrence's entry, but with caching disabled each occurrence
	// recomputes.
	Nodes []uint32 `json:"nodes"`
	QueryParams
}

// BatchItem is the answer for one node of a batch, in request order. Items
// fail independently: an out-of-range node or a timed-out computation sets
// Error on its own item and leaves the rest of the batch intact.
type BatchItem struct {
	Node uint32 `json:"node"`
	// Shard is the shard that answered (or would have answered) the item;
	// -1 when the node could not be routed.
	Shard  int  `json:"shard"`
	Cached bool `json:"cached"`
	// Error is set when this item failed; exactly one of Error or the
	// result fields is populated.
	Error  string      `json:"error,omitempty"`
	Scores []float64   `json:"scores,omitempty"`
	Dist   []int32     `json:"dist,omitempty"`
	Top    []NodeScore `json:"top,omitempty"`
}

// BatchResponse is the JSON answer of POST /v1/query/batch. The response is
// 200 whenever the request itself was well-formed, even if individual items
// failed — partial success is the point of the endpoint.
type BatchResponse struct {
	Kind       string `json:"kind"`
	Generation uint64 `json:"generation"`
	// ShardGroups is the routing fan-out: how many distinct shards the
	// batch touched (= the number of concurrent per-shard groups).
	ShardGroups int         `json:"shard_groups"`
	Items       []BatchItem `json:"items"`
	// Trace is the span timeline of this batch (one batch.shard span per
	// shard group), present only when the client asked with ?debug=1.
	Trace *obs.TraceView `json:"trace,omitempty"`
}

// handleBatch answers POST /v1/query/batch. One backend generation is
// snapshotted for the whole batch, the nodes are routed and grouped by
// shard in a single pass, and each shard group runs on its own goroutine
// with a small pool of query sessions, so the per-query precompute (the
// RWR/PHP weighted-degree scan) is paid once per (session, batch) instead
// of once per node while cache misses within one group still compute
// concurrently. Individual computations go through the per-item cache with
// singleflight dedup and the bounded worker pool.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if !s.decode(w, r, &req) {
		return
	}
	switch req.Kind {
	case "rwr", "hop", "php", "pagerank", "topk":
	default:
		writeError(w, http.StatusBadRequest,
			"unknown batch kind %q (want rwr, hop, php, pagerank or topk)", req.Kind)
		return
	}
	if len(req.Nodes) == 0 {
		writeError(w, http.StatusBadRequest, "nodes must contain at least one query node")
		return
	}
	if len(req.Nodes) > s.cfg.BatchMax {
		writeError(w, http.StatusBadRequest,
			"batch of %d nodes exceeds the limit of %d (ServerConfig.BatchMax)", len(req.Nodes), s.cfg.BatchMax)
		return
	}
	metric, msg := req.metricFor(req.Kind)
	if msg == "" {
		msg = req.validate()
	}
	if msg != "" {
		writeError(w, http.StatusBadRequest, "%s", msg)
		return
	}
	p := req.resolved(metric)

	box := s.current()
	be := box.be

	// One routing pass: per-item range/routing failures become per-item
	// errors, valid items are grouped by owning shard in request order.
	items := make([]BatchItem, len(req.Nodes))
	groups := make(map[int][]int)
	for i, nd := range req.Nodes {
		items[i].Node = nd
		items[i].Shard = -1
		if int(nd) >= be.numNodes() {
			items[i].Error = fmt.Sprintf("query node %d out of range (|V|=%d)", nd, be.numNodes())
			continue
		}
		shard, err := be.shard(graph.NodeID(nd))
		if err != nil {
			items[i].Error = err.Error()
			continue
		}
		items[i].Shard = shard
		s.metrics.ObserveShard(shard)
		groups[shard] = append(groups[shard], i)
	}
	s.metrics.ObserveBatch(len(req.Nodes), len(groups))

	// QueryTimeout bounds the whole batch: items the budget does not reach
	// fail individually with a timeout error (cache hits still succeed).
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.QueryTimeout)
	defer cancel()

	var wg sync.WaitGroup
	for shard, idxs := range groups {
		wg.Add(1)
		go func(shard int, idxs []int) {
			defer wg.Done()
			// One span per shard group; the group's cache/compute spans
			// nest under it. Concurrent groups append to the shared trace
			// safely (span appends are mutex-serialized).
			gctx, sp := obs.StartSpan(ctx, "batch.shard")
			sp.AttrInt("shard", shard)
			sp.AttrInt("items", len(idxs))
			defer sp.End()
			s.runShardGroup(gctx, box, req.Kind, metric, p, shard, idxs, items)
		}(shard, idxs)
	}
	wg.Wait()

	writeJSON(w, http.StatusOK, BatchResponse{
		Kind:        req.Kind,
		Generation:  box.gen,
		ShardGroups: len(groups),
		Items:       items,
		Trace:       debugTrace(r),
	})
}

// runShardGroup answers one shard's slice of a batch with a per-group
// session pool of min(len(idxs), Pool.Size()) workers. Sessions are not
// safe for concurrent use, so every worker drives its own (cheap until
// first use) and pulls items off a shared atomic cursor; previously one
// session processed the whole group sequentially, which serialized a
// single-shard batch of all cache misses no matter how many worker-pool
// slots were free. Capping the session count at the pool size keeps a
// group from holding more sessions than computations the pool can admit.
// Each item still takes its own cache/singleflight lookup, and every
// computation acquires the bounded worker pool inside its compute closure,
// so a large batch cannot exceed the pool any more than single queries
// can. Item results land in disjoint items[i] slots, so neither the
// group's workers nor concurrent groups contend.
func (s *Server) runShardGroup(ctx context.Context, box *backendBox, kind, metric string, p queryParams, shard int, idxs []int, items []BatchItem) {
	workers := len(idxs)
	if n := s.pool.Size(); workers > n {
		workers = n
	}
	// Sessions are created up front: session() fails only for an unroutable
	// shard, which fails every item of the group — the pre-pool semantics.
	sessions := make([]queries.Session, workers)
	for w := range sessions {
		sess, err := box.be.session(shard)
		if err != nil {
			for _, i := range idxs {
				items[i].Error = err.Error()
			}
			return
		}
		sessions[w] = sess
	}
	var next atomic.Int64
	run := func(sess queries.Session) {
		for {
			k := int(next.Add(1)) - 1
			if k >= len(idxs) {
				return
			}
			it := &items[idxs[k]]
			key, compute := s.plan(box, sess, kind, metric, graph.NodeID(it.Node), shard, p)
			val, status, err := s.cache.GetOrCompute(ctx, key, func() (any, error) { return compute(ctx) })
			if err != nil {
				it.Error = queryErrorString(err)
				continue
			}
			s.metrics.ObserveCache(status)
			it.Cached = status == CacheHit
			fillResult(&it.Scores, &it.Dist, &it.Top, kind, val)
		}
	}
	var wg sync.WaitGroup
	for _, sess := range sessions[1:] {
		wg.Add(1)
		go func(sess queries.Session) {
			defer wg.Done()
			run(sess)
		}(sess)
	}
	run(sessions[0])
	wg.Wait()
}
