package server

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"pegasus/internal/gen"
	"pegasus/internal/graph"
)

// warmConfig is the shared 4-shard configuration of the warm-start tests;
// two servers built from it (with or without a cache dir) are twins.
func warmConfig(cacheDir string) Config {
	return Config{
		Shards:          4,
		PartitionMethod: "random",
		BudgetRatio:     0.5,
		Seed:            3,
		CacheDir:        cacheDir,
	}
}

func warmGraph() *graph.Graph {
	return gen.PlantedPartition(gen.SBMConfig{Nodes: 240, Communities: 4, AvgDegree: 8, MixingP: 0.05}, 11)
}

// mustServer builds a server or fails the test.
func mustServer(t testing.TB, g *graph.Graph, cfg Config) *Server {
	t.Helper()
	s, err := New(context.Background(), g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// queryBody posts one query and returns the raw response body (fatal on a
// non-200).
func queryBody(t testing.TB, s *Server, path string, body map[string]any) []byte {
	t.Helper()
	res, raw := postJSON(t, s.Handler(), path, body)
	if res.StatusCode != 200 {
		t.Fatalf("%s: %d: %s", path, res.StatusCode, raw)
	}
	return raw
}

// TestWarmStartFromPopulatedCacheDir is the acceptance pin: a server booted
// over the cache dir a twin populated performs zero shard rebuilds (every
// shard is decoded from disk) and serves answers byte-identical to a cold
// build — on the raw JSON bodies of queries and the summary report.
func TestWarmStartFromPopulatedCacheDir(t *testing.T) {
	g := warmGraph()
	dir := t.TempDir()

	first := mustServer(t, g, warmConfig(dir))
	if bs := first.BootStats(); bs.Rebuilt != 4 || bs.Loaded != 0 {
		t.Fatalf("populating boot: rebuilt=%d loaded=%d, want 4/0", bs.Rebuilt, bs.Loaded)
	}

	warm := mustServer(t, g, warmConfig(dir))
	if bs := warm.BootStats(); bs.Loaded != 4 || bs.Rebuilt != 0 {
		t.Fatalf("warm boot: loaded=%d rebuilt=%d, want 4/0", bs.Loaded, bs.Rebuilt)
	}
	cold := mustServer(t, g, warmConfig("")) // in-memory twin

	for _, n := range []uint32{0, 7, 63, 128, 239} {
		for _, path := range []string{"/v1/query/rwr", "/v1/query/php", "/v1/query/topk"} {
			w := queryBody(t, warm, path, map[string]any{"node": n})
			c := queryBody(t, cold, path, map[string]any{"node": n})
			if !bytes.Equal(w, c) {
				t.Errorf("%s node %d: warm answer differs from cold:\n  warm: %s\n  cold: %s", path, n, w, c)
			}
		}
	}
	resW, rawW := do(t, warm.Handler(), httptest.NewRequest("GET", "/v1/summary/report", nil))
	resC, rawC := do(t, cold.Handler(), httptest.NewRequest("GET", "/v1/summary/report", nil))
	if resW.StatusCode != 200 || resC.StatusCode != 200 || !bytes.Equal(rawW, rawC) {
		t.Errorf("summary reports differ between warm and cold boots")
	}

	// The persist metrics section records the four disk hits.
	res, raw := do(t, warm.Handler(), httptest.NewRequest("GET", "/metrics", nil))
	if res.StatusCode != 200 {
		t.Fatalf("metrics: %d", res.StatusCode)
	}
	var snap Snapshot
	decodeInto(t, raw, &snap)
	if snap.Persist == nil {
		t.Fatal("metrics: no persist section on a cache-dir server")
	}
	if snap.Persist.Hits != 4 || snap.Persist.Misses != 0 {
		t.Errorf("persist metrics = %+v, want 4 hits, 0 misses", snap.Persist)
	}
	if snap.Persist.BytesRead == 0 {
		t.Error("persist metrics: bytes_read is 0 after a warm start")
	}
	// The in-memory twin serves no persist section at all.
	_, rawC = do(t, cold.Handler(), httptest.NewRequest("GET", "/metrics", nil))
	if strings.Contains(string(rawC), `"persist"`) {
		t.Error("metrics of a store-less server contain a persist section")
	}
}

// TestCorruptedCacheDirServesCorrectAnswers pins the corruption satellite
// end to end: a server booted from a deliberately mangled cache dir — one
// artifact bit-flipped, one truncated, one zero-length, one replaced by
// junk — silently rebuilds the damaged shards and serves answers
// byte-identical to a cold build.
func TestCorruptedCacheDirServesCorrectAnswers(t *testing.T) {
	g := warmGraph()
	dir := t.TempDir()
	mustServer(t, g, warmConfig(dir)) // populate

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var files []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".pgsum") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) != 4 {
		t.Fatalf("cache dir holds %d artifacts, want 4", len(files))
	}
	for i, path := range files {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		switch i {
		case 0:
			raw[len(raw)/2] ^= 0x01 // single flipped bit mid-payload
		case 1:
			raw = raw[:len(raw)/2] // truncated
		case 2:
			raw = nil // zero-length
		case 3:
			raw = []byte("not an artifact at all") // junk
		}
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	damaged := mustServer(t, g, warmConfig(dir))
	if bs := damaged.BootStats(); bs.Rebuilt != 4 || bs.Loaded != 0 {
		t.Fatalf("boot over corrupted dir: rebuilt=%d loaded=%d, want 4/0", bs.Rebuilt, bs.Loaded)
	}
	cold := mustServer(t, g, warmConfig(""))
	for _, n := range []uint32{1, 50, 101, 200} {
		d := queryBody(t, damaged, "/v1/query/rwr", map[string]any{"node": n})
		c := queryBody(t, cold, "/v1/query/rwr", map[string]any{"node": n})
		if !bytes.Equal(d, c) {
			t.Errorf("node %d: answer from corrupted-cache server differs from cold build", n)
		}
	}
	// The rebuild healed the directory: the next boot is fully warm again.
	healed := mustServer(t, g, warmConfig(dir))
	if bs := healed.BootStats(); bs.Loaded != 4 {
		t.Errorf("boot after healing: loaded=%d, want 4", bs.Loaded)
	}
}

// TestSummarizePersistsRebuiltShards: a hot rebuild writes the shards it
// rebuilds back to the cache dir, so a later boot with the new configuration
// is fully warm; the response carries the loaded/keyable fields.
func TestSummarizePersistsRebuiltShards(t *testing.T) {
	g := warmGraph()
	dir := t.TempDir()
	s := mustServer(t, g, warmConfig(dir))
	assign := assignOf(t, s)
	targets := partialTargets(assign, 0, 2)

	res, raw := postJSON(t, s.Handler(), "/v1/summarize", map[string]any{"targets": targets})
	if res.StatusCode != 200 {
		t.Fatalf("summarize: %d: %s", res.StatusCode, raw)
	}
	var sr SummarizeResponse
	decodeInto(t, raw, &sr)
	if sr.Rebuilt != 1 || sr.Reused != 3 || sr.Loaded != 0 {
		t.Fatalf("rebuilt=%d reused=%d loaded=%d, want 1/3/0", sr.Rebuilt, sr.Reused, sr.Loaded)
	}
	if !sr.Keyable {
		t.Error("keyable = false on a fingerprintable server config")
	}

	// A fresh boot with the post-rebuild configuration loads all four from
	// disk: three artifacts from the original boot, one persisted by the
	// summarize.
	cfg := warmConfig(dir)
	var tg []graph.NodeID
	for _, u := range targets {
		tg = append(tg, graph.NodeID(u))
	}
	cfg.Targets = tg
	warm := mustServer(t, g, cfg)
	if bs := warm.BootStats(); bs.Loaded != 4 || bs.Rebuilt != 0 {
		t.Errorf("boot with post-rebuild config: loaded=%d rebuilt=%d, want 4/0", bs.Loaded, bs.Rebuilt)
	}
}

// TestSummarizeNoopReportsLoadedZero: the warm-start fields compose with the
// established no-op semantics — everything reused in memory, nothing loaded.
func TestSummarizeNoopReportsLoadedZero(t *testing.T) {
	g := warmGraph()
	s := mustServer(t, g, warmConfig(t.TempDir()))
	res, raw := postJSON(t, s.Handler(), "/v1/summarize", map[string]any{})
	if res.StatusCode != 200 {
		t.Fatalf("summarize: %d: %s", res.StatusCode, raw)
	}
	var sr SummarizeResponse
	decodeInto(t, raw, &sr)
	if sr.Rebuilt != 0 || sr.Reused != 4 || sr.Loaded != 0 || !sr.Keyable {
		t.Errorf("noop: rebuilt=%d reused=%d loaded=%d keyable=%v, want 0/4/0/true",
			sr.Rebuilt, sr.Reused, sr.Loaded, sr.Keyable)
	}
}

// TestWarmStartUnderConcurrentTraffic is the -race integration pin: a server
// warm-starts from a populated cache dir, concurrent /v1/query/batch traffic
// hammers it while a /v1/summarize with changed targets lands mid-stream,
// and afterwards (a) reused shards kept their per-shard cache generation
// (their cached answers still hit), (b) the rebuilt shard recomputes, and
// (c) every answer is byte-identical to a cold-built twin of the final
// configuration.
func TestWarmStartUnderConcurrentTraffic(t *testing.T) {
	g := warmGraph()
	dir := t.TempDir()
	mustServer(t, g, warmConfig(dir)) // populate

	s := mustServer(t, g, warmConfig(dir))
	if bs := s.BootStats(); bs.Loaded != 4 {
		t.Fatalf("warm boot: loaded=%d, want 4", bs.Loaded)
	}
	h := s.Handler()
	assign := assignOf(t, s)
	n := len(assign)
	nodeChanged := nodeOnShard(t, assign, 0)
	nodeKept := nodeOnShard(t, assign, 1)

	// Warm the query cache on a shard the rebuild will not touch.
	queryBody(t, s, "/v1/query/rwr", map[string]any{"node": nodeKept})

	const batchers = 4
	stop := make(chan struct{})
	errc := make(chan error, batchers+1)
	var wg sync.WaitGroup
	for b := 0; b < batchers; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				nodes := []uint32{
					uint32((b*13 + i*5) % n),
					uint32((b*31 + i*11) % n),
				}
				res, raw := postJSON(t, h, "/v1/query/batch", map[string]any{"kind": "rwr", "nodes": nodes})
				if res.StatusCode != 200 {
					errc <- fmt.Errorf("batch: %d: %s", res.StatusCode, raw)
					return
				}
				var br BatchResponse
				decodeInto(t, raw, &br)
				for _, it := range br.Items {
					if it.Error == "" && len(it.Scores) != n {
						errc <- fmt.Errorf("node %d: %d scores, want %d", it.Node, len(it.Scores), n)
						return
					}
				}
			}
		}(b)
	}

	// Mid-traffic reconfiguration confined to part 0.
	targets := partialTargets(assign, 0, 2)
	res, raw := postJSON(t, h, "/v1/summarize", map[string]any{"targets": targets})
	if res.StatusCode != 200 {
		t.Fatalf("summarize under traffic: %d: %s", res.StatusCode, raw)
	}
	var sr SummarizeResponse
	decodeInto(t, raw, &sr)
	if sr.Rebuilt != 1 || sr.Reused != 3 {
		t.Errorf("summarize under traffic: rebuilt=%d reused=%d, want 1/3", sr.Rebuilt, sr.Reused)
	}
	close(stop)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// (a) Reused shard kept its cache generation: the pre-rebuild answer
	// still hits.
	var qr QueryResponse
	decodeInto(t, queryBody(t, s, "/v1/query/rwr", map[string]any{"node": nodeKept}), &qr)
	if !qr.Cached {
		t.Error("reused shard lost its cached answer across the warm rebuild")
	}
	// (b) The rebuilt shard recomputes rather than serving a stale entry.
	decodeInto(t, queryBody(t, s, "/v1/query/rwr", map[string]any{"node": nodeChanged}), &qr)
	if qr.Cached {
		t.Error("rebuilt shard served a cached answer it should have dropped")
	}

	// (c) Byte-identical answers versus a cold-built twin of the final
	// configuration. Scores and top lists must match exactly; the envelope
	// fields (generation, cached) legitimately differ, so compare the
	// decoded payloads.
	cfg := warmConfig("")
	for _, u := range targets {
		cfg.Targets = append(cfg.Targets, graph.NodeID(u))
	}
	twin := mustServer(t, g, cfg)
	for _, node := range []uint32{uint32(nodeChanged), uint32(nodeKept), 5, 77, 200} {
		var a, b QueryResponse
		decodeInto(t, queryBody(t, s, "/v1/query/rwr", map[string]any{"node": node}), &a)
		decodeInto(t, queryBody(t, twin, "/v1/query/rwr", map[string]any{"node": node}), &b)
		if len(a.Scores) != len(b.Scores) {
			t.Fatalf("node %d: score lengths differ", node)
		}
		for j := range a.Scores {
			if a.Scores[j] != b.Scores[j] {
				t.Fatalf("node %d: score[%d] differs between warm-rebuilt server and cold twin", node, j)
			}
		}
	}
}
