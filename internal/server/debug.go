package server

import (
	"net/http"
	"net/http/pprof"

	"pegasus/internal/obs"
)

// SlowLogResponse is the JSON answer of GET /debug/slowlog: the effective
// threshold and capacity, how many requests ever crossed the threshold, and
// the retained entries newest-first (each with its full span timeline).
type SlowLogResponse struct {
	ThresholdMs float64         `json:"threshold_ms"`
	Capacity    int             `json:"capacity"`
	Total       uint64          `json:"total"`
	Entries     []obs.SlowEntry `json:"entries"`
}

func (s *Server) handleSlowlog(w http.ResponseWriter, _ *http.Request) {
	entries, total := s.slowlog.Snapshot()
	writeJSON(w, http.StatusOK, SlowLogResponse{
		ThresholdMs: float64(s.cfg.SlowLogThreshold.Microseconds()) / 1000.0,
		Capacity:    s.slowlog.Cap(),
		Total:       total,
		Entries:     entries,
	})
}

// DebugHandler returns the handler for the separate debug listener
// (pegasus-serve -debug-addr): the net/http/pprof suite, the runtime stats,
// the slow-query log, and the metrics snapshot. It is kept off the serving
// mux on purpose — profiling endpoints expose internals and can be
// expensive, so they bind to an operator-chosen (typically loopback)
// address instead. The pprof handlers are mounted explicitly rather than
// through the package's DefaultServeMux side effects, so importing this
// package never adds routes to a mux it does not own.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /debug/runtime", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, obs.ReadRuntime())
	})
	mux.HandleFunc("GET /debug/slowlog", s.handleSlowlog)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}
