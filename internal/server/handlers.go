package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"pegasus/internal/graph"
	"pegasus/internal/queries"
	"pegasus/internal/summary"
)

// QueryRequest is the JSON body of POST /v1/query/{kind}. Zero-valued
// algorithm parameters select the paper defaults (restart 0.05, c 0.95,
// damping 0.85, ...).
type QueryRequest struct {
	// Node is the query node q; for pagerank it only selects the shard.
	Node uint32 `json:"node"`
	// K bounds the top-k answer (topk only; default 10).
	K int `json:"k"`
	// Metric is the score the topk answer ranks by: "rwr" (default), "php"
	// or "pagerank".
	Metric string `json:"metric"`
	// Restart is the RWR restart probability.
	Restart float64 `json:"restart"`
	// C is the PHP penalty factor.
	C float64 `json:"c"`
	// Damping is the PageRank continuation probability.
	Damping float64 `json:"damping"`
	// Eps is the iteration convergence tolerance.
	Eps float64 `json:"eps"`
	// MaxIter caps the iterations.
	MaxIter int `json:"max_iter"`
}

// maxTopK bounds the k of a topk query: ranking is O(k·|V|) on the handler
// goroutine, so k must not become a CPU amplification vector.
const maxTopK = 1000

// validate range-checks the algorithm parameters. Divergent settings (e.g.
// a PHP penalty factor > 1) would iterate to ±Inf, which neither the cache
// nor JSON encoding should ever see. Returns "" when valid.
func (r QueryRequest) validate() string {
	if r.Restart < 0 || r.Restart > 1 {
		return fmt.Sprintf("restart must be in [0,1], got %v", r.Restart)
	}
	if r.C < 0 || r.C > 1 {
		return fmt.Sprintf("c must be in [0,1], got %v", r.C)
	}
	if r.Damping < 0 || r.Damping > 1 {
		return fmt.Sprintf("damping must be in [0,1], got %v", r.Damping)
	}
	if r.Eps < 0 {
		return fmt.Sprintf("eps must be non-negative, got %v", r.Eps)
	}
	if r.MaxIter < 0 {
		return fmt.Sprintf("max_iter must be non-negative, got %d", r.MaxIter)
	}
	if r.K < 0 || r.K > maxTopK {
		return fmt.Sprintf("k must be in [1,%d], got %d", maxTopK, r.K)
	}
	return ""
}

// NodeScore is one ranked answer entry.
type NodeScore struct {
	Node  uint32  `json:"node"`
	Score float64 `json:"score"`
}

// QueryResponse is the JSON answer of POST /v1/query/{kind}.
type QueryResponse struct {
	Kind       string      `json:"kind"`
	Node       uint32      `json:"node"`
	Shard      int         `json:"shard"`
	Cached     bool        `json:"cached"`
	Generation uint64      `json:"generation"`
	Scores     []float64   `json:"scores,omitempty"`
	Dist       []int32     `json:"dist,omitempty"` // hop distances; -1 = unreached
	Top        []NodeScore `json:"top,omitempty"`
}

// SummarizeRequest is the JSON body of POST /v1/summarize. Nil/zero fields
// keep the current setting; a present-but-empty targets list switches to a
// non-personalized summary. Targets are ignored on sharded servers (each
// shard stays personalized to the part it owns).
type SummarizeRequest struct {
	Targets     *[]uint32 `json:"targets"`
	BudgetRatio float64   `json:"budget_ratio"`
	Alpha       float64   `json:"alpha"`
}

// ReportResponse is the JSON answer of GET /v1/summary/report and
// POST /v1/summarize.
type ReportResponse struct {
	Generation uint64           `json:"generation"`
	Shards     []summary.Report `json:"shards"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the routing handler with metrics instrumentation; mount
// it on any HTTP server.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query/{kind}", s.handleQuery)
	mux.HandleFunc("GET /v1/summary/report", s.handleReport)
	mux.HandleFunc("POST /v1/summarize", s.handleSummarize)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s.instrument(mux)
}

// instrument records request count, latency and error status per endpoint.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		s.metrics.ObserveRequest(endpointLabel(r), time.Since(start), rec.status >= 400)
	})
}

type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (w *statusRecorder) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// endpointLabel buckets a request path into a stable metrics label.
func endpointLabel(r *http.Request) string {
	p := r.URL.Path
	switch {
	case strings.HasPrefix(p, "/v1/query/"):
		// Only known kinds become labels, so unauthenticated clients cannot
		// grow the metrics map with arbitrary path suffixes.
		kind := strings.TrimPrefix(p, "/v1/query/")
		switch kind {
		case "rwr", "hop", "php", "pagerank", "topk":
			return "query/" + kind
		}
		return "query/invalid"
	case p == "/v1/summary/report":
		return "report"
	case p == "/v1/summarize":
		return "summarize"
	case p == "/healthz":
		return "healthz"
	case p == "/metrics":
		return "metrics"
	default:
		return "other"
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	// Marshal before committing the status line: an unencodable value must
	// become a 500, not a 200 with an empty body.
	raw, err := json.Marshal(v)
	if err != nil {
		status = http.StatusInternalServerError
		raw, _ = json.Marshal(errorResponse{Error: "response not encodable: " + err.Error()})
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(raw)
	w.Write([]byte("\n"))
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// writeQueryError maps a computation error to an HTTP status.
func writeQueryError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "query timed out: %v", err)
	case errors.Is(err, context.Canceled):
		writeError(w, http.StatusServiceUnavailable, "query cancelled: %v", err)
	default:
		writeError(w, http.StatusInternalServerError, "query failed: %v", err)
	}
}

func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	kind := r.PathValue("kind")
	switch kind {
	case "rwr", "hop", "php", "pagerank", "topk":
	default:
		writeError(w, http.StatusNotFound,
			"unknown query kind %q (want rwr, hop, php, pagerank or topk)", kind)
		return
	}
	var req QueryRequest
	if !s.decode(w, r, &req) {
		return
	}
	if msg := req.validate(); msg != "" {
		writeError(w, http.StatusBadRequest, "%s", msg)
		return
	}
	metric := kind
	if kind == "topk" {
		metric = req.Metric
		if metric == "" {
			metric = "rwr"
		}
		switch metric {
		case "rwr", "php", "pagerank":
		default:
			writeError(w, http.StatusBadRequest,
				"unknown topk metric %q (want rwr, php or pagerank)", metric)
			return
		}
		if req.K == 0 {
			req.K = 10
		}
	}

	box := s.current()
	be := box.be
	q := graph.NodeID(req.Node)
	if int(q) >= be.numNodes() {
		writeError(w, http.StatusBadRequest,
			"query node %d out of range (|V|=%d)", req.Node, be.numNodes())
		return
	}
	shard, err := be.shard(q)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.metrics.ObserveShard(shard)

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.QueryTimeout)
	defer cancel()

	key, compute := queryPlan(box, be, metric, q, shard, req)
	val, status, err := s.cache.GetOrCompute(ctx, key, func() (any, error) {
		var out any
		runErr := s.pool.Run(ctx, func() error {
			v, err := compute(ctx)
			out = v
			return err
		})
		return out, runErr
	})
	if err != nil {
		// Errored lookups (timed-out waiters in particular) stay out of the
		// hit/miss counters, or hit_rate would climb exactly when the server
		// is timing out.
		writeQueryError(w, err)
		return
	}
	s.metrics.ObserveCache(status)

	resp := QueryResponse{
		Kind:       kind,
		Node:       req.Node,
		Shard:      shard,
		Cached:     status == CacheHit,
		Generation: box.gen,
	}
	switch kind {
	case "hop":
		resp.Dist = val.([]int32)
	case "topk":
		scores := val.([]float64)
		for _, id := range queries.TopK(scores, req.K) {
			resp.Top = append(resp.Top, NodeScore{Node: uint32(id), Score: scores[id]})
		}
	default:
		resp.Scores = val.([]float64)
	}
	writeJSON(w, http.StatusOK, resp)
}

// queryPlan returns the cache key and compute closure for one query. The
// key carries the backend generation, so results computed against a
// replaced backend can never be served after a re-summarize; topk shares
// the underlying score vector with plain metric queries.
func queryPlan(box *backendBox, be backend, metric string, q graph.NodeID, shard int, req QueryRequest) (string, func(context.Context) (any, error)) {
	switch metric {
	case "hop":
		return fmt.Sprintf("g%d|hop|n%d", box.gen, q),
			func(ctx context.Context) (any, error) {
				_ = ctx // BFS is single-pass; bounded by the pool, not the context
				return be.hop(q)
			}
	case "php":
		cfg := queries.PHPConfig{C: req.C, Eps: req.Eps, MaxIter: req.MaxIter}
		return fmt.Sprintf("g%d|php|n%d|c%g,e%g,i%d", box.gen, q, cfg.C, cfg.Eps, cfg.MaxIter),
			func(ctx context.Context) (any, error) {
				cfg.Ctx = ctx
				return be.php(q, cfg)
			}
	case "pagerank":
		cfg := queries.PageRankConfig{Damping: req.Damping, Eps: req.Eps, MaxIter: req.MaxIter}
		return fmt.Sprintf("g%d|pagerank|s%d|d%g,e%g,i%d", box.gen, shard, cfg.Damping, cfg.Eps, cfg.MaxIter),
			func(ctx context.Context) (any, error) {
				cfg.Ctx = ctx
				return be.pagerank(shard, cfg)
			}
	default: // rwr
		cfg := queries.RWRConfig{Restart: req.Restart, Eps: req.Eps, MaxIter: req.MaxIter}
		return fmt.Sprintf("g%d|rwr|n%d|r%g,e%g,i%d", box.gen, q, cfg.Restart, cfg.Eps, cfg.MaxIter),
			func(ctx context.Context) (any, error) {
				cfg.Ctx = ctx
				return be.rwr(q, cfg)
			}
	}
}

func (s *Server) handleReport(w http.ResponseWriter, _ *http.Request) {
	box := s.current()
	writeJSON(w, http.StatusOK, ReportResponse{
		Generation: box.gen,
		Shards:     box.be.reports(),
	})
}

func (s *Server) handleSummarize(w http.ResponseWriter, r *http.Request) {
	var req SummarizeRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.BudgetRatio < 0 {
		writeError(w, http.StatusBadRequest, "budget_ratio must be positive, got %v", req.BudgetRatio)
		return
	}
	if req.Alpha != 0 && req.Alpha < 1 {
		writeError(w, http.StatusBadRequest, "alpha must be >= 1, got %v", req.Alpha)
		return
	}
	var targets []graph.NodeID
	if req.Targets != nil {
		targets = make([]graph.NodeID, 0, len(*req.Targets))
		for _, t := range *req.Targets {
			if int(t) >= s.g.NumNodes() {
				writeError(w, http.StatusBadRequest,
					"target %d out of range (|V|=%d)", t, s.g.NumNodes())
				return
			}
			targets = append(targets, graph.NodeID(t))
		}
	}

	apply := func(cfg Config) Config {
		if req.Targets != nil {
			cfg.Targets = targets
		}
		if req.BudgetRatio != 0 {
			cfg.BudgetRatio = req.BudgetRatio
		}
		if req.Alpha != 0 {
			cfg.Alpha = req.Alpha
		}
		return cfg
	}
	if err := s.rebuild(r.Context(), apply); err != nil {
		writeQueryError(w, err)
		return
	}
	box := s.current()
	writeJSON(w, http.StatusOK, ReportResponse{
		Generation: box.gen,
		Shards:     box.be.reports(),
	})
}

type healthResponse struct {
	Status     string `json:"status"`
	Generation uint64 `json:"generation"`
	Shards     int    `json:"shards"`
	Nodes      int    `json:"nodes"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	box := s.current()
	writeJSON(w, http.StatusOK, healthResponse{
		Status:     "ok",
		Generation: box.gen,
		Shards:     box.be.numShards(),
		Nodes:      box.be.numNodes(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK,
		s.metrics.SnapshotNow(s.cache.Len(), s.pool.InFlight(), s.gen.Load()))
}
