package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strings"
	"time"

	"pegasus/internal/graph"
	"pegasus/internal/obs"
	"pegasus/internal/queries"
	"pegasus/internal/summary"
)

// QueryParams are the algorithm parameters shared by the single-query
// (POST /v1/query/{kind}) and batch (POST /v1/query/batch) endpoints.
//
// Float parameters are pointers so that "absent" is distinguishable from an
// explicit value. This block is the single place the serving layer's
// default-selection rule is defined:
//
//   - absent (or JSON null)           → the paper default listed below;
//   - explicit, finite, in range      → honored as given;
//   - explicit 0, NaN, ±Inf, or out
//     of range                        → rejected with a 400.
//
// An explicit zero is rejected rather than honored because the query
// configs further down the stack (queries.RWRConfig and friends) treat the
// zero value as "use the default" — a request that says `"restart": 0`
// would be silently answered with restart 0.05, which is worse than an
// error. Non-finite values are rejected because NaN defeats range checks
// (NaN < 0 and NaN > 1 are both false), poisons the power iteration, and
// is unencodable in the JSON response.
//
// The integer parameters K and MaxIter are plain ints: an explicit 0
// selects the default, exactly like an absent field. That carries no
// zero-vs-default ambiguity because 0 is not a usable value for either (a
// top-0 answer and a 0-iteration query are both vacuous).
//
// Defaults: restart 0.05 and c 0.95 (§V-A), damping 0.85, eps 1e-9,
// max_iter 1000 (200 for pagerank), k 10.
type QueryParams struct {
	// K bounds the top-k answer (topk only; 0 selects the default 10).
	K int `json:"k"`
	// Metric is the score the topk answer ranks by: "rwr" (default), "php"
	// or "pagerank".
	Metric string `json:"metric"`
	// Restart is the RWR restart probability, in (0,1].
	Restart *float64 `json:"restart"`
	// C is the PHP penalty factor, in (0,1].
	C *float64 `json:"c"`
	// Damping is the PageRank continuation probability, in (0,1].
	Damping *float64 `json:"damping"`
	// Eps is the iteration convergence tolerance, > 0.
	Eps *float64 `json:"eps"`
	// MaxIter caps the iterations (0 selects the default).
	MaxIter int `json:"max_iter"`
}

// QueryRequest is the JSON body of POST /v1/query/{kind}.
type QueryRequest struct {
	// Node is the query node q; for pagerank it only selects the shard.
	Node uint32 `json:"node"`
	QueryParams
}

// maxTopK bounds the k of a topk query: ranking is O(k·|V|), so k must not
// become a CPU amplification vector (ranking runs on the bounded worker
// pool, but a slot should not be held for an absurd k either).
const maxTopK = 1000

// validate range-checks the algorithm parameters per the rule documented on
// QueryParams. Returns "" when valid.
func (p QueryParams) validate() string {
	if msg := checkUnitInterval("restart", p.Restart, 0.05); msg != "" {
		return msg
	}
	if msg := checkUnitInterval("c", p.C, 0.95); msg != "" {
		return msg
	}
	if msg := checkUnitInterval("damping", p.Damping, 0.85); msg != "" {
		return msg
	}
	if p.Eps != nil && (!isFinite(*p.Eps) || *p.Eps <= 0) {
		return fmt.Sprintf("eps must be a finite positive number (omit it for the default 1e-9), got %v", *p.Eps)
	}
	if p.MaxIter < 0 {
		return fmt.Sprintf("max_iter must be non-negative, got %d", p.MaxIter)
	}
	if p.K < 0 || p.K > maxTopK {
		return fmt.Sprintf("k must be in [1,%d], got %d", maxTopK, p.K)
	}
	return ""
}

// checkUnitInterval validates an optional probability-like parameter:
// absent is fine, an explicit value must be finite and in (0,1].
func checkUnitInterval(name string, v *float64, def float64) string {
	if v == nil {
		return ""
	}
	if !isFinite(*v) || *v <= 0 || *v > 1 {
		return fmt.Sprintf("%s must be in (0,1] (omit it for the default %g), got %v", name, def, *v)
	}
	return ""
}

func isFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// metricFor resolves the effective metric for a query kind: non-topk kinds
// are their own metric; topk ranks by Metric (default "rwr"). The second
// return value is a non-empty error message on an unknown topk metric.
func (p QueryParams) metricFor(kind string) (string, string) {
	if kind != "topk" {
		return kind, ""
	}
	m := p.Metric
	if m == "" {
		m = "rwr"
	}
	switch m {
	case "rwr", "php", "pagerank":
		return m, ""
	}
	return "", fmt.Sprintf("unknown topk metric %q (want rwr, php or pagerank)", p.Metric)
}

// queryParams is the fully resolved parameter set: every field concrete,
// defaults applied. Cache keys are built from these, so "absent" and
// "explicitly the default" share one cache entry.
type queryParams struct {
	restart, c, damping, eps float64
	maxIter, k               int
}

// resolved applies the defaults documented on QueryParams; metric selects
// the max_iter default (PageRank defaults to 200 iterations, the power
// iterations to 1000).
func (p QueryParams) resolved(metric string) queryParams {
	r := queryParams{restart: 0.05, c: 0.95, damping: 0.85, eps: 1e-9, maxIter: p.MaxIter, k: p.K}
	if p.Restart != nil {
		r.restart = *p.Restart
	}
	if p.C != nil {
		r.c = *p.C
	}
	if p.Damping != nil {
		r.damping = *p.Damping
	}
	if p.Eps != nil {
		r.eps = *p.Eps
	}
	if r.maxIter == 0 {
		if metric == "pagerank" {
			r.maxIter = 200
		} else {
			r.maxIter = 1000
		}
	}
	if r.k == 0 {
		r.k = 10
	}
	return r
}

// NodeScore is one ranked answer entry.
type NodeScore struct {
	Node  uint32  `json:"node"`
	Score float64 `json:"score"`
}

// QueryResponse is the JSON answer of POST /v1/query/{kind}.
type QueryResponse struct {
	Kind       string      `json:"kind"`
	Node       uint32      `json:"node"`
	Shard      int         `json:"shard"`
	Cached     bool        `json:"cached"`
	Generation uint64      `json:"generation"`
	Scores     []float64   `json:"scores,omitempty"`
	Dist       []int32     `json:"dist,omitempty"` // hop distances; -1 = unreached
	Top        []NodeScore `json:"top,omitempty"`
	// Trace is the span timeline of this request, present only when the
	// client asked for it with ?debug=1.
	Trace *obs.TraceView `json:"trace,omitempty"`
}

// SummarizeRequest is the JSON body of POST /v1/summarize. Absent (or null)
// fields keep the current setting; on single-shard servers a
// present-but-empty targets list switches to a non-personalized summary.
// On sharded servers, each shard's resolved target set is the intersection
// of its partition part with the requested targets, and a part containing
// no requested target keeps its whole-part personalization — so an
// explicitly empty list resets every part to whole-part personalization,
// rebuilding only the shards that were restricted. A request that changes
// targets within one part therefore rebuilds only that shard, and the
// response reports how many shards were rebuilt vs reused.
type SummarizeRequest struct {
	Targets *[]uint32 `json:"targets"`
	// BudgetRatio replaces the per-shard budget when present; it must be a
	// finite positive fraction of Size(G). An explicit 0 is rejected (it is
	// not a usable budget); omit the field to keep the current setting.
	BudgetRatio *float64 `json:"budget_ratio"`
	// Alpha replaces the degree of personalization when present; it must be
	// finite and >= 1. Omit the field to keep the current setting.
	Alpha *float64 `json:"alpha"`
}

// validate range-checks a re-summarize request. An absent field keeps the
// current value; an explicit 0 is not a usable budget (and alpha < 1 is not
// a valid personalization degree), so both are rejected rather than
// silently treated as "keep current" — the pre-fix behavior the old "must
// be positive" message contradicted. Returns "" when valid.
func (r SummarizeRequest) validate() string {
	if r.BudgetRatio != nil && (!isFinite(*r.BudgetRatio) || *r.BudgetRatio <= 0) {
		return fmt.Sprintf(
			"budget_ratio must be a finite positive fraction of Size(G) (omit it to keep the current setting), got %v",
			*r.BudgetRatio)
	}
	if r.Alpha != nil && (!isFinite(*r.Alpha) || *r.Alpha < 1) {
		return fmt.Sprintf(
			"alpha must be finite and >= 1 (omit it to keep the current setting), got %v", *r.Alpha)
	}
	return ""
}

// ReportResponse is the JSON answer of GET /v1/summary/report.
type ReportResponse struct {
	Generation uint64           `json:"generation"`
	Shards     []summary.Report `json:"shards"`
}

// SummarizeResponse is the JSON answer of POST /v1/summarize: the new
// report plus the incremental-rebuild outcome. rebuilt + reused + loaded
// equals the shard count; a no-op request (nothing effectively changed)
// reports rebuilt 0, reused m.
type SummarizeResponse struct {
	ReportResponse
	// Rebuilt is the number of shards whose summary was built from scratch
	// because their content key (targets, budget, alpha, graph) changed.
	Rebuilt int `json:"rebuilt"`
	// Reused is the number of shards whose previous summary was
	// transplanted bit-identically (their cached query answers survive).
	Reused int `json:"reused"`
	// Loaded is the number of shards decoded from the on-disk artifact
	// store (always 0 without a cache dir) — bit-identical to a rebuild,
	// obtained at decode cost.
	Loaded int `json:"loaded"`
	// Keyable reports whether shard content keys could be computed for this
	// build. When false (a summarizer configuration with no canonical
	// fingerprint, e.g. a custom threshold policy), every rebuild is a full
	// rebuild and nothing is persisted — reuse is silently off, and this
	// field is how the silence is surfaced.
	Keyable bool `json:"keyable"`
	// Trace is the span timeline of this rebuild (per-shard build phases),
	// present only when the client asked for it with ?debug=1.
	Trace *obs.TraceView `json:"trace,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the routing handler with metrics instrumentation; mount
// it on any HTTP server.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	// The literal /v1/query/batch pattern is more specific than the {kind}
	// wildcard, so batch requests never reach handleQuery.
	mux.HandleFunc("POST /v1/query/batch", s.handleBatch)
	mux.HandleFunc("POST /v1/query/{kind}", s.handleQuery)
	mux.HandleFunc("GET /v1/summary/report", s.handleReport)
	mux.HandleFunc("POST /v1/summarize", s.handleSummarize)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/slowlog", s.handleSlowlog)
	return s.instrument(mux)
}

// instrument wraps every request with the observability layer: a fresh trace
// whose ID is echoed in the X-Trace-Id response header, a root "handler"
// span the downstream spans (cache, compute, session, build phases) nest
// under, the per-endpoint count/latency/error counters, and — when the
// request crosses cfg.SlowLogThreshold — a slow-log entry carrying the full
// span timeline.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		endpoint := endpointLabel(r)
		tr := obs.NewTrace()
		ctx, root := obs.StartSpan(obs.WithTrace(r.Context(), tr), "handler")
		root.Attr("endpoint", endpoint)
		w.Header().Set("X-Trace-Id", tr.ID())
		rec := &statusRecorder{ResponseWriter: w}
		next.ServeHTTP(rec, r.WithContext(ctx))
		root.AttrInt("status", rec.Status())
		root.End()
		dur := time.Since(start)
		s.metrics.ObserveRequest(endpoint, dur, rec.Status() >= 400)
		if s.cfg.SlowLogThreshold >= 0 && dur >= s.cfg.SlowLogThreshold {
			v := tr.View()
			s.slowlog.Add(obs.SlowEntry{
				Time:       start,
				TraceID:    tr.ID(),
				Method:     r.Method,
				Path:       r.URL.Path,
				Endpoint:   endpoint,
				Status:     rec.Status(),
				DurationMs: float64(dur.Microseconds()) / 1000.0,
				Trace:      &v,
			})
		}
	})
}

// statusRecorder captures the response status for the metrics layer while
// staying transparent to the handlers: Flush is forwarded so streaming
// responses keep working behind the wrapper, and a handler that never calls
// WriteHeader (net/http commits an implicit 200 on the first Write) is
// reported as 200.
type statusRecorder struct {
	http.ResponseWriter
	status int // 0 until WriteHeader; Status() reports 200 then
}

// Status returns the recorded status, defaulting to 200 when the handler
// never called WriteHeader explicitly.
func (w *statusRecorder) Status() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}

func (w *statusRecorder) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer when it supports flushing, so
// wrapping does not hide http.Flusher from handlers that stream.
func (w *statusRecorder) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// endpointLabel buckets a request path into a stable metrics label.
func endpointLabel(r *http.Request) string {
	p := r.URL.Path
	switch {
	case strings.HasPrefix(p, "/v1/query/"):
		// Only known kinds become labels, so unauthenticated clients cannot
		// grow the metrics map with arbitrary path suffixes.
		kind := strings.TrimPrefix(p, "/v1/query/")
		switch kind {
		case "rwr", "hop", "php", "pagerank", "topk", "batch":
			return "query/" + kind
		}
		return "query/invalid"
	case p == "/v1/summary/report":
		return "report"
	case p == "/v1/summarize":
		return "summarize"
	case p == "/healthz":
		return "healthz"
	case p == "/metrics":
		return "metrics"
	case p == "/debug/slowlog":
		return "slowlog"
	default:
		return "other"
	}
}

// debugTrace returns the request's span timeline when the client opted in
// with ?debug=1 (nil otherwise), for embedding in the JSON response. The
// snapshot is taken at call time, so spans still open (the root handler
// span) report their duration so far.
func debugTrace(r *http.Request) *obs.TraceView {
	if r.URL.Query().Get("debug") != "1" {
		return nil
	}
	t := obs.FromContext(r.Context())
	if t == nil {
		return nil
	}
	v := t.View()
	return &v
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	// Marshal before committing the status line: an unencodable value must
	// become a 500, not a 200 with an empty body.
	raw, err := json.Marshal(v)
	if err != nil {
		status = http.StatusInternalServerError
		raw, _ = json.Marshal(errorResponse{Error: "response not encodable: " + err.Error()})
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// The status line is committed; a failed body write means the client
	// went away, and there is nothing left to signal it to.
	_, _ = w.Write(raw)
	_, _ = w.Write([]byte("\n"))
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// writeQueryError maps a computation error to an HTTP status, with the
// same message queryErrorString gives per-item batch errors.
func writeQueryError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		status = http.StatusServiceUnavailable
	}
	writeError(w, status, "%s", queryErrorString(err))
}

// queryErrorString classifies a computation error into the serving layer's
// client-facing message (used verbatim for per-item batch errors).
func queryErrorString(err error) string {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return "query timed out: " + err.Error()
	case errors.Is(err, context.Canceled):
		return "query cancelled: " + err.Error()
	default:
		return "query failed: " + err.Error()
	}
}

func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	kind := r.PathValue("kind")
	switch kind {
	case "rwr", "hop", "php", "pagerank", "topk":
	default:
		writeError(w, http.StatusNotFound,
			"unknown query kind %q (want rwr, hop, php, pagerank or topk)", kind)
		return
	}
	var req QueryRequest
	if !s.decode(w, r, &req) {
		return
	}
	metric, msg := req.metricFor(kind)
	if msg == "" {
		msg = req.validate()
	}
	if msg != "" {
		writeError(w, http.StatusBadRequest, "%s", msg)
		return
	}

	box := s.current()
	be := box.be
	q := graph.NodeID(req.Node)
	if int(q) >= be.numNodes() {
		writeError(w, http.StatusBadRequest,
			"query node %d out of range (|V|=%d)", req.Node, be.numNodes())
		return
	}
	shard, err := be.shard(q)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	sess, err := be.session(shard)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.metrics.ObserveShard(shard)

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.QueryTimeout)
	defer cancel()

	key, compute := s.plan(box, sess, kind, metric, q, shard, req.resolved(metric))
	// The cache span covers the whole lookup: a hit ends it immediately, a
	// miss stretches it over the compute (whose own spans nest inside), and
	// a singleflight waiter shows the time spent waiting on the leader.
	cctx, csp := obs.StartSpan(ctx, "cache")
	val, status, err := s.cache.GetOrCompute(cctx, key, func() (any, error) { return compute(cctx) })
	csp.Attr("status", cacheStatusLabel(status, err))
	csp.End()
	if err != nil {
		// Errored lookups (timed-out waiters in particular) stay out of the
		// hit/miss counters, or hit_rate would climb exactly when the server
		// is timing out.
		writeQueryError(w, err)
		return
	}
	s.metrics.ObserveCache(status)

	resp := QueryResponse{
		Kind:       kind,
		Node:       req.Node,
		Shard:      shard,
		Cached:     status == CacheHit,
		Generation: box.gen,
		Trace:      debugTrace(r),
	}
	fillResult(&resp.Scores, &resp.Dist, &resp.Top, kind, val)
	writeJSON(w, http.StatusOK, resp)
}

// cacheStatusLabel renders a lookup outcome for the cache span attribute.
func cacheStatusLabel(s CacheStatus, err error) string {
	if err != nil {
		return "error"
	}
	switch s {
	case CacheHit:
		return "hit"
	case CacheShared:
		return "shared"
	default:
		return "miss"
	}
}

// fillResult routes a computed value into the kind-appropriate response
// field (shared by the single-query and batch answer shapes).
func fillResult(scores *[]float64, dist *[]int32, top *[]NodeScore, kind string, val any) {
	switch kind {
	case "hop":
		*dist = val.([]int32)
	case "topk":
		*top = val.([]NodeScore)
	default:
		*scores = val.([]float64)
	}
}

// plan returns the cache key and compute closure for one query. The key
// carries the generation of the shard that answers it (backendBox.sgen) —
// rebuilt shards advance their generation so stale results can never be
// served, while shards an incremental rebuild transplanted keep theirs, so
// their cached answers (bit-identical artifacts) keep hitting.
//
// Compute closures acquire the bounded worker pool themselves and must be
// invoked WITHOUT holding a pool slot: a closure may wait on another
// in-flight cache computation (topk waits on its score vector), and waiting
// on a flight whose leader is queued for a slot while holding one would
// deadlock a size-1 pool. The invariant throughout the serving layer is
// "never wait on a flight while holding a slot".
//
// Sessions passed in are used sequentially by the closure; a closure
// invocation computes at most one query at a time, so per-goroutine
// sessions stay single-threaded.
func (s *Server) plan(box *backendBox, sess queries.Session, kind, metric string, q graph.NodeID, shard int, p queryParams) (string, func(context.Context) (any, error)) {
	key, compute := s.metricPlan(box, sess, metric, q, shard, p)
	if kind != "topk" {
		return key, compute
	}
	// topk caches the ranked answer under its own key (repeated identical
	// topk queries must not re-rank the score vector) while sharing the
	// underlying scores with plain metric queries through a nested cache
	// lookup. Ranking runs on the worker pool: O(k·|V|) selection is real
	// CPU that the pool bound must cap.
	topkKey := fmt.Sprintf("%s|top%d", key, p.k)
	return topkKey, func(ctx context.Context) (any, error) {
		val, _, err := s.cache.GetOrCompute(ctx, key, func() (any, error) { return compute(ctx) })
		if err != nil {
			return nil, err
		}
		scores := val.([]float64)
		var top []NodeScore
		err = s.pool.Run(ctx, func() error {
			ids := queries.TopK(scores, p.k)
			top = make([]NodeScore, 0, len(ids))
			for _, id := range ids {
				top = append(top, NodeScore{Node: uint32(id), Score: scores[id]})
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		return top, nil
	}
}

// metricPlan returns the cache key and pool-bounded compute closure for one
// plain metric query (the score/distance vector underlying every kind).
func (s *Server) metricPlan(box *backendBox, sess queries.Session, metric string, q graph.NodeID, shard int, p queryParams) (string, func(context.Context) (any, error)) {
	pooled := func(fn func(ctx context.Context) (any, error)) func(context.Context) (any, error) {
		return func(ctx context.Context) (any, error) {
			// The compute span covers pool admission plus the computation;
			// the session spans (session.rwr, session.php) nest inside it,
			// so pool-wait time shows up as the gap between the two.
			ctx, sp := obs.StartSpan(ctx, "compute."+metric)
			defer sp.End()
			var out any
			err := s.pool.Run(ctx, func() error {
				v, err := fn(ctx)
				out = v
				return err
			})
			return out, err
		}
	}
	// Every key embeds the generation of the answering shard, not the
	// global backend generation: node-scoped queries (rwr/php/hop/topk)
	// belong to exactly one shard, and pagerank is shard-scoped by
	// construction. The node→shard routing is stable across rebuilds (the
	// partition inputs are not hot-reconfigurable), so a shard generation
	// fully qualifies the artifact a key was computed against.
	sgen := box.sgen(shard)
	switch metric {
	case "hop":
		return fmt.Sprintf("g%d|hop|n%d", sgen, q),
			pooled(func(ctx context.Context) (any, error) {
				_ = ctx // BFS is single-pass; bounded by the pool, not the context
				return box.be.hop(q)
			})
	case "php":
		cfg := queries.PHPConfig{C: p.c, Eps: p.eps, MaxIter: p.maxIter}
		return fmt.Sprintf("g%d|php|n%d|c%g,e%g,i%d", sgen, q, cfg.C, cfg.Eps, cfg.MaxIter),
			pooled(func(ctx context.Context) (any, error) {
				cfg := cfg
				cfg.Ctx = ctx
				return sess.PHP(q, cfg)
			})
	case "pagerank":
		cfg := queries.PageRankConfig{Damping: p.damping, Eps: p.eps, MaxIter: p.maxIter}
		return fmt.Sprintf("g%d|pagerank|s%d|d%g,e%g,i%d", sgen, shard, cfg.Damping, cfg.Eps, cfg.MaxIter),
			pooled(func(ctx context.Context) (any, error) {
				cfg := cfg
				cfg.Ctx = ctx
				return box.be.pagerank(shard, cfg)
			})
	default: // rwr
		cfg := queries.RWRConfig{Restart: p.restart, Eps: p.eps, MaxIter: p.maxIter}
		return fmt.Sprintf("g%d|rwr|n%d|r%g,e%g,i%d", sgen, q, cfg.Restart, cfg.Eps, cfg.MaxIter),
			pooled(func(ctx context.Context) (any, error) {
				cfg := cfg
				cfg.Ctx = ctx
				return sess.RWR(q, cfg)
			})
	}
}

func (s *Server) handleReport(w http.ResponseWriter, _ *http.Request) {
	box := s.current()
	writeJSON(w, http.StatusOK, ReportResponse{
		Generation: box.gen,
		Shards:     box.be.reports(),
	})
}

func (s *Server) handleSummarize(w http.ResponseWriter, r *http.Request) {
	var req SummarizeRequest
	if !s.decode(w, r, &req) {
		return
	}
	if msg := req.validate(); msg != "" {
		writeError(w, http.StatusBadRequest, "%s", msg)
		return
	}
	var targets []graph.NodeID
	if req.Targets != nil {
		targets = make([]graph.NodeID, 0, len(*req.Targets))
		for _, t := range *req.Targets {
			if int(t) >= s.g.NumNodes() {
				writeError(w, http.StatusBadRequest,
					"target %d out of range (|V|=%d)", t, s.g.NumNodes())
				return
			}
			targets = append(targets, graph.NodeID(t))
		}
	}

	apply := func(cfg Config) Config {
		if req.Targets != nil {
			cfg.Targets = targets
		}
		if req.BudgetRatio != nil {
			cfg.BudgetRatio = *req.BudgetRatio
		}
		if req.Alpha != nil {
			cfg.Alpha = *req.Alpha
		}
		return cfg
	}
	// The rebuild span wraps the whole incremental rebuild; the per-shard
	// build.shard spans (and their shingle/merge phase children) nest under
	// it via the context.
	ctx, sp := obs.StartSpan(r.Context(), "rebuild")
	box, stats, err := s.rebuild(ctx, apply)
	if err != nil {
		sp.End()
		writeQueryError(w, err)
		return
	}
	sp.AttrInt("rebuilt", stats.Rebuilt)
	sp.AttrInt("reused", stats.Reused)
	sp.AttrInt("loaded", stats.Loaded)
	sp.End()
	writeJSON(w, http.StatusOK, SummarizeResponse{
		ReportResponse: ReportResponse{
			Generation: box.gen,
			Shards:     box.be.reports(),
		},
		Rebuilt: stats.Rebuilt,
		Reused:  stats.Reused,
		Loaded:  stats.Loaded,
		Keyable: len(box.keys) > 0,
		Trace:   debugTrace(r),
	})
}

type healthResponse struct {
	Status     string `json:"status"`
	Generation uint64 `json:"generation"`
	Shards     int    `json:"shards"`
	Nodes      int    `json:"nodes"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	box := s.current()
	writeJSON(w, http.StatusOK, healthResponse{
		Status:     "ok",
		Generation: box.gen,
		Shards:     box.be.numShards(),
		Nodes:      box.be.numNodes(),
	})
}

// handleMetrics serves the telemetry snapshot. The default (and ?format=json)
// is the JSON snapshot, whose shape is additive-only across releases;
// ?format=prometheus renders the same counters in the text exposition format
// (version 0.0.4) for scraping.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var persist *PersistMetrics
	if s.store != nil {
		st := s.store.Stats()
		persist = &st
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		writeJSON(w, http.StatusOK,
			s.metrics.SnapshotNow(s.cache.Len(), s.pool.InFlight(), s.gen.Load(), persist))
	case "prometheus":
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.metrics.WriteProm(w, s.cache.Len(), s.pool.InFlight(), s.gen.Load(), persist)
	default:
		writeError(w, http.StatusBadRequest, "unknown metrics format %q (want json or prometheus)", format)
	}
}
