package server

import (
	"fmt"
	"runtime"
	"time"

	"pegasus/internal/graph"
	"pegasus/internal/partition"
)

// Config parameterizes the serving daemon. Zero values select defaults.
type Config struct {
	// Addr is the listen address (default ":8080").
	Addr string
	// Shards is the number of machines in the serving cluster (default 1: a
	// single personalized summary, no routing table).
	Shards int
	// PartitionMethod divides the node set across shards when Shards >= 2:
	// "louvain", "blp", "shpi", "shpii", "shpkl" or "random" (default
	// "random").
	PartitionMethod string
	// BudgetRatio is the per-shard summary budget as a fraction of Size(G)
	// (default 0.5) — the k of Alg. 3, expressed relatively.
	BudgetRatio float64
	// Targets personalizes the summaries. Single-shard: the summary's
	// target set (empty = non-personalized). Sharded: each shard i is
	// personalized to the intersection of its partition part with Targets,
	// while parts containing no target are untouched and keep their
	// whole-part personalization (Alg. 3) — so a hot reconfiguration that
	// changes targets inside one part rebuilds only that shard.
	Targets []graph.NodeID
	// Alpha is the degree of personalization (default 1.25).
	Alpha float64
	// Seed drives partitioning and summarization randomness.
	Seed int64
	// LSHBands enables banded MinHash-LSH candidate generation in the
	// summary builds (core.Config.LSHBands; default 0 keeps the paper's
	// single-hash grouping).
	LSHBands int
	// LSHRows is the rows-per-band of the LSH signature matrix; requires
	// LSHBands > 0 (default 2 when bands are set).
	LSHRows int
	// CacheEntries bounds the query-result cache (default 4096; negative
	// disables storage, keeping only singleflight dedup).
	CacheEntries int
	// Workers bounds concurrently executing query computations (default
	// GOMAXPROCS).
	Workers int
	// BatchMax bounds the number of query nodes accepted by one
	// POST /v1/query/batch request (default 256). Larger batches are
	// rejected with a 400; clients should split them.
	BatchMax int
	// BuildWorkers bounds the goroutines used to build the serving artifact
	// — concurrent per-shard summary builds plus the engine's internal
	// parallelism — both at startup and on POST /v1/summarize hot rebuilds
	// (default GOMAXPROCS; 1 forces the sequential build). Any value
	// produces the same artifact for a fixed seed.
	BuildWorkers int
	// CacheDir, when non-empty, enables disk-backed shard artifacts: every
	// built shard summary is persisted under its content key
	// (<CacheDir>/<shardkey>.pgsum), startup loads any shard whose key is
	// already filed instead of rebuilding it (a warm start from a populated
	// directory performs zero summarizations), and each POST /v1/summarize
	// persists the shards it rebuilds. Artifacts found corrupt or written by
	// an unknown codec version are rebuilt, never trusted. One server should
	// own a directory: successful builds garbage-collect it down to the
	// serving key set. Empty keeps the cluster purely in-memory.
	CacheDir string
	// QueryTimeout bounds each query computation (default 30s).
	QueryTimeout time.Duration
	// ShutdownGrace bounds the drain on graceful shutdown (default 10s).
	ShutdownGrace time.Duration
	// MaxBodyBytes bounds request bodies (default 1 MiB).
	MaxBodyBytes int64
	// SlowLogThreshold is the latency at or above which a request is recorded
	// in the slow-query log served at GET /debug/slowlog, together with its
	// full span timeline (default 500ms; negative disables the log).
	SlowLogThreshold time.Duration
	// SlowLogEntries bounds the slow-query ring buffer (default 128).
	SlowLogEntries int
}

func (c Config) withDefaults() (Config, error) {
	if c.Addr == "" {
		c.Addr = ":8080"
	}
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.Shards < 1 {
		return c, fmt.Errorf("server: Shards must be >= 1, got %d", c.Shards)
	}
	if c.PartitionMethod == "" {
		c.PartitionMethod = string(partition.MethodRandom)
	}
	if c.Shards > 1 {
		switch partition.Method(c.PartitionMethod) {
		case partition.MethodLouvain, partition.MethodBLP, partition.MethodSHPI,
			partition.MethodSHPII, partition.MethodSHPKL, partition.MethodRandom:
		default:
			return c, fmt.Errorf("server: unknown partition method %q", c.PartitionMethod)
		}
	}
	if c.BudgetRatio == 0 {
		c.BudgetRatio = 0.5
	}
	// NaN sneaks past plain range checks (NaN < 0 is false) and would poison
	// the bit budget, so non-finite values are rejected explicitly.
	if !isFinite(c.BudgetRatio) || c.BudgetRatio < 0 {
		return c, fmt.Errorf("server: BudgetRatio must be a finite positive value, got %v", c.BudgetRatio)
	}
	if !isFinite(c.Alpha) {
		return c, fmt.Errorf("server: Alpha must be finite, got %v", c.Alpha)
	}
	// Mirror core's LSH validation here so a bad flag fails at startup with
	// a server-prefixed message instead of on the first build.
	if c.LSHBands < 0 {
		return c, fmt.Errorf("server: LSHBands must be non-negative, got %d", c.LSHBands)
	}
	if c.LSHBands == 0 && c.LSHRows != 0 {
		return c, fmt.Errorf("server: LSHRows requires LSHBands > 0, got LSHRows=%d", c.LSHRows)
	}
	if c.LSHBands > 0 && c.LSHRows < 0 {
		return c, fmt.Errorf("server: LSHRows must be positive, got %d", c.LSHRows)
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 4096
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.BatchMax == 0 {
		c.BatchMax = 256
	}
	if c.BatchMax < 1 {
		return c, fmt.Errorf("server: BatchMax must be >= 1 (or 0 for the default 256), got %d", c.BatchMax)
	}
	if c.BuildWorkers == 0 {
		c.BuildWorkers = runtime.GOMAXPROCS(0)
	}
	if c.BuildWorkers < 1 {
		return c, fmt.Errorf("server: BuildWorkers must be >= 1 (or 0 for GOMAXPROCS), got %d", c.BuildWorkers)
	}
	if c.QueryTimeout == 0 {
		c.QueryTimeout = 30 * time.Second
	}
	if c.ShutdownGrace == 0 {
		c.ShutdownGrace = 10 * time.Second
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.SlowLogThreshold == 0 {
		c.SlowLogThreshold = 500 * time.Millisecond
	}
	if c.SlowLogEntries == 0 {
		c.SlowLogEntries = 128
	}
	if c.SlowLogEntries < 1 {
		return c, fmt.Errorf("server: SlowLogEntries must be >= 1 (or 0 for the default 128), got %d", c.SlowLogEntries)
	}
	return c, nil
}
