package server

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
)

// CacheStatus describes how GetOrCompute satisfied a lookup.
type CacheStatus int

const (
	// CacheMiss: this caller computed the value.
	CacheMiss CacheStatus = iota
	// CacheHit: the value was already stored.
	CacheHit
	// CacheShared: an identical in-flight computation was joined
	// (singleflight dedup) — the value was computed once for all waiters.
	CacheShared
)

// cacheShardCount is the number of independently locked cache shards; a
// power of two so the shard index is a cheap mask. Sixteen keeps lock
// contention negligible at the concurrency levels the worker pool allows.
const cacheShardCount = 16

// Cache is a sharded LRU map from query keys to computed results with
// singleflight deduplication: concurrent GetOrCompute calls for the same key
// run the compute function once and share the result. It is the
// query-result cache of the serving layer, keyed by
// (endpoint, query node, config hash, backend generation).
type Cache struct {
	shards [cacheShardCount]cacheShard
}

type cacheShard struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used; values are *cacheEntry
	items   map[string]*list.Element
	flights map[string]*flight
}

type cacheEntry struct {
	key string
	val any
}

// flight is one in-progress computation; done is closed when val/err are
// final.
type flight struct {
	done chan struct{}
	val  any
	err  error
}

// NewCache returns a cache holding at most capacity entries (split evenly
// across shards, minimum one per shard). capacity <= 0 disables storage;
// singleflight dedup still applies.
func NewCache(capacity int) *Cache {
	c := &Cache{}
	per := capacity / cacheShardCount
	if capacity > 0 && per == 0 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i] = cacheShard{
			cap:     per,
			ll:      list.New(),
			items:   make(map[string]*list.Element),
			flights: make(map[string]*flight),
		}
	}
	return c
}

func (c *Cache) shard(key string) *cacheShard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return &c.shards[h.Sum32()&(cacheShardCount-1)]
}

// GetOrCompute returns the cached value for key, or computes it with fn. If
// an identical computation is already in flight, the call blocks until that
// computation finishes and shares its result (or until ctx is cancelled).
// A waiter whose own context is still live when the in-flight leader aborts
// on a context error retries with its own budget rather than inheriting the
// leader's cancellation. Erroring computations are never stored.
//
//pegasus:hotpath cache lookup: the hit arm of the retry loop runs once per query
func (c *Cache) GetOrCompute(ctx context.Context, key string, fn func() (any, error)) (any, CacheStatus, error) {
	sh := c.shard(key)
	for {
		sh.mu.Lock()
		if el, ok := sh.items[key]; ok {
			sh.ll.MoveToFront(el)
			val := el.Value.(*cacheEntry).val
			sh.mu.Unlock()
			return val, CacheHit, nil
		}
		if f, ok := sh.flights[key]; ok {
			sh.mu.Unlock()
			select {
			case <-f.done:
				if f.err != nil && isContextErr(f.err) && ctx.Err() == nil {
					continue // the leader ran out of time; we have not
				}
				return f.val, CacheShared, f.err
			case <-ctx.Done():
				return nil, CacheShared, ctx.Err()
			}
		}
		//lint:hotalloc miss path: one flight per computed key, amortized by fn's cost
		f := &flight{done: make(chan struct{})}
		sh.flights[key] = f
		sh.mu.Unlock()

		//lint:hotalloc miss path: the recover wrapper closes over f once per compute, not per lookup
		func() {
			// A panicking computation must still resolve the flight, or the
			// key would block every future lookup forever; surface it as an
			// error to the leader and all waiters instead.
			defer func() {
				if r := recover(); r != nil {
					f.err = fmt.Errorf("cache: computation panicked: %v", r)
				}
			}()
			f.val, f.err = fn()
		}()

		sh.mu.Lock()
		delete(sh.flights, key)
		if f.err == nil && sh.cap > 0 {
			//lint:hotalloc miss path: one stored entry per computed key
			sh.items[key] = sh.ll.PushFront(&cacheEntry{key: key, val: f.val})
			for sh.ll.Len() > sh.cap {
				oldest := sh.ll.Back()
				sh.ll.Remove(oldest)
				delete(sh.items, oldest.Value.(*cacheEntry).key)
			}
		}
		sh.mu.Unlock()
		close(f.done)
		return f.val, CacheMiss, f.err
	}
}

func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Purge drops every stored entry (in-flight computations are unaffected;
// their keys carry the backend generation, so results computed against a
// replaced backend can never be confused with fresh ones).
func (c *Cache) Purge() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.ll.Init()
		sh.items = make(map[string]*list.Element)
		sh.mu.Unlock()
	}
}

// Len returns the number of stored entries.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += sh.ll.Len()
		sh.mu.Unlock()
	}
	return n
}
