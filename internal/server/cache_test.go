package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCacheHitAfterMiss(t *testing.T) {
	c := NewCache(64)
	ctx := context.Background()
	v, st, err := c.GetOrCompute(ctx, "k", func() (any, error) { return 42, nil })
	if err != nil || st != CacheMiss || v.(int) != 42 {
		t.Fatalf("first lookup: got (%v, %v, %v), want (42, miss, nil)", v, st, err)
	}
	v, st, err = c.GetOrCompute(ctx, "k", func() (any, error) {
		t.Fatal("recomputed a cached key")
		return nil, nil
	})
	if err != nil || st != CacheHit || v.(int) != 42 {
		t.Fatalf("second lookup: got (%v, %v, %v), want (42, hit, nil)", v, st, err)
	}
}

func TestCacheSingleflightDedup(t *testing.T) {
	c := NewCache(64)
	ctx := context.Background()
	var calls atomic.Int32
	started := make(chan struct{})
	release := make(chan struct{})

	// Leader enters the compute function and blocks.
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		v, st, err := c.GetOrCompute(ctx, "k", func() (any, error) {
			calls.Add(1)
			close(started)
			<-release
			return "v", nil
		})
		if err != nil || st != CacheMiss || v.(string) != "v" {
			t.Errorf("leader: got (%v, %v, %v)", v, st, err)
		}
	}()
	<-started

	// Everyone arriving while the leader computes shares its flight.
	const waiters = 32
	var wg sync.WaitGroup
	statuses := make([]CacheStatus, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, st, err := c.GetOrCompute(ctx, "k", func() (any, error) {
				calls.Add(1)
				return "v", nil
			})
			statuses[i] = st
			if err != nil || v.(string) != "v" {
				t.Errorf("waiter %d: got (%v, %v)", i, v, err)
			}
		}(i)
	}
	time.Sleep(10 * time.Millisecond) // let waiters park on the flight
	close(release)
	wg.Wait()
	<-leaderDone

	if got := calls.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want 1", got)
	}
	for i, st := range statuses {
		if st != CacheShared {
			t.Errorf("waiter %d: status %v, want shared", i, st)
		}
	}
}

func TestCacheEviction(t *testing.T) {
	const capacity = 32
	c := NewCache(capacity)
	ctx := context.Background()
	for i := 0; i < 10*capacity; i++ {
		key := fmt.Sprintf("k%d", i)
		if _, _, err := c.GetOrCompute(ctx, key, func() (any, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if n := c.Len(); n > capacity {
		t.Fatalf("cache holds %d entries, cap %d", n, capacity)
	}
	// The most recently inserted key must still be resident.
	_, st, _ := c.GetOrCompute(ctx, fmt.Sprintf("k%d", 10*capacity-1), func() (any, error) {
		return nil, errors.New("evicted")
	})
	if st != CacheHit {
		t.Fatalf("most recent key: status %v, want hit", st)
	}
}

func TestCachePurge(t *testing.T) {
	c := NewCache(64)
	ctx := context.Background()
	c.GetOrCompute(ctx, "k", func() (any, error) { return 1, nil })
	c.Purge()
	if n := c.Len(); n != 0 {
		t.Fatalf("after purge: %d entries, want 0", n)
	}
	_, st, _ := c.GetOrCompute(ctx, "k", func() (any, error) { return 2, nil })
	if st != CacheMiss {
		t.Fatalf("after purge: status %v, want miss", st)
	}
}

func TestCacheDisabledStorage(t *testing.T) {
	c := NewCache(-1)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		_, st, _ := c.GetOrCompute(ctx, "k", func() (any, error) { return 1, nil })
		if st != CacheMiss {
			t.Fatalf("lookup %d: status %v, want miss (storage disabled)", i, st)
		}
	}
	if n := c.Len(); n != 0 {
		t.Fatalf("disabled cache holds %d entries", n)
	}
}

func TestCacheErrorNotStored(t *testing.T) {
	c := NewCache(64)
	ctx := context.Background()
	boom := errors.New("boom")
	if _, _, err := c.GetOrCompute(ctx, "k", func() (any, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	_, st, err := c.GetOrCompute(ctx, "k", func() (any, error) { return 7, nil })
	if err != nil || st != CacheMiss {
		t.Fatalf("after error: got (%v, %v), want (miss, nil)", st, err)
	}
}

func TestCacheWaiterHonorsContext(t *testing.T) {
	c := NewCache(64)
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	go c.GetOrCompute(context.Background(), "k", func() (any, error) {
		close(started)
		<-release
		return 1, nil
	})
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.GetOrCompute(ctx, "k", func() (any, error) { return 1, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestCacheWaiterRetriesAfterLeaderTimeout(t *testing.T) {
	// A waiter with remaining budget must not inherit the leader's deadline
	// error: it retries the computation under its own context.
	c := NewCache(64)
	started := make(chan struct{})
	release := make(chan struct{})
	go c.GetOrCompute(context.Background(), "k", func() (any, error) {
		close(started)
		<-release
		return nil, context.DeadlineExceeded // the leader ran out of time
	})
	<-started

	waiterDone := make(chan struct{})
	var val any
	var st CacheStatus
	var err error
	go func() {
		defer close(waiterDone)
		val, st, err = c.GetOrCompute(context.Background(), "k", func() (any, error) {
			return "retried", nil
		})
	}()
	close(release)
	<-waiterDone
	if err != nil || st != CacheMiss || val.(string) != "retried" {
		t.Fatalf("waiter: got (%v, %v, %v), want (retried, miss, nil)", val, st, err)
	}
}

func TestCachePanicDoesNotPoisonKey(t *testing.T) {
	c := NewCache(64)
	ctx := context.Background()
	_, _, err := c.GetOrCompute(ctx, "k", func() (any, error) { panic("boom") })
	if err == nil {
		t.Fatal("panicking computation returned no error")
	}
	// The key must be usable again, not blocked on a leaked flight.
	done := make(chan struct{})
	go func() {
		defer close(done)
		v, st, err := c.GetOrCompute(ctx, "k", func() (any, error) { return 5, nil })
		if err != nil || st != CacheMiss || v.(int) != 5 {
			t.Errorf("after panic: got (%v, %v, %v)", v, st, err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("key poisoned: lookup after panic never returned")
	}
}

func TestCacheConcurrentMixedKeys(t *testing.T) {
	// Race-detector stress: many goroutines over a small keyspace with
	// eviction pressure and periodic purges.
	c := NewCache(8)
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (w*7+i)%24)
				v, _, err := c.GetOrCompute(ctx, key, func() (any, error) { return key, nil })
				if err != nil {
					t.Errorf("lookup %s: %v", key, err)
					return
				}
				if v.(string) != key {
					t.Errorf("lookup %s returned %v", key, v)
					return
				}
				if i%50 == 49 {
					c.Purge()
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestPoolBoundsConcurrency(t *testing.T) {
	const size = 3
	p := NewPool(size)
	var cur, peak atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := p.Run(context.Background(), func() error {
				n := cur.Add(1)
				for {
					old := peak.Load()
					if n <= old || peak.CompareAndSwap(old, n) {
						break
					}
				}
				time.Sleep(time.Millisecond)
				cur.Add(-1)
				return nil
			})
			if err != nil {
				t.Errorf("pool run: %v", err)
			}
		}()
	}
	wg.Wait()
	if got := peak.Load(); got > size {
		t.Fatalf("peak concurrency %d exceeds pool size %d", got, size)
	}
}

func TestPoolRespectsContextWhileQueued(t *testing.T) {
	p := NewPool(1)
	block := make(chan struct{})
	go p.Run(context.Background(), func() error { <-block; return nil })
	for p.InFlight() == 0 {
		time.Sleep(time.Millisecond)
	}
	defer close(block)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	err := p.Run(ctx, func() error {
		t.Error("ran despite expired context")
		return nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
}
