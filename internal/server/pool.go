package server

import "context"

// Pool is a bounded worker pool: at most size query computations run at
// once, so a burst of heavy RWR/PHP power iterations queues instead of
// exhausting the host. Waiting respects the request context, so a client
// that times out while queued never occupies a slot.
type Pool struct {
	sem chan struct{}
}

// NewPool returns a pool admitting size concurrent computations (minimum 1).
func NewPool(size int) *Pool {
	if size < 1 {
		size = 1
	}
	return &Pool{sem: make(chan struct{}, size)}
}

// Run executes fn once a worker slot is free, or returns ctx's error if the
// context is cancelled while waiting.
//
//pegasus:hotpath pooled compute: every query computation funnels through here
func (p *Pool) Run(ctx context.Context, fn func() error) error {
	select {
	case p.sem <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	}
	defer func() { <-p.sem }()
	if err := ctx.Err(); err != nil {
		return err
	}
	return fn()
}

// InFlight returns the number of currently occupied worker slots.
func (p *Pool) InFlight() int { return len(p.sem) }

// Size returns the pool capacity.
func (p *Pool) Size() int { return cap(p.sem) }
