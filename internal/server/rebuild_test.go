package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"pegasus/internal/gen"
)

// TestConcurrentRebuildWhileServing hammers the query endpoints while
// POST /v1/summarize rebuilds the backend concurrently — the hot-rebuild
// path of the tentpole. Every response must be coherent (a valid answer
// against some complete backend generation), and the generation must have
// advanced by exactly the number of rebuilds. Run with -race.
func TestConcurrentRebuildWhileServing(t *testing.T) {
	g := gen.PlantedPartition(gen.SBMConfig{Nodes: 200, Communities: 4, AvgDegree: 8, MixingP: 0.05}, 3)
	s, err := New(context.Background(), g, Config{
		Shards:          2,
		PartitionMethod: "random",
		BudgetRatio:     0.6,
		Seed:            1,
		BuildWorkers:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	const rebuilds = 3
	const queriers = 4
	var wg sync.WaitGroup
	errc := make(chan error, queriers*64+rebuilds)

	stop := make(chan struct{})
	for q := 0; q < queriers; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				node := (q*31 + i*7) % g.NumNodes()
				res, raw := postJSON(t, h, "/v1/query/rwr", map[string]any{"node": node})
				if res.StatusCode != 200 {
					errc <- fmt.Errorf("query during rebuild: status %d: %s", res.StatusCode, raw)
					return
				}
				var qr QueryResponse
				if err := json.Unmarshal(raw, &qr); err != nil {
					errc <- fmt.Errorf("bad query response: %v", err)
					return
				}
				if len(qr.Scores) != g.NumNodes() {
					errc <- fmt.Errorf("scores length %d, want %d", len(qr.Scores), g.NumNodes())
					return
				}
			}
		}(q)
	}

	for r := 0; r < rebuilds; r++ {
		budget := 0.5 + 0.1*float64(r)
		res, raw := postJSON(t, h, "/v1/summarize", map[string]any{"budget_ratio": budget})
		if res.StatusCode != 200 {
			errc <- fmt.Errorf("rebuild %d: status %d: %s", r, res.StatusCode, raw)
		}
	}
	close(stop)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	res, raw := do(t, h, httptest.NewRequest("GET", "/healthz", nil))
	if res.StatusCode != 200 {
		t.Fatalf("healthz after rebuilds: %d", res.StatusCode)
	}
	var hr healthResponse
	decodeInto(t, raw, &hr)
	if hr.Generation != 1+rebuilds {
		t.Errorf("generation = %d, want %d", hr.Generation, 1+rebuilds)
	}
}

// TestRebuildCancelledByClient: a summarize request whose context dies
// mid-build must abort the build and leave the old backend serving.
func TestRebuildCancelledByClient(t *testing.T) {
	g := gen.PlantedPartition(gen.SBMConfig{Nodes: 200, Communities: 4, AvgDegree: 8, MixingP: 0.05}, 4)
	s, err := New(context.Background(), g, Config{Shards: 2, BudgetRatio: 0.5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	genBefore := s.current().gen

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest("POST", "/v1/summarize",
		strings.NewReader(`{"budget_ratio":0.4}`)).WithContext(ctx)
	res, raw := do(t, s.Handler(), req)
	if res.StatusCode == 200 {
		t.Fatalf("cancelled rebuild returned 200: %s", raw)
	}
	if got := s.current().gen; got != genBefore {
		t.Errorf("generation advanced to %d after a cancelled rebuild", got)
	}
	// The server still answers queries on the old backend.
	res, _ = postJSON(t, s.Handler(), "/v1/query/rwr", map[string]any{"node": 1})
	if res.StatusCode != 200 {
		t.Errorf("query after cancelled rebuild: status %d", res.StatusCode)
	}
}

// TestBuildWorkersValidation guards the new ServerConfig field.
func TestBuildWorkersValidation(t *testing.T) {
	g := gen.PlantedPartition(gen.SBMConfig{Nodes: 60, Communities: 2, AvgDegree: 6, MixingP: 0.1}, 5)
	if _, err := New(context.Background(), g, Config{BuildWorkers: -2}); err == nil {
		t.Error("negative BuildWorkers accepted")
	}
	s, err := New(context.Background(), g, Config{BuildWorkers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Config().BuildWorkers; got != 3 {
		t.Errorf("BuildWorkers = %d, want 3", got)
	}
}
