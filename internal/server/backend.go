package server

import (
	"context"
	"fmt"

	"pegasus/internal/core"
	"pegasus/internal/distributed"
	"pegasus/internal/graph"
	"pegasus/internal/partition"
	"pegasus/internal/persist"
	"pegasus/internal/queries"
	"pegasus/internal/summary"
)

// backend answers queries against the serving artifact: either one
// personalized summary (single-shard) or a distributed.Cluster whose routing
// table sends each query node to the machine owning it (§IV). Backends are
// immutable after construction; POST /v1/summarize builds a replacement and
// the server swaps the pointer.
type backend interface {
	numNodes() int
	numShards() int
	// shard returns the shard owning query node q (always 0 when unsharded).
	shard(q graph.NodeID) (int, error)
	// reports describes each shard's summary artifact.
	reports() []summary.Report
	// session returns a query session over the given shard's artifact. A
	// session shares the RWR/PHP precompute (weighted degrees) and iteration
	// scratch across calls — the amortization the batch endpoint exploits —
	// and is NOT safe for concurrent use; callers create one per goroutine
	// (cheap until first use).
	session(shard int) (queries.Session, error)
	hop(q graph.NodeID) ([]int32, error)
	// pagerank runs over the artifact of the given shard.
	pagerank(shard int, cfg queries.PageRankConfig) ([]float64, error)
}

// summaryBackend serves every query from one summary graph.
type summaryBackend struct {
	s *summary.Summary
}

func (b *summaryBackend) numNodes() int             { return b.s.NumNodes() }
func (b *summaryBackend) numShards() int            { return 1 }
func (b *summaryBackend) reports() []summary.Report { return []summary.Report{b.s.Describe()} }

func (b *summaryBackend) shard(q graph.NodeID) (int, error) {
	if int(q) >= b.s.NumNodes() {
		return 0, fmt.Errorf("server: query node %d out of range (|V|=%d)", q, b.s.NumNodes())
	}
	return 0, nil
}

func (b *summaryBackend) session(int) (queries.Session, error) {
	return queries.NewSummarySession(b.s), nil
}

func (b *summaryBackend) hop(q graph.NodeID) ([]int32, error) {
	return queries.SummaryHOP(b.s, q)
}

func (b *summaryBackend) pagerank(_ int, cfg queries.PageRankConfig) ([]float64, error) {
	return pageRankChecked(queries.SummaryOracle{S: b.s}, cfg)
}

// clusterBackend routes each query to the machine owning the query node and
// answers it there — the communication-free serving scheme of §IV.
type clusterBackend struct {
	c *distributed.Cluster
}

func (b *clusterBackend) numNodes() int  { return len(b.c.Assign) }
func (b *clusterBackend) numShards() int { return len(b.c.Machines) }

func (b *clusterBackend) shard(q graph.NodeID) (int, error) {
	i, err := b.c.Route(q)
	if err != nil {
		return 0, err
	}
	return int(i), nil
}

func (b *clusterBackend) reports() []summary.Report {
	out := make([]summary.Report, len(b.c.Machines))
	for i, m := range b.c.Machines {
		if m.Summary != nil {
			out[i] = m.Summary.Describe()
		}
	}
	return out
}

func (b *clusterBackend) session(shard int) (queries.Session, error) {
	if shard < 0 || shard >= len(b.c.Machines) {
		return nil, fmt.Errorf("server: shard %d out of range (m=%d)", shard, len(b.c.Machines))
	}
	return b.c.Machines[shard].NewSession(), nil
}

func (b *clusterBackend) hop(q graph.NodeID) ([]int32, error) {
	m, err := b.c.RouteMachine(q)
	if err != nil {
		return nil, err
	}
	return m.HOP(q)
}

func (b *clusterBackend) pagerank(shard int, cfg queries.PageRankConfig) ([]float64, error) {
	if shard < 0 || shard >= len(b.c.Machines) {
		return nil, fmt.Errorf("server: shard %d out of range (m=%d)", shard, len(b.c.Machines))
	}
	return pageRankChecked(b.c.Machines[shard].Oracle(), cfg)
}

// pageRankChecked runs PageRank and surfaces a context cancellation as an
// error (PageRank itself returns the partial vector on cancellation).
func pageRankChecked(o queries.Oracle, cfg queries.PageRankConfig) ([]float64, error) {
	r := queries.PageRank(o, cfg)
	if cfg.Ctx != nil {
		if err := cfg.Ctx.Err(); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// buildBackend constructs the serving artifact: a single summary
// personalized to cfg.Targets, or — when cfg.Shards >= 2 — an Alg. 3
// cluster where shard i holds a summary personalized to partition part i
// (restricted to cfg.Targets ∩ part i when targets are set).
// cfg.BuildWorkers bounds the build parallelism (concurrent shard builds
// plus the engine's internal pipeline) and ctx cancels summarization
// mid-build — a disconnected POST /v1/summarize client stops burning CPU.
//
// The build is incremental: each shard gets a content key — a fingerprint
// of (graph, resolved target set, budget share, workers-independent config)
// — and shards whose key matches a shard of prev transplant that artifact
// instead of rebuilding (equal keys imply bit-identical summaries, see
// internal/distributed). A non-nil store adds the disk tier: shards not
// satisfied by prev decode their artifact from the store when filed there,
// and freshly built shards are persisted back — a restart with a populated
// cache dir builds nothing. Returned alongside the backend: the per-shard
// keys and the rebuilt/reused/loaded stats. graphToken is the cached
// distributed.GraphToken of g.
func buildBackend(ctx context.Context, g *graph.Graph, cfg Config, graphToken string, prev *backendBox, store *persist.Store) (backend, []string, distributed.BuildStats, error) {
	budgetBits := cfg.BudgetRatio * g.SizeBits()
	if cfg.Shards <= 1 {
		return buildSingle(ctx, g, cfg, budgetBits, graphToken, prev, store)
	}
	// Split the worker budget between the two levels of parallelism: up to
	// BuildWorkers shard builds in flight, each engine using the leftover
	// share, so the build never runs more than ~BuildWorkers goroutines.
	// The artifact is identical for any split (the pipeline is
	// worker-count invariant).
	concurrentShards := cfg.BuildWorkers
	if concurrentShards > cfg.Shards {
		concurrentShards = cfg.Shards
	}
	perEngine := cfg.BuildWorkers / concurrentShards
	if perEngine < 1 {
		perEngine = 1
	}
	base := core.Config{Alpha: cfg.Alpha, Seed: cfg.Seed, Workers: perEngine,
		LSHBands: cfg.LSHBands, LSHRows: cfg.LSHRows}
	// The partition depends only on (graph, Shards, PartitionMethod, Seed),
	// none of which /v1/summarize can change, so labels — and with them the
	// node→shard routing — are stable across hot rebuilds.
	labels := partition.Partition(g, cfg.Shards, partition.Method(cfg.PartitionMethod), cfg.Seed)
	cfgKey, _ := base.ContentKey() // server configs never set Threshold, but stay safe
	var prevCluster *distributed.Cluster
	if prev != nil {
		if cb, ok := prev.be.(*clusterBackend); ok {
			prevCluster = cb.c
		}
	}
	c, stats, err := distributed.BuildSummaryClusterCtx(ctx, g, labels, cfg.Shards, budgetBits,
		distributed.PegasusSummarizer(base), distributed.BuildOpts{
			Workers:    cfg.BuildWorkers,
			Targets:    cfg.Targets,
			ConfigKey:  cfgKey,
			GraphToken: graphToken,
			Prev:       prevCluster,
			Store:      store,
		})
	if err != nil {
		return nil, nil, stats, fmt.Errorf("server: build cluster: %w", err)
	}
	return &clusterBackend{c: c}, c.Keys, stats, nil
}

// buildSingle is the unsharded arm of buildBackend: one summary, treated as
// a 1-shard cluster for content-key purposes so no-op rebuilds reuse it and
// a configured store can warm-start it from disk.
func buildSingle(ctx context.Context, g *graph.Graph, cfg Config, budgetBits float64, graphToken string, prev *backendBox, store *persist.Store) (backend, []string, distributed.BuildStats, error) {
	ccfg := core.Config{
		Targets:    cfg.Targets,
		Alpha:      cfg.Alpha,
		Seed:       cfg.Seed,
		BudgetBits: budgetBits,
		Workers:    cfg.BuildWorkers,
		LSHBands:   cfg.LSHBands,
		LSHRows:    cfg.LSHRows,
	}
	stats := distributed.BuildStats{ReusedShards: make([]bool, 1), LoadedShards: make([]bool, 1)}
	var keys []string
	if ck, ok := ccfg.ContentKey(); ok {
		keys = []string{distributed.ShardKey(graphToken, cfg.Targets, budgetBits, ck)}
		if prev != nil && len(prev.keys) == 1 && prev.keys[0] == keys[0] {
			if sb, ok := prev.be.(*summaryBackend); ok {
				stats.Reused = 1
				stats.ReusedShards[0] = true
				return sb, keys, stats, nil
			}
		}
		if store != nil {
			if a, ok, _ := store.Get(keys[0]); ok && a.Summary != nil && a.Summary.NumNodes() == g.NumNodes() {
				stats.Loaded = 1
				stats.LoadedShards[0] = true
				return &summaryBackend{s: a.Summary}, keys, stats, nil
			}
		}
	}
	res, err := core.SummarizeCtx(ctx, g, ccfg)
	if err != nil {
		return nil, nil, stats, fmt.Errorf("server: summarize: %w", err)
	}
	stats.Rebuilt = 1
	if store != nil && len(keys) == 1 {
		_ = store.Put(keys[0], persist.Artifact{Summary: res.Summary}) // best-effort; store counts failures
	}
	return &summaryBackend{s: res.Summary}, keys, stats, nil
}
