package server

import (
	"context"
	"fmt"

	"pegasus/internal/core"
	"pegasus/internal/distributed"
	"pegasus/internal/graph"
	"pegasus/internal/partition"
	"pegasus/internal/queries"
	"pegasus/internal/summary"
)

// backend answers queries against the serving artifact: either one
// personalized summary (single-shard) or a distributed.Cluster whose routing
// table sends each query node to the machine owning it (§IV). Backends are
// immutable after construction; POST /v1/summarize builds a replacement and
// the server swaps the pointer.
type backend interface {
	numNodes() int
	numShards() int
	// shard returns the shard owning query node q (always 0 when unsharded).
	shard(q graph.NodeID) (int, error)
	// reports describes each shard's summary artifact.
	reports() []summary.Report
	// session returns a query session over the given shard's artifact. A
	// session shares the RWR/PHP precompute (weighted degrees) and iteration
	// scratch across calls — the amortization the batch endpoint exploits —
	// and is NOT safe for concurrent use; callers create one per goroutine
	// (cheap until first use).
	session(shard int) (queries.Session, error)
	hop(q graph.NodeID) ([]int32, error)
	// pagerank runs over the artifact of the given shard.
	pagerank(shard int, cfg queries.PageRankConfig) ([]float64, error)
}

// summaryBackend serves every query from one summary graph.
type summaryBackend struct {
	s *summary.Summary
}

func (b *summaryBackend) numNodes() int             { return b.s.NumNodes() }
func (b *summaryBackend) numShards() int            { return 1 }
func (b *summaryBackend) reports() []summary.Report { return []summary.Report{b.s.Describe()} }

func (b *summaryBackend) shard(q graph.NodeID) (int, error) {
	if int(q) >= b.s.NumNodes() {
		return 0, fmt.Errorf("server: query node %d out of range (|V|=%d)", q, b.s.NumNodes())
	}
	return 0, nil
}

func (b *summaryBackend) session(int) (queries.Session, error) {
	return queries.NewSummarySession(b.s), nil
}

func (b *summaryBackend) hop(q graph.NodeID) ([]int32, error) {
	return queries.SummaryHOP(b.s, q)
}

func (b *summaryBackend) pagerank(_ int, cfg queries.PageRankConfig) ([]float64, error) {
	return pageRankChecked(queries.SummaryOracle{S: b.s}, cfg)
}

// clusterBackend routes each query to the machine owning the query node and
// answers it there — the communication-free serving scheme of §IV.
type clusterBackend struct {
	c *distributed.Cluster
}

func (b *clusterBackend) numNodes() int  { return len(b.c.Assign) }
func (b *clusterBackend) numShards() int { return len(b.c.Machines) }

func (b *clusterBackend) shard(q graph.NodeID) (int, error) {
	i, err := b.c.Route(q)
	if err != nil {
		return 0, err
	}
	return int(i), nil
}

func (b *clusterBackend) reports() []summary.Report {
	out := make([]summary.Report, len(b.c.Machines))
	for i, m := range b.c.Machines {
		if m.Summary != nil {
			out[i] = m.Summary.Describe()
		}
	}
	return out
}

func (b *clusterBackend) session(shard int) (queries.Session, error) {
	if shard < 0 || shard >= len(b.c.Machines) {
		return nil, fmt.Errorf("server: shard %d out of range (m=%d)", shard, len(b.c.Machines))
	}
	return b.c.Machines[shard].NewSession(), nil
}

func (b *clusterBackend) hop(q graph.NodeID) ([]int32, error) {
	m, err := b.c.RouteMachine(q)
	if err != nil {
		return nil, err
	}
	return m.HOP(q)
}

func (b *clusterBackend) pagerank(shard int, cfg queries.PageRankConfig) ([]float64, error) {
	if shard < 0 || shard >= len(b.c.Machines) {
		return nil, fmt.Errorf("server: shard %d out of range (m=%d)", shard, len(b.c.Machines))
	}
	return pageRankChecked(b.c.Machines[shard].Oracle(), cfg)
}

// pageRankChecked runs PageRank and surfaces a context cancellation as an
// error (PageRank itself returns the partial vector on cancellation).
func pageRankChecked(o queries.Oracle, cfg queries.PageRankConfig) ([]float64, error) {
	r := queries.PageRank(o, cfg)
	if cfg.Ctx != nil {
		if err := cfg.Ctx.Err(); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// buildBackend constructs the serving artifact: a single summary
// personalized to cfg.Targets, or — when cfg.Shards >= 2 — an Alg. 3
// cluster where shard i holds a summary personalized to partition part i.
// cfg.BuildWorkers bounds the build parallelism (concurrent shard builds
// plus the engine's internal pipeline) and ctx cancels summarization
// mid-build — a disconnected POST /v1/summarize client stops burning CPU.
func buildBackend(ctx context.Context, g *graph.Graph, cfg Config) (backend, error) {
	budgetBits := cfg.BudgetRatio * g.SizeBits()
	if cfg.Shards <= 1 {
		res, err := core.SummarizeCtx(ctx, g, core.Config{
			Targets:    cfg.Targets,
			Alpha:      cfg.Alpha,
			Seed:       cfg.Seed,
			BudgetBits: budgetBits,
			Workers:    cfg.BuildWorkers,
		})
		if err != nil {
			return nil, fmt.Errorf("server: summarize: %w", err)
		}
		return &summaryBackend{s: res.Summary}, nil
	}
	// Split the worker budget between the two levels of parallelism: up to
	// BuildWorkers shard builds in flight, each engine using the leftover
	// share, so the build never runs more than ~BuildWorkers goroutines.
	// The artifact is identical for any split (the pipeline is
	// worker-count invariant).
	concurrentShards := cfg.BuildWorkers
	if concurrentShards > cfg.Shards {
		concurrentShards = cfg.Shards
	}
	perEngine := cfg.BuildWorkers / concurrentShards
	if perEngine < 1 {
		perEngine = 1
	}
	base := core.Config{Alpha: cfg.Alpha, Seed: cfg.Seed, Workers: perEngine}
	labels := partition.Partition(g, cfg.Shards, partition.Method(cfg.PartitionMethod), cfg.Seed)
	c, err := distributed.BuildSummaryClusterCtx(ctx, g, labels, cfg.Shards, budgetBits,
		distributed.PegasusSummarizer(base), cfg.BuildWorkers)
	if err != nil {
		return nil, fmt.Errorf("server: build cluster: %w", err)
	}
	return &clusterBackend{c: c}, nil
}
