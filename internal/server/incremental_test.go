package server

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"

	"pegasus/internal/gen"
	"pegasus/internal/graph"
)

// incrementalServer builds a fresh 4-shard server for rebuild tests (never
// the shared one: these tests mutate backend state).
func incrementalServer(t testing.TB) *Server {
	t.Helper()
	g := gen.PlantedPartition(gen.SBMConfig{Nodes: 240, Communities: 4, AvgDegree: 8, MixingP: 0.05}, 11)
	s, err := New(context.Background(), g, Config{
		Shards:          4,
		PartitionMethod: "random",
		BudgetRatio:     0.5,
		Seed:            3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// assignOf returns the node→shard table of a sharded test server.
func assignOf(t testing.TB, s *Server) []uint32 {
	t.Helper()
	cb, ok := s.current().be.(*clusterBackend)
	if !ok {
		t.Fatal("test server is not sharded")
	}
	return cb.c.Assign
}

// partialTargets returns a target list covering every node except every
// mod-th member of the given shard's part — a change whose resolved target
// set differs on exactly that shard. Different mod values give different
// resolved sets for the same shard, so consecutive rebuilds alternating
// mods each stay 1-shard changes.
func partialTargets(assign []uint32, shard uint32, mod int) []uint32 {
	var targets []uint32
	inPart := 0
	for u := range assign {
		if assign[u] == shard {
			inPart++
			if inPart%mod == 0 {
				continue
			}
		}
		targets = append(targets, uint32(u))
	}
	return targets
}

// nodeOnShard returns some node routed to the given shard.
func nodeOnShard(t testing.TB, assign []uint32, shard uint32) uint32 {
	t.Helper()
	for u, l := range assign {
		if l == shard {
			return uint32(u)
		}
	}
	t.Fatalf("no node on shard %d", shard)
	return 0
}

// TestSummarizeIncrementalReuse is the serving-layer acceptance test: a
// targets change confined to one part rebuilds exactly that shard, the
// response reports rebuilt/reused, cached answers on reused shards survive
// the rebuild (including ranked top-k entries), and answers on the rebuilt
// shard are recomputed.
func TestSummarizeIncrementalReuse(t *testing.T) {
	s := incrementalServer(t)
	h := s.Handler()
	assign := assignOf(t, s)
	changed, kept := uint32(0), uint32(1)
	nodeChanged := nodeOnShard(t, assign, changed)
	nodeKept := nodeOnShard(t, assign, kept)

	// Warm the cache on both shards: plain RWR plus a ranked top-k answer.
	for _, n := range []uint32{nodeChanged, nodeKept} {
		res, raw := postJSON(t, h, "/v1/query/rwr", map[string]any{"node": n})
		if res.StatusCode != 200 {
			t.Fatalf("warm rwr: %d: %s", res.StatusCode, raw)
		}
		res, raw = postJSON(t, h, "/v1/query/topk", map[string]any{"node": n, "k": 5})
		if res.StatusCode != 200 {
			t.Fatalf("warm topk: %d: %s", res.StatusCode, raw)
		}
	}

	res, raw := postJSON(t, h, "/v1/summarize",
		map[string]any{"targets": partialTargets(assign, changed, 2)})
	if res.StatusCode != 200 {
		t.Fatalf("summarize: %d: %s", res.StatusCode, raw)
	}
	var sr SummarizeResponse
	decodeInto(t, raw, &sr)
	if sr.Rebuilt != 1 || sr.Reused != 3 {
		t.Fatalf("rebuilt=%d reused=%d, want 1/3", sr.Rebuilt, sr.Reused)
	}
	if sr.Generation != 2 {
		t.Errorf("generation = %d, want 2", sr.Generation)
	}

	// Reused shard: both the score vector and the ranked answer still hit.
	var qr QueryResponse
	res, raw = postJSON(t, h, "/v1/query/rwr", map[string]any{"node": nodeKept})
	decodeInto(t, raw, &qr)
	if res.StatusCode != 200 || !qr.Cached {
		t.Errorf("rwr on reused shard after rebuild: status %d cached %v, want 200 cached", res.StatusCode, qr.Cached)
	}
	res, raw = postJSON(t, h, "/v1/query/topk", map[string]any{"node": nodeKept, "k": 5})
	decodeInto(t, raw, &qr)
	if res.StatusCode != 200 || !qr.Cached {
		t.Errorf("topk on reused shard after rebuild: status %d cached %v, want 200 cached", res.StatusCode, qr.Cached)
	}
	// Rebuilt shard: the old entry is unreachable; the query recomputes.
	res, raw = postJSON(t, h, "/v1/query/rwr", map[string]any{"node": nodeChanged})
	decodeInto(t, raw, &qr)
	if res.StatusCode != 200 {
		t.Fatalf("rwr on rebuilt shard: %d: %s", res.StatusCode, raw)
	}
	if qr.Cached {
		t.Error("rwr on the rebuilt shard served a stale cache entry")
	}

	// Metrics reflect the rebuild.
	res, raw = do(t, h, httptest.NewRequest("GET", "/metrics", nil))
	if res.StatusCode != 200 {
		t.Fatalf("metrics: %d", res.StatusCode)
	}
	var snap Snapshot
	decodeInto(t, raw, &snap)
	if snap.Rebuild.Count != 1 || snap.Rebuild.ShardsRebuilt != 1 || snap.Rebuild.ShardsReused != 3 {
		t.Errorf("rebuild metrics = %+v, want count 1, rebuilt 1, reused 3", snap.Rebuild)
	}
}

// TestSummarizeMinimalTargetsRebuildsOneShard pins the doc.go/API.md
// quick-start: POSTing a couple of targets that live in one part — without
// enumerating the rest of the graph — rebuilds exactly that shard, because
// parts the request does not touch keep their whole-part personalization.
func TestSummarizeMinimalTargetsRebuildsOneShard(t *testing.T) {
	s := incrementalServer(t)
	h := s.Handler()
	assign := assignOf(t, s)
	var targets []uint32
	for u, l := range assign {
		if l == 3 && len(targets) < 2 {
			targets = append(targets, uint32(u))
		}
	}
	res, raw := postJSON(t, h, "/v1/summarize", map[string]any{"targets": targets})
	if res.StatusCode != 200 {
		t.Fatalf("summarize: %d: %s", res.StatusCode, raw)
	}
	var sr SummarizeResponse
	decodeInto(t, raw, &sr)
	if sr.Rebuilt != 1 || sr.Reused != 3 {
		t.Errorf("minimal targets: rebuilt=%d reused=%d, want 1/3", sr.Rebuilt, sr.Reused)
	}
}

// TestSummarizeNoopAllReused: a summarize request that changes nothing
// reports reused == m and rebuilds no shard (the generation still advances
// — a rebuild happened, even if it cost nothing).
func TestSummarizeNoopAllReused(t *testing.T) {
	s := incrementalServer(t)
	h := s.Handler()
	res, raw := postJSON(t, h, "/v1/summarize", map[string]any{})
	if res.StatusCode != 200 {
		t.Fatalf("noop summarize: %d: %s", res.StatusCode, raw)
	}
	var sr SummarizeResponse
	decodeInto(t, raw, &sr)
	if sr.Rebuilt != 0 || sr.Reused != 4 {
		t.Errorf("noop: rebuilt=%d reused=%d, want 0/4", sr.Rebuilt, sr.Reused)
	}
	if sr.Generation != 2 {
		t.Errorf("generation = %d, want 2", sr.Generation)
	}
}

// TestSummarizeSingleShardReuse: the unsharded server is a 1-shard cluster
// for reuse purposes — a no-op reuses the summary, a targets change
// rebuilds it.
func TestSummarizeSingleShardReuse(t *testing.T) {
	g := gen.PlantedPartition(gen.SBMConfig{Nodes: 150, Communities: 3, AvgDegree: 8, MixingP: 0.05}, 12)
	s, err := New(context.Background(), g, Config{BudgetRatio: 0.5, Seed: 4, Targets: []graph.NodeID{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	var sr SummarizeResponse
	_, raw := postJSON(t, h, "/v1/summarize", map[string]any{})
	decodeInto(t, raw, &sr)
	if sr.Rebuilt != 0 || sr.Reused != 1 {
		t.Errorf("noop: rebuilt=%d reused=%d, want 0/1", sr.Rebuilt, sr.Reused)
	}
	_, raw = postJSON(t, h, "/v1/summarize", map[string]any{"targets": []uint32{1, 2}})
	decodeInto(t, raw, &sr)
	if sr.Rebuilt != 1 || sr.Reused != 0 {
		t.Errorf("targets change: rebuilt=%d reused=%d, want 1/0", sr.Rebuilt, sr.Reused)
	}
}

// TestBatchQueriesRacingPartialRebuild hammers the batch endpoint while
// partial rebuilds (each changing one part's targets) swap the backend —
// the tentpole's hot path under -race. Every batch must be coherent:
// 200 responses, every item either a valid result or a per-item error.
func TestBatchQueriesRacingPartialRebuild(t *testing.T) {
	s := incrementalServer(t)
	h := s.Handler()
	assign := assignOf(t, s)
	n := len(assign)

	const rebuilds = 4
	const batchers = 4
	stop := make(chan struct{})
	errc := make(chan error, batchers+rebuilds)
	var wg sync.WaitGroup
	for b := 0; b < batchers; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				nodes := []uint32{
					uint32((b*17 + i*3) % n),
					uint32((b*29 + i*7) % n),
					uint32((b*41 + i*11) % n),
				}
				res, raw := postJSON(t, h, "/v1/query/batch",
					map[string]any{"kind": "rwr", "nodes": nodes})
				if res.StatusCode != 200 {
					errc <- fmt.Errorf("batch during rebuild: %d: %s", res.StatusCode, raw)
					return
				}
				var br BatchResponse
				decodeInto(t, raw, &br)
				for _, it := range br.Items {
					if it.Error == "" && len(it.Scores) != n {
						errc <- fmt.Errorf("item for node %d: %d scores, want %d", it.Node, len(it.Scores), n)
						return
					}
				}
			}
		}(b)
	}

	for r := 0; r < rebuilds; r++ {
		// Alternate two different target sets confined to part 0, so every
		// rebuild is partial (rebuilt == 1) and actually flips the backend.
		res, raw := postJSON(t, h, "/v1/summarize",
			map[string]any{"targets": partialTargets(assign, 0, 2+r%2)})
		if res.StatusCode != 200 {
			errc <- fmt.Errorf("rebuild %d: %d: %s", r, res.StatusCode, raw)
			continue
		}
		var sr SummarizeResponse
		decodeInto(t, raw, &sr)
		if sr.Rebuilt != 1 {
			errc <- fmt.Errorf("rebuild %d rebuilt %d shards, want 1", r, sr.Rebuilt)
		}
	}
	close(stop)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
