package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"pegasus/internal/gen"
	"pegasus/internal/graph"
	"pegasus/internal/queries"
)

// fp builds the optional float parameters of QueryParams.
func fp(v float64) *float64 { return &v }

func testGraph() *graph.Graph {
	return gen.PlantedPartition(gen.SBMConfig{
		Nodes: 300, Communities: 4, AvgDegree: 8, MixingP: 0.05,
	}, 7)
}

// sharedSrv is a 2-shard server reused by read-only endpoint tests (building
// one runs summarization per shard, so tests share it). Tests that mutate
// server state (re-summarize) construct their own.
var (
	sharedOnce sync.Once
	sharedSrv  *Server
	sharedErr  error
)

func testServer(t testing.TB) *Server {
	t.Helper()
	sharedOnce.Do(func() {
		sharedSrv, sharedErr = New(context.Background(), testGraph(), Config{
			Shards:          2,
			PartitionMethod: "random",
			BudgetRatio:     0.5,
			Seed:            7,
		})
	})
	if sharedErr != nil {
		t.Fatalf("build shared server: %v", sharedErr)
	}
	return sharedSrv
}

func postJSON(t testing.TB, h http.Handler, path string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	return do(t, h, httptest.NewRequest("POST", path, bytes.NewReader(raw)))
}

func do(t testing.TB, h http.Handler, req *http.Request) (*http.Response, []byte) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	res := rec.Result()
	raw, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return res, raw
}

func decodeInto(t testing.TB, raw []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(raw, v); err != nil {
		t.Fatalf("decode %q: %v", raw, err)
	}
}

// TestRWRMatchesShardSummary is the acceptance check: an RWR query for a
// node on each shard must return exactly the scores SummaryRWR produces on
// that shard's own summary.
func TestRWRMatchesShardSummary(t *testing.T) {
	s := testServer(t)
	h := s.Handler()
	cb := s.current().be.(*clusterBackend)

	queried := make(map[int]bool)
	for q := 0; q < len(cb.c.Assign) && len(queried) < cb.numShards(); q++ {
		shard := int(cb.c.Assign[q])
		if queried[shard] {
			continue
		}
		queried[shard] = true

		res, raw := postJSON(t, h, "/v1/query/rwr", QueryRequest{Node: uint32(q)})
		if res.StatusCode != http.StatusOK {
			t.Fatalf("node %d: status %d: %s", q, res.StatusCode, raw)
		}
		var resp QueryResponse
		decodeInto(t, raw, &resp)
		if resp.Shard != shard {
			t.Errorf("node %d routed to shard %d, want %d", q, resp.Shard, shard)
		}
		want, err := queries.SummaryRWR(cb.c.Machines[shard].Summary, graph.NodeID(q), queries.RWRConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Scores) != len(want) {
			t.Fatalf("node %d: %d scores, want %d", q, len(resp.Scores), len(want))
		}
		for i := range want {
			if math.Abs(resp.Scores[i]-want[i]) > 1e-12 {
				t.Fatalf("node %d: score[%d] = %g, want %g", q, i, resp.Scores[i], want[i])
			}
		}
	}
	if len(queried) != cb.numShards() {
		t.Fatalf("exercised %d shards, want %d", len(queried), cb.numShards())
	}
}

func TestHOPEndpoint(t *testing.T) {
	s := testServer(t)
	res, raw := postJSON(t, s.Handler(), "/v1/query/hop", QueryRequest{Node: 3})
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", res.StatusCode, raw)
	}
	var resp QueryResponse
	decodeInto(t, raw, &resp)
	if len(resp.Dist) != s.current().be.numNodes() {
		t.Fatalf("%d distances, want %d", len(resp.Dist), s.current().be.numNodes())
	}
	if resp.Dist[3] != 0 {
		t.Errorf("dist[q] = %d, want 0", resp.Dist[3])
	}
}

func TestPHPEndpoint(t *testing.T) {
	s := testServer(t)
	res, raw := postJSON(t, s.Handler(), "/v1/query/php", QueryRequest{Node: 5})
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", res.StatusCode, raw)
	}
	var resp QueryResponse
	decodeInto(t, raw, &resp)
	if len(resp.Scores) == 0 || resp.Scores[5] != 1 {
		t.Fatalf("php scores: len %d, scores[q]=%v, want scores[q]=1", len(resp.Scores), resp.Scores[5])
	}
}

func TestPageRankEndpoint(t *testing.T) {
	s := testServer(t)
	res, raw := postJSON(t, s.Handler(), "/v1/query/pagerank", QueryRequest{Node: 0})
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", res.StatusCode, raw)
	}
	var resp QueryResponse
	decodeInto(t, raw, &resp)
	sum := 0.0
	for _, v := range resp.Scores {
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("pagerank mass %v, want ~1", sum)
	}
}

func TestTopKEndpoint(t *testing.T) {
	s := testServer(t)
	res, raw := postJSON(t, s.Handler(), "/v1/query/topk", QueryRequest{Node: 9, QueryParams: QueryParams{K: 5}})
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", res.StatusCode, raw)
	}
	var resp QueryResponse
	decodeInto(t, raw, &resp)
	if len(resp.Top) != 5 {
		t.Fatalf("%d top entries, want 5", len(resp.Top))
	}
	for i := 1; i < len(resp.Top); i++ {
		if resp.Top[i].Score > resp.Top[i-1].Score {
			t.Fatalf("top not sorted: %v", resp.Top)
		}
	}
	if resp.Top[0].Node != 9 {
		t.Errorf("top-1 is node %d, want the query node 9", resp.Top[0].Node)
	}
}

func TestBadRequests(t *testing.T) {
	s := testServer(t)
	h := s.Handler()
	n := s.current().be.numNodes()

	cases := []struct {
		name string
		req  func() *http.Request
		want int
	}{
		{"unknown kind", func() *http.Request {
			return httptest.NewRequest("POST", "/v1/query/bogus", bytes.NewReader([]byte(`{"node":1}`)))
		}, http.StatusNotFound},
		{"wrong method", func() *http.Request {
			return httptest.NewRequest("GET", "/v1/query/rwr", nil)
		}, http.StatusMethodNotAllowed},
		{"malformed body", func() *http.Request {
			return httptest.NewRequest("POST", "/v1/query/rwr", bytes.NewReader([]byte(`{"node":`)))
		}, http.StatusBadRequest},
		{"unknown field", func() *http.Request {
			return httptest.NewRequest("POST", "/v1/query/rwr", bytes.NewReader([]byte(`{"nodeid":1}`)))
		}, http.StatusBadRequest},
		{"node out of range", func() *http.Request {
			body, _ := json.Marshal(QueryRequest{Node: uint32(n)})
			return httptest.NewRequest("POST", "/v1/query/rwr", bytes.NewReader(body))
		}, http.StatusBadRequest},
		{"bad topk metric", func() *http.Request {
			return httptest.NewRequest("POST", "/v1/query/topk", bytes.NewReader([]byte(`{"node":1,"metric":"degree"}`)))
		}, http.StatusBadRequest},
		{"negative k", func() *http.Request {
			return httptest.NewRequest("POST", "/v1/query/topk", bytes.NewReader([]byte(`{"node":1,"k":-3}`)))
		}, http.StatusBadRequest},
		{"oversized k", func() *http.Request {
			return httptest.NewRequest("POST", "/v1/query/topk", bytes.NewReader([]byte(`{"node":1,"k":100000}`)))
		}, http.StatusBadRequest},
		{"divergent php penalty", func() *http.Request {
			return httptest.NewRequest("POST", "/v1/query/php", bytes.NewReader([]byte(`{"node":1,"c":2}`)))
		}, http.StatusBadRequest},
		{"restart above 1", func() *http.Request {
			return httptest.NewRequest("POST", "/v1/query/rwr", bytes.NewReader([]byte(`{"node":1,"restart":1.5}`)))
		}, http.StatusBadRequest},
		{"negative eps", func() *http.Request {
			return httptest.NewRequest("POST", "/v1/query/rwr", bytes.NewReader([]byte(`{"node":1,"eps":-1}`)))
		}, http.StatusBadRequest},
		{"summarize bad alpha", func() *http.Request {
			return httptest.NewRequest("POST", "/v1/summarize", bytes.NewReader([]byte(`{"alpha":0.5}`)))
		}, http.StatusBadRequest},
		{"summarize target out of range", func() *http.Request {
			body := fmt.Sprintf(`{"targets":[%d]}`, n)
			return httptest.NewRequest("POST", "/v1/summarize", bytes.NewReader([]byte(body)))
		}, http.StatusBadRequest},
		{"report wrong method", func() *http.Request {
			return httptest.NewRequest("POST", "/v1/summary/report", nil)
		}, http.StatusMethodNotAllowed},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, raw := do(t, h, tc.req())
			if res.StatusCode != tc.want {
				t.Fatalf("status %d, want %d (%s)", res.StatusCode, tc.want, raw)
			}
		})
	}
}

func TestHealthz(t *testing.T) {
	s := testServer(t)
	res, raw := do(t, s.Handler(), httptest.NewRequest("GET", "/healthz", nil))
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status %d", res.StatusCode)
	}
	var h healthResponse
	decodeInto(t, raw, &h)
	if h.Status != "ok" || h.Shards != 2 || h.Nodes != s.g.NumNodes() {
		t.Fatalf("health %+v", h)
	}
}

func TestSummaryReport(t *testing.T) {
	s := testServer(t)
	res, raw := do(t, s.Handler(), httptest.NewRequest("GET", "/v1/summary/report", nil))
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status %d", res.StatusCode)
	}
	var rep ReportResponse
	decodeInto(t, raw, &rep)
	if len(rep.Shards) != 2 {
		t.Fatalf("%d shard reports, want 2", len(rep.Shards))
	}
	for i, r := range rep.Shards {
		if r.Nodes != s.g.NumNodes() || r.Supernodes == 0 {
			t.Errorf("shard %d report %+v", i, r)
		}
	}
}

// TestCacheHitViaMetrics is the acceptance check for the cache: repeated
// identical queries must hit, visible both in the response and in the
// /metrics hit counter.
func TestCacheHitViaMetrics(t *testing.T) {
	s := testServer(t)
	h := s.Handler()
	// A config unique to this test keeps other tests' queries out of the way.
	req := QueryRequest{Node: 11, QueryParams: QueryParams{Eps: fp(3e-9)}}

	var before Snapshot
	_, raw := do(t, h, httptest.NewRequest("GET", "/metrics", nil))
	decodeInto(t, raw, &before)

	res, raw := postJSON(t, h, "/v1/query/rwr", req)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", res.StatusCode, raw)
	}
	var first QueryResponse
	decodeInto(t, raw, &first)
	if first.Cached {
		t.Fatal("first query reported cached")
	}

	_, raw = postJSON(t, h, "/v1/query/rwr", req)
	var second QueryResponse
	decodeInto(t, raw, &second)
	if !second.Cached {
		t.Fatal("repeated identical query did not hit the cache")
	}

	var after Snapshot
	_, raw = do(t, h, httptest.NewRequest("GET", "/metrics", nil))
	decodeInto(t, raw, &after)
	if after.Cache.Hits <= before.Cache.Hits {
		t.Fatalf("cache hits did not grow: before %d, after %d", before.Cache.Hits, after.Cache.Hits)
	}
	if after.Requests <= before.Requests {
		t.Fatalf("request counter did not grow: %d -> %d", before.Requests, after.Requests)
	}
	if len(after.ShardQueries) != 2 {
		t.Fatalf("%d shard counters, want 2", len(after.ShardQueries))
	}
}

func TestConcurrentQueries(t *testing.T) {
	// Race-detector coverage of the full path: cache, singleflight, pool and
	// metrics under concurrent identical and distinct queries.
	s := testServer(t)
	h := s.Handler()
	var wg sync.WaitGroup
	for w := 0; w < 12; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				node := uint32((w * i) % 20)
				res, raw := postJSON(t, h, "/v1/query/rwr", QueryRequest{Node: node, QueryParams: QueryParams{Eps: fp(7e-9)}})
				if res.StatusCode != http.StatusOK {
					t.Errorf("worker %d: status %d: %s", w, res.StatusCode, raw)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestSummarizeRebuild exercises POST /v1/summarize: the generation bumps,
// the cache purges, and subsequent queries answer on the new artifact.
func TestSummarizeRebuild(t *testing.T) {
	g := gen.PlantedPartition(gen.SBMConfig{
		Nodes: 150, Communities: 3, AvgDegree: 6, MixingP: 0.05,
	}, 11)
	s, err := New(context.Background(), g, Config{BudgetRatio: 0.6, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	res, raw := postJSON(t, h, "/v1/query/rwr", QueryRequest{Node: 1})
	if res.StatusCode != http.StatusOK {
		t.Fatalf("priming query: status %d: %s", res.StatusCode, raw)
	}
	_, raw = postJSON(t, h, "/v1/query/rwr", QueryRequest{Node: 1})
	var warm QueryResponse
	decodeInto(t, raw, &warm)
	if !warm.Cached {
		t.Fatal("warm query not cached")
	}

	res, raw = postJSON(t, h, "/v1/summarize", map[string]any{
		"budget_ratio": 0.4, "targets": []uint32{1, 2, 3},
	})
	if res.StatusCode != http.StatusOK {
		t.Fatalf("summarize: status %d: %s", res.StatusCode, raw)
	}
	var rep ReportResponse
	decodeInto(t, raw, &rep)
	if rep.Generation != 2 {
		t.Fatalf("generation %d, want 2", rep.Generation)
	}
	if len(rep.Shards) != 1 {
		t.Fatalf("%d shard reports, want 1", len(rep.Shards))
	}

	// The cache was purged and the key namespace moved to generation 2.
	_, raw = postJSON(t, h, "/v1/query/rwr", QueryRequest{Node: 1})
	var fresh QueryResponse
	decodeInto(t, raw, &fresh)
	if fresh.Cached {
		t.Fatal("query served from a stale pre-rebuild cache entry")
	}
	if fresh.Generation != 2 {
		t.Fatalf("query generation %d, want 2", fresh.Generation)
	}
	want, err := queries.SummaryRWR(s.current().be.(*summaryBackend).s, 1, queries.RWRConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(fresh.Scores[i]-want[i]) > 1e-12 {
			t.Fatalf("score[%d] = %g, want %g (new artifact)", i, fresh.Scores[i], want[i])
		}
	}
}

func TestQueryTimeout(t *testing.T) {
	g := gen.PlantedPartition(gen.SBMConfig{
		Nodes: 150, Communities: 3, AvgDegree: 6, MixingP: 0.05,
	}, 13)
	s, err := New(context.Background(), g, Config{
		BudgetRatio:  0.6,
		Seed:         13,
		QueryTimeout: time.Nanosecond, // every power iteration query must expire
		CacheEntries: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, raw := postJSON(t, s.Handler(), "/v1/query/rwr", QueryRequest{Node: 1})
	if res.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (%s)", res.StatusCode, raw)
	}
}

// TestRunGracefulShutdown drives the real listener: serve, answer one
// request, cancel, drain.
func TestRunGracefulShutdown(t *testing.T) {
	g := gen.PlantedPartition(gen.SBMConfig{
		Nodes: 120, Communities: 3, AvgDegree: 6, MixingP: 0.05,
	}, 17)
	s, err := New(context.Background(), g, Config{Addr: "127.0.0.1:0", BudgetRatio: 0.6, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx) }()

	deadline := time.Now().Add(5 * time.Second)
	for s.Addr() == "" {
		if time.Now().After(deadline) {
			t.Fatal("server never bound a listener")
		}
		time.Sleep(time.Millisecond)
	}
	res, err := http.Get("http://" + s.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("healthz over TCP: status %d", res.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("shutdown did not complete")
	}
}
