package server

import (
	"io"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"pegasus/internal/obs"
)

// latencyLes are the histogram upper bounds of the Prometheus exposition,
// in seconds. Bucket b of the internal histogram counts latencies in
// [2^(b-1), 2^b) microseconds, so every observation in buckets 0..b is below
// 2^b µs — the cumulative bucket semantics Prometheus requires fall out of
// the existing bucketing with upper bound le = 2^b / 1e6 seconds.
var latencyLes = func() []float64 {
	les := make([]float64, histBuckets)
	for b := range les {
		les[b] = float64(uint64(1)<<uint(b)) / 1e6
	}
	return les
}()

// cumulate turns per-bucket atomic counts into the cumulative counts the
// exposition format wants, returning them plus the total.
func cumulate(hist *[histBuckets]atomic.Uint64) ([]uint64, uint64) {
	cum := make([]uint64, histBuckets)
	total := uint64(0)
	for b := 0; b < histBuckets; b++ {
		total += hist[b].Load()
		cum[b] = total
	}
	return cum, total
}

// WriteProm renders the telemetry in the Prometheus text exposition format
// (version 0.0.4). It reads the same atomics the JSON snapshot reads — the
// two views never disagree about what was counted — plus the per-endpoint
// latency histograms the JSON shape has no room for. The auxiliary gauges
// (cacheEntries, inFlight, generation, persist) come from the server for the
// same reason they do in SnapshotNow.
func (m *Metrics) WriteProm(w io.Writer, cacheEntries, inFlight int, generation uint64, persist *PersistMetrics) error {
	t := obs.NewTextWriter(w)

	t.Family("pegasus_requests_total", "counter", "HTTP requests served.")
	t.Sample("pegasus_requests_total", nil, float64(m.requests.Load()))
	t.Family("pegasus_request_errors_total", "counter", "HTTP requests answered with status >= 400.")
	t.Sample("pegasus_request_errors_total", nil, float64(m.errors.Load()))

	t.Family("pegasus_request_duration_seconds", "histogram", "Request latency across all endpoints.")
	cum, total := cumulate(&m.latency)
	t.Histogram("pegasus_request_duration_seconds", nil, latencyLes, cum, float64(m.latSum.Load())/1e6, total)

	// Per-endpoint families, endpoints in sorted order so scrapes are stable.
	m.mu.Lock()
	names := make([]string, 0, len(m.endpoints))
	for name := range m.endpoints {
		names = append(names, name)
	}
	eps := make([]*endpointStats, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		eps = append(eps, m.endpoints[name])
	}
	m.mu.Unlock()
	t.Family("pegasus_endpoint_requests_total", "counter", "Requests served per endpoint.")
	for i, name := range names {
		t.Sample("pegasus_endpoint_requests_total", []obs.Label{{Name: "endpoint", Value: name}}, float64(eps[i].count.Load()))
	}
	t.Family("pegasus_endpoint_errors_total", "counter", "Error responses (status >= 400) per endpoint.")
	for i, name := range names {
		t.Sample("pegasus_endpoint_errors_total", []obs.Label{{Name: "endpoint", Value: name}}, float64(eps[i].errors.Load()))
	}
	t.Family("pegasus_endpoint_duration_seconds", "histogram", "Request latency per endpoint.")
	for i, name := range names {
		cum, total := cumulate(&eps[i].hist)
		t.Histogram("pegasus_endpoint_duration_seconds", []obs.Label{{Name: "endpoint", Value: name}},
			latencyLes, cum, float64(eps[i].sumUs.Load())/1e6, total)
	}

	t.Family("pegasus_cache_lookups_total", "counter", "Query cache lookups by outcome (shared = singleflight-deduplicated).")
	t.Sample("pegasus_cache_lookups_total", []obs.Label{{Name: "result", Value: "hit"}}, float64(m.cacheHits.Load()))
	t.Sample("pegasus_cache_lookups_total", []obs.Label{{Name: "result", Value: "miss"}}, float64(m.cacheMisses.Load()))
	t.Sample("pegasus_cache_lookups_total", []obs.Label{{Name: "result", Value: "shared"}}, float64(m.cacheShared.Load()))
	t.Family("pegasus_cache_entries", "gauge", "Query cache entries currently stored.")
	t.Sample("pegasus_cache_entries", nil, float64(cacheEntries))

	t.Family("pegasus_batch_requests_total", "counter", "Batch query requests served.")
	t.Sample("pegasus_batch_requests_total", nil, float64(m.batches.Load()))
	t.Family("pegasus_batch_items_total", "counter", "Query nodes carried by batch requests.")
	t.Sample("pegasus_batch_items_total", nil, float64(m.batchItems.Load()))
	t.Family("pegasus_batch_shard_groups_total", "counter", "Per-shard groups batches fanned out to.")
	t.Sample("pegasus_batch_shard_groups_total", nil, float64(m.batchGroups.Load()))

	t.Family("pegasus_rebuilds_total", "counter", "Successful POST /v1/summarize rebuilds.")
	t.Sample("pegasus_rebuilds_total", nil, float64(m.rebuilds.Load()))
	t.Family("pegasus_rebuild_shards_total", "counter", "Shard outcomes across rebuilds (rebuilt from scratch, transplanted, or decoded from disk).")
	t.Sample("pegasus_rebuild_shards_total", []obs.Label{{Name: "outcome", Value: "rebuilt"}}, float64(m.shardsRebuilt.Load()))
	t.Sample("pegasus_rebuild_shards_total", []obs.Label{{Name: "outcome", Value: "reused"}}, float64(m.shardsReused.Load()))
	t.Sample("pegasus_rebuild_shards_total", []obs.Label{{Name: "outcome", Value: "loaded"}}, float64(m.shardsLoaded.Load()))

	t.Family("pegasus_shard_queries_total", "counter", "Queries routed per shard.")
	for i := range m.shards {
		t.Sample("pegasus_shard_queries_total", []obs.Label{{Name: "shard", Value: strconv.Itoa(i)}}, float64(m.shards[i].Load()))
	}

	t.Family("pegasus_inflight_queries", "gauge", "Query computations currently holding a worker-pool slot.")
	t.Sample("pegasus_inflight_queries", nil, float64(inFlight))
	t.Family("pegasus_generation", "gauge", "Backend generation (bumped by each rebuild).")
	t.Sample("pegasus_generation", nil, float64(generation))

	if persist != nil {
		t.Family("pegasus_persist_lookups_total", "counter", "Artifact-store reads by outcome.")
		t.Sample("pegasus_persist_lookups_total", []obs.Label{{Name: "result", Value: "hit"}}, float64(persist.Hits))
		t.Sample("pegasus_persist_lookups_total", []obs.Label{{Name: "result", Value: "miss"}}, float64(persist.Misses))
		t.Family("pegasus_persist_puts_total", "counter", "Artifacts written to the store.")
		t.Sample("pegasus_persist_puts_total", nil, float64(persist.Puts))
		t.Family("pegasus_persist_put_errors_total", "counter", "Failed artifact writes.")
		t.Sample("pegasus_persist_put_errors_total", nil, float64(persist.PutErrors))
		t.Family("pegasus_persist_bytes_written_total", "counter", "Encoded artifact bytes written.")
		t.Sample("pegasus_persist_bytes_written_total", nil, float64(persist.BytesWritten))
		t.Family("pegasus_persist_bytes_read_total", "counter", "Encoded artifact bytes read.")
		t.Sample("pegasus_persist_bytes_read_total", nil, float64(persist.BytesRead))
		t.Family("pegasus_persist_load_seconds_total", "counter", "Wall-clock time spent reading and decoding artifacts.")
		t.Sample("pegasus_persist_load_seconds_total", nil, persist.LoadMs/1e3)
	}

	rt := obs.ReadRuntime()
	t.Family("pegasus_goroutines", "gauge", "Goroutines currently live.")
	t.Sample("pegasus_goroutines", nil, float64(rt.Goroutines))
	t.Family("pegasus_heap_alloc_bytes", "gauge", "Heap bytes allocated and in use.")
	t.Sample("pegasus_heap_alloc_bytes", nil, float64(rt.HeapAllocBytes))
	t.Family("pegasus_heap_sys_bytes", "gauge", "Heap bytes obtained from the OS.")
	t.Sample("pegasus_heap_sys_bytes", nil, float64(rt.HeapSysBytes))
	t.Family("pegasus_heap_objects", "gauge", "Live heap objects.")
	t.Sample("pegasus_heap_objects", nil, float64(rt.HeapObjects))
	t.Family("pegasus_gc_cycles_total", "counter", "Completed GC cycles.")
	t.Sample("pegasus_gc_cycles_total", nil, float64(rt.GCCount))
	t.Family("pegasus_gc_pause_seconds_total", "counter", "Cumulative stop-the-world GC pause.")
	t.Sample("pegasus_gc_pause_seconds_total", nil, rt.GCPauseTotalMs/1e3)
	t.Family("pegasus_uptime_seconds", "gauge", "Seconds since the metrics collector started.")
	t.Sample("pegasus_uptime_seconds", nil, time.Since(m.start).Seconds())

	return t.Err()
}
