package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pegasus/internal/gen"
	"pegasus/internal/graph"
	"pegasus/internal/queries"
)

// TestBatchRWRMatchesSingles is the batch acceptance check: a cross-shard
// batch must return, per item and in request order, exactly the scores the
// single-query endpoint returns, with the routing fan-out reported.
func TestBatchRWRMatchesSingles(t *testing.T) {
	s := testServer(t)
	h := s.Handler()
	cb := s.current().be.(*clusterBackend)

	// Pick two nodes per shard so the batch exercises grouping.
	var nodes []uint32
	perShard := map[int]int{}
	for q := 0; q < len(cb.c.Assign) && len(nodes) < 2*cb.numShards(); q++ {
		sh := int(cb.c.Assign[q])
		if perShard[sh] < 2 {
			perShard[sh]++
			nodes = append(nodes, uint32(q))
		}
	}

	res, raw := postJSON(t, h, "/v1/query/batch", BatchRequest{Kind: "rwr", Nodes: nodes})
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", res.StatusCode, raw)
	}
	var resp BatchResponse
	decodeInto(t, raw, &resp)
	if resp.Kind != "rwr" || len(resp.Items) != len(nodes) {
		t.Fatalf("response kind %q with %d items, want rwr with %d", resp.Kind, len(resp.Items), len(nodes))
	}
	if resp.ShardGroups != cb.numShards() {
		t.Errorf("shard_groups = %d, want %d", resp.ShardGroups, cb.numShards())
	}
	for i, it := range resp.Items {
		if it.Node != nodes[i] {
			t.Fatalf("item %d is node %d, want %d (request order must be preserved)", i, it.Node, nodes[i])
		}
		if it.Error != "" {
			t.Fatalf("item %d (node %d) failed: %s", i, it.Node, it.Error)
		}
		if it.Shard != int(cb.c.Assign[it.Node]) {
			t.Errorf("item %d routed to shard %d, want %d", i, it.Shard, cb.c.Assign[it.Node])
		}
		want, err := queries.SummaryRWR(cb.c.Machines[it.Shard].Summary, graph.NodeID(it.Node), queries.RWRConfig{})
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if math.Abs(it.Scores[j]-want[j]) > 1e-12 {
				t.Fatalf("item %d: score[%d] = %g, want %g", i, j, it.Scores[j], want[j])
			}
		}
	}

	// The batch shares the cache with the single-query endpoint: a repeat of
	// one node as a single query must hit.
	res, raw = postJSON(t, h, "/v1/query/rwr", QueryRequest{Node: nodes[0]})
	if res.StatusCode != http.StatusOK {
		t.Fatalf("single after batch: status %d: %s", res.StatusCode, raw)
	}
	var qr QueryResponse
	decodeInto(t, raw, &qr)
	if !qr.Cached {
		t.Error("single query after an identical batch item missed the cache")
	}
}

// TestBatchMixedValidity: out-of-range nodes fail individually; the rest of
// the batch still answers (partial success, not all-or-nothing).
func TestBatchMixedValidity(t *testing.T) {
	s := testServer(t)
	n := uint32(s.current().be.numNodes())

	res, raw := postJSON(t, s.Handler(), "/v1/query/batch",
		BatchRequest{Kind: "rwr", Nodes: []uint32{3, n, 5, n + 7}})
	if res.StatusCode != http.StatusOK {
		t.Fatalf("mixed batch status %d, want 200 with per-item errors: %s", res.StatusCode, raw)
	}
	var resp BatchResponse
	decodeInto(t, raw, &resp)
	for _, i := range []int{0, 2} {
		if resp.Items[i].Error != "" || len(resp.Items[i].Scores) == 0 {
			t.Errorf("valid item %d: error=%q, %d scores", i, resp.Items[i].Error, len(resp.Items[i].Scores))
		}
	}
	for _, i := range []int{1, 3} {
		it := resp.Items[i]
		if it.Error == "" || !strings.Contains(it.Error, "out of range") {
			t.Errorf("invalid item %d: error = %q, want out-of-range", i, it.Error)
		}
		if it.Shard != -1 || it.Scores != nil {
			t.Errorf("invalid item %d carries shard %d / %d scores", i, it.Shard, len(it.Scores))
		}
	}
}

// TestBatchGroupingDeterminism: identical batches must produce identical
// routing and identical answers; the repeat must be served from the cache.
func TestBatchGroupingDeterminism(t *testing.T) {
	s := testServer(t)
	h := s.Handler()
	req := BatchRequest{
		Kind:  "rwr",
		Nodes: []uint32{20, 21, 22, 23, 24, 25, 20}, // includes a duplicate
		// An eps unique to this test keeps other tests' cache entries away.
		QueryParams: QueryParams{Eps: fp(11e-10)},
	}

	run := func() BatchResponse {
		res, raw := postJSON(t, h, "/v1/query/batch", req)
		if res.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", res.StatusCode, raw)
		}
		var resp BatchResponse
		decodeInto(t, raw, &resp)
		return resp
	}
	first := run()
	second := run()

	if first.ShardGroups != second.ShardGroups {
		t.Errorf("fan-out changed across identical batches: %d vs %d", first.ShardGroups, second.ShardGroups)
	}
	for i := range first.Items {
		a, b := first.Items[i], second.Items[i]
		if a.Shard != b.Shard {
			t.Errorf("item %d shard changed: %d vs %d", i, a.Shard, b.Shard)
		}
		if len(a.Scores) != len(b.Scores) {
			t.Fatalf("item %d score lengths differ", i)
		}
		for j := range a.Scores {
			if a.Scores[j] != b.Scores[j] {
				t.Fatalf("item %d score[%d] changed across identical batches: %g vs %g",
					i, j, a.Scores[j], b.Scores[j])
			}
		}
		if !b.Cached {
			t.Errorf("repeat batch item %d not served from cache", i)
		}
	}
	// The duplicate occurrence inside the first batch is a same-request
	// cache hit: the group computes node 20 once.
	if !first.Items[6].Cached {
		t.Error("duplicate node inside one batch did not reuse the first occurrence's result")
	}
}

// TestBatchKinds covers the non-score answer shapes (hop distances, ranked
// topk) and pagerank's per-shard cache sharing within a batch.
func TestBatchKinds(t *testing.T) {
	s := testServer(t)
	h := s.Handler()

	res, raw := postJSON(t, h, "/v1/query/batch", BatchRequest{Kind: "hop", Nodes: []uint32{2, 3}})
	if res.StatusCode != http.StatusOK {
		t.Fatalf("hop batch: status %d: %s", res.StatusCode, raw)
	}
	var hop BatchResponse
	decodeInto(t, raw, &hop)
	for i, it := range hop.Items {
		if it.Error != "" || len(it.Dist) != s.current().be.numNodes() {
			t.Fatalf("hop item %d: error=%q, %d distances", i, it.Error, len(it.Dist))
		}
		if it.Dist[it.Node] != 0 {
			t.Errorf("hop item %d: dist[q] = %d, want 0", i, it.Dist[it.Node])
		}
	}

	res, raw = postJSON(t, h, "/v1/query/batch",
		BatchRequest{Kind: "topk", Nodes: []uint32{7, 8}, QueryParams: QueryParams{K: 4}})
	if res.StatusCode != http.StatusOK {
		t.Fatalf("topk batch: status %d: %s", res.StatusCode, raw)
	}
	var topk BatchResponse
	decodeInto(t, raw, &topk)
	for i, it := range topk.Items {
		if it.Error != "" || len(it.Top) != 4 {
			t.Fatalf("topk item %d: error=%q, %d entries", i, it.Error, len(it.Top))
		}
		if it.Top[0].Node != it.Node {
			t.Errorf("topk item %d: top-1 is %d, want the query node %d", i, it.Top[0].Node, it.Node)
		}
	}

	// Two pagerank queries on the same shard share one cached vector: the
	// second item of the pair must be a hit even on a fresh key space.
	cb := s.current().be.(*clusterBackend)
	var pair []uint32
	for q := 0; q < len(cb.c.Assign) && len(pair) < 2; q++ {
		if cb.c.Assign[q] == 0 {
			pair = append(pair, uint32(q))
		}
	}
	res, raw = postJSON(t, h, "/v1/query/batch",
		BatchRequest{Kind: "pagerank", Nodes: pair, QueryParams: QueryParams{Eps: fp(13e-10)}})
	if res.StatusCode != http.StatusOK {
		t.Fatalf("pagerank batch: status %d: %s", res.StatusCode, raw)
	}
	var pr BatchResponse
	decodeInto(t, raw, &pr)
	if pr.Items[0].Error != "" || pr.Items[1].Error != "" {
		t.Fatalf("pagerank items failed: %q, %q", pr.Items[0].Error, pr.Items[1].Error)
	}
	if !pr.Items[1].Cached {
		t.Error("second same-shard pagerank item recomputed instead of sharing the shard vector")
	}
}

// TestBatchValidation: request-level failures reject the whole batch.
func TestBatchValidation(t *testing.T) {
	g := gen.PlantedPartition(gen.SBMConfig{Nodes: 80, Communities: 2, AvgDegree: 6, MixingP: 0.1}, 23)
	s, err := New(context.Background(), g, Config{BudgetRatio: 0.6, Seed: 23, BatchMax: 4})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	cases := []struct {
		name string
		body string
	}{
		{"unknown kind", `{"kind":"bogus","nodes":[1]}`},
		{"missing kind", `{"nodes":[1]}`},
		{"empty nodes", `{"kind":"rwr","nodes":[]}`},
		{"absent nodes", `{"kind":"rwr"}`},
		{"over batch max", `{"kind":"rwr","nodes":[1,2,3,4,5]}`},
		{"bad param", `{"kind":"rwr","nodes":[1],"restart":1.5}`},
		{"explicit zero eps", `{"kind":"rwr","nodes":[1],"eps":0}`},
		{"bad topk metric", `{"kind":"topk","nodes":[1],"metric":"degree"}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, raw := do(t, h, httptest.NewRequest("POST", "/v1/query/batch", strings.NewReader(tc.body)))
			if res.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400 (%s)", res.StatusCode, raw)
			}
		})
	}
}

// TestBatchCancellationMidBatch: when the request context dies, items
// already in the cache still answer and the remaining items fail
// individually — the response stays 200 with partial results.
func TestBatchCancellationMidBatch(t *testing.T) {
	s := testServer(t)
	h := s.Handler()

	// Warm node 40 with a config unique to this test.
	warm := QueryParams{Eps: fp(17e-10)}
	res, raw := postJSON(t, h, "/v1/query/rwr", QueryRequest{Node: 40, QueryParams: warm})
	if res.StatusCode != http.StatusOK {
		t.Fatalf("warm query: status %d: %s", res.StatusCode, raw)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	body, err := json.Marshal(BatchRequest{Kind: "rwr", Nodes: []uint32{40, 41}, QueryParams: warm})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", "/v1/query/batch", bytes.NewReader(body)).WithContext(ctx)
	res, raw = do(t, h, req)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("cancelled batch: status %d, want 200 with per-item errors: %s", res.StatusCode, raw)
	}
	var resp BatchResponse
	decodeInto(t, raw, &resp)
	if resp.Items[0].Error != "" || len(resp.Items[0].Scores) == 0 {
		t.Errorf("cached item should survive cancellation: error=%q", resp.Items[0].Error)
	}
	if resp.Items[1].Error == "" {
		t.Error("uncached item succeeded under a cancelled context")
	}
}

// TestBatchVsRebuildRace hammers the batch endpoint while POST /v1/summarize
// swaps the backend concurrently. Every batch must be internally coherent:
// one generation, and every successful item answered against a complete
// backend. Run with -race.
func TestBatchVsRebuildRace(t *testing.T) {
	g := gen.PlantedPartition(gen.SBMConfig{Nodes: 150, Communities: 3, AvgDegree: 6, MixingP: 0.05}, 29)
	s, err := New(context.Background(), g, Config{
		Shards: 2, PartitionMethod: "random", BudgetRatio: 0.6, Seed: 29, BuildWorkers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	const rebuilds = 2
	const batchers = 3
	var wg sync.WaitGroup
	errc := make(chan error, batchers*64+rebuilds)
	stop := make(chan struct{})
	for b := 0; b < batchers; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				base := uint32((b*17 + i*5) % (g.NumNodes() - 3))
				res, raw := postJSON(t, h, "/v1/query/batch",
					BatchRequest{Kind: "rwr", Nodes: []uint32{base, base + 1, base + 2}})
				if res.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("batch during rebuild: status %d: %s", res.StatusCode, raw)
					return
				}
				var resp BatchResponse
				decodeInto(t, raw, &resp)
				for j, it := range resp.Items {
					if it.Error != "" {
						errc <- fmt.Errorf("batch item %d failed during rebuild: %s", j, it.Error)
						return
					}
					if len(it.Scores) != g.NumNodes() {
						errc <- fmt.Errorf("batch item %d: %d scores, want %d", j, len(it.Scores), g.NumNodes())
						return
					}
				}
			}
		}(b)
	}
	for r := 0; r < rebuilds; r++ {
		res, raw := postJSON(t, h, "/v1/summarize", map[string]any{"budget_ratio": 0.5 + 0.1*float64(r)})
		if res.StatusCode != http.StatusOK {
			errc <- fmt.Errorf("rebuild %d: status %d: %s", r, res.StatusCode, raw)
		}
	}
	close(stop)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestBatchMetrics: batch requests must surface in the /metrics batch
// section with size and fan-out aggregates.
func TestBatchMetrics(t *testing.T) {
	s := testServer(t)
	h := s.Handler()

	var before Snapshot
	_, raw := do(t, h, httptest.NewRequest("GET", "/metrics", nil))
	decodeInto(t, raw, &before)

	res, raw := postJSON(t, h, "/v1/query/batch", BatchRequest{Kind: "hop", Nodes: []uint32{60, 61, 62}})
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", res.StatusCode, raw)
	}

	var after Snapshot
	_, raw = do(t, h, httptest.NewRequest("GET", "/metrics", nil))
	decodeInto(t, raw, &after)
	if after.Batch.Count != before.Batch.Count+1 {
		t.Errorf("batch count %d, want %d", after.Batch.Count, before.Batch.Count+1)
	}
	if after.Batch.Items != before.Batch.Items+3 {
		t.Errorf("batch items %d, want %d", after.Batch.Items, before.Batch.Items+3)
	}
	if after.Batch.ShardGroups <= before.Batch.ShardGroups {
		t.Error("batch shard-group counter did not grow")
	}
	if after.Batch.AvgSize <= 0 || after.Batch.AvgFanout <= 0 {
		t.Errorf("batch averages not populated: %+v", after.Batch)
	}
	if after.Endpoints["query/batch"] == 0 {
		t.Error("query/batch endpoint label missing from metrics")
	}
}

// TestBatchTimeoutBudget: the batch shares one QueryTimeout; a server with
// an expired budget fails items individually rather than 5xx-ing the batch.
func TestBatchTimeoutBudget(t *testing.T) {
	g := gen.PlantedPartition(gen.SBMConfig{Nodes: 150, Communities: 3, AvgDegree: 6, MixingP: 0.05}, 31)
	s, err := New(context.Background(), g, Config{
		BudgetRatio:  0.6,
		Seed:         31,
		QueryTimeout: time.Nanosecond,
		CacheEntries: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, raw := postJSON(t, s.Handler(), "/v1/query/batch", BatchRequest{Kind: "rwr", Nodes: []uint32{1, 2}})
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 with per-item timeouts: %s", res.StatusCode, raw)
	}
	var resp BatchResponse
	decodeInto(t, raw, &resp)
	for i, it := range resp.Items {
		if !strings.Contains(it.Error, "timed out") {
			t.Errorf("item %d error = %q, want a timeout", i, it.Error)
		}
	}
}

// TestBatchSingleShardSessionPool covers the pooled-session path: a
// single-shard batch of cache misses used to run sequentially through one
// queries.Session; now the shard group fans out over a session pool
// bounded by the worker pool. With the cache disabled every item
// recomputes on its own session concurrently — the -race CI passes make
// this the data-race check — and the pooled answers must stay bit-identical
// to a sequential (Workers: 1) server's and to the reference computation
// on the underlying summary.
func TestBatchSingleShardSessionPool(t *testing.T) {
	g := testGraph()
	build := func(workers int) *Server {
		t.Helper()
		s, err := New(context.Background(), g, Config{
			BudgetRatio:  0.5,
			Seed:         7,
			Workers:      workers,
			CacheEntries: -1, // no cache: every batch item computes
		})
		if err != nil {
			t.Fatalf("build server (workers=%d): %v", workers, err)
		}
		return s
	}
	pooled := build(4)
	seq := build(1)

	nodes := make([]uint32, 24)
	for i := range nodes {
		nodes[i] = uint32((i * 11) % g.NumNodes())
	}
	run := func(s *Server) BatchResponse {
		res, raw := postJSON(t, s.Handler(), "/v1/query/batch", BatchRequest{Kind: "rwr", Nodes: nodes})
		if res.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", res.StatusCode, raw)
		}
		var resp BatchResponse
		decodeInto(t, raw, &resp)
		return resp
	}
	rp, rs := run(pooled), run(seq)
	if rp.ShardGroups != 1 || rs.ShardGroups != 1 {
		t.Fatalf("shard_groups = %d/%d, want 1 (single-shard backend)", rp.ShardGroups, rs.ShardGroups)
	}
	sb := pooled.current().be.(*summaryBackend)
	for i := range rp.Items {
		a, b := rp.Items[i], rs.Items[i]
		if a.Error != "" || b.Error != "" {
			t.Fatalf("item %d failed: pooled=%q sequential=%q", i, a.Error, b.Error)
		}
		want, err := queries.SummaryRWR(sb.s, graph.NodeID(a.Node), queries.RWRConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Scores) != len(b.Scores) || len(a.Scores) != len(want) {
			t.Fatalf("item %d score lengths differ: %d pooled, %d sequential, %d reference",
				i, len(a.Scores), len(b.Scores), len(want))
		}
		for j := range a.Scores {
			if a.Scores[j] != b.Scores[j] || a.Scores[j] != want[j] {
				t.Fatalf("item %d score[%d]: pooled %g, sequential %g, reference %g — pooled sessions must not perturb answers",
					i, j, a.Scores[j], b.Scores[j], want[j])
			}
		}
	}
}
