package datasets

import (
	"testing"

	"pegasus/internal/distributed"
)

func TestScaleTierShape(t *testing.T) {
	tier := ScaleTier()
	if len(tier) != 2 {
		t.Fatalf("scale tier has %d datasets, want 2", len(tier))
	}
	wantOrder := []string{"S5", "S6"}
	for i, d := range tier {
		if d.Short != wantOrder[i] {
			t.Errorf("position %d: %s, want %s", i, d.Short, wantOrder[i])
		}
		if d.Name == "" || d.Kind == "" {
			t.Errorf("%s: missing metadata", d.Short)
		}
	}
	// The scale tier must be resolvable by code but never leak into the
	// Table II experiment registry.
	if d, err := ByShort("S5"); err != nil || d.Name != "Scale-100K" {
		t.Fatalf("ByShort(S5) = %v, %v", d, err)
	}
	for _, d := range Registry() {
		if d.Short == "S5" || d.Short == "S6" {
			t.Fatalf("scale dataset %s leaked into Registry()", d.Short)
		}
	}
}

// TestScaleTierGoldenFingerprint pins the 10^5-node fallback graph down to
// its exact edge structure: any drift in the BA generator, the graph
// builder, or the seed silently invalidates every committed scale benchmark,
// so drift must be a loud, deliberate change (regenerate the constant with
// distributed.GraphToken and update BENCH_summarize.json together). The
// 10^6-node S6 pin lives in the scale-tagged smoke test.
func TestScaleTierGoldenFingerprint(t *testing.T) {
	if testing.Short() {
		t.Skip("generates a 10^5-node graph")
	}
	d, err := ByShort("S5")
	if err != nil {
		t.Fatal(err)
	}
	g := d.Load(1)
	if g.NumNodes() != 100_000 {
		t.Fatalf("|V| = %d, want 100000", g.NumNodes())
	}
	if g.NumEdges() != 799_964 {
		t.Fatalf("|E| = %d, want 799964", g.NumEdges())
	}
	const golden = "8c5b8c6afa642e80cb9a658d17f0a7a1eec8e840828d5fa9ea42ff1f50986579"
	if fp := distributed.GraphToken(g); fp != golden {
		t.Fatalf("S5 fingerprint drifted:\n got  %s\n want %s", fp, golden)
	}
}
