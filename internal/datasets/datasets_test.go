package datasets

import (
	"testing"

	"pegasus/internal/graph"
)

func TestRegistryShape(t *testing.T) {
	reg := Registry()
	if len(reg) != 7 {
		t.Fatalf("registry has %d datasets, want 7 (Table II)", len(reg))
	}
	wantOrder := []string{"LA", "CA", "DB", "A6", "SK", "WK", "ST"}
	for i, d := range reg {
		if d.Short != wantOrder[i] {
			t.Errorf("position %d: %s, want %s", i, d.Short, wantOrder[i])
		}
		if d.Name == "" || d.Kind == "" {
			t.Errorf("%s: missing metadata", d.Short)
		}
	}
	if len(Real()) != 6 {
		t.Fatal("Real() should exclude only ST")
	}
}

func TestByShort(t *testing.T) {
	d, err := ByShort("WK")
	if err != nil || d.Name != "Wikipedia" {
		t.Fatalf("ByShort(WK) = %v, %v", d, err)
	}
	if _, err := ByShort("XX"); err == nil {
		t.Fatal("unknown code accepted")
	}
}

func TestGraphsAreConnectedAndClean(t *testing.T) {
	for _, d := range Registry() {
		g := d.Load(0.25)
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", d.Short, err)
		}
		_, count := graph.Components(g)
		if count != 1 {
			t.Errorf("%s: %d components, want 1 (largest CC)", d.Short, count)
		}
		if g.NumNodes() < 10 {
			t.Errorf("%s: suspiciously small (%d nodes)", d.Short, g.NumNodes())
		}
	}
}

func TestLoadIsCachedAndDeterministic(t *testing.T) {
	d, _ := ByShort("LA")
	g1 := d.Load(0.25)
	g2 := d.Load(0.25)
	if g1 != g2 {
		t.Fatal("Load should return the cached graph")
	}
	// Distinct scale -> distinct graph.
	g3 := d.Load(0.3)
	if g3 == g1 {
		t.Fatal("different scales must not share cache entries")
	}
	if g3.NumNodes() <= g1.NumNodes() {
		t.Fatal("larger scale should give more nodes")
	}
}

func TestFamilies(t *testing.T) {
	// Internet stand-ins are heavy-tailed; community stand-ins are
	// assortative enough to have small max degree relative to BA.
	ca, _ := ByShort("CA")
	g := ca.Load(0.5)
	if float64(g.MaxDegree()) < 4*g.AvgDegree() {
		t.Errorf("CA (BA family) should be heavy-tailed: max %d avg %.1f", g.MaxDegree(), g.AvgDegree())
	}
	la, _ := ByShort("LA")
	s := la.Load(0.5)
	if float64(s.MaxDegree()) > 30*s.AvgDegree() {
		t.Errorf("LA (SBM family) should not be hub-dominated: max %d avg %.1f", s.MaxDegree(), s.AvgDegree())
	}
}
