// Package datasets provides the experiment inputs. The paper evaluates on
// six real-world graphs (Table II: LastFM-Asia, Caida, DBLP, Amazon0601,
// Skitter, Wikipedia) plus a billion-edge Barabási–Albert synthetic. This
// module is offline, so each real graph is replaced by a deterministic
// synthetic stand-in of the same *family* at reduced scale (see DESIGN.md
// §3): planted-partition SBMs for the community-rich social/collaboration/
// co-purchase graphs and preferential-attachment graphs for the heavy-tailed
// internet/hyperlink graphs. Like the paper (§V-A), every graph is reduced
// to its largest connected component with self-loops removed (the builders
// already drop self-loops).
package datasets

import (
	"fmt"
	"sync"

	"pegasus/internal/gen"
	"pegasus/internal/graph"
)

// Dataset is one experiment input.
type Dataset struct {
	// Name is the paper's dataset name this stands in for.
	Name string
	// Short is the two-letter code used in the paper's figures.
	Short string
	// Kind describes the graph family (matches Table II's Summary column).
	Kind string
	// Generate builds the graph at a node-count scale factor (1 = the
	// default reduced scale).
	Generate func(scale float64) *graph.Graph
}

// scaled returns max(2, round(base*scale)).
func scaled(base int, scale float64) int {
	n := int(float64(base) * scale)
	if n < 2 {
		n = 2
	}
	return n
}

func lcc(g *graph.Graph) *graph.Graph {
	out, _ := graph.LargestComponent(g)
	return out
}

// Registry lists the seven datasets of Table II in paper order. All
// generators are deterministic.
func Registry() []*Dataset {
	return []*Dataset{
		{
			Name: "LastFM-Asia", Short: "LA", Kind: "Social",
			Generate: func(s float64) *graph.Graph {
				return lcc(gen.PlantedPartition(gen.SBMConfig{
					Nodes: scaled(800, s), Communities: 10, AvgDegree: 7.3, MixingP: 0.12,
				}, 101))
			},
		},
		{
			Name: "Caida", Short: "CA", Kind: "Internet",
			Generate: func(s float64) *graph.Graph {
				return lcc(gen.BarabasiAlbert(scaled(1000, s), 2, 102))
			},
		},
		{
			Name: "DBLP", Short: "DB", Kind: "Collaboration",
			Generate: func(s float64) *graph.Graph {
				return lcc(gen.PlantedPartition(gen.SBMConfig{
					Nodes: scaled(1500, s), Communities: 40, AvgDegree: 6.6, MixingP: 0.08,
				}, 103))
			},
		},
		{
			Name: "Amazon0601", Short: "A6", Kind: "Co-purchase",
			Generate: func(s float64) *graph.Graph {
				return lcc(gen.PlantedPartition(gen.SBMConfig{
					Nodes: scaled(1800, s), Communities: 30, AvgDegree: 12.1, MixingP: 0.15,
				}, 104))
			},
		},
		{
			Name: "Skitter", Short: "SK", Kind: "Internet",
			Generate: func(s float64) *graph.Graph {
				return lcc(gen.BarabasiAlbert(scaled(2500, s), 7, 105))
			},
		},
		{
			Name: "Wikipedia", Short: "WK", Kind: "Hyperlinks",
			Generate: func(s float64) *graph.Graph {
				return lcc(gen.BarabasiAlbert(scaled(3000, s), 13, 106))
			},
		},
		{
			Name: "Synthetic", Short: "ST", Kind: "BA Model",
			Generate: func(s float64) *graph.Graph {
				return lcc(gen.BarabasiAlbert(scaled(4000, s), 25, 107))
			},
		},
	}
}

// Real lists the six real-graph stand-ins (excludes the ST synthetic).
func Real() []*Dataset {
	r := Registry()
	return r[:6]
}

// ScaleTier lists the deterministic large-scale synthetic fallbacks used by
// the ingestion/scale harness (pegasus-bench's scale section and the tagged
// scale smoke test). Offline CI cannot download the SNAP graphs the paper's
// scalability experiment uses, so heavy-tailed Barabási–Albert graphs at
// 10^5 and 10^6 nodes stand in. Deliberately not part of Registry(): the
// Table II experiment sweeps must not pick these up.
func ScaleTier() []*Dataset {
	return []*Dataset{
		{
			Name: "Scale-100K", Short: "S5", Kind: "BA 10^5",
			// BA graphs are connected by construction, so the LCC pass —
			// which would add an O(|V|+|E|) scratch BFS and a full graph
			// copy at this tier — is skipped.
			Generate: func(s float64) *graph.Graph {
				return gen.BarabasiAlbert(scaled(100_000, s), 8, 501)
			},
		},
		{
			Name: "Scale-1M", Short: "S6", Kind: "BA 10^6",
			Generate: func(s float64) *graph.Graph {
				return gen.BarabasiAlbert(scaled(1_000_000, s), 8, 601)
			},
		},
	}
}

// ByShort finds a dataset by its short code, searching the Table II registry
// and then the scale tier.
func ByShort(code string) (*Dataset, error) {
	for _, d := range Registry() {
		if d.Short == code {
			return d, nil
		}
	}
	for _, d := range ScaleTier() {
		if d.Short == code {
			return d, nil
		}
	}
	return nil, fmt.Errorf("datasets: unknown dataset %q", code)
}

// cache memoizes generated graphs per (short, scale) so experiment sweeps
// don't regenerate inputs.
var (
	cacheMu sync.Mutex
	cache   = map[string]*graph.Graph{}
)

// Load generates (or returns the cached) graph for d at the given scale.
func (d *Dataset) Load(scale float64) *graph.Graph {
	key := fmt.Sprintf("%s@%g", d.Short, scale)
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if g, ok := cache[key]; ok {
		return g
	}
	g := d.Generate(scale)
	cache[key] = g
	return g
}
