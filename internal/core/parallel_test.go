package core

import (
	"context"
	"hash/fnv"
	"maps"
	"math"
	"reflect"
	"slices"
	"sort"
	"sync"
	"testing"

	"pegasus/internal/gen"
	"pegasus/internal/graph"
	"pegasus/internal/summary"
)

// fingerprintSummary hashes the node→supernode assignment and the superedge
// adjacency into one value: equal fingerprints mean structurally identical
// summaries.
func fingerprintSummary(s *summary.Summary) uint64 {
	h := fnv.New64a()
	var buf [4]byte
	put32 := func(x uint32) {
		buf[0] = byte(x)
		buf[1] = byte(x >> 8)
		buf[2] = byte(x >> 16)
		buf[3] = byte(x >> 24)
		h.Write(buf[:])
	}
	for u := 0; u < s.NumNodes(); u++ {
		put32(s.Supernode(graph.NodeID(u)))
	}
	for a := 0; a < s.NumSupernodes(); a++ {
		var nbrs []uint32
		s.ForEachSuperNeighbor(uint32(a), func(b uint32, _ float64) {
			nbrs = append(nbrs, b)
		})
		sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
		put32(uint32(a))
		for _, b := range nbrs {
			put32(b)
		}
	}
	return h.Sum64()
}

// Golden fingerprints of the sequential implementation (captured from the
// pre-parallelization merge loop after the BarabasiAlbert generator was made
// deterministic). They pin down "Workers=1 is bit-identical to the legacy
// sequential path": any change to sampling, deduplication, scoring order or
// mass reuse that alters the result breaks these.
func TestSequentialGoldens(t *testing.T) {
	t.Run("ba400-uniform", func(t *testing.T) {
		g := gen.BarabasiAlbert(400, 3, 1)
		var merges []int
		res, err := Summarize(g, Config{BudgetRatio: 0.4, Seed: 42, Workers: 1,
			Trace: func(s IterStats) { merges = append(merges, s.Merges) }})
		if err != nil {
			t.Fatal(err)
		}
		if got := fingerprintSummary(res.Summary); got != 0xaa434f33b89b2e40 {
			t.Errorf("fingerprint = %#x, want 0xaa434f33b89b2e40", got)
		}
		// The per-iteration merge counts are part of the golden: deduping
		// re-drawn pairs must not change which merges happen (duplicate
		// evaluations re-score identical masses and can never win the
		// strict-greater argmax).
		wantMerges := []int{0, 20, 12, 6, 10, 20, 15, 12, 12, 24, 13, 13, 4, 31}
		if !reflect.DeepEqual(merges, wantMerges) {
			t.Errorf("per-iteration merges = %v, want %v", merges, wantMerges)
		}
	})
	t.Run("sbm240-personalized", func(t *testing.T) {
		g := gen.PlantedPartition(gen.SBMConfig{Nodes: 240, Communities: 4, AvgDegree: 12, MixingP: 0.08}, 1)
		lcc, _ := graph.LargestComponent(g)
		var merges []int
		res, err := Summarize(lcc, Config{Targets: []graph.NodeID{0, 1, 2}, Alpha: 1.5,
			BudgetRatio: 0.35, Seed: 7, Workers: 1,
			Trace: func(s IterStats) { merges = append(merges, s.Merges) }})
		if err != nil {
			t.Fatal(err)
		}
		if got := fingerprintSummary(res.Summary); got != 0x432fb747d9240303 {
			t.Errorf("fingerprint = %#x, want 0x432fb747d9240303", got)
		}
		wantMerges := []int{8, 19, 13, 8, 5, 7, 5, 3, 2, 7, 2, 10, 9, 18, 1}
		if !reflect.DeepEqual(merges, wantMerges) {
			t.Errorf("per-iteration merges = %v, want %v", merges, wantMerges)
		}
	})
	t.Run("ssumm300-preset", func(t *testing.T) {
		g := gen.BarabasiAlbert(300, 4, 9)
		res, err := Summarize(g, Config{BudgetRatio: 0.3, Seed: 11, Workers: 1,
			Encoding: BestOfTwo, Threshold: FixedSchedule{TMax: 20}, Alpha: 1})
		if err != nil {
			t.Fatal(err)
		}
		if got := fingerprintSummary(res.Summary); got != 0x23d59a266a88b3af {
			t.Errorf("fingerprint = %#x, want 0x23d59a266a88b3af", got)
		}
	})
}

// TestWorkerCountInvariance is the tentpole determinism property: the same
// seed yields the same summary at every worker count, because parallelism
// only reorders read-only scoring work, never the RNG stream or the argmax.
func TestWorkerCountInvariance(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"ba":  gen.BarabasiAlbert(500, 3, 2),
		"sbm": gen.PlantedPartition(gen.SBMConfig{Nodes: 400, Communities: 4, AvgDegree: 14, MixingP: 0.1}, 3),
	}
	cfgs := map[string]Config{
		"uniform":      {BudgetRatio: 0.35, Seed: 17},
		"personalized": {Targets: []graph.NodeID{1, 2, 3}, Alpha: 1.5, BudgetRatio: 0.3, Seed: 23},
		"abscost":      {BudgetRatio: 0.4, Seed: 29, CostMode: AbsoluteCost},
	}
	for _, gname := range slices.Sorted(maps.Keys(graphs)) {
		g := graphs[gname]
		for _, cname := range slices.Sorted(maps.Keys(cfgs)) {
			cfg := cfgs[cname]
			cfg.Workers = 1
			ref, err := Summarize(g, cfg)
			if err != nil {
				t.Fatalf("%s/%s workers=1: %v", gname, cname, err)
			}
			want := fingerprintSummary(ref.Summary)
			for _, w := range []int{2, 4, 8} {
				cfg.Workers = w
				res, err := Summarize(g, cfg)
				if err != nil {
					t.Fatalf("%s/%s workers=%d: %v", gname, cname, w, err)
				}
				if got := fingerprintSummary(res.Summary); got != want {
					t.Errorf("%s/%s: workers=%d fingerprint %#x != workers=1 fingerprint %#x",
						gname, cname, w, got, want)
				}
				if res.Iterations != ref.Iterations || res.DroppedSuperedges != ref.DroppedSuperedges ||
					res.FinalTheta != ref.FinalTheta {
					t.Errorf("%s/%s: workers=%d result metadata differs from workers=1", gname, cname, w)
				}
			}
		}
	}
}

// TestParallelSummarizeRace exercises concurrent engines sharing one input
// graph under the race detector: parallel scoring must only read shared
// state.
func TestParallelSummarizeRace(t *testing.T) {
	g := gen.BarabasiAlbert(400, 3, 5)
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = Summarize(g, Config{BudgetRatio: 0.4, Seed: int64(i), Workers: 4})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("concurrent summarize %d: %v", i, err)
		}
	}
}

func TestSummarizeCtxCancellation(t *testing.T) {
	g := gen.BarabasiAlbert(2000, 4, 6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SummarizeCtx(ctx, g, Config{BudgetRatio: 0.2, Seed: 1}); err != context.Canceled {
		t.Fatalf("pre-cancelled context: err = %v, want context.Canceled", err)
	}
}

func TestConfigRejectsNaNBetaAndBadWorkers(t *testing.T) {
	g := gen.BarabasiAlbert(50, 2, 12)
	for _, cfg := range []Config{
		{Beta: math.NaN()},
		{Workers: -1},
	} {
		if _, err := Summarize(g, cfg); err == nil {
			t.Errorf("invalid config accepted: %+v", cfg)
		}
	}
}
