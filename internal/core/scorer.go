package core

import (
	"math"

	"pegasus/internal/par"
)

// Parallel candidate-pair scoring. mergeGroup batches each round: it first
// draws the round's samples from the engine RNG (sequentially, preserving the
// exact stream of the legacy loop), dedupes re-drawn pairs, and then scores
// the unique pairs — concurrently when the round is large enough. Scoring is
// read-only on the engine; the merge commit stays on the main goroutine. The
// argmax is selected by (score, first-drawn index), which reproduces the
// legacy "strictly greater wins" scan for every worker count, so summaries
// are bit-identical at Workers=1 and Workers=N (see DESIGN.md).

// minParallelPairs gates the parallel scoring path: below this many unique
// candidate pairs the goroutine spawn/join overhead exceeds the O(deg)
// evaluation work.
const minParallelPairs = 16

// pairSample is one sampled ordered candidate pair (merge b into a).
type pairSample struct{ a, b uint32 }

func (p pairSample) key() uint64 { return uint64(p.a)<<32 | uint64(p.b) }

// evalScratch is one worker's private scoring state: mass scratch for the
// pair under evaluation plus the retained masses of the worker-local best
// pair, so the winning evaluation never has to be repeated by performMerge.
type evalScratch struct {
	curA, curB   pairMass // masses of the pair being evaluated
	bestA, bestB pairMass // masses of the worker-local best pair
	bestScore    float64
	bestIdx      int // index into the round's unique pairs; -1 = none accepted
	best         pairSample
}

func newEvalScratch() *evalScratch {
	return &evalScratch{
		curA:  pairMass{m: make(map[uint32]float64)},
		curB:  pairMass{m: make(map[uint32]float64)},
		bestA: pairMass{m: make(map[uint32]float64)},
		bestB: pairMass{m: make(map[uint32]float64)},
	}
}

func (s *evalScratch) reset() {
	s.bestScore = math.Inf(-1)
	s.bestIdx = -1
}

// roundScorer owns the reusable buffers of the batched merge rounds.
type roundScorer struct {
	samples []pairSample
	unique  []pairSample
	seen    map[uint64]bool
	scratch []*evalScratch
}

// dedupe keeps the first occurrence of every ordered pair. Duplicate samples
// would re-score identical masses to identical values and can never displace
// the earlier occurrence under the legacy strict-greater argmax, so dropping
// them changes neither the selected pair nor the RNG stream (which was
// consumed during sampling).
func (sc *roundScorer) dedupe(samples []pairSample) []pairSample {
	if sc.seen == nil {
		sc.seen = make(map[uint64]bool, 2*len(samples))
	}
	unique := sc.unique[:0]
	for _, p := range samples {
		if k := p.key(); !sc.seen[k] {
			sc.seen[k] = true
			unique = append(unique, p)
		}
	}
	sc.unique = unique
	for _, p := range unique {
		delete(sc.seen, p.key())
	}
	return unique
}

func (sc *roundScorer) scratchFor(k int) *evalScratch {
	for len(sc.scratch) <= k {
		sc.scratch = append(sc.scratch, newEvalScratch())
	}
	return sc.scratch[k]
}

// observe folds the evaluation of pair p (at first-drawn index idx) into the
// worker-local best. Ties on score keep the lowest index, matching the
// first-wins semantics of the legacy sequential scan regardless of the order
// in which a worker happens to process its share of the round.
func (e *engine) observe(s *evalScratch, idx int, p pairSample) {
	rel, abs := e.evaluateMergeInto(p.a, p.b, &s.curA, &s.curB)
	score := rel
	if e.cfg.CostMode == AbsoluteCost {
		score = abs
	}
	if score > s.bestScore || (score == s.bestScore && s.bestIdx >= 0 && idx < s.bestIdx) {
		s.bestScore, s.bestIdx, s.best = score, idx, p
		// Swap, don't copy: the winner's masses stay live in bestA/bestB and
		// the displaced buffers become the next evaluation's scratch.
		s.curA, s.bestA = s.bestA, s.curA
		s.curB, s.bestB = s.bestB, s.curB
	}
}

// scoreRound evaluates the round's unique pairs and returns the scratch
// holding the argmax pair and its masses, or nil when no pair was accepted
// (all scores -Inf/NaN — the legacy "found == false" case). The result is
// identical for every worker count: with workers=1 (or a round below the
// parallel gate) par.ForEach runs the evaluations inline in sample order,
// reproducing the legacy sequential scan exactly.
func (e *engine) scoreRound(pairs []pairSample) *evalScratch {
	n := len(pairs)
	if n == 0 {
		return nil
	}
	workers := e.cfg.Workers
	if workers > n {
		workers = n
	}
	if n < minParallelPairs {
		workers = 1
	}
	for k := 0; k < workers; k++ {
		e.scorer.scratchFor(k).reset()
	}
	par.ForEach(workers, n, func(w, i int) {
		e.observe(e.scorer.scratch[w], i, pairs[i])
	})

	var win *evalScratch
	for k := 0; k < workers; k++ {
		s := e.scorer.scratch[k]
		if s.bestIdx < 0 {
			continue
		}
		if win == nil || s.bestScore > win.bestScore ||
			(s.bestScore == win.bestScore && s.bestIdx < win.bestIdx) {
			win = s
		}
	}
	return win
}
