package core

import (
	"math"
	"math/rand"

	"pegasus/internal/graph"
	"pegasus/internal/par"
	"pegasus/internal/summary"
	"pegasus/internal/weights"
)

// engine is the mutable summarization state. Supernodes live in slots;
// merging B into A reuses A's slot and kills B's. The per-slot aggregates
// Π_A (sum of π over members) and Q_A (sum of π²) are the paper's
// "additional information" (online-appendix Eqs. 13–15) enabling O(deg)
// pairwise-error evaluation (Lemma 1).
type engine struct {
	g   *graph.Graph
	cfg Config
	rng *rand.Rand

	// pi is π scaled by 1/sqrt(Z), so products π'_u·π'_v equal W_uv directly
	// and Z disappears from every formula.
	pi []float64

	superOf  []uint32          // node -> slot
	members  [][]graph.NodeID  // slot -> member nodes; nil when dead
	sumPi    []float64         // slot -> Π_A (scaled)
	sumPiSq  []float64         // slot -> Q_A (scaled)
	sedges   []map[uint32]bool // slot -> superedge neighbor set (may contain the slot itself: self-loop)
	numSuper int               // |S|
	numP     int               // |P|
	logV     float64           // log2|V|

	// scratch buffers reused across merge evaluations on the main goroutine
	pmA, pmB pairMass

	// candidate-generation scratch reused across iterations (shingle.go):
	// per-depth node-shingle vectors tagged with the seed that filled them,
	// the packed (shingle key, slot payload) sort arrays with the radix
	// sorter's scratch, and the per-row / per-slot LSH buffers.
	shingleBuf  [][]uint64
	shingleSeed []uint64
	keyBuf      []uint64
	slotBuf     []uint32
	sorter      par.KeySorter
	rowBuf      [][]uint64
	bucketBuf   []uint64

	// scorer holds the batched-round state of mergeGroup: the sampled pairs
	// of the current round and the per-worker evaluation scratch.
	scorer roundScorer
}

// pairMass accumulates directed weighted edge mass from one supernode to
// every adjacent supernode: dm_AX = Σ_{u∈A} Σ_{v∈N_u ∩ X} π'_u·π'_v.
// For X ≠ A, dm_AX equals the unordered weighted edge mass m_AX; for X = A
// each intra edge is visited from both endpoints, so dm_AA = 2·m_AA, which
// is exactly the ordered intra edge mass.
type pairMass struct {
	keys []uint32
	m    map[uint32]float64
}

func (pm *pairMass) reset() {
	for _, k := range pm.keys {
		delete(pm.m, k)
	}
	pm.keys = pm.keys[:0]
}

func (pm *pairMass) add(x uint32, v float64) {
	if _, ok := pm.m[x]; !ok {
		pm.keys = append(pm.keys, x)
	}
	pm.m[x] += v
}

// newEngine initializes the singleton summary of Alg. 1 line 1: every node
// its own supernode, every edge its own superedge.
func newEngine(g *graph.Graph, w *weights.Weights, cfg Config) *engine {
	n := g.NumNodes()
	e := &engine{
		g:        g,
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		pi:       make([]float64, n),
		superOf:  make([]uint32, n),
		members:  make([][]graph.NodeID, n),
		sumPi:    make([]float64, n),
		sumPiSq:  make([]float64, n),
		sedges:   make([]map[uint32]bool, n),
		numSuper: n,
		numP:     int(g.NumEdges()),
		logV:     math.Log2(math.Max(float64(n), 2)),
	}
	invSqrtZ := 1 / math.Sqrt(w.Z)
	// Each index writes only its own slots, so the singleton initialization
	// is range-shardable; the result is identical for any worker count.
	par.Range(cfg.Workers, n, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			p := w.Pi[u] * invSqrtZ
			e.pi[u] = p
			e.superOf[u] = uint32(u)
			e.members[u] = []graph.NodeID{graph.NodeID(u)}
			e.sumPi[u] = p
			e.sumPiSq[u] = p * p
			e.sedges[u] = make(map[uint32]bool, g.Degree(graph.NodeID(u)))
			for _, v := range g.Neighbors(graph.NodeID(u)) {
				e.sedges[u][uint32(v)] = true
			}
		}
	})
	e.pmA.m = make(map[uint32]float64)
	e.pmB.m = make(map[uint32]float64)
	return e
}

// sizeBits returns Size(G) per Eq. (3) for the current state.
func (e *engine) sizeBits() float64 {
	k := float64(e.numSuper)
	if k <= 1 {
		k = 2
	}
	return (2*float64(e.numP) + float64(len(e.superOf))) * math.Log2(k)
}

func (e *engine) hasSuperedge(a, b uint32) bool { return e.sedges[a][b] }

func (e *engine) addSuperedge(a, b uint32) {
	e.sedges[a][b] = true
	e.sedges[b][a] = true
	e.numP++
}

// removeIncidentSuperedges drops every superedge incident to slot a (Alg. 2
// line 8) and returns how many were removed.
func (e *engine) removeIncidentSuperedges(a uint32) int {
	removed := len(e.sedges[a])
	for x := range e.sedges[a] { //lint:ordered each iteration deletes an independent mirror entry; order cannot affect the result
		if x != a {
			delete(e.sedges[x], a)
		}
	}
	e.numP -= removed
	e.sedges[a] = make(map[uint32]bool)
	return removed
}

// accumulateMass fills pm with the directed masses of slot a.
func (e *engine) accumulateMass(a uint32, pm *pairMass) {
	pm.reset()
	for _, u := range e.members[a] {
		pu := e.pi[u]
		for _, v := range e.g.Neighbors(u) {
			pm.add(e.superOf[v], pu*e.pi[v])
		}
	}
}

// alive reports whether slot a currently denotes a supernode.
func (e *engine) alive(a uint32) bool { return e.members[a] != nil }

// aliveSlots lists all live supernode slots.
func (e *engine) aliveSlots() []uint32 {
	out := make([]uint32, 0, e.numSuper)
	for a := range e.members {
		if e.members[a] != nil {
			out = append(out, uint32(a))
		}
	}
	return out
}

// buildSummary freezes the engine state into an immutable Summary.
func (e *engine) buildSummary() *summary.Summary {
	b := summary.NewBuilder(e.superOf)
	for a := range e.sedges {
		if e.members[a] == nil {
			continue
		}
		for x := range e.sedges[a] { //lint:ordered Builder keys superedges by endpoint pair and canonicalizes order at Build
			if x >= uint32(a) {
				b.AddSuperedge(uint32(a), x, 1)
			}
		}
	}
	return b.Build()
}
