package core

import (
	"context"
	"testing"

	"pegasus/internal/gen"
	"pegasus/internal/graph"
	"pegasus/internal/weights"
)

func newTestEngine(t *testing.T, g *graph.Graph, cfg Config) *engine {
	t.Helper()
	cfg, err := cfg.withDefaults(g)
	if err != nil {
		t.Fatal(err)
	}
	w, err := weights.New(g, cfg.Targets, cfg.Alpha)
	if err != nil {
		t.Fatal(err)
	}
	return newEngine(g, w, cfg)
}

func TestCandidateGroupsPartitionAliveSlots(t *testing.T) {
	g := gen.BarabasiAlbert(300, 3, 1)
	e := newTestEngine(t, g, Config{Seed: 2})
	groups := e.candidateGroups(context.Background(), 1)
	seen := map[uint32]int{}
	for _, grp := range groups {
		if len(grp) < 2 {
			t.Fatal("singleton group emitted")
		}
		if len(grp) > e.cfg.MaxGroupSize {
			t.Fatalf("group size %d exceeds cap %d", len(grp), e.cfg.MaxGroupSize)
		}
		for _, a := range grp {
			seen[a]++
			if !e.alive(a) {
				t.Fatalf("dead slot %d in group", a)
			}
		}
	}
	//lint:ordered membership check only: each slot is tested independently against its own count
	for a, c := range seen {
		if c > 1 {
			t.Fatalf("slot %d in %d groups", a, c)
		}
	}
	if len(groups) < 2 {
		t.Fatalf("expected multiple candidate groups, got %d", len(groups))
	}
}

func TestTwinsShareAGroup(t *testing.T) {
	// In K_{3,3} all left nodes have identical closed neighborhoods except
	// for their own ID; shingles use the closed neighborhood, so twins
	// (identical open neighborhoods, non-adjacent) agree on min over N(u)
	// but may differ via f(u) itself. Build true twins with a shared anchor:
	// star with two leaf-twins.
	b := graph.NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(0, 3)
	b.AddEdge(3, 4)
	g := b.Build()
	e := newTestEngine(t, g, Config{Seed: 3})
	together := 0
	const iters = 20
	for it := 1; it <= iters; it++ {
		groups := e.candidateGroups(context.Background(), it)
		for _, grp := range groups {
			has1, has2 := false, false
			for _, a := range grp {
				if a == 1 {
					has1 = true
				}
				if a == 2 {
					has2 = true
				}
			}
			if has1 && has2 {
				together++
			}
		}
	}
	// Leaves 1 and 2 share N(u)∪{u} ⊇ {0}; their shingles agree whenever
	// the anchor hashes lowest, i.e. with probability >= 1/3 per draw;
	// across 20 iterations they must co-occur at least a few times.
	if together < 3 {
		t.Fatalf("twin leaves grouped together only %d/%d iterations", together, iters)
	}
}

func TestCandidateGroupsChangeAcrossIterations(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, 4)
	e := newTestEngine(t, g, Config{Seed: 5})
	g1 := e.candidateGroups(context.Background(), 1)
	g2 := e.candidateGroups(context.Background(), 2)
	// Different hash functions should produce a different grouping with
	// overwhelming probability.
	if len(g1) == len(g2) {
		same := true
		for i := range g1 {
			if len(g1[i]) != len(g2[i]) {
				same = false
				break
			}
		}
		if same {
			// Same shape is possible; compare membership of first group.
			m := map[uint32]bool{}
			for _, a := range g1[0] {
				m[a] = true
			}
			allSame := true
			for _, a := range g2[0] {
				if !m[a] {
					allSame = false
					break
				}
			}
			if allSame && len(g1[0]) == len(g2[0]) {
				t.Log("warning: identical first group across iterations (possible but unlikely)")
			}
		}
	}
}

func TestGroupSizeCapRespected(t *testing.T) {
	// A graph of many twins: grid of disconnected 2-cliques hashed together
	// would exceed the cap; random chopping must bound group size.
	b := graph.NewBuilder(0)
	for i := 0; i < 600; i++ {
		b.AddEdge(graph.NodeID(2*i), graph.NodeID(2*i+1))
	}
	g := b.Build()
	e := newTestEngine(t, g, Config{Seed: 6, MaxGroupSize: 50, MaxSplitDepth: 2})
	for _, grp := range e.candidateGroups(context.Background(), 1) {
		if len(grp) > 50 {
			t.Fatalf("group of size %d exceeds cap 50", len(grp))
		}
	}
}

func TestSparsifyDropsLowMassFirst(t *testing.T) {
	// Two supernode pairs: one covering many edges, one covering a single
	// low-weight edge. Sparsifying by one superedge must drop the light one.
	b := graph.NewBuilder(6)
	// dense pair: {0,1} x {2,3} complete
	b.AddEdge(0, 2)
	b.AddEdge(0, 3)
	b.AddEdge(1, 2)
	b.AddEdge(1, 3)
	// light pair: 4-5 single edge
	b.AddEdge(4, 5)
	g := b.Build()
	e := newTestEngine(t, g, Config{Seed: 7})
	// Merge into supernodes {0,1}, {2,3}, {4}, {5} manually.
	e.performMerge(0, 1, false)
	e.performMerge(2, 3, false)
	if !e.hasSuperedge(0, 2) {
		t.Fatal("expected superedge between merged blocks")
	}
	if !e.hasSuperedge(4, 5) {
		t.Fatal("expected superedge on the light pair")
	}
	// Budget forcing exactly one drop: current size minus epsilon.
	target := e.sizeBits() - 0.1
	dropped := e.sparsify(target)
	if dropped != 1 {
		t.Fatalf("dropped %d superedges, want 1", dropped)
	}
	if !e.hasSuperedge(0, 2) {
		t.Fatal("dense superedge was dropped before the light one")
	}
	if e.hasSuperedge(4, 5) {
		// good: light one dropped
	} else if e.hasSuperedge(0, 0) || e.hasSuperedge(2, 2) {
		t.Fatal("unexpected self-loop dropped instead")
	}
}
