package core

import "sort"

// sparsify drops superedges until the summary fits the bit budget (§III-F).
// Superedges are dropped in increasing order of the cost the pair carries
// once dropped — its error-correction cost log2|V|·(ordered edge mass) — so
// the superedges whose removal introduces the least weighted error go first
// (see DESIGN.md §4 for why we read "increasing order of Cost_AB" this way).
// Returns the number of superedges removed.
func (e *engine) sparsify(budgetBits float64) int {
	if e.sizeBits() <= budgetBits || e.numP == 0 {
		return 0
	}
	type se struct {
		a, b uint32
		mass float64 // ordered weighted edge mass covered by this superedge
	}
	masses := make(map[[2]uint32]float64, e.numP)
	e.g.Edges(func(u, v uint32) bool {
		a, b := e.superOf[u], e.superOf[v]
		if a > b {
			a, b = b, a
		}
		if e.hasSuperedge(a, b) {
			masses[[2]uint32{a, b}] += 2 * e.pi[u] * e.pi[v]
		}
		return true
	})
	edges := make([]se, 0, e.numP)
	for a := range e.sedges {
		if e.members[a] == nil {
			continue
		}
		for x := range e.sedges[a] { //lint:ordered edges are collected then sorted on (mass, a, b) below before any drop
			if x < uint32(a) {
				continue
			}
			edges = append(edges, se{uint32(a), x, masses[[2]uint32{uint32(a), x}]})
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].mass != edges[j].mass {
			return edges[i].mass < edges[j].mass
		}
		if edges[i].a != edges[j].a {
			return edges[i].a < edges[j].a
		}
		return edges[i].b < edges[j].b
	})
	dropped := 0
	for _, s := range edges {
		if e.sizeBits() <= budgetBits {
			break
		}
		delete(e.sedges[s.a], s.b)
		if s.a != s.b {
			delete(e.sedges[s.b], s.a)
		}
		e.numP--
		dropped++
	}
	return dropped
}
