package core

import (
	"math"
	"testing"
)

func TestAdaptiveThresholdInitial(t *testing.T) {
	p := AdaptiveThreshold{Beta: 0.1}
	if p.Initial() != 0.5 {
		t.Fatalf("initial = %v, want 0.5", p.Initial())
	}
}

func TestAdaptiveThresholdSelectsQuantile(t *testing.T) {
	p := AdaptiveThreshold{Beta: 0.3}
	rejected := []float64{0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45, 0.49}
	// ⌊0.3·10⌋ = 3rd largest = 0.40, but the schedule cap 1/(1+2) binds at
	// iteration 1.
	if got := p.Next(1, rejected, 0.5); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("Next = %v, want capped 1/3", got)
	}
	// Deeper in, the quantile is below the cap and wins.
	low := []float64{0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07, 0.08, 0.09, 0.10}
	if got := p.Next(1, low, 0.5); got != 0.08 {
		t.Fatalf("Next = %v, want 3rd largest 0.08", got)
	}
}

func TestAdaptiveThresholdBetaNearZeroPicksMax(t *testing.T) {
	p := AdaptiveThreshold{Beta: 0.0001}
	rejected := []float64{0.1, 0.3, 0.2}
	if got := p.Next(1, rejected, 0.5); got != 0.3 {
		t.Fatalf("Next = %v, want max 0.3", got)
	}
}

func TestAdaptiveThresholdEmptyKeepsCurrent(t *testing.T) {
	p := AdaptiveThreshold{Beta: 0.1}
	// Empty L keeps the current value, still subject to the schedule cap.
	if got := p.Next(1, nil, 0.2); got != 0.2 {
		t.Fatalf("Next on empty L = %v, want 0.2", got)
	}
	if got := p.Next(1, nil, 0.37); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("Next on empty L above cap = %v, want 1/3", got)
	}
}

func TestAdaptiveThresholdNeverIncreases(t *testing.T) {
	// All entries of L are below the current theta by construction; verify
	// the selected quantile respects that.
	p := AdaptiveThreshold{Beta: 0.5}
	cur := 0.4
	rejected := []float64{0.39, 0.1, 0.2, 0.05}
	if got := p.Next(1, rejected, cur); got > cur {
		t.Fatalf("theta increased: %v > %v", got, cur)
	}
}

func TestFixedSchedule(t *testing.T) {
	p := FixedSchedule{TMax: 5}
	if p.Initial() != 0.5 {
		t.Fatalf("initial = %v, want 0.5", p.Initial())
	}
	// After iteration t, the threshold for t+1 is 1/(1+t+1); at t_max it is 0.
	if got := p.Next(1, nil, 0.5); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("Next(1) = %v, want 1/3", got)
	}
	if got := p.Next(3, nil, 0.25); math.Abs(got-1.0/5) > 1e-12 {
		t.Fatalf("Next(3) = %v, want 1/5", got)
	}
	if got := p.Next(4, nil, 0.2); got != 0 {
		t.Fatalf("Next(4) = %v, want 0 at t_max", got)
	}
	if got := p.Next(17, nil, 0.2); got != 0 {
		t.Fatalf("Next(17) = %v, want 0 past t_max", got)
	}
}

func TestEntropyBits(t *testing.T) {
	// Degenerate blocks cost zero.
	if entropyBits(0, 0) != 0 || entropyBits(10, 0) != 0 || entropyBits(10, 10) != 0 {
		t.Fatal("degenerate entropy should be 0")
	}
	// Half-full block: n·H2(0.5) = n bits.
	if got := entropyBits(20, 10); math.Abs(got-10) > 1e-12 {
		t.Fatalf("entropyBits(20,10) = %v, want 10", got)
	}
	// Entropy is symmetric in density.
	if math.Abs(entropyBits(40, 8)-entropyBits(40, 32)) > 1e-12 {
		t.Fatal("entropy not symmetric in p vs 1-p")
	}
}
