package core

import (
	"context"
	"sort"

	"pegasus/internal/graph"
	"pegasus/internal/minhash"
	"pegasus/internal/obs"
	"pegasus/internal/par"
)

// Candidate generation (§III-C): supernodes are grouped by the shingle
//
//	F(U) = min_{u∈U} min_{v∈N_u∪{u}} f(v)
//
// under a fresh uniform hash f each iteration; two supernodes collide with
// probability equal to the Jaccard similarity of their members' closed
// neighborhoods, so groups collect supernodes with similar connectivity.
// Oversized groups are recursively re-divided with fresh hashes up to
// MaxSplitDepth times, then randomly chopped to at most MaxGroupSize.
// Singleton groups are discarded (nothing to merge).
//
// Grouping is sort-based and parallel: per-supernode shingles are packed
// into parallel (shingle key, slot payload) arrays and stably sorted with
// par.KeySorter, and equal-shingle runs become the groups. Because slots
// enter every division step in ascending order and the sort is stable,
// equal-shingle slots stay ascending — reproducing byte for byte the
// groups the retained map-based reference (candidateGroupsLegacyMap) emits
// for its sorted keys, for every worker count. The per-depth shingle
// vectors, the packed key/slot arrays, the sorter's radix scratch and the
// LSH buffers live on the engine and are reused across iterations, so
// steady-state candidate generation allocates only the emitted group
// slices.
//
// Opt-in banded MinHash-LSH (Config.LSHBands/LSHRows) replaces the single-
// hash first division: each supernode gets an r-row signature per band
// (minhash.FamilySeed) folded into a band-bucket key, and each bucket with
// ≥2 supernodes seeds a candidate group, so supernodes whose closed
// neighborhoods have Jaccard similarity s share a group with probability
// 1-(1-s^r)^b. Buckets exceeding MaxGroupSize descend into the same
// re-division machinery as plain shingle groups. Bands overlap, so a slot
// may appear in several groups; the merge loop compacts dead slots away
// between groups (see summarizeWeighted).

// nodeShinglesInto computes, for one hash function, the per-node closed
// neighborhood min-hash: h_u = min over v ∈ N_u ∪ {u} of f(v), into out
// (len(out) == |V|). Each node's shingle depends only on its own closed
// neighborhood, so the O(V+E) scan is range-sharded across cfg.Workers
// goroutines; the output is identical for any worker count.
func (e *engine) nodeShinglesInto(seed uint64, out []uint64) {
	h := minhash.New(seed)
	par.Range(e.cfg.Workers, len(out), func(lo, hi int) {
		e.shingleRange(h, out, lo, hi)
	})
}

// shingleRange is one worker's contiguous share of a node-shingle scan.
//
//pegasus:hotpath candidate generation scans all V+E per depth per iteration
func (e *engine) shingleRange(h minhash.Hash, out []uint64, lo, hi int) {
	for u := lo; u < hi; u++ {
		best := h.Uint64(uint32(u))
		for _, v := range e.g.Neighbors(graph.NodeID(u)) {
			if hv := h.Uint64(uint32(v)); hv < best {
				best = hv
			}
		}
		out[u] = best
	}
}

// shingleAt returns the per-node shingle vector of one division depth,
// computing it at most once per (iteration, depth): the engine keeps one
// buffer per depth, tagged with the seed that filled it, and reuses it
// across iterations instead of allocating |V| words per depth per
// iteration.
func (e *engine) shingleAt(ctx context.Context, iter, depth int, baseSeed uint64) []uint64 {
	seed := baseSeed + uint64(depth)*0x9e3779b1
	for depth >= len(e.shingleBuf) {
		e.shingleBuf = append(e.shingleBuf, nil)
		e.shingleSeed = append(e.shingleSeed, 0)
	}
	if e.shingleBuf[depth] != nil && e.shingleSeed[depth] == seed {
		return e.shingleBuf[depth]
	}
	if e.shingleBuf[depth] == nil {
		e.shingleBuf[depth] = make([]uint64, e.g.NumNodes())
	}
	_, sp := obs.StartSpan(ctx, "build.shingle")
	e.nodeShinglesInto(seed, e.shingleBuf[depth])
	sp.AttrInt("iteration", iter)
	sp.AttrInt("depth", depth)
	sp.End()
	e.shingleSeed[depth] = seed
	return e.shingleBuf[depth]
}

// superShingle folds node shingles to F(U) = min over members.
func superShingle(nodeMin []uint64, members []graph.NodeID) uint64 {
	best := ^uint64(0)
	for _, u := range members {
		if v := nodeMin[u]; v < best {
			best = v
		}
	}
	return best
}

// packShingleKeys fills the engine's parallel key/slot arrays with each
// slot's shingle under the depth's node-shingle vector.
//
//pegasus:hotpath runs once per slot per division step of every iteration
func (e *engine) packShingleKeys(slots []uint32, nodeMin []uint64) {
	keys, pay := e.keyBuf[:0], e.slotBuf[:0]
	for _, a := range slots {
		keys = append(keys, superShingle(nodeMin, e.members[a]))
		pay = append(pay, a)
	}
	e.keyBuf, e.slotBuf = keys, pay
}

// divideByShingle performs one division step: group slots by their shingle
// under nodeMin via a parallel stable radix sort of the packed (shingle,
// slot) keys. It returns the non-singleton groups in ascending shingle
// order (each group's slots ascending — the input order, preserved by
// stability since slots arrive sorted) and whether the hash split the
// slots at all. A false split means every slot shares one shingle (e.g.
// identical closed neighborhoods everywhere) and the caller should descend
// with the next hash.
func (e *engine) divideByShingle(slots []uint32, nodeMin []uint64) (groups [][]uint32, split bool) {
	e.packShingleKeys(slots, nodeMin)
	keys, pay := e.keyBuf, e.slotBuf
	e.sorter.Sort(keys, pay, e.cfg.Workers)
	if len(keys) > 0 && keys[0] == keys[len(keys)-1] {
		return nil, false
	}
	for lo := 0; lo < len(keys); {
		hi := lo + 1
		for hi < len(keys) && keys[hi] == keys[lo] {
			hi++
		}
		if hi-lo > 1 {
			groups = append(groups, append([]uint32(nil), pay[lo:hi]...))
		}
		lo = hi
	}
	return groups, true
}

// work is one pending division step of the candidate-group recursion.
type work struct {
	slots []uint32
	depth int
}

// candidateGroups produces this iteration's groups of supernodes with
// similar connectivity (Alg. 1 line 4). ctx carries the build trace (if
// any); the shingle scans inside record "build.shingle" spans. Tracing
// never touches e.rng, so grouping is bit-identical with or without it.
func (e *engine) candidateGroups(ctx context.Context, iter int) [][]uint32 {
	if e.cfg.RandomGroups {
		return e.randomGroups()
	}
	baseSeed := uint64(e.cfg.Seed)*0x9e3779b97f4a7c15 + uint64(iter)*0x100000001b3

	var queue []work
	if e.cfg.LSHBands > 0 {
		queue = e.lshSeedWork(ctx, iter, baseSeed)
	}
	if len(queue) == 0 {
		// Plain shingle path — also the fallback when no LSH band produced
		// a collision (nothing similar enough; rather than stall the
		// iteration, divide by the single hash as if LSH were off).
		queue = append(queue, work{slots: e.aliveSlots(), depth: 0})
	}
	return e.divide(ctx, iter, baseSeed, queue)
}

// divide runs the recursive re-division loop over the pending work items:
// the first level groups by shingle (Alg. 1 line 4), deeper levels only
// re-divide groups exceeding MaxGroupSize, and the depth cap chops
// randomly. The queue is processed LIFO and groups are pushed in ascending
// shingle order — the exact discipline of the legacy map-based scan, so
// the RNG draws (chop shuffles, final exploration shuffle) happen in the
// same order on the same slot sets.
func (e *engine) divide(ctx context.Context, iter int, baseSeed uint64, queue []work) [][]uint32 {
	var result [][]uint32
	for len(queue) > 0 {
		w := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if len(w.slots) <= 1 {
			continue
		}
		if w.depth > 0 && len(w.slots) <= e.cfg.MaxGroupSize {
			result = append(result, w.slots)
			continue
		}
		if w.depth >= e.cfg.MaxSplitDepth {
			// Random chop into MaxGroupSize chunks.
			e.rng.Shuffle(len(w.slots), func(i, j int) {
				w.slots[i], w.slots[j] = w.slots[j], w.slots[i]
			})
			for start := 0; start < len(w.slots); start += e.cfg.MaxGroupSize {
				end := start + e.cfg.MaxGroupSize
				if end > len(w.slots) {
					end = len(w.slots)
				}
				if end-start > 1 {
					result = append(result, w.slots[start:end])
				}
			}
			continue
		}
		nm := e.shingleAt(ctx, iter, w.depth, baseSeed)
		groups, split := e.divideByShingle(w.slots, nm)
		if !split {
			// The hash failed to split; descend with the next hash, which
			// will eventually hit the depth cap and chop randomly.
			queue = append(queue, work{slots: w.slots, depth: w.depth + 1})
			continue
		}
		for _, grp := range groups {
			queue = append(queue, work{slots: grp, depth: w.depth + 1})
		}
	}
	// Deterministic processing order with a shuffle for exploration.
	e.rng.Shuffle(len(result), func(i, j int) { result[i], result[j] = result[j], result[i] })
	return result
}

// lshSeedWork computes the banded MinHash-LSH first division: for each of
// LSHBands bands, every supernode folds its LSHRows row minima (fresh hash
// functions per (iteration, band, row)) into a band-bucket key, and every
// bucket holding ≥2 supernodes becomes a pending work item at depth 1 —
// small buckets surface directly as candidate groups, oversized ones
// re-divide through the standard shingle machinery. Identical slot sets
// recurring across bands (near-duplicate neighborhoods collide everywhere)
// are deduplicated by content hash.
func (e *engine) lshSeedWork(ctx context.Context, iter int, baseSeed uint64) []work {
	slots := e.aliveSlots()
	if len(slots) <= 1 {
		return nil
	}
	bands, rows := e.cfg.LSHBands, e.cfg.LSHRows
	for len(e.rowBuf) < rows {
		e.rowBuf = append(e.rowBuf, make([]uint64, e.g.NumNodes()))
	}
	if cap(e.bucketBuf) < len(slots) {
		e.bucketBuf = make([]uint64, len(slots))
	}
	buckets := e.bucketBuf[:len(slots)]

	var queue []work
	seen := make(map[uint64]bool)
	for band := 0; band < bands; band++ {
		_, sp := obs.StartSpan(ctx, "build.lsh")
		sp.AttrInt("iteration", iter)
		sp.AttrInt("band", band)
		for row := 0; row < rows; row++ {
			e.nodeShinglesInto(minhash.FamilySeed(baseSeed, band, row), e.rowBuf[row])
		}
		par.Range(e.cfg.Workers, len(slots), func(lo, hi int) {
			e.lshBucketRange(slots, e.rowBuf[:rows], buckets, lo, hi)
		})
		keys, pay := e.keyBuf[:0], e.slotBuf[:0]
		keys = append(keys, buckets...)
		pay = append(pay, slots...)
		e.keyBuf, e.slotBuf = keys, pay
		e.sorter.Sort(keys, pay, e.cfg.Workers)
		groups := 0
		for lo := 0; lo < len(keys); {
			hi := lo + 1
			for hi < len(keys) && keys[hi] == keys[lo] {
				hi++
			}
			if hi-lo > 1 {
				key := minhash.FoldInit
				for i := lo; i < hi; i++ {
					key = minhash.Fold(key, uint64(pay[i]))
				}
				if !seen[key] {
					seen[key] = true
					queue = append(queue, work{slots: append([]uint32(nil), pay[lo:hi]...), depth: 1})
					groups++
				}
			}
			lo = hi
		}
		sp.AttrInt("groups", groups)
		sp.End()
	}
	return queue
}

// lshBucketRange fills out[i] with the band-bucket key of slots[i]: the
// fold over rows of the minimum row hash across the slot's members'
// closed neighborhoods.
//
//pegasus:hotpath runs rows×members work per alive supernode per band
func (e *engine) lshBucketRange(slots []uint32, rows [][]uint64, out []uint64, lo, hi int) {
	for i := lo; i < hi; i++ {
		acc := minhash.FoldInit
		for _, rm := range rows {
			best := ^uint64(0)
			for _, u := range e.members[slots[i]] {
				if v := rm[u]; v < best {
					best = v
				}
			}
			acc = minhash.Fold(acc, best)
		}
		out[i] = acc
	}
}

// compactAlive filters grp in place down to the slots still alive. LSH
// bands overlap, so a slot merged away while processing an earlier group
// may linger in later ones; the plain shingle path emits disjoint groups
// and never needs this.
func (e *engine) compactAlive(grp []uint32) []uint32 {
	out := grp[:0]
	for _, a := range grp {
		if e.alive(a) {
			out = append(out, a)
		}
	}
	return out
}

// candidateGroupsLegacyMap is the pre-sort, map-based grouping retained
// verbatim as the equivalence reference: property tests and the
// pegasus-bench candidate_gen section check that the sort-based pipeline
// reproduces its output byte for byte (and the golden-fingerprint pins in
// parallel_test.go inherit from it). It is never called by Summarize.
func (e *engine) candidateGroupsLegacyMap(ctx context.Context, iter int) [][]uint32 {
	if e.cfg.RandomGroups {
		return e.randomGroups()
	}
	baseSeed := uint64(e.cfg.Seed)*0x9e3779b97f4a7c15 + uint64(iter)*0x100000001b3

	var result [][]uint32
	queue := []work{{slots: e.aliveSlots(), depth: 0}}

	// nodeMin per depth, computed lazily: all groups at the same depth share
	// one hash function.
	nodeMinByDepth := map[int][]uint64{}
	nodeMinAt := func(depth int) []uint64 {
		if nm, ok := nodeMinByDepth[depth]; ok {
			return nm
		}
		nm := make([]uint64, e.g.NumNodes())
		e.nodeShinglesInto(baseSeed+uint64(depth)*0x9e3779b1, nm)
		nodeMinByDepth[depth] = nm
		return nm
	}

	for len(queue) > 0 {
		w := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if len(w.slots) <= 1 {
			continue
		}
		if w.depth > 0 && len(w.slots) <= e.cfg.MaxGroupSize {
			result = append(result, w.slots)
			continue
		}
		if w.depth >= e.cfg.MaxSplitDepth {
			e.rng.Shuffle(len(w.slots), func(i, j int) {
				w.slots[i], w.slots[j] = w.slots[j], w.slots[i]
			})
			for start := 0; start < len(w.slots); start += e.cfg.MaxGroupSize {
				end := start + e.cfg.MaxGroupSize
				if end > len(w.slots) {
					end = len(w.slots)
				}
				if end-start > 1 {
					result = append(result, w.slots[start:end])
				}
			}
			continue
		}
		nm := nodeMinAt(w.depth)
		byShingle := make(map[uint64][]uint32)
		for _, a := range w.slots {
			f := superShingle(nm, e.members[a])
			byShingle[f] = append(byShingle[f], a)
		}
		if len(byShingle) == 1 {
			queue = append(queue, work{slots: w.slots, depth: w.depth + 1})
			continue
		}
		// Map iteration order is randomized; sort keys so runs with the same
		// seed produce the same groups in the same order.
		keys := make([]uint64, 0, len(byShingle))
		for f := range byShingle { //lint:ordered legacy reference implementation: keys are collected then sorted immediately below
			keys = append(keys, f)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, f := range keys {
			if grp := byShingle[f]; len(grp) > 1 {
				queue = append(queue, work{slots: grp, depth: w.depth + 1})
			}
		}
	}
	e.rng.Shuffle(len(result), func(i, j int) { result[i], result[j] = result[j], result[i] })
	return result
}

// randomGroups is the connectivity-blind ablation: shuffle the alive
// supernodes and chop them into MaxGroupSize chunks.
func (e *engine) randomGroups() [][]uint32 {
	slots := e.aliveSlots()
	e.rng.Shuffle(len(slots), func(i, j int) { slots[i], slots[j] = slots[j], slots[i] })
	var result [][]uint32
	for start := 0; start < len(slots); start += e.cfg.MaxGroupSize {
		end := start + e.cfg.MaxGroupSize
		if end > len(slots) {
			end = len(slots)
		}
		if end-start > 1 {
			result = append(result, slots[start:end])
		}
	}
	return result
}
