package core

import (
	"context"
	"sort"

	"pegasus/internal/graph"
	"pegasus/internal/minhash"
	"pegasus/internal/obs"
	"pegasus/internal/par"
)

// Candidate generation (§III-C): supernodes are grouped by the shingle
//
//	F(U) = min_{u∈U} min_{v∈N_u∪{u}} f(v)
//
// under a fresh uniform hash f each iteration; two supernodes collide with
// probability equal to the Jaccard similarity of their members' closed
// neighborhoods, so groups collect supernodes with similar connectivity.
// Oversized groups are recursively re-divided with fresh hashes up to
// MaxSplitDepth times, then randomly chopped to at most MaxGroupSize.
// Singleton groups are discarded (nothing to merge).

// nodeShingles computes, for one hash function, the per-node closed
// neighborhood min-hash: h_u = min over v ∈ N_u ∪ {u} of f(v). Each node's
// shingle depends only on its own closed neighborhood, so the O(V+E) scan is
// range-sharded across cfg.Workers goroutines; the output is identical for
// any worker count.
func (e *engine) nodeShingles(seed uint64) []uint64 {
	h := minhash.New(seed)
	n := e.g.NumNodes()
	out := make([]uint64, n)
	par.Range(e.cfg.Workers, n, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			best := h.Uint64(uint32(u))
			for _, v := range e.g.Neighbors(graph.NodeID(u)) {
				if hv := h.Uint64(uint32(v)); hv < best {
					best = hv
				}
			}
			out[u] = best
		}
	})
	return out
}

// superShingle folds node shingles to F(U) = min over members.
func superShingle(nodeMin []uint64, members []graph.NodeID) uint64 {
	best := ^uint64(0)
	for _, u := range members {
		if v := nodeMin[u]; v < best {
			best = v
		}
	}
	return best
}

// candidateGroups produces this iteration's groups of supernodes with
// similar connectivity (Alg. 1 line 4). ctx carries the build trace (if
// any); the shingle scans inside record "build.shingle" spans. Tracing
// never touches e.rng, so grouping is bit-identical with or without it.
func (e *engine) candidateGroups(ctx context.Context, iter int) [][]uint32 {
	if e.cfg.RandomGroups {
		return e.randomGroups()
	}
	baseSeed := uint64(e.cfg.Seed)*0x9e3779b97f4a7c15 + uint64(iter)*0x100000001b3

	var result [][]uint32
	type work struct {
		slots []uint32
		depth int
	}
	queue := []work{{slots: e.aliveSlots(), depth: 0}}

	// nodeMin per depth, computed lazily: all groups at the same depth share
	// one hash function.
	nodeMinByDepth := map[int][]uint64{}
	nodeMinAt := func(depth int) []uint64 {
		if nm, ok := nodeMinByDepth[depth]; ok {
			return nm
		}
		_, sp := obs.StartSpan(ctx, "build.shingle")
		nm := e.nodeShingles(baseSeed + uint64(depth)*0x9e3779b1)
		sp.AttrInt("iteration", iter)
		sp.AttrInt("depth", depth)
		sp.End()
		nodeMinByDepth[depth] = nm
		return nm
	}

	for len(queue) > 0 {
		w := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if len(w.slots) <= 1 {
			continue
		}
		// The first level always groups by shingle (Alg. 1 line 4); deeper
		// levels only re-divide groups that exceed MaxGroupSize.
		if w.depth > 0 && len(w.slots) <= e.cfg.MaxGroupSize {
			result = append(result, w.slots)
			continue
		}
		if w.depth >= e.cfg.MaxSplitDepth {
			// Random chop into MaxGroupSize chunks.
			e.rng.Shuffle(len(w.slots), func(i, j int) {
				w.slots[i], w.slots[j] = w.slots[j], w.slots[i]
			})
			for start := 0; start < len(w.slots); start += e.cfg.MaxGroupSize {
				end := start + e.cfg.MaxGroupSize
				if end > len(w.slots) {
					end = len(w.slots)
				}
				if end-start > 1 {
					result = append(result, w.slots[start:end])
				}
			}
			continue
		}
		nm := nodeMinAt(w.depth)
		byShingle := make(map[uint64][]uint32)
		for _, a := range w.slots {
			f := superShingle(nm, e.members[a])
			byShingle[f] = append(byShingle[f], a)
		}
		if len(byShingle) == 1 {
			// The hash failed to split (e.g. identical closed neighborhoods
			// everywhere); descend with the next hash, which will eventually
			// hit the depth cap and chop randomly.
			queue = append(queue, work{slots: w.slots, depth: w.depth + 1})
			continue
		}
		// Map iteration order is randomized; sort keys so runs with the same
		// seed produce the same groups in the same order.
		keys := make([]uint64, 0, len(byShingle))
		for f := range byShingle { //lint:ordered keys are collected then sorted immediately below
			keys = append(keys, f)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, f := range keys {
			if grp := byShingle[f]; len(grp) > 1 {
				queue = append(queue, work{slots: grp, depth: w.depth + 1})
			}
		}
	}
	// Deterministic processing order with a shuffle for exploration.
	e.rng.Shuffle(len(result), func(i, j int) { result[i], result[j] = result[j], result[i] })
	return result
}

// randomGroups is the connectivity-blind ablation: shuffle the alive
// supernodes and chop them into MaxGroupSize chunks.
func (e *engine) randomGroups() [][]uint32 {
	slots := e.aliveSlots()
	e.rng.Shuffle(len(slots), func(i, j int) { slots[i], slots[j] = slots[j], slots[i] })
	var result [][]uint32
	for start := 0; start < len(slots); start += e.cfg.MaxGroupSize {
		end := start + e.cfg.MaxGroupSize
		if end > len(slots) {
			end = len(slots)
		}
		if end-start > 1 {
			result = append(result, slots[start:end])
		}
	}
	return result
}
