package core

import (
	"math"
	"sort"
)

// Cost machinery (§III-B). All reconstruction-error quantities are kept in
// the ordered convention of Eq. (1): each erroneous unordered pair counts
// its weight twice, so that Eq. (8) decomposes Cost(G) exactly and
// log2|V|·RE is exactly the error-correction bit count of Footnote 4.

// pairTotals returns the total ordered weighted pair count t and ordered
// weighted edge mass e for the (possibly hypothetical) supernode pair whose
// aggregates are given. For a cross pair (A,B): t = 2·Π_A·Π_B, e = 2·m_AB.
// For a self pair (A,A): t = Π_A²−Q_A, e = dm_AA (already ordered).
func crossTotals(piA, piB, dmAB float64) (t, e float64) {
	return 2 * piA * piB, 2 * dmAB
}

func selfTotals(piA, qA, dmAA float64) (t, e float64) {
	return piA*piA - qA, dmAA
}

// pairCost returns Cost_AB (Eq. 6) in bits for a pair with ordered totals
// (t, e), given whether the superedge is present. log2|S| bits are charged
// per superedge endpoint; logS2 is 2·log2(|S| used for evaluation).
func (eng *engine) pairCost(t, e float64, present bool, logS2 float64) float64 {
	if present {
		miss := t - e
		if miss < 0 {
			miss = 0 // guard float cancellation
		}
		bits := logS2 + eng.logV*miss
		if eng.cfg.Encoding == BestOfTwo {
			if alt := logS2 + entropyBits(t, e); alt < bits {
				bits = alt
			}
		}
		return bits
	}
	return eng.logV * e
}

// bestPairCost returns min over presence choices — used when (re)deciding
// superedges for a merged supernode (Alg. 2 line 9) — along with the choice.
func (eng *engine) bestPairCost(t, e float64, logS2 float64) (float64, bool) {
	with := eng.pairCost(t, e, true, logS2)
	without := eng.pairCost(t, e, false, logS2)
	if with < without {
		return with, true
	}
	return without, false
}

// entropyBits is the binomial-entropy encoding of a pair block: with n = t/2
// unordered pairs of which k = e/2 are edges, encoding the exact block
// content costs n·H2(k/n) bits. Only meaningful under uniform weights
// (SSumM); under personalized weights t and e are weighted masses and the
// formula degrades gracefully to an approximation.
func entropyBits(t, e float64) float64 {
	n := t / 2
	k := e / 2
	if n <= 0 || k <= 0 || k >= n {
		return 0
	}
	p := k / n
	h := -p*math.Log2(p) - (1-p)*math.Log2(1-p)
	return n * h
}

// supernodeCost computes Cost_A (Eq. 9) for slot a under the current
// superedge set, given a's masses in pm. Superedges to supernodes with zero
// mass are also charged (presence bits only).
func (eng *engine) supernodeCost(a uint32, pm *pairMass) float64 {
	logS2 := 2 * math.Log2(math.Max(float64(eng.numSuper), 2))
	total := 0.0
	for _, x := range pm.keys {
		dm := pm.m[x]
		var t, e float64
		if x == a {
			t, e = selfTotals(eng.sumPi[a], eng.sumPiSq[a], dm)
		} else {
			t, e = crossTotals(eng.sumPi[a], eng.sumPi[x], dm)
		}
		total += eng.pairCost(t, e, eng.hasSuperedge(a, x), logS2)
	}
	// Superedges with zero mass are pathological but possible; accumulate
	// them in sorted order so cost sums are bit-for-bit deterministic (map
	// iteration order would otherwise perturb argmax tie-breaking).
	var zeroMass []uint32
	for x := range eng.sedges[a] { //lint:ordered zero-mass keys are sorted below before any accumulation
		if _, ok := pm.m[x]; !ok {
			zeroMass = append(zeroMass, x)
		}
	}
	if len(zeroMass) > 1 {
		sort.Slice(zeroMass, func(i, j int) bool { return zeroMass[i] < zeroMass[j] })
	}
	for _, x := range zeroMass {
		var t, e float64
		if x == a {
			t, e = selfTotals(eng.sumPi[a], eng.sumPiSq[a], 0)
		} else {
			t, e = crossTotals(eng.sumPi[a], eng.sumPi[x], 0)
		}
		total += eng.pairCost(t, e, true, logS2)
	}
	return total
}

// evaluateMerge computes the cost reduction of merging slots a and b:
// Eq. (10) (absolute) and Eq. (11) (relative). It fills eng.pmA/pmB as a
// side effect (reused by performMerge when the pair is accepted).
func (eng *engine) evaluateMerge(a, b uint32) (rel, abs float64) {
	return eng.evaluateMergeInto(a, b, &eng.pmA, &eng.pmB)
}

// evaluateMergeInto is evaluateMerge with caller-supplied mass scratch: it
// only reads the engine state, so distinct scratch pairs may evaluate
// distinct candidate pairs concurrently (the parallel scoring path). pmA/pmB
// are left holding the masses of a and b for reuse by performMerge.
func (eng *engine) evaluateMergeInto(a, b uint32, pmA, pmB *pairMass) (rel, abs float64) {
	eng.accumulateMass(a, pmA)
	eng.accumulateMass(b, pmB)

	costA := eng.supernodeCost(a, pmA)
	costB := eng.supernodeCost(b, pmB)

	logS2 := 2 * math.Log2(math.Max(float64(eng.numSuper), 2))
	tAB, eAB := crossTotals(eng.sumPi[a], eng.sumPi[b], pmA.m[b])
	costAB := eng.pairCost(tAB, eAB, eng.hasSuperedge(a, b), logS2)

	before := costA + costB - costAB
	costC := eng.mergedCost(a, b, pmA, pmB)
	abs = before - costC
	if before <= 1e-12 {
		// Two cost-free supernodes (e.g. isolated): merging is neutral.
		return 0, abs
	}
	return abs / before, abs
}

// mergedCost computes Cost_{A∪B}(merge(A,B;G)) (the last term of Eq. 10):
// the cost of the hypothetical merged supernode with superedges re-chosen
// optimally (Alg. 2 line 9), evaluated in the post-merge summary where
// |S| is one smaller. Requires pmA/pmB to hold the masses of a and b.
func (eng *engine) mergedCost(a, b uint32, pmA, pmB *pairMass) float64 {
	logS2 := 2 * math.Log2(math.Max(float64(eng.numSuper-1), 2))
	piC := eng.sumPi[a] + eng.sumPi[b]
	qC := eng.sumPiSq[a] + eng.sumPiSq[b]

	total := 0.0
	// Cross pairs to every adjacent supernode X ∉ {a,b}.
	for _, x := range pmA.keys {
		if x == a || x == b {
			continue
		}
		dm := pmA.m[x] + pmB.m[x] // m[x] is 0 when absent
		t, e := crossTotals(piC, eng.sumPi[x], dm)
		c, _ := eng.bestPairCost(t, e, logS2)
		total += c
	}
	for _, x := range pmB.keys {
		if x == a || x == b {
			continue
		}
		if _, seen := pmA.m[x]; seen {
			continue // already handled above
		}
		t, e := crossTotals(piC, eng.sumPi[x], pmB.m[x])
		c, _ := eng.bestPairCost(t, e, logS2)
		total += c
	}
	// Self pair of the merged supernode: ordered intra mass
	// dm_AA + dm_BB + 2·m_AB.
	dmCC := pmA.m[a] + pmB.m[b] + 2*pmA.m[b]
	t, e := selfTotals(piC, qC, dmCC)
	c, _ := eng.bestPairCost(t, e, logS2)
	return total + c
}

// performMerge merges slot b into slot a using the main-goroutine scratch;
// see performMergeWith.
func (eng *engine) performMerge(a, b uint32, massesFresh bool) {
	eng.performMergeWith(a, b, &eng.pmA, &eng.pmB, massesFresh)
}

// performMergeWith merges slot b into slot a (Alg. 2 lines 6–9): removes
// stale superedges, unions members and aggregates, and re-adds superedges
// incident to the merged supernode exactly when presence lowers the pair
// cost. pmA/pmB must hold the masses of a and b (as left by the argmax
// evaluation's scratch, so the winning evaluation is not repeated here;
// recomputed when massesFresh is false).
func (eng *engine) performMergeWith(a, b uint32, pmA, pmB *pairMass, massesFresh bool) {
	if !massesFresh {
		eng.accumulateMass(a, pmA)
		eng.accumulateMass(b, pmB)
	}
	eng.removeIncidentSuperedges(a)
	eng.removeIncidentSuperedges(b)

	// Union b into a.
	for _, u := range eng.members[b] {
		eng.superOf[u] = a
	}
	eng.members[a] = append(eng.members[a], eng.members[b]...)
	eng.members[b] = nil
	eng.sumPi[a] += eng.sumPi[b]
	eng.sumPiSq[a] += eng.sumPiSq[b]
	eng.sumPi[b], eng.sumPiSq[b] = 0, 0
	eng.numSuper--

	logS2 := 2 * math.Log2(math.Max(float64(eng.numSuper), 2))
	piC, qC := eng.sumPi[a], eng.sumPiSq[a]

	decide := func(x uint32, dm float64) {
		var t, e float64
		if x == a {
			t, e = selfTotals(piC, qC, dm)
		} else {
			t, e = crossTotals(piC, eng.sumPi[x], dm)
		}
		if _, present := eng.bestPairCost(t, e, logS2); present {
			eng.addSuperedge(a, x)
		}
	}

	dmCC := pmA.m[a] + pmB.m[b] + 2*pmA.m[b]
	for _, x := range pmA.keys {
		if x == a || x == b {
			continue
		}
		decide(x, pmA.m[x]+pmB.m[x])
	}
	for _, x := range pmB.keys {
		if x == a || x == b {
			continue
		}
		if _, inA := pmA.m[x]; inA {
			continue
		}
		decide(x, pmB.m[x])
	}
	if dmCC > 0 {
		decide(a, dmCC)
	}
}
