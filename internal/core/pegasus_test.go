package core

import (
	"math"
	"testing"

	"pegasus/internal/gen"
	"pegasus/internal/graph"
	"pegasus/internal/weights"
)

func baGraph(t *testing.T, n, m int, seed int64) *graph.Graph {
	t.Helper()
	g := gen.BarabasiAlbert(n, m, seed)
	if err := g.Validate(); err != nil {
		t.Fatalf("generator produced invalid graph: %v", err)
	}
	return g
}

func TestSummarizeMeetsBudget(t *testing.T) {
	g := baGraph(t, 400, 3, 1)
	for _, ratio := range []float64{0.2, 0.5, 0.8} {
		res, err := Summarize(g, Config{BudgetRatio: ratio, Seed: 7})
		if err != nil {
			t.Fatalf("ratio %v: %v", ratio, err)
		}
		s := res.Summary
		if err := s.Validate(); err != nil {
			t.Fatalf("ratio %v: invalid summary: %v", ratio, err)
		}
		if got := s.SizeBits(); got > ratio*g.SizeBits()+1e-6 {
			t.Errorf("ratio %v: size %.0f bits exceeds budget %.0f", ratio, got, ratio*g.SizeBits())
		}
		if s.NumSupernodes() >= g.NumNodes() && ratio < 0.9 {
			t.Errorf("ratio %v: no supernodes merged (|S|=%d)", ratio, s.NumSupernodes())
		}
	}
}

func TestSummarizePersonalized(t *testing.T) {
	g := baGraph(t, 300, 3, 2)
	targets := []graph.NodeID{0, 1, 2}
	res, err := Summarize(g, Config{Targets: targets, Alpha: 1.5, BudgetRatio: 0.4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Summary.Validate(); err != nil {
		t.Fatalf("invalid summary: %v", err)
	}
	if res.Summary.SizeBits() > 0.4*g.SizeBits()+1e-6 {
		t.Error("budget exceeded")
	}
	if res.Iterations == 0 {
		t.Error("expected at least one iteration")
	}
}

func TestHugeBudgetKeepsIdentity(t *testing.T) {
	g := baGraph(t, 100, 2, 4)
	res, err := Summarize(g, Config{BudgetBits: 10 * g.SizeBits(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summary
	if s.NumSupernodes() != g.NumNodes() {
		t.Fatalf("|S| = %d, want |V| = %d (no merging needed)", s.NumSupernodes(), g.NumNodes())
	}
	if s.NumSuperedges() != int(g.NumEdges()) {
		t.Fatalf("|P| = %d, want |E| = %d", s.NumSuperedges(), g.NumEdges())
	}
	// Identity summary answers neighborhoods exactly.
	for u := 0; u < g.NumNodes(); u += 13 {
		got := s.Neighbors(graph.NodeID(u))
		want := g.Neighbors(graph.NodeID(u))
		if len(got) != len(want) {
			t.Fatalf("node %d: approximate neighborhood differs on identity summary", u)
		}
	}
}

func TestTwinNodesMergeExactly(t *testing.T) {
	// Complete bipartite K_{4,4}: all left nodes are twins, all right nodes
	// are twins. A tight budget must discover the 2-supernode summary whose
	// reconstruction is exact.
	b := graph.NewBuilder(8)
	for l := 0; l < 4; l++ {
		for r := 4; r < 8; r++ {
			b.AddEdge(graph.NodeID(l), graph.NodeID(r))
		}
	}
	g := b.Build()
	res, err := Summarize(g, Config{BudgetRatio: 0.2, Seed: 5, MaxIter: 30})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summary
	if err := s.Validate(); err != nil {
		t.Fatalf("invalid summary: %v", err)
	}
	if s.NumSupernodes() > 3 {
		t.Fatalf("|S| = %d, want <= 3 (twins should merge)", s.NumSupernodes())
	}
	// Reconstruction should preserve bipartite adjacency for some pairs.
	rec := s.Reconstruct()
	if !rec.HasEdge(0, 4) {
		t.Error("reconstruction lost the bipartite block")
	}
	if rec.HasEdge(0, 1) && s.NumSupernodes() == 2 {
		// left supernode must not carry a self-loop in the exact summary
		t.Error("reconstruction invented intra-left edges")
	}
}

func TestDeterminism(t *testing.T) {
	g := baGraph(t, 250, 3, 6)
	r1, err := Summarize(g, Config{BudgetRatio: 0.4, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Summarize(g, Config{BudgetRatio: 0.4, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Summary.NumSupernodes() != r2.Summary.NumSupernodes() ||
		r1.Summary.NumSuperedges() != r2.Summary.NumSuperedges() {
		t.Fatal("same seed produced different summaries")
	}
	for u := 0; u < g.NumNodes(); u++ {
		if r1.Summary.Supernode(graph.NodeID(u)) != r2.Summary.Supernode(graph.NodeID(u)) {
			t.Fatal("same seed produced different partitions")
		}
	}
}

func TestTraceCallback(t *testing.T) {
	g := baGraph(t, 200, 3, 8)
	var stats []IterStats
	_, err := Summarize(g, Config{
		BudgetRatio: 0.3,
		Seed:        9,
		Trace:       func(s IterStats) { stats = append(stats, s) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) == 0 {
		t.Fatal("trace never invoked")
	}
	if stats[0].Theta != 0.5 {
		t.Errorf("initial theta = %v, want 0.5", stats[0].Theta)
	}
	for i := 1; i < len(stats); i++ {
		if stats[i].Theta > stats[i-1].Theta {
			t.Errorf("adaptive theta increased: %v -> %v", stats[i-1].Theta, stats[i].Theta)
		}
		if stats[i].NumSuper > stats[i-1].NumSuper {
			t.Errorf("|S| increased across iterations")
		}
	}
}

func TestAbsoluteCostMode(t *testing.T) {
	g := baGraph(t, 200, 3, 10)
	res, err := Summarize(g, Config{BudgetRatio: 0.4, Seed: 11, CostMode: AbsoluteCost})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Summary.Validate(); err != nil {
		t.Fatalf("invalid summary under AbsoluteCost: %v", err)
	}
	if res.Summary.SizeBits() > 0.4*g.SizeBits()+1e-6 {
		t.Error("budget exceeded under AbsoluteCost")
	}
}

func TestConfigValidation(t *testing.T) {
	g := baGraph(t, 50, 2, 12)
	cases := []Config{
		{Alpha: 0.5},
		{Beta: -0.1},
		{Beta: 1.5},
		{MaxIter: -3},
		{BudgetRatio: -1},
		{Targets: []graph.NodeID{9999}},
		{MaxGroupSize: 1},
	}
	for i, cfg := range cases {
		if _, err := Summarize(g, cfg); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
}

func TestEvaluateMergeSymmetry(t *testing.T) {
	g := baGraph(t, 120, 3, 13)
	cfg, err := Config{BudgetRatio: 0.5, Seed: 1}.withDefaults(g)
	if err != nil {
		t.Fatal(err)
	}
	w := mustWeights(t, g, []graph.NodeID{0}, 1.5)
	e := newEngine(g, w, cfg)
	for trial := 0; trial < 50; trial++ {
		a := uint32(e.rng.Intn(g.NumNodes()))
		b := uint32(e.rng.Intn(g.NumNodes()))
		if a == b {
			continue
		}
		r1, a1 := e.evaluateMerge(a, b)
		r2, a2 := e.evaluateMerge(b, a)
		if math.Abs(r1-r2) > 1e-9 || math.Abs(a1-a2) > 1e-6 {
			t.Fatalf("evaluateMerge asymmetric: (%v,%v) vs (%v,%v)", r1, a1, r2, a2)
		}
	}
}

func TestEngineCountsStayConsistent(t *testing.T) {
	g := baGraph(t, 150, 3, 14)
	cfg, err := Config{BudgetRatio: 0.5, Seed: 2}.withDefaults(g)
	if err != nil {
		t.Fatal(err)
	}
	w := mustWeights(t, g, nil, 1)
	e := newEngine(g, w, cfg)
	for trial := 0; trial < 60; trial++ {
		slots := e.aliveSlots()
		if len(slots) < 2 {
			break
		}
		a := slots[e.rng.Intn(len(slots))]
		b := slots[e.rng.Intn(len(slots))]
		if a == b {
			continue
		}
		e.performMerge(a, b, false)
		// Recount |P| from scratch and compare.
		count := 0
		for x := range e.sedges {
			if e.members[x] == nil {
				if len(e.sedges[x]) != 0 {
					t.Fatal("dead slot retains superedges")
				}
				continue
			}
			//lint:ordered pure recount: every entry is validated and counted; the total is order-independent
			for y := range e.sedges[x] {
				if !e.alive(y) {
					t.Fatalf("superedge to dead slot %d", y)
				}
				if y >= uint32(x) {
					count++
				}
			}
		}
		if count != e.numP {
			t.Fatalf("numP = %d but counted %d", e.numP, count)
		}
		if len(e.aliveSlots()) != e.numSuper {
			t.Fatalf("numSuper = %d but %d alive", e.numSuper, len(e.aliveSlots()))
		}
	}
	s := e.buildSummary()
	if err := s.Validate(); err != nil {
		t.Fatalf("summary after random merges invalid: %v", err)
	}
}

func TestSparsifyHitsTightBudget(t *testing.T) {
	// MaxIter 2 leaves merging far from the budget; sparsification must
	// close the gap by dropping superedges.
	g := baGraph(t, 200, 3, 15)
	budget := 0.35 * g.SizeBits()
	res, err := Summarize(g, Config{BudgetBits: budget, Seed: 3, MaxIter: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.BudgetMet {
		t.Fatalf("budget not met: size %.0f > %.0f", res.Summary.SizeBits(), budget)
	}
	if res.Summary.SizeBits() > budget+1e-6 {
		t.Fatalf("size %.0f exceeds budget %.0f", res.Summary.SizeBits(), budget)
	}
	if res.DroppedSuperedges == 0 {
		t.Error("expected sparsification to drop superedges with MaxIter=2")
	}
}

func TestUnreachableBudgetReported(t *testing.T) {
	// |V|·log2|S| is a hard floor: with one iteration and a near-zero
	// budget, the budget cannot be met and the result must say so.
	g := baGraph(t, 200, 3, 16)
	res, err := Summarize(g, Config{BudgetBits: 1, Seed: 4, MaxIter: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.BudgetMet {
		t.Fatal("1-bit budget reported as met")
	}
	if res.Summary.NumSuperedges() != 0 {
		t.Error("sparsification should have dropped every superedge chasing an unreachable budget")
	}
}

func TestRemoveSlot(t *testing.T) {
	g := []uint32{5, 7, 9, 11}
	removeSlot(&g, 7)
	if len(g) != 3 {
		t.Fatalf("len = %d, want 3", len(g))
	}
	for _, x := range g {
		if x == 7 {
			t.Fatal("slot 7 still present")
		}
	}
	removeSlot(&g, 999) // absent: no-op
	if len(g) != 3 {
		t.Fatal("removing absent slot changed group")
	}
}

func mustWeights(t *testing.T, g *graph.Graph, targets []graph.NodeID, alpha float64) *weights.Weights {
	t.Helper()
	w, err := weights.New(g, targets, alpha)
	if err != nil {
		t.Fatal(err)
	}
	return w
}
