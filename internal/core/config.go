// Package core implements PeGaSus (Personalized Graph Summarization with
// Scalability), the paper's linear-time algorithm (Alg. 1): shingle-based
// candidate generation (§III-C), greedy merging with selective superedge
// addition driven by the relative personalized cost reduction (§III-B/D),
// adaptive thresholding (§III-E) and final sparsification (§III-F).
//
// The same engine, configured with uniform weights, the fixed threshold
// schedule θ(t) = (1+t)^{-1} and best-of-two encodings, realizes the SSumM
// baseline (§III-G); package ssumm provides that preset.
package core

import (
	"fmt"
	"math"
	"runtime"

	"pegasus/internal/graph"
	"pegasus/internal/summary"
)

// CostMode selects the merge criterion.
type CostMode int

const (
	// RelativeCost ranks merges by the relative cost reduction of Eq. (11) —
	// the PeGaSus default.
	RelativeCost CostMode = iota
	// AbsoluteCost ranks merges by the absolute reduction of Eq. (10); kept
	// for the online-appendix ablation showing why Eq. (11) is preferred.
	AbsoluteCost
)

// Encoding selects how reconstruction error between two supernodes is
// converted into bits.
type Encoding int

const (
	// ErrorCorrection charges 2·log2|V| bits per erroneous unordered pair
	// (Footnote 4) — the PeGaSus choice.
	ErrorCorrection Encoding = iota
	// BestOfTwo additionally considers a binomial-entropy encoding of each
	// superedge block and charges the cheaper of the two — the SSumM choice
	// (§III-G "assumes the best of two encoding schemes").
	BestOfTwo
)

// IterStats captures the engine state after one outer iteration; delivered
// to Config.Trace when set.
type IterStats struct {
	Iteration  int
	Theta      float64 // threshold used during the iteration
	NumSuper   int     // |S| after the iteration
	NumSupered int     // |P| after the iteration
	SizeBits   float64 // Eq. (3) after the iteration
	Merges     int     // merges performed this iteration
	Rejections int     // failed merge attempts this iteration (|L| growth)
	Groups     int     // candidate groups processed
}

// Config parameterizes Summarize. Zero values select the paper defaults.
type Config struct {
	// Targets is the target node set T. Empty means T = V (non-personalized;
	// Eq. (1) degenerates to plain reconstruction error, §III-G).
	Targets []graph.NodeID
	// Alpha is the degree of personalization α ≥ 1 (default 1.25, §V-A).
	Alpha float64
	// Beta is the adaptive-thresholding parameter β ∈ (0,1] (default 0.1).
	Beta float64
	// MaxIter is t_max, the maximum number of outer iterations (default 20).
	MaxIter int
	// BudgetBits is the size budget k in bits. If zero, BudgetRatio is used.
	BudgetBits float64
	// BudgetRatio expresses the budget as a fraction of Size(G) (Eq. 4);
	// default 0.5.
	BudgetRatio float64
	// Seed drives all randomness (hash functions, pair sampling).
	Seed int64
	// Workers bounds the goroutines used by the parallel build pipeline
	// (shingle computation, engine initialization, candidate-pair scoring).
	// 0 selects runtime.GOMAXPROCS(0); 1 forces the fully sequential path.
	// The pipeline is worker-count invariant: every value of Workers yields
	// bit-identical summaries for a fixed seed (see DESIGN.md).
	Workers int
	// MaxGroupSize caps candidate group sizes (default 500, §III-C).
	MaxGroupSize int
	// MaxSplitDepth caps recursive shingle splitting (default 10, §III-C).
	MaxSplitDepth int
	// CostMode: RelativeCost (default, Eq. 11) or AbsoluteCost (Eq. 10).
	CostMode CostMode
	// Encoding: ErrorCorrection (default) or BestOfTwo (SSumM).
	Encoding Encoding
	// Threshold overrides the threshold policy. Nil selects
	// AdaptiveThreshold{Beta} (PeGaSus); ssumm passes FixedSchedule.
	Threshold ThresholdPolicy
	// RandomGroups replaces shingle-based candidate generation with uniform
	// random grouping — the ablation for §III-C's claim that "uniform
	// sampling is likely to result in pairs of supernodes whose merger does
	// not reduce the personalized cost much".
	RandomGroups bool
	// LSHBands enables banded MinHash-LSH candidate generation: the first
	// division of each iteration groups supernodes by band buckets of an
	// (LSHBands × LSHRows) signature matrix instead of a single shingle, so
	// supernodes whose closed neighborhoods have Jaccard similarity s share
	// a group with probability 1-(1-s^LSHRows)^LSHBands. 0 (the default)
	// keeps the single-hash division of §III-C; the default path's output
	// is bit-identical whether or not this knob exists.
	LSHBands int
	// LSHRows is the number of rows per LSH band (default 2 when LSHBands
	// is set, ignored otherwise). More rows make band collisions stricter.
	LSHRows int
	// Trace, when non-nil, receives per-iteration statistics.
	Trace func(IterStats)
}

// The paper defaults (§V-A), shared by withDefaults and ContentKey: the
// two MUST normalize identically, or a zero config and a spelled-out
// default config would fingerprint differently while building the same
// summary (breaking incremental reuse both ways).
const (
	defaultAlpha         = 1.25
	defaultBeta          = 0.1
	defaultMaxIter       = 20
	defaultMaxGroupSize  = 500
	defaultMaxSplitDepth = 10
	defaultLSHRows       = 2
)

// withDefaults fills zero fields with the paper defaults and validates.
func (c Config) withDefaults(g *graph.Graph) (Config, error) {
	if c.Alpha == 0 {
		c.Alpha = defaultAlpha
	}
	if c.Alpha < 1 {
		return c, fmt.Errorf("core: alpha must be >= 1, got %v", c.Alpha)
	}
	if c.Beta == 0 {
		c.Beta = defaultBeta
	}
	// NaN fails every comparison, so it must be rejected explicitly: a NaN
	// Beta would silently degenerate the θ schedule (threshold.go clamps the
	// selection index but never re-validates Beta).
	if math.IsNaN(c.Beta) || c.Beta < 0 || c.Beta > 1 {
		return c, fmt.Errorf("core: beta must be in (0,1], got %v", c.Beta)
	}
	if c.MaxIter == 0 {
		c.MaxIter = defaultMaxIter
	}
	if c.MaxIter < 1 {
		return c, fmt.Errorf("core: MaxIter must be positive, got %d", c.MaxIter)
	}
	if c.BudgetBits == 0 {
		if c.BudgetRatio == 0 {
			c.BudgetRatio = 0.5
		}
		if c.BudgetRatio < 0 {
			return c, fmt.Errorf("core: BudgetRatio must be positive, got %v", c.BudgetRatio)
		}
		c.BudgetBits = c.BudgetRatio * g.SizeBits()
	}
	if c.BudgetBits < 0 {
		return c, fmt.Errorf("core: BudgetBits must be non-negative, got %v", c.BudgetBits)
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Workers < 1 {
		return c, fmt.Errorf("core: Workers must be >= 1 (or 0 for GOMAXPROCS), got %d", c.Workers)
	}
	if c.MaxGroupSize == 0 {
		c.MaxGroupSize = defaultMaxGroupSize
	}
	if c.MaxGroupSize < 2 {
		return c, fmt.Errorf("core: MaxGroupSize must be >= 2, got %d", c.MaxGroupSize)
	}
	if c.MaxSplitDepth == 0 {
		c.MaxSplitDepth = defaultMaxSplitDepth
	}
	if c.MaxSplitDepth < 1 {
		// A negative depth would skip every shingle division and chop all
		// of V randomly on the first iteration — silently degenerating to
		// the RandomGroups ablation. Reject it like the sibling knobs.
		return c, fmt.Errorf("core: MaxSplitDepth must be positive, got %d", c.MaxSplitDepth)
	}
	if c.LSHBands < 0 {
		return c, fmt.Errorf("core: LSHBands must be non-negative, got %d", c.LSHBands)
	}
	if c.LSHBands > 0 {
		if c.RandomGroups {
			return c, fmt.Errorf("core: LSHBands and RandomGroups are mutually exclusive")
		}
		if c.LSHRows == 0 {
			c.LSHRows = defaultLSHRows
		}
		if c.LSHRows < 1 {
			return c, fmt.Errorf("core: LSHRows must be positive, got %d", c.LSHRows)
		}
	} else if c.LSHRows != 0 {
		return c, fmt.Errorf("core: LSHRows requires LSHBands > 0, got LSHRows=%d", c.LSHRows)
	}
	for _, t := range c.Targets {
		if int(t) >= g.NumNodes() {
			return c, fmt.Errorf("core: target %d out of range (|V|=%d)", t, g.NumNodes())
		}
	}
	if c.Threshold == nil {
		c.Threshold = AdaptiveThreshold{Beta: c.Beta}
	}
	return c, nil
}

// ContentKey returns a canonical serialization of the configuration fields
// that determine summarization output for a fixed graph, target set and
// budget — every field except Targets, BudgetBits and BudgetRatio (supplied
// per shard by cluster builds) and the output-invariant knobs Workers and
// Trace (the build pipeline is worker-count invariant; see DESIGN.md).
// Zero-valued fields are normalized to the paper defaults first, so a zero
// config and an explicitly-spelled-default config share one key.
//
// The second return is false when the config carries a custom Threshold
// policy: an arbitrary ThresholdPolicy has no canonical serialization, so
// such configs cannot be fingerprinted (and incremental cluster rebuilds
// fall back to building every shard).
func (c Config) ContentKey() (string, bool) {
	if c.Threshold != nil {
		return "", false
	}
	// Mirror withDefaults' graph-independent normalization exactly: two
	// configs that summarize identically must share a key.
	alpha, beta := c.Alpha, c.Beta
	if alpha == 0 {
		alpha = defaultAlpha
	}
	if beta == 0 {
		beta = defaultBeta
	}
	maxIter, maxGroup, maxSplit := c.MaxIter, c.MaxGroupSize, c.MaxSplitDepth
	if maxIter == 0 {
		maxIter = defaultMaxIter
	}
	if maxGroup == 0 {
		maxGroup = defaultMaxGroupSize
	}
	if maxSplit == 0 {
		maxSplit = defaultMaxSplitDepth
	}
	key := fmt.Sprintf("pegasus1|a%x|b%x|i%d|s%d|g%d|d%d|c%d|e%d|r%t",
		math.Float64bits(alpha), math.Float64bits(beta), maxIter, c.Seed,
		maxGroup, maxSplit, c.CostMode, c.Encoding, c.RandomGroups)
	// New knobs append to the key only when they leave their default-off
	// state: every pre-LSH fingerprint (and the .pgsum artifacts keyed by
	// it) stays valid, and an explicit LSHRows equal to its default
	// normalizes to the same key as the implied one.
	if c.LSHBands > 0 {
		rows := c.LSHRows
		if rows == 0 {
			rows = defaultLSHRows
		}
		key += fmt.Sprintf("|lb%d|lr%d", c.LSHBands, rows)
	}
	return key, true
}

// Result is the output of Summarize.
type Result struct {
	// Summary is the final summary graph.
	Summary *summary.Summary
	// Iterations actually executed (≤ MaxIter; stops early once within
	// budget).
	Iterations int
	// DroppedSuperedges removed by final sparsification (§III-F).
	DroppedSuperedges int
	// FinalTheta is the threshold after the last iteration.
	FinalTheta float64
	// BudgetMet reports whether the final size is within the budget.
	// Sparsification can only drop superedges (§III-F); the node-membership
	// term |V|·log2|S| is a hard floor, so extremely small budgets may be
	// unreachable (the paper's experiments use ratios ≥ 0.1 where this never
	// occurs).
	BudgetMet bool
}
