package core

import (
	"context"
	"math/rand"

	"pegasus/internal/graph"
	"pegasus/internal/weights"
)

// CandidateBench exposes candidate generation in isolation, for the
// pegasus-bench candidate_gen section and the sort-vs-map equivalence
// tests. It wraps a fresh singleton engine (uniform weights — grouping
// never reads π) and re-seeds the engine RNG before every pass, so any two
// passes over the same configuration consume identical random streams and
// their outputs are directly comparable.
type CandidateBench struct {
	eng *engine
	cfg Config
}

// NewCandidateBench validates cfg against g and builds the singleton state.
func NewCandidateBench(g *graph.Graph, cfg Config) (*CandidateBench, error) {
	cfg, err := cfg.withDefaults(g)
	if err != nil {
		return nil, err
	}
	return &CandidateBench{eng: newEngine(g, weights.Uniform(g.NumNodes()), cfg), cfg: cfg}, nil
}

// Alive returns the number of live supernode slots (= |V| for the
// singleton state the bench operates on).
func (b *CandidateBench) Alive() int { return b.eng.numSuper }

// Groups runs one production (sort-based, and LSH-banded when configured)
// candidate-generation pass for the given iteration number.
func (b *CandidateBench) Groups(ctx context.Context, iter int) [][]uint32 {
	b.eng.rng = rand.New(rand.NewSource(b.cfg.Seed))
	return b.eng.candidateGroups(ctx, iter)
}

// GroupsLegacy runs the retained map-based reference implementation under
// the same RNG discipline. Equal seeds and iteration numbers must yield
// byte-identical output to Groups when LSH is off — the equivalence the
// property tests and the candidate_gen bench gate assert.
func (b *CandidateBench) GroupsLegacy(ctx context.Context, iter int) [][]uint32 {
	b.eng.rng = rand.New(rand.NewSource(b.cfg.Seed))
	return b.eng.candidateGroupsLegacyMap(ctx, iter)
}
