package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pegasus/internal/gen"
	"pegasus/internal/graph"
	"pegasus/internal/metrics"
	"pegasus/internal/weights"
)

// TestPropertySummarizeAlwaysValid fuzzes Summarize over random graphs and
// configurations: the output must always be a valid partition with symmetric
// superedges, and with a feasible budget it must be met.
func TestPropertySummarizeAlwaysValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var g *graph.Graph
		switch rng.Intn(3) {
		case 0:
			g = gen.BarabasiAlbert(30+rng.Intn(150), 1+rng.Intn(4), seed)
		case 1:
			g = gen.ErdosRenyi(30+rng.Intn(100), 50+rng.Intn(200), seed)
		default:
			g = gen.PlantedPartition(gen.SBMConfig{
				Nodes: 40 + rng.Intn(120), Communities: 1 + rng.Intn(6),
				AvgDegree: 2 + 6*rng.Float64(), MixingP: rng.Float64() / 2,
			}, seed)
		}
		ratio := 0.25 + rng.Float64()*0.65
		var targets []graph.NodeID
		if rng.Intn(2) == 0 {
			targets = graph.SampleNodes(g, 1+rng.Intn(5), seed)
		}
		res, err := Summarize(g, Config{
			Targets:     targets,
			Alpha:       1 + rng.Float64(),
			Beta:        0.05 + rng.Float64()*0.9,
			BudgetRatio: ratio,
			MaxIter:     1 + rng.Intn(20),
			Seed:        seed,
		})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if err := res.Summary.Validate(); err != nil {
			t.Logf("seed %d: invalid summary: %v", seed, err)
			return false
		}
		if res.BudgetMet && res.Summary.SizeBits() > ratio*g.SizeBits()+1e-6 {
			t.Logf("seed %d: BudgetMet but size exceeds budget", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyPersonalizedErrorFiniteNonneg fuzzes the error evaluator on
// engine outputs: Eq. (1) is a sum of non-negative weights and must be
// finite and non-negative, and zero only with no flipped pairs.
func TestPropertyPersonalizedErrorFiniteNonneg(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.BarabasiAlbert(50+rng.Intn(100), 2, seed)
		res, err := Summarize(g, Config{BudgetRatio: 0.4, Seed: seed})
		if err != nil {
			return false
		}
		w, err := weights.New(g, graph.SampleNodes(g, 2, seed), 1.5)
		if err != nil {
			return false
		}
		e := metrics.PersonalizedError(g, res.Summary, w)
		return e >= 0 && e < 1e18
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestMergeEverythingStillWorks merges all supernodes into one and checks
// the degenerate summary behaves.
func TestMergeEverythingStillWorks(t *testing.T) {
	g := gen.BarabasiAlbert(40, 2, 9)
	e := newTestEngine(t, g, Config{Seed: 1})
	for {
		slots := e.aliveSlots()
		if len(slots) < 2 {
			break
		}
		e.performMerge(slots[0], slots[1], false)
	}
	if e.numSuper != 1 {
		t.Fatalf("numSuper = %d, want 1", e.numSuper)
	}
	s := e.buildSummary()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.NumSupernodes() != 1 {
		t.Fatal("expected a single supernode")
	}
	// The single supernode must carry a self-loop (the graph has edges and
	// a dense block is cheaper than |E| corrections at this density).
	if s.NumSuperedges() > 1 {
		t.Fatalf("|P| = %d, want <= 1", s.NumSuperedges())
	}
}

// TestRandomGroupsAblationRuns exercises the RandomGroups engine option.
func TestRandomGroupsAblationRuns(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, 10)
	res, err := Summarize(g, Config{BudgetRatio: 0.4, Seed: 2, RandomGroups: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Summary.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Summary.SizeBits() > 0.4*g.SizeBits()+1e-6 {
		t.Fatal("budget exceeded under RandomGroups")
	}
}
