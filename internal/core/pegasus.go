package core

import (
	"context"

	"pegasus/internal/graph"
	"pegasus/internal/weights"
)

// Summarize runs PeGaSus (Alg. 1) on g and returns a summary graph
// personalized to cfg.Targets within the bit budget.
func Summarize(g *graph.Graph, cfg Config) (*Result, error) {
	return SummarizeCtx(context.Background(), g, cfg)
}

// SummarizeCtx is Summarize with cooperative cancellation: the engine checks
// ctx between candidate groups and returns ctx.Err() as soon as it fires.
// cfg.Workers bounds the goroutines of the parallel build pipeline.
func SummarizeCtx(ctx context.Context, g *graph.Graph, cfg Config) (*Result, error) {
	cfg, err := cfg.withDefaults(g)
	if err != nil {
		return nil, err
	}
	w, err := weights.NewParallel(g, cfg.Targets, cfg.Alpha, cfg.Workers)
	if err != nil {
		return nil, err
	}
	return summarizeWeighted(ctx, g, w, cfg)
}

// summarizeWeighted is the engine loop shared by PeGaSus and the SSumM
// preset (which supplies uniform weights).
func summarizeWeighted(ctx context.Context, g *graph.Graph, w *weights.Weights, cfg Config) (*Result, error) {
	eng := newEngine(g, w, cfg)
	theta := cfg.Threshold.Initial()
	iterations := 0
	finalTheta := theta

	for t := 1; t <= cfg.MaxIter && eng.sizeBits() > cfg.BudgetBits; t++ {
		iterations = t
		groups := eng.candidateGroups(t)
		var rejected []float64
		merges := 0
		for _, grp := range groups {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			merges += eng.mergeGroup(grp, theta, &rejected)
			if eng.sizeBits() <= cfg.BudgetBits {
				break
			}
		}
		if cfg.Trace != nil {
			cfg.Trace(IterStats{
				Iteration:  t,
				Theta:      theta,
				NumSuper:   eng.numSuper,
				NumSupered: eng.numP,
				SizeBits:   eng.sizeBits(),
				Merges:     merges,
				Rejections: len(rejected),
				Groups:     len(groups),
			})
		}
		theta = cfg.Threshold.Next(t, rejected, theta)
		finalTheta = theta
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	dropped := 0
	if eng.sizeBits() > cfg.BudgetBits {
		dropped = eng.sparsify(cfg.BudgetBits)
	}
	return &Result{
		Summary:           eng.buildSummary(),
		Iterations:        iterations,
		DroppedSuperedges: dropped,
		FinalTheta:        finalTheta,
		BudgetMet:         eng.sizeBits() <= cfg.BudgetBits+1e-9,
	}, nil
}

// SummarizeNonPersonalized is a convenience wrapper for the T = V case: the
// objective reduces to the plain (unweighted) reconstruction error while
// keeping PeGaSus's adaptive thresholding and relative-cost search.
func SummarizeNonPersonalized(g *graph.Graph, cfg Config) (*Result, error) {
	return SummarizeNonPersonalizedCtx(context.Background(), g, cfg)
}

// SummarizeNonPersonalizedCtx is SummarizeNonPersonalized with cooperative
// cancellation.
func SummarizeNonPersonalizedCtx(ctx context.Context, g *graph.Graph, cfg Config) (*Result, error) {
	cfg.Targets = nil
	cfg.Alpha = 1
	cfg, err := cfg.withDefaults(g)
	if err != nil {
		return nil, err
	}
	// withDefaults resets Alpha=0 to 1.25; force uniform weights.
	return summarizeWeighted(ctx, g, weights.Uniform(g.NumNodes()), cfg)
}
