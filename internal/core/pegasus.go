package core

import (
	"context"

	"pegasus/internal/graph"
	"pegasus/internal/obs"
	"pegasus/internal/weights"
)

// Summarize runs PeGaSus (Alg. 1) on g and returns a summary graph
// personalized to cfg.Targets within the bit budget.
func Summarize(g *graph.Graph, cfg Config) (*Result, error) {
	//lint:ctxflow public convenience entry point for callers without a context; SummarizeCtx is the propagating path
	return SummarizeCtx(context.Background(), g, cfg)
}

// SummarizeCtx is Summarize with cooperative cancellation: the engine checks
// ctx between candidate groups and returns ctx.Err() as soon as it fires.
// cfg.Workers bounds the goroutines of the parallel build pipeline.
func SummarizeCtx(ctx context.Context, g *graph.Graph, cfg Config) (*Result, error) {
	cfg, err := cfg.withDefaults(g)
	if err != nil {
		return nil, err
	}
	_, sp := obs.StartSpan(ctx, "build.weights")
	w, err := weights.NewParallel(g, cfg.Targets, cfg.Alpha, cfg.Workers)
	sp.AttrInt("nodes", g.NumNodes())
	sp.End()
	if err != nil {
		return nil, err
	}
	return summarizeWeighted(ctx, g, w, cfg)
}

// summarizeWeighted is the engine loop shared by PeGaSus and the SSumM
// preset (which supplies uniform weights).
func summarizeWeighted(ctx context.Context, g *graph.Graph, w *weights.Weights, cfg Config) (*Result, error) {
	eng := newEngine(g, w, cfg)
	theta := cfg.Threshold.Initial()
	iterations := 0
	finalTheta := theta

	for t := 1; t <= cfg.MaxIter && eng.sizeBits() > cfg.BudgetBits; t++ {
		iterations = t
		_, csp := obs.StartSpan(ctx, "build.candidates")
		groups := eng.candidateGroups(ctx, t)
		csp.AttrInt("iteration", t)
		csp.AttrInt("groups", len(groups))
		csp.End()
		var rejected []float64
		merges := 0
		_, msp := obs.StartSpan(ctx, "build.merge")
		for _, grp := range groups {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if cfg.LSHBands > 0 {
				// LSH bands overlap, so a slot merged away by an earlier
				// group may linger in this one; the default disjoint
				// grouping never needs (and must not be perturbed by) this.
				if grp = eng.compactAlive(grp); len(grp) <= 1 {
					continue
				}
			}
			merges += eng.mergeGroup(grp, theta, &rejected)
			if eng.sizeBits() <= cfg.BudgetBits {
				break
			}
		}
		msp.AttrInt("iteration", t)
		msp.AttrInt("merges", merges)
		msp.End()
		if cfg.Trace != nil {
			cfg.Trace(IterStats{
				Iteration:  t,
				Theta:      theta,
				NumSuper:   eng.numSuper,
				NumSupered: eng.numP,
				SizeBits:   eng.sizeBits(),
				Merges:     merges,
				Rejections: len(rejected),
				Groups:     len(groups),
			})
		}
		theta = cfg.Threshold.Next(t, rejected, theta)
		finalTheta = theta
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	dropped := 0
	if eng.sizeBits() > cfg.BudgetBits {
		_, ssp := obs.StartSpan(ctx, "build.sparsify")
		dropped = eng.sparsify(cfg.BudgetBits)
		ssp.AttrInt("dropped", dropped)
		ssp.End()
	}
	_, fsp := obs.StartSpan(ctx, "build.finalize")
	summ := eng.buildSummary()
	fsp.End()
	return &Result{
		Summary:           summ,
		Iterations:        iterations,
		DroppedSuperedges: dropped,
		FinalTheta:        finalTheta,
		BudgetMet:         eng.sizeBits() <= cfg.BudgetBits+1e-9,
	}, nil
}

// SummarizeNonPersonalized is a convenience wrapper for the T = V case: the
// objective reduces to the plain (unweighted) reconstruction error while
// keeping PeGaSus's adaptive thresholding and relative-cost search.
func SummarizeNonPersonalized(g *graph.Graph, cfg Config) (*Result, error) {
	//lint:ctxflow public convenience entry point for callers without a context; the Ctx variant is the propagating path
	return SummarizeNonPersonalizedCtx(context.Background(), g, cfg)
}

// SummarizeNonPersonalizedCtx is SummarizeNonPersonalized with cooperative
// cancellation.
func SummarizeNonPersonalizedCtx(ctx context.Context, g *graph.Graph, cfg Config) (*Result, error) {
	cfg.Targets = nil
	cfg.Alpha = 1
	cfg, err := cfg.withDefaults(g)
	if err != nil {
		return nil, err
	}
	// withDefaults resets Alpha=0 to 1.25; force uniform weights.
	return summarizeWeighted(ctx, g, weights.Uniform(g.NumNodes()), cfg)
}
