package core

import "pegasus/internal/selection"

// ThresholdPolicy decides the merge threshold θ across iterations. θ trades
// exploitation (low θ: merge aggressively now) against exploration (high θ:
// wait for better pairs from future candidate groups), §III-E.
type ThresholdPolicy interface {
	// Initial returns θ for the first iteration.
	Initial() float64
	// Next returns θ for iteration iter+1 given the relative reductions
	// rejected during iteration iter (the list L) and the current θ.
	Next(iter int, rejected []float64, current float64) float64
}

// AdaptiveThreshold is the PeGaSus policy: θ starts at 0.5 and becomes the
// ⌊β·|L|⌋-th largest rejected reduction each iteration (selected in O(|L|)
// time). Since every entry of L is below the current θ, θ decreases
// monotonically, gradually shifting from exploration to exploitation.
//
// One guard beyond the paper's pseudocode: θ is additionally capped by the
// SSumM schedule (1+t)^{-1}. On small or very sparse inputs the rejected
// argmax reductions can pile up immediately below the current θ, making the
// ⌊β|L|⌋-th largest decrease only infinitesimally and stalling merging far
// above tight budgets — a regime the paper's large dense graphs do not
// exhibit (its Fig. 7 curves reach ratio 0.1, which on Caida requires
// merging to ~60 of 26k supernodes within t_max = 20 iterations). The cap
// restores that guaranteed decay while keeping the data-driven quantile in
// charge whenever it is the smaller of the two; see DESIGN.md §4.
type AdaptiveThreshold struct {
	// Beta ∈ (0,1]: larger values decrease θ faster (§III-E). Beta ≈ 0
	// selects the largest rejected entry (slowest decay).
	Beta float64
}

// Initial implements ThresholdPolicy.
func (a AdaptiveThreshold) Initial() float64 { return 0.5 }

// Next implements ThresholdPolicy.
func (a AdaptiveThreshold) Next(iter int, rejected []float64, current float64) float64 {
	cap := 1 / float64(1+iter+1) // the fixed-schedule value for iteration iter+1
	if len(rejected) == 0 {
		if current < cap {
			return current
		}
		return cap
	}
	k := int(a.Beta * float64(len(rejected)))
	if k < 1 {
		k = 1
	}
	if k > len(rejected) {
		k = len(rejected)
	}
	sel := selection.KthLargest(rejected, k)
	if sel < cap {
		return sel
	}
	return cap
}

// FixedSchedule is the SSumM policy (§III-G): θ(t) = (1+t)^{-1} for
// t < TMax and 0 afterwards. With t starting at 1, the initial threshold is
// 0.5, like PeGaSus.
type FixedSchedule struct {
	// TMax is t_max; at the final iteration the threshold drops to 0.
	TMax int
}

// Initial implements ThresholdPolicy.
func (f FixedSchedule) Initial() float64 { return 0.5 }

// Next implements ThresholdPolicy.
func (f FixedSchedule) Next(iter int, _ []float64, _ float64) float64 {
	t := iter + 1 // θ for the upcoming iteration
	if f.TMax > 0 && t >= f.TMax {
		return 0
	}
	return 1 / float64(1+t)
}
