package core

import (
	"bytes"
	"context"
	"testing"

	"pegasus/internal/gen"
	"pegasus/internal/obs"
)

// TestTracingDoesNotPerturbSummary is the golden-fingerprint guarantee of
// the observability layer: building with a trace attached must produce a
// bit-identical artifact to the untraced build — spans observe the engine,
// they never touch its randomness or its merge decisions.
func TestTracingDoesNotPerturbSummary(t *testing.T) {
	g := gen.PlantedPartition(gen.SBMConfig{Nodes: 240, Communities: 4, AvgDegree: 10, MixingP: 0.08}, 2)
	cfg := Config{BudgetRatio: 0.4, Seed: 9, Workers: 1}

	plain, err := SummarizeCtx(context.Background(), g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTrace()
	traced, err := SummarizeCtx(obs.WithTrace(context.Background(), tr), g, cfg)
	if err != nil {
		t.Fatal(err)
	}

	var a, b bytes.Buffer
	if err := plain.Summary.Write(&a); err != nil {
		t.Fatal(err)
	}
	if err := traced.Summary.Write(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("traced build produced a different artifact than the untraced build")
	}
	if plain.Iterations != traced.Iterations || plain.FinalTheta != traced.FinalTheta {
		t.Fatalf("traced build diverged: iterations %d vs %d, theta %v vs %v",
			plain.Iterations, traced.Iterations, plain.FinalTheta, traced.FinalTheta)
	}

	// And the trace actually saw the engine: every phase of the build loop
	// must have recorded at least one span.
	names := map[string]int{}
	for _, s := range tr.View().Spans {
		names[s.Name]++
	}
	for _, phase := range []string{"build.weights", "build.shingle", "build.candidates", "build.merge", "build.finalize"} {
		if names[phase] == 0 {
			t.Errorf("trace missing %q span; have %v", phase, names)
		}
	}
}
