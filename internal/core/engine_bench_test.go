package core

import (
	"context"
	"fmt"
	"testing"

	"pegasus/internal/gen"
	"pegasus/internal/weights"
)

// Micro-benchmarks for the engine's hot paths; useful when tuning the merge
// loop, which dominates summarization time.

func benchEngine(b *testing.B, n, m int) *engine {
	b.Helper()
	g := gen.BarabasiAlbert(n, m, 1)
	cfg, err := Config{BudgetRatio: 0.5, Seed: 1}.withDefaults(g)
	if err != nil {
		b.Fatal(err)
	}
	w, err := weights.New(g, []uint32{0, 1, 2}, 1.25)
	if err != nil {
		b.Fatal(err)
	}
	return newEngine(g, w, cfg)
}

// BenchmarkEvaluateMerge measures one candidate-pair evaluation (Lemma 1:
// O(deg(A)+deg(B))).
func BenchmarkEvaluateMerge(b *testing.B) {
	e := benchEngine(b, 5000, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := uint32(i % 5000)
		c := uint32((i*7 + 1) % 5000)
		if a == c {
			c = (c + 1) % 5000
		}
		e.evaluateMerge(a, c)
	}
}

// BenchmarkCandidateGroups measures one full shingle-grouping pass (O(|E|)).
func BenchmarkCandidateGroups(b *testing.B) {
	e := benchEngine(b, 5000, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.candidateGroups(context.Background(), i+1)
	}
}

// BenchmarkSummarizeWorkers measures a full summarization at different
// engine parallelism levels; every level produces the same summary, so the
// deltas are pure pipeline overhead/speedup.
func BenchmarkSummarizeWorkers(b *testing.B) {
	g := gen.BarabasiAlbert(3000, 4, 1)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Summarize(g, Config{BudgetRatio: 0.4, Seed: 7, Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPerformMerge measures merge application including superedge
// re-selection.
func BenchmarkPerformMerge(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e := benchEngine(b, 1000, 4)
		slots := e.aliveSlots()
		b.StartTimer()
		for j := 0; j+1 < len(slots) && j < 200; j += 2 {
			e.performMerge(slots[j], slots[j+1], false)
		}
	}
}
