package core

import "math"

// mergeGroup runs the merging-and-addition step (Alg. 2) on one candidate
// group: each round samples |Ci| supernode pairs, scores the distinct ones
// (in parallel when the round is large, see scorer.go), takes the pair
// maximizing the cost reduction, merges it if the reduction clears the
// threshold θ, and otherwise records the rejected reduction in L. The group
// is abandoned after log2|Ci| consecutive failures. Returns the number of
// merges performed; rejected reductions are appended to *rejected.
//
// Two legacy defects are fixed here while preserving the exact RNG stream
// and argmax selection of the original sequential loop: re-drawn (a,b)
// pairs are deduped instead of burning evaluations on identical re-scores,
// and the argmax evaluation's masses are handed to performMergeWith instead
// of being recomputed.
func (e *engine) mergeGroup(group []uint32, theta float64, rejected *[]float64) int {
	fails := 0
	merges := 0
	// group is mutated in place: merged-away slots are swapped out.
	for len(group) > 1 && float64(fails) <= math.Log2(float64(len(group))) {
		nPairs := len(group)
		// Draw the full round upfront. The draws never depended on the
		// interleaved evaluations, so batching consumes the same RNG values
		// in the same order as the legacy loop.
		samples := e.scorer.samples[:0]
		for i := 0; i < nPairs; i++ {
			ai := e.rng.Intn(len(group))
			bi := e.rng.Intn(len(group) - 1)
			if bi >= ai {
				bi++
			}
			samples = append(samples, pairSample{a: group[ai], b: group[bi]})
		}
		e.scorer.samples = samples
		win := e.scoreRound(e.scorer.dedupe(samples))
		if win == nil {
			break
		}
		// The threshold compares against the same statistic that ranked the
		// pair; under AbsoluteCost the scale differs but the adaptive policy
		// tracks it automatically via L.
		if win.bestScore >= theta {
			e.performMergeWith(win.best.a, win.best.b, &win.bestA, &win.bestB, true)
			removeSlot(&group, win.best.b)
			merges++
			fails = 0
		} else {
			*rejected = append(*rejected, win.bestScore)
			fails++
		}
	}
	return merges
}

// removeSlot deletes the slot s from group (swap-remove).
func removeSlot(group *[]uint32, s uint32) {
	g := *group
	for i, x := range g {
		if x == s {
			g[i] = g[len(g)-1]
			*group = g[:len(g)-1]
			return
		}
	}
}
