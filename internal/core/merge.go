package core

import "math"

// mergeGroup runs the merging-and-addition step (Alg. 2) on one candidate
// group: repeatedly sample |Ci| supernode pairs, take the pair maximizing
// the cost reduction, merge it if the reduction clears the threshold θ, and
// otherwise record the rejected reduction in L. The group is abandoned after
// log2|Ci| consecutive failures. Returns the number of merges performed;
// rejected reductions are appended to *rejected.
func (e *engine) mergeGroup(group []uint32, theta float64, rejected *[]float64) int {
	fails := 0
	merges := 0
	// group is mutated in place: merged-away slots are swapped out.
	for len(group) > 1 && float64(fails) <= math.Log2(float64(len(group))) {
		nPairs := len(group)
		bestScore := math.Inf(-1)
		var bestA, bestB uint32
		found := false
		for i := 0; i < nPairs; i++ {
			ai := e.rng.Intn(len(group))
			bi := e.rng.Intn(len(group) - 1)
			if bi >= ai {
				bi++
			}
			a, b := group[ai], group[bi]
			rel, abs := e.evaluateMerge(a, b)
			score := rel
			if e.cfg.CostMode == AbsoluteCost {
				score = abs
			}
			if score > bestScore {
				bestScore, bestA, bestB, found = score, a, b, true
			}
		}
		if !found {
			break
		}
		// The threshold compares against the same statistic that ranked the
		// pair; under AbsoluteCost the scale differs but the adaptive policy
		// tracks it automatically via L.
		if bestScore >= theta {
			// pmA/pmB hold the masses of the *last* evaluated pair, not
			// necessarily the argmax; recompute inside performMerge.
			e.performMerge(bestA, bestB, false)
			removeSlot(&group, bestB)
			merges++
			fails = 0
		} else {
			*rejected = append(*rejected, bestScore)
			fails++
		}
	}
	return merges
}

// removeSlot deletes the slot s from group (swap-remove).
func removeSlot(group *[]uint32, s uint32) {
	g := *group
	for i, x := range g {
		if x == s {
			g[i] = g[len(g)-1]
			*group = g[:len(g)-1]
			return
		}
	}
}
