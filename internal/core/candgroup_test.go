package core

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"pegasus/internal/gen"
	"pegasus/internal/graph"
)

// cliqueGraph builds k disjoint m-cliques: members of one clique share an
// identical closed neighborhood (the clique itself), members of different
// cliques share nothing — planted similarity 1 within and 0 across.
func cliqueGraph(k, m int) *graph.Graph {
	b := graph.NewBuilder(k * m)
	for c := 0; c < k; c++ {
		base := graph.NodeID(c * m)
		for i := 0; i < m; i++ {
			for j := i + 1; j < m; j++ {
				b.AddEdge(base+graph.NodeID(i), base+graph.NodeID(j))
			}
		}
	}
	return b.Build()
}

func groupsEqual(a, b [][]uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// TestSortGroupingMatchesLegacyMap is the tentpole equivalence property:
// for every graph shape, seed, worker count and iteration — on the
// singleton state and after merges have killed slots — the sort-based
// pipeline must emit byte for byte the groups of the retained map-based
// reference. K20 forces the failed-split path (all closed neighborhoods
// identical, so every hash yields one shingle until the depth cap chops);
// the small MaxGroupSize forces the chop path on the clique graph too.
func TestSortGroupingMatchesLegacyMap(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		cfg  Config
	}{
		{"ba300", gen.BarabasiAlbert(300, 3, 1), Config{}},
		{"cliques", cliqueGraph(40, 4), Config{MaxGroupSize: 8, MaxSplitDepth: 2}},
		{"k20", cliqueGraph(1, 20), Config{MaxGroupSize: 6, MaxSplitDepth: 3}},
	}
	for _, tc := range cases {
		for _, seed := range []int64{1, 9, 42} {
			for _, workers := range []int{1, 2, 8} {
				cfg := tc.cfg
				cfg.Seed = seed
				cfg.Workers = workers
				e := newTestEngine(t, tc.g, cfg)
				// Kill a few slots so members/dead-slot handling is exercised.
				e.performMerge(0, 1, false)
				e.performMerge(2, 3, false)
				for iter := 1; iter <= 3; iter++ {
					e.rng = rand.New(rand.NewSource(seed))
					want := e.candidateGroupsLegacyMap(context.Background(), iter)
					e.rng = rand.New(rand.NewSource(seed))
					got := e.candidateGroups(context.Background(), iter)
					if !groupsEqual(got, want) {
						t.Fatalf("%s seed %d workers %d iter %d: sort-based groups differ from legacy map (%d vs %d groups)",
							tc.name, seed, workers, iter, len(got), len(want))
					}
				}
			}
		}
	}
}

// TestSortGroupingWorkerCountInvariant: the production pipeline itself must
// be worker-count invariant (the legacy comparison above implies it, but
// this pins the property directly on the shipped path).
func TestSortGroupingWorkerCountInvariant(t *testing.T) {
	g := gen.BarabasiAlbert(400, 4, 2)
	var want [][]uint32
	for _, workers := range []int{1, 2, 8} {
		e := newTestEngine(t, g, Config{Seed: 11, Workers: workers})
		e.rng = rand.New(rand.NewSource(11))
		got := e.candidateGroups(context.Background(), 2)
		if workers == 1 {
			want = got
			continue
		}
		if !groupsEqual(got, want) {
			t.Fatalf("workers %d: groups differ from the Workers=1 output", workers)
		}
	}
}

// TestLSHGroupsPlantedCliques: clique members have Jaccard-1 closed
// neighborhoods, so every band buckets each clique together and the
// cross-band dedup collapses the repeats — LSH must emit exactly one group
// per clique and never mix cliques.
func TestLSHGroupsPlantedCliques(t *testing.T) {
	const k, m = 30, 4
	g := cliqueGraph(k, m)
	e := newTestEngine(t, g, Config{Seed: 3, LSHBands: 4, LSHRows: 2})
	groups := e.candidateGroups(context.Background(), 1)
	if len(groups) != k {
		t.Fatalf("got %d groups, want one per clique (%d)", len(groups), k)
	}
	for _, grp := range groups {
		if len(grp) != m {
			t.Fatalf("group of size %d, want whole clique (%d)", len(grp), m)
		}
		clique := grp[0] / m
		for i, a := range grp {
			if a/m != clique || a != grp[0]+uint32(i) {
				t.Fatalf("group %v mixes cliques or reorders slots", grp)
			}
		}
	}
}

// TestLSHBandCollisionMonotonicity checks the 1-(1-s^r)^b curve directionally
// on planted moderate similarity: gadgets of two nodes with Jaccard-1/5
// closed neighborhoods. More bands must catch (strictly) more pairs, more
// rows per band must catch fewer, across many independent iterations.
func TestLSHBandCollisionMonotonicity(t *testing.T) {
	const pairs, iters = 40, 25
	b := graph.NewBuilder(5 * pairs)
	for p := 0; p < pairs; p++ {
		u, v, anchor, x, y := graph.NodeID(5*p), graph.NodeID(5*p+1), graph.NodeID(5*p+2), graph.NodeID(5*p+3), graph.NodeID(5*p+4)
		b.AddEdge(u, anchor)
		b.AddEdge(v, anchor)
		b.AddEdge(u, x)
		b.AddEdge(v, y)
	}
	g := b.Build()

	collisions := func(bands, rows int) int {
		e := newTestEngine(t, g, Config{Seed: 13, LSHBands: bands, LSHRows: rows})
		total := 0
		for it := 1; it <= iters; it++ {
			for _, w := range e.lshSeedWork(context.Background(), it, uint64(it)*0x9e3779b97f4a7c15) {
				for p := 0; p < pairs; p++ {
					hasU, hasV := false, false
					for _, a := range w.slots {
						if a == uint32(5*p) {
							hasU = true
						}
						if a == uint32(5*p+1) {
							hasV = true
						}
					}
					if hasU && hasV {
						total++
					}
				}
			}
		}
		return total
	}

	manyBands := collisions(8, 2) // p = 1-(1-1/25)^8 ≈ 0.28 per pair-iteration
	oneBand := collisions(1, 2)   // p = 1/25 = 0.04
	moreRows := collisions(8, 4)  // p = 1-(1-1/625)^8 ≈ 0.013
	if manyBands <= oneBand {
		t.Errorf("more bands should catch more similar pairs: b=8 got %d, b=1 got %d", manyBands, oneBand)
	}
	if moreRows >= manyBands {
		t.Errorf("more rows should catch fewer pairs: r=4 got %d, r=2 got %d", moreRows, manyBands)
	}
	// Loose binomial sanity around the expected counts (n = 1000 trials).
	if manyBands < 180 || manyBands > 400 {
		t.Errorf("b=8 r=2 collisions = %d, want ≈ 280 (1-(1-s^2)^8 with s=1/5)", manyBands)
	}
	if oneBand > 100 {
		t.Errorf("b=1 r=2 collisions = %d, want ≈ 40", oneBand)
	}
}

// TestConfigRejectsBadCandidateKnobs pins the validation added alongside
// the pipeline: negative MaxSplitDepth (previously only zero was
// defaulted, so -1 silently degenerated every division into the random
// chop) and the LSH knob combinations.
func TestConfigRejectsBadCandidateKnobs(t *testing.T) {
	g := gen.BarabasiAlbert(50, 2, 1)
	bad := []Config{
		{MaxSplitDepth: -1},
		{MaxIter: -3},
		{LSHBands: -2},
		{LSHBands: 4, LSHRows: -1},
		{LSHRows: 2},                      // rows without bands
		{LSHBands: 4, RandomGroups: true}, // mutually exclusive
	}
	for i, cfg := range bad {
		if _, err := cfg.withDefaults(g); err == nil {
			t.Errorf("case %d (%+v): invalid config accepted", i, cfg)
		}
	}
	ok, err := Config{LSHBands: 4}.withDefaults(g)
	if err != nil {
		t.Fatalf("LSHBands alone rejected: %v", err)
	}
	if ok.LSHRows != defaultLSHRows {
		t.Errorf("LSHRows defaulted to %d, want %d", ok.LSHRows, defaultLSHRows)
	}
}

// TestContentKeyLSHNormalization: LSH-off keys must stay byte-identical to
// the pre-LSH format (pinned literally — existing .pgsum artifacts are
// addressed by these strings), and LSH-on keys must append the knobs with
// the rows default normalized.
func TestContentKeyLSHNormalization(t *testing.T) {
	off, ok := Config{Seed: 7}.ContentKey()
	if !ok {
		t.Fatal("default config not keyable")
	}
	const pinned = "pegasus1|a3ff4000000000000|b3fb999999999999a|i20|s7|g500|d10|c0|e0|rfalse"
	if off != pinned {
		t.Fatalf("LSH-off content key changed:\n got %s\nwant %s", off, pinned)
	}
	on, _ := Config{Seed: 7, LSHBands: 8}.ContentKey()
	if !strings.HasSuffix(on, "|lb8|lr2") || !strings.HasPrefix(on, pinned) {
		t.Fatalf("LSH-on key %q should be the off key plus |lb8|lr2", on)
	}
	explicit, _ := Config{Seed: 7, LSHBands: 8, LSHRows: 2}.ContentKey()
	if explicit != on {
		t.Fatalf("explicit default rows keyed differently: %q vs %q", explicit, on)
	}
	other, _ := Config{Seed: 7, LSHBands: 8, LSHRows: 3}.ContentKey()
	if other == on {
		t.Fatal("different LSHRows produced the same key")
	}
}

// TestLSHSummarizeRuns: end to end, LSH-banded candidate generation must
// drive a full summarization to a valid within-budget result (overlapping
// groups compact dead slots away before merging).
func TestLSHSummarizeRuns(t *testing.T) {
	g := gen.PlantedPartition(gen.SBMConfig{Nodes: 400, Communities: 5, AvgDegree: 10, MixingP: 0.05}, 9)
	res, err := Summarize(g, Config{Seed: 9, BudgetRatio: 0.4, LSHBands: 6, LSHRows: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.BudgetMet {
		t.Errorf("LSH build missed the budget (size ratio constraint)")
	}
	if res.Summary.NumSupernodes() >= g.NumNodes() {
		t.Errorf("LSH build performed no merges: %d supernodes of %d nodes",
			res.Summary.NumSupernodes(), g.NumNodes())
	}
}
