package obs

import (
	"sync"
	"time"
)

// SlowEntry is one slow-request record: the request identity, its outcome,
// and (when available) the full span timeline, so a slow query can be
// diagnosed from the log alone without reproducing it.
type SlowEntry struct {
	Time       time.Time `json:"time"`
	TraceID    string    `json:"trace_id"`
	Method     string    `json:"method"`
	Path       string    `json:"path"`
	Endpoint   string    `json:"endpoint"`
	Status     int       `json:"status"`
	DurationMs float64   `json:"duration_ms"`
	// Trace is the span timeline captured when the request crossed the
	// threshold; nil when the request carried no trace.
	Trace *TraceView `json:"trace,omitempty"`
}

// SlowLog is a fixed-size ring buffer of SlowEntry records. Appends are
// O(1) and overwrite the oldest entry once the buffer is full, so the log's
// memory is bounded no matter how long the server misbehaves. Safe for
// concurrent use.
type SlowLog struct {
	mu   sync.Mutex
	ring []SlowEntry
	next uint64 // total entries ever added; next%cap is the write slot
	cap  int
}

// NewSlowLog returns a ring holding the most recent capacity entries
// (capacity is floored at 1).
func NewSlowLog(capacity int) *SlowLog {
	if capacity < 1 {
		capacity = 1
	}
	return &SlowLog{ring: make([]SlowEntry, capacity), cap: capacity}
}

// Cap returns the ring capacity.
func (l *SlowLog) Cap() int { return l.cap }

// Add appends one entry, evicting the oldest when full.
func (l *SlowLog) Add(e SlowEntry) {
	l.mu.Lock()
	l.ring[l.next%uint64(l.cap)] = e
	l.next++
	l.mu.Unlock()
}

// Snapshot returns the retained entries newest-first plus the total number
// ever added (total - len(entries) have been evicted).
func (l *SlowLog) Snapshot() ([]SlowEntry, uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := int(l.next)
	if n > l.cap {
		n = l.cap
	}
	out := make([]SlowEntry, 0, n)
	for i := 0; i < n; i++ {
		// next-1 is the newest slot; walk backwards.
		out = append(out, l.ring[(l.next-1-uint64(i))%uint64(l.cap)])
	}
	return out, l.next
}
