package obs

import (
	"math"
	"regexp"
	"strings"
	"testing"
)

// TestTextWriterGolden pins the exact exposition output: the format is a
// wire contract with Prometheus scrapers, so any change here must be
// deliberate.
func TestTextWriterGolden(t *testing.T) {
	var b strings.Builder
	w := NewTextWriter(&b)
	w.Family("app_requests_total", "counter", "Requests served.")
	w.Sample("app_requests_total", nil, 42)
	w.Family("app_lookups_total", "counter", "Lookups by result.")
	w.Sample("app_lookups_total", []Label{{Name: "result", Value: "hit"}}, 10)
	w.Sample("app_lookups_total", []Label{{Name: "result", Value: "miss"}}, 2.5)
	w.Family("app_duration_seconds", "histogram", "Latency.")
	w.Histogram("app_duration_seconds", nil, []float64{0.001, 0.01}, []uint64{3, 7}, 0.0625, 9)
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	want := `# HELP app_requests_total Requests served.
# TYPE app_requests_total counter
app_requests_total 42
# HELP app_lookups_total Lookups by result.
# TYPE app_lookups_total counter
app_lookups_total{result="hit"} 10
app_lookups_total{result="miss"} 2.5
# HELP app_duration_seconds Latency.
# TYPE app_duration_seconds histogram
app_duration_seconds_bucket{le="0.001"} 3
app_duration_seconds_bucket{le="0.01"} 7
app_duration_seconds_bucket{le="+Inf"} 9
app_duration_seconds_sum 0.0625
app_duration_seconds_count 9
`
	if got := b.String(); got != want {
		t.Errorf("exposition output mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestTextWriterEscaping(t *testing.T) {
	var b strings.Builder
	w := NewTextWriter(&b)
	w.Family("m", "gauge", "line one\nback\\slash")
	w.Sample("m", []Label{{Name: "l", Value: "quote\" back\\ nl\n"}}, 1)
	got := b.String()
	if !strings.Contains(got, `line one\nback\\slash`) {
		t.Errorf("HELP not escaped: %q", got)
	}
	if !strings.Contains(got, `l="quote\" back\\ nl\n"`) {
		t.Errorf("label value not escaped: %q", got)
	}
}

func TestFormatFloatSpecials(t *testing.T) {
	cases := map[float64]string{
		math.Inf(1):  "+Inf",
		math.Inf(-1): "-Inf",
		0.5:          "0.5",
		3:            "3",
	}
	for v, want := range cases {
		if got := formatFloat(v); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", v, got, want)
		}
	}
}

// promLine matches one valid exposition line: a comment or a sample with
// optional labels and a float value (the subset this package emits).
var promLine = regexp.MustCompile(`^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (-?[0-9.e+-]+|\+Inf|-Inf|NaN))$`)

// TestTextWriterParseable feeds every emitted line through the line grammar,
// including a histogram carrying the +Inf bucket.
func TestTextWriterParseable(t *testing.T) {
	var b strings.Builder
	w := NewTextWriter(&b)
	w.Family("x_seconds", "histogram", "with \\ and\nnewline")
	les := []float64{1e-06, 0.001, 1, 512}
	w.Histogram("x_seconds", []Label{{Name: "endpoint", Value: `q"u\o`}}, les, []uint64{0, 1, 5, 9}, 12.75, 9)
	w.Family("y_total", "counter", "plain")
	w.Sample("y_total", nil, 1e21)
	for _, line := range strings.Split(strings.TrimSuffix(b.String(), "\n"), "\n") {
		if !promLine.MatchString(line) {
			t.Errorf("line does not parse as exposition format: %q", line)
		}
	}
	if !strings.Contains(b.String(), `le="+Inf"} 9`) {
		t.Errorf("missing +Inf bucket with total count:\n%s", b.String())
	}
}
