package obs

import "runtime"

// RuntimeStats is a point-in-time snapshot of the Go runtime: the process
// health numbers every serving deployment wants next to its request
// counters (goroutine leaks, heap growth, GC pressure).
type RuntimeStats struct {
	Goroutines     int     `json:"goroutines"`
	HeapAllocBytes uint64  `json:"heap_alloc_bytes"`
	HeapSysBytes   uint64  `json:"heap_sys_bytes"`
	HeapObjects    uint64  `json:"heap_objects"`
	GCCount        uint32  `json:"gc_count"`
	GCPauseTotalMs float64 `json:"gc_pause_total_ms"`
	LastGCPauseUs  float64 `json:"last_gc_pause_us"`
}

// ReadRuntime collects a RuntimeStats snapshot. It calls
// runtime.ReadMemStats, which briefly stops the world — cheap enough for a
// metrics scrape, not for a per-request hot path.
func ReadRuntime() RuntimeStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	st := RuntimeStats{
		Goroutines:     runtime.NumGoroutine(),
		HeapAllocBytes: ms.HeapAlloc,
		HeapSysBytes:   ms.HeapSys,
		HeapObjects:    ms.HeapObjects,
		GCCount:        ms.NumGC,
		GCPauseTotalMs: float64(ms.PauseTotalNs) / 1e6,
	}
	if ms.NumGC > 0 {
		st.LastGCPauseUs = float64(ms.PauseNs[(ms.NumGC+255)%256]) / 1e3
	}
	return st
}
