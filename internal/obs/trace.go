// Package obs is the observability layer: a lightweight span tracer
// propagated through context.Context, a fixed-size slow-query ring buffer,
// a Prometheus text-exposition writer, and runtime stat collection. It is
// deliberately dependency-free (stdlib only) and allocation-conscious: when
// no trace is attached to a context, starting a span is a nil check and
// returns the context unchanged — instrumented hot paths (the query
// sessions, the engine build pipeline) pay nothing unless a caller opted in.
package obs

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// MaxSpans bounds the spans recorded per trace; later StartSpan calls are
// counted as dropped instead of stored, so a pathological build (thousands
// of iterations) cannot grow a trace without bound.
const MaxSpans = 512

// idBase is a per-process random value mixed into every trace ID, so IDs
// from different processes virtually never collide; idCtr guarantees
// uniqueness within the process.
var (
	idBase uint64
	idCtr  atomic.Uint64
)

func init() {
	var b [8]byte
	if _, err := crand.Read(b[:]); err == nil {
		idBase = binary.LittleEndian.Uint64(b[:])
	} else {
		idBase = uint64(time.Now().UnixNano())
	}
}

func newID() string {
	return fmt.Sprintf("%016x%016x", idBase, idCtr.Add(1))
}

// Attr is one span attribute. Values are pre-rendered strings: spans are for
// humans reading a timeline, and rendering at Set time keeps the View path
// allocation-free of reflection.
type Attr struct {
	Key string `json:"key"`
	Val string `json:"val"`
}

// span is the internal record; times are nanosecond offsets from the trace
// start so a span costs two int64s instead of two time.Times.
type span struct {
	name    string
	parent  int32
	startNs int64
	endNs   int64 // 0 while open
	attrs   []Attr
}

// Trace is one request's (or one build's) span collection. Safe for
// concurrent use: parallel shard builds and batch shard groups append spans
// from multiple goroutines.
type Trace struct {
	id    string
	start time.Time

	mu      sync.Mutex
	spans   []span
	dropped int
}

// NewTrace returns an empty trace with a fresh unique ID.
func NewTrace() *Trace {
	return &Trace{id: newID(), start: time.Now()}
}

// ID returns the trace identifier (32 hex chars, unique per process).
func (t *Trace) ID() string { return t.id }

func (t *Trace) startSpan(name string, parent int32) int32 {
	now := time.Since(t.start).Nanoseconds()
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= MaxSpans {
		t.dropped++
		return -1
	}
	if t.spans == nil {
		t.spans = make([]span, 0, 16)
	}
	t.spans = append(t.spans, span{name: name, parent: parent, startNs: now})
	return int32(len(t.spans) - 1)
}

type traceKey struct{}
type spanKey struct{}

// WithTrace attaches t to ctx; every StartSpan below records into it.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// FromContext returns the trace attached to ctx, or nil (nil ctx included).
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// SpanHandle ends or annotates one started span. The zero value — returned
// when no trace was attached — is a safe no-op for every method, so
// instrumented code never branches on "is tracing on".
type SpanHandle struct {
	t   *Trace
	idx int32
}

// StartSpan opens a named span under the current span of ctx (or as a root
// span) and returns a context carrying it as the new current span. When ctx
// is nil or carries no trace, ctx is returned unchanged with a no-op handle.
func StartSpan(ctx context.Context, name string) (context.Context, SpanHandle) {
	if ctx == nil {
		return ctx, SpanHandle{}
	}
	t, _ := ctx.Value(traceKey{}).(*Trace)
	if t == nil {
		return ctx, SpanHandle{}
	}
	parent := int32(-1)
	if p, ok := ctx.Value(spanKey{}).(int32); ok {
		parent = p
	}
	idx := t.startSpan(name, parent)
	if idx < 0 {
		return ctx, SpanHandle{} // over MaxSpans: counted, not recorded
	}
	return context.WithValue(ctx, spanKey{}, idx), SpanHandle{t: t, idx: idx}
}

// End closes the span. Ending twice keeps the first end time.
func (s SpanHandle) End() {
	if s.t == nil {
		return
	}
	now := time.Since(s.t.start).Nanoseconds()
	s.t.mu.Lock()
	if s.t.spans[s.idx].endNs == 0 {
		s.t.spans[s.idx].endNs = now
	}
	s.t.mu.Unlock()
}

// Attr attaches a key/value attribute to the span.
func (s SpanHandle) Attr(key, val string) {
	if s.t == nil {
		return
	}
	s.t.mu.Lock()
	s.t.spans[s.idx].attrs = append(s.t.spans[s.idx].attrs, Attr{Key: key, Val: val})
	s.t.mu.Unlock()
}

// AttrInt attaches an integer attribute.
func (s SpanHandle) AttrInt(key string, v int) { s.Attr(key, itoa(v)) }

// AttrFloat attaches a float attribute (shortest round-trip formatting).
func (s SpanHandle) AttrFloat(key string, v float64) { s.Attr(key, formatFloat(v)) }

// SpanView is one span as exposed in a ?debug=1 timeline.
type SpanView struct {
	Name string `json:"name"`
	// Parent is the index (into Spans) of the enclosing span, -1 for roots.
	Parent     int   `json:"parent"`
	StartUs    int64 `json:"start_us"`
	DurationUs int64 `json:"duration_us"`
	// Open marks spans not yet ended at snapshot time (their duration is
	// "so far") — the root handler span of an in-flight request, typically.
	Open  bool   `json:"open,omitempty"`
	Attrs []Attr `json:"attrs,omitempty"`
}

// TraceView is the JSON-ready snapshot of a trace: spans in start order
// (appends are serialized by the trace mutex, so the order is the order
// spans actually started).
type TraceView struct {
	TraceID string     `json:"trace_id"`
	Spans   []SpanView `json:"spans"`
	// DroppedSpans counts StartSpan calls beyond MaxSpans.
	DroppedSpans int `json:"dropped_spans,omitempty"`
}

// View snapshots the trace. Open spans report the duration accumulated so
// far and are flagged Open.
func (t *Trace) View() TraceView {
	now := time.Since(t.start).Nanoseconds()
	t.mu.Lock()
	defer t.mu.Unlock()
	v := TraceView{TraceID: t.id, Spans: make([]SpanView, len(t.spans)), DroppedSpans: t.dropped}
	for i, s := range t.spans {
		end := s.endNs
		open := false
		if end == 0 {
			end, open = now, true
		}
		sv := SpanView{
			Name:       s.name,
			Parent:     int(s.parent),
			StartUs:    s.startNs / 1000,
			DurationUs: (end - s.startNs) / 1000,
			Open:       open,
		}
		if len(s.attrs) > 0 {
			sv.Attrs = append([]Attr(nil), s.attrs...)
		}
		v.Spans[i] = sv
	}
	return v
}
