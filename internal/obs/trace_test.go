package obs

import (
	"context"
	"sync"
	"testing"
)

// TestSpanNestingAndOrder checks the determinism of a sequential span tree:
// spans appear in start order, parents link correctly, and durations nest
// (a parent covers its children).
func TestSpanNestingAndOrder(t *testing.T) {
	tr := NewTrace()
	ctx := WithTrace(context.Background(), tr)

	ctx1, root := StartSpan(ctx, "root")
	ctx2, child := StartSpan(ctx1, "child")
	_, grand := StartSpan(ctx2, "grandchild")
	grand.End()
	child.End()
	_, sib := StartSpan(ctx1, "sibling")
	sib.End()
	root.End()

	v := tr.View()
	if v.TraceID != tr.ID() {
		t.Fatalf("view trace id %q != %q", v.TraceID, tr.ID())
	}
	names := []string{"root", "child", "grandchild", "sibling"}
	parents := []int{-1, 0, 1, 0}
	if len(v.Spans) != len(names) {
		t.Fatalf("got %d spans, want %d", len(v.Spans), len(names))
	}
	for i, s := range v.Spans {
		if s.Name != names[i] {
			t.Errorf("span %d name %q, want %q (start order must be record order)", i, s.Name, names[i])
		}
		if s.Parent != parents[i] {
			t.Errorf("span %q parent %d, want %d", s.Name, s.Parent, parents[i])
		}
		if s.Open {
			t.Errorf("span %q still open after End", s.Name)
		}
		if s.StartUs < 0 || s.DurationUs < 0 {
			t.Errorf("span %q has negative timing: start %d dur %d", s.Name, s.StartUs, s.DurationUs)
		}
	}
	// Nesting: each child starts no earlier and ends no later than its
	// parent. Start/duration are truncated to microseconds independently, so
	// allow 1µs of quantization slack on each bound.
	for _, s := range v.Spans {
		if s.Parent < 0 {
			continue
		}
		p := v.Spans[s.Parent]
		if s.StartUs < p.StartUs-1 {
			t.Errorf("span %q starts before its parent", s.Name)
		}
		if s.StartUs+s.DurationUs > p.StartUs+p.DurationUs+2 {
			t.Errorf("span %q ends after its parent", s.Name)
		}
	}
}

func TestStartSpanNoTraceIsNoop(t *testing.T) {
	ctx := context.Background()
	got, sp := StartSpan(ctx, "x")
	if got != ctx {
		t.Error("StartSpan without a trace must return the context unchanged")
	}
	// All handle methods must be safe on the zero value.
	sp.Attr("k", "v")
	sp.AttrInt("i", 1)
	sp.AttrFloat("f", 2.5)
	sp.End()
	sp.End()

	if got, sp := StartSpan(nil, "x"); got != nil { //nolint:staticcheck // nil ctx is the documented degenerate case
		t.Error("StartSpan(nil) must return nil back")
	} else {
		sp.End()
	}
	if FromContext(nil) != nil { //nolint:staticcheck
		t.Error("FromContext(nil) must be nil")
	}
}

func TestEndIsIdempotent(t *testing.T) {
	tr := NewTrace()
	ctx := WithTrace(context.Background(), tr)
	_, sp := StartSpan(ctx, "once")
	sp.End()
	first := tr.View().Spans[0].DurationUs
	sp.End() // must keep the first end time
	if got := tr.View().Spans[0].DurationUs; got != first {
		t.Errorf("second End changed duration: %d -> %d", first, got)
	}
}

func TestTraceIDUniqueUnderConcurrency(t *testing.T) {
	const goroutines, perG = 100, 50
	ids := make([][]string, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids[g] = make([]string, perG)
			for i := 0; i < perG; i++ {
				ids[g][i] = NewTrace().ID()
			}
		}(g)
	}
	wg.Wait()
	seen := make(map[string]bool, goroutines*perG)
	for _, batch := range ids {
		for _, id := range batch {
			if len(id) != 32 {
				t.Fatalf("trace id %q is not 32 hex chars", id)
			}
			if seen[id] {
				t.Fatalf("duplicate trace id %q", id)
			}
			seen[id] = true
		}
	}
}

func TestConcurrentSpansOneTrace(t *testing.T) {
	tr := NewTrace()
	ctx := WithTrace(context.Background(), tr)
	const goroutines, perG = 16, 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				_, sp := StartSpan(ctx, "worker")
				sp.AttrInt("g", g)
				sp.End()
			}
		}(g)
	}
	wg.Wait()
	v := tr.View()
	if len(v.Spans) != goroutines*perG {
		t.Fatalf("got %d spans, want %d", len(v.Spans), goroutines*perG)
	}
	for i, s := range v.Spans {
		if s.Open {
			t.Fatalf("span %d still open", i)
		}
	}
}

func TestMaxSpansCap(t *testing.T) {
	tr := NewTrace()
	ctx := WithTrace(context.Background(), tr)
	const extra = 25
	for i := 0; i < MaxSpans+extra; i++ {
		_, sp := StartSpan(ctx, "s")
		sp.End()
	}
	v := tr.View()
	if len(v.Spans) != MaxSpans {
		t.Errorf("got %d spans, want the %d cap", len(v.Spans), MaxSpans)
	}
	if v.DroppedSpans != extra {
		t.Errorf("dropped %d spans, want %d", v.DroppedSpans, extra)
	}
}

func TestOpenSpanInView(t *testing.T) {
	tr := NewTrace()
	ctx := WithTrace(context.Background(), tr)
	_, sp := StartSpan(ctx, "open")
	v := tr.View()
	if !v.Spans[0].Open {
		t.Error("unended span must be flagged Open in the view")
	}
	if v.Spans[0].DurationUs < 0 {
		t.Error("open span must report a non-negative duration-so-far")
	}
	sp.End()
	if tr.View().Spans[0].Open {
		t.Error("ended span must not be flagged Open")
	}
}

func TestAttrs(t *testing.T) {
	tr := NewTrace()
	ctx := WithTrace(context.Background(), tr)
	_, sp := StartSpan(ctx, "a")
	sp.Attr("k", "v")
	sp.AttrInt("n", 42)
	sp.AttrFloat("f", 0.5)
	sp.End()
	attrs := tr.View().Spans[0].Attrs
	want := []Attr{{Key: "k", Val: "v"}, {Key: "n", Val: "42"}, {Key: "f", Val: "0.5"}}
	if len(attrs) != len(want) {
		t.Fatalf("got %d attrs, want %d", len(attrs), len(want))
	}
	for i, a := range attrs {
		if a != want[i] {
			t.Errorf("attr %d = %+v, want %+v", i, a, want[i])
		}
	}
}
