package obs

import (
	"io"
	"math"
	"strconv"
	"strings"
)

// itoa / formatFloat are the shared numeric renderers of the package:
// attribute values and Prometheus samples both use shortest-round-trip
// formatting, so a value read back parses to the same number.
func itoa(v int) string { return strconv.Itoa(v) }

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Label is one Prometheus label pair.
type Label struct{ Name, Value string }

// TextWriter renders the Prometheus text exposition format (version 0.0.4):
// one Family header per metric family, then its samples. It is a thin
// formatting layer — no registry, no state beyond the output stream — which
// is all a pull-based /metrics endpoint rendering from existing atomics
// needs. The first write error sticks and suppresses further output.
type TextWriter struct {
	w   io.Writer
	err error
}

// NewTextWriter returns a writer emitting to w.
func NewTextWriter(w io.Writer) *TextWriter { return &TextWriter{w: w} }

// Err returns the first error any write encountered ("" means the whole
// exposition made it out).
func (t *TextWriter) Err() error { return t.err }

func (t *TextWriter) printf(s string) {
	if t.err != nil {
		return
	}
	_, t.err = io.WriteString(t.w, s)
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Family emits the # HELP and # TYPE header for a metric family; typ is
// "counter", "gauge" or "histogram". Call once before the family's samples.
func (t *TextWriter) Family(name, typ, help string) {
	t.printf("# HELP " + name + " " + escapeHelp(help) + "\n")
	t.printf("# TYPE " + name + " " + typ + "\n")
}

// Sample emits one sample line: name{labels} value.
func (t *TextWriter) Sample(name string, labels []Label, v float64) {
	var b strings.Builder
	b.WriteString(name)
	if len(labels) > 0 {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l.Name)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(l.Value))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
	t.printf(b.String())
}

// Histogram emits a full histogram family instance: cumulative _bucket
// samples for each upper bound in les (cum[i] counts observations <= les[i]),
// the mandatory le="+Inf" bucket carrying the total count, and the _sum and
// _count samples. labels are attached to every sample (le is appended).
// les must be sorted ascending and cum non-decreasing — the caller owns the
// bucketing scheme; this is pure formatting.
func (t *TextWriter) Histogram(name string, labels []Label, les []float64, cum []uint64, sum float64, count uint64) {
	for i, le := range les {
		t.Sample(name+"_bucket", append(append([]Label{}, labels...),
			Label{Name: "le", Value: formatFloat(le)}), float64(cum[i]))
	}
	t.Sample(name+"_bucket", append(append([]Label{}, labels...),
		Label{Name: "le", Value: "+Inf"}), float64(count))
	t.Sample(name+"_sum", labels, sum)
	t.Sample(name+"_count", labels, float64(count))
}
