package obs

import (
	"fmt"
	"sync"
	"testing"
)

func TestSlowLogEviction(t *testing.T) {
	l := NewSlowLog(4)
	if l.Cap() != 4 {
		t.Fatalf("Cap() = %d, want 4", l.Cap())
	}
	for i := 0; i < 10; i++ {
		l.Add(SlowEntry{TraceID: fmt.Sprintf("t%d", i)})
	}
	entries, total := l.Snapshot()
	if total != 10 {
		t.Errorf("total = %d, want 10", total)
	}
	if len(entries) != 4 {
		t.Fatalf("retained %d entries, want 4", len(entries))
	}
	// Newest-first: t9, t8, t7, t6.
	for i, want := range []string{"t9", "t8", "t7", "t6"} {
		if entries[i].TraceID != want {
			t.Errorf("entry %d = %q, want %q (newest-first, oldest evicted)", i, entries[i].TraceID, want)
		}
	}
}

func TestSlowLogPartialFill(t *testing.T) {
	l := NewSlowLog(8)
	l.Add(SlowEntry{TraceID: "a"})
	l.Add(SlowEntry{TraceID: "b"})
	entries, total := l.Snapshot()
	if total != 2 || len(entries) != 2 {
		t.Fatalf("total=%d len=%d, want 2/2", total, len(entries))
	}
	if entries[0].TraceID != "b" || entries[1].TraceID != "a" {
		t.Errorf("got order [%s %s], want newest-first [b a]", entries[0].TraceID, entries[1].TraceID)
	}
}

func TestSlowLogCapacityFloor(t *testing.T) {
	for _, c := range []int{0, -3} {
		l := NewSlowLog(c)
		if l.Cap() != 1 {
			t.Errorf("NewSlowLog(%d).Cap() = %d, want floor 1", c, l.Cap())
		}
		l.Add(SlowEntry{TraceID: "x"})
		l.Add(SlowEntry{TraceID: "y"})
		entries, total := l.Snapshot()
		if total != 2 || len(entries) != 1 || entries[0].TraceID != "y" {
			t.Errorf("cap-1 ring: total=%d entries=%v", total, entries)
		}
	}
}

func TestSlowLogConcurrentAdds(t *testing.T) {
	l := NewSlowLog(16)
	const goroutines, perG = 8, 100
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				l.Add(SlowEntry{TraceID: "c"})
			}
		}()
	}
	wg.Wait()
	entries, total := l.Snapshot()
	if total != goroutines*perG {
		t.Errorf("total = %d, want %d", total, goroutines*perG)
	}
	if len(entries) != 16 {
		t.Errorf("retained %d, want 16", len(entries))
	}
}
