package graph

import (
	"testing"
)

// triangle plus a pendant: 0-1, 0-2, 1-2, 2-3
func testGraph(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	return b.Build()
}

func TestBasicAccessors(t *testing.T) {
	g := testGraph(t)
	if g.NumNodes() != 4 {
		t.Fatalf("NumNodes = %d, want 4", g.NumNodes())
	}
	if g.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d, want 4", g.NumEdges())
	}
	if got := g.Degree(2); got != 3 {
		t.Errorf("Degree(2) = %d, want 3", got)
	}
	if got := g.Degree(3); got != 1 {
		t.Errorf("Degree(3) = %d, want 1", got)
	}
	wantN2 := []NodeID{0, 1, 3}
	gotN2 := g.Neighbors(2)
	if len(gotN2) != len(wantN2) {
		t.Fatalf("Neighbors(2) = %v, want %v", gotN2, wantN2)
	}
	for i := range wantN2 {
		if gotN2[i] != wantN2[i] {
			t.Fatalf("Neighbors(2) = %v, want %v", gotN2, wantN2)
		}
	}
}

func TestHasEdge(t *testing.T) {
	g := testGraph(t)
	cases := []struct {
		u, v NodeID
		want bool
	}{
		{0, 1, true}, {1, 0, true}, {0, 2, true}, {2, 3, true},
		{0, 3, false}, {1, 3, false}, {3, 3, false}, {0, 0, false},
	}
	for _, c := range cases {
		if got := g.HasEdge(c.u, c.v); got != c.want {
			t.Errorf("HasEdge(%d,%d) = %v, want %v", c.u, c.v, got, c.want)
		}
	}
}

func TestBuilderDedupAndSelfLoops(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // duplicate, reversed
	b.AddEdge(0, 1) // duplicate
	b.AddEdge(1, 1) // self-loop, dropped
	b.AddEdge(1, 2)
	g := b.Build()
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestBuilderGrowsNodeCount(t *testing.T) {
	b := NewBuilder(0)
	b.AddEdge(5, 9)
	g := b.Build()
	if g.NumNodes() != 10 {
		t.Fatalf("NumNodes = %d, want 10", g.NumNodes())
	}
}

func TestEdgesIteration(t *testing.T) {
	g := testGraph(t)
	var got []Edge
	g.Edges(func(u, v NodeID) bool {
		if u >= v {
			t.Fatalf("Edges emitted unordered pair (%d,%d)", u, v)
		}
		got = append(got, Edge{u, v})
		return true
	})
	if int64(len(got)) != g.NumEdges() {
		t.Fatalf("Edges emitted %d pairs, want %d", len(got), g.NumEdges())
	}
	// Early stop.
	count := 0
	g.Edges(func(u, v NodeID) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("early stop: visited %d, want 2", count)
	}
}

func TestEdgeList(t *testing.T) {
	g := testGraph(t)
	el := g.EdgeList()
	if len(el) != 4 {
		t.Fatalf("EdgeList len = %d, want 4", len(el))
	}
	rebuilt := FromEdges(g.NumNodes(), el)
	if err := rebuilt.Validate(); err != nil {
		t.Fatalf("rebuilt Validate: %v", err)
	}
	if rebuilt.NumEdges() != g.NumEdges() {
		t.Fatalf("rebuilt edges = %d, want %d", rebuilt.NumEdges(), g.NumEdges())
	}
}

func TestSizeBits(t *testing.T) {
	g := testGraph(t)
	// Eq. (4): 2|E| log2|V| = 2*4*2 = 16.
	if got := g.SizeBits(); got != 16 {
		t.Fatalf("SizeBits = %v, want 16", got)
	}
	empty := NewBuilder(1).Build()
	if got := empty.SizeBits(); got != 0 {
		t.Fatalf("SizeBits(singleton) = %v, want 0", got)
	}
}

func TestMaxAndAvgDegree(t *testing.T) {
	g := testGraph(t)
	if got := g.MaxDegree(); got != 3 {
		t.Fatalf("MaxDegree = %d, want 3", got)
	}
	if got := g.AvgDegree(); got != 2 {
		t.Fatalf("AvgDegree = %v, want 2", got)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := testGraph(t)
	if err := g.Validate(); err != nil {
		t.Fatalf("valid graph rejected: %v", err)
	}
	// Corrupt a neighbor entry to create an asymmetric edge.
	g2 := testGraph(t)
	g2.adj[0] = 3 // node 0's first neighbor becomes 3 without reverse
	if err := g2.Validate(); err == nil {
		t.Fatal("Validate accepted asymmetric adjacency")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0).Build()
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph: |V|=%d |E|=%d", g.NumNodes(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate(empty): %v", err)
	}
}
