package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// ReadEdgeList parses a whitespace-separated edge list ("u v" per line).
// Lines starting with '#' or '%' are comments. Node IDs may be arbitrary
// non-negative integers; they are used directly (the node count is the max
// ID + 1). Self-loops and duplicates are removed.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	b := NewBuilder(0)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want at least 2 fields, got %q", lineno, line)
		}
		u, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineno, err)
		}
		v, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineno, err)
		}
		b.AddEdge(NodeID(u), NodeID(v))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b.Build(), nil
}

// WriteEdgeList writes the graph as "u v" lines (u < v), preceded by a
// comment header.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# nodes=%d edges=%d\n", g.NumNodes(), g.NumEdges()); err != nil {
		return err
	}
	var werr error
	g.Edges(func(u, v NodeID) bool {
		if _, err := fmt.Fprintf(bw, "%d %d\n", u, v); err != nil {
			werr = err
			return false
		}
		return true
	})
	if werr != nil {
		return werr
	}
	return bw.Flush()
}

// LoadEdgeListFile reads an edge-list graph from a file path.
func LoadEdgeListFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadEdgeList(f)
}

// SaveEdgeListFile writes the graph to a file path in edge-list format.
func SaveEdgeListFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteEdgeList(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

var binaryMagic = [4]byte{'P', 'G', 'S', '1'}

// WriteBinary serializes the graph in a compact little-endian binary format
// (magic, node count, edge count, then the CSR arrays). It is ~4x smaller
// and much faster to load than the text format for large graphs.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	hdr := [2]uint64{uint64(g.NumNodes()), uint64(len(g.adj))}
	if err := binary.Write(bw, binary.LittleEndian, hdr[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.offsets); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.adj); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinary deserializes a graph written by WriteBinary.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, err
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %q", magic)
	}
	var hdr [2]uint64
	if err := binary.Read(br, binary.LittleEndian, hdr[:]); err != nil {
		return nil, err
	}
	n, m2 := int(hdr[0]), int(hdr[1])
	if n < 0 || m2 < 0 {
		return nil, fmt.Errorf("graph: corrupt header")
	}
	g := &Graph{
		offsets: make([]int64, n+1),
		adj:     make([]NodeID, m2),
	}
	if err := binary.Read(br, binary.LittleEndian, g.offsets); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, g.adj); err != nil {
		return nil, err
	}
	if g.offsets[n] != int64(m2) {
		return nil, fmt.Errorf("graph: corrupt offsets")
	}
	return g, nil
}
