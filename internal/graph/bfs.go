package graph

// Unreached marks nodes not reached by a traversal in distance vectors.
const Unreached int32 = -1

// BFS computes hop distances from source to every node. Unreachable nodes
// get Unreached.
func BFS(g *Graph, source NodeID) []int32 {
	return MultiSourceBFS(g, []NodeID{source})
}

// MultiSourceBFS computes, for every node, the minimum hop distance to any
// of the given sources (D(u,T) of Eq. (2)). Unreachable nodes get Unreached.
// Duplicate sources are harmless.
func MultiSourceBFS(g *Graph, sources []NodeID) []int32 {
	n := g.NumNodes()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = Unreached
	}
	queue := make([]NodeID, 0, len(sources))
	for _, s := range sources {
		if dist[s] == Unreached {
			dist[s] = 0
			queue = append(queue, s)
		}
	}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		for _, v := range g.Neighbors(u) {
			if dist[v] == Unreached {
				dist[v] = du + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// BFSOrder returns nodes in BFS order from source, restricted to the
// component of source. Useful for sampling "adjacent" target nodes (§V-E,
// Fig. 10 uses 100 adjacent nodes sampled by BFS).
func BFSOrder(g *Graph, source NodeID, limit int) []NodeID {
	n := g.NumNodes()
	if limit <= 0 || limit > n {
		limit = n
	}
	seen := make([]bool, n)
	queue := make([]NodeID, 0, limit)
	seen[source] = true
	queue = append(queue, source)
	for head := 0; head < len(queue) && len(queue) < limit; head++ {
		u := queue[head]
		for _, v := range g.Neighbors(u) {
			if !seen[v] {
				seen[v] = true
				queue = append(queue, v)
				if len(queue) == limit {
					break
				}
			}
		}
	}
	return queue
}
