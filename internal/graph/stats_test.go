package graph

import (
	"math"
	"testing"
)

func TestCountTriangles(t *testing.T) {
	// Triangle + pendant (testGraph): exactly 1 triangle.
	g := testGraph(t)
	if got := CountTriangles(g); got != 1 {
		t.Fatalf("triangles = %d, want 1", got)
	}
	// K4 has 4 triangles.
	b := NewBuilder(4)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			b.AddEdge(NodeID(i), NodeID(j))
		}
	}
	if got := CountTriangles(b.Build()); got != 4 {
		t.Fatalf("K4 triangles = %d, want 4", got)
	}
	// A tree has none.
	tb := NewBuilder(5)
	tb.AddEdge(0, 1)
	tb.AddEdge(0, 2)
	tb.AddEdge(2, 3)
	tb.AddEdge(2, 4)
	if got := CountTriangles(tb.Build()); got != 0 {
		t.Fatalf("tree triangles = %d, want 0", got)
	}
}

func TestComputeStats(t *testing.T) {
	g := testGraph(t) // triangle 0-1-2 + pendant 3
	s := ComputeStats(g)
	if s.Nodes != 4 || s.Edges != 4 {
		t.Fatalf("stats shape wrong: %+v", s)
	}
	if s.MinDegree != 1 || s.MaxDegree != 3 {
		t.Fatalf("degrees wrong: %+v", s)
	}
	if s.AvgDegree != 2 || s.MedDegree != 2 {
		t.Fatalf("avg/median wrong: %+v", s)
	}
	if s.Triangles != 1 {
		t.Fatalf("triangles = %d, want 1", s.Triangles)
	}
	// Wedges: deg 2,2,3,1 -> 1+1+3+0 = 5; transitivity = 3/5.
	if math.Abs(s.GlobalCC-0.6) > 1e-12 {
		t.Fatalf("GlobalCC = %v, want 0.6", s.GlobalCC)
	}
	if s.Components != 1 {
		t.Fatalf("components = %d, want 1", s.Components)
	}
	empty := ComputeStats(NewBuilder(0).Build())
	if empty.Nodes != 0 {
		t.Fatal("empty stats wrong")
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := testGraph(t)
	h := DegreeHistogram(g)
	// degrees: 2,2,3,1 -> h[1]=1, h[2]=2, h[3]=1.
	if h[1] != 1 || h[2] != 2 || h[3] != 1 {
		t.Fatalf("histogram = %v", h)
	}
}

func TestDegreeAssortativity(t *testing.T) {
	// A star is maximally disassortative (hub-leaf only): r = -1 is not
	// reachable with a single degree pair (variance zero on one side), but a
	// double star is clearly negative.
	b := NewBuilder(8)
	b.AddEdge(0, 1)
	for i := 2; i < 5; i++ {
		b.AddEdge(0, NodeID(i))
	}
	for i := 5; i < 8; i++ {
		b.AddEdge(1, NodeID(i))
	}
	if r := DegreeAssortativity(b.Build()); r >= 0 {
		t.Fatalf("double star assortativity = %v, want negative", r)
	}
	// A cycle is degree-regular: correlation undefined -> 0.
	cb := NewBuilder(5)
	for i := 0; i < 5; i++ {
		cb.AddEdge(NodeID(i), NodeID((i+1)%5))
	}
	if r := DegreeAssortativity(cb.Build()); r != 0 {
		t.Fatalf("cycle assortativity = %v, want 0", r)
	}
}
