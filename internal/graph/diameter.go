package graph

import (
	"math/rand"
	"sort"
)

// EffectiveDiameter estimates the 90-percentile effective diameter of g: the
// minimum number of hops within which 90% of connected node pairs lie
// (Footnote 6 of the paper). It runs BFS from up to samples random sources
// and pools the observed pairwise distances. Deterministic for a given seed.
func EffectiveDiameter(g *Graph, samples int, seed int64) float64 {
	return PercentileDiameter(g, 0.9, samples, seed)
}

// PercentileDiameter generalizes EffectiveDiameter to an arbitrary
// percentile p in (0,1].
func PercentileDiameter(g *Graph, p float64, samples int, seed int64) float64 {
	n := g.NumNodes()
	if n == 0 {
		return 0
	}
	if samples <= 0 || samples > n {
		samples = n
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)

	// Histogram of distances over sampled sources.
	var hist []int64
	for i := 0; i < samples; i++ {
		dist := BFS(g, NodeID(perm[i]))
		for u, d := range dist {
			if d <= 0 || u == perm[i] {
				continue // unreachable or self
			}
			for int(d) >= len(hist) {
				hist = append(hist, 0)
			}
			hist[d]++
		}
	}
	var total int64
	for _, c := range hist {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := int64(p * float64(total))
	var cum int64
	for d := 1; d < len(hist); d++ {
		prev := cum
		cum += hist[d]
		if cum >= target {
			// Linear interpolation within the final hop bucket, as in the
			// standard smoothed effective-diameter definition.
			if hist[d] == 0 {
				return float64(d)
			}
			frac := float64(target-prev) / float64(hist[d])
			return float64(d-1) + frac
		}
	}
	return float64(len(hist) - 1)
}

// SampleNodes returns k distinct node IDs drawn uniformly at random.
// Deterministic for a given seed. k is clamped to [0, NumNodes].
func SampleNodes(g *Graph, k int, seed int64) []NodeID {
	n := g.NumNodes()
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	out := make([]NodeID, k)
	for i := 0; i < k; i++ {
		out[i] = NodeID(perm[i])
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SampleInducedSubgraph samples frac of the nodes uniformly at random and
// returns the induced subgraph (the Fig. 6 scalability methodology:
// "obtained induced subgraphs of different sizes by randomly sampling
// different numbers of nodes").
func SampleInducedSubgraph(g *Graph, frac float64, seed int64) *Graph {
	if frac >= 1 {
		return g
	}
	k := int(frac * float64(g.NumNodes()))
	picked := SampleNodes(g, k, seed)
	in := make([]bool, g.NumNodes())
	for _, u := range picked {
		in[u] = true
	}
	sub, _ := InducedSubgraph(g, func(u NodeID) bool { return in[u] })
	return sub
}
