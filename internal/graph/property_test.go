package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomGraph builds a graph from random edges; used as a property-test
// generator.
func randomGraph(rng *rand.Rand, maxN, maxM int) *Graph {
	n := 2 + rng.Intn(maxN-1)
	m := rng.Intn(maxM)
	b := NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)))
	}
	return b.Build()
}

func TestPropertyBuilderAlwaysValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 60, 200)
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyHasEdgeMatchesNeighborScan(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 40, 120)
		for trial := 0; trial < 30; trial++ {
			u := NodeID(rng.Intn(g.NumNodes()))
			v := NodeID(rng.Intn(g.NumNodes()))
			want := false
			for _, w := range g.Neighbors(u) {
				if w == v {
					want = true
					break
				}
			}
			if g.HasEdge(u, v) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDegreeSumIsTwiceEdges(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 50, 150)
		var sum int64
		for u := 0; u < g.NumNodes(); u++ {
			sum += int64(g.Degree(NodeID(u)))
		}
		return sum == 2*g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyBFSTriangleInequality(t *testing.T) {
	// For any edge {u,v}: |dist(u)-dist(v)| <= 1 when both reached.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 40, 100)
		src := NodeID(rng.Intn(g.NumNodes()))
		d := BFS(g, src)
		ok := true
		g.Edges(func(u, v NodeID) bool {
			if d[u] != Unreached && d[v] != Unreached {
				diff := d[u] - d[v]
				if diff < -1 || diff > 1 {
					ok = false
					return false
				}
			}
			if (d[u] == Unreached) != (d[v] == Unreached) {
				ok = false // an edge cannot cross the reachability frontier
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyComponentsPartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 50, 60)
		labels, count := Components(g)
		seen := make([]bool, count)
		for _, l := range labels {
			if l < 0 || int(l) >= count {
				return false
			}
			seen[l] = true
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		// Edges never cross components.
		ok := true
		g.Edges(func(u, v NodeID) bool {
			if labels[u] != labels[v] {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
