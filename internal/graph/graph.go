// Package graph provides the undirected-graph substrate used throughout the
// library: a compact CSR (compressed sparse row) representation, construction
// from edge lists, traversals, connectivity, diameter estimation, sampling,
// and text/binary serialization.
//
// Graphs are simple (no self-loops, no parallel edges) and undirected, which
// matches the input model of the paper (§II-A). Node identifiers are dense
// integers in [0, NumNodes).
package graph

import (
	"fmt"
	"math"
)

// NodeID identifies a node. IDs are dense: 0..NumNodes-1.
type NodeID = uint32

// Edge is an undirected edge {U, V}.
type Edge struct {
	U, V NodeID
}

// Graph is an immutable simple undirected graph in CSR form. Each undirected
// edge {u,v} is stored twice (in the adjacency of u and of v); NumEdges
// reports the number of undirected edges, i.e. len(adj)/2.
type Graph struct {
	offsets []int64  // len NumNodes+1; adjacency of u is adj[offsets[u]:offsets[u+1]]
	adj     []NodeID // sorted within each node's range
}

// NumNodes returns |V|.
func (g *Graph) NumNodes() int { return len(g.offsets) - 1 }

// NumEdges returns |E| (undirected edge count).
func (g *Graph) NumEdges() int64 { return int64(len(g.adj)) / 2 }

// Degree returns the number of neighbors of u.
func (g *Graph) Degree(u NodeID) int {
	return int(g.offsets[u+1] - g.offsets[u])
}

// Neighbors returns the sorted adjacency list of u. The returned slice
// aliases internal storage and must not be modified.
func (g *Graph) Neighbors(u NodeID) []NodeID {
	return g.adj[g.offsets[u]:g.offsets[u+1]]
}

// HasEdge reports whether {u,v} is an edge, via binary search over the
// smaller adjacency list.
func (g *Graph) HasEdge(u, v NodeID) bool {
	if u == v {
		return false
	}
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	ns := g.Neighbors(u)
	lo, hi := 0, len(ns)
	for lo < hi {
		mid := (lo + hi) / 2
		if ns[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(ns) && ns[lo] == v
}

// Edges calls fn for every undirected edge exactly once (u < v). It stops
// early if fn returns false.
func (g *Graph) Edges(fn func(u, v NodeID) bool) {
	n := g.NumNodes()
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(NodeID(u)) {
			if NodeID(u) < v {
				if !fn(NodeID(u), v) {
					return
				}
			}
		}
	}
}

// EdgeList materializes all undirected edges with u < v.
func (g *Graph) EdgeList() []Edge {
	out := make([]Edge, 0, g.NumEdges())
	g.Edges(func(u, v NodeID) bool {
		out = append(out, Edge{u, v})
		return true
	})
	return out
}

// MaxDegree returns the maximum node degree (0 for the empty graph).
func (g *Graph) MaxDegree() int {
	best := 0
	for u := 0; u < g.NumNodes(); u++ {
		if d := g.Degree(NodeID(u)); d > best {
			best = d
		}
	}
	return best
}

// AvgDegree returns the average degree 2|E|/|V| (0 for the empty graph).
func (g *Graph) AvgDegree() float64 {
	if g.NumNodes() == 0 {
		return 0
	}
	return float64(2*g.NumEdges()) / float64(g.NumNodes())
}

// SizeBits returns the bit size of the input graph per Eq. (4):
// 2|E|·log2|V|.
func (g *Graph) SizeBits() float64 {
	n := g.NumNodes()
	if n <= 1 {
		return 0
	}
	return 2 * float64(g.NumEdges()) * math.Log2(float64(n))
}

// String implements fmt.Stringer with a short description.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{|V|=%d |E|=%d}", g.NumNodes(), g.NumEdges())
}

// Validate checks structural invariants of the CSR representation: offsets
// are monotone, adjacency lists are sorted, free of self-loops and
// duplicates, and every edge appears in both directions. It is intended for
// tests and costs O(|V|+|E| log d).
func (g *Graph) Validate() error {
	n := g.NumNodes()
	if len(g.offsets) == 0 || g.offsets[0] != 0 {
		return fmt.Errorf("graph: offsets must start at 0")
	}
	if g.offsets[n] != int64(len(g.adj)) {
		return fmt.Errorf("graph: offsets[n]=%d != len(adj)=%d", g.offsets[n], len(g.adj))
	}
	for u := 0; u < n; u++ {
		if g.offsets[u] > g.offsets[u+1] {
			return fmt.Errorf("graph: offsets not monotone at %d", u)
		}
		ns := g.Neighbors(NodeID(u))
		for i, v := range ns {
			if int(v) >= n {
				return fmt.Errorf("graph: node %d has out-of-range neighbor %d", u, v)
			}
			if v == NodeID(u) {
				return fmt.Errorf("graph: self-loop at %d", u)
			}
			if i > 0 && ns[i-1] >= v {
				return fmt.Errorf("graph: adjacency of %d not strictly sorted", u)
			}
			if !g.HasEdge(v, NodeID(u)) {
				return fmt.Errorf("graph: edge {%d,%d} missing reverse direction", u, v)
			}
		}
	}
	return nil
}
