package graph

// Components labels each node with a connected-component ID (0-based, in
// discovery order) and returns the labels and the component count.
func Components(g *Graph) (labels []int32, count int) {
	n := g.NumNodes()
	labels = make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	queue := make([]NodeID, 0, 1024)
	for s := 0; s < n; s++ {
		if labels[s] != -1 {
			continue
		}
		id := int32(count)
		count++
		labels[s] = id
		queue = append(queue[:0], NodeID(s))
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, v := range g.Neighbors(u) {
				if labels[v] == -1 {
					labels[v] = id
					queue = append(queue, v)
				}
			}
		}
	}
	return labels, count
}

// LargestComponent extracts the largest connected component as a new graph
// with renumbered node IDs. It returns the subgraph and the mapping from new
// IDs to original IDs. Isolated nodes form singleton components and are kept
// only if they constitute the largest component (i.e. the graph is empty of
// edges). This mirrors the paper's preprocessing ("used only the largest
// connected components", §V-A).
func LargestComponent(g *Graph) (*Graph, []NodeID) {
	labels, count := Components(g)
	if count <= 1 {
		ids := make([]NodeID, g.NumNodes())
		for i := range ids {
			ids[i] = NodeID(i)
		}
		return g, ids
	}
	sizes := make([]int, count)
	for _, l := range labels {
		sizes[l]++
	}
	best := 0
	for c, s := range sizes {
		if s > sizes[best] {
			best = c
		}
	}
	return InducedSubgraph(g, func(u NodeID) bool { return labels[u] == int32(best) })
}

// InducedSubgraph extracts the subgraph induced by nodes satisfying keep,
// renumbering node IDs densely. It returns the subgraph and the mapping from
// new IDs to original IDs.
func InducedSubgraph(g *Graph, keep func(NodeID) bool) (*Graph, []NodeID) {
	n := g.NumNodes()
	remap := make([]int32, n)
	var ids []NodeID
	for u := 0; u < n; u++ {
		if keep(NodeID(u)) {
			remap[u] = int32(len(ids))
			ids = append(ids, NodeID(u))
		} else {
			remap[u] = -1
		}
	}
	var edges []Edge
	g.Edges(func(u, v NodeID) bool {
		if remap[u] >= 0 && remap[v] >= 0 {
			edges = append(edges, Edge{NodeID(remap[u]), NodeID(remap[v])})
		}
		return true
	})
	return FromEdges(len(ids), edges), ids
}
