package graph

import (
	"fmt"
	"slices"
	"sync/atomic"

	"pegasus/internal/par"
)

// Builder accumulates edges and produces a simple undirected Graph. It
// tolerates duplicate edges, both edge orientations, and self-loops (which
// are dropped), matching the dataset preprocessing of §V-A ("we removed all
// self-loops and edge directions").
type Builder struct {
	n     int
	edges []Edge
}

// NewBuilder returns a builder for a graph with n nodes (IDs 0..n-1).
func NewBuilder(n int) *Builder {
	return &Builder{n: n}
}

// NumNodes returns the declared node count.
func (b *Builder) NumNodes() int { return b.n }

// AddEdge records the undirected edge {u,v}. Self-loops are ignored.
// Out-of-range endpoints grow the node count.
func (b *Builder) AddEdge(u, v NodeID) {
	if int(u) >= b.n {
		b.n = int(u) + 1
	}
	if int(v) >= b.n {
		b.n = int(v) + 1
	}
	if u == v {
		return
	}
	if u > v {
		u, v = v, u
	}
	b.edges = append(b.edges, Edge{u, v})
}

// AddEdges records a batch of edges.
func (b *Builder) AddEdges(edges []Edge) {
	for _, e := range edges {
		b.AddEdge(e.U, e.V)
	}
}

// Build finalizes the graph: edges are deduplicated and the CSR arrays are
// assembled with sorted adjacency lists.
func (b *Builder) Build() *Graph {
	slices.SortFunc(b.edges, func(a, c Edge) int {
		if a.U != c.U {
			if a.U < c.U {
				return -1
			}
			return 1
		}
		switch {
		case a.V < c.V:
			return -1
		case a.V > c.V:
			return 1
		}
		return 0
	})
	dedup := b.edges[:0]
	for i, e := range b.edges {
		if i == 0 || e != b.edges[i-1] {
			dedup = append(dedup, e)
		}
	}
	b.edges = dedup
	return FromEdges(b.n, b.edges)
}

// FromEdges builds a Graph from a deduplicated list of undirected edges with
// u < v. It panics if an endpoint is out of range; callers that cannot
// guarantee clean input should use Builder instead.
func FromEdges(n int, edges []Edge) *Graph {
	offsets := make([]int64, n+1)
	for _, e := range edges {
		if int(e.U) >= n || int(e.V) >= n {
			panic(fmt.Sprintf("graph: edge {%d,%d} out of range for n=%d", e.U, e.V, n))
		}
		offsets[e.U+1]++
		offsets[e.V+1]++
	}
	for i := 0; i < n; i++ {
		offsets[i+1] += offsets[i]
	}
	adj := make([]NodeID, offsets[n])
	cursor := make([]int64, n)
	copy(cursor, offsets[:n])
	for _, e := range edges {
		adj[cursor[e.U]] = e.V
		cursor[e.U]++
		adj[cursor[e.V]] = e.U
		cursor[e.V]++
	}
	g := &Graph{offsets: offsets, adj: adj}
	// Adjacency lists must be sorted for HasEdge; counting sort above emits
	// neighbors in edge order, so sort each bucket. slices.Sort, not
	// sort.Slice: the latter allocates a closure and swaps through reflect
	// per bucket — O(|V|) allocations that dominate at the 10^5-10^6-node
	// scale tier.
	for u := 0; u < n; u++ {
		slices.Sort(adj[offsets[u]:offsets[u+1]])
	}
	return g
}

// FromSortedEdges builds a Graph from edges that are already strictly sorted
// by (U, V), deduplicated, self-loop free and normalized to U < V — the
// canonical form the ingest merge produces. The CSR arrays are assembled
// with up to `workers` goroutines (0 = GOMAXPROCS): degree counts and
// adjacency placement use commutative atomic updates and each bucket is
// sorted afterwards, so the result is bit-identical to FromEdges(n, edges)
// for every worker count. It panics on out-of-range endpoints, like
// FromEdges.
func FromSortedEdges(n int, edges []Edge, workers int) *Graph {
	deg := make([]int32, n)
	par.Range(workers, len(edges), func(lo, hi int) {
		for _, e := range edges[lo:hi] {
			if int(e.U) >= n || int(e.V) >= n {
				panic(fmt.Sprintf("graph: edge {%d,%d} out of range for n=%d", e.U, e.V, n))
			}
			atomic.AddInt32(&deg[e.U], 1)
			atomic.AddInt32(&deg[e.V], 1)
		}
	})
	offsets := make([]int64, n+1)
	for i := 0; i < n; i++ {
		offsets[i+1] = offsets[i] + int64(deg[i])
	}
	adj := make([]NodeID, offsets[n])
	cursor := make([]int64, n)
	copy(cursor, offsets[:n])
	par.Range(workers, len(edges), func(lo, hi int) {
		for _, e := range edges[lo:hi] {
			adj[atomic.AddInt64(&cursor[e.U], 1)-1] = e.V
			adj[atomic.AddInt64(&cursor[e.V], 1)-1] = e.U
		}
	})
	// Placement order above is scheduling-dependent; sorting each bucket
	// canonicalizes it (buckets are duplicate-free by precondition, so the
	// sorted lists are strictly increasing — the Validate invariant).
	par.Range(workers, n, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			slices.Sort(adj[offsets[u]:offsets[u+1]])
		}
	})
	return &Graph{offsets: offsets, adj: adj}
}
