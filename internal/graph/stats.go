package graph

import (
	"math"
	"sort"
)

// Stats summarizes structural properties of a graph; used by Table II and
// by the dataset stand-in calibration.
type Stats struct {
	Nodes      int
	Edges      int64
	MinDegree  int
	MaxDegree  int
	AvgDegree  float64
	MedDegree  float64
	Triangles  int64   // number of triangles (each counted once)
	GlobalCC   float64 // transitivity: 3·triangles / #wedges
	Components int
}

// ComputeStats measures g. Triangle counting is O(Σ_u deg(u)²) worst case
// (forward counting over ordered adjacency), fine for the library's scales.
func ComputeStats(g *Graph) Stats {
	n := g.NumNodes()
	s := Stats{Nodes: n, Edges: g.NumEdges()}
	if n == 0 {
		return s
	}
	degrees := make([]int, n)
	s.MinDegree = g.Degree(0)
	for u := 0; u < n; u++ {
		d := g.Degree(NodeID(u))
		degrees[u] = d
		if d < s.MinDegree {
			s.MinDegree = d
		}
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
	}
	s.AvgDegree = g.AvgDegree()
	sorted := append([]int(nil), degrees...)
	sort.Ints(sorted)
	if n%2 == 1 {
		s.MedDegree = float64(sorted[n/2])
	} else {
		s.MedDegree = float64(sorted[n/2-1]+sorted[n/2]) / 2
	}
	s.Triangles = CountTriangles(g)
	var wedges int64
	for _, d := range degrees {
		wedges += int64(d) * int64(d-1) / 2
	}
	if wedges > 0 {
		s.GlobalCC = 3 * float64(s.Triangles) / float64(wedges)
	}
	_, s.Components = Components(g)
	return s
}

// CountTriangles counts triangles by forward counting: for each edge (u,v)
// with u < v, intersect the higher-ID portions of their adjacency lists.
func CountTriangles(g *Graph) int64 {
	var count int64
	g.Edges(func(u, v NodeID) bool {
		nu := tail(g.Neighbors(u), v)
		nv := tail(g.Neighbors(v), v)
		i, j := 0, 0
		for i < len(nu) && j < len(nv) {
			switch {
			case nu[i] < nv[j]:
				i++
			case nu[i] > nv[j]:
				j++
			default:
				count++
				i++
				j++
			}
		}
		return true
	})
	return count
}

// tail returns the suffix of sorted ns with entries > v.
func tail(ns []NodeID, v NodeID) []NodeID {
	lo, hi := 0, len(ns)
	for lo < hi {
		mid := (lo + hi) / 2
		if ns[mid] <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return ns[lo:]
}

// DegreeHistogram returns counts[d] = number of nodes with degree d.
func DegreeHistogram(g *Graph) []int64 {
	counts := make([]int64, g.MaxDegree()+1)
	for u := 0; u < g.NumNodes(); u++ {
		counts[g.Degree(NodeID(u))]++
	}
	return counts
}

// DegreeAssortativity returns the Pearson correlation of degrees across
// edges (positive: hubs link to hubs; negative: hubs link to leaves, typical
// of internet topologies).
func DegreeAssortativity(g *Graph) float64 {
	var n float64
	var sx, sy, sxx, syy, sxy float64
	g.Edges(func(u, v NodeID) bool {
		// Count each edge in both orientations for symmetry.
		du, dv := float64(g.Degree(u)), float64(g.Degree(v))
		for _, p := range [2][2]float64{{du, dv}, {dv, du}} {
			x, y := p[0], p[1]
			n++
			sx += x
			sy += y
			sxx += x * x
			syy += y * y
			sxy += x * y
		}
		return true
	})
	if n == 0 {
		return 0
	}
	cov := sxy/n - (sx/n)*(sy/n)
	vx := sxx/n - (sx/n)*(sx/n)
	vy := syy/n - (sy/n)*(sy/n)
	if vx <= 0 || vy <= 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}
