package graph

import (
	"fmt"
	"io"

	"pegasus/internal/bitio"
)

var compressedMagic = [4]byte{'P', 'G', 'C', '1'}

// WriteCompressed serializes the graph with delta+varint coded adjacency
// lists (each node's sorted neighbor list is gap-encoded). For real-world
// graphs this is typically 3-6x smaller than the fixed-width binary format
// and still loads in one pass.
func WriteCompressed(w io.Writer, g *Graph) error {
	if _, err := w.Write(compressedMagic[:]); err != nil {
		return err
	}
	bw := bitio.NewWriter(w)
	bw.PutUvarint(uint64(g.NumNodes()))
	for u := 0; u < g.NumNodes(); u++ {
		bw.PutDeltas(g.Neighbors(NodeID(u)))
	}
	return bw.Flush()
}

// ReadCompressed deserializes a graph written by WriteCompressed.
func ReadCompressed(r io.Reader) (*Graph, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, err
	}
	if magic != compressedMagic {
		return nil, fmt.Errorf("graph: bad compressed magic %q", magic)
	}
	br := bitio.NewReader(r)
	n := int(br.Uvarint())
	if err := br.Err(); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("graph: negative node count")
	}
	offsets := make([]int64, n+1)
	var adj []NodeID
	for u := 0; u < n; u++ {
		ns := br.Deltas(n)
		if err := br.Err(); err != nil {
			return nil, fmt.Errorf("graph: node %d adjacency: %w", u, err)
		}
		for _, v := range ns {
			if int(v) >= n {
				return nil, fmt.Errorf("graph: node %d has out-of-range neighbor %d", u, v)
			}
		}
		adj = append(adj, ns...)
		offsets[u+1] = int64(len(adj))
	}
	g := &Graph{offsets: offsets, adj: adj}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graph: compressed payload invalid: %w", err)
	}
	return g, nil
}
