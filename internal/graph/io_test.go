package graph

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadEdgeList(t *testing.T) {
	in := `# a comment
% another comment
0 1
1 2 extra-ignored
2 0
3 3
1 0
`
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadEdgeList: %v", err)
	}
	if g.NumNodes() != 4 {
		t.Fatalf("NumNodes = %d, want 4", g.NumNodes())
	}
	if g.NumEdges() != 3 { // self-loop and duplicate dropped
		t.Fatalf("NumEdges = %d, want 3", g.NumEdges())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	if _, err := ReadEdgeList(strings.NewReader("0\n")); err == nil {
		t.Error("want error for single-field line")
	}
	if _, err := ReadEdgeList(strings.NewReader("a b\n")); err == nil {
		t.Error("want error for non-numeric IDs")
	}
	if _, err := ReadEdgeList(strings.NewReader("1 -2\n")); err == nil {
		t.Error("want error for negative ID")
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := testGraph(t)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatalf("WriteEdgeList: %v", err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatalf("ReadEdgeList: %v", err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed graph: %v -> %v", g, g2)
	}
}

func TestEdgeListFileRoundTrip(t *testing.T) {
	g := testGraph(t)
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := SaveEdgeListFile(path, g); err != nil {
		t.Fatalf("SaveEdgeListFile: %v", err)
	}
	g2, err := LoadEdgeListFile(path)
	if err != nil {
		t.Fatalf("LoadEdgeListFile: %v", err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("file round trip changed edges: %d -> %d", g.NumEdges(), g2.NumEdges())
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	g := testGraph(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if err := g2.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("binary round trip changed graph")
	}
	for u := 0; u < g.NumNodes(); u++ {
		a, b := g.Neighbors(NodeID(u)), g2.Neighbors(NodeID(u))
		if len(a) != len(b) {
			t.Fatalf("node %d adjacency changed", u)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("node %d adjacency changed", u)
			}
		}
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("NOPE----------"))); err == nil {
		t.Error("want error for bad magic")
	}
	if _, err := ReadBinary(bytes.NewReader(nil)); err == nil {
		t.Error("want error for empty input")
	}
}
