package graph

import "testing"

// path graph 0-1-2-3-4 plus isolated node 5
func pathGraph() *Graph {
	b := NewBuilder(6)
	for i := 0; i < 4; i++ {
		b.AddEdge(NodeID(i), NodeID(i+1))
	}
	return b.Build()
}

func TestBFSDistances(t *testing.T) {
	g := pathGraph()
	d := BFS(g, 0)
	want := []int32{0, 1, 2, 3, 4, Unreached}
	for i := range want {
		if d[i] != want[i] {
			t.Errorf("dist[%d] = %d, want %d", i, d[i], want[i])
		}
	}
}

func TestMultiSourceBFS(t *testing.T) {
	g := pathGraph()
	d := MultiSourceBFS(g, []NodeID{0, 4})
	want := []int32{0, 1, 2, 1, 0, Unreached}
	for i := range want {
		if d[i] != want[i] {
			t.Errorf("dist[%d] = %d, want %d", i, d[i], want[i])
		}
	}
}

func TestMultiSourceBFSDuplicateSources(t *testing.T) {
	g := pathGraph()
	d := MultiSourceBFS(g, []NodeID{2, 2, 2})
	if d[2] != 0 || d[0] != 2 || d[4] != 2 {
		t.Fatalf("unexpected distances %v", d)
	}
}

func TestBFSOrder(t *testing.T) {
	g := pathGraph()
	order := BFSOrder(g, 2, 0)
	if len(order) != 5 {
		t.Fatalf("BFSOrder visited %d nodes, want 5 (component size)", len(order))
	}
	if order[0] != 2 {
		t.Fatalf("BFSOrder starts at %d, want source 2", order[0])
	}
	// Limited traversal.
	lim := BFSOrder(g, 0, 3)
	if len(lim) != 3 {
		t.Fatalf("BFSOrder limit: got %d nodes, want 3", len(lim))
	}
}

func TestComponents(t *testing.T) {
	g := pathGraph()
	labels, count := Components(g)
	if count != 2 {
		t.Fatalf("components = %d, want 2", count)
	}
	for i := 0; i < 5; i++ {
		if labels[i] != labels[0] {
			t.Errorf("node %d in component %d, want %d", i, labels[i], labels[0])
		}
	}
	if labels[5] == labels[0] {
		t.Error("isolated node shares component with path")
	}
}

func TestLargestComponent(t *testing.T) {
	b := NewBuilder(7)
	// component A: 0-1-2 (3 nodes), component B: 3-4 (2 nodes), isolated: 5, 6
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	g := b.Build()
	lcc, ids := LargestComponent(g)
	if lcc.NumNodes() != 3 || lcc.NumEdges() != 2 {
		t.Fatalf("LCC |V|=%d |E|=%d, want 3,2", lcc.NumNodes(), lcc.NumEdges())
	}
	for i, orig := range ids {
		if orig != NodeID(i) {
			t.Errorf("ids[%d] = %d, want %d", i, orig, i)
		}
	}
	// Already-connected graph is returned as-is.
	p := pathGraphConnected()
	same, _ := LargestComponent(p)
	if same.NumNodes() != p.NumNodes() {
		t.Fatalf("connected graph shrunk: %d -> %d", p.NumNodes(), same.NumNodes())
	}
}

func pathGraphConnected() *Graph {
	b := NewBuilder(5)
	for i := 0; i < 4; i++ {
		b.AddEdge(NodeID(i), NodeID(i+1))
	}
	return b.Build()
}

func TestInducedSubgraph(t *testing.T) {
	g := testGraph(t) // triangle 0,1,2 + pendant 3
	sub, ids := InducedSubgraph(g, func(u NodeID) bool { return u != 3 })
	if sub.NumNodes() != 3 || sub.NumEdges() != 3 {
		t.Fatalf("sub |V|=%d |E|=%d, want 3,3", sub.NumNodes(), sub.NumEdges())
	}
	if len(ids) != 3 {
		t.Fatalf("ids len = %d, want 3", len(ids))
	}
	if err := sub.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestSampleInducedSubgraph(t *testing.T) {
	g := pathGraphConnected()
	sub := SampleInducedSubgraph(g, 0.6, 1)
	if sub.NumNodes() != 3 {
		t.Fatalf("sampled |V| = %d, want 3", sub.NumNodes())
	}
	full := SampleInducedSubgraph(g, 1.0, 1)
	if full != g {
		t.Fatal("frac>=1 should return the original graph")
	}
}

func TestSampleNodes(t *testing.T) {
	g := pathGraphConnected()
	s := SampleNodes(g, 3, 42)
	if len(s) != 3 {
		t.Fatalf("sampled %d nodes, want 3", len(s))
	}
	seen := map[NodeID]bool{}
	for _, u := range s {
		if seen[u] {
			t.Fatalf("duplicate sample %d", u)
		}
		seen[u] = true
	}
	// Deterministic for same seed.
	s2 := SampleNodes(g, 3, 42)
	for i := range s {
		if s[i] != s2[i] {
			t.Fatal("SampleNodes not deterministic for fixed seed")
		}
	}
	if got := SampleNodes(g, 100, 1); len(got) != g.NumNodes() {
		t.Fatalf("oversample returned %d, want %d", len(got), g.NumNodes())
	}
}

func TestEffectiveDiameter(t *testing.T) {
	// Path of 11 nodes: exact distances known; 90th percentile near 7-8.
	b := NewBuilder(11)
	for i := 0; i < 10; i++ {
		b.AddEdge(NodeID(i), NodeID(i+1))
	}
	g := b.Build()
	d := EffectiveDiameter(g, 0, 7) // all sources
	if d < 5 || d > 10 {
		t.Fatalf("EffectiveDiameter(path11) = %v, want within [5,10]", d)
	}
	// A clique has effective diameter <= 1.
	cb := NewBuilder(6)
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			cb.AddEdge(NodeID(i), NodeID(j))
		}
	}
	clique := cb.Build()
	if d := EffectiveDiameter(clique, 0, 7); d > 1 {
		t.Fatalf("EffectiveDiameter(K6) = %v, want <= 1", d)
	}
	// Diameter grows with path length.
	b2 := NewBuilder(41)
	for i := 0; i < 40; i++ {
		b2.AddEdge(NodeID(i), NodeID(i+1))
	}
	longer := EffectiveDiameter(b2.Build(), 0, 7)
	if longer <= d {
		t.Fatalf("longer path should have larger effective diameter: %v <= %v", longer, d)
	}
}
