package graph

import (
	"bytes"
	"math/rand"
	"slices"
	"testing"
)

// TestFromSortedEdgesMatchesFromEdges pins the parallel CSR assembly to the
// sequential constructor: for random sorted deduplicated edge sets, every
// worker count must produce a byte-identical graph.
func TestFromSortedEdgesMatchesFromEdges(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 100 + rng.Intn(3000)
		m := 4 * n
		seen := map[Edge]bool{}
		edges := make([]Edge, 0, m)
		for len(edges) < m {
			u := NodeID(rng.Intn(n))
			v := NodeID(rng.Intn(n))
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			e := Edge{U: u, V: v}
			if seen[e] {
				continue
			}
			seen[e] = true
			edges = append(edges, e)
		}
		slices.SortFunc(edges, func(a, b Edge) int {
			if a.U != b.U {
				if a.U < b.U {
					return -1
				}
				return 1
			}
			switch {
			case a.V < b.V:
				return -1
			case a.V > b.V:
				return 1
			}
			return 0
		})
		want := serialize(t, FromEdges(n, edges))
		for _, w := range []int{1, 2, 8} {
			g := FromSortedEdges(n, edges, w)
			if err := g.Validate(); err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, w, err)
			}
			if !bytes.Equal(serialize(t, g), want) {
				t.Fatalf("seed %d workers %d: FromSortedEdges differs from FromEdges", seed, w)
			}
		}
	}
}

func TestFromSortedEdgesEmpty(t *testing.T) {
	g := FromSortedEdges(0, nil, 4)
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph: %v", g)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func serialize(t *testing.T, g *Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
