package graph

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCompressedRoundTrip(t *testing.T) {
	g := testGraph(t)
	var buf bytes.Buffer
	if err := WriteCompressed(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadCompressed(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatal("compressed round trip changed graph shape")
	}
	for u := 0; u < g.NumNodes(); u++ {
		a, b := g.Neighbors(NodeID(u)), g2.Neighbors(NodeID(u))
		if len(a) != len(b) {
			t.Fatalf("node %d adjacency changed", u)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("node %d adjacency changed", u)
			}
		}
	}
}

func TestCompressedSmallerThanBinary(t *testing.T) {
	// A consecutive-ID-heavy graph compresses well under gap coding.
	b := NewBuilder(2000)
	rng := rand.New(rand.NewSource(1))
	for u := 0; u < 1999; u++ {
		b.AddEdge(NodeID(u), NodeID(u+1))
		if rng.Intn(3) == 0 {
			b.AddEdge(NodeID(u), NodeID(rng.Intn(2000)))
		}
	}
	g := b.Build()
	var comp, bin bytes.Buffer
	if err := WriteCompressed(&comp, g); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&bin, g); err != nil {
		t.Fatal(err)
	}
	if comp.Len() >= bin.Len() {
		t.Fatalf("compressed %d bytes not smaller than binary %d", comp.Len(), bin.Len())
	}
	t.Logf("compressed %d vs binary %d bytes (%.1fx)", comp.Len(), bin.Len(), float64(bin.Len())/float64(comp.Len()))
}

func TestCompressedRejectsGarbage(t *testing.T) {
	if _, err := ReadCompressed(bytes.NewReader([]byte("XXXXgarbage"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Truncations of a valid payload must be detected.
	g := testGraph(t)
	var buf bytes.Buffer
	if err := WriteCompressed(&buf, g); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 4; cut < len(full); cut += 2 {
		if _, err := ReadCompressed(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestPropertyCompressedRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 80, 300)
		var buf bytes.Buffer
		if err := WriteCompressed(&buf, g); err != nil {
			return false
		}
		g2, err := ReadCompressed(&buf)
		if err != nil {
			return false
		}
		if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
			return false
		}
		return g2.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
