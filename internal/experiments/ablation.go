package experiments

import (
	"pegasus/internal/core"
	"pegasus/internal/datasets"
	"pegasus/internal/graph"
	"pegasus/internal/metrics"
	"pegasus/internal/weights"
)

// AblationCost reproduces the online-appendix ablation justifying the
// relative cost reduction (Eq. 11) over the absolute reduction (Eq. 10):
// with the absolute criterion, node pairs that are merely *distant from the
// targets* (small weights → small absolute cost) get merged myopically even
// when their connectivity disagrees, inflating the personalized error and
// degrading query accuracy.
func AblationCost(sc Scale) (*Table, error) {
	t := &Table{
		Title:  "Ablation — relative (Eq. 11) vs absolute (Eq. 10) cost reduction, ratio 0.5",
		Header: []string{"Dataset", "Cost", "PersonalizedError", "SMAPE(RWR)", "Spearman(RWR)"},
	}
	const ratio = 0.5
	kinds := []QueryKind{QRWR}
	for _, d := range datasets.Real() {
		if !sc.wantsDataset(d.Short) {
			continue
		}
		g := d.Load(sc.Graph)
		qs := graph.SampleNodes(g, sc.Queries, sc.Seed+31)
		truth, err := computeTruth(g, qs, kinds, sc)
		if err != nil {
			return nil, err
		}
		w, err := weights.New(g, qs, 1.25)
		if err != nil {
			return nil, err
		}
		for _, mode := range []struct {
			name string
			cm   core.CostMode
		}{{"relative", core.RelativeCost}, {"absolute", core.AbsoluteCost}} {
			res, err := core.Summarize(g, core.Config{
				Targets: qs, BudgetRatio: ratio, Seed: sc.Seed, CostMode: mode.cm,
			})
			if err != nil {
				return nil, err
			}
			pe := metrics.PersonalizedError(g, res.Summary, w)
			sm, sp, err := accuracy(res.Summary, truth, qs, QRWR, sc)
			if err != nil {
				return nil, err
			}
			t.Append(d.Short, mode.name, pe, sm, sp)
		}
	}
	return t, nil
}
