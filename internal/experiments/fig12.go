package experiments

import (
	"pegasus/internal/core"
	"pegasus/internal/datasets"
	"pegasus/internal/distributed"
	"pegasus/internal/graph"
	"pegasus/internal/metrics"
	"pegasus/internal/partition"
	"pegasus/internal/queries"
	"pegasus/internal/ssumm"
	"pegasus/internal/summary"
)

// Fig12 reproduces Fig. 12 (and Fig. 2c): "communication-free" distributed
// multi-query answering with m = 8 machines. The PeGaSus cluster loads, on
// each machine, a summary personalized to one Louvain part (Alg. 3); the
// SSumM cluster replicates a non-personalized summary; the partitioning
// baselines (Louvain, BLP, SHP-I/II/KL) load size-bounded subgraphs composed
// of the edges closest to each part (§IV, "potential alternatives"). Each
// query is answered locally by the machine owning the query node; SMAPE and
// Spearman against the full-graph ground truth are averaged over queries.
func Fig12(sc Scale) (*Table, error) {
	t := &Table{
		Title:  "Fig. 12 — communication-free distributed multi-query answering (m=8)",
		Note:   "per-machine budget = ratio × Size(G)",
		Header: []string{"Dataset", "Ratio", "System", "Query", "SMAPE", "Spearman"},
	}
	const m = 8
	kinds := []QueryKind{QRWR, QHOP}
	for _, d := range datasets.Real() {
		if !sc.wantsDataset(d.Short) {
			continue
		}
		g := d.Load(sc.Graph)
		qs := graph.SampleNodes(g, sc.Queries, sc.Seed+29)
		truth, err := computeTruth(g, qs, kinds, sc)
		if err != nil {
			return nil, err
		}
		louvain := partition.Partition(g, m, partition.MethodLouvain, sc.Seed)
		for _, ratio := range sc.Ratios {
			budget := ratio * g.SizeBits()

			// PeGaSus cluster: per-part personalized summaries.
			pc, err := distributed.BuildSummaryCluster(g, louvain, m, budget,
				distributed.PegasusSummarizer(core.Config{Seed: sc.Seed, Workers: 1}))
			if err != nil {
				return nil, err
			}
			if err := appendClusterRows(t, d.Short, ratio, "PeGaSus", pc, truth, qs, kinds, sc); err != nil {
				return nil, err
			}

			// SSumM cluster: one non-personalized summary answers everything
			// (SSumM cannot focus on regions, §III-G).
			sres, err := ssumm.Summarize(g, ssumm.Config{BudgetBits: budget, Seed: sc.Seed})
			if err != nil {
				return nil, err
			}
			scl := replicatedSummaryCluster(g, sres.Summary, m, louvain)
			if err := appendClusterRows(t, d.Short, ratio, "SSumM", scl, truth, qs, kinds, sc); err != nil {
				return nil, err
			}

			// Partitioning baselines: subgraph clusters.
			for _, pm := range partition.Methods {
				labels := louvain
				if pm != partition.MethodLouvain {
					labels = partition.Partition(g, m, pm, sc.Seed)
				}
				cl, err := distributed.BuildSubgraphCluster(g, labels, m, budget)
				if err != nil {
					return nil, err
				}
				if err := appendClusterRows(t, d.Short, ratio, string(pm), cl, truth, qs, kinds, sc); err != nil {
					return nil, err
				}
			}
		}
	}
	return t, nil
}

// replicatedSummaryCluster loads the same summary on every machine (the
// SSumM arrangement: no personalization, so replication is its best use of
// m × k memory for communication-free answering).
func replicatedSummaryCluster(g *graph.Graph, s *summary.Summary, m int, labels []uint32) *distributed.Cluster {
	c := &distributed.Cluster{Assign: labels, Machines: make([]*distributed.Machine, m)}
	for i := 0; i < m; i++ {
		c.Machines[i] = &distributed.Machine{Summary: s}
	}
	return c
}

func appendClusterRows(t *Table, ds string, ratio float64, system string, c *distributed.Cluster, truth *groundTruth, qs []graph.NodeID, kinds []QueryKind, sc Scale) error {
	for _, k := range kinds {
		var sm, sp float64
		for _, q := range qs {
			var approx, exact []float64
			switch k {
			case QRWR:
				v, err := c.RWR(q, sc.RWR)
				if err != nil {
					return err
				}
				approx, exact = v, truth.rwr[q]
			case QHOP:
				d, err := c.HOP(q)
				if err != nil {
					return err
				}
				approx = queries.ToFloats(queries.FillUnreached(d, int32(len(c.Assign))))
				exact = truth.hop[q]
			case QPHP:
				v, err := c.PHP(q, sc.PHP)
				if err != nil {
					return err
				}
				approx, exact = v, truth.php[q]
			}
			a, err := metrics.SMAPE(exact, approx)
			if err != nil {
				return err
			}
			b, err := metrics.Spearman(exact, approx)
			if err != nil {
				return err
			}
			sm += a
			sp += b
		}
		n := float64(len(qs))
		t.Append(ds, ratio, system, string(k), sm/n, sp/n)
	}
	return nil
}

// Fig12PHP is the PHP panel of the distributed experiment (online appendix).
func Fig12PHP(sc Scale) (*Table, error) {
	t := &Table{
		Title:  "Fig. 12 (appendix) — distributed multi-query answering, PHP",
		Header: []string{"Dataset", "Ratio", "System", "Query", "SMAPE", "Spearman"},
	}
	const m = 8
	kinds := []QueryKind{QPHP}
	for _, d := range datasets.Real() {
		if !sc.wantsDataset(d.Short) {
			continue
		}
		g := d.Load(sc.Graph)
		qs := graph.SampleNodes(g, sc.Queries, sc.Seed+29)
		truth, err := computeTruth(g, qs, kinds, sc)
		if err != nil {
			return nil, err
		}
		louvain := partition.Partition(g, m, partition.MethodLouvain, sc.Seed)
		for _, ratio := range sc.Ratios {
			budget := ratio * g.SizeBits()
			pc, err := distributed.BuildSummaryCluster(g, louvain, m, budget,
				distributed.PegasusSummarizer(core.Config{Seed: sc.Seed, Workers: 1}))
			if err != nil {
				return nil, err
			}
			if err := appendClusterRows(t, d.Short, ratio, "PeGaSus", pc, truth, qs, kinds, sc); err != nil {
				return nil, err
			}
			cl, err := distributed.BuildSubgraphCluster(g, louvain, m, budget)
			if err != nil {
				return nil, err
			}
			if err := appendClusterRows(t, d.Short, ratio, "louvain", cl, truth, qs, kinds, sc); err != nil {
				return nil, err
			}
		}
	}
	return t, nil
}
