package experiments

import (
	"time"

	"pegasus/internal/datasets"
	"pegasus/internal/graph"
	"pegasus/internal/queries"
	"pegasus/internal/summary"
)

// Fig8 reproduces Fig. 8: (a) summarization time per method and dataset at
// compression ratio 0.5, and (b/c) query time on the resulting summaries for
// breadth-first search (HOP) and RWR, compared with the uncompressed graph.
// Dense summaries (k-GraSS/S2L/SAAGs) should show markedly slower query
// times than PeGaSus's sparse, selectively-added superedges.
func Fig8(sc Scale) (*Table, error) {
	t := &Table{
		Title:  "Fig. 8 — summarization time and per-query time (ratio 0.5)",
		Header: []string{"Dataset", "Method", "SummarizeTime", "BFSQueryTime", "RWRQueryTime"},
	}
	const ratio = 0.5
	for _, d := range datasets.Real() {
		if !sc.wantsDataset(d.Short) {
			continue
		}
		g := d.Load(sc.Graph)
		qs := graph.SampleNodes(g, minInt(sc.Queries, 10), sc.Seed+13)

		// Uncompressed reference row.
		bfsT, rwrT, err := timeGraphQueries(g, qs, sc)
		if err != nil {
			return nil, err
		}
		t.Append(d.Short, "Uncompressed", time.Duration(0), bfsT, rwrT)

		for _, m := range AllMethods {
			if m != MPegasus && m != MSSumM && !sc.wantsBaseline(d.Short) {
				t.Append(d.Short, string(m), "oot", "-", "-")
				continue
			}
			var targets []graph.NodeID
			if m == MPegasus {
				targets = qs
			}
			res, err := summarizeBy(m, g, targets, ratio, sc.Seed)
			if err != nil {
				return nil, err
			}
			bq, rq, err := timeSummaryQueries(res.s, qs, sc)
			if err != nil {
				return nil, err
			}
			t.Append(d.Short, string(m), res.elapsed, bq, rq)
		}
	}
	return t, nil
}

func timeGraphQueries(g *graph.Graph, qs []graph.NodeID, sc Scale) (bfs, rwr time.Duration, err error) {
	start := time.Now()
	for _, q := range qs {
		if _, err = queries.GraphHOP(g, q); err != nil {
			return
		}
	}
	bfs = time.Since(start) / time.Duration(len(qs))
	start = time.Now()
	for _, q := range qs {
		if _, err = queries.GraphRWR(g, q, sc.RWR); err != nil {
			return
		}
	}
	rwr = time.Since(start) / time.Duration(len(qs))
	return
}

func timeSummaryQueries(s *summary.Summary, qs []graph.NodeID, sc Scale) (bfs, rwr time.Duration, err error) {
	start := time.Now()
	for _, q := range qs {
		if _, err = queries.SummaryHOP(s, q); err != nil {
			return
		}
	}
	bfs = time.Since(start) / time.Duration(len(qs))
	start = time.Now()
	for _, q := range qs {
		if _, err = queries.SummaryRWR(s, q, sc.RWR); err != nil {
			return
		}
	}
	rwr = time.Since(start) / time.Duration(len(qs))
	return
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
