package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func sampleTable() *Table {
	t := &Table{
		Title:  "T",
		Header: []string{"Dataset", "Ratio", "Method", "SMAPE"},
	}
	t.Append("LA", 0.3, "PeGaSus", 0.5)
	t.Append("LA", 0.5, "PeGaSus", 0.4)
	t.Append("LA", 0.3, "SSumM", 0.6)
	t.Append("LA", 0.5, "SSumM", 0.55)
	t.Append("LA", 0.5, "k-GraSS", "oot") // unparsable row skipped by series
	return t
}

func TestWriteCSV(t *testing.T) {
	tab := sampleTable()
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 6 {
		t.Fatalf("CSV has %d lines, want 6", len(lines))
	}
	if lines[0] != "Dataset,Ratio,Method,SMAPE" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "LA,0.3,PeGaSus,") {
		t.Fatalf("row = %q", lines[1])
	}
}

func TestWriteCSVQuoting(t *testing.T) {
	tab := &Table{Header: []string{"a"}, Rows: [][]string{{`x,"y"`}}}
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"x,""y"""`) {
		t.Fatalf("quoting wrong: %q", buf.String())
	}
}

func TestSeriesFrom(t *testing.T) {
	tab := sampleTable()
	series := tab.SeriesFrom([]int{2}, 1, 3)
	if len(series) != 2 {
		t.Fatalf("series = %d, want 2 (oot row skipped)", len(series))
	}
	if series[0].Name != "PeGaSus" || len(series[0].X) != 2 {
		t.Fatalf("unexpected first series %+v", series[0])
	}
	if series[1].Name != "SSumM" {
		t.Fatalf("unexpected second series %+v", series[1])
	}
}

func TestRenderChart(t *testing.T) {
	tab := sampleTable()
	series := tab.SeriesFrom([]int{2}, 1, 3)
	out := RenderChart(series, 40, 10)
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("chart missing markers:\n%s", out)
	}
	if !strings.Contains(out, "PeGaSus") || !strings.Contains(out, "SSumM") {
		t.Fatalf("chart missing legend:\n%s", out)
	}
	// Degenerate inputs do not panic.
	if got := RenderChart(nil, 40, 10); !strings.Contains(got, "no data") {
		t.Fatalf("empty chart = %q", got)
	}
	one := []Series{{Name: "p", X: []float64{1}, Y: []float64{2}}}
	if got := RenderChart(one, 5, 3); got == "" {
		t.Fatal("single-point chart empty")
	}
}
