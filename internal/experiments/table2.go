package experiments

import (
	"pegasus/internal/datasets"
	"pegasus/internal/graph"
)

// Table2 reproduces Table II: the dataset inventory. Our numbers are the
// synthetic stand-ins' (reduced ~100×; see DESIGN.md §3); the Paper columns
// echo the original sizes for comparison.
func Table2(sc Scale) (*Table, error) {
	t := &Table{
		Title:  "Table II — datasets (synthetic stand-ins; paper sizes for reference)",
		Header: []string{"Name", "Code", "Kind", "|V|", "|E|", "EffDiam(90%)", "Paper |V|", "Paper |E|"},
	}
	paperV := map[string]string{
		"LA": "7,624", "CA": "26,475", "DB": "317,080", "A6": "403,364",
		"SK": "1,694,616", "WK": "3,174,745", "ST": "10,000,000",
	}
	paperE := map[string]string{
		"LA": "27,806", "CA": "53,381", "DB": "1,049,866", "A6": "2,443,311",
		"SK": "11,094,209", "WK": "103,310,688", "ST": "1,000,000,000",
	}
	for _, d := range datasets.Registry() {
		if d.Short != "ST" && !sc.wantsDataset(d.Short) {
			continue
		}
		g := d.Load(sc.Graph)
		diam := graph.EffectiveDiameter(g, 50, sc.Seed)
		t.Append(d.Name, d.Short, d.Kind, g.NumNodes(), g.NumEdges(), diam, paperV[d.Short], paperE[d.Short])
	}
	return t, nil
}
