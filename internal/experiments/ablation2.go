package experiments

import (
	"pegasus/internal/core"
	"pegasus/internal/datasets"
	"pegasus/internal/graph"
	"pegasus/internal/metrics"
	"pegasus/internal/weights"
)

// AblationThreshold isolates the adaptive-thresholding contribution
// (§III-E/G): PeGaSus with its adaptive θ against the same engine with
// SSumM's fixed schedule θ(t) = (1+t)^{-1}, everything else equal
// (personalized weights, relative cost, shingle groups).
func AblationThreshold(sc Scale) (*Table, error) {
	t := &Table{
		Title:  "Ablation — adaptive thresholding (PeGaSus) vs fixed schedule (SSumM), ratio 0.5",
		Header: []string{"Dataset", "Threshold", "PersonalizedError", "SMAPE(RWR)", "Spearman(RWR)"},
	}
	return thresholdStyleAblation(sc, t, func(name string) core.Config {
		cfg := core.Config{BudgetRatio: 0.5, Seed: sc.Seed}
		if name == "fixed" {
			cfg.Threshold = core.FixedSchedule{TMax: 20}
		}
		return cfg
	}, []string{"adaptive", "fixed"})
}

// AblationGrouping isolates the shingle candidate generation (§III-C):
// connectivity-aware groups against uniformly random groups of the same
// size.
func AblationGrouping(sc Scale) (*Table, error) {
	t := &Table{
		Title:  "Ablation — shingle candidate groups vs random groups, ratio 0.5",
		Header: []string{"Dataset", "Grouping", "PersonalizedError", "SMAPE(RWR)", "Spearman(RWR)"},
	}
	return thresholdStyleAblation(sc, t, func(name string) core.Config {
		cfg := core.Config{BudgetRatio: 0.5, Seed: sc.Seed}
		if name == "random" {
			cfg.RandomGroups = true
		}
		return cfg
	}, []string{"shingle", "random"})
}

func thresholdStyleAblation(sc Scale, t *Table, mkCfg func(name string) core.Config, variants []string) (*Table, error) {
	kinds := []QueryKind{QRWR}
	for _, d := range datasets.Real() {
		if !sc.wantsDataset(d.Short) {
			continue
		}
		g := d.Load(sc.Graph)
		qs := graph.SampleNodes(g, sc.Queries, sc.Seed+37)
		truth, err := computeTruth(g, qs, kinds, sc)
		if err != nil {
			return nil, err
		}
		w, err := weights.New(g, qs, 1.25)
		if err != nil {
			return nil, err
		}
		for _, name := range variants {
			cfg := mkCfg(name)
			cfg.Targets = qs
			res, err := core.Summarize(g, cfg)
			if err != nil {
				return nil, err
			}
			pe := metrics.PersonalizedError(g, res.Summary, w)
			sm, sp, err := accuracy(res.Summary, truth, qs, QRWR, sc)
			if err != nil {
				return nil, err
			}
			t.Append(d.Short, name, pe, sm, sp)
		}
	}
	return t, nil
}
