package experiments

import (
	"pegasus/internal/datasets"
	"pegasus/internal/graph"
)

// Fig7 reproduces Fig. 7: query-answering accuracy versus compression ratio,
// PeGaSus (personalized to the 100 query nodes, α = 1.25) against the
// non-personalized state of the art. For every dataset, ratio and method it
// reports SMAPE (lower better) and Spearman correlation (higher better) for
// RWR and HOP queries averaged over the sampled query nodes. PHP accuracy
// (the online appendix's third panel) is produced by Fig7PHP. The slow
// baselines run only on Scale.BaselineDatasets, mirroring the paper's
// o.o.t./o.o.m. entries ("oot" rows).
func Fig7(sc Scale) (*Table, error) {
	return fig7impl(sc, []QueryKind{QRWR, QHOP},
		"Fig. 7 — query accuracy vs compression ratio (RWR & HOP)")
}

// Fig7PHP is the PHP panel of the same experiment (online appendix).
func Fig7PHP(sc Scale) (*Table, error) {
	return fig7impl(sc, []QueryKind{QPHP},
		"Fig. 7 (appendix) — query accuracy vs compression ratio (PHP)")
}

func fig7impl(sc Scale, kinds []QueryKind, title string) (*Table, error) {
	t := &Table{
		Title:  title,
		Note:   "PeGaSus is personalized to the query nodes (|T|=Queries, alpha=1.25)",
		Header: []string{"Dataset", "Ratio(req)", "Method", "Ratio(got)", "Query", "SMAPE", "Spearman"},
	}
	for _, d := range datasets.Real() {
		if !sc.wantsDataset(d.Short) {
			continue
		}
		g := d.Load(sc.Graph)
		qs := graph.SampleNodes(g, sc.Queries, sc.Seed+11)
		truth, err := computeTruth(g, qs, kinds, sc)
		if err != nil {
			return nil, err
		}
		for _, ratio := range sc.Ratios {
			for _, m := range AllMethods {
				if m != MPegasus && m != MSSumM && !sc.wantsBaseline(d.Short) {
					t.Append(d.Short, ratio, string(m), "oot", "-", "-", "-")
					continue
				}
				var targets []graph.NodeID
				if m == MPegasus {
					targets = qs
				}
				res, err := summarizeBy(m, g, targets, ratio, sc.Seed)
				if err != nil {
					return nil, err
				}
				for _, k := range kinds {
					sm, sp, err := accuracy(res.s, truth, qs, k, sc)
					if err != nil {
						return nil, err
					}
					t.Append(d.Short, ratio, string(m), res.achievedRatio, string(k), sm, sp)
				}
			}
		}
	}
	return t, nil
}
