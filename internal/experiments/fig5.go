package experiments

import (
	"math/rand"

	"pegasus/internal/core"
	"pegasus/internal/datasets"
	"pegasus/internal/graph"
	"pegasus/internal/metrics"
	"pegasus/internal/ssumm"
	"pegasus/internal/weights"
)

// Fig5 reproduces Fig. 5 (and Fig. 2a): the effectiveness of
// personalization. For each dataset, target-set size |T| ∈ {1, 1%, 10%, 30%,
// 50%, 100% of |V|} and α ∈ {1.25, 1.5, 1.75}, it summarizes at compression
// ratio 0.5 personalized to a uniformly sampled T, then measures the
// personalized error at each test node u (Eq. 1 with T = {u}), relative to
// the error of the non-personalized summary (T = V). Values below 1 mean
// personalization helped; the paper reports decreasing relative error as |T|
// shrinks and α grows, and SSumM (shown as its own series) above
// non-personalized PeGaSus.
func Fig5(sc Scale) (*Table, error) {
	t := &Table{
		Title:  "Fig. 5 — relative personalized error (vs non-personalized PeGaSus, ratio 0.5)",
		Note:   "lower is better; |T| shrinking and alpha growing should shrink the relative error",
		Header: []string{"Dataset", "Alpha", "|T|", "RelErr", "RelErr(SSumM)"},
	}
	alphas := []float64{1.25, 1.5, 1.75}
	const ratio = 0.5
	for _, d := range datasets.Real() {
		if !sc.wantsDataset(d.Short) {
			continue
		}
		g := d.Load(sc.Graph)
		rng := rand.New(rand.NewSource(sc.Seed))
		n := g.NumNodes()

		// Test nodes, shared across settings.
		testNodes := graph.SampleNodes(g, sc.TestNodes, sc.Seed+7)

		// Reference: non-personalized summaries.
		base, err := core.SummarizeNonPersonalized(g, core.Config{BudgetRatio: ratio, Seed: sc.Seed})
		if err != nil {
			return nil, err
		}
		ss, err := ssumm.Summarize(g, ssumm.Config{BudgetRatio: ratio, Seed: sc.Seed})
		if err != nil {
			return nil, err
		}
		// Per-test-node personalized error of the references.
		baseErr := make([]float64, len(testNodes))
		ssErr := make([]float64, len(testNodes))
		for i, u := range testNodes {
			w, err := weights.New(g, []graph.NodeID{u}, alphas[0])
			if err != nil {
				return nil, err
			}
			baseErr[i] = metrics.PersonalizedError(g, base.Summary, w)
			ssErr[i] = metrics.PersonalizedError(g, ss.Summary, w)
		}

		sizes := []struct {
			label string
			count int
		}{
			{"1", 1},
			{"1%|V|", maxInt(1, n/100)},
			{"10%|V|", maxInt(1, n/10)},
			{"30%|V|", maxInt(1, 3*n/10)},
			{"50%|V|", maxInt(1, n/2)},
			{"|V|", n},
		}
		for _, alpha := range alphas {
			for _, size := range sizes {
				// Sample T including the test nodes so that "personalized to
				// T" covers them (the paper measures error at nodes of
				// interest; test nodes are drawn from T).
				targets := sampleTargetsIncluding(g, size.count, testNodes, rng)
				res, err := core.Summarize(g, core.Config{
					Targets: targets, Alpha: alpha, BudgetRatio: ratio, Seed: sc.Seed,
				})
				if err != nil {
					return nil, err
				}
				relSum, ssSum := 0.0, 0.0
				for i, u := range testNodes {
					w, err := weights.New(g, []graph.NodeID{u}, alpha)
					if err != nil {
						return nil, err
					}
					e := metrics.PersonalizedError(g, res.Summary, w)
					// Recompute the references under this alpha's weighting
					// only when it differs from the cached one.
					be, se := baseErr[i], ssErr[i]
					if alpha != alphas[0] {
						be = metrics.PersonalizedError(g, base.Summary, w)
						se = metrics.PersonalizedError(g, ss.Summary, w)
					}
					if be > 0 {
						relSum += e / be
						ssSum += se / be
					} else {
						relSum++
						ssSum++
					}
				}
				t.Append(d.Short, alpha, size.label,
					relSum/float64(len(testNodes)), ssSum/float64(len(testNodes)))
			}
		}
	}
	return t, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// sampleTargetsIncluding samples count distinct nodes uniformly, forcing the
// given seeds into the set.
func sampleTargetsIncluding(g *graph.Graph, count int, include []graph.NodeID, rng *rand.Rand) []graph.NodeID {
	n := g.NumNodes()
	if count >= n {
		out := make([]graph.NodeID, n)
		for i := range out {
			out[i] = graph.NodeID(i)
		}
		return out
	}
	seen := map[graph.NodeID]bool{}
	out := make([]graph.NodeID, 0, count)
	for _, u := range include {
		if len(out) == count {
			break
		}
		if !seen[u] {
			seen[u] = true
			out = append(out, u)
		}
	}
	for len(out) < count {
		u := graph.NodeID(rng.Intn(n))
		if !seen[u] {
			seen[u] = true
			out = append(out, u)
		}
	}
	return out
}
