package experiments

import (
	"math"
	"time"

	"pegasus/internal/core"
	"pegasus/internal/datasets"
	"pegasus/internal/graph"
)

// Fig6 reproduces Fig. 6 (and Fig. 2b): linear scalability. Induced
// subgraphs of 10%..100% of the nodes are sampled from the Skitter stand-in
// and the BA synthetic; PeGaSus summarization time is measured with |T| =
// 100 and |T| = |V|/2, and a log–log regression slope over the edge counts
// is reported (the paper's slope-1 reference line). The paper's billion-edge
// graph is substituted by the reduced ST stand-in (DESIGN.md §3).
func Fig6(sc Scale) (*Table, error) {
	t := &Table{
		Title:  "Fig. 6 — scalability: summarization time vs |E| (slope ~1 = linear)",
		Header: []string{"Dataset", "|T|", "Frac", "|V|", "|E|", "Time"},
	}
	fractions := []float64{0.1, 0.2, 0.4, 0.7, 1.0}
	type sweep struct {
		code    string
		targets string
	}
	sweeps := []sweep{{"SK", "100"}, {"SK", "|V|/2"}, {"ST", "100"}}
	slopes := &Table{
		Title:  "Fig. 6 — fitted log-log slopes",
		Header: []string{"Dataset", "|T|", "Slope"},
	}
	for _, sw := range sweeps {
		d, err := datasets.ByShort(sw.code)
		if err != nil {
			return nil, err
		}
		full := d.Load(sc.Graph)
		var xs, ys []float64
		for _, f := range fractions {
			g := graph.SampleInducedSubgraph(full, f, sc.Seed)
			g, _ = graph.LargestComponent(g)
			if g.NumEdges() < 10 {
				continue
			}
			tc := 100
			if sw.targets == "|V|/2" {
				tc = g.NumNodes() / 2
			}
			targets := graph.SampleNodes(g, tc, sc.Seed+3)
			start := time.Now()
			if _, err := core.Summarize(g, core.Config{
				Targets: targets, BudgetRatio: 0.5, Seed: sc.Seed,
			}); err != nil {
				return nil, err
			}
			el := time.Since(start)
			t.Append(sw.code, sw.targets, f, g.NumNodes(), g.NumEdges(), el)
			xs = append(xs, math.Log(float64(g.NumEdges())))
			ys = append(ys, math.Log(el.Seconds()+1e-9))
		}
		slopes.Append(sw.code, sw.targets, regressionSlope(xs, ys))
	}
	// Merge the slope table under the main one.
	t.Rows = append(t.Rows, []string{"", "", "", "", "", ""})
	t.Rows = append(t.Rows, []string{"-- slopes --", "", "", "", "", ""})
	for _, r := range slopes.Rows {
		t.Rows = append(t.Rows, []string{r[0], r[1], "slope", r[2], "", ""})
	}
	return t, nil
}

// regressionSlope fits y = a + b·x by least squares and returns b.
func regressionSlope(xs, ys []float64) float64 {
	n := float64(len(xs))
	if n < 2 {
		return 0
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}
