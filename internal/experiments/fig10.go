package experiments

import (
	"math/rand"

	"pegasus/internal/core"
	"pegasus/internal/gen"
	"pegasus/internal/graph"
)

// Fig10 reproduces Fig. 10: the relation between the best-performing α and
// the effective diameter of the input. Five Watts–Strogatz graphs with
// |V| = 1000, |E| = 10000 and rewiring probabilities {0, 1e-4, 1e-3, 1e-2,
// 1e-1} span effective diameters from ~45 down to ~4 (§V-E). The target set
// is 100 BFS-adjacent nodes from a random node (distant nodes cannot be
// personalized effectively on large-diameter graphs), the compression ratio
// 0.3, and for each query kind the α maximizing accuracy is reported. The
// paper finds the best α decreasing as the effective diameter grows.
func Fig10(sc Scale) (*Table, error) {
	t := &Table{
		Title:  "Fig. 10 — best alpha vs effective diameter (Watts-Strogatz sweep, ratio 0.3)",
		Header: []string{"RewireP", "EffDiam", "Query", "BestAlpha(SMAPE)", "BestAlpha(SC)"},
	}
	nodes := 1000
	if sc.Graph < 1 {
		nodes = 500
	}
	k := 20 // ring degree: |E| = n·k/2
	alphas := []float64{1.05, 1.25, 1.5, 1.75, 2}
	kinds := []QueryKind{QRWR, QHOP, QPHP}
	rewire := []float64{0, 0.0001, 0.001, 0.01, 0.1}

	for _, p := range rewire {
		g := gen.WattsStrogatz(nodes, k, p, sc.Seed+23)
		g, _ = graph.LargestComponent(g)
		diam := graph.EffectiveDiameter(g, 60, sc.Seed)

		// 100 adjacent nodes by BFS from a random node (both the query set
		// and the target set, per §V-E).
		rng := rand.New(rand.NewSource(sc.Seed + int64(p*1e6)))
		src := graph.NodeID(rng.Intn(g.NumNodes()))
		targets := graph.BFSOrder(g, src, 100)
		qs := targets
		if len(qs) > sc.Queries {
			qs = qs[:sc.Queries]
		}
		truth, err := computeTruth(g, qs, kinds, sc)
		if err != nil {
			return nil, err
		}

		type score struct{ smape, spear float64 }
		byAlpha := map[float64]map[QueryKind]score{}
		for _, alpha := range alphas {
			res, err := core.Summarize(g, core.Config{
				Targets: targets, Alpha: alpha, BudgetRatio: 0.3, Seed: sc.Seed,
			})
			if err != nil {
				return nil, err
			}
			byAlpha[alpha] = map[QueryKind]score{}
			for _, kd := range kinds {
				sm, sp, err := accuracy(res.Summary, truth, qs, kd, sc)
				if err != nil {
					return nil, err
				}
				byAlpha[alpha][kd] = score{sm, sp}
			}
		}
		for _, kd := range kinds {
			bestSm, bestSp := alphas[0], alphas[0]
			for _, a := range alphas {
				if byAlpha[a][kd].smape < byAlpha[bestSm][kd].smape {
					bestSm = a
				}
				if byAlpha[a][kd].spear > byAlpha[bestSp][kd].spear {
					bestSp = a
				}
			}
			t.Append(p, diam, string(kd), bestSm, bestSp)
		}
	}
	return t, nil
}
