// Package experiments regenerates every table and figure of the paper's
// evaluation (§V) on the synthetic dataset stand-ins: one entry point per
// experiment, each returning a text table whose rows mirror the series the
// paper plots. EXPERIMENTS.md records paper-vs-measured for each.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"pegasus/internal/baselines/kgrass"
	"pegasus/internal/baselines/s2l"
	"pegasus/internal/baselines/saags"
	"pegasus/internal/core"
	"pegasus/internal/graph"
	"pegasus/internal/metrics"
	"pegasus/internal/queries"
	"pegasus/internal/ssumm"
	"pegasus/internal/summary"
)

// Scale bounds the work an experiment performs. The paper's full settings
// are infeasible inside unit tests; Quick keeps every experiment in seconds,
// Default in tens of seconds, Full in minutes.
type Scale struct {
	// Name labels the profile.
	Name string
	// Graph multiplies the stand-in node counts.
	Graph float64
	// Queries is the number of query nodes sampled per dataset (paper: 100,
	// or 500 for Fig. 12).
	Queries int
	// TestNodes is the number of test nodes for Fig. 5 (paper: 3).
	TestNodes int
	// Ratios is the compression-ratio sweep (paper: 0.1..0.9).
	Ratios []float64
	// Datasets restricts to these Short codes (nil = all six real graphs).
	Datasets []string
	// BaselineDatasets restricts the slow baselines (k-GraSS, S2L, SAAGs) to
	// these Short codes, mirroring the paper's o.o.t./o.o.m. entries on the
	// larger graphs.
	BaselineDatasets []string
	// RWR and PHP solver settings.
	RWR queries.RWRConfig
	PHP queries.PHPConfig
	// Seed drives all sampling.
	Seed int64
}

// Quick is the profile used by tests and the default `go test -bench` run.
var Quick = Scale{
	Name: "quick", Graph: 0.5, Queries: 8, TestNodes: 2,
	Ratios:           []float64{0.3, 0.5},
	Datasets:         []string{"LA", "CA"},
	BaselineDatasets: []string{"LA", "CA"},
	RWR:              queries.RWRConfig{Eps: 1e-6, MaxIter: 300},
	PHP:              queries.PHPConfig{Eps: 1e-6, MaxIter: 300},
	Seed:             1,
}

// Default is the profile used by cmd/pegasus-experiments without flags.
var Default = Scale{
	Name: "default", Graph: 1, Queries: 25, TestNodes: 3,
	Ratios:           []float64{0.1, 0.3, 0.5, 0.7, 0.9},
	Datasets:         nil,
	BaselineDatasets: []string{"LA", "CA", "DB"},
	RWR:              queries.RWRConfig{Eps: 1e-7, MaxIter: 500},
	PHP:              queries.PHPConfig{Eps: 1e-7, MaxIter: 500},
	Seed:             1,
}

// Full approaches the paper's settings (still on reduced-scale graphs).
var Full = Scale{
	Name: "full", Graph: 2, Queries: 100, TestNodes: 3,
	Ratios:           []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9},
	Datasets:         nil,
	BaselineDatasets: []string{"LA", "CA", "DB"},
	RWR:              queries.RWRConfig{Eps: 1e-8, MaxIter: 800},
	PHP:              queries.PHPConfig{Eps: 1e-8, MaxIter: 800},
	Seed:             1,
}

// Profiles maps profile names to scales.
var Profiles = map[string]Scale{"quick": Quick, "default": Default, "full": Full}

func (s Scale) wantsDataset(short string) bool {
	if len(s.Datasets) == 0 {
		return true
	}
	for _, d := range s.Datasets {
		if d == short {
			return true
		}
	}
	return false
}

func (s Scale) wantsBaseline(short string) bool {
	for _, d := range s.BaselineDatasets {
		if d == short {
			return true
		}
	}
	return false
}

// Table is a printable experiment result.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// Append adds a row, formatting each cell with %v.
func (t *Table) Append(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case time.Duration:
			row[i] = v.Round(time.Microsecond).String()
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

// Method names a summarization method in the comparison experiments.
type Method string

// The five summarizers compared in Figs. 7–8.
const (
	MPegasus Method = "PeGaSus"
	MSSumM   Method = "SSumM"
	MKGrass  Method = "k-GraSS"
	MSAAGs   Method = "SAAGs"
	MS2L     Method = "S2L"
)

// AllMethods lists the Fig. 7 lineup in paper order.
var AllMethods = []Method{MPegasus, MSSumM, MSAAGs, MS2L, MKGrass}

// summarizeResult carries a method's output plus bookkeeping.
type summarizeResult struct {
	s       *summary.Summary
	elapsed time.Duration
	// achievedRatio is AutoSizeBits/Size(G); for the supernode-budgeted
	// baselines it can deviate from the requested bit ratio.
	achievedRatio float64
}

// summarizeBy dispatches to a method. For PeGaSus, targets personalizes the
// summary; the baselines ignore targets (they are non-personalized). The
// supernode-count baselines are budgeted in supernodes (§V-A), so the count
// is bisected until the achieved bit ratio matches the requested one — the
// paper plots accuracy against the achieved compression ratio in bits.
func summarizeBy(m Method, g *graph.Graph, targets []graph.NodeID, ratio float64, seed int64) (summarizeResult, error) {
	switch m {
	case MPegasus:
		start := time.Now()
		res, err := core.Summarize(g, core.Config{Targets: targets, BudgetRatio: ratio, Seed: seed})
		if err != nil {
			return summarizeResult{}, err
		}
		return summarizeResult{res.Summary, time.Since(start), res.Summary.CompressionRatio(g)}, nil
	case MSSumM:
		start := time.Now()
		res, err := ssumm.Summarize(g, ssumm.Config{BudgetRatio: ratio, Seed: seed})
		if err != nil {
			return summarizeResult{}, err
		}
		return summarizeResult{res.Summary, time.Since(start), res.Summary.CompressionRatio(g)}, nil
	case MKGrass:
		return bisectSupernodes(g, ratio, func(k int) (*summary.Summary, error) {
			return kgrass.Summarize(g, kgrass.Config{TargetSupernodes: k, Seed: seed})
		})
	case MSAAGs:
		return bisectSupernodes(g, ratio, func(k int) (*summary.Summary, error) {
			return saags.Summarize(g, saags.Config{TargetSupernodes: k, Seed: seed})
		})
	case MS2L:
		return bisectSupernodes(g, ratio, func(k int) (*summary.Summary, error) {
			return s2l.Summarize(g, s2l.Config{K: k, Seed: seed})
		})
	default:
		return summarizeResult{}, fmt.Errorf("experiments: unknown method %q", m)
	}
}

// bisectSupernodes searches the supernode budget whose weighted summary size
// lands at the requested bit ratio (sizes grow with the supernode count).
// The reported time is that of the final (kept) run, so timing tables
// reflect one summarization, not the search.
func bisectSupernodes(g *graph.Graph, ratio float64, run func(k int) (*summary.Summary, error)) (summarizeResult, error) {
	lo, hi := 2, g.NumNodes()
	var best summarizeResult
	for step := 0; step < 7; step++ {
		k := (lo + hi) / 2
		start := time.Now()
		s, err := run(k)
		if err != nil {
			return summarizeResult{}, err
		}
		got := s.CompressionRatio(g)
		cand := summarizeResult{s, time.Since(start), got}
		if best.s == nil || closerTo(ratio, got, best.achievedRatio) {
			best = cand
		}
		switch {
		case got > ratio*1.05:
			hi = k - 1
		case got < ratio*0.95:
			lo = k + 1
		default:
			return cand, nil
		}
		if lo > hi {
			break
		}
	}
	return best, nil
}

// closerTo reports whether a is closer to target than b.
func closerTo(target, a, b float64) bool {
	da, db := a-target, b-target
	if da < 0 {
		da = -da
	}
	if db < 0 {
		db = -db
	}
	return da < db
}

// QueryKind names a node-similarity query type.
type QueryKind string

// The three query types of §V-A.
const (
	QRWR QueryKind = "RWR"
	QHOP QueryKind = "HOP"
	QPHP QueryKind = "PHP"
)

// groundTruth computes the exact answers for a query set on g.
type groundTruth struct {
	rwr map[graph.NodeID][]float64
	hop map[graph.NodeID][]float64
	php map[graph.NodeID][]float64
}

func computeTruth(g *graph.Graph, qs []graph.NodeID, kinds []QueryKind, sc Scale) (*groundTruth, error) {
	t := &groundTruth{
		rwr: map[graph.NodeID][]float64{},
		hop: map[graph.NodeID][]float64{},
		php: map[graph.NodeID][]float64{},
	}
	for _, k := range kinds {
		for _, q := range qs {
			switch k {
			case QRWR:
				v, err := queries.GraphRWR(g, q, sc.RWR)
				if err != nil {
					return nil, err
				}
				t.rwr[q] = v
			case QHOP:
				d, err := queries.GraphHOP(g, q)
				if err != nil {
					return nil, err
				}
				t.hop[q] = queries.ToFloats(queries.FillUnreached(d, int32(g.NumNodes())))
			case QPHP:
				v, err := queries.GraphPHP(g, q, sc.PHP)
				if err != nil {
					return nil, err
				}
				t.php[q] = v
			}
		}
	}
	return t, nil
}

// accuracy answers the query set on the summary and averages SMAPE and
// Spearman against the ground truth.
func accuracy(s *summary.Summary, truth *groundTruth, qs []graph.NodeID, kind QueryKind, sc Scale) (smape, spear float64, err error) {
	var sm, sp float64
	for _, q := range qs {
		var approx, exact []float64
		switch kind {
		case QRWR:
			approx, err = queries.SummaryRWR(s, q, sc.RWR)
			exact = truth.rwr[q]
		case QHOP:
			var d []int32
			d, err = queries.SummaryHOP(s, q)
			if err == nil {
				approx = queries.ToFloats(queries.FillUnreached(d, int32(s.NumNodes())))
			}
			exact = truth.hop[q]
		case QPHP:
			approx, err = queries.SummaryPHP(s, q, sc.PHP)
			exact = truth.php[q]
		}
		if err != nil {
			return 0, 0, err
		}
		a, err2 := metrics.SMAPE(exact, approx)
		if err2 != nil {
			return 0, 0, err2
		}
		b, err2 := metrics.Spearman(exact, approx)
		if err2 != nil {
			return 0, 0, err2
		}
		sm += a
		sp += b
	}
	n := float64(len(qs))
	return sm / n, sp / n, nil
}
