package experiments

import (
	"fmt"
	"sort"
)

// Runner regenerates one table or figure.
type Runner func(Scale) (*Table, error)

// registry maps experiment IDs (as used by cmd/pegasus-experiments and the
// per-experiment index in DESIGN.md) to runners.
var registry = map[string]Runner{
	"table2":   Table2,
	"fig5":     Fig5,
	"fig6":     Fig6,
	"fig7":     Fig7,
	"fig7php":  Fig7PHP,
	"fig8":     Fig8,
	"fig9":     Fig9,
	"fig10":    Fig10,
	"fig11":    Fig11,
	"fig12":    Fig12,
	"fig12php": Fig12PHP,
	"ablation": AblationCost,
	// Ablations beyond the paper's appendix, for the design choices called
	// out in DESIGN.md.
	"ablation-threshold": AblationThreshold,
	"ablation-grouping":  AblationGrouping,
}

// Names lists the registered experiment IDs in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Run executes the experiment with the given ID.
func Run(id string, sc Scale) (*Table, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, Names())
	}
	return r(sc)
}
