package experiments

import (
	"pegasus/internal/core"
	"pegasus/internal/datasets"
	"pegasus/internal/graph"
)

// Fig9 reproduces Fig. 9: the effect of the degree of personalization α on
// query accuracy, at compression ratios 0.3 and 0.5, averaged over datasets.
// α = 1 is the non-personalized case; the paper finds moderate α (1.25–1.5)
// most accurate, with accuracy degrading when α grows and global structure
// is sacrificed.
func Fig9(sc Scale) (*Table, error) {
	alphas := []float64{1, 1.05, 1.25, 1.5, 1.75, 2}
	ratios := []float64{0.3, 0.5}
	kinds := []QueryKind{QRWR, QHOP, QPHP}
	rows, err := alphaSweep(sc, alphas, ratios, kinds)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Fig. 9 — effect of alpha (averaged over datasets)",
		Header: []string{"Ratio", "Alpha", "Query", "SMAPE", "Spearman"},
	}
	for _, r := range rows {
		t.Append(r.ratio, r.alpha, string(r.kind), r.smape, r.spear)
	}
	return t, nil
}

type sweepRow struct {
	ratio, alpha float64
	kind         QueryKind
	smape, spear float64
}

// alphaSweep measures mean accuracy across datasets for every (ratio, alpha,
// query-kind) combination. Ground truth is computed once per dataset.
func alphaSweep(sc Scale, alphas, ratios []float64, kinds []QueryKind) ([]sweepRow, error) {
	type key struct {
		ratio, alpha float64
		kind         QueryKind
	}
	sums := map[key][2]float64{}
	nd := 0
	for _, d := range datasets.Real() {
		if !sc.wantsDataset(d.Short) {
			continue
		}
		g := d.Load(sc.Graph)
		qs := graph.SampleNodes(g, sc.Queries, sc.Seed+17)
		truth, err := computeTruth(g, qs, kinds, sc)
		if err != nil {
			return nil, err
		}
		for _, ratio := range ratios {
			for _, alpha := range alphas {
				res, err := core.Summarize(g, core.Config{
					Targets: qs, Alpha: alpha, BudgetRatio: ratio, Seed: sc.Seed,
				})
				if err != nil {
					return nil, err
				}
				for _, k := range kinds {
					sm, sp, err := accuracy(res.Summary, truth, qs, k, sc)
					if err != nil {
						return nil, err
					}
					cur := sums[key{ratio, alpha, k}]
					sums[key{ratio, alpha, k}] = [2]float64{cur[0] + sm, cur[1] + sp}
				}
			}
		}
		nd++
	}
	var rows []sweepRow
	for _, ratio := range ratios {
		for _, alpha := range alphas {
			for _, k := range kinds {
				s := sums[key{ratio, alpha, k}]
				if nd > 0 {
					rows = append(rows, sweepRow{ratio, alpha, k, s[0] / float64(nd), s[1] / float64(nd)})
				}
			}
		}
	}
	return rows, nil
}
