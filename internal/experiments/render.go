package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WriteCSV renders the table as RFC-4180-ish CSV (fields with commas or
// quotes are quoted).
func (t *Table) WriteCSV(w io.Writer) error {
	write := func(cells []string) error {
		out := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			out[i] = c
		}
		_, err := fmt.Fprintln(w, strings.Join(out, ","))
		return err
	}
	if err := write(t.Header); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := write(r); err != nil {
			return err
		}
	}
	return nil
}

// Series is one named line of (x, y) points for chart rendering.
type Series struct {
	Name string
	X, Y []float64
}

// SeriesFrom extracts line series from the table: rows are grouped by the
// values of the groupBy columns (joined with "/"), with xCol and yCol parsed
// as floats. Rows whose cells do not parse (e.g. "oot") are skipped.
func (t *Table) SeriesFrom(groupBy []int, xCol, yCol int) []Series {
	bykey := map[string]*Series{}
	var order []string
	for _, r := range t.Rows {
		if xCol >= len(r) || yCol >= len(r) {
			continue
		}
		x, errX := strconv.ParseFloat(r[xCol], 64)
		y, errY := strconv.ParseFloat(r[yCol], 64)
		if errX != nil || errY != nil {
			continue
		}
		parts := make([]string, 0, len(groupBy))
		for _, c := range groupBy {
			if c < len(r) {
				parts = append(parts, r[c])
			}
		}
		key := strings.Join(parts, "/")
		s, ok := bykey[key]
		if !ok {
			s = &Series{Name: key}
			bykey[key] = s
			order = append(order, key)
		}
		s.X = append(s.X, x)
		s.Y = append(s.Y, y)
	}
	out := make([]Series, 0, len(order))
	for _, k := range order {
		out = append(out, *bykey[k])
	}
	return out
}

// RenderChart draws series as an ASCII scatter/line chart of the given
// width×height (characters). Each series gets a distinct marker; a legend
// follows. Used by EXPERIMENTS.md to show curve shapes without plotting
// dependencies.
func RenderChart(series []Series, width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 6 {
		height = 6
	}
	markers := []byte{'*', 'o', '+', 'x', '#', '@', '%', '&', '$', '~'}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if math.IsInf(minX, 1) {
		return "(no data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	plot := func(x, y float64, m byte) {
		cx := int((x - minX) / (maxX - minX) * float64(width-1))
		cy := int((y - minY) / (maxY - minY) * float64(height-1))
		row := height - 1 - cy
		grid[row][cx] = m
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		// Sort points by x for stable interpolation.
		idx := make([]int, len(s.X))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return s.X[idx[a]] < s.X[idx[b]] })
		for _, i := range idx {
			plot(s.X[i], s.Y[i], m)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%8.3g ┐\n", maxY)
	for _, row := range grid {
		fmt.Fprintf(&b, "         │%s\n", string(row))
	}
	fmt.Fprintf(&b, "%8.3g └%s\n", minY, strings.Repeat("─", width))
	fmt.Fprintf(&b, "          %-8.3g%*s\n", minX, width-8, fmt.Sprintf("%.3g", maxX))
	for si, s := range series {
		fmt.Fprintf(&b, "  %c %s\n", markers[si%len(markers)], s.Name)
	}
	return b.String()
}
