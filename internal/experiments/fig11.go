package experiments

import (
	"pegasus/internal/core"
	"pegasus/internal/datasets"
	"pegasus/internal/graph"
)

// Fig11 reproduces Fig. 11: the effect of the adaptive-thresholding
// parameter β on query accuracy at ratios 0.3 and 0.5, averaged over
// datasets. β ≈ 0 selects the largest rejected reduction (slowest threshold
// decay); the paper finds moderate β (≈0.1) best, with little sensitivity
// unless β is extreme.
func Fig11(sc Scale) (*Table, error) {
	t := &Table{
		Title:  "Fig. 11 — effect of beta (averaged over datasets)",
		Header: []string{"Ratio", "Beta", "Query", "SMAPE", "Spearman"},
	}
	betas := []float64{1e-9, 0.1, 0.2, 0.3, 0.4, 0.5, 0.7, 0.9}
	kinds := []QueryKind{QRWR, QHOP, QPHP}
	ratios := []float64{0.3, 0.5}

	type key struct {
		ratio, beta float64
		kind        QueryKind
	}
	sums := map[key][2]float64{}
	nd := 0
	for _, d := range datasets.Real() {
		if !sc.wantsDataset(d.Short) {
			continue
		}
		g := d.Load(sc.Graph)
		qs := graph.SampleNodes(g, sc.Queries, sc.Seed+19)
		truth, err := computeTruth(g, qs, kinds, sc)
		if err != nil {
			return nil, err
		}
		for _, ratio := range ratios {
			for _, beta := range betas {
				res, err := core.Summarize(g, core.Config{
					Targets: qs, Beta: beta, BudgetRatio: ratio, Seed: sc.Seed,
				})
				if err != nil {
					return nil, err
				}
				for _, k := range kinds {
					sm, sp, err := accuracy(res.Summary, truth, qs, k, sc)
					if err != nil {
						return nil, err
					}
					cur := sums[key{ratio, beta, k}]
					sums[key{ratio, beta, k}] = [2]float64{cur[0] + sm, cur[1] + sp}
				}
			}
		}
		nd++
	}
	for _, ratio := range ratios {
		for _, beta := range betas {
			for _, k := range kinds {
				s := sums[key{ratio, beta, k}]
				if nd > 0 {
					t.Append(ratio, beta, string(k), s[0]/float64(nd), s[1]/float64(nd))
				}
			}
		}
	}
	return t, nil
}
