package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// tiny is an even smaller profile than Quick so the whole experiment suite
// smoke-tests in seconds.
var tiny = Scale{
	Name: "tiny", Graph: 0.3, Queries: 4, TestNodes: 2,
	Ratios:           []float64{0.4},
	Datasets:         []string{"LA"},
	BaselineDatasets: []string{"LA"},
	RWR:              Quick.RWR,
	PHP:              Quick.PHP,
	Seed:             1,
}

func mustRun(t *testing.T, id string, sc Scale) *Table {
	t.Helper()
	tab, err := Run(id, sc)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if len(tab.Rows) == 0 {
		t.Fatalf("%s: empty table", id)
	}
	if len(tab.Header) == 0 {
		t.Fatalf("%s: missing header", id)
	}
	out := tab.String()
	if !strings.Contains(out, tab.Title) {
		t.Fatalf("%s: rendering lost the title", id)
	}
	return tab
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"table2", "fig5", "fig6", "fig7", "fig7php", "fig8",
		"fig9", "fig10", "fig11", "fig12", "fig12php", "ablation",
		"ablation-threshold", "ablation-grouping"}
	names := Names()
	if len(names) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(names), len(want))
	}
	for _, id := range want {
		found := false
		for _, n := range names {
			if n == id {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing experiment %q", id)
		}
	}
	if _, err := Run("nonsense", tiny); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestTable2(t *testing.T) {
	tab := mustRun(t, "table2", tiny)
	// ST row always present plus the selected dataset.
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (LA + ST)", len(tab.Rows))
	}
}

func TestFig5ShowsPersonalizationEffect(t *testing.T) {
	// The trend needs a graph with room to personalize (hop-distance
	// spread); the heavy-tailed CA stand-in at half scale shows it robustly,
	// while the tiny SBM profile is variance-dominated.
	sc := tiny
	sc.Graph = 0.5
	sc.TestNodes = 3
	sc.Datasets = []string{"CA"}
	sc.BaselineDatasets = []string{"CA"}
	tab := mustRun(t, "fig5", sc)
	// For each alpha the |T|=1 relative error must be below the |T|=|V| one
	// (the figure's headline trend).
	rel := map[string]map[string]float64{}
	for _, r := range tab.Rows {
		alpha := r[1]
		if rel[alpha] == nil {
			rel[alpha] = map[string]float64{}
		}
		v, err := strconv.ParseFloat(r[3], 64)
		if err != nil {
			t.Fatalf("bad RelErr cell %q", r[3])
		}
		rel[alpha][r[2]] = v
	}
	// Average the small-|T| settings across alphas: tie-breaking noise on a
	// reduced-scale graph can push an individual (alpha, |T|) cell above 1,
	// but the aggregate trend must hold.
	var smallSum, fullSum, n float64
	for alpha, by := range rel {
		small, okS := by["1"]
		pct, okP := by["1%|V|"]
		full, okF := by["|V|"]
		if !okS || !okP || !okF {
			t.Fatalf("alpha %s: missing |T| rows", alpha)
		}
		smallSum += (small + pct) / 2
		fullSum += full
		n++
	}
	if smallSum/n > fullSum/n*1.02 {
		t.Errorf("mean small-|T| relative error %.3f not below |T|=|V| mean %.3f",
			smallSum/n, fullSum/n)
	}
}

func TestFig6ReportsSlope(t *testing.T) {
	tab := mustRun(t, "fig6", tiny)
	foundSlope := false
	for _, r := range tab.Rows {
		if len(r) > 2 && r[2] == "slope" {
			foundSlope = true
			v, err := strconv.ParseFloat(r[3], 64)
			if err != nil {
				t.Fatalf("bad slope cell %q", r[3])
			}
			if v < 0.3 || v > 2.5 {
				t.Errorf("slope %v implausibly far from 1", v)
			}
		}
	}
	if !foundSlope {
		t.Fatal("no slope rows")
	}
}

func TestFig7AccuracyCells(t *testing.T) {
	tab := mustRun(t, "fig7", tiny)
	sawPegasus, sawBaseline := false, false
	for _, r := range tab.Rows {
		if r[2] == string(MPegasus) {
			sawPegasus = true
			sm, err := strconv.ParseFloat(r[5], 64)
			if err != nil {
				t.Fatalf("bad SMAPE cell %q", r[5])
			}
			if sm < 0 || sm > 1 {
				t.Errorf("SMAPE %v outside [0,1]", sm)
			}
		}
		if r[2] == string(MKGrass) && r[3] != "oot" {
			sawBaseline = true
		}
	}
	if !sawPegasus || !sawBaseline {
		t.Fatal("missing method rows")
	}
}

func TestFig8HasUncompressedReference(t *testing.T) {
	tab := mustRun(t, "fig8", tiny)
	found := false
	for _, r := range tab.Rows {
		if r[1] == "Uncompressed" {
			found = true
		}
	}
	if !found {
		t.Fatal("missing uncompressed reference row")
	}
}

func TestFig9CoversAlphas(t *testing.T) {
	tab := mustRun(t, "fig9", tiny)
	alphas := map[string]bool{}
	for _, r := range tab.Rows {
		alphas[r[1]] = true
	}
	if len(alphas) != 6 {
		t.Fatalf("alphas covered = %d, want 6", len(alphas))
	}
}

func TestFig11CoversBetas(t *testing.T) {
	tab := mustRun(t, "fig11", tiny)
	betas := map[string]bool{}
	for _, r := range tab.Rows {
		betas[r[1]] = true
	}
	if len(betas) != 8 {
		t.Fatalf("betas covered = %d, want 8", len(betas))
	}
}

func TestFig12CoversSystems(t *testing.T) {
	tab := mustRun(t, "fig12", tiny)
	systems := map[string]bool{}
	for _, r := range tab.Rows {
		systems[r[2]] = true
	}
	for _, want := range []string{"PeGaSus", "SSumM", "louvain", "blp", "shpi", "shpii", "shpkl"} {
		if !systems[want] {
			t.Errorf("missing system %q (got %v)", want, systems)
		}
	}
}

func TestAblationRowsPaired(t *testing.T) {
	for _, id := range []string{"ablation", "ablation-threshold", "ablation-grouping"} {
		tab := mustRun(t, id, tiny)
		if len(tab.Rows)%2 != 0 {
			t.Fatalf("%s: rows must come in variant pairs", id)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "T", Note: "n", Header: []string{"a", "bb"}}
	tab.Append(1.23456789, "x")
	out := tab.String()
	if !strings.Contains(out, "== T ==") || !strings.Contains(out, "1.235") {
		t.Fatalf("unexpected rendering:\n%s", out)
	}
}
