package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		if rng.Intn(4) == 0 {
			v[i] = 0 // exercise the 0/0 branch
		} else {
			v[i] = rng.NormFloat64()
		}
	}
	return v
}

func TestPropertySMAPEBoundsAndSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		x := randVec(rng, n)
		y := randVec(rng, n)
		a, err := SMAPE(x, y)
		if err != nil {
			return false
		}
		b, err := SMAPE(y, x)
		if err != nil {
			return false
		}
		// Bounded in [0,1], symmetric, zero iff equal vectors.
		if a < 0 || a > 1 || math.Abs(a-b) > 1e-12 {
			return false
		}
		self, _ := SMAPE(x, x)
		return self == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySpearmanBoundsAndAntisymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(80)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		s, err := Spearman(x, y)
		if err != nil {
			return false
		}
		if s < -1-1e-12 || s > 1+1e-12 {
			return false
		}
		// Negating one vector reverses its ranks: correlation flips sign
		// exactly (no ties by construction, almost surely).
		neg := make([]float64, n)
		for i := range y {
			neg[i] = -y[i]
		}
		s2, _ := Spearman(x, neg)
		if math.Abs(s+s2) > 1e-9 {
			return false
		}
		// Self correlation is exactly 1.
		self, _ := Spearman(x, x)
		return math.Abs(self-1) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyRanksAreAPermutationAverage(t *testing.T) {
	// Ranks sum to n(n+1)/2 regardless of ties.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		x := make([]float64, n)
		for i := range x {
			x[i] = float64(rng.Intn(6)) // many ties
		}
		r := Ranks(x)
		sum := 0.0
		for _, v := range r {
			sum += v
		}
		want := float64(n) * float64(n+1) / 2
		return math.Abs(sum-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
