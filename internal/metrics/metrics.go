// Package metrics implements the evaluation measures of §V-A — SMAPE and
// Spearman rank correlation for query-answer accuracy — plus exact
// evaluators for the personalized error objective (Eq. 1) and the plain L1
// reconstruction error.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"pegasus/internal/graph"
	"pegasus/internal/summary"
	"pegasus/internal/weights"
)

// SMAPE returns the symmetric mean absolute percentage error between the
// ground-truth vector x and the approximation xhat (lower is better):
// mean over u of |x_u − x̂_u| / (|x_u| + |x̂_u|), with 0 whenever both are 0.
func SMAPE(x, xhat []float64) (float64, error) {
	if len(x) != len(xhat) {
		return 0, fmt.Errorf("metrics: length mismatch %d vs %d", len(x), len(xhat))
	}
	if len(x) == 0 {
		return 0, nil
	}
	sum := 0.0
	for i := range x {
		num := math.Abs(x[i] - xhat[i])
		den := math.Abs(x[i]) + math.Abs(xhat[i])
		if den != 0 {
			sum += num / den
		}
	}
	return sum / float64(len(x)), nil
}

// Spearman returns the Spearman rank correlation coefficient between x and
// xhat (higher is better): the Pearson correlation of their rank vectors,
// with ties receiving averaged (fractional) ranks. Returns 0 when either
// vector is constant (correlation undefined).
func Spearman(x, xhat []float64) (float64, error) {
	if len(x) != len(xhat) {
		return 0, fmt.Errorf("metrics: length mismatch %d vs %d", len(x), len(xhat))
	}
	if len(x) < 2 {
		return 0, nil
	}
	rx := Ranks(x)
	ry := Ranks(xhat)
	return pearson(rx, ry), nil
}

// Ranks assigns fractional ranks (1-based, ties averaged) to the values.
func Ranks(x []float64) []float64 {
	n := len(x)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return x[idx[i]] < x[idx[j]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && x[idx[j+1]] == x[idx[i]] {
			j++
		}
		// Average rank for the tie group [i..j].
		avg := (float64(i+1) + float64(j+1)) / 2
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

func pearson(x, y []float64) float64 {
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// PersonalizedError evaluates Eq. (1) exactly for a summary of g under the
// personalized weights w, in O(|V| + |E| + |P|) time:
//
//	RE_T(G) = Σ_u Σ_v W_uv · |A(G)_uv − A(Ĝ)_uv|
//
// (the ordered double sum of the paper; every erroneous unordered pair
// contributes its weight twice). The decomposition: pairs inside superedge
// blocks err when they are non-edges; pairs outside err when they are edges.
func PersonalizedError(g *graph.Graph, s *summary.Summary, w *weights.Weights) float64 {
	invSqrtZ := 1 / math.Sqrt(w.Z)
	n := g.NumNodes()
	pi := make([]float64, n)
	for u := 0; u < n; u++ {
		pi[u] = w.Pi[u] * invSqrtZ
	}
	ns := s.NumSupernodes()
	sumPi := make([]float64, ns)
	sumPiSq := make([]float64, ns)
	for u := 0; u < n; u++ {
		a := s.Supernode(graph.NodeID(u))
		sumPi[a] += pi[u]
		sumPiSq[a] += pi[u] * pi[u]
	}
	re := 0.0
	// Covered blocks contribute their total weighted pair mass...
	for a := 0; a < ns; a++ {
		s.ForEachSuperNeighbor(uint32(a), func(b uint32, _ float64) {
			if b < uint32(a) {
				return // count each superedge once
			}
			if b == uint32(a) {
				re += sumPi[a]*sumPi[a] - sumPiSq[a]
			} else {
				re += 2 * sumPi[a] * sumPi[b]
			}
		})
	}
	// ...minus actual edges inside blocks (correct), plus actual edges
	// outside blocks (missed).
	g.Edges(func(u, v graph.NodeID) bool {
		m := 2 * pi[u] * pi[v]
		a, b := s.Supernode(u), s.Supernode(v)
		if _, ok := s.HasSuperedge(a, b); ok {
			re -= m
		} else {
			re += m
		}
		return true
	})
	if re < 0 {
		re = 0 // guard float cancellation
	}
	return re
}

// ReconstructionError evaluates the plain (non-personalized) L1 error
// between A(G) and A(Ĝ) in the same ordered convention: twice the number of
// erroneous unordered pairs.
func ReconstructionError(g *graph.Graph, s *summary.Summary) float64 {
	return PersonalizedError(g, s, weights.Uniform(g.NumNodes()))
}
