package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pegasus/internal/gen"
	"pegasus/internal/graph"
	"pegasus/internal/summary"
	"pegasus/internal/weights"
)

func TestSMAPE(t *testing.T) {
	got, err := SMAPE([]float64{1, 2, 0}, []float64{1, 2, 0})
	if err != nil || got != 0 {
		t.Fatalf("identical vectors: SMAPE = %v, err = %v", got, err)
	}
	// Disjoint support: every term is 1.
	got, err = SMAPE([]float64{1, 0}, []float64{0, 1})
	if err != nil || got != 1 {
		t.Fatalf("disjoint vectors: SMAPE = %v, want 1", got)
	}
	// Mixed case: |1-3|/(1+3) = 0.5, second term 0 -> mean 0.25.
	got, _ = SMAPE([]float64{1, 5}, []float64{3, 5})
	if math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("SMAPE = %v, want 0.25", got)
	}
	if _, err := SMAPE([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if got, _ := SMAPE(nil, nil); got != 0 {
		t.Error("empty SMAPE should be 0")
	}
}

func TestSpearmanPerfect(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{10, 20, 30, 40, 50}
	got, err := Spearman(x, y)
	if err != nil || math.Abs(got-1) > 1e-12 {
		t.Fatalf("Spearman = %v, want 1", got)
	}
	rev := []float64{50, 40, 30, 20, 10}
	got, _ = Spearman(x, rev)
	if math.Abs(got+1) > 1e-12 {
		t.Fatalf("Spearman = %v, want -1", got)
	}
}

func TestSpearmanTiesAndConstants(t *testing.T) {
	// Constant vector: undefined correlation reported as 0.
	got, _ := Spearman([]float64{1, 1, 1}, []float64{1, 2, 3})
	if got != 0 {
		t.Fatalf("Spearman with constant x = %v, want 0", got)
	}
	// Ties: ranks averaged; correlation still well defined.
	got, _ = Spearman([]float64{1, 1, 2, 3}, []float64{1, 1, 2, 3})
	if math.Abs(got-1) > 1e-12 {
		t.Fatalf("Spearman with matched ties = %v, want 1", got)
	}
}

func TestRanks(t *testing.T) {
	r := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", r, want)
		}
	}
}

func TestSpearmanInvariantToMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(50)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		s1, _ := Spearman(x, y)
		// Apply strictly increasing transforms; Spearman must not change.
		x2 := make([]float64, n)
		y2 := make([]float64, n)
		for i := range x {
			x2[i] = math.Exp(x[i])
			y2[i] = y[i]*3 + 7
		}
		s2, _ := Spearman(x2, y2)
		return math.Abs(s1-s2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// bruteForceError computes Eq. (1) by materializing Ĝ — the reference for
// the O(|E|+|P|) evaluator.
func bruteForceError(g *graph.Graph, s *summary.Summary, w *weights.Weights) float64 {
	rec := s.Reconstruct()
	n := g.NumNodes()
	re := 0.0
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			a := 0.0
			if g.HasEdge(graph.NodeID(u), graph.NodeID(v)) {
				a = 1
			}
			ahat := 0.0
			if rec.HasEdge(graph.NodeID(u), graph.NodeID(v)) {
				ahat = 1
			}
			re += w.Pair(graph.NodeID(u), graph.NodeID(v)) * math.Abs(a-ahat)
		}
	}
	return re
}

func TestPersonalizedErrorMatchesBruteForce(t *testing.T) {
	g := gen.BarabasiAlbert(40, 2, 3)
	// Build a deliberately lossy summary: group nodes mod 8.
	superOf := make([]uint32, g.NumNodes())
	for u := range superOf {
		superOf[u] = uint32(u % 8)
	}
	sb := summary.NewBuilder(superOf)
	sb.AddSuperedge(0, 1, 1)
	sb.AddSuperedge(2, 3, 1)
	sb.AddSuperedge(4, 4, 1)
	sb.AddSuperedge(5, 7, 1)
	s := sb.Build()

	for _, tc := range []struct {
		targets []graph.NodeID
		alpha   float64
	}{
		{nil, 1},
		{[]graph.NodeID{0}, 1.5},
		{[]graph.NodeID{3, 17}, 2},
	} {
		w, err := weights.New(g, tc.targets, tc.alpha)
		if err != nil {
			t.Fatal(err)
		}
		fast := PersonalizedError(g, s, w)
		brute := bruteForceError(g, s, w)
		if math.Abs(fast-brute) > 1e-6*(1+brute) {
			t.Fatalf("targets %v alpha %v: fast %v != brute %v", tc.targets, tc.alpha, fast, brute)
		}
	}
}

func TestPersonalizedErrorZeroOnIdentity(t *testing.T) {
	g := gen.BarabasiAlbert(50, 2, 4)
	s := summary.Identity(g)
	w, _ := weights.New(g, []graph.NodeID{1}, 1.5)
	if got := PersonalizedError(g, s, w); got > 1e-9 {
		t.Fatalf("identity summary error = %v, want 0", got)
	}
	if got := ReconstructionError(g, s); got > 1e-9 {
		t.Fatalf("identity reconstruction error = %v, want 0", got)
	}
}

func TestReconstructionErrorCountsFlips(t *testing.T) {
	// Graph: single edge {0,1} over 3 nodes. Summary: all in one supernode
	// with a self-loop -> reconstruction is the triangle. Errors: pairs
	// {0,2},{1,2} are wrongly present = 2 unordered flips = 4 in the
	// ordered convention.
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	g := b.Build()
	sb := summary.NewBuilder([]uint32{0, 0, 0})
	sb.AddSuperedge(0, 0, 1)
	s := sb.Build()
	if got := ReconstructionError(g, s); math.Abs(got-4) > 1e-9 {
		t.Fatalf("error = %v, want 4 (ordered convention)", got)
	}
}
