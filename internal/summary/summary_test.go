package summary

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"

	"pegasus/internal/graph"
)

// fixture: 5 nodes in 3 supernodes A={0,1}, B={2,3}, C={4};
// superedges {A,B}, {A,A} (self-loop), {B,C}.
func fixture() *Summary {
	superOf := []uint32{10, 10, 20, 20, 30} // arbitrary labels
	b := NewBuilder(superOf)
	b.AddSuperedge(10, 20, 1)
	b.AddSuperedge(10, 10, 1)
	b.AddSuperedge(20, 30, 1)
	return b.Build()
}

func TestCounts(t *testing.T) {
	s := fixture()
	if s.NumNodes() != 5 {
		t.Fatalf("|V| = %d, want 5", s.NumNodes())
	}
	if s.NumSupernodes() != 3 {
		t.Fatalf("|S| = %d, want 3", s.NumSupernodes())
	}
	if s.NumSuperedges() != 3 {
		t.Fatalf("|P| = %d, want 3", s.NumSuperedges())
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if s.Weighted() {
		t.Fatal("unit weights must not mark summary weighted")
	}
}

func TestMembershipAndMembers(t *testing.T) {
	s := fixture()
	if s.Supernode(0) != s.Supernode(1) {
		t.Error("nodes 0,1 should share a supernode")
	}
	if s.Supernode(0) == s.Supernode(2) {
		t.Error("nodes 0,2 should not share a supernode")
	}
	a := s.Supernode(0)
	ms := s.Members(a)
	if len(ms) != 2 || ms[0] != 0 || ms[1] != 1 {
		t.Fatalf("Members(A) = %v, want [0 1]", ms)
	}
}

func TestHasSuperedge(t *testing.T) {
	s := fixture()
	a, b, c := s.Supernode(0), s.Supernode(2), s.Supernode(4)
	if _, ok := s.HasSuperedge(a, b); !ok {
		t.Error("missing {A,B}")
	}
	if _, ok := s.HasSuperedge(b, a); !ok {
		t.Error("missing symmetric {B,A}")
	}
	if _, ok := s.HasSuperedge(a, a); !ok {
		t.Error("missing self-loop {A,A}")
	}
	if _, ok := s.HasSuperedge(a, c); ok {
		t.Error("unexpected {A,C}")
	}
}

func TestNeighborsAlg4(t *testing.T) {
	s := fixture()
	// N̂(0): A has self-loop → member 1; A-B → members 2,3. Total {1,2,3}.
	got := s.Neighbors(0)
	want := []graph.NodeID{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("Neighbors(0) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Neighbors(0) = %v, want %v", got, want)
		}
	}
	// N̂(4): C only adjacent to B → {2,3}.
	got4 := s.Neighbors(4)
	if len(got4) != 2 || got4[0] != 2 || got4[1] != 3 {
		t.Fatalf("Neighbors(4) = %v, want [2 3]", got4)
	}
	// Degrees match.
	if d := s.ReconstructedDegree(0); d != 3 {
		t.Fatalf("ReconstructedDegree(0) = %d, want 3", d)
	}
	if d := s.ReconstructedDegree(4); d != 2 {
		t.Fatalf("ReconstructedDegree(4) = %d, want 2", d)
	}
}

func TestWeightedNeighbors(t *testing.T) {
	superOf := []uint32{0, 0, 1, 1}
	b := NewBuilder(superOf)
	b.AddSuperedge(0, 1, 0.5)
	b.AddSuperedge(0, 0, 2)
	s := b.Build()
	if !s.Weighted() {
		t.Fatal("summary should be weighted")
	}
	wn := s.WeightedNeighbors(0)
	if len(wn) != 3 { // member 1 via self-loop, members 2,3 via cross edge
		t.Fatalf("WeightedNeighbors(0) = %v, want 3 entries", wn)
	}
	var self, cross float64
	for _, x := range wn {
		if x.Node == 1 {
			self = x.Weight
		} else {
			cross = x.Weight
		}
	}
	if self != 2 || cross != 0.5 {
		t.Fatalf("weights self=%v cross=%v, want 2, 0.5", self, cross)
	}
	wd := s.WeightedReconstructedDegree(0)
	if math.Abs(wd-(2*1+0.5*2)) > 1e-12 {
		t.Fatalf("WeightedReconstructedDegree(0) = %v, want 3", wd)
	}
}

func TestReconstruct(t *testing.T) {
	s := fixture()
	g := s.Reconstruct()
	// Expect edges: {0,1} (self-loop on A), A×B = {0,2},{0,3},{1,2},{1,3},
	// B×C = {2,4},{3,4}. Total 7.
	if g.NumEdges() != 7 {
		t.Fatalf("|Ê| = %d, want 7", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 3) || !g.HasEdge(2, 4) {
		t.Fatal("reconstruction missing expected edges")
	}
	if g.HasEdge(2, 3) {
		t.Fatal("no self-loop on B: members of B must not be adjacent")
	}
	// Alg. 4 neighbors must match the reconstruction exactly.
	for u := 0; u < 5; u++ {
		got := s.Neighbors(graph.NodeID(u))
		want := g.Neighbors(graph.NodeID(u))
		if len(got) != len(want) {
			t.Fatalf("node %d: Neighbors=%v, reconstruction=%v", u, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("node %d: Neighbors=%v, reconstruction=%v", u, got, want)
			}
		}
	}
}

func TestIdentitySummaryIsExact(t *testing.T) {
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 0)
	b.AddEdge(4, 5)
	g := b.Build()
	s := Identity(g)
	if s.NumSupernodes() != g.NumNodes() {
		t.Fatalf("|S| = %d, want |V| = %d", s.NumSupernodes(), g.NumNodes())
	}
	if s.NumSuperedges() != int(g.NumEdges()) {
		t.Fatalf("|P| = %d, want |E| = %d", s.NumSuperedges(), g.NumEdges())
	}
	for u := 0; u < g.NumNodes(); u++ {
		got := s.Neighbors(graph.NodeID(u))
		want := g.Neighbors(graph.NodeID(u))
		if len(got) != len(want) {
			t.Fatalf("identity summary changed neighborhood of %d", u)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("identity summary changed neighborhood of %d", u)
			}
		}
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestSizeBits(t *testing.T) {
	s := fixture()
	// Eq. (3): 2|P|log2|S| + |V|log2|S| = (6+5)·log2(3).
	want := 11 * math.Log2(3)
	if got := s.SizeBits(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("SizeBits = %v, want %v", got, want)
	}
	// Unweighted AutoSizeBits == SizeBits.
	if s.AutoSizeBits() != s.SizeBits() {
		t.Fatal("AutoSizeBits should dispatch to SizeBits for unweighted")
	}
}

func TestWeightedSizeBits(t *testing.T) {
	superOf := []uint32{0, 0, 1, 1}
	b := NewBuilder(superOf)
	b.AddSuperedge(0, 1, 4)
	s := b.Build()
	// |P|(2log2|S| + log2 4) + |V| log2|S| = 1*(2*1+2) + 4*1 = 8.
	if got := s.WeightedSizeBits(); math.Abs(got-8) > 1e-9 {
		t.Fatalf("WeightedSizeBits = %v, want 8", got)
	}
	if s.AutoSizeBits() != s.WeightedSizeBits() {
		t.Fatal("AutoSizeBits should dispatch to WeightedSizeBits")
	}
}

func TestCompressionRatio(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g := b.Build()
	s := Identity(g)
	r := s.CompressionRatio(g)
	if r <= 0 {
		t.Fatalf("ratio = %v, want > 0", r)
	}
}

func TestRoundTrip(t *testing.T) {
	s := fixture()
	var buf bytes.Buffer
	if err := s.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	s2, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if err := s2.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if s2.NumNodes() != s.NumNodes() || s2.NumSupernodes() != s.NumSupernodes() || s2.NumSuperedges() != s.NumSuperedges() {
		t.Fatal("round trip changed summary shape")
	}
	// Behavior-level equality: same approximate neighborhoods.
	for u := 0; u < s.NumNodes(); u++ {
		a, b := s.Neighbors(graph.NodeID(u)), s2.Neighbors(graph.NodeID(u))
		if len(a) != len(b) {
			t.Fatalf("node %d neighborhood changed", u)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("node %d neighborhood changed", u)
			}
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	s := fixture()
	path := filepath.Join(t.TempDir(), "s.bin")
	if err := s.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	s2, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if s2.NumSuperedges() != s.NumSuperedges() {
		t.Fatal("file round trip changed summary")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("XXXX0123456789"))); err == nil {
		t.Error("want error for bad magic")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Error("want error for empty input")
	}
}

func TestBuilderPanics(t *testing.T) {
	b := NewBuilder([]uint32{0, 1})
	assertPanics(t, func() { b.AddSuperedge(0, 1, 0) })  // zero weight
	assertPanics(t, func() { b.AddSuperedge(0, 99, 1) }) // unknown label
	assertPanics(t, func() { b.DenseID(77) })            // unknown label
}

func assertPanics(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	fn()
}
