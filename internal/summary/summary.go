// Package summary defines the summary-graph artifact produced by all
// summarization methods in this library: a partition of the input nodes into
// supernodes plus a set of (optionally weighted) superedges, including
// self-loops (§II-A).
//
// A summary graph supports direct approximate query answering: Alg. 4 of the
// paper retrieves the approximate neighborhood of a node without
// reconstructing the full graph, and packages queries/metrics build RWR, HOP
// and PHP answering plus error measures on top of the accessors exposed
// here.
//
// PeGaSus and SSumM emit unweighted summaries (every superedge weight 1);
// the k-GraSS/S2L/SAAGs baselines emit density-weighted summaries, whose
// size is accounted by WeightedSizeBits (§V-A).
package summary

import (
	"fmt"
	"math"
	"sort"

	"pegasus/internal/graph"
)

// Summary is an immutable summary graph G=(S,P) over a graph with NumNodes
// nodes. Supernode IDs are dense: 0..NumSupernodes-1.
type Summary struct {
	superOf  []uint32         // node -> supernode
	members  [][]graph.NodeID // supernode -> sorted member nodes
	nbr      [][]uint32       // supernode -> sorted superedge neighbors (may include self)
	wts      [][]float64      // parallel to nbr
	numP     int              // |P| (self-loops count once)
	maxW     float64          // max superedge weight (>= 1 when |P|>0)
	weighted bool             // true when any weight differs from 1
}

// Builder assembles a Summary. Supernode labels passed to the builder may be
// arbitrary uint32 values; they are remapped to dense IDs.
type Builder struct {
	n       int
	superOf []uint32 // original labels
	dense   map[uint32]uint32
	edges   map[[2]uint32]float64
}

// NewBuilder starts a summary over len(superOf) nodes, where superOf[u] is
// the (arbitrary) supernode label of node u.
func NewBuilder(superOf []uint32) *Builder {
	b := &Builder{
		n:       len(superOf),
		superOf: superOf,
		dense:   make(map[uint32]uint32),
		edges:   make(map[[2]uint32]float64),
	}
	for _, s := range superOf {
		if _, ok := b.dense[s]; !ok {
			b.dense[s] = uint32(len(b.dense))
		}
	}
	return b
}

// DenseID returns the dense supernode ID for an original label. It panics on
// an unknown label (one that no node maps to).
func (b *Builder) DenseID(label uint32) uint32 {
	id, ok := b.dense[label]
	if !ok {
		panic(fmt.Sprintf("summary: unknown supernode label %d", label))
	}
	return id
}

// AddSuperedge records a superedge between the supernodes labeled la and lb
// (la may equal lb: a self-loop) with the given weight. Re-adding an edge
// overwrites its weight. Weights must be positive.
func (b *Builder) AddSuperedge(la, lb uint32, weight float64) {
	if weight <= 0 {
		panic(fmt.Sprintf("summary: non-positive superedge weight %v", weight))
	}
	a, c := b.DenseID(la), b.DenseID(lb)
	if a > c {
		a, c = c, a
	}
	b.edges[[2]uint32{a, c}] = weight
}

// Build finalizes the summary.
func (b *Builder) Build() *Summary {
	s := &Summary{
		superOf: make([]uint32, b.n),
		members: make([][]graph.NodeID, len(b.dense)),
		nbr:     make([][]uint32, len(b.dense)),
		wts:     make([][]float64, len(b.dense)),
		numP:    len(b.edges),
		maxW:    0,
	}
	for u, label := range b.superOf {
		d := b.dense[label]
		s.superOf[u] = d
		s.members[d] = append(s.members[d], graph.NodeID(u))
	}
	for _, m := range s.members {
		sort.Slice(m, func(i, j int) bool { return m[i] < m[j] })
	}
	for e, w := range b.edges {
		a, c := e[0], e[1]
		s.nbr[a] = append(s.nbr[a], c)
		s.wts[a] = append(s.wts[a], w)
		if a != c {
			s.nbr[c] = append(s.nbr[c], a)
			s.wts[c] = append(s.wts[c], w)
		}
		if w > s.maxW {
			s.maxW = w
		}
		if w != 1 {
			s.weighted = true
		}
	}
	for a := range s.nbr {
		sortParallel(s.nbr[a], s.wts[a])
	}
	return s
}

func sortParallel(nbr []uint32, wts []float64) {
	idx := make([]int, len(nbr))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return nbr[idx[i]] < nbr[idx[j]] })
	n2 := make([]uint32, len(nbr))
	w2 := make([]float64, len(wts))
	for i, j := range idx {
		n2[i], w2[i] = nbr[j], wts[j]
	}
	copy(nbr, n2)
	copy(wts, w2)
}

// Identity returns the summary where every node is its own supernode and
// every edge its own superedge — the initialization of Alg. 1 (line 1).
// Queries answered on it are exact.
func Identity(g *graph.Graph) *Summary {
	superOf := make([]uint32, g.NumNodes())
	for u := range superOf {
		superOf[u] = uint32(u)
	}
	b := NewBuilder(superOf)
	g.Edges(func(u, v graph.NodeID) bool {
		b.AddSuperedge(uint32(u), uint32(v), 1)
		return true
	})
	return b.Build()
}

// NumNodes returns |V| of the underlying graph.
func (s *Summary) NumNodes() int { return len(s.superOf) }

// NumSupernodes returns |S|.
func (s *Summary) NumSupernodes() int { return len(s.members) }

// NumSuperedges returns |P| (self-loops counted once).
func (s *Summary) NumSuperedges() int { return s.numP }

// Weighted reports whether any superedge weight differs from 1.
func (s *Summary) Weighted() bool { return s.weighted }

// MaxWeight returns the maximum superedge weight (0 when |P| = 0).
func (s *Summary) MaxWeight() float64 { return s.maxW }

// Supernode returns the supernode ID containing node u.
func (s *Summary) Supernode(u graph.NodeID) uint32 { return s.superOf[u] }

// Members returns the sorted member nodes of supernode a. The slice aliases
// internal storage and must not be modified.
func (s *Summary) Members(a uint32) []graph.NodeID { return s.members[a] }

// ForEachSuperNeighbor calls fn for every superedge incident to a, including
// the self-loop {a,a} if present.
func (s *Summary) ForEachSuperNeighbor(a uint32, fn func(b uint32, w float64)) {
	for i, b := range s.nbr[a] {
		fn(b, s.wts[a][i])
	}
}

// SuperDegree returns the number of superedges incident to a (self-loop
// counts once).
func (s *Summary) SuperDegree(a uint32) int { return len(s.nbr[a]) }

// HasSuperedge reports whether {a,b} ∈ P and returns its weight.
func (s *Summary) HasSuperedge(a, b uint32) (float64, bool) {
	ns := s.nbr[a]
	lo, hi := 0, len(ns)
	for lo < hi {
		mid := (lo + hi) / 2
		if ns[mid] < b {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(ns) && ns[lo] == b {
		return s.wts[a][lo], true
	}
	return 0, false
}

// SizeBits returns the size of the summary in bits per Eq. (3):
// 2|P|·log2|S| + |V|·log2|S|. For weighted summaries use WeightedSizeBits.
func (s *Summary) SizeBits() float64 {
	k := float64(s.NumSupernodes())
	if k <= 1 {
		// log2(1)=0; a single supernode costs nothing to address but the
		// convention below keeps sizes monotone in |P|.
		k = 2
	}
	return (2*float64(s.numP) + float64(s.NumNodes())) * math.Log2(k)
}

// WeightedSizeBits returns the size in bits of a weighted summary graph per
// §V-A: |P|·(2·log2|S| + log2(ω_max)) + |V|·log2|S|.
func (s *Summary) WeightedSizeBits() float64 {
	k := float64(s.NumSupernodes())
	if k <= 1 {
		k = 2
	}
	wBits := 0.0
	if s.maxW > 1 {
		wBits = math.Log2(s.maxW)
	}
	return float64(s.numP)*(2*math.Log2(k)+wBits) + float64(s.NumNodes())*math.Log2(k)
}

// AutoSizeBits dispatches to WeightedSizeBits for weighted summaries and
// SizeBits otherwise.
func (s *Summary) AutoSizeBits() float64 {
	if s.weighted {
		return s.WeightedSizeBits()
	}
	return s.SizeBits()
}

// CompressionRatio returns AutoSizeBits / Size(G) for the given input graph.
func (s *Summary) CompressionRatio(g *graph.Graph) float64 {
	gs := g.SizeBits()
	if gs == 0 {
		return 0
	}
	return s.AutoSizeBits() / gs
}

// String implements fmt.Stringer.
func (s *Summary) String() string {
	return fmt.Sprintf("summary{|V|=%d |S|=%d |P|=%d}", s.NumNodes(), s.NumSupernodes(), s.NumSuperedges())
}

// Validate checks structural invariants: the supernode map matches member
// lists (a partition of V), superedge lists are sorted and symmetric, and
// weights are positive. Intended for tests.
func (s *Summary) Validate() error {
	seen := make([]bool, s.NumNodes())
	for a, ms := range s.members {
		if len(ms) == 0 {
			return fmt.Errorf("summary: empty supernode %d", a)
		}
		for i, u := range ms {
			if i > 0 && ms[i-1] >= u {
				return fmt.Errorf("summary: members of %d not sorted", a)
			}
			if s.superOf[u] != uint32(a) {
				return fmt.Errorf("summary: node %d in members of %d but superOf=%d", u, a, s.superOf[u])
			}
			if seen[u] {
				return fmt.Errorf("summary: node %d appears in two supernodes", u)
			}
			seen[u] = true
		}
	}
	for u, ok := range seen {
		if !ok {
			return fmt.Errorf("summary: node %d in no supernode", u)
		}
	}
	count := 0
	for a := range s.nbr {
		if len(s.nbr[a]) != len(s.wts[a]) {
			return fmt.Errorf("summary: nbr/wts length mismatch at %d", a)
		}
		for i, b := range s.nbr[a] {
			if i > 0 && s.nbr[a][i-1] >= b {
				return fmt.Errorf("summary: superneighbors of %d not sorted", a)
			}
			if int(b) >= s.NumSupernodes() {
				return fmt.Errorf("summary: superedge to unknown supernode %d", b)
			}
			if s.wts[a][i] <= 0 {
				return fmt.Errorf("summary: non-positive weight on {%d,%d}", a, b)
			}
			w, ok := s.HasSuperedge(b, uint32(a))
			if !ok || w != s.wts[a][i] {
				return fmt.Errorf("summary: superedge {%d,%d} asymmetric", a, b)
			}
			if b >= uint32(a) {
				count++
			}
		}
	}
	if count != s.numP {
		return fmt.Errorf("summary: |P|=%d but counted %d", s.numP, count)
	}
	return nil
}
