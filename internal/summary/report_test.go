package summary

import (
	"strings"
	"testing"
)

func TestDescribe(t *testing.T) {
	s := fixture() // A={0,1}, B={2,3}, C={4}; P={A-B, A-A, B-C}
	r := s.Describe()
	if r.Nodes != 5 || r.Supernodes != 3 || r.Superedges != 3 {
		t.Fatalf("report shape wrong: %+v", r)
	}
	if r.SelfLoops != 1 {
		t.Fatalf("self-loops = %d, want 1", r.SelfLoops)
	}
	if r.Singletons != 1 {
		t.Fatalf("singletons = %d, want 1", r.Singletons)
	}
	if r.MaxSupernode != 2 || r.MedSupernode != 2 {
		t.Fatalf("sizes wrong: %+v", r)
	}
	// Super-degrees: A has {B, A} = 2; B has {A, C} = 2; C has {B} = 1.
	want := (2.0 + 2.0 + 1.0) / 3
	if r.AvgSuperDegree != want {
		t.Fatalf("avg super degree = %v, want %v", r.AvgSuperDegree, want)
	}
	out := r.String()
	if !strings.Contains(out, "3 supernodes") || !strings.Contains(out, "1 singletons") {
		t.Fatalf("rendered report missing fields:\n%s", out)
	}
}

func TestLargestSupernodes(t *testing.T) {
	s := fixture()
	top := s.LargestSupernodes(2)
	if len(top) != 2 {
		t.Fatalf("got %d supernodes, want 2", len(top))
	}
	if len(top[0]) != 2 || len(top[1]) != 2 {
		t.Fatalf("sizes = %d,%d, want 2,2", len(top[0]), len(top[1]))
	}
	all := s.LargestSupernodes(99)
	if len(all) != 3 {
		t.Fatalf("oversized k: got %d, want 3", len(all))
	}
	if len(all[2]) != 1 {
		t.Fatal("smallest supernode should come last")
	}
}
