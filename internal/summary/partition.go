package summary

import "pegasus/internal/graph"

// FromPartitionDensity builds the density-weighted summary induced by a node
// partition: for every supernode pair (including self pairs) connected by at
// least one edge, a superedge is added whose weight is the edge density of
// the block (edges present / possible pairs). This is the output form of the
// k-GraSS, S2L and SAAGs baselines, which "add superedges without selection"
// (§V-D) — hence their dense summaries.
func FromPartitionDensity(g *graph.Graph, superOf []uint32) *Summary {
	b := NewBuilder(superOf)
	sizes := make(map[uint32]float64)
	for _, s := range superOf {
		sizes[s]++
	}
	counts := make(map[[2]uint32]float64)
	g.Edges(func(u, v graph.NodeID) bool {
		a, c := superOf[u], superOf[v]
		if a > c {
			a, c = c, a
		}
		counts[[2]uint32{a, c}]++
		return true
	})
	for blk, e := range counts {
		a, c := blk[0], blk[1]
		var pairs float64
		if a == c {
			pairs = sizes[a] * (sizes[a] - 1) / 2
		} else {
			pairs = sizes[a] * sizes[c]
		}
		if pairs <= 0 {
			continue
		}
		b.AddSuperedge(a, c, e/pairs)
	}
	return b.Build()
}
