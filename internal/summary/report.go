package summary

import (
	"fmt"
	"sort"
	"strings"

	"pegasus/internal/graph"
)

// Report summarizes the structure of a summary graph — one of the paper's
// selling points for graph summarization is "the interpretability of its
// output" (§I): supernodes are readable groups, superedges readable
// block-level relations.
type Report struct {
	Nodes          int     `json:"nodes"`
	Supernodes     int     `json:"supernodes"`
	Superedges     int     `json:"superedges"`
	SelfLoops      int     `json:"self_loops"`
	Singletons     int     `json:"singletons"`    // supernodes with exactly one member
	MaxSupernode   int     `json:"max_supernode"` // largest member count
	AvgSupernode   float64 `json:"avg_supernode"` // mean member count
	MedSupernode   float64 `json:"med_supernode"`
	SizeBits       float64 `json:"size_bits"`
	Weighted       bool    `json:"weighted"`
	AvgSuperDegree float64 `json:"avg_super_degree"` // mean superedges per supernode
}

// Describe computes the report.
func (s *Summary) Describe() Report {
	r := Report{
		Nodes:      s.NumNodes(),
		Supernodes: s.NumSupernodes(),
		Superedges: s.NumSuperedges(),
		SizeBits:   s.AutoSizeBits(),
		Weighted:   s.Weighted(),
	}
	sizes := make([]int, r.Supernodes)
	for a := 0; a < r.Supernodes; a++ {
		sizes[a] = len(s.Members(uint32(a)))
		if sizes[a] == 1 {
			r.Singletons++
		}
		if sizes[a] > r.MaxSupernode {
			r.MaxSupernode = sizes[a]
		}
		if _, ok := s.HasSuperedge(uint32(a), uint32(a)); ok {
			r.SelfLoops++
		}
		r.AvgSuperDegree += float64(s.SuperDegree(uint32(a)))
	}
	if r.Supernodes > 0 {
		r.AvgSupernode = float64(r.Nodes) / float64(r.Supernodes)
		r.AvgSuperDegree /= float64(r.Supernodes)
		sort.Ints(sizes)
		if r.Supernodes%2 == 1 {
			r.MedSupernode = float64(sizes[r.Supernodes/2])
		} else {
			r.MedSupernode = float64(sizes[r.Supernodes/2-1]+sizes[r.Supernodes/2]) / 2
		}
	}
	return r
}

// String renders the report for terminals.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "summary: %d nodes in %d supernodes, %d superedges (%d self-loops)\n",
		r.Nodes, r.Supernodes, r.Superedges, r.SelfLoops)
	fmt.Fprintf(&b, "  supernode sizes: avg %.2f, median %.0f, max %d; %d singletons\n",
		r.AvgSupernode, r.MedSupernode, r.MaxSupernode, r.Singletons)
	fmt.Fprintf(&b, "  super-degree: avg %.2f; size: %.0f bits; weighted: %v\n",
		r.AvgSuperDegree, r.SizeBits, r.Weighted)
	return b.String()
}

// LargestSupernodes returns the k largest supernodes (ID and members),
// largest first — the most aggressively grouped regions, typically the ones
// far from the target nodes in a personalized summary.
func (s *Summary) LargestSupernodes(k int) [][]graph.NodeID {
	ids := make([]uint32, s.NumSupernodes())
	for i := range ids {
		ids[i] = uint32(i)
	}
	sort.Slice(ids, func(i, j int) bool {
		li, lj := len(s.Members(ids[i])), len(s.Members(ids[j]))
		if li != lj {
			return li > lj
		}
		return ids[i] < ids[j]
	})
	if k > len(ids) {
		k = len(ids)
	}
	out := make([][]graph.NodeID, k)
	for i := 0; i < k; i++ {
		out[i] = s.Members(ids[i])
	}
	return out
}
