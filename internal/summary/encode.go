package summary

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

var summaryMagic = [4]byte{'P', 'G', 'S', 'S'}

// Write serializes the summary in a compact little-endian binary format:
// magic, |V|, |S|, |P|, the node→supernode array, then |P| superedge records
// (a, b, weight). This is the on-disk artifact loaded into each machine's
// memory in the distributed application (§IV).
func (s *Summary) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(summaryMagic[:]); err != nil {
		return err
	}
	hdr := [3]uint64{uint64(s.NumNodes()), uint64(s.NumSupernodes()), uint64(s.numP)}
	if err := binary.Write(bw, binary.LittleEndian, hdr[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, s.superOf); err != nil {
		return err
	}
	for a := range s.nbr {
		for i, b := range s.nbr[a] {
			if b < uint32(a) {
				continue
			}
			rec := struct {
				A, B uint32
				W    float64
			}{uint32(a), b, s.wts[a][i]}
			if err := binary.Write(bw, binary.LittleEndian, &rec); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Read deserializes a summary written by Write.
func Read(r io.Reader) (*Summary, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, err
	}
	if magic != summaryMagic {
		return nil, fmt.Errorf("summary: bad magic %q", magic)
	}
	var hdr [3]uint64
	if err := binary.Read(br, binary.LittleEndian, hdr[:]); err != nil {
		return nil, err
	}
	n, ns, np := int(hdr[0]), int(hdr[1]), int(hdr[2])
	superOf := make([]uint32, n)
	if err := binary.Read(br, binary.LittleEndian, superOf); err != nil {
		return nil, err
	}
	present := make([]bool, ns)
	for _, a := range superOf {
		if int(a) >= ns {
			return nil, fmt.Errorf("summary: supernode %d out of range", a)
		}
		present[a] = true
	}
	b := NewBuilder(superOf)
	for i := 0; i < np; i++ {
		var rec struct {
			A, B uint32
			W    float64
		}
		if err := binary.Read(br, binary.LittleEndian, &rec); err != nil {
			return nil, err
		}
		if int(rec.A) >= ns || int(rec.B) >= ns || !present[rec.A] || !present[rec.B] {
			return nil, fmt.Errorf("summary: superedge endpoint out of range")
		}
		if rec.W <= 0 {
			return nil, fmt.Errorf("summary: non-positive weight")
		}
		b.AddSuperedge(rec.A, rec.B, rec.W)
	}
	return b.Build(), nil
}

// SaveFile writes the summary to path.
func (s *Summary) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a summary from path.
func LoadFile(path string) (*Summary, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
