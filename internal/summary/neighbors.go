package summary

import "pegasus/internal/graph"

// Neighbors implements Alg. 4 (getNeighbors): the approximate neighborhood
// N̂_q of q in the reconstructed graph Ĝ, retrieved directly from the summary
// without restoring Ĝ. The result is the union of members of supernodes
// adjacent to S_q (including S_q itself when it carries a self-loop), minus
// q itself. The result is sorted.
func (s *Summary) Neighbors(q graph.NodeID) []graph.NodeID {
	var out []graph.NodeID
	sq := s.superOf[q]
	s.ForEachSuperNeighbor(sq, func(b uint32, _ float64) {
		for _, v := range s.members[b] {
			if v != q {
				out = append(out, v)
			}
		}
	})
	// Members are iterated per sorted supernode block; a final merge keeps
	// the overall order sorted (blocks may interleave).
	insertionSortNodes(out)
	return out
}

// WeightedNeighbor is a reconstructed neighbor with the weight of the
// superedge it came from (1 for unweighted summaries). Used by the weighted
// RWR/PHP query answering of §V-A.
type WeightedNeighbor struct {
	Node   graph.NodeID
	Weight float64
}

// WeightedNeighbors returns the approximate neighborhood with superedge
// weights attached.
func (s *Summary) WeightedNeighbors(q graph.NodeID) []WeightedNeighbor {
	var out []WeightedNeighbor
	sq := s.superOf[q]
	s.ForEachSuperNeighbor(sq, func(b uint32, w float64) {
		for _, v := range s.members[b] {
			if v != q {
				out = append(out, WeightedNeighbor{Node: v, Weight: w})
			}
		}
	})
	return out
}

// ReconstructedDegree returns |N̂_q| without materializing the neighbor set:
// Σ_{B adj S_q} |B|, minus one if S_q has a self-loop (q excluded from its
// own neighborhood).
func (s *Summary) ReconstructedDegree(q graph.NodeID) int {
	sq := s.superOf[q]
	deg := 0
	s.ForEachSuperNeighbor(sq, func(b uint32, _ float64) {
		deg += len(s.members[b])
		if b == sq {
			deg-- // exclude q itself under the self-loop
		}
	})
	return deg
}

// WeightedReconstructedDegree returns Σ_{v ∈ N̂_q} w(S_q, S_v), the weighted
// degree used by weighted RWR/PHP.
func (s *Summary) WeightedReconstructedDegree(q graph.NodeID) float64 {
	sq := s.superOf[q]
	deg := 0.0
	s.ForEachSuperNeighbor(sq, func(b uint32, w float64) {
		c := len(s.members[b])
		if b == sq {
			c--
		}
		deg += w * float64(c)
	})
	return deg
}

// Reconstruct materializes the reconstructed graph Ĝ (§II-A). Intended for
// small graphs and tests; the block structure can make Ĝ quadratically
// larger than the summary.
func (s *Summary) Reconstruct() *graph.Graph {
	b := graph.NewBuilder(s.NumNodes())
	for a := range s.nbr {
		for i, c := range s.nbr[a] {
			_ = i
			if c < uint32(a) {
				continue // handle each superedge once
			}
			ma, mc := s.members[a], s.members[c]
			if uint32(a) == c {
				for x := 0; x < len(ma); x++ {
					for y := x + 1; y < len(ma); y++ {
						b.AddEdge(ma[x], ma[y])
					}
				}
			} else {
				for _, u := range ma {
					for _, v := range mc {
						b.AddEdge(u, v)
					}
				}
			}
		}
	}
	return b.Build()
}

// insertionSortNodes sorts a small node slice in place. Neighbor lists are
// concatenations of already-sorted blocks, for which insertion sort is
// near-linear.
func insertionSortNodes(xs []graph.NodeID) {
	for i := 1; i < len(xs); i++ {
		v := xs[i]
		j := i - 1
		for j >= 0 && xs[j] > v {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = v
	}
}
