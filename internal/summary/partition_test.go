package summary

import (
	"math"
	"testing"
	"testing/quick"

	"math/rand"

	"pegasus/internal/graph"
)

func TestFromPartitionDensity(t *testing.T) {
	// K_{2,2} between supernodes {0,1} and {2,3}: density 1; plus one intra
	// edge {0,1}: density 1 over C(2,2)=1.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 2)
	b.AddEdge(0, 3)
	b.AddEdge(1, 2)
	b.AddEdge(1, 3)
	b.AddEdge(0, 1)
	g := b.Build()
	s := FromPartitionDensity(g, []uint32{7, 7, 9, 9})
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.NumSupernodes() != 2 || s.NumSuperedges() != 2 {
		t.Fatalf("summary shape: %v", s)
	}
	a := s.Supernode(0)
	c := s.Supernode(2)
	w, ok := s.HasSuperedge(a, c)
	if !ok || math.Abs(w-1) > 1e-12 {
		t.Fatalf("cross density = %v, want 1", w)
	}
	wSelf, ok := s.HasSuperedge(a, a)
	if !ok || math.Abs(wSelf-1) > 1e-12 {
		t.Fatalf("self density = %v, want 1", wSelf)
	}
	// Partial block: one edge of four possible.
	b2 := graph.NewBuilder(4)
	b2.AddEdge(0, 2)
	g2 := b2.Build()
	s2 := FromPartitionDensity(g2, []uint32{0, 0, 1, 1})
	w2, ok := s2.HasSuperedge(s2.Supernode(0), s2.Supernode(2))
	if !ok || math.Abs(w2-0.25) > 1e-12 {
		t.Fatalf("partial density = %v, want 0.25", w2)
	}
}

func TestPropertyFromPartitionDensityValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(60)
		b := graph.NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			b.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
		}
		g := b.Build()
		labels := make([]uint32, g.NumNodes())
		k := 1 + rng.Intn(8)
		for u := range labels {
			labels[u] = uint32(rng.Intn(k))
		}
		s := FromPartitionDensity(g, labels)
		if s.Validate() != nil {
			return false
		}
		// Densities always in (0, 1].
		ok := true
		for a := 0; a < s.NumSupernodes(); a++ {
			s.ForEachSuperNeighbor(uint32(a), func(_ uint32, w float64) {
				if w <= 0 || w > 1+1e-12 {
					ok = false
				}
			})
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
