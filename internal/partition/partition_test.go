package partition

import (
	"testing"

	"pegasus/internal/gen"
	"pegasus/internal/graph"
)

func communityGraph(seed int64) *graph.Graph {
	return gen.PlantedPartition(gen.SBMConfig{
		Nodes: 400, Communities: 8, AvgDegree: 16, MixingP: 0.05,
	}, seed)
}

func TestLouvainRecoversCommunities(t *testing.T) {
	g := communityGraph(1)
	labels := Louvain(g, LouvainConfig{Seed: 2})
	k := PartCount(labels)
	if k < 2 || k > 40 {
		t.Fatalf("Louvain found %d communities, want a handful (planted 8)", k)
	}
	// Cut quality: massively below random.
	cut := EdgeCut(g, labels)
	randCut := EdgeCut(g, RandomBalanced(g.NumNodes(), k, 3))
	if cut*2 >= randCut {
		t.Fatalf("Louvain cut %d not well below random cut %d", cut, randCut)
	}
}

func TestLouvainEdgeCases(t *testing.T) {
	empty := graph.NewBuilder(0).Build()
	if got := Louvain(empty, LouvainConfig{}); len(got) != 0 {
		t.Fatal("empty graph should give empty labels")
	}
	noEdges := graph.NewBuilder(5).Build()
	labels := Louvain(noEdges, LouvainConfig{})
	if len(labels) != 5 {
		t.Fatal("isolated nodes must all be labeled")
	}
}

func TestBalancedFromCommunities(t *testing.T) {
	// 3 communities of sizes 6, 3, 3 into m=2 -> sizes {6,6}.
	labels := []uint32{0, 0, 0, 0, 0, 0, 1, 1, 1, 2, 2, 2}
	out := BalancedFromCommunities(labels, 2, 1)
	if got := PartCount(out); got != 2 {
		t.Fatalf("parts = %d, want 2", got)
	}
	if im := Imbalance(out, 2); im > 1.01 {
		t.Fatalf("imbalance = %v, want ~1", im)
	}
	// Oversized community split across parts.
	big := make([]uint32, 100) // all one community
	out2 := BalancedFromCommunities(big, 4, 1)
	if im := Imbalance(out2, 4); im > 1.1 {
		t.Fatalf("imbalance after split = %v, want ~1", im)
	}
}

func TestRandomBalanced(t *testing.T) {
	labels := RandomBalanced(103, 8, 7)
	if im := Imbalance(labels, 8); im > 1.08 {
		t.Fatalf("imbalance = %v, want sizes within one", im)
	}
	if PartCount(labels) != 8 {
		t.Fatal("expected all 8 parts in use")
	}
}

func TestBLPImprovesCut(t *testing.T) {
	g := communityGraph(4)
	m := 8
	initial := RandomBalanced(g.NumNodes(), m, 5)
	initCut := EdgeCut(g, initial)
	labels := BLP(g, m, BLPConfig{Seed: 5})
	cut := EdgeCut(g, labels)
	if cut >= initCut {
		t.Fatalf("BLP cut %d did not improve on random %d", cut, initCut)
	}
	if im := Imbalance(labels, m); im > 1.05 {
		t.Fatalf("BLP broke balance: %v", im)
	}
}

func TestSHPVariantsImproveFanout(t *testing.T) {
	g := communityGraph(6)
	m := 8
	base := AvgFanout(g, RandomBalanced(g.NumNodes(), m, 7), m)
	for _, mth := range []struct {
		name string
		fn   func(*graph.Graph, int, BLPConfig) []uint32
	}{
		{"SHPI", SHPI}, {"SHPII", SHPII}, {"SHPKL", SHPKL},
	} {
		labels := mth.fn(g, m, BLPConfig{Seed: 7})
		fo := AvgFanout(g, labels, m)
		if fo >= base {
			t.Errorf("%s fanout %v did not improve on random %v", mth.name, fo, base)
		}
		if im := Imbalance(labels, m); im > 1.05 {
			t.Errorf("%s broke balance: %v", mth.name, im)
		}
	}
}

func TestPartitionDispatch(t *testing.T) {
	g := communityGraph(8)
	for _, mth := range append(Methods, MethodRandom, Method("unknown")) {
		labels := Partition(g, 8, mth, 9)
		if len(labels) != g.NumNodes() {
			t.Fatalf("%s: wrong label count", mth)
		}
		if im := Imbalance(labels, 8); im > 1.15 {
			t.Errorf("%s: imbalance %v too high", mth, im)
		}
		for _, l := range labels {
			if l >= 8 {
				t.Fatalf("%s: label %d out of range", mth, l)
			}
		}
	}
}

func TestQualityMeasures(t *testing.T) {
	// Path 0-1-2 with labels {0,0,1}: cut=1.
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.Build()
	labels := []uint32{0, 0, 1}
	if got := EdgeCut(g, labels); got != 1 {
		t.Fatalf("EdgeCut = %d, want 1", got)
	}
	// Fanout: node0 -> {0}:1 part; node1 -> {0,1}: 2 parts; node2 -> {0}: 1.
	want := (1.0 + 2.0 + 1.0) / 3
	if got := AvgFanout(g, labels, 2); got != want {
		t.Fatalf("AvgFanout = %v, want %v", got, want)
	}
	if got := Imbalance(labels, 2); got != 2.0/1.5 {
		t.Fatalf("Imbalance = %v, want %v", got, 2.0/1.5)
	}
	if PartCount(labels) != 2 {
		t.Fatal("PartCount wrong")
	}
}

func TestEdgesNeverIncreaseFanoutInvariant(t *testing.T) {
	// The npc counters must stay consistent with labels after moves.
	g := communityGraph(10)
	m := 4
	labels := RandomBalanced(g.NumNodes(), m, 11)
	npc := newNeighborPartCounts(g, labels, m)
	// Perform a few manual moves and re-verify counts from scratch.
	for u := graph.NodeID(0); u < 40; u++ {
		from := labels[u]
		to := (from + 1) % uint32(m)
		labels[u] = to
		npc.move(g, u, from, to)
	}
	fresh := newNeighborPartCounts(g, labels, m)
	for i := range fresh.cnt {
		if fresh.cnt[i] != npc.cnt[i] {
			t.Fatal("incremental npc deviates from recomputation")
		}
	}
}
