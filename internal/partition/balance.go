package partition

import (
	"math/rand"
	"sort"

	"pegasus/internal/graph"
)

// BalancedFromCommunities folds arbitrary community labels into exactly m
// balanced parts: communities are assigned, largest first, to the currently
// lightest part; communities larger than the balance capacity are split.
// This realizes Alg. 3's preprocessing ("divide the node set V into m
// subsets using the Louvain method").
func BalancedFromCommunities(labels []uint32, m int, seed int64) []uint32 {
	n := len(labels)
	if m < 1 {
		m = 1
	}
	cap := (n + m - 1) / m
	// Collect community member lists.
	groups := map[uint32][]int{}
	for u, l := range labels {
		groups[l] = append(groups[l], u)
	}
	type comm struct {
		members []int
	}
	// Visit communities in sorted-label order: the size sort below breaks
	// ties by position, so map iteration order here would let equal-sized
	// communities swap parts between identical-seed runs.
	order := make([]uint32, 0, len(groups))
	for l := range groups { //lint:ordered labels are sorted immediately below
		order = append(order, l)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	var comms []comm
	for _, l := range order {
		g := groups[l]
		// Split oversized communities into capacity-sized chunks so each
		// chunk fits in a part.
		for start := 0; start < len(g); start += cap {
			end := start + cap
			if end > len(g) {
				end = len(g)
			}
			comms = append(comms, comm{members: g[start:end]})
		}
	}
	sort.SliceStable(comms, func(i, j int) bool { return len(comms[i].members) > len(comms[j].members) })

	rng := rand.New(rand.NewSource(seed))
	_ = rng
	sizes := make([]int, m)
	out := make([]uint32, n)
	for _, c := range comms {
		// Lightest part wins (first-fit decreasing).
		best := 0
		for p := 1; p < m; p++ {
			if sizes[p] < sizes[best] {
				best = p
			}
		}
		for _, u := range c.members {
			out[u] = uint32(best)
		}
		sizes[best] += len(c.members)
	}
	return out
}

// RandomBalanced returns a uniformly random partition of n nodes into m
// parts with sizes differing by at most one — the initialization of BLP and
// SHP.
func RandomBalanced(n, m int, seed int64) []uint32 {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	out := make([]uint32, n)
	for i, u := range perm {
		out[u] = uint32(i % m)
	}
	return out
}

// EdgeCut counts edges whose endpoints lie in different parts.
func EdgeCut(g *graph.Graph, labels []uint32) int64 {
	var cut int64
	g.Edges(func(u, v graph.NodeID) bool {
		if labels[u] != labels[v] {
			cut++
		}
		return true
	})
	return cut
}

// AvgFanout returns the mean, over nodes with neighbors, of the number of
// distinct parts hosting a node's neighbors — the probabilistic-fanout
// objective of SHP, evaluated exactly.
func AvgFanout(g *graph.Graph, labels []uint32, m int) float64 {
	n := g.NumNodes()
	if n == 0 {
		return 0
	}
	seen := make([]int, m)
	stamp := 0
	total, cnt := 0.0, 0
	for u := 0; u < n; u++ {
		ns := g.Neighbors(graph.NodeID(u))
		if len(ns) == 0 {
			continue
		}
		stamp++
		f := 0
		for _, v := range ns {
			p := labels[v]
			if seen[p] != stamp {
				seen[p] = stamp
				f++
			}
		}
		total += float64(f)
		cnt++
	}
	if cnt == 0 {
		return 0
	}
	return total / float64(cnt)
}

// Imbalance returns max part size divided by the ideal n/m (1.0 = perfectly
// balanced).
func Imbalance(labels []uint32, m int) float64 {
	if len(labels) == 0 || m == 0 {
		return 1
	}
	sizes := make([]int, m)
	for _, l := range labels {
		sizes[l]++
	}
	max := 0
	for _, s := range sizes {
		if s > max {
			max = s
		}
	}
	return float64(max) * float64(m) / float64(len(labels))
}

// PartCount returns the number of distinct labels.
func PartCount(labels []uint32) int {
	seen := map[uint32]bool{}
	for _, l := range labels {
		seen[l] = true
	}
	return len(seen)
}
