package partition

import "testing"

// TestLouvainDeterministic pins the maporder fix in louvain.go: identical
// seeds must yield identical partitions. Before the fix, the local-move
// argmax and the aggregation sums iterated Go maps directly, so two runs in
// the same process (which see different map iteration orders) could tie-
// break moves differently and return different community structures —
// silently breaking every downstream content key derived from a Louvain
// partition.
func TestLouvainDeterministic(t *testing.T) {
	for _, seed := range []int64{0, 1, 7} {
		g := communityGraph(seed)
		ref := Louvain(g, LouvainConfig{Seed: seed})
		// Map iteration order is re-randomized per map instance, so repeated
		// in-process runs exercise different orders; a handful of repeats
		// reliably caught the pre-fix nondeterminism.
		for run := 0; run < 5; run++ {
			got := Louvain(g, LouvainConfig{Seed: seed})
			if len(got) != len(ref) {
				t.Fatalf("seed %d run %d: %d labels, want %d", seed, run, len(got), len(ref))
			}
			for u := range ref {
				if got[u] != ref[u] {
					t.Fatalf("seed %d run %d: node %d labeled %d, want %d — Louvain is nondeterministic",
						seed, run, u, got[u], ref[u])
				}
			}
		}
	}
}

// TestBalancedFromCommunitiesDeterministic pins the companion fix in
// balance.go: equal-sized communities are packed in sorted-label order, so
// the folded m-way partition is identical across runs too.
func TestBalancedFromCommunitiesDeterministic(t *testing.T) {
	g := communityGraph(3)
	labels := Louvain(g, LouvainConfig{Seed: 3})
	ref := BalancedFromCommunities(labels, 4, 9)
	for run := 0; run < 5; run++ {
		got := BalancedFromCommunities(labels, 4, 9)
		for u := range ref {
			if got[u] != ref[u] {
				t.Fatalf("run %d: node %d in part %d, want %d — balanced fold is nondeterministic",
					run, u, got[u], ref[u])
			}
		}
	}
}

// TestLouvainDeterministicAcrossGeneratorSeeds guards against the fix
// regressing quality: determinism must not come from collapsing to a
// trivial partition.
func TestLouvainDeterministicQualityPreserved(t *testing.T) {
	g := communityGraph(5)
	labels := Louvain(g, LouvainConfig{Seed: 5})
	k := PartCount(labels)
	if k < 2 || k > 40 {
		t.Fatalf("deterministic Louvain found %d communities, want a handful (planted 8)", k)
	}
	cut := EdgeCut(g, labels)
	randCut := EdgeCut(g, RandomBalanced(g.NumNodes(), k, 6))
	if cut*2 >= randCut {
		t.Fatalf("deterministic Louvain cut %d not well below random cut %d", cut, randCut)
	}
}
