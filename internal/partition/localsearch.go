package partition

import (
	"sort"

	"pegasus/internal/graph"
)

// Constrained local search shared by BLP and the SHP variants: each
// iteration, every node proposes its best relocation with a positive gain;
// proposals are then matched pairwise between parts — for parts (i,j), only
// min(|i→j|, |j→i|) of the highest-gain proposals move in each direction —
// so part sizes are preserved exactly, as in balanced label propagation
// [41] and the social hash partitioner's constrained swaps [42].

// gainFunc scores relocating node u from part `from` to part `to`
// (higher = better; only positive gains generate proposals).
type gainFunc func(u graph.NodeID, from, to uint32) float64

type proposal struct {
	u    graph.NodeID
	to   uint32
	gain float64
}

// neighborPartCounts maintains, for every node, the number of neighbors in
// each part (m is small — 8 in the paper's experiments — so a dense n×m
// matrix is cheap).
type neighborPartCounts struct {
	m   int
	cnt []int32 // n*m
}

func newNeighborPartCounts(g *graph.Graph, labels []uint32, m int) *neighborPartCounts {
	n := g.NumNodes()
	npc := &neighborPartCounts{m: m, cnt: make([]int32, n*m)}
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(graph.NodeID(u)) {
			npc.cnt[u*m+int(labels[v])]++
		}
	}
	return npc
}

func (npc *neighborPartCounts) get(u graph.NodeID, p uint32) int32 {
	return npc.cnt[int(u)*npc.m+int(p)]
}

// move updates counts after u relocates from part a to part b.
func (npc *neighborPartCounts) move(g *graph.Graph, u graph.NodeID, a, b uint32) {
	for _, v := range g.Neighbors(u) {
		npc.cnt[int(v)*npc.m+int(a)]--
		npc.cnt[int(v)*npc.m+int(b)]++
	}
}

// constrainedSearch runs iters rounds of propose-and-match moves over a
// caller-owned neighborPartCounts (so gain closures read live counts).
// labels is modified in place and returned.
func constrainedSearch(g *graph.Graph, labels []uint32, m, iters int, gain gainFunc, npc *neighborPartCounts) []uint32 {
	n := g.NumNodes()
	for iter := 0; iter < iters; iter++ {
		// Propose: best positive-gain destination per node.
		byPair := map[[2]uint32][]proposal{}
		for u := 0; u < n; u++ {
			from := labels[u]
			bestGain := 0.0
			bestTo := from
			for p := uint32(0); int(p) < m; p++ {
				if p == from {
					continue
				}
				if gn := gain(graph.NodeID(u), from, p); gn > bestGain {
					bestGain, bestTo = gn, p
				}
			}
			if bestTo != from {
				key := [2]uint32{from, bestTo}
				byPair[key] = append(byPair[key], proposal{graph.NodeID(u), bestTo, bestGain})
			}
		}
		if len(byPair) == 0 {
			break
		}
		// Match: for each unordered part pair, move equal counterflows.
		moved := 0
		for i := uint32(0); int(i) < m; i++ {
			for j := i + 1; int(j) < m; j++ {
				fwd := byPair[[2]uint32{i, j}]
				bwd := byPair[[2]uint32{j, i}]
				k := len(fwd)
				if len(bwd) < k {
					k = len(bwd)
				}
				if k == 0 {
					continue
				}
				sort.Slice(fwd, func(a, b int) bool { return fwd[a].gain > fwd[b].gain })
				sort.Slice(bwd, func(a, b int) bool { return bwd[a].gain > bwd[b].gain })
				for x := 0; x < k; x++ {
					applyMove(g, labels, npc, fwd[x].u, i, j)
					applyMove(g, labels, npc, bwd[x].u, j, i)
					moved += 2
				}
			}
		}
		if moved == 0 {
			break
		}
	}
	return labels
}

func applyMove(g *graph.Graph, labels []uint32, npc *neighborPartCounts, u graph.NodeID, from, to uint32) {
	if labels[u] != from {
		return // a previous swap in this round already relocated u
	}
	labels[u] = to
	npc.move(g, u, from, to)
}

// BLPConfig parameterizes BLP and the SHP variants.
type BLPConfig struct {
	// Iterations bounds local-search rounds (default 10, §V-A).
	Iterations int
	// Seed drives initialization.
	Seed int64
}

func (c BLPConfig) withDefaults() BLPConfig {
	if c.Iterations == 0 {
		c.Iterations = 10
	}
	return c
}

// BLP partitions g into m balanced parts by balanced label propagation [41]:
// nodes greedily chase the part holding most of their neighbors (edge-cut
// gain), with pairwise matching keeping sizes fixed.
func BLP(g *graph.Graph, m int, cfg BLPConfig) []uint32 {
	cfg = cfg.withDefaults()
	labels := RandomBalanced(g.NumNodes(), m, cfg.Seed)
	npc := newNeighborPartCounts(g, labels, m)
	gain := func(u graph.NodeID, from, to uint32) float64 {
		return float64(npc.get(u, to) - npc.get(u, from))
	}
	return constrainedSearch(g, labels, m, cfg.Iterations, gain, npc)
}
