// Package partition implements the graph-partitioning substrate of §IV/§V-F:
// the Louvain community-detection method [28] used by Alg. 3's preprocessing
// step, the balanced label propagation (BLP [41]) and social hash
// partitioner (SHP-I/II/KL [42]) baselines of Fig. 12, balanced m-way
// splitting, and partition-quality measures.
package partition

import (
	"math/rand"
	"sort"

	"pegasus/internal/graph"
)

// LouvainConfig parameterizes Louvain.
type LouvainConfig struct {
	// MaxLevels bounds the aggregation hierarchy (default 10).
	MaxLevels int
	// MaxPasses bounds local-move sweeps per level (default 10, §V-A).
	MaxPasses int
	// Seed drives node-visit order.
	Seed int64
}

func (c LouvainConfig) withDefaults() LouvainConfig {
	if c.MaxLevels == 0 {
		c.MaxLevels = 10
	}
	if c.MaxPasses == 0 {
		c.MaxPasses = 10
	}
	return c
}

// wgraph is a weighted multigraph used for Louvain's aggregated levels.
type wgraph struct {
	n   int
	adj []map[int]float64 // neighbor -> weight (self-loops allowed)
	deg []float64         // weighted degree incl. 2×self-loop
	m2  float64           // total weight ×2 (sum of deg)
}

func wgraphFrom(g *graph.Graph) *wgraph {
	n := g.NumNodes()
	w := &wgraph{n: n, adj: make([]map[int]float64, n), deg: make([]float64, n)}
	for u := 0; u < n; u++ {
		ns := g.Neighbors(graph.NodeID(u))
		w.adj[u] = make(map[int]float64, len(ns))
		for _, v := range ns {
			w.adj[u][int(v)] = 1
		}
		w.deg[u] = float64(len(ns))
		w.m2 += float64(len(ns))
	}
	return w
}

// Louvain detects communities by modularity optimization [28] and returns a
// community label per node (dense labels, count unspecified).
func Louvain(g *graph.Graph, cfg LouvainConfig) []uint32 {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := g.NumNodes()
	labels := make([]uint32, n)
	for i := range labels {
		labels[i] = uint32(i)
	}
	if n == 0 || g.NumEdges() == 0 {
		return densify(labels)
	}
	w := wgraphFrom(g)
	// mapping[u] = community of original node u across levels.
	mapping := make([]int, n)
	for i := range mapping {
		mapping[i] = i
	}

	for level := 0; level < cfg.MaxLevels; level++ {
		comm, moved := louvainLevel(w, cfg.MaxPasses, rng)
		if !moved {
			break
		}
		// Renumber communities densely.
		renum := map[int]int{}
		for _, c := range comm {
			if _, ok := renum[c]; !ok {
				renum[c] = len(renum)
			}
		}
		for u := range mapping {
			mapping[u] = renum[comm[mapping[u]]]
		}
		if len(renum) == w.n {
			break // no aggregation progress
		}
		w = aggregate(w, comm, renum)
	}
	for u := range labels {
		labels[u] = uint32(mapping[u])
	}
	return densify(labels)
}

// louvainLevel runs local moves until convergence; returns per-node
// community and whether anything moved.
func louvainLevel(w *wgraph, maxPasses int, rng *rand.Rand) ([]int, bool) {
	comm := make([]int, w.n)
	ctot := make([]float64, w.n) // Σ deg of community members
	for u := 0; u < w.n; u++ {
		comm[u] = u
		ctot[u] = w.deg[u]
	}
	anyMoved := false
	order := rng.Perm(w.n)
	for pass := 0; pass < maxPasses; pass++ {
		movedThisPass := 0
		for _, u := range order {
			cu := comm[u]
			// Weights from u to each adjacent community, accumulated in
			// sorted-neighbor order: float addition is order-sensitive, and
			// the gain comparison below tie-breaks on which community is
			// seen first, so map iteration order here would make partitions
			// differ between identical-seed runs.
			wto := map[int]float64{}
			for _, v := range sortedKeys(w.adj[u]) {
				if v == u {
					continue
				}
				wto[comm[v]] += w.adj[u][v]
			}
			// Remove u from its community.
			ctot[cu] -= w.deg[u]
			best, bestGain := cu, 0.0
			base := wto[cu] - w.deg[u]*ctot[cu]/w.m2
			for _, c := range sortedKeys(wto) {
				wc := wto[c]
				gain := (wc - w.deg[u]*ctot[c]/w.m2) - base
				if gain > bestGain+1e-12 {
					best, bestGain = c, gain
				}
			}
			comm[u] = best
			ctot[best] += w.deg[u]
			if best != cu {
				movedThisPass++
				anyMoved = true
			}
		}
		if movedThisPass == 0 {
			break
		}
	}
	return comm, anyMoved
}

// aggregate collapses communities into nodes of the next-level graph.
// Convention: the self entry adj[c][c] stores the *degree contribution* of
// internal edges (2× their weight), so weighted degree is a plain row sum.
// Cross edges are visited from both endpoints, filling both directed
// entries; internal edges are visited twice and accumulate 2× into the self
// entry, preserving the convention.
func aggregate(w *wgraph, comm []int, renum map[int]int) *wgraph {
	n2 := len(renum)
	out := &wgraph{n: n2, adj: make([]map[int]float64, n2), deg: make([]float64, n2)}
	for i := 0; i < n2; i++ {
		out.adj[i] = map[int]float64{}
	}
	for u := 0; u < w.n; u++ {
		cu := renum[comm[u]]
		// Sorted-neighbor order keeps the float accumulations below
		// bit-identical across runs (map order would perturb rounding).
		for _, v := range sortedKeys(w.adj[u]) {
			wt := w.adj[u][v]
			if v == u {
				out.adj[cu][cu] += wt // already in 2× convention
			} else {
				out.adj[cu][renum[comm[v]]] += wt
			}
		}
	}
	for u := 0; u < n2; u++ {
		d := 0.0
		for _, v := range sortedKeys(out.adj[u]) {
			d += out.adj[u][v]
		}
		out.deg[u] = d
		out.m2 += d
	}
	return out
}

// sortedKeys returns m's keys in increasing order; every iteration over a
// weight map goes through it so that float accumulation order — and with
// it the resulting partition — is identical across runs (maporder
// invariant).
func sortedKeys(m map[int]float64) []int {
	keys := make([]int, 0, len(m))
	for k := range m { //lint:ordered keys are sorted immediately below
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// densify renumbers arbitrary labels to 0..k-1 in first-appearance order.
func densify(labels []uint32) []uint32 {
	m := map[uint32]uint32{}
	for i, l := range labels {
		d, ok := m[l]
		if !ok {
			d = uint32(len(m))
			m[l] = d
		}
		labels[i] = d
	}
	return labels
}
