package partition

import (
	"math/rand"

	"pegasus/internal/graph"
)

// Social hash partitioner variants [42]. All three minimize query fanout —
// the number of distinct machines a node's neighborhood spans — under a
// strict balance constraint; they differ in local-search strength:
//
//   - SHP-I:  one-sided fanout-gain moves, matched pairwise (probabilistic
//     greedy of the original paper);
//   - SHP-II: SHP-I preceded by an edge-cut warm start, giving the
//     second-order variant a better basin;
//   - SHP-KL: SHP-I with Kernighan–Lin-style alternation between fanout and
//     edge-cut objectives across rounds, escaping fanout-flat plateaus.
//
// These are clean-room reimplementations of the published ideas (see
// DESIGN.md §3); Fig. 12 treats them as a family of partitioning baselines.

// fanoutGain computes the exact change in total fanout if u moves from part
// a to part b: every neighbor v loses a fanout unit if u was its only
// neighbor in a, and gains one if it had none in b. Positive = improvement.
func fanoutGain(npc *neighborPartCounts, g *graph.Graph, u graph.NodeID, a, b uint32) float64 {
	gain := 0.0
	for _, v := range g.Neighbors(u) {
		if npc.get(v, a) == 1 {
			gain++
		}
		if npc.get(v, b) == 0 {
			gain--
		}
	}
	return gain
}

// SHPI partitions g into m balanced parts minimizing fanout.
func SHPI(g *graph.Graph, m int, cfg BLPConfig) []uint32 {
	cfg = cfg.withDefaults()
	labels := RandomBalanced(g.NumNodes(), m, cfg.Seed)
	npc := newNeighborPartCounts(g, labels, m)
	gain := func(u graph.NodeID, from, to uint32) float64 {
		return fanoutGain(npc, g, u, from, to)
	}
	return constrainedSearch(g, labels, m, cfg.Iterations, gain, npc)
}

// SHPII partitions g into m balanced parts: an edge-cut warm start (half the
// budgeted rounds of BLP-style moves) followed by fanout refinement.
func SHPII(g *graph.Graph, m int, cfg BLPConfig) []uint32 {
	cfg = cfg.withDefaults()
	labels := RandomBalanced(g.NumNodes(), m, cfg.Seed)
	npc := newNeighborPartCounts(g, labels, m)
	cutGain := func(u graph.NodeID, from, to uint32) float64 {
		return float64(npc.get(u, to) - npc.get(u, from))
	}
	half := cfg.Iterations / 2
	if half < 1 {
		half = 1
	}
	labels = constrainedSearch(g, labels, m, half, cutGain, npc)
	foGain := func(u graph.NodeID, from, to uint32) float64 {
		return fanoutGain(npc, g, u, from, to)
	}
	return constrainedSearch(g, labels, m, cfg.Iterations-half+1, foGain, npc)
}

// SHPKL partitions g into m balanced parts, alternating fanout and edge-cut
// objectives between rounds (Kernighan–Lin-style objective cycling).
func SHPKL(g *graph.Graph, m int, cfg BLPConfig) []uint32 {
	cfg = cfg.withDefaults()
	labels := RandomBalanced(g.NumNodes(), m, cfg.Seed)
	npc := newNeighborPartCounts(g, labels, m)
	cutGain := func(u graph.NodeID, from, to uint32) float64 {
		return float64(npc.get(u, to) - npc.get(u, from))
	}
	foGain := func(u graph.NodeID, from, to uint32) float64 {
		return fanoutGain(npc, g, u, from, to)
	}
	for r := 0; r < cfg.Iterations; r++ {
		if r%2 == 0 {
			labels = constrainedSearch(g, labels, m, 1, foGain, npc)
		} else {
			labels = constrainedSearch(g, labels, m, 1, cutGain, npc)
		}
	}
	return labels
}

// Method names a partitioning algorithm for the experiment harness.
type Method string

// Supported partitioning methods.
const (
	MethodLouvain Method = "louvain"
	MethodBLP     Method = "blp"
	MethodSHPI    Method = "shpi"
	MethodSHPII   Method = "shpii"
	MethodSHPKL   Method = "shpkl"
	MethodRandom  Method = "random"
)

// Methods lists the partitioners compared in Fig. 12 (Louvain drives the
// PeGaSus/SSumM clusters; the rest are subgraph baselines).
var Methods = []Method{MethodLouvain, MethodBLP, MethodSHPI, MethodSHPII, MethodSHPKL}

// Partition dispatches by method name, always returning exactly m balanced
// parts.
func Partition(g *graph.Graph, m int, method Method, seed int64) []uint32 {
	switch method {
	case MethodLouvain:
		comm := Louvain(g, LouvainConfig{Seed: seed})
		return BalancedFromCommunities(comm, m, seed)
	case MethodBLP:
		return BLP(g, m, BLPConfig{Seed: seed})
	case MethodSHPI:
		return SHPI(g, m, BLPConfig{Seed: seed})
	case MethodSHPII:
		return SHPII(g, m, BLPConfig{Seed: seed})
	case MethodSHPKL:
		return SHPKL(g, m, BLPConfig{Seed: seed})
	case MethodRandom:
		return RandomBalanced(g.NumNodes(), m, seed)
	default:
		// Unknown methods degrade to a random balanced partition rather
		// than failing an experiment sweep.
		rng := rand.New(rand.NewSource(seed))
		_ = rng
		return RandomBalanced(g.NumNodes(), m, seed)
	}
}
