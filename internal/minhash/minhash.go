// Package minhash provides seeded integer hash functions used for
// shingle-based candidate generation (§III-C). The paper's f: V →
// {1,...,|V|} is a uniform random hash function redrawn each iteration; two
// supernodes receive the same shingle with probability equal to the Jaccard
// similarity of their (closed) neighbor sets, which is exactly the min-wise
// independent permutation guarantee [26].
package minhash

import "math/bits"

// Hash is a seeded pseudo-random function over node IDs. Distinct seeds give
// (approximately) independent functions.
type Hash struct {
	a, b uint64
}

// splitmix64 is the SplitMix64 finalizer; a high-quality 64-bit mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// New derives a hash function from seed. Any seed is valid.
func New(seed uint64) Hash {
	a := splitmix64(seed)
	if a%2 == 0 {
		a++ // multiplicative constant must be odd for full period
	}
	b := splitmix64(seed ^ 0xdeadbeefcafef00d)
	return Hash{a: a, b: b}
}

// Uint64 returns the 64-bit hash of x.
func (h Hash) Uint64(x uint32) uint64 {
	v := (uint64(x)+1)*h.a + h.b
	return bits.RotateLeft64(v, 31) * 0x9e3779b97f4a7c15
}

// FamilySeed derives the seed of member (band, row) of a banded hash
// family rooted at base. Distinct (band, row) coordinates yield
// (approximately) independent hash functions — the signature matrix of a
// MinHash-LSH scheme with b bands of r rows: two sets with Jaccard
// similarity s land in the same bucket of at least one band with
// probability 1-(1-s^r)^b.
func FamilySeed(base uint64, band, row int) uint64 {
	return splitmix64(base ^ (uint64(band)<<32|uint64(uint32(row)))*0x9e3779b97f4a7c15)
}

// FoldInit is the initial accumulator for Fold (the FNV-1a 64-bit offset
// basis — an arbitrary non-zero constant).
const FoldInit = uint64(0xcbf29ce484222325)

// Fold mixes one row minimum into a band-bucket accumulator. Folding the r
// row minima of a band in row order yields the band's bucket key: two
// signatures collide on the band iff all r row minima agree (up to hash
// collisions, which are negligible at 64 bits).
func Fold(acc, rowMin uint64) uint64 {
	return splitmix64(acc ^ rowMin*0xff51afd7ed558ccd)
}

// Min returns the element of xs with the smallest hash value and that value.
// It panics on an empty slice.
func (h Hash) Min(xs []uint32) (argmin uint32, min uint64) {
	if len(xs) == 0 {
		panic("minhash: Min of empty slice")
	}
	argmin, min = xs[0], h.Uint64(xs[0])
	for _, x := range xs[1:] {
		if v := h.Uint64(x); v < min {
			argmin, min = x, v
		}
	}
	return argmin, min
}
