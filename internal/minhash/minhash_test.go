package minhash

import (
	"math"
	"math/rand"
	"testing"
)

func TestDeterminism(t *testing.T) {
	h1 := New(42)
	h2 := New(42)
	for x := uint32(0); x < 100; x++ {
		if h1.Uint64(x) != h2.Uint64(x) {
			t.Fatal("same seed must give same hash")
		}
	}
	h3 := New(43)
	diff := 0
	for x := uint32(0); x < 100; x++ {
		if h1.Uint64(x) != h3.Uint64(x) {
			diff++
		}
	}
	if diff < 95 {
		t.Fatalf("different seeds collide too much: %d/100 differ", diff)
	}
}

func TestUniformity(t *testing.T) {
	// Bucket 64k consecutive IDs into 16 buckets by top bits; expect roughly
	// uniform occupancy (within 10%).
	h := New(7)
	const n = 1 << 16
	buckets := make([]int, 16)
	for x := uint32(0); x < n; x++ {
		buckets[h.Uint64(x)>>60]++
	}
	want := float64(n) / 16
	for i, c := range buckets {
		if math.Abs(float64(c)-want) > 0.1*want {
			t.Fatalf("bucket %d has %d items, want ~%.0f", i, c, want)
		}
	}
}

func TestMin(t *testing.T) {
	h := New(3)
	xs := []uint32{5, 9, 1, 7}
	arg, val := h.Min(xs)
	for _, x := range xs {
		if h.Uint64(x) < val {
			t.Fatalf("Min missed smaller hash at %d", x)
		}
	}
	if h.Uint64(arg) != val {
		t.Fatal("Min returned inconsistent pair")
	}
}

func TestMinPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(1).Min(nil)
}

// TestFamilySeedDistinct: a banded family must hand every (band, row)
// coordinate its own seed — a repeat would correlate two signature rows and
// silently flatten the 1-(1-s^r)^b collision curve.
func TestFamilySeedDistinct(t *testing.T) {
	seen := make(map[uint64][2]int)
	for band := 0; band < 64; band++ {
		for row := 0; row < 64; row++ {
			s := FamilySeed(7, band, row)
			if prev, dup := seen[s]; dup {
				t.Fatalf("FamilySeed collision: (%d,%d) and (%d,%d)", band, row, prev[0], prev[1])
			}
			seen[s] = [2]int{band, row}
		}
	}
	if FamilySeed(7, 1, 2) == FamilySeed(8, 1, 2) {
		t.Error("different base seeds gave the same member seed")
	}
}

// TestFoldBucketSemantics: folding equal row-minima sequences must agree
// (that is what makes a band bucket), and the fold must be order- and
// value-sensitive so unequal signatures land apart.
func TestFoldBucketSemantics(t *testing.T) {
	fold := func(xs ...uint64) uint64 {
		acc := FoldInit
		for _, x := range xs {
			acc = Fold(acc, x)
		}
		return acc
	}
	if fold(3, 5, 9) != fold(3, 5, 9) {
		t.Fatal("equal signatures folded to different buckets")
	}
	if fold(3, 5) == fold(5, 3) {
		t.Error("fold is order-insensitive; permuted rows would collide")
	}
	if fold(3, 5) == fold(3, 6) {
		t.Error("fold ignored a differing row minimum")
	}
	if fold(0) == fold(0, 0) {
		t.Error("fold ignored signature length")
	}
}

func TestJaccardEstimate(t *testing.T) {
	// The probability two sets share a min-hash equals their Jaccard
	// similarity. Estimate over many seeds and compare.
	rng := rand.New(rand.NewSource(11))
	a := make([]uint32, 0, 40)
	b := make([]uint32, 0, 40)
	// |A∩B| = 20, |A∪B| = 60 → J = 1/3.
	for i := 0; i < 20; i++ {
		x := uint32(rng.Intn(100000))
		a = append(a, x)
		b = append(b, x)
	}
	for i := 0; i < 20; i++ {
		a = append(a, uint32(100000+rng.Intn(100000)))
		b = append(b, uint32(200000+rng.Intn(100000)))
	}
	const trials = 3000
	match := 0
	for s := 0; s < trials; s++ {
		h := New(uint64(s))
		_, ma := h.Min(a)
		_, mb := h.Min(b)
		if ma == mb {
			match++
		}
	}
	got := float64(match) / trials
	if math.Abs(got-1.0/3) > 0.05 {
		t.Fatalf("min-hash collision rate %.3f, want ~0.333", got)
	}
}
