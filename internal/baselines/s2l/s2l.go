// Package s2l reimplements S2L (Riondato, García-Soriano & Bonchi, "Graph
// summarization with quality guarantees", DMKD 2017): graph summarization as
// geometric clustering of the adjacency-matrix rows into k clusters. The
// paper's evaluation uses the L1 reconstruction error without
// dimensionality reduction (§V-A), i.e. k-median over binary rows, which we
// solve with Lloyd-style iterations: binary (majority-vote) centroids
// minimize the L1 objective exactly for fixed assignments.
//
// The L1 distance from a node row to a sparse centroid is computed in
// O(deg + |centroid|) without densifying: ‖row_u − c‖₁ = ‖c‖₁ +
// Σ_{v∈N(u)} (1 − 2·c_v).
package s2l

import (
	"fmt"
	"math/rand"

	"pegasus/internal/graph"
	"pegasus/internal/summary"
)

// Config parameterizes Summarize.
type Config struct {
	// K is the desired number of supernodes (clusters).
	K int
	// Iterations bounds Lloyd iterations (default 10).
	Iterations int
	// Seed drives the initialization.
	Seed int64
}

// Summarize runs S2L on g.
func Summarize(g *graph.Graph, cfg Config) (*summary.Summary, error) {
	n := g.NumNodes()
	if cfg.K < 1 || cfg.K > n {
		return nil, fmt.Errorf("s2l: K must be in [1,%d], got %d", n, cfg.K)
	}
	if cfg.Iterations == 0 {
		cfg.Iterations = 10
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Centroids are sparse maps node -> coordinate value in [0,1]; after
	// each Lloyd step they are binary medians (majority votes), so the
	// distance shortcut stays sparse.
	centroids := make([]map[graph.NodeID]float64, cfg.K)
	norm1 := make([]float64, cfg.K) // ‖c‖₁ cache

	// Initialize centroids from k distinct random node rows.
	perm := rng.Perm(n)
	for i := 0; i < cfg.K; i++ {
		c := make(map[graph.NodeID]float64)
		for _, v := range g.Neighbors(graph.NodeID(perm[i])) {
			c[v] = 1
		}
		centroids[i] = c
		norm1[i] = float64(len(c))
	}

	assign := make([]uint32, n)
	for iter := 0; iter < cfg.Iterations; iter++ {
		changed := 0
		for u := 0; u < n; u++ {
			bestD := 0.0
			best := uint32(0)
			for c := 0; c < cfg.K; c++ {
				d := norm1[c]
				for _, v := range g.Neighbors(graph.NodeID(u)) {
					d += 1 - 2*centroids[c][v]
				}
				if c == 0 || d < bestD {
					bestD, best = d, uint32(c)
				}
			}
			if assign[u] != best {
				assign[u] = best
				changed++
			}
		}
		if changed == 0 && iter > 0 {
			break
		}
		// Recompute binary median centroids: coordinate v is 1 iff more than
		// half of the cluster's members are adjacent to v.
		counts := make([]map[graph.NodeID]float64, cfg.K)
		sizes := make([]float64, cfg.K)
		for c := range counts {
			counts[c] = make(map[graph.NodeID]float64)
		}
		for u := 0; u < n; u++ {
			c := assign[u]
			sizes[c]++
			for _, v := range g.Neighbors(graph.NodeID(u)) {
				counts[c][v]++
			}
		}
		for c := 0; c < cfg.K; c++ {
			nc := make(map[graph.NodeID]float64)
			for v, cnt := range counts[c] {
				if 2*cnt > sizes[c] {
					nc[v] = 1
				}
			}
			if sizes[c] == 0 {
				// Re-seed an empty cluster with a random row to keep k
				// clusters alive.
				u := graph.NodeID(rng.Intn(n))
				for _, v := range g.Neighbors(u) {
					nc[v] = 1
				}
			}
			centroids[c] = nc
			norm1[c] = float64(len(nc))
		}
	}

	// Empty clusters may remain; FromPartitionDensity drops unused labels
	// automatically (labels are remapped densely).
	return summary.FromPartitionDensity(g, assign), nil
}
