package s2l

import (
	"testing"

	"pegasus/internal/gen"
	"pegasus/internal/graph"
	"pegasus/internal/metrics"
	"pegasus/internal/summary"
)

func TestSummarizeBasic(t *testing.T) {
	g := gen.BarabasiAlbert(120, 2, 1)
	s, err := Summarize(g, Config{K: 20, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumSupernodes() > 20 || s.NumSupernodes() < 1 {
		t.Fatalf("|S| = %d, want in [1,20]", s.NumSupernodes())
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestClusteringFindsBipartiteStructure(t *testing.T) {
	// K_{5,5}: rows of left nodes are identical (all right nodes) and vice
	// versa. k-median with k=2 must separate the sides exactly.
	b := graph.NewBuilder(10)
	for l := 0; l < 5; l++ {
		for r := 5; r < 10; r++ {
			b.AddEdge(graph.NodeID(l), graph.NodeID(r))
		}
	}
	g := b.Build()
	best := 1e18
	for seed := int64(0); seed < 5; seed++ {
		s, err := Summarize(g, Config{K: 2, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if e := metrics.ReconstructionError(g, s); e < best {
			best = e
		}
	}
	if best > 1e-9 {
		t.Fatalf("best reconstruction error over seeds = %v, want 0", best)
	}
}

func TestCommunityGraphClusters(t *testing.T) {
	// A strongly assortative SBM: S2L should produce a partition with
	// substantially lower error than a random partition of the same size.
	g := gen.PlantedPartition(gen.SBMConfig{Nodes: 200, Communities: 4, AvgDegree: 20, MixingP: 0.02}, 3)
	s, err := Summarize(g, Config{K: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	e := metrics.ReconstructionError(g, s)

	randomAssign := make([]uint32, g.NumNodes())
	for u := range randomAssign {
		randomAssign[u] = uint32((u * 7919) % 4)
	}
	sRand := summaryFromPartition(g, randomAssign)
	eRand := metrics.ReconstructionError(g, sRand)
	if e >= eRand {
		t.Fatalf("S2L error %v not below random-partition error %v", e, eRand)
	}
}

func TestInvalidConfig(t *testing.T) {
	g := gen.BarabasiAlbert(20, 2, 1)
	if _, err := Summarize(g, Config{K: 0}); err == nil {
		t.Error("accepted K=0")
	}
	if _, err := Summarize(g, Config{K: 21}); err == nil {
		t.Error("accepted K > |V|")
	}
}

func summaryFromPartition(g *graph.Graph, assign []uint32) *summary.Summary {
	return summary.FromPartitionDensity(g, assign)
}
