package saags

import "pegasus/internal/minhash"

// CMS is a count-min sketch over node IDs. SAAGs attaches one sketch per
// supernode summarizing the multiset of its members' neighbors; the
// inner-product estimate between two sketches approximates the number of
// common-neighbor pairs, which drives merge selection. The paper's
// evaluation uses width w = 50 and depth d = 2 (§V-A).
type CMS struct {
	width  int
	rows   [][]float64
	hashes []minhash.Hash
}

// NewCMS creates a width×depth sketch seeded deterministically.
func NewCMS(width, depth int, seed uint64) *CMS {
	c := &CMS{width: width}
	c.rows = make([][]float64, depth)
	c.hashes = make([]minhash.Hash, depth)
	for i := 0; i < depth; i++ {
		c.rows[i] = make([]float64, width)
		c.hashes[i] = minhash.New(seed + uint64(i)*0x9e3779b97f4a7c15)
	}
	return c
}

// Add increments the count of item by delta.
func (c *CMS) Add(item uint32, delta float64) {
	for i, h := range c.hashes {
		c.rows[i][h.Uint64(item)%uint64(c.width)] += delta
	}
}

// Count returns the (over)estimate of item's count: the minimum across rows.
func (c *CMS) Count(item uint32) float64 {
	est := c.rows[0][c.hashes[0].Uint64(item)%uint64(c.width)]
	for i := 1; i < len(c.rows); i++ {
		if v := c.rows[i][c.hashes[i].Uint64(item)%uint64(c.width)]; v < est {
			est = v
		}
	}
	return est
}

// Merge folds other into c. Both sketches must share width, depth and seed
// (guaranteed when created by the same summarizer run).
func (c *CMS) Merge(other *CMS) {
	for i := range c.rows {
		for j := range c.rows[i] {
			c.rows[i][j] += other.rows[i][j]
		}
	}
}

// InnerProduct estimates Σ_item countA(item)·countB(item): the min across
// rows of the row-wise dot products (the standard CMS join-size estimate).
func (c *CMS) InnerProduct(other *CMS) float64 {
	best := 0.0
	for i := range c.rows {
		dot := 0.0
		for j := range c.rows[i] {
			dot += c.rows[i][j] * other.rows[i][j]
		}
		if i == 0 || dot < best {
			best = dot
		}
	}
	return best
}

// Total returns the total mass inserted (exact: row sums are invariant).
func (c *CMS) Total() float64 {
	t := 0.0
	for _, v := range c.rows[0] {
		t += v
	}
	return t
}
