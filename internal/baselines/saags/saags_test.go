package saags

import (
	"testing"

	"pegasus/internal/gen"
)

func TestCMSCounts(t *testing.T) {
	c := NewCMS(64, 3, 1)
	c.Add(5, 2)
	c.Add(9, 1)
	if got := c.Count(5); got < 2 {
		t.Fatalf("Count(5) = %v, want >= 2 (CMS overestimates)", got)
	}
	if got := c.Count(9); got < 1 {
		t.Fatalf("Count(9) = %v, want >= 1", got)
	}
	if got := c.Count(123); got < 0 {
		t.Fatalf("Count(absent) = %v, want >= 0", got)
	}
	if got := c.Total(); got != 3 {
		t.Fatalf("Total = %v, want 3", got)
	}
}

func TestCMSMergeAndInnerProduct(t *testing.T) {
	a := NewCMS(128, 2, 7)
	b := NewCMS(128, 2, 7)
	for i := uint32(0); i < 10; i++ {
		a.Add(i, 1)
	}
	for i := uint32(5); i < 15; i++ {
		b.Add(i, 1)
	}
	// True inner product = 5 shared items; CMS overestimates.
	ip := a.InnerProduct(b)
	if ip < 5 {
		t.Fatalf("InnerProduct = %v, want >= 5", ip)
	}
	if ip > 30 {
		t.Fatalf("InnerProduct = %v, unreasonably above truth 5", ip)
	}
	a.Merge(b)
	if got := a.Total(); got != 20 {
		t.Fatalf("Total after merge = %v, want 20", got)
	}
}

func TestCMSSimilarSetsScoreHigher(t *testing.T) {
	// Sketch similarity must rank an identical neighborhood above a
	// disjoint one.
	base := NewCMS(256, 2, 3)
	same := NewCMS(256, 2, 3)
	diff := NewCMS(256, 2, 3)
	for i := uint32(0); i < 20; i++ {
		base.Add(i, 1)
		same.Add(i, 1)
		diff.Add(i+1000, 1)
	}
	if base.InnerProduct(same) <= base.InnerProduct(diff) {
		t.Fatal("identical neighborhood did not outscore disjoint one")
	}
}

func TestSummarizeReachesTarget(t *testing.T) {
	g := gen.BarabasiAlbert(150, 2, 5)
	s, err := Summarize(g, Config{TargetSupernodes: 40, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumSupernodes() != 40 {
		t.Fatalf("|S| = %d, want 40", s.NumSupernodes())
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestSummarizeDenseOutput(t *testing.T) {
	// SAAGs adds superedges without selection: every block with an edge
	// yields a superedge. Its summaries are denser (per supernode pair) than
	// the input graph is per node pair.
	g := gen.BarabasiAlbert(100, 3, 6)
	s, err := Summarize(g, Config{TargetSupernodes: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	maxP := 10 * 11 / 2
	if s.NumSuperedges() < maxP/4 {
		t.Fatalf("|P| = %d, expected a dense summary (max %d)", s.NumSuperedges(), maxP)
	}
}

func TestInvalidConfig(t *testing.T) {
	g := gen.BarabasiAlbert(20, 2, 1)
	if _, err := Summarize(g, Config{TargetSupernodes: 0}); err == nil {
		t.Error("accepted k=0")
	}
}
