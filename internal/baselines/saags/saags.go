// Package saags reimplements SAAGs (Beg et al., "Scalable Approximation
// Algorithm for Graph Summarization", PAKDD 2018): an agglomerative
// summarizer that repeatedly picks a pivot supernode, scores a logarithmic
// number of sampled partners by approximate neighborhood similarity — a
// count-min sketch stands in for exact common-neighbor counting — and merges
// the best-scoring pair. The paper's evaluation samples log n pairs and uses
// a CMS with w = 50, d = 2 (§V-A). Like k-GraSS, SAAGs adds superedges
// without selection, producing dense weighted summaries (Fig. 8).
package saags

import (
	"fmt"
	"math"
	"math/rand"

	"pegasus/internal/graph"
	"pegasus/internal/summary"
)

// Config parameterizes Summarize.
type Config struct {
	// TargetSupernodes is the desired |S|.
	TargetSupernodes int
	// Width and Depth size the count-min sketches (defaults 50 and 2).
	Width, Depth int
	// Seed drives sampling and sketch hashing.
	Seed int64
}

// Summarize runs SAAGs on g.
func Summarize(g *graph.Graph, cfg Config) (*summary.Summary, error) {
	n := g.NumNodes()
	if cfg.TargetSupernodes < 1 || cfg.TargetSupernodes > n {
		return nil, fmt.Errorf("saags: TargetSupernodes must be in [1,%d], got %d", n, cfg.TargetSupernodes)
	}
	if cfg.Width == 0 {
		cfg.Width = 50
	}
	if cfg.Depth == 0 {
		cfg.Depth = 2
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	superOf := make([]uint32, n)
	size := make([]float64, n)
	sketch := make([]*CMS, n)
	members := make([][]graph.NodeID, n)
	for u := 0; u < n; u++ {
		superOf[u] = uint32(u)
		size[u] = 1
		members[u] = []graph.NodeID{graph.NodeID(u)}
		sketch[u] = NewCMS(cfg.Width, cfg.Depth, uint64(cfg.Seed))
		for _, v := range g.Neighbors(graph.NodeID(u)) {
			sketch[u].Add(uint32(v), 1)
		}
	}
	alive := make([]uint32, n)
	for i := range alive {
		alive[i] = uint32(i)
	}

	// similarity scores a candidate merge: estimated shared-neighbor mass
	// normalized by the geometric mean of neighbor masses (cosine-like), so
	// large hubs don't absorb everything.
	similarity := func(a, b uint32) float64 {
		ta, tb := sketch[a].Total(), sketch[b].Total()
		if ta == 0 || tb == 0 {
			return 0
		}
		return sketch[a].InnerProduct(sketch[b]) / math.Sqrt(ta*tb)
	}

	for len(alive) > cfg.TargetSupernodes {
		nCand := int(math.Ceil(math.Log2(float64(len(alive) + 1))))
		if nCand < 1 {
			nCand = 1
		}
		ai := rng.Intn(len(alive))
		a := alive[ai]
		bestScore := math.Inf(-1)
		var bestB uint32
		found := false
		for i := 0; i < nCand; i++ {
			bi := rng.Intn(len(alive) - 1)
			if bi >= ai {
				bi++
			}
			b := alive[bi]
			if s := similarity(a, b); s > bestScore {
				bestScore, bestB, found = s, b, true
			}
		}
		if !found {
			continue
		}
		// Merge bestB into a.
		for _, u := range members[bestB] {
			superOf[u] = a
		}
		members[a] = append(members[a], members[bestB]...)
		members[bestB] = nil
		size[a] += size[bestB]
		sketch[a].Merge(sketch[bestB])
		sketch[bestB] = nil
		for i, x := range alive {
			if x == bestB {
				alive[i] = alive[len(alive)-1]
				alive = alive[:len(alive)-1]
				break
			}
		}
	}
	return summary.FromPartitionDensity(g, superOf), nil
}
