// Package kgrass reimplements k-GraSS (LeFevre & Terzi, "GraSS: Graph
// Structure Summarization", SDM 2010) with the SamplePairs strategy used in
// the paper's evaluation (§V-A: "we used the SamplePairs method with
// c = 1.0").
//
// GraSS greedily merges supernodes until a target count k remains, at each
// step sampling c·n candidate pairs (n = current supernode count) and
// merging the pair whose merger increases the expected L1 reconstruction
// error the least. Its summary lifts the adjacency matrix to supernode
// blocks with density weights, adding superedges without selection — which
// is why its summaries are dense and slow to query (Fig. 8).
package kgrass

import (
	"fmt"
	"math/rand"

	"pegasus/internal/graph"
	"pegasus/internal/summary"
)

// Config parameterizes Summarize.
type Config struct {
	// TargetSupernodes is the desired |S| (the paper sweeps 10%..90% of
	// |V|).
	TargetSupernodes int
	// C scales the number of sampled pairs per step (default 1.0).
	C float64
	// Seed drives sampling.
	Seed int64
}

// blockErr is the expected L1 error of encoding a block with e edges out of
// n possible pairs by its density e/n: Σ|A_uv − p| = 2·e·(n−e)/n.
func blockErr(e, n float64) float64 {
	if n <= 0 {
		return 0
	}
	return 2 * e * (n - e) / n
}

// Summarize runs k-GraSS on g.
func Summarize(g *graph.Graph, cfg Config) (*summary.Summary, error) {
	n := g.NumNodes()
	if cfg.TargetSupernodes < 1 || cfg.TargetSupernodes > n {
		return nil, fmt.Errorf("kgrass: TargetSupernodes must be in [1,%d], got %d", n, cfg.TargetSupernodes)
	}
	if cfg.C == 0 {
		cfg.C = 1.0
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	superOf := make([]uint32, n)
	size := make([]float64, n) // supernode sizes
	members := make([][]graph.NodeID, n)
	// edge counts between supernodes: per-slot adjacency count map. For the
	// intra count, key == slot (each intra edge counted once).
	cnt := make([]map[uint32]float64, n)
	for u := 0; u < n; u++ {
		superOf[u] = uint32(u)
		size[u] = 1
		members[u] = []graph.NodeID{graph.NodeID(u)}
		cnt[u] = make(map[uint32]float64, g.Degree(graph.NodeID(u)))
		for _, v := range g.Neighbors(graph.NodeID(u)) {
			cnt[u][uint32(v)] = 1
		}
	}
	alive := make([]uint32, n)
	for i := range alive {
		alive[i] = uint32(i)
	}

	pairs := func(a, b uint32) float64 {
		if a == b {
			return size[a] * (size[a] - 1) / 2
		}
		return size[a] * size[b]
	}

	// deltaErr evaluates the error increase of merging a and b.
	deltaErr := func(a, b uint32) float64 {
		before := 0.0
		after := 0.0
		sizeC := size[a] + size[b]
		// Blocks to common/cross neighbors.
		seen := make(map[uint32]bool, len(cnt[a])+len(cnt[b]))
		for x, ea := range cnt[a] {
			if x == a || x == b {
				continue
			}
			seen[x] = true
			eb := cnt[b][x]
			before += blockErr(ea, pairs(a, x)) + blockErr(eb, pairs(b, x))
			after += blockErr(ea+eb, sizeC*size[x])
		}
		for x, eb := range cnt[b] {
			if x == a || x == b || seen[x] {
				continue
			}
			before += blockErr(eb, pairs(b, x))
			after += blockErr(eb, sizeC*size[x])
		}
		// Intra block of the merged supernode: intra(a) + intra(b) + cross.
		eIntra := cnt[a][a] + cnt[b][b] + cnt[a][b]
		before += blockErr(cnt[a][a], pairs(a, a)) +
			blockErr(cnt[b][b], pairs(b, b)) +
			blockErr(cnt[a][b], pairs(a, b))
		after += blockErr(eIntra, sizeC*(sizeC-1)/2)
		return after - before
	}

	merge := func(a, b uint32) {
		// Fold b's counts into a.
		eIntra := cnt[a][a] + cnt[b][b] + cnt[a][b]
		delete(cnt[a], b)
		delete(cnt[b], a)
		for x, eb := range cnt[b] {
			if x == b {
				continue
			}
			cnt[a][x] += eb
			delete(cnt[x], b)
			if x != a {
				cnt[x][a] = cnt[a][x]
			}
		}
		if eIntra > 0 {
			cnt[a][a] = eIntra
		} else {
			delete(cnt[a], a)
		}
		cnt[b] = nil
		for _, u := range members[b] {
			superOf[u] = a
		}
		members[a] = append(members[a], members[b]...)
		members[b] = nil
		size[a] += size[b]
		size[b] = 0
	}

	for len(alive) > cfg.TargetSupernodes {
		nSamples := int(cfg.C * float64(len(alive)))
		if nSamples < 1 {
			nSamples = 1
		}
		bestDelta := 0.0
		var bestA, bestB uint32
		found := false
		for i := 0; i < nSamples; i++ {
			ai := rng.Intn(len(alive))
			bi := rng.Intn(len(alive) - 1)
			if bi >= ai {
				bi++
			}
			a, b := alive[ai], alive[bi]
			d := deltaErr(a, b)
			if !found || d < bestDelta {
				bestDelta, bestA, bestB, found = d, a, b, true
			}
		}
		if !found {
			break
		}
		merge(bestA, bestB)
		// Swap-remove bestB from alive.
		for i, x := range alive {
			if x == bestB {
				alive[i] = alive[len(alive)-1]
				alive = alive[:len(alive)-1]
				break
			}
		}
	}
	return summary.FromPartitionDensity(g, superOf), nil
}
