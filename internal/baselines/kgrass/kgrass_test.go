package kgrass

import (
	"testing"

	"pegasus/internal/gen"
	"pegasus/internal/graph"
	"pegasus/internal/metrics"
)

func TestSummarizeReachesTarget(t *testing.T) {
	g := gen.BarabasiAlbert(120, 2, 1)
	s, err := Summarize(g, Config{TargetSupernodes: 30, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumSupernodes() != 30 {
		t.Fatalf("|S| = %d, want 30", s.NumSupernodes())
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if !s.Weighted() {
		t.Error("k-GraSS summaries should carry density weights")
	}
}

func TestMergePrefersTwins(t *testing.T) {
	// K_{4,4}: merging twins is free; k-GraSS at k=2 must find the exact
	// bipartite summary (zero L1 error) almost surely with c=1 sampling over
	// enough steps.
	b := graph.NewBuilder(8)
	for l := 0; l < 4; l++ {
		for r := 4; r < 8; r++ {
			b.AddEdge(graph.NodeID(l), graph.NodeID(r))
		}
	}
	g := b.Build()
	best := 1e18
	for seed := int64(0); seed < 5; seed++ {
		s, err := Summarize(g, Config{TargetSupernodes: 2, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if e := metrics.ReconstructionError(g, s); e < best {
			best = e
		}
	}
	if best > 1e-9 {
		t.Fatalf("best reconstruction error over seeds = %v, want 0", best)
	}
}

func TestErrorGrowsAsKShrinks(t *testing.T) {
	g := gen.BarabasiAlbert(100, 3, 3)
	sBig, err := Summarize(g, Config{TargetSupernodes: 80, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sSmall, err := Summarize(g, Config{TargetSupernodes: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	eBig := metrics.ReconstructionError(g, sBig)
	eSmall := metrics.ReconstructionError(g, sSmall)
	if eSmall <= eBig {
		t.Fatalf("error at k=10 (%v) should exceed error at k=80 (%v)", eSmall, eBig)
	}
}

func TestInvalidConfig(t *testing.T) {
	g := gen.BarabasiAlbert(20, 2, 1)
	if _, err := Summarize(g, Config{TargetSupernodes: 0}); err == nil {
		t.Error("accepted k=0")
	}
	if _, err := Summarize(g, Config{TargetSupernodes: 99}); err == nil {
		t.Error("accepted k > |V|")
	}
}

func TestBlockErr(t *testing.T) {
	if blockErr(0, 10) != 0 {
		t.Error("empty block should have zero error")
	}
	if blockErr(10, 10) != 0 {
		t.Error("full block should have zero error")
	}
	if got := blockErr(5, 10); got != 5 {
		t.Errorf("half block error = %v, want 5", got)
	}
	if blockErr(3, 0) != 0 {
		t.Error("degenerate block should have zero error")
	}
}
