package bitio

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestUvarintRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	values := []uint64{0, 1, 127, 128, 300, 1 << 20, 1<<63 - 1, 42}
	for _, v := range values {
		w.PutUvarint(v)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	for _, want := range values {
		if got := r.Uvarint(); got != want {
			t.Fatalf("Uvarint = %d, want %d", got, want)
		}
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
}

func TestUvarintCompactness(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 100; i++ {
		w.PutUvarint(uint64(i)) // all < 128: 1 byte each
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 100 {
		t.Fatalf("100 small varints took %d bytes, want 100", buf.Len())
	}
	if w.BytesWritten() != 100 {
		t.Fatalf("BytesWritten = %d, want 100", w.BytesWritten())
	}
}

func TestDeltasRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	xs := []uint32{3, 4, 10, 11, 12, 500, 1 << 30}
	w.PutDeltas(xs)
	w.PutDeltas(nil) // empty sequence
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	got := r.Deltas(100)
	if len(got) != len(xs) {
		t.Fatalf("Deltas = %v, want %v", got, xs)
	}
	for i := range xs {
		if got[i] != xs[i] {
			t.Fatalf("Deltas = %v, want %v", got, xs)
		}
	}
	if empty := r.Deltas(100); len(empty) != 0 {
		t.Fatalf("empty Deltas = %v", empty)
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
}

func TestDeltasRejectNonIncreasing(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.PutDeltas([]uint32{5, 5})
	if w.Err() == nil {
		t.Fatal("non-increasing sequence accepted")
	}
	w2 := NewWriter(&buf)
	w2.PutDeltas([]uint32{7, 3})
	if w2.Err() == nil {
		t.Fatal("decreasing sequence accepted")
	}
}

func TestDeltasLengthCap(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.PutDeltas([]uint32{1, 2, 3, 4, 5})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	if got := r.Deltas(3); got != nil || r.Err() == nil {
		t.Fatal("length above cap accepted")
	}
}

func TestReaderTruncation(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.PutDeltas([]uint32{1, 100, 10000})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		r := NewReader(bytes.NewReader(full[:cut]))
		r.Deltas(10)
		if r.Err() == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}

func TestPropertyDeltasRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200)
		seen := map[uint32]bool{}
		xs := make([]uint32, 0, n)
		for len(xs) < n {
			v := uint32(rng.Intn(1 << 20))
			if !seen[v] {
				seen[v] = true
				xs = append(xs, v)
			}
		}
		sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
		var buf bytes.Buffer
		w := NewWriter(&buf)
		w.PutDeltas(xs)
		if err := w.Flush(); err != nil {
			return false
		}
		r := NewReader(&buf)
		got := r.Deltas(n + 1)
		if r.Err() != nil || len(got) != len(xs) {
			return false
		}
		for i := range xs {
			if got[i] != xs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64RoundTrip(t *testing.T) {
	values := []float64{0, 1, -1, 0.5, 1e-300, -1e300,
		math.MaxFloat64, math.SmallestNonzeroFloat64,
		math.Inf(1), math.Inf(-1), math.NaN(), math.Pi}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, v := range values {
		w.PutFloat64(v)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 8*len(values) {
		t.Fatalf("encoded %d floats in %d bytes, want %d", len(values), buf.Len(), 8*len(values))
	}
	r := NewReader(&buf)
	for i, v := range values {
		got := r.Float64()
		if r.Err() != nil {
			t.Fatalf("float %d: %v", i, r.Err())
		}
		// Compare bit patterns: NaN payloads must survive exactly.
		if math.Float64bits(got) != math.Float64bits(v) {
			t.Errorf("float %d: got %v (bits %x), want %v (bits %x)",
				i, got, math.Float64bits(got), v, math.Float64bits(v))
		}
	}
	if !r.Exhausted() {
		t.Error("stream not exhausted after reading every float")
	}
}

func TestFloat64Truncated(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.PutFloat64(math.Pi)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(bytes.NewReader(buf.Bytes()[:5]))
	r.Float64()
	if r.Err() == nil {
		t.Error("reading a truncated float succeeded")
	}
}

func TestExhausted(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte{7}))
	if r.Exhausted() {
		t.Error("non-empty stream reported exhausted")
	}
	// Exhausted consumed the remaining byte; now the stream is empty.
	if !NewReader(bytes.NewReader(nil)).Exhausted() {
		t.Error("empty stream not exhausted")
	}
	// A reader with a pending error never reports exhausted.
	bad := NewReader(bytes.NewReader([]byte{0x80})) // unterminated varint
	bad.Uvarint()
	if bad.Err() == nil {
		t.Fatal("unterminated varint read succeeded")
	}
	if bad.Exhausted() {
		t.Error("errored reader reported exhausted")
	}
}

// TestDeltasRejectWraparound: a gap varint near 2^64 must not wrap
// prev+v+1 around uint64 and smuggle a NON-increasing sequence past the
// uint32 range check — persist.Decode's canonicality contract depends on
// Deltas only ever returning strictly increasing values.
func TestDeltasRejectWraparound(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.PutUvarint(6)                  // claimed length
	w.PutUvarint(5)                  // first value
	w.PutUvarint(math.MaxUint64 - 5) // gap: 5 + (2^64-6) + 1 wraps to 0
	for _, g := range []uint64{0, 0, 0, 0} {
		w.PutUvarint(g)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(bytes.NewReader(buf.Bytes()))
	if got := r.Deltas(10); r.Err() == nil {
		t.Fatalf("wraparound sequence decoded as %v", got)
	}
}
