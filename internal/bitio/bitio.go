// Package bitio provides the variable-length integer and delta coding used
// for compact on-disk graph and summary storage. The paper (§I, footnote 1)
// notes a summary graph "can be further compressed using any
// graph-compression technique"; sorted adjacency lists delta+varint encode
// to a fraction of their fixed-width size, in the spirit of the WebGraph
// framework [1].
package bitio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// ErrMalformed marks a stream that violates the coding invariants (varint
// overflow, length cap exceeded, non-increasing delta sequence). Every
// reader-side failure other than plain I/O errors wraps it, so callers —
// internal/persist wraps it once more into ErrCorrupt — can classify
// decode failures with errors.Is.
var ErrMalformed = errors.New("bitio: malformed stream")

// Writer encodes varints and delta-coded sequences.
type Writer struct {
	w   *bufio.Writer
	n   int64
	err error
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// PutUvarint writes x in LEB128 variable-length encoding.
//
//pegasus:hotpath codec inner loop: one call per member/neighbor entry
func (w *Writer) PutUvarint(x uint64) {
	if w.err != nil {
		return
	}
	for x >= 0x80 {
		if w.err = w.w.WriteByte(byte(x) | 0x80); w.err != nil {
			return
		}
		w.n++
		x >>= 7
	}
	if w.err = w.w.WriteByte(byte(x)); w.err == nil {
		w.n++
	}
}

// PutFloat64 writes the IEEE-754 bit pattern of x as 8 little-endian bytes.
// Float bits spread across the whole word, so a varint would usually cost
// more than the fixed width; the exact bit pattern round-trips (including
// NaN payloads and infinities).
func (w *Writer) PutFloat64(x float64) {
	if w.err != nil {
		return
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
	n, err := w.w.Write(buf[:])
	w.n += int64(n)
	w.err = err
}

// PutDeltas writes a strictly increasing uint32 sequence as a count followed
// by first value and successive gaps (gap-1 since gaps are >= 1).
//
//pegasus:hotpath codec inner loop: one call per adjacency list
func (w *Writer) PutDeltas(xs []uint32) {
	w.PutUvarint(uint64(len(xs)))
	prev := uint32(0)
	for i, x := range xs {
		if i == 0 {
			w.PutUvarint(uint64(x))
		} else {
			if x <= prev {
				//lint:typederr encoder-misuse error (caller handed a non-increasing sequence), not an input-bytes failure
				w.err = fmt.Errorf("bitio: sequence not strictly increasing at %d (%d <= %d)", i, x, prev) //lint:hotalloc cold error exit: fires at most once, then the writer is poisoned
				return
			}
			w.PutUvarint(uint64(x-prev) - 1)
		}
		prev = x
	}
}

// BytesWritten returns the number of payload bytes emitted so far.
func (w *Writer) BytesWritten() int64 { return w.n }

// Flush flushes buffered output and reports any deferred error.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// Err returns the first error encountered.
func (w *Writer) Err() error { return w.err }

// Reader decodes what Writer encodes.
type Reader struct {
	r   *bufio.Reader
	err error
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// Uvarint reads one LEB128 varint.
//
//pegasus:hotpath codec inner loop: one call per member/neighbor entry
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	var x uint64
	var shift uint
	for {
		b, err := r.r.ReadByte()
		if err != nil {
			r.err = err
			return 0
		}
		if shift >= 64 {
			//lint:hotalloc cold error exit: fires at most once, then the reader is poisoned
			r.err = fmt.Errorf("varint overflow: %w", ErrMalformed)
			return 0
		}
		x |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return x
		}
		shift += 7
	}
}

// Float64 reads a float written by PutFloat64.
func (r *Reader) Float64() float64 {
	if r.err != nil {
		return 0
	}
	var buf [8]byte
	if _, err := io.ReadFull(r.r, buf[:]); err != nil {
		r.err = err
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
}

// Exhausted reports whether the stream has no bytes left. It consumes one
// byte when the stream is non-empty, so call it only after the final read —
// it is the decoder's trailing-garbage check.
func (r *Reader) Exhausted() bool {
	if r.err != nil {
		return false
	}
	_, err := r.r.ReadByte()
	return err == io.EOF
}

// Deltas reads a sequence written by PutDeltas. maxLen guards against
// corrupt counts.
//
//pegasus:hotpath codec inner loop: one call per adjacency list
func (r *Reader) Deltas(maxLen int) []uint32 {
	n := int(r.Uvarint())
	if r.err != nil {
		return nil
	}
	if n < 0 || n > maxLen {
		r.err = fmt.Errorf("sequence length %d exceeds cap %d: %w", n, maxLen, ErrMalformed)
		return nil
	}
	out := make([]uint32, n)
	prev := uint64(0)
	for i := 0; i < n; i++ {
		v := r.Uvarint()
		if r.err != nil {
			return nil
		}
		// Reject the gap before adding: a near-2^64 varint would wrap
		// prev+v+1 around uint64 and slip a NON-increasing sequence past the
		// range check below — decoders rely on Deltas never doing that.
		if v > 0xffffffff {
			//lint:hotalloc cold error exit: fires at most once, then the reader is poisoned
			r.err = fmt.Errorf("value overflows uint32: %w", ErrMalformed)
			return nil
		}
		if i == 0 {
			prev = v
		} else {
			prev = prev + v + 1
		}
		if prev > 0xffffffff {
			//lint:hotalloc cold error exit: fires at most once, then the reader is poisoned
			r.err = fmt.Errorf("value overflows uint32: %w", ErrMalformed)
			return nil
		}
		out[i] = uint32(prev)
	}
	return out
}

// Err returns the first error encountered.
func (r *Reader) Err() error { return r.err }
