package distributed

import (
	"math"
	"testing"

	"pegasus/internal/core"
	"pegasus/internal/gen"
	"pegasus/internal/graph"
	"pegasus/internal/metrics"
	"pegasus/internal/partition"
	"pegasus/internal/queries"
)

func clusterGraph(seed int64) *graph.Graph {
	g := gen.PlantedPartition(gen.SBMConfig{Nodes: 240, Communities: 4, AvgDegree: 12, MixingP: 0.08}, seed)
	lcc, _ := graph.LargestComponent(g)
	return lcc
}

func TestBuildSummaryCluster(t *testing.T) {
	g := clusterGraph(1)
	m := 4
	labels := partition.Partition(g, m, partition.MethodLouvain, 2)
	budget := 0.5 * g.SizeBits()
	c, err := BuildSummaryCluster(g, labels, m, budget, PegasusSummarizer(core.Config{Seed: 3}))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Machines) != m {
		t.Fatalf("machines = %d, want %d", len(c.Machines), m)
	}
	for i, mc := range c.Machines {
		if mc.Summary == nil {
			t.Fatalf("machine %d has no summary", i)
		}
		if mc.SizeBits() > budget+1e-6 {
			t.Errorf("machine %d exceeds budget: %.0f > %.0f", i, mc.SizeBits(), budget)
		}
	}
	if c.MaxMachineBits() > budget+1e-6 {
		t.Error("MaxMachineBits exceeds budget")
	}
}

func TestRoutingFollowsPartition(t *testing.T) {
	g := clusterGraph(2)
	m := 4
	labels := partition.RandomBalanced(g.NumNodes(), m, 5)
	budget := 0.6 * g.SizeBits()
	c, err := BuildSummaryCluster(g, labels, m, budget, PegasusSummarizer(core.Config{Seed: 1}))
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.NumNodes(); u += 17 {
		i, err := c.Route(graph.NodeID(u))
		if err != nil {
			t.Fatal(err)
		}
		if i != labels[u] {
			t.Fatalf("node %d routed to %d, want %d", u, i, labels[u])
		}
	}
	if _, err := c.Route(graph.NodeID(99999)); err == nil {
		t.Error("out-of-range query accepted")
	}
	for u := 0; u < g.NumNodes(); u += 29 {
		mc, err := c.RouteMachine(graph.NodeID(u))
		if err != nil {
			t.Fatal(err)
		}
		if mc != c.Machines[labels[u]] {
			t.Fatalf("node %d routed to the wrong machine", u)
		}
	}
	if _, err := c.RouteMachine(graph.NodeID(99999)); err == nil {
		t.Error("RouteMachine accepted an out-of-range query")
	}
}

func TestClusterQueriesRun(t *testing.T) {
	g := clusterGraph(3)
	m := 2
	labels := partition.Partition(g, m, partition.MethodLouvain, 4)
	budget := 0.5 * g.SizeBits()
	c, err := BuildSummaryCluster(g, labels, m, budget, PegasusSummarizer(core.Config{Seed: 5}))
	if err != nil {
		t.Fatal(err)
	}
	q := graph.NodeID(7)
	r, err := c.RWR(q, queries.RWRConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r) != g.NumNodes() {
		t.Fatalf("RWR vector length %d, want %d", len(r), g.NumNodes())
	}
	h, err := c.HOP(q)
	if err != nil {
		t.Fatal(err)
	}
	if h[q] != 0 {
		t.Fatal("HOP at query node must be 0")
	}
	p, err := c.PHP(q, queries.PHPConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if p[q] != 1 {
		t.Fatal("PHP at query node must be 1")
	}
}

func TestComposeSubgraphBudget(t *testing.T) {
	g := clusterGraph(4)
	budget := 0.3 * g.SizeBits()
	sub := ComposeSubgraph(g, []graph.NodeID{0, 1, 2}, budget)
	if sub.NumNodes() != g.NumNodes() {
		t.Fatalf("subgraph node space %d, want %d", sub.NumNodes(), g.NumNodes())
	}
	if sub.SizeBits() > budget+1e-6 {
		t.Fatalf("subgraph size %.0f exceeds budget %.0f", sub.SizeBits(), budget)
	}
	// Edges near the subset are preferred: node 0's own edges survive.
	if sub.Degree(0) == 0 && g.Degree(0) > 0 {
		t.Error("closest edges (incident to subset) were dropped")
	}
	// Large budget returns the graph as-is.
	full := ComposeSubgraph(g, []graph.NodeID{0}, 10*g.SizeBits())
	if full.NumEdges() != g.NumEdges() {
		t.Error("oversized budget should keep every edge")
	}
}

func TestBuildSubgraphCluster(t *testing.T) {
	g := clusterGraph(5)
	m := 4
	labels := partition.Partition(g, m, partition.MethodBLP, 6)
	budget := 0.4 * g.SizeBits()
	c, err := BuildSubgraphCluster(g, labels, m, budget)
	if err != nil {
		t.Fatal(err)
	}
	for i, mc := range c.Machines {
		if mc.Subgraph == nil {
			t.Fatalf("machine %d has no subgraph", i)
		}
		if mc.SizeBits() > budget+1e-6 {
			t.Errorf("machine %d exceeds budget", i)
		}
	}
	// Queries answer locally.
	if _, err := c.RWR(3, queries.RWRConfig{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.HOP(3); err != nil {
		t.Fatal(err)
	}
}

func TestValidationErrors(t *testing.T) {
	g := clusterGraph(6)
	if _, err := BuildSummaryCluster(g, []uint32{0}, 2, 100, PegasusSummarizer(core.Config{})); err == nil {
		t.Error("short labels accepted")
	}
	bad := make([]uint32, g.NumNodes())
	bad[0] = 99
	if _, err := BuildSummaryCluster(g, bad, 2, 100, PegasusSummarizer(core.Config{})); err == nil {
		t.Error("out-of-range label accepted")
	}
	if _, err := BuildSubgraphCluster(g, bad, 2, 100); err == nil {
		t.Error("out-of-range label accepted by subgraph cluster")
	}
}

// TestPersonalizationHelpsLocally is the unit-level version of Fig. 12's
// claim: a machine's personalized summary answers queries on its own nodes
// more accurately than a summary personalized elsewhere.
func TestPersonalizationHelpsLocally(t *testing.T) {
	g := clusterGraph(7)
	m := 2
	labels := partition.Partition(g, m, partition.MethodLouvain, 8)
	budget := 0.35 * g.SizeBits()
	c, err := BuildSummaryCluster(g, labels, m, budget, PegasusSummarizer(core.Config{Seed: 9, Alpha: 1.5}))
	if err != nil {
		t.Fatal(err)
	}
	// Pick a query node in part 0 and compare RWR SMAPE answered on machine
	// 0 (personalized to it) vs machine 1 (personalized away from it),
	// averaged over several query nodes for stability.
	var own, other, count float64
	for u := 0; u < g.NumNodes() && count < 12; u++ {
		if labels[u] != 0 {
			continue
		}
		q := graph.NodeID(u)
		truth, err := queries.GraphRWR(g, q, queries.RWRConfig{})
		if err != nil {
			t.Fatal(err)
		}
		a0, err := queries.SummaryRWR(c.Machines[0].Summary, q, queries.RWRConfig{})
		if err != nil {
			t.Fatal(err)
		}
		a1, err := queries.SummaryRWR(c.Machines[1].Summary, q, queries.RWRConfig{})
		if err != nil {
			t.Fatal(err)
		}
		s0, _ := metrics.SMAPE(truth, a0)
		s1, _ := metrics.SMAPE(truth, a1)
		own += s0
		other += s1
		count++
	}
	if count == 0 {
		t.Skip("no nodes in part 0")
	}
	own /= count
	other /= count
	if math.IsNaN(own) || math.IsNaN(other) {
		t.Fatal("NaN SMAPE")
	}
	if own >= other {
		t.Fatalf("own-machine SMAPE %.4f not better than other-machine %.4f", own, other)
	}
}
