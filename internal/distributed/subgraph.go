package distributed

import (
	"fmt"
	"math"
	"sort"

	"pegasus/internal/graph"
)

// ComposeSubgraph builds the §IV "potential alternative" artifact for one
// machine: a subgraph of size ≤ budgetBits (Eq. 4 accounting: 2·log2|V| bits
// per edge) composed of the edges closest to the node subset — edges are
// added in increasing order of hop distance from the subset until the budget
// is exhausted. The result spans the full node-ID space.
func ComposeSubgraph(g *graph.Graph, subset []graph.NodeID, budgetBits float64) *graph.Graph {
	n := g.NumNodes()
	if n <= 1 {
		return g
	}
	bitsPerEdge := 2 * math.Log2(float64(n))
	capEdges := int64(budgetBits / bitsPerEdge)
	if capEdges >= g.NumEdges() {
		return g
	}
	dist := graph.MultiSourceBFS(g, subset)
	type de struct {
		d    int32
		u, v graph.NodeID
	}
	edges := make([]de, 0, g.NumEdges())
	g.Edges(func(u, v graph.NodeID) bool {
		du, dv := dist[u], dist[v]
		d := du
		if dv < d && dv >= 0 || d < 0 {
			d = dv
		}
		if d < 0 {
			d = math.MaxInt32 // disconnected from the subset: last resort
		}
		edges = append(edges, de{d, u, v})
		return true
	})
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].d != edges[j].d {
			return edges[i].d < edges[j].d
		}
		if edges[i].u != edges[j].u {
			return edges[i].u < edges[j].u
		}
		return edges[i].v < edges[j].v
	})
	b := graph.NewBuilder(n)
	for i := int64(0); i < capEdges && i < int64(len(edges)); i++ {
		b.AddEdge(edges[i].u, edges[i].v)
	}
	sub := b.Build()
	if sub.NumNodes() < n {
		// Builder shrinks to max seen ID; force the full node space by
		// rebuilding with the exact count.
		return graph.FromEdges(n, sub.EdgeList())
	}
	return sub
}

// BuildSubgraphCluster builds the graph-partitioning alternative cluster:
// machine i holds the size-bounded subgraph composed of the edges closest to
// part i.
func BuildSubgraphCluster(g *graph.Graph, labels []uint32, m int, budgetBits float64) (*Cluster, error) {
	if len(labels) != g.NumNodes() {
		return nil, fmt.Errorf("distributed: labels length %d != |V| %d", len(labels), g.NumNodes())
	}
	parts := make([][]graph.NodeID, m)
	for u, l := range labels {
		if int(l) >= m {
			return nil, fmt.Errorf("distributed: label %d out of range (m=%d)", l, m)
		}
		parts[l] = append(parts[l], graph.NodeID(u))
	}
	c := &Cluster{Assign: labels, Machines: make([]*Machine, m)}
	for i := 0; i < m; i++ {
		if len(parts[i]) == 0 {
			c.Machines[i] = &Machine{Subgraph: graph.FromEdges(g.NumNodes(), nil)}
			continue
		}
		c.Machines[i] = &Machine{Subgraph: ComposeSubgraph(g, parts[i], budgetBits)}
	}
	return c, nil
}
