package distributed

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"pegasus/internal/core"
	"pegasus/internal/gen"
	"pegasus/internal/graph"
	"pegasus/internal/persist"
)

// persistTestSetup builds the shared fixtures of the store-integration
// tests: a 4-part graph, a keyed summarizer config, and a fresh store.
func persistTestSetup(t *testing.T) (*graph.Graph, []uint32, core.Config, string, *persist.Store) {
	t.Helper()
	g := gen.PlantedPartition(gen.SBMConfig{Nodes: 160, Communities: 4, AvgDegree: 8, MixingP: 0.05}, 5)
	labels := make([]uint32, g.NumNodes())
	for u := range labels {
		labels[u] = uint32(u % 4)
	}
	cfg := core.Config{Seed: 9, Workers: 1}
	key, ok := cfg.ContentKey()
	if !ok {
		t.Fatal("config unexpectedly unkeyable")
	}
	st, err := persist.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return g, labels, cfg, key, st
}

func writeAll(t *testing.T, c *Cluster) [][]byte {
	t.Helper()
	out := make([][]byte, len(c.Machines))
	for i, m := range c.Machines {
		var b bytes.Buffer
		if err := m.Summary.Write(&b); err != nil {
			t.Fatal(err)
		}
		out[i] = b.Bytes()
	}
	return out
}

// TestClusterBuildPersistsAndWarmLoads: a keyed build with a store files one
// artifact per shard; a second build over the same store decodes every shard
// (zero summarizations) and the loaded summaries are byte-identical to the
// built ones.
func TestClusterBuildPersistsAndWarmLoads(t *testing.T) {
	g, labels, cfg, key, st := persistTestSetup(t)
	budget := 0.5 * g.SizeBits()
	sum := PegasusSummarizer(cfg)

	cold, stats, err := BuildSummaryClusterCtx(context.Background(), g, labels, 4, budget, sum,
		BuildOpts{ConfigKey: key, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rebuilt != 4 || stats.Loaded != 0 {
		t.Fatalf("cold build: rebuilt=%d loaded=%d, want 4/0", stats.Rebuilt, stats.Loaded)
	}
	keys, err := st.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 4 {
		t.Fatalf("store holds %d artifacts after the build, want 4", len(keys))
	}
	for i, k := range cold.Keys {
		if _, err := st.Path(k); err != nil {
			t.Fatalf("shard %d key %q not storable: %v", i, k, err)
		}
	}

	warm, stats, err := BuildSummaryClusterCtx(context.Background(), g, labels, 4, budget, sum,
		BuildOpts{ConfigKey: key, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Loaded != 4 || stats.Rebuilt != 0 || stats.Reused != 0 {
		t.Fatalf("warm build: loaded=%d rebuilt=%d reused=%d, want 4/0/0", stats.Loaded, stats.Rebuilt, stats.Reused)
	}
	for i := range stats.LoadedShards {
		if !stats.LoadedShards[i] {
			t.Errorf("LoadedShards[%d] = false on a fully warm build", i)
		}
	}
	cw, ww := writeAll(t, cold), writeAll(t, warm)
	for i := range cw {
		if !bytes.Equal(cw[i], ww[i]) {
			t.Errorf("shard %d: disk-loaded summary differs from the built one", i)
		}
	}
}

// TestPrevTransplantBeatsStore: a shard satisfiable from Prev must be
// transplanted in memory, not re-decoded from disk — the store stays cold.
func TestPrevTransplantBeatsStore(t *testing.T) {
	g, labels, cfg, key, st := persistTestSetup(t)
	budget := 0.5 * g.SizeBits()
	sum := PegasusSummarizer(cfg)

	prev, _, err := BuildSummaryClusterCtx(context.Background(), g, labels, 4, budget, sum,
		BuildOpts{ConfigKey: key, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	hitsBefore := st.Stats().Hits
	next, stats, err := BuildSummaryClusterCtx(context.Background(), g, labels, 4, budget, sum,
		BuildOpts{ConfigKey: key, Store: st, Prev: prev})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Reused != 4 || stats.Loaded != 0 {
		t.Fatalf("reused=%d loaded=%d, want 4/0", stats.Reused, stats.Loaded)
	}
	if got := st.Stats().Hits; got != hitsBefore {
		t.Errorf("store hits went %d -> %d; Prev transplants must not touch disk", hitsBefore, got)
	}
	for i := range next.Machines {
		if next.Machines[i] != prev.Machines[i] {
			t.Errorf("shard %d: not the same machine pointer", i)
		}
	}
}

// TestCorruptArtifactFallsBackToRebuild: damaging one shard's artifact —
// flip, truncation, wrong magic, zero length — demotes exactly that shard
// to a rebuild, the result is bit-identical to a clean build, and the
// rebuild's write-back heals the file.
func TestCorruptArtifactFallsBackToRebuild(t *testing.T) {
	g, labels, cfg, key, st := persistTestSetup(t)
	budget := 0.5 * g.SizeBits()
	sum := PegasusSummarizer(cfg)

	cold, _, err := BuildSummaryClusterCtx(context.Background(), g, labels, 4, budget, sum,
		BuildOpts{ConfigKey: key, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	want := writeAll(t, cold)

	corruptions := []struct {
		name string
		mut  func(raw []byte) []byte
	}{
		{"flipped-byte", func(raw []byte) []byte { raw[len(raw)/2] ^= 0x20; return raw }},
		{"truncated", func(raw []byte) []byte { return raw[:len(raw)/3] }},
		{"wrong-magic", func(raw []byte) []byte { copy(raw, "JUNK"); return raw }},
		{"zero-length", func([]byte) []byte { return nil }},
	}
	for shard, c := range corruptions {
		path, err := st.Path(cold.Keys[shard])
		if err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, c.mut(raw), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	warm, stats, err := BuildSummaryClusterCtx(context.Background(), g, labels, 4, budget, sum,
		BuildOpts{ConfigKey: key, Store: st})
	if err != nil {
		t.Fatalf("build over a corrupted store: %v", err)
	}
	if stats.Rebuilt != 4 || stats.Loaded != 0 {
		t.Fatalf("all four artifacts were corrupted: rebuilt=%d loaded=%d, want 4/0", stats.Rebuilt, stats.Loaded)
	}
	got := writeAll(t, warm)
	for i := range want {
		if !bytes.Equal(want[i], got[i]) {
			t.Errorf("shard %d: rebuild over corrupt store differs from clean build", i)
		}
	}
	// The write-back healed every file: the next build is fully warm.
	healed, stats, err := BuildSummaryClusterCtx(context.Background(), g, labels, 4, budget, sum,
		BuildOpts{ConfigKey: key, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Loaded != 4 {
		t.Fatalf("after healing: loaded=%d, want 4", stats.Loaded)
	}
	got = writeAll(t, healed)
	for i := range want {
		if !bytes.Equal(want[i], got[i]) {
			t.Errorf("shard %d: healed artifact differs from clean build", i)
		}
	}
}

// TestUnkeyableBuildSkipsStore pins the satellite fix: a build whose config
// cannot be fingerprinted (no ConfigKey — e.g. a custom Threshold policy)
// must not write artifacts at all, because they would be filed under no
// reachable name.
func TestUnkeyableBuildSkipsStore(t *testing.T) {
	g, labels, cfg, _, st := persistTestSetup(t)
	budget := 0.5 * g.SizeBits()
	// A custom threshold policy makes core.Config.ContentKey bail; callers
	// then pass an empty ConfigKey, exactly as pegasus.BuildSummaryClusterIncremental does.
	unkeyable := cfg
	unkeyable.Threshold = core.FixedSchedule{}
	if _, ok := unkeyable.ContentKey(); ok {
		t.Fatal("config with custom Threshold should be unkeyable")
	}
	c, stats, err := BuildSummaryClusterCtx(context.Background(), g, labels, 4, budget,
		PegasusSummarizer(unkeyable), BuildOpts{ConfigKey: "", Store: st})
	if err != nil {
		t.Fatal(err)
	}
	if c.Keys != nil {
		t.Errorf("unkeyable build recorded keys %v", c.Keys)
	}
	if stats.Loaded != 0 || stats.Rebuilt != 4 {
		t.Errorf("unkeyable build: loaded=%d rebuilt=%d, want 0/4", stats.Loaded, stats.Rebuilt)
	}
	entries, err := os.ReadDir(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		t.Errorf("unkeyable build left file %s in the store", filepath.Join(st.Dir(), e.Name()))
	}
	s := st.Stats()
	if s.Puts != 0 || s.Hits != 0 || s.Misses != 0 {
		t.Errorf("unkeyable build touched the store: %+v", s)
	}
}
