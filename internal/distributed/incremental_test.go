package distributed

import (
	"bytes"
	"context"
	"testing"

	"pegasus/internal/core"
	"pegasus/internal/graph"
	"pegasus/internal/partition"
	"pegasus/internal/summary"
)

// incrementalInput builds the shared fixture: a 4-part partition and a
// fingerprintable summarizer config.
func incrementalInput(t *testing.T, seed int64) (*graph.Graph, []uint32, int, float64, core.Config, string) {
	t.Helper()
	g := clusterGraph(seed)
	m := 4
	labels := partition.RandomBalanced(g.NumNodes(), m, 1)
	base := core.Config{Seed: 3, Workers: 1}
	key, ok := base.ContentKey()
	if !ok {
		t.Fatal("default config not fingerprintable")
	}
	return g, labels, m, 0.5 * g.SizeBits(), base, key
}

// dropHalfOfPart returns a target list covering every node except every
// second member of the given part — a change whose resolved target set
// differs on exactly one shard.
func dropHalfOfPart(g *graph.Graph, labels []uint32, part uint32) []graph.NodeID {
	targets := make([]graph.NodeID, 0, g.NumNodes())
	inPart := 0
	for u := 0; u < g.NumNodes(); u++ {
		if labels[u] == part {
			inPart++
			if inPart%2 == 0 {
				continue
			}
		}
		targets = append(targets, graph.NodeID(u))
	}
	return targets
}

func summaryBytes(t *testing.T, s *summary.Summary) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestIncrementalRebuildReusesBitIdentical is the tentpole's safety pin: a
// 1-of-4-shard targets change must rebuild exactly that shard, transplant
// the other three (pointer-equal machines), and produce a cluster
// byte-identical to a from-scratch build of the same configuration.
func TestIncrementalRebuildReusesBitIdentical(t *testing.T) {
	g, labels, m, budget, base, key := incrementalInput(t, 21)
	sum := PegasusSummarizer(base)
	ctx := context.Background()

	prev, st, err := BuildSummaryClusterCtx(ctx, g, labels, m, budget, sum,
		BuildOpts{Workers: 1, ConfigKey: key})
	if err != nil {
		t.Fatal(err)
	}
	if st.Rebuilt != m || st.Reused != 0 {
		t.Fatalf("initial build: rebuilt=%d reused=%d, want %d/0", st.Rebuilt, st.Reused, m)
	}
	if len(prev.Keys) != m {
		t.Fatalf("initial build recorded %d keys, want %d", len(prev.Keys), m)
	}

	targets := dropHalfOfPart(g, labels, 0)
	incr, st, err := BuildSummaryClusterCtx(ctx, g, labels, m, budget, sum,
		BuildOpts{Workers: 1, Targets: targets, ConfigKey: key, Prev: prev})
	if err != nil {
		t.Fatal(err)
	}
	if st.Rebuilt != 1 || st.Reused != m-1 {
		t.Fatalf("incremental build: rebuilt=%d reused=%d, want 1/%d", st.Rebuilt, st.Reused, m-1)
	}
	if st.ReusedShards[0] {
		t.Error("shard 0 (the changed part) marked reused")
	}
	for i := 1; i < m; i++ {
		if !st.ReusedShards[i] {
			t.Errorf("shard %d not marked reused", i)
		}
		if incr.Machines[i] != prev.Machines[i] {
			t.Errorf("shard %d was not transplanted (machine pointer differs)", i)
		}
	}
	if incr.Machines[0] == prev.Machines[0] {
		t.Error("shard 0 kept the stale machine despite a changed target set")
	}

	// The from-scratch build of the identical configuration must agree
	// byte-for-byte on every shard — reuse is undetectable in the artifact.
	scratch, st2, err := BuildSummaryClusterCtx(ctx, g, labels, m, budget, sum,
		BuildOpts{Workers: 1, Targets: targets, ConfigKey: key})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Rebuilt != m {
		t.Fatalf("scratch build rebuilt %d shards, want %d", st2.Rebuilt, m)
	}
	for i := 0; i < m; i++ {
		a := summaryBytes(t, incr.Machines[i].Summary)
		b := summaryBytes(t, scratch.Machines[i].Summary)
		if !bytes.Equal(a, b) {
			t.Errorf("shard %d: transplanted artifact differs from from-scratch build", i)
		}
		if incr.Keys[i] != scratch.Keys[i] {
			t.Errorf("shard %d: key mismatch between incremental and scratch builds", i)
		}
	}
}

// TestIncrementalRebuildMinimalTargets pins the operator workflow the docs
// show: a target list naming only nodes of one part — without enumerating
// any other part — re-keys exactly that shard, because untouched parts
// keep their whole-part personalization.
func TestIncrementalRebuildMinimalTargets(t *testing.T) {
	g, labels, m, budget, base, key := incrementalInput(t, 25)
	sum := PegasusSummarizer(base)
	ctx := context.Background()
	prev, _, err := BuildSummaryClusterCtx(ctx, g, labels, m, budget, sum,
		BuildOpts{Workers: 1, ConfigKey: key})
	if err != nil {
		t.Fatal(err)
	}
	// Two nodes of part 2, nothing else.
	var targets []graph.NodeID
	for u := 0; u < g.NumNodes() && len(targets) < 2; u++ {
		if labels[u] == 2 {
			targets = append(targets, graph.NodeID(u))
		}
	}
	incr, st, err := BuildSummaryClusterCtx(ctx, g, labels, m, budget, sum,
		BuildOpts{Workers: 1, Targets: targets, ConfigKey: key, Prev: prev})
	if err != nil {
		t.Fatal(err)
	}
	if st.Rebuilt != 1 || st.Reused != m-1 {
		t.Fatalf("minimal targets: rebuilt=%d reused=%d, want 1/%d", st.Rebuilt, st.Reused, m-1)
	}
	if st.ReusedShards[2] {
		t.Error("shard 2 (owning the targets) marked reused")
	}
	if incr.Machines[2] == prev.Machines[2] {
		t.Error("shard 2 kept the stale machine despite a changed target set")
	}
}

// TestIncrementalRebuildNoop: rebuilding with unchanged inputs transplants
// every shard and builds nothing.
func TestIncrementalRebuildNoop(t *testing.T) {
	g, labels, m, budget, base, key := incrementalInput(t, 22)
	sum := PegasusSummarizer(base)
	ctx := context.Background()
	prev, _, err := BuildSummaryClusterCtx(ctx, g, labels, m, budget, sum,
		BuildOpts{Workers: 1, ConfigKey: key})
	if err != nil {
		t.Fatal(err)
	}
	noop, st, err := BuildSummaryClusterCtx(ctx, g, labels, m, budget, sum,
		BuildOpts{Workers: 1, ConfigKey: key, Prev: prev})
	if err != nil {
		t.Fatal(err)
	}
	if st.Rebuilt != 0 || st.Reused != m {
		t.Fatalf("noop rebuild: rebuilt=%d reused=%d, want 0/%d", st.Rebuilt, st.Reused, m)
	}
	for i := range noop.Machines {
		if noop.Machines[i] != prev.Machines[i] {
			t.Errorf("shard %d rebuilt on a no-op", i)
		}
	}
}

// TestIncrementalRebuildBudgetChangeRebuildsAll: the budget share is part
// of every shard's content key, so changing it invalidates all of them.
func TestIncrementalRebuildBudgetChangeRebuildsAll(t *testing.T) {
	g, labels, m, budget, base, key := incrementalInput(t, 23)
	sum := PegasusSummarizer(base)
	ctx := context.Background()
	prev, _, err := BuildSummaryClusterCtx(ctx, g, labels, m, budget, sum,
		BuildOpts{Workers: 1, ConfigKey: key})
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := BuildSummaryClusterCtx(ctx, g, labels, m, 0.8*budget, sum,
		BuildOpts{Workers: 1, ConfigKey: key, Prev: prev})
	if err != nil {
		t.Fatal(err)
	}
	if st.Rebuilt != m || st.Reused != 0 {
		t.Fatalf("budget change: rebuilt=%d reused=%d, want %d/0", st.Rebuilt, st.Reused, m)
	}
}

// TestIncrementalRebuildWithoutConfigKey: no key, no reuse — and no keys
// recorded on the result.
func TestIncrementalRebuildWithoutConfigKey(t *testing.T) {
	g, labels, m, budget, base, _ := incrementalInput(t, 24)
	sum := PegasusSummarizer(base)
	ctx := context.Background()
	prev, _, err := BuildSummaryClusterCtx(ctx, g, labels, m, budget, sum,
		BuildOpts{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if prev.Keys != nil {
		t.Errorf("keyless build recorded keys: %v", prev.Keys)
	}
	_, st, err := BuildSummaryClusterCtx(ctx, g, labels, m, budget, sum,
		BuildOpts{Workers: 1, Prev: prev})
	if err != nil {
		t.Fatal(err)
	}
	if st.Reused != 0 || st.Rebuilt != m {
		t.Fatalf("keyless rebuild: rebuilt=%d reused=%d, want %d/0", st.Rebuilt, st.Reused, m)
	}
}

// TestGraphTokenDistinguishesGraphs guards the "graph generation" component
// of the content key: structurally different graphs must never share a
// token, and the token must be deterministic for one graph.
func TestGraphTokenDistinguishesGraphs(t *testing.T) {
	g1 := clusterGraph(31)
	g2 := clusterGraph(32)
	if GraphToken(g1) != GraphToken(g1) {
		t.Error("GraphToken not deterministic")
	}
	if GraphToken(g1) == GraphToken(g2) {
		t.Error("different graphs share a token")
	}
}

// TestContentKeyNormalization: a zero config and the explicitly-spelled
// paper defaults summarize identically, so they must share one key — and a
// custom Threshold policy must refuse to fingerprint.
func TestContentKeyNormalization(t *testing.T) {
	zero, ok := core.Config{Seed: 7}.ContentKey()
	if !ok {
		t.Fatal("zero config not fingerprintable")
	}
	spelled, ok := core.Config{
		Seed: 7, Alpha: 1.25, Beta: 0.1, MaxIter: 20,
		MaxGroupSize: 500, MaxSplitDepth: 10, Workers: 64,
	}.ContentKey()
	if !ok {
		t.Fatal("spelled-out config not fingerprintable")
	}
	if zero != spelled {
		t.Errorf("zero and explicit-default configs differ:\n  %s\n  %s", zero, spelled)
	}
	changed, _ := core.Config{Seed: 7, Alpha: 1.5}.ContentKey()
	if changed == zero {
		t.Error("alpha change did not change the key")
	}
	if _, ok := (core.Config{Threshold: core.AdaptiveThreshold{Beta: 0.1}}).ContentKey(); ok {
		t.Error("custom Threshold policy claimed to be fingerprintable")
	}
}
