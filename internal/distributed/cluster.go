// Package distributed implements the paper's application (§IV):
// "communication-free" distributed multi-query answering. The node set is
// partitioned into m subsets; machine i holds either a summary graph
// personalized to subset V_i (the PeGaSus approach, Alg. 3) or a
// size-bounded subgraph composed of the edges closest to V_i (the
// graph-partitioning alternative of §IV). Each query on node q is routed to
// the machine owning q and answered locally, with zero inter-machine
// communication.
package distributed

import (
	"context"
	"errors"
	"fmt"

	"pegasus/internal/core"
	"pegasus/internal/graph"
	"pegasus/internal/par"
	"pegasus/internal/queries"
	"pegasus/internal/summary"
)

// Machine is one worker holding a local artifact it can answer queries on.
type Machine struct {
	// Summary is non-nil on summary machines (PeGaSus / SSumM clusters).
	Summary *summary.Summary
	// Subgraph is non-nil on subgraph machines (graph-partitioning
	// clusters). It spans the full node-ID space, with only local edges.
	Subgraph *graph.Graph
}

// SizeBits returns the memory footprint of the machine's artifact.
func (m *Machine) SizeBits() float64 {
	if m.Summary != nil {
		return m.Summary.AutoSizeBits()
	}
	if m.Subgraph != nil {
		return m.Subgraph.SizeBits()
	}
	return 0
}

// Oracle returns neighborhood access to the machine's artifact — the single
// dispatch point between summary and subgraph machines for the generic
// (Appendix A) algorithms.
func (m *Machine) Oracle() queries.Oracle {
	if m.Summary != nil {
		return queries.SummaryOracle{S: m.Summary}
	}
	return queries.GraphOracle{G: m.Subgraph}
}

// NewSession returns a query session over the machine's artifact, sharing
// the per-query precompute (weighted degrees, self-loop weights) and
// iteration scratch across the queries of a batch. Not safe for concurrent
// use; create one per batch goroutine.
func (m *Machine) NewSession() queries.Session {
	if m.Summary != nil {
		return queries.NewSummarySession(m.Summary)
	}
	return queries.NewSession(queries.GraphOracle{G: m.Subgraph})
}

// RWR answers a random-walk-with-restart query on the machine's artifact.
func (m *Machine) RWR(q graph.NodeID, cfg queries.RWRConfig) ([]float64, error) {
	if m.Summary != nil {
		return queries.SummaryRWR(m.Summary, q, cfg)
	}
	return queries.GraphRWR(m.Subgraph, q, cfg)
}

// HOP answers a shortest-path-length query on the machine's artifact.
func (m *Machine) HOP(q graph.NodeID) ([]int32, error) {
	if m.Summary != nil {
		return queries.SummaryHOP(m.Summary, q)
	}
	return queries.GraphHOP(m.Subgraph, q)
}

// PHP answers a penalized-hitting-probability query on the machine's
// artifact.
func (m *Machine) PHP(q graph.NodeID, cfg queries.PHPConfig) ([]float64, error) {
	if m.Summary != nil {
		return queries.SummaryPHP(m.Summary, q, cfg)
	}
	return queries.GraphPHP(m.Subgraph, q, cfg)
}

// Cluster is a set of machines plus the node→machine routing table (the
// "mapping function from nodes to summary graphs" of §I).
type Cluster struct {
	// Assign maps each node to the machine answering its queries.
	Assign []uint32
	// Machines are the m workers.
	Machines []*Machine
}

// Route returns the machine index that answers queries on node q.
func (c *Cluster) Route(q graph.NodeID) (uint32, error) {
	if int(q) >= len(c.Assign) {
		return 0, fmt.Errorf("distributed: query node %d out of range", q)
	}
	return c.Assign[q], nil
}

// RouteMachine returns the machine that answers queries on node q — the
// shard-routing primitive of the serving layer.
func (c *Cluster) RouteMachine(q graph.NodeID) (*Machine, error) {
	i, err := c.Route(q)
	if err != nil {
		return nil, err
	}
	// BuildSummaryCluster validates labels, but Assign tables can also be
	// hand-assembled or deserialized; an out-of-range label must surface as
	// an error on the serving path, not a panic.
	if int(i) >= len(c.Machines) {
		return nil, fmt.Errorf("distributed: node %d assigned to machine %d, but cluster has %d machines",
			q, i, len(c.Machines))
	}
	return c.Machines[i], nil
}

// MaxMachineBits returns the largest per-machine footprint — the memory a
// deployment must provision per worker.
func (c *Cluster) MaxMachineBits() float64 {
	max := 0.0
	for _, m := range c.Machines {
		if s := m.SizeBits(); s > max {
			max = s
		}
	}
	return max
}

// RWR answers a random-walk-with-restart query for q on q's machine only.
func (c *Cluster) RWR(q graph.NodeID, cfg queries.RWRConfig) ([]float64, error) {
	m, err := c.RouteMachine(q)
	if err != nil {
		return nil, err
	}
	return m.RWR(q, cfg)
}

// HOP answers a shortest-path-length query for q on q's machine only.
func (c *Cluster) HOP(q graph.NodeID) ([]int32, error) {
	m, err := c.RouteMachine(q)
	if err != nil {
		return nil, err
	}
	return m.HOP(q)
}

// PHP answers a penalized-hitting-probability query for q on q's machine.
func (c *Cluster) PHP(q graph.NodeID, cfg queries.PHPConfig) ([]float64, error) {
	m, err := c.RouteMachine(q)
	if err != nil {
		return nil, err
	}
	return m.PHP(q, cfg)
}

// Summarizer produces a summary of g personalized to the given target set
// within budgetBits, honoring ctx for cancellation. The PeGaSus and SSumM
// entry points both match.
type Summarizer func(ctx context.Context, g *graph.Graph, targets []graph.NodeID, budgetBits float64) (*summary.Summary, error)

// PegasusSummarizer adapts core.SummarizeCtx to the Summarizer shape with
// the given base configuration (targets and budget are overridden per
// machine; base.Workers bounds each machine's in-engine parallelism).
func PegasusSummarizer(base core.Config) Summarizer {
	return func(ctx context.Context, g *graph.Graph, targets []graph.NodeID, budgetBits float64) (*summary.Summary, error) {
		cfg := base
		cfg.Targets = targets
		cfg.BudgetBits = budgetBits
		cfg.BudgetRatio = 0
		res, err := core.SummarizeCtx(ctx, g, cfg)
		if err != nil {
			return nil, err
		}
		return res.Summary, nil
	}
}

// BuildSummaryCluster implements Alg. 3's preprocessing: for each part i of
// the given partition (labels in [0,m)), build a summary personalized to
// V_i within budgetBits and load it on machine i. The m builds run
// concurrently with up to GOMAXPROCS in flight; BuildSummaryClusterCtx
// exposes cancellation and the concurrency knob.
func BuildSummaryCluster(g *graph.Graph, labels []uint32, m int, budgetBits float64, summarize Summarizer) (*Cluster, error) {
	return BuildSummaryClusterCtx(context.Background(), g, labels, m, budgetBits, summarize, 0)
}

// BuildSummaryClusterCtx is BuildSummaryCluster with cooperative
// cancellation and explicit build parallelism: at most `workers` machine
// summaries build concurrently (0 = GOMAXPROCS, 1 = sequential). The shard
// builds are independent — the §IV scheme is communication-free — so the
// resulting cluster is identical for every worker count. The first build
// error cancels the remaining builds and is returned; ctx cancellation does
// the same with ctx.Err().
func BuildSummaryClusterCtx(ctx context.Context, g *graph.Graph, labels []uint32, m int, budgetBits float64, summarize Summarizer, workers int) (*Cluster, error) {
	if len(labels) != g.NumNodes() {
		return nil, fmt.Errorf("distributed: labels length %d != |V| %d", len(labels), g.NumNodes())
	}
	if m < 1 {
		return nil, fmt.Errorf("distributed: need at least one machine, got m=%d", m)
	}
	parts := make([][]graph.NodeID, m)
	for u, l := range labels {
		if int(l) >= m {
			return nil, fmt.Errorf("distributed: label %d out of range (m=%d)", l, m)
		}
		parts[l] = append(parts[l], graph.NodeID(u))
	}

	buildCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	c := &Cluster{Assign: labels, Machines: make([]*Machine, m)}
	errs := make([]error, m)
	par.ForEach(workers, m, func(_, i int) {
		if err := buildCtx.Err(); err != nil {
			errs[i] = err
			return
		}
		s, err := summarize(buildCtx, g, parts[i], budgetBits)
		if err != nil {
			errs[i] = err
			cancel() // first error wins: stop the remaining builds
			return
		}
		c.Machines[i] = &Machine{Summary: s}
	})

	// A cancelled caller context is not any machine's fault; report it as
	// plain ctx.Err() rather than blaming whichever shard noticed first.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Report the root cause deterministically: the lowest-indexed machine
	// whose failure is not just the cancellation fallout of another's.
	var firstErr error
	for i, err := range errs {
		if err == nil || errors.Is(err, context.Canceled) {
			continue
		}
		return nil, fmt.Errorf("distributed: machine %d: %w", i, err)
	}
	for i, err := range errs {
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("distributed: machine %d: %w", i, err)
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return c, nil
}
