// Package distributed implements the paper's application (§IV):
// "communication-free" distributed multi-query answering. The node set is
// partitioned into m subsets; machine i holds either a summary graph
// personalized to subset V_i (the PeGaSus approach, Alg. 3) or a
// size-bounded subgraph composed of the edges closest to V_i (the
// graph-partitioning alternative of §IV). Each query on node q is routed to
// the machine owning q and answered locally, with zero inter-machine
// communication.
package distributed

import (
	"context"
	"errors"
	"fmt"

	"pegasus/internal/core"
	"pegasus/internal/graph"
	"pegasus/internal/obs"
	"pegasus/internal/par"
	"pegasus/internal/persist"
	"pegasus/internal/queries"
	"pegasus/internal/summary"
)

// Machine is one worker holding a local artifact it can answer queries on.
type Machine struct {
	// Summary is non-nil on summary machines (PeGaSus / SSumM clusters).
	Summary *summary.Summary
	// Subgraph is non-nil on subgraph machines (graph-partitioning
	// clusters). It spans the full node-ID space, with only local edges.
	Subgraph *graph.Graph
}

// SizeBits returns the memory footprint of the machine's artifact.
func (m *Machine) SizeBits() float64 {
	if m.Summary != nil {
		return m.Summary.AutoSizeBits()
	}
	if m.Subgraph != nil {
		return m.Subgraph.SizeBits()
	}
	return 0
}

// Oracle returns neighborhood access to the machine's artifact — the single
// dispatch point between summary and subgraph machines for the generic
// (Appendix A) algorithms.
func (m *Machine) Oracle() queries.Oracle {
	if m.Summary != nil {
		return queries.SummaryOracle{S: m.Summary}
	}
	return queries.GraphOracle{G: m.Subgraph}
}

// NewSession returns a query session over the machine's artifact, sharing
// the per-query precompute (weighted degrees, self-loop weights) and
// iteration scratch across the queries of a batch. Not safe for concurrent
// use; create one per batch goroutine.
func (m *Machine) NewSession() queries.Session {
	if m.Summary != nil {
		return queries.NewSummarySession(m.Summary)
	}
	return queries.NewSession(queries.GraphOracle{G: m.Subgraph})
}

// RWR answers a random-walk-with-restart query on the machine's artifact.
func (m *Machine) RWR(q graph.NodeID, cfg queries.RWRConfig) ([]float64, error) {
	if m.Summary != nil {
		return queries.SummaryRWR(m.Summary, q, cfg)
	}
	return queries.GraphRWR(m.Subgraph, q, cfg)
}

// HOP answers a shortest-path-length query on the machine's artifact.
func (m *Machine) HOP(q graph.NodeID) ([]int32, error) {
	if m.Summary != nil {
		return queries.SummaryHOP(m.Summary, q)
	}
	return queries.GraphHOP(m.Subgraph, q)
}

// PHP answers a penalized-hitting-probability query on the machine's
// artifact.
func (m *Machine) PHP(q graph.NodeID, cfg queries.PHPConfig) ([]float64, error) {
	if m.Summary != nil {
		return queries.SummaryPHP(m.Summary, q, cfg)
	}
	return queries.GraphPHP(m.Subgraph, q, cfg)
}

// Cluster is a set of machines plus the node→machine routing table (the
// "mapping function from nodes to summary graphs" of §I).
type Cluster struct {
	// Assign maps each node to the machine answering its queries.
	Assign []uint32
	// Machines are the m workers.
	Machines []*Machine
	// Keys are the per-machine content keys (ShardKey) when the cluster was
	// built with BuildOpts.ConfigKey set; nil otherwise. A later build may
	// transplant any machine whose key it reproduces.
	Keys []string
}

// Route returns the machine index that answers queries on node q.
func (c *Cluster) Route(q graph.NodeID) (uint32, error) {
	if int(q) >= len(c.Assign) {
		return 0, fmt.Errorf("distributed: query node %d out of range", q)
	}
	return c.Assign[q], nil
}

// RouteMachine returns the machine that answers queries on node q — the
// shard-routing primitive of the serving layer.
func (c *Cluster) RouteMachine(q graph.NodeID) (*Machine, error) {
	i, err := c.Route(q)
	if err != nil {
		return nil, err
	}
	// BuildSummaryCluster validates labels, but Assign tables can also be
	// hand-assembled or deserialized; an out-of-range label must surface as
	// an error on the serving path, not a panic.
	if int(i) >= len(c.Machines) {
		return nil, fmt.Errorf("distributed: node %d assigned to machine %d, but cluster has %d machines",
			q, i, len(c.Machines))
	}
	return c.Machines[i], nil
}

// MaxMachineBits returns the largest per-machine footprint — the memory a
// deployment must provision per worker.
func (c *Cluster) MaxMachineBits() float64 {
	max := 0.0
	for _, m := range c.Machines {
		if s := m.SizeBits(); s > max {
			max = s
		}
	}
	return max
}

// RWR answers a random-walk-with-restart query for q on q's machine only.
func (c *Cluster) RWR(q graph.NodeID, cfg queries.RWRConfig) ([]float64, error) {
	m, err := c.RouteMachine(q)
	if err != nil {
		return nil, err
	}
	return m.RWR(q, cfg)
}

// HOP answers a shortest-path-length query for q on q's machine only.
func (c *Cluster) HOP(q graph.NodeID) ([]int32, error) {
	m, err := c.RouteMachine(q)
	if err != nil {
		return nil, err
	}
	return m.HOP(q)
}

// PHP answers a penalized-hitting-probability query for q on q's machine.
func (c *Cluster) PHP(q graph.NodeID, cfg queries.PHPConfig) ([]float64, error) {
	m, err := c.RouteMachine(q)
	if err != nil {
		return nil, err
	}
	return m.PHP(q, cfg)
}

// Summarizer produces a summary of g personalized to the given target set
// within budgetBits, honoring ctx for cancellation. The PeGaSus and SSumM
// entry points both match.
type Summarizer func(ctx context.Context, g *graph.Graph, targets []graph.NodeID, budgetBits float64) (*summary.Summary, error)

// PegasusSummarizer adapts core.SummarizeCtx to the Summarizer shape with
// the given base configuration (targets and budget are overridden per
// machine; base.Workers bounds each machine's in-engine parallelism).
func PegasusSummarizer(base core.Config) Summarizer {
	return func(ctx context.Context, g *graph.Graph, targets []graph.NodeID, budgetBits float64) (*summary.Summary, error) {
		cfg := base
		cfg.Targets = targets
		cfg.BudgetBits = budgetBits
		cfg.BudgetRatio = 0
		res, err := core.SummarizeCtx(ctx, g, cfg)
		if err != nil {
			return nil, err
		}
		return res.Summary, nil
	}
}

// BuildSummaryCluster implements Alg. 3's preprocessing: for each part i of
// the given partition (labels in [0,m)), build a summary personalized to
// V_i within budgetBits and load it on machine i. The m builds run
// concurrently with up to GOMAXPROCS in flight; BuildSummaryClusterCtx
// exposes cancellation, the concurrency knob, workload-restricted targets
// and incremental reuse.
func BuildSummaryCluster(g *graph.Graph, labels []uint32, m int, budgetBits float64, summarize Summarizer) (*Cluster, error) {
	//lint:ctxflow public convenience entry point for callers without a context; the Ctx variant is the propagating path
	c, _, err := BuildSummaryClusterCtx(context.Background(), g, labels, m, budgetBits, summarize, BuildOpts{})
	return c, err
}

// BuildOpts are the optional knobs of BuildSummaryClusterCtx. The zero
// value reproduces the plain Alg. 3 build: GOMAXPROCS-bounded concurrent
// shard builds, each shard personalized to its whole part, no reuse.
type BuildOpts struct {
	// Workers bounds concurrent shard builds (0 = GOMAXPROCS,
	// 1 = sequential). The resulting cluster is identical for every value.
	Workers int
	// Targets, when non-empty, restricts personalization to a workload:
	// shard i's resolved target set becomes the intersection of its part
	// with Targets (in part order). A shard whose part contains no
	// requested target is untouched by the request and keeps Alg. 3's
	// default — personalization to its whole part — so a target change
	// confined to one part re-keys (and rebuilds) exactly that shard.
	// Empty Targets personalizes every shard to its whole part.
	Targets []graph.NodeID
	// ConfigKey is the workers-independent fingerprint of the summarizer's
	// configuration (core.Config.ContentKey for PegasusSummarizer). When
	// non-empty, the build computes a ShardKey per machine, records them on
	// Cluster.Keys, and may transplant machines from Prev. Callers using a
	// custom Summarizer must guarantee the key covers every input that
	// changes its output besides (graph, targets, budget); an empty key
	// disables reuse entirely.
	ConfigKey string
	// GraphToken, when non-empty, skips recomputing GraphToken(g) — for
	// callers that rebuild over one immutable graph and have the token
	// cached. It MUST equal GraphToken(g), or the reuse-safety argument is
	// void.
	GraphToken string
	// Prev is a previous cluster whose machines may be transplanted: any
	// shard whose content key matches a key of Prev reuses that machine's
	// summary verbatim instead of rebuilding. Equal keys imply bit-identical
	// artifacts (summaries are immutable and the build pipeline is
	// worker-count invariant), so reuse is undetectable except in build
	// time. Requires ConfigKey; Prev clusters without Keys are ignored.
	Prev *Cluster
	// Store is an on-disk artifact store consulted per shard after Prev:
	// a shard whose content key is filed in the store decodes that artifact
	// instead of rebuilding (the disk twin of a Prev transplant — equal keys
	// imply bit-identical artifacts, so a disk hit honors the same
	// bit-identity contract), and freshly built shards are written back
	// best-effort under their keys, making the next cold start warm.
	// Requires ConfigKey; corrupt or version-mismatched artifacts are
	// treated as absent and the shard is rebuilt. Unkeyable builds (empty
	// ConfigKey) never touch the store — their artifacts would be filed
	// under no reachable name.
	Store *persist.Store
}

// BuildSummaryClusterCtx is BuildSummaryCluster with cooperative
// cancellation and the BuildOpts knobs: explicit build parallelism,
// workload-restricted targets, and incremental reuse of a previous
// cluster's machines (only shards whose content key differs from every key
// of opts.Prev are rebuilt; the rest are transplanted). The shard builds
// are independent — the §IV scheme is communication-free — so the
// resulting cluster is identical for every worker count, and, by the
// content-key argument above, for every Prev. The first build error
// cancels the remaining builds and is returned; ctx cancellation does the
// same with ctx.Err().
func BuildSummaryClusterCtx(ctx context.Context, g *graph.Graph, labels []uint32, m int, budgetBits float64, summarize Summarizer, opts BuildOpts) (*Cluster, BuildStats, error) {
	stats := BuildStats{}
	if len(labels) != g.NumNodes() {
		return nil, stats, fmt.Errorf("distributed: labels length %d != |V| %d", len(labels), g.NumNodes())
	}
	if m < 1 {
		return nil, stats, fmt.Errorf("distributed: need at least one machine, got m=%d", m)
	}
	parts := make([][]graph.NodeID, m)
	for u, l := range labels {
		if int(l) >= m {
			return nil, stats, fmt.Errorf("distributed: label %d out of range (m=%d)", l, m)
		}
		parts[l] = append(parts[l], graph.NodeID(u))
	}
	targets, err := resolveTargets(g, parts, opts.Targets)
	if err != nil {
		return nil, stats, err
	}

	c := &Cluster{Assign: labels, Machines: make([]*Machine, m)}
	stats.ReusedShards = make([]bool, m)
	stats.LoadedShards = make([]bool, m)
	toBuild := make([]int, 0, m)
	if opts.ConfigKey != "" {
		token := opts.GraphToken
		if token == "" {
			token = GraphToken(g)
		}
		c.Keys = make([]string, m)
		for i := range c.Keys {
			c.Keys[i] = ShardKey(token, targets[i], budgetBits, opts.ConfigKey)
		}
		// Match by key, not by index: a relabeled or permuted partition can
		// still reuse any previous machine that holds the exact artifact.
		prevByKey := make(map[string]*Machine)
		if opts.Prev != nil {
			for j, k := range opts.Prev.Keys {
				if j < len(opts.Prev.Machines) && opts.Prev.Machines[j] != nil && opts.Prev.Machines[j].Summary != nil {
					prevByKey[k] = opts.Prev.Machines[j]
				}
			}
		}
		for i := 0; i < m; i++ {
			if prev, ok := prevByKey[c.Keys[i]]; ok {
				c.Machines[i] = prev // transplant: bit-identical by key equality
				stats.ReusedShards[i] = true
				stats.Reused++
				continue
			}
			toBuild = append(toBuild, i)
		}
	} else {
		for i := 0; i < m; i++ {
			toBuild = append(toBuild, i)
		}
	}
	// The store is only addressable through content keys; without them it
	// would file artifacts under no reachable name, so it is ignored.
	store := opts.Store
	if opts.ConfigKey == "" {
		store = nil
	}

	buildCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	errs := make([]error, m)
	par.ForEach(opts.Workers, len(toBuild), func(_, k int) {
		i := toBuild[k]
		if err := buildCtx.Err(); err != nil {
			errs[i] = err
			return
		}
		// Each shard build is one span; child phase spans (shingle, merge,
		// …) parent under it via shardCtx. Span appends are mutex-serialized
		// in the trace, so parallel shards interleave safely.
		shardCtx, sp := obs.StartSpan(buildCtx, "build.shard")
		sp.AttrInt("shard", i)
		defer sp.End()
		if store != nil {
			// Disk twin of the Prev transplant: the key certifies the bytes,
			// so a decoded artifact is bit-identical to what a rebuild would
			// produce. Errors (corrupt, version-mismatched) demote to a
			// rebuild; the node-count check guards against a foreign or
			// hash-colliding file sneaking past the key.
			_, gsp := obs.StartSpan(shardCtx, "store.get")
			a, ok, _ := store.Get(c.Keys[i])
			gsp.End()
			if ok && a.Summary != nil && a.Summary.NumNodes() == g.NumNodes() {
				c.Machines[i] = &Machine{Summary: a.Summary}
				stats.LoadedShards[i] = true
				sp.Attr("source", "store")
				return
			}
		}
		s, err := summarize(shardCtx, g, targets[i], budgetBits)
		if err != nil {
			errs[i] = err
			cancel() // first error wins: stop the remaining builds
			return
		}
		c.Machines[i] = &Machine{Summary: s}
		sp.Attr("source", "summarize")
		if store != nil {
			// Best-effort persistence: a failed write costs the next boot a
			// rebuild, not this one; the store counts the error.
			_ = store.Put(c.Keys[i], persist.Artifact{Summary: s})
		}
	})
	for _, loaded := range stats.LoadedShards {
		if loaded {
			stats.Loaded++
		}
	}
	stats.Rebuilt = len(toBuild) - stats.Loaded

	// A cancelled caller context is not any machine's fault; report it as
	// plain ctx.Err() rather than blaming whichever shard noticed first.
	if err := ctx.Err(); err != nil {
		return nil, stats, err
	}
	// Report the root cause deterministically: the lowest-indexed machine
	// whose failure is not just the cancellation fallout of another's.
	var firstErr error
	for i, err := range errs {
		if err == nil || errors.Is(err, context.Canceled) {
			continue
		}
		return nil, stats, fmt.Errorf("distributed: machine %d: %w", i, err)
	}
	for i, err := range errs {
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("distributed: machine %d: %w", i, err)
		}
	}
	if firstErr != nil {
		return nil, stats, firstErr
	}
	return c, stats, nil
}

// resolveTargets computes each shard's resolved target set: the
// part∩targets intersection in part order, with parts the request does not
// touch (no target falls in them, or targets is empty altogether) keeping
// their whole part per Alg. 3. The resolved sets — not the raw parts — are
// what shard content keys fingerprint, so only the touched shards re-key.
func resolveTargets(g *graph.Graph, parts [][]graph.NodeID, targets []graph.NodeID) ([][]graph.NodeID, error) {
	if len(targets) == 0 {
		return parts, nil
	}
	mark := make([]bool, g.NumNodes())
	for _, t := range targets {
		if int(t) >= len(mark) {
			return nil, fmt.Errorf("distributed: target %d out of range (|V|=%d)", t, g.NumNodes())
		}
		mark[t] = true
	}
	out := make([][]graph.NodeID, len(parts))
	for i, part := range parts {
		for _, u := range part {
			if mark[u] {
				out[i] = append(out[i], u)
			}
		}
		if len(out[i]) == 0 {
			out[i] = part // untouched part: keep whole-part personalization
		}
	}
	return out, nil
}
