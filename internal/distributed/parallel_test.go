package distributed

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"pegasus/internal/core"
	"pegasus/internal/graph"
	"pegasus/internal/partition"
	"pegasus/internal/summary"
)

// TestRouteMachineRejectsOutOfRangeLabel is the regression test for the
// bounds-check bug: an Assign table with labels >= len(Machines) — possible
// on hand-assembled or deserialized clusters — must error on the serving
// path instead of panicking with an index out of range.
func TestRouteMachineRejectsOutOfRangeLabel(t *testing.T) {
	c := &Cluster{
		Assign:   []uint32{0, 5, 1},
		Machines: []*Machine{{}, {}},
	}
	if _, err := c.RouteMachine(0); err != nil {
		t.Fatalf("in-range label errored: %v", err)
	}
	m, err := c.RouteMachine(1)
	if err == nil {
		t.Fatalf("label 5 with 2 machines returned machine %v, want error", m)
	}
	if !strings.Contains(err.Error(), "machine 5") {
		t.Errorf("error %q does not name the offending machine", err)
	}
	// The query-dispatch helpers route through RouteMachine and must
	// propagate the error too.
	if _, err := c.HOP(1); err == nil {
		t.Error("HOP on an out-of-range label did not error")
	}
}

// TestParallelClusterBuildMatchesSequential: the §IV builds are independent,
// so concurrent shard construction must produce byte-for-byte the same
// machines as the sequential loop.
func TestParallelClusterBuildMatchesSequential(t *testing.T) {
	g := clusterGraph(11)
	m := 4
	labels := partition.Partition(g, m, partition.MethodLouvain, 2)
	budget := 0.5 * g.SizeBits()
	sum := PegasusSummarizer(core.Config{Seed: 3, Workers: 1})

	seq, _, err := BuildSummaryClusterCtx(context.Background(), g, labels, m, budget, sum, BuildOpts{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		par, _, err := BuildSummaryClusterCtx(context.Background(), g, labels, m, budget, sum, BuildOpts{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range seq.Machines {
			a, b := seq.Machines[i].Summary, par.Machines[i].Summary
			if !summariesEqual(a, b) {
				t.Errorf("workers=%d: machine %d summary differs from sequential build", workers, i)
			}
		}
	}
}

func summariesEqual(a, b *summary.Summary) bool {
	if a.NumNodes() != b.NumNodes() || a.NumSupernodes() != b.NumSupernodes() ||
		a.NumSuperedges() != b.NumSuperedges() {
		return false
	}
	for u := 0; u < a.NumNodes(); u++ {
		if a.Supernode(graph.NodeID(u)) != b.Supernode(graph.NodeID(u)) {
			return false
		}
	}
	equal := true
	for s := 0; s < a.NumSupernodes() && equal; s++ {
		na := map[uint32]bool{}
		a.ForEachSuperNeighbor(uint32(s), func(x uint32, _ float64) { na[x] = true })
		b.ForEachSuperNeighbor(uint32(s), func(x uint32, _ float64) {
			if !na[x] {
				equal = false
			}
			delete(na, x)
		})
		if len(na) != 0 {
			equal = false
		}
	}
	return equal
}

// TestBuildSummaryClusterFirstError: one failing shard cancels the rest and
// its error (not the cancellation fallout) is reported.
func TestBuildSummaryClusterFirstError(t *testing.T) {
	g := clusterGraph(12)
	m := 4
	labels := partition.RandomBalanced(g.NumNodes(), m, 1)
	boom := errors.New("boom")
	var calls sync.Map
	sum := func(ctx context.Context, gg *graph.Graph, targets []graph.NodeID, budget float64) (*summary.Summary, error) {
		shard := int(labels[targets[0]])
		calls.Store(shard, true)
		if shard == 2 {
			return nil, boom
		}
		// Non-failing shards wait on cancellation or time out the test.
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(5 * time.Second):
			return nil, errors.New("cancellation never arrived")
		}
	}
	_, _, err := BuildSummaryClusterCtx(context.Background(), g, labels, m, 0.5*g.SizeBits(), sum, BuildOpts{Workers: m})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), "machine 2") {
		t.Errorf("error %q does not name the failing machine", err)
	}
}

func TestBuildSummaryClusterCtxCancelled(t *testing.T) {
	g := clusterGraph(13)
	m := 2
	labels := partition.RandomBalanced(g.NumNodes(), m, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := BuildSummaryClusterCtx(ctx, g, labels, m, 0.5*g.SizeBits(),
		PegasusSummarizer(core.Config{Seed: 1}), BuildOpts{Workers: m})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestConcurrentClusterBuildsRace drives several whole-cluster builds at
// once — the server's hot-rebuild pattern — under the race detector.
func TestConcurrentClusterBuildsRace(t *testing.T) {
	g := clusterGraph(14)
	m := 2
	labels := partition.Partition(g, m, partition.MethodLouvain, 3)
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := 0; i < len(errs); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = BuildSummaryClusterCtx(context.Background(), g, labels, m,
				0.5*g.SizeBits(), PegasusSummarizer(core.Config{Seed: int64(i), Workers: 2}), BuildOpts{Workers: m})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("concurrent build %d: %v", i, err)
		}
	}
}

// TestBuildSummaryClusterRejectsZeroMachines guards the new m validation.
func TestBuildSummaryClusterRejectsZeroMachines(t *testing.T) {
	g := clusterGraph(15)
	if _, err := BuildSummaryCluster(g, make([]uint32, g.NumNodes()), 0, 100,
		PegasusSummarizer(core.Config{})); err == nil {
		t.Error("m=0 accepted")
	}
}
