package distributed

import (
	"context"
	"fmt"
	"testing"

	"pegasus/internal/core"
	"pegasus/internal/gen"
	"pegasus/internal/graph"
	"pegasus/internal/partition"
)

// benchClusterInput builds the 4-shard benchmark graph once per process.
func benchClusterInput(b *testing.B) (*graph.Graph, []uint32, int, float64) {
	b.Helper()
	g := gen.PlantedPartition(gen.SBMConfig{Nodes: 2000, Communities: 4, AvgDegree: 12, MixingP: 0.05}, 1)
	lcc, _ := graph.LargestComponent(g)
	m := 4
	labels := partition.Partition(lcc, m, partition.MethodRandom, 1)
	return lcc, labels, m, 0.4 * lcc.SizeBits()
}

// BenchmarkBuildSummaryCluster measures the Alg. 3 preprocessing at
// different build-parallelism levels on a 4-shard graph. The workers=1 case
// is the legacy sequential build; the speedup of workers>=4 over it is the
// tentpole's acceptance number (≈m× on an m-core machine, since the
// per-shard builds are independent).
func BenchmarkBuildSummaryCluster(b *testing.B) {
	g, labels, m, budget := benchClusterInput(b)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			sum := PegasusSummarizer(core.Config{Seed: 3, Workers: 1})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := BuildSummaryClusterCtx(context.Background(), g, labels, m, budget, sum, BuildOpts{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
