package distributed

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"

	"pegasus/internal/graph"
)

// Content keys make shard-summary reuse provably safe: a shard's key is a
// fingerprint of every input that determines its build output — the graph,
// the shard's resolved target set, its budget share, and the
// workers-independent summarizer configuration (core.Config.ContentKey).
// Two builds with equal keys produce bit-identical artifacts (the pipeline
// is worker-count invariant, see DESIGN.md), so an incremental rebuild may
// transplant the previous machine instead of rebuilding it.

// GraphToken fingerprints a graph's full structure (node count plus every
// edge). It is the "graph generation" component of a shard content key: a
// previous cluster built from a structurally different graph can never be
// mistaken for reusable. One O(|V|+|E|) scan — negligible next to a
// summary build.
func GraphToken(g *graph.Graph) string {
	h := sha256.New()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(g.NumNodes()))
	h.Write(buf[:])
	g.Edges(func(u, v graph.NodeID) bool {
		binary.LittleEndian.PutUint32(buf[:4], uint32(u))
		binary.LittleEndian.PutUint32(buf[4:], uint32(v))
		h.Write(buf[:])
		return true
	})
	return hex.EncodeToString(h.Sum(nil))
}

// ShardKey computes the content key of one shard-summary build: the graph
// token, the shard's resolved target set (order-sensitive — permuted target
// lists fingerprint differently rather than risk a false reuse), the budget
// share in exact bit pattern, and the summarizer config key.
func ShardKey(graphToken string, targets []graph.NodeID, budgetBits float64, cfgKey string) string {
	h := sha256.New()
	h.Write([]byte(graphToken))
	h.Write([]byte{0})
	h.Write([]byte(cfgKey))
	h.Write([]byte{0})
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(budgetBits))
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], uint64(len(targets)))
	h.Write(buf[:])
	for _, t := range targets {
		binary.LittleEndian.PutUint32(buf[:4], uint32(t))
		h.Write(buf[:4])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// BuildStats reports how an incremental cluster build satisfied each shard:
// every shard is exactly one of rebuilt, reused (in-memory transplant from
// Prev), or loaded (decoded from the artifact store), so
// Rebuilt + Reused + Loaded equals the machine count.
type BuildStats struct {
	// Rebuilt is the number of shards whose summary was built from scratch.
	Rebuilt int
	// Reused is the number of shards transplanted from the previous cluster.
	Reused int
	// Loaded is the number of shards decoded from the on-disk artifact
	// store (BuildOpts.Store) — disk hits with the same bit-identity
	// guarantee as Reused.
	Loaded int
	// ReusedShards[i] reports whether shard i was transplanted (always
	// len m; all false when reuse was not possible).
	ReusedShards []bool
	// LoadedShards[i] reports whether shard i was decoded from the store
	// (always len m; all false when no store was configured).
	LoadedShards []bool
}
