package queries

import (
	"context"

	"pegasus/internal/graph"
	"pegasus/internal/summary"
)

// RWRConfig parameterizes random walk with restart.
type RWRConfig struct {
	// Restart is the restarting probability (default 0.05, §V-A).
	Restart float64
	// Eps is the L1 convergence tolerance (default 1e-9).
	Eps float64
	// MaxIter caps power iterations (default 1000).
	MaxIter int
	// Ctx, when non-nil, is checked once per power iteration; a cancelled
	// context aborts the query with the context's error.
	Ctx context.Context
}

func (c RWRConfig) withDefaults() RWRConfig {
	if c.Restart == 0 {
		c.Restart = 0.05
	}
	if c.Eps == 0 {
		c.Eps = 1e-9
	}
	if c.MaxIter == 0 {
		c.MaxIter = 1000
	}
	return c
}

// RWR computes the stationary random-walk-with-restart distribution w.r.t.
// query node q over any Oracle: with probability 1−restart the walker moves
// to a (weight-proportional) random neighbor, otherwise it restarts at q.
// Dead-end mass is redirected to q, keeping the vector stochastic. This is
// the generic implementation of Alg. 6; use SummaryRWR for the
// block-accelerated equivalent on summaries, and a Session (or RWRBatch)
// to amortize the weighted-degree precompute over many queries.
func RWR(o Oracle, q graph.NodeID, cfg RWRConfig) ([]float64, error) {
	return NewSession(o).RWR(q, cfg)
}

// GraphRWR answers RWR exactly on the input graph (the ground truth of the
// evaluation).
func GraphRWR(g *graph.Graph, q graph.NodeID, cfg RWRConfig) ([]float64, error) {
	return RWR(GraphOracle{g}, q, cfg)
}

// SummaryRWR answers RWR on a summary graph without expanding reconstructed
// neighborhoods: since the reconstructed adjacency is block-constant, the
// transition aggregates per supernode, costing O(|V|+|P|) per iteration
// instead of O(|Ê|). For many queries on one summary, NewSummarySession
// shares the precompute across calls.
func SummaryRWR(s *summary.Summary, q graph.NodeID, cfg RWRConfig) ([]float64, error) {
	return NewSummarySession(s).RWR(q, cfg)
}
