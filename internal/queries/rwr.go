package queries

import (
	"context"
	"fmt"

	"pegasus/internal/graph"
	"pegasus/internal/summary"
)

// RWRConfig parameterizes random walk with restart.
type RWRConfig struct {
	// Restart is the restarting probability (default 0.05, §V-A).
	Restart float64
	// Eps is the L1 convergence tolerance (default 1e-9).
	Eps float64
	// MaxIter caps power iterations (default 1000).
	MaxIter int
	// Ctx, when non-nil, is checked once per power iteration; a cancelled
	// context aborts the query with the context's error.
	Ctx context.Context
}

func (c RWRConfig) withDefaults() RWRConfig {
	if c.Restart == 0 {
		c.Restart = 0.05
	}
	if c.Eps == 0 {
		c.Eps = 1e-9
	}
	if c.MaxIter == 0 {
		c.MaxIter = 1000
	}
	return c
}

// RWR computes the stationary random-walk-with-restart distribution w.r.t.
// query node q over any Oracle: with probability 1−restart the walker moves
// to a (weight-proportional) random neighbor, otherwise it restarts at q.
// Dead-end mass is redirected to q, keeping the vector stochastic. This is
// the generic implementation of Alg. 6; use SummaryRWR for the
// block-accelerated equivalent on summaries.
func RWR(o Oracle, q graph.NodeID, cfg RWRConfig) ([]float64, error) {
	cfg = cfg.withDefaults()
	n := o.NumNodes()
	if int(q) >= n {
		return nil, fmt.Errorf("queries: query node %d out of range (|V|=%d)", q, n)
	}
	c := 1 - cfg.Restart

	wdeg := make([]float64, n)
	for u := 0; u < n; u++ {
		o.ForEachNeighbor(graph.NodeID(u), func(_ graph.NodeID, w float64) {
			wdeg[u] += w
		})
	}

	r := make([]float64, n)
	next := make([]float64, n)
	for i := range r {
		r[i] = 1 / float64(n)
	}
	for iter := 0; iter < cfg.MaxIter; iter++ {
		if err := ctxErr(cfg.Ctx); err != nil {
			return nil, err
		}
		for i := range next {
			next[i] = 0
		}
		dead := 0.0
		for u := 0; u < n; u++ {
			if r[u] == 0 {
				continue
			}
			if wdeg[u] == 0 {
				dead += r[u]
				continue
			}
			share := r[u] / wdeg[u]
			o.ForEachNeighbor(graph.NodeID(u), func(v graph.NodeID, w float64) {
				next[v] += share * w
			})
		}
		delta := 0.0
		for i := range next {
			next[i] *= c
		}
		next[q] += cfg.Restart + c*dead
		for i := range next {
			d := next[i] - r[i]
			if d < 0 {
				d = -d
			}
			delta += d
		}
		r, next = next, r
		if delta < cfg.Eps {
			break
		}
	}
	return r, nil
}

// GraphRWR answers RWR exactly on the input graph (the ground truth of the
// evaluation).
func GraphRWR(g *graph.Graph, q graph.NodeID, cfg RWRConfig) ([]float64, error) {
	return RWR(GraphOracle{g}, q, cfg)
}

// SummaryRWR answers RWR on a summary graph without expanding reconstructed
// neighborhoods: since the reconstructed adjacency is block-constant, the
// transition aggregates per supernode, costing O(|V|+|P|) per iteration
// instead of O(|Ê|).
func SummaryRWR(s *summary.Summary, q graph.NodeID, cfg RWRConfig) ([]float64, error) {
	cfg = cfg.withDefaults()
	n := s.NumNodes()
	if int(q) >= n {
		return nil, fmt.Errorf("queries: query node %d out of range (|V|=%d)", q, n)
	}
	c := 1 - cfg.Restart
	ns := s.NumSupernodes()

	// Precompute weighted reconstructed degrees and self-loop weights.
	wdeg := make([]float64, n)
	selfW := make([]float64, ns)
	for a := 0; a < ns; a++ {
		var aw float64
		s.ForEachSuperNeighbor(uint32(a), func(b uint32, w float64) {
			cnt := len(s.Members(b))
			if b == uint32(a) {
				selfW[a] = w
				cnt-- // a member is not its own neighbor
			}
			aw += w * float64(cnt)
		})
		for _, u := range s.Members(uint32(a)) {
			wdeg[u] = aw
		}
	}

	r := make([]float64, n)
	next := make([]float64, n)
	mass := make([]float64, ns)    // Σ_{u∈A} r[u]/wdeg[u]
	superIn := make([]float64, ns) // Σ_{B adj A} w_AB · mass_B
	for i := range r {
		r[i] = 1 / float64(n)
	}
	for iter := 0; iter < cfg.MaxIter; iter++ {
		if err := ctxErr(cfg.Ctx); err != nil {
			return nil, err
		}
		dead := 0.0
		for a := range mass {
			mass[a] = 0
		}
		for u := 0; u < n; u++ {
			if wdeg[u] == 0 {
				dead += r[u]
				continue
			}
			mass[s.Supernode(graph.NodeID(u))] += r[u] / wdeg[u]
		}
		for a := 0; a < ns; a++ {
			superIn[a] = 0
		}
		for a := 0; a < ns; a++ {
			s.ForEachSuperNeighbor(uint32(a), func(b uint32, w float64) {
				superIn[a] += w * mass[b]
			})
		}
		delta := 0.0
		for u := 0; u < n; u++ {
			su := s.Supernode(graph.NodeID(u))
			in := superIn[su]
			if selfW[su] > 0 && wdeg[u] > 0 {
				in -= selfW[su] * (r[u] / wdeg[u]) // u is not its own neighbor
			}
			next[u] = c * in
		}
		next[q] += cfg.Restart + c*dead
		for i := range next {
			d := next[i] - r[i]
			if d < 0 {
				d = -d
			}
			delta += d
		}
		r, next = next, r
		if delta < cfg.Eps {
			break
		}
	}
	return r, nil
}
