package queries

import "context"

// The iterative queries (RWR, PHP, PageRank, push) accept an optional
// context through their configs so that long power iterations can be
// cancelled mid-flight — per-request timeouts in the serving layer depend on
// this. A nil context never cancels, so zero-valued configs behave exactly
// as before.

// ctxErr reports a pending cancellation on ctx without blocking; a nil ctx
// never cancels.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}
