package queries

import (
	"math"
	"testing"

	"pegasus/internal/gen"
	"pegasus/internal/graph"
	"pegasus/internal/summary"
)

func TestDegreesMatchGraph(t *testing.T) {
	g := gen.BarabasiAlbert(100, 2, 1)
	d := Degrees(GraphOracle{g})
	for u := 0; u < g.NumNodes(); u++ {
		if d[u] != float64(g.Degree(graph.NodeID(u))) {
			t.Fatalf("Degrees[%d] = %v, want %d", u, d[u], g.Degree(graph.NodeID(u)))
		}
	}
}

func TestDegreesOnIdentitySummary(t *testing.T) {
	g := gen.BarabasiAlbert(80, 2, 2)
	s := summary.Identity(g)
	dg := Degrees(GraphOracle{g})
	ds := Degrees(SummaryOracle{s})
	for u := range dg {
		if dg[u] != ds[u] {
			t.Fatalf("identity summary changed degree of %d", u)
		}
	}
}

func TestClusteringCoefficient(t *testing.T) {
	// Triangle: coefficient 1 everywhere. Star: 0 at the hub.
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	tri := b.Build()
	if got := ClusteringCoefficient(GraphOracle{tri}, 0); got != 1 {
		t.Fatalf("triangle coefficient = %v, want 1", got)
	}
	sb := graph.NewBuilder(4)
	sb.AddEdge(0, 1)
	sb.AddEdge(0, 2)
	sb.AddEdge(0, 3)
	star := sb.Build()
	if got := ClusteringCoefficient(GraphOracle{star}, 0); got != 0 {
		t.Fatalf("star hub coefficient = %v, want 0", got)
	}
	if got := ClusteringCoefficient(GraphOracle{star}, 1); got != 0 {
		t.Fatalf("degree-1 coefficient = %v, want 0", got)
	}
}

func TestPageRank(t *testing.T) {
	g := gen.BarabasiAlbert(200, 2, 3)
	pr := PageRank(GraphOracle{g}, PageRankConfig{})
	sum := 0.0
	maxU, maxV := 0, 0.0
	for u, v := range pr {
		if v <= 0 {
			t.Fatalf("PageRank[%d] = %v, want > 0", u, v)
		}
		sum += v
		if v > maxV {
			maxU, maxV = u, v
		}
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("PageRank sums to %v, want 1", sum)
	}
	// The top-ranked node should be among the high-degree seed hubs.
	if g.Degree(graph.NodeID(maxU)) < g.MaxDegree()/4 {
		t.Errorf("top PageRank node %d has degree %d, max is %d", maxU, g.Degree(graph.NodeID(maxU)), g.MaxDegree())
	}
	// Identity summary gives identical PageRank.
	s := summary.Identity(g)
	pr2 := PageRank(SummaryOracle{s}, PageRankConfig{})
	for u := range pr {
		if math.Abs(pr[u]-pr2[u]) > 1e-9 {
			t.Fatal("identity summary changed PageRank")
		}
	}
}

func TestEigenvectorCentrality(t *testing.T) {
	// On a star, the hub has the highest centrality.
	b := graph.NewBuilder(5)
	for i := 1; i < 5; i++ {
		b.AddEdge(0, graph.NodeID(i))
	}
	g := b.Build()
	ec := EigenvectorCentrality(GraphOracle{g}, 0, 0)
	for u := 1; u < 5; u++ {
		if ec[u] >= ec[0] {
			t.Fatalf("leaf %d centrality %v >= hub %v", u, ec[u], ec[0])
		}
	}
	// L2 normalized.
	norm := 0.0
	for _, x := range ec {
		norm += x * x
	}
	if math.Abs(norm-1) > 1e-6 {
		t.Fatalf("centrality norm = %v, want 1", norm)
	}
}

func TestDFSOrder(t *testing.T) {
	// Path 0-1-2-3: preorder from 0 is exactly the path.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g := b.Build()
	order := DFSOrder(GraphOracle{g}, 0)
	want := []graph.NodeID{0, 1, 2, 3}
	if len(order) != len(want) {
		t.Fatalf("DFSOrder = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("DFSOrder = %v, want %v", order, want)
		}
	}
}

func TestDijkstraUnweightedMatchesBFS(t *testing.T) {
	g := gen.BarabasiAlbert(150, 2, 4)
	d, err := Dijkstra(GraphOracle{g}, 0)
	if err != nil {
		t.Fatal(err)
	}
	bfs := graph.BFS(g, 0)
	for u := range d {
		if bfs[u] == graph.Unreached {
			if !math.IsInf(d[u], 1) {
				t.Fatalf("node %d: Dijkstra %v, BFS unreached", u, d[u])
			}
			continue
		}
		if math.Abs(d[u]-float64(bfs[u])) > 1e-9 {
			t.Fatalf("node %d: Dijkstra %v != BFS %d", u, d[u], bfs[u])
		}
	}
}

func TestDijkstraWeightsLowerCost(t *testing.T) {
	// Two parallel 2-hop routes 0-1-3 (heavy, w=4 each) vs 0-2-3 (light,
	// w=0.5): cost via weights 1/w makes the heavy route cheaper.
	superOf := []uint32{0, 1, 2, 3}
	sb := summary.NewBuilder(superOf)
	sb.AddSuperedge(0, 1, 4)
	sb.AddSuperedge(1, 3, 4)
	sb.AddSuperedge(0, 2, 0.5)
	sb.AddSuperedge(2, 3, 0.5)
	s := sb.Build()
	d, err := Dijkstra(SummaryOracle{s}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d[3]-0.5) > 1e-9 { // 1/4 + 1/4 via node 1
		t.Fatalf("d[3] = %v, want 0.5 (heavy route)", d[3])
	}
	if math.Abs(d[1]-0.25) > 1e-9 {
		t.Fatalf("d[1] = %v, want 0.25", d[1])
	}
	if err := assertRange(d); err != nil {
		t.Fatal(err)
	}
}

func assertRange(d []float64) error {
	for _, x := range d {
		if x < 0 {
			return errNegative
		}
	}
	return nil
}

var errNegative = errorString("negative distance")

type errorString string

func (e errorString) Error() string { return string(e) }

func TestDijkstraRangeCheck(t *testing.T) {
	g := gen.BarabasiAlbert(10, 2, 5)
	if _, err := Dijkstra(GraphOracle{g}, 99); err == nil {
		t.Fatal("out-of-range source accepted")
	}
}
