package queries

import (
	"context"
	"fmt"

	"pegasus/internal/graph"
	"pegasus/internal/summary"
)

// PHPConfig parameterizes penalized hitting probability.
type PHPConfig struct {
	// C is the penalty factor c (default 0.95, §V-A).
	C float64
	// Eps is the L∞ convergence tolerance (default 1e-9).
	Eps float64
	// MaxIter caps fixed-point iterations (default 1000).
	MaxIter int
	// Ctx, when non-nil, is checked once per fixed-point iteration; a
	// cancelled context aborts the query with the context's error.
	Ctx context.Context
}

func (c PHPConfig) withDefaults() PHPConfig {
	if c.C == 0 {
		c.C = 0.95
	}
	if c.Eps == 0 {
		c.Eps = 1e-9
	}
	if c.MaxIter == 0 {
		c.MaxIter = 1000
	}
	return c
}

// PHP computes penalized hitting probabilities w.r.t. query node q [45],
// [46]: PHP_q = 1 and PHP_u = c · Σ_{v∈N_u} (w_uv/w_u)·PHP_v for u ≠ q,
// solved by Jacobi fixed-point iteration over any Oracle.
func PHP(o Oracle, q graph.NodeID, cfg PHPConfig) ([]float64, error) {
	cfg = cfg.withDefaults()
	n := o.NumNodes()
	if int(q) >= n {
		return nil, fmt.Errorf("queries: query node %d out of range (|V|=%d)", q, n)
	}
	wdeg := make([]float64, n)
	for u := 0; u < n; u++ {
		o.ForEachNeighbor(graph.NodeID(u), func(_ graph.NodeID, w float64) {
			wdeg[u] += w
		})
	}
	p := make([]float64, n)
	next := make([]float64, n)
	p[q] = 1
	for iter := 0; iter < cfg.MaxIter; iter++ {
		if err := ctxErr(cfg.Ctx); err != nil {
			return nil, err
		}
		delta := 0.0
		for u := 0; u < n; u++ {
			if graph.NodeID(u) == q {
				next[u] = 1
				continue
			}
			if wdeg[u] == 0 {
				next[u] = 0
				continue
			}
			sum := 0.0
			o.ForEachNeighbor(graph.NodeID(u), func(v graph.NodeID, w float64) {
				sum += w * p[v]
			})
			next[u] = cfg.C * sum / wdeg[u]
			if d := next[u] - p[u]; d > delta {
				delta = d
			} else if -d > delta {
				delta = -d
			}
		}
		p, next = next, p
		if delta < cfg.Eps {
			break
		}
	}
	return p, nil
}

// GraphPHP answers PHP exactly on the input graph.
func GraphPHP(g *graph.Graph, q graph.NodeID, cfg PHPConfig) ([]float64, error) {
	return PHP(GraphOracle{g}, q, cfg)
}

// SummaryPHP answers PHP on a summary graph with per-iteration cost
// O(|V|+|P|), aggregating PHP mass per supernode (reconstructed adjacency is
// block-constant, as in SummaryRWR).
func SummaryPHP(s *summary.Summary, q graph.NodeID, cfg PHPConfig) ([]float64, error) {
	cfg = cfg.withDefaults()
	n := s.NumNodes()
	if int(q) >= n {
		return nil, fmt.Errorf("queries: query node %d out of range (|V|=%d)", q, n)
	}
	ns := s.NumSupernodes()
	wdeg := make([]float64, n)
	selfW := make([]float64, ns)
	for a := 0; a < ns; a++ {
		var aw float64
		s.ForEachSuperNeighbor(uint32(a), func(b uint32, w float64) {
			cnt := len(s.Members(b))
			if b == uint32(a) {
				selfW[a] = w
				cnt--
			}
			aw += w * float64(cnt)
		})
		for _, u := range s.Members(uint32(a)) {
			wdeg[u] = aw
		}
	}

	p := make([]float64, n)
	next := make([]float64, n)
	sumPHP := make([]float64, ns)  // Σ_{v∈A} p[v]
	superIn := make([]float64, ns) // Σ_{B adj A} w_AB · sumPHP_B
	p[q] = 1
	for iter := 0; iter < cfg.MaxIter; iter++ {
		if err := ctxErr(cfg.Ctx); err != nil {
			return nil, err
		}
		for a := range sumPHP {
			sumPHP[a] = 0
		}
		for u := 0; u < n; u++ {
			sumPHP[s.Supernode(graph.NodeID(u))] += p[u]
		}
		for a := 0; a < ns; a++ {
			superIn[a] = 0
			s.ForEachSuperNeighbor(uint32(a), func(b uint32, w float64) {
				superIn[a] += w * sumPHP[b]
			})
		}
		delta := 0.0
		for u := 0; u < n; u++ {
			if graph.NodeID(u) == q {
				next[u] = 1
				continue
			}
			if wdeg[u] == 0 {
				next[u] = 0
				continue
			}
			su := s.Supernode(graph.NodeID(u))
			in := superIn[su] - selfW[su]*p[u]
			next[u] = cfg.C * in / wdeg[u]
			if d := next[u] - p[u]; d > delta {
				delta = d
			} else if -d > delta {
				delta = -d
			}
		}
		p, next = next, p
		if delta < cfg.Eps {
			break
		}
	}
	return p, nil
}
