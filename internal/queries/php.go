package queries

import (
	"context"

	"pegasus/internal/graph"
	"pegasus/internal/summary"
)

// PHPConfig parameterizes penalized hitting probability.
type PHPConfig struct {
	// C is the penalty factor c (default 0.95, §V-A).
	C float64
	// Eps is the L∞ convergence tolerance (default 1e-9).
	Eps float64
	// MaxIter caps fixed-point iterations (default 1000).
	MaxIter int
	// Ctx, when non-nil, is checked once per fixed-point iteration; a
	// cancelled context aborts the query with the context's error.
	Ctx context.Context
}

func (c PHPConfig) withDefaults() PHPConfig {
	if c.C == 0 {
		c.C = 0.95
	}
	if c.Eps == 0 {
		c.Eps = 1e-9
	}
	if c.MaxIter == 0 {
		c.MaxIter = 1000
	}
	return c
}

// PHP computes penalized hitting probabilities w.r.t. query node q [45],
// [46]: PHP_q = 1 and PHP_u = c · Σ_{v∈N_u} (w_uv/w_u)·PHP_v for u ≠ q,
// solved by Jacobi fixed-point iteration over any Oracle. For many queries
// on one artifact, a Session shares the weighted-degree precompute.
func PHP(o Oracle, q graph.NodeID, cfg PHPConfig) ([]float64, error) {
	return NewSession(o).PHP(q, cfg)
}

// GraphPHP answers PHP exactly on the input graph.
func GraphPHP(g *graph.Graph, q graph.NodeID, cfg PHPConfig) ([]float64, error) {
	return PHP(GraphOracle{g}, q, cfg)
}

// SummaryPHP answers PHP on a summary graph with per-iteration cost
// O(|V|+|P|), aggregating PHP mass per supernode (reconstructed adjacency is
// block-constant, as in SummaryRWR). For many queries on one summary,
// NewSummarySession shares the precompute across calls.
func SummaryPHP(s *summary.Summary, q graph.NodeID, cfg PHPConfig) ([]float64, error) {
	return NewSummarySession(s).PHP(q, cfg)
}
