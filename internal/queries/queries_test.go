package queries

import (
	"math"
	"math/rand"
	"testing"

	"pegasus/internal/core"
	"pegasus/internal/gen"
	"pegasus/internal/graph"
	"pegasus/internal/summary"
)

func approxEqual(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

// randomSummary summarizes a random BA graph at the given ratio; exercised
// summaries have non-trivial supernodes and self-loops.
func randomSummary(t *testing.T, seed int64, ratio float64) (*graph.Graph, *summary.Summary) {
	t.Helper()
	g := gen.BarabasiAlbert(150, 3, seed)
	res, err := core.Summarize(g, core.Config{BudgetRatio: ratio, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return g, res.Summary
}

func TestRWRIsStochastic(t *testing.T) {
	g := gen.BarabasiAlbert(100, 2, 1)
	r, err := GraphRWR(g, 0, RWRConfig{})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, x := range r {
		if x < 0 {
			t.Fatal("negative RWR score")
		}
		sum += x
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("RWR scores sum to %v, want 1", sum)
	}
}

func TestRWRLocality(t *testing.T) {
	// With a strong restart probability, RWR mass concentrates near the
	// query node: interior path nodes decay monotonically with distance.
	// (With a weak restart the stationary distribution is degree-dominated,
	// so the endpoint comparison is intentionally excluded.)
	b := graph.NewBuilder(9)
	for i := 0; i < 8; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	g := b.Build()
	r, err := GraphRWR(g, 0, RWRConfig{Restart: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if r[0] <= r[1] {
		t.Fatalf("query node not dominant under strong restart: %v <= %v", r[0], r[1])
	}
	for i := 1; i+2 < len(r); i++ {
		if r[i] <= r[i+1] {
			t.Fatalf("RWR not decaying along path: r[%d]=%v <= r[%d]=%v", i, r[i], i+1, r[i+1])
		}
	}
}

func TestSummaryRWRMatchesNaive(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		g, s := randomSummary(t, seed, 0.4)
		q := graph.NodeID(int(seed) * 7 % g.NumNodes())
		fast, err := SummaryRWR(s, q, RWRConfig{})
		if err != nil {
			t.Fatal(err)
		}
		naive, err := RWR(SummaryOracle{s}, q, RWRConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if !approxEqual(fast, naive, 1e-7) {
			t.Fatalf("seed %d: block-accelerated RWR deviates from naive Alg. 6", seed)
		}
	}
}

func TestSummaryRWROnIdentityIsExact(t *testing.T) {
	g := gen.BarabasiAlbert(80, 2, 4)
	s := summary.Identity(g)
	exact, err := GraphRWR(g, 5, RWRConfig{})
	if err != nil {
		t.Fatal(err)
	}
	approx, err := SummaryRWR(s, 5, RWRConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !approxEqual(exact, approx, 1e-9) {
		t.Fatal("RWR on identity summary must equal RWR on graph")
	}
}

func TestHOPMatchesBFS(t *testing.T) {
	g := gen.BarabasiAlbert(120, 2, 5)
	d1, err := GraphHOP(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := HOP(GraphOracle{g}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("HOP mismatch at %d: %d vs %d", i, d1[i], d2[i])
		}
	}
}

func TestSummaryHOPMatchesNaive(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4} {
		g, s := randomSummary(t, seed, 0.35)
		q := graph.NodeID(int(seed) * 13 % g.NumNodes())
		fast, err := SummaryHOP(s, q)
		if err != nil {
			t.Fatal(err)
		}
		naive, err := HOP(SummaryOracle{s}, q)
		if err != nil {
			t.Fatal(err)
		}
		for i := range fast {
			if fast[i] != naive[i] {
				t.Fatalf("seed %d: SummaryHOP[%d]=%d, naive=%d", seed, i, fast[i], naive[i])
			}
		}
	}
}

func TestSummaryHOPSelfLoopSemantics(t *testing.T) {
	// Supernode {0,1} with self-loop, {2} attached to it: dist(0->1) = 1.
	sb := summary.NewBuilder([]uint32{0, 0, 1})
	sb.AddSuperedge(0, 0, 1)
	sb.AddSuperedge(0, 1, 1)
	s := sb.Build()
	d, err := SummaryHOP(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d[1] != 1 || d[2] != 1 {
		t.Fatalf("distances = %v, want [0 1 1]", d)
	}
	// Without the self-loop, the only path 0->1 goes through node 2.
	sb2 := summary.NewBuilder([]uint32{0, 0, 1})
	sb2.AddSuperedge(0, 1, 1)
	s2 := sb2.Build()
	d2, err := SummaryHOP(s2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d2[2] != 1 || d2[1] != 2 {
		t.Fatalf("distances = %v, want [0 2 1]", d2)
	}
}

func TestFillUnreached(t *testing.T) {
	d := []int32{0, 2, -1, 1, -1}
	FillUnreached(d, 99)
	if d[2] != 2 || d[4] != 2 {
		t.Fatalf("FillUnreached = %v, want unreached -> 2", d)
	}
	all := []int32{-1, -1}
	FillUnreached(all, 7)
	if all[0] != 7 || all[1] != 7 {
		t.Fatalf("FillUnreached(all unreached) = %v, want fallback 7", all)
	}
}

func TestPHPProperties(t *testing.T) {
	g := gen.BarabasiAlbert(100, 2, 6)
	p, err := GraphPHP(g, 4, PHPConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if p[4] != 1 {
		t.Fatalf("PHP at query node = %v, want 1", p[4])
	}
	for u, x := range p {
		if x < 0 || x > 1 {
			t.Fatalf("PHP[%d] = %v outside [0,1]", u, x)
		}
	}
	// Direct neighbors of q score at least c/deg * php... simply: some
	// neighbor must score above a distant node on a path-like check.
	d := graph.BFS(g, 4)
	var near, far float64
	for u := range p {
		if d[u] == 1 && p[u] > near {
			near = p[u]
		}
		if d[u] >= 4 && p[u] > far {
			far = p[u]
		}
	}
	if near <= far {
		t.Fatalf("PHP near=%v not above far=%v", near, far)
	}
}

func TestSummaryPHPMatchesNaive(t *testing.T) {
	for _, seed := range []int64{2, 5} {
		g, s := randomSummary(t, seed, 0.4)
		q := graph.NodeID(int(seed) * 11 % g.NumNodes())
		fast, err := SummaryPHP(s, q, PHPConfig{})
		if err != nil {
			t.Fatal(err)
		}
		naive, err := PHP(SummaryOracle{s}, q, PHPConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if !approxEqual(fast, naive, 1e-7) {
			t.Fatalf("seed %d: block-accelerated PHP deviates from naive", seed)
		}
	}
}

func TestSummaryPHPOnIdentityIsExact(t *testing.T) {
	g := gen.BarabasiAlbert(60, 2, 8)
	s := summary.Identity(g)
	exact, err := GraphPHP(g, 2, PHPConfig{})
	if err != nil {
		t.Fatal(err)
	}
	approx, err := SummaryPHP(s, 2, PHPConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !approxEqual(exact, approx, 1e-9) {
		t.Fatal("PHP on identity summary must equal PHP on graph")
	}
}

func TestWeightedSummaryQueries(t *testing.T) {
	// A weighted summary: verify fast implementations agree with naive under
	// non-unit weights.
	rng := rand.New(rand.NewSource(9))
	superOf := make([]uint32, 30)
	for i := range superOf {
		superOf[i] = uint32(rng.Intn(8))
	}
	sb := summary.NewBuilder(superOf)
	for a := 0; a < 8; a++ {
		for b := a; b < 8; b++ {
			if rng.Float64() < 0.4 {
				sb.AddSuperedge(uint32(a), uint32(b), 0.25+rng.Float64())
			}
		}
	}
	s := sb.Build()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	fastR, err := SummaryRWR(s, 0, RWRConfig{})
	if err != nil {
		t.Fatal(err)
	}
	naiveR, err := RWR(SummaryOracle{s}, 0, RWRConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !approxEqual(fastR, naiveR, 1e-7) {
		t.Fatal("weighted RWR mismatch")
	}
	fastP, err := SummaryPHP(s, 0, PHPConfig{})
	if err != nil {
		t.Fatal(err)
	}
	naiveP, err := PHP(SummaryOracle{s}, 0, PHPConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !approxEqual(fastP, naiveP, 1e-7) {
		t.Fatal("weighted PHP mismatch")
	}
}

func TestQueryNodeRangeChecks(t *testing.T) {
	g := gen.BarabasiAlbert(20, 2, 10)
	s := summary.Identity(g)
	if _, err := GraphRWR(g, 99, RWRConfig{}); err == nil {
		t.Error("GraphRWR accepted out-of-range query")
	}
	if _, err := SummaryRWR(s, 99, RWRConfig{}); err == nil {
		t.Error("SummaryRWR accepted out-of-range query")
	}
	if _, err := GraphHOP(g, 99); err == nil {
		t.Error("GraphHOP accepted out-of-range query")
	}
	if _, err := SummaryHOP(s, 99); err == nil {
		t.Error("SummaryHOP accepted out-of-range query")
	}
	if _, err := GraphPHP(g, 99, PHPConfig{}); err == nil {
		t.Error("GraphPHP accepted out-of-range query")
	}
	if _, err := SummaryPHP(s, 99, PHPConfig{}); err == nil {
		t.Error("SummaryPHP accepted out-of-range query")
	}
}

func TestToFloats(t *testing.T) {
	f := ToFloats([]int32{0, 3, -1})
	if f[0] != 0 || f[1] != 3 || f[2] != -1 {
		t.Fatalf("ToFloats = %v", f)
	}
}
