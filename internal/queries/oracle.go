// Package queries implements the three node-similarity queries of §V-A —
// random walk with restart (RWR, Alg. 6), shortest-path hop counts (HOP,
// Alg. 5) and penalized hitting probability (PHP) — both exactly on an input
// graph and approximately on a summary graph.
//
// Summary-side answering comes in two flavors: a naive reference that
// expands Alg. 4 neighborhoods node by node (exactly the paper's
// pseudocode), and block-accelerated versions exploiting that reconstructed
// adjacency is constant within supernode blocks, bringing the per-iteration
// cost down from O(|Ê|) to O(|V|+|P|). The two are cross-validated in tests.
package queries

import (
	"pegasus/internal/graph"
	"pegasus/internal/summary"
)

// Oracle abstracts neighborhood access so that the naive query
// implementations run identically on a graph and on a summary (Appendix A:
// "a wide range of graph algorithms access graphs only through neighborhood
// queries").
type Oracle interface {
	// NumNodes returns the node count.
	NumNodes() int
	// ForEachNeighbor calls fn for every (possibly reconstructed) neighbor
	// of u with the corresponding edge weight (1 on unweighted graphs).
	ForEachNeighbor(u graph.NodeID, fn func(v graph.NodeID, w float64))
}

// GraphOracle adapts *graph.Graph to Oracle with unit weights.
type GraphOracle struct{ G *graph.Graph }

// NumNodes implements Oracle.
func (o GraphOracle) NumNodes() int { return o.G.NumNodes() }

// ForEachNeighbor implements Oracle.
func (o GraphOracle) ForEachNeighbor(u graph.NodeID, fn func(v graph.NodeID, w float64)) {
	for _, v := range o.G.Neighbors(u) {
		fn(v, 1)
	}
}

// SummaryOracle adapts *summary.Summary to Oracle by expanding Alg. 4
// neighborhoods with superedge weights.
type SummaryOracle struct{ S *summary.Summary }

// NumNodes implements Oracle.
func (o SummaryOracle) NumNodes() int { return o.S.NumNodes() }

// ForEachNeighbor implements Oracle.
func (o SummaryOracle) ForEachNeighbor(u graph.NodeID, fn func(v graph.NodeID, w float64)) {
	su := o.S.Supernode(u)
	o.S.ForEachSuperNeighbor(su, func(b uint32, w float64) {
		for _, v := range o.S.Members(b) {
			if v != u {
				fn(v, w)
			}
		}
	})
}
