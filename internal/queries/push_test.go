package queries

import (
	"math"
	"sort"
	"testing"

	"pegasus/internal/gen"
	"pegasus/internal/graph"
	"pegasus/internal/summary"
)

func TestPushRWRApproximatesPowerIteration(t *testing.T) {
	g := gen.BarabasiAlbert(300, 3, 1)
	exact, err := GraphRWR(g, 7, RWRConfig{Eps: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	approx, err := PushRWR(GraphOracle{g}, 7, PushConfig{Eps: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	l1 := 0.0
	for i := range exact {
		l1 += math.Abs(exact[i] - approx[i])
	}
	if l1 > 0.01 {
		t.Fatalf("push RWR L1 error %v too large", l1)
	}
	// Mass approximately conserved.
	sum := 0.0
	for _, x := range approx {
		sum += x
	}
	if math.Abs(sum-1) > 0.01 {
		t.Fatalf("push RWR mass %v, want ~1", sum)
	}
}

func TestPushRWRTopKMatchesExact(t *testing.T) {
	g := gen.PlantedPartition(gen.SBMConfig{Nodes: 400, Communities: 8, AvgDegree: 10, MixingP: 0.05}, 2)
	lcc, _ := graph.LargestComponent(g)
	exact, err := GraphRWR(lcc, 3, RWRConfig{Eps: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	approx, err := PushRWR(GraphOracle{lcc}, 3, PushConfig{Eps: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	// Top-10 by push must overlap top-10 exact heavily (k-NN use case).
	te := TopK(exact, 10)
	ta := TopK(approx, 10)
	inExact := map[graph.NodeID]bool{}
	for _, u := range te {
		inExact[u] = true
	}
	overlap := 0
	for _, u := range ta {
		if inExact[u] {
			overlap++
		}
	}
	if overlap < 8 {
		t.Fatalf("top-10 overlap = %d/10, want >= 8", overlap)
	}
}

func TestPushRWROnSummary(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, 3)
	s := summary.Identity(g)
	a, err := PushRWR(SummaryOracle{s}, 0, PushConfig{Eps: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := PushRWR(GraphOracle{g}, 0, PushConfig{Eps: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			t.Fatal("identity summary changed push RWR")
		}
	}
}

func TestPushRWRLocality(t *testing.T) {
	// On a long path, pushing from one end must leave far residuals at ~0
	// without touching most of the graph (locality is the point).
	b := graph.NewBuilder(10000)
	for i := 0; i < 9999; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	g := b.Build()
	p, err := PushRWR(GraphOracle{g}, 0, PushConfig{Restart: 0.2, Eps: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if p[0] <= p[100] {
		t.Fatal("no locality: source mass not dominant")
	}
	if p[9999] > 1e-6 {
		t.Fatalf("far end received %v mass, want ~0", p[9999])
	}
}

func TestPushRWRRangeCheck(t *testing.T) {
	g := gen.BarabasiAlbert(10, 2, 4)
	if _, err := PushRWR(GraphOracle{g}, 99, PushConfig{}); err == nil {
		t.Fatal("out-of-range query accepted")
	}
}

func TestTopK(t *testing.T) {
	scores := []float64{0.1, 0.9, 0.5, 0.9, 0.2}
	top := TopK(scores, 3)
	want := []graph.NodeID{1, 3, 2} // ties by ID
	if len(top) != 3 {
		t.Fatalf("TopK = %v", top)
	}
	for i := range want {
		if top[i] != want[i] {
			t.Fatalf("TopK = %v, want %v", top, want)
		}
	}
	if got := TopK(scores, 99); len(got) != len(scores) {
		t.Fatal("oversized k not clamped")
	}
	if got := TopK(scores, 0); got != nil {
		t.Fatal("k=0 should give nil")
	}
	// Full ordering is descending.
	full := TopK(scores, len(scores))
	vals := make([]float64, len(full))
	for i, u := range full {
		vals[i] = scores[u]
	}
	if !sort.IsSorted(sort.Reverse(sort.Float64Slice(vals))) {
		t.Fatalf("TopK not descending: %v", vals)
	}
}
