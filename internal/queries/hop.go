package queries

import (
	"fmt"

	"pegasus/internal/graph"
	"pegasus/internal/summary"
)

// HOP answers the shortest-path-length query (Alg. 5) over any Oracle via
// BFS on reconstructed neighborhoods. Unreachable nodes get -1; use
// FillUnreached to apply the paper's convention (length of the longest
// observed path).
func HOP(o Oracle, q graph.NodeID) ([]int32, error) {
	n := o.NumNodes()
	if int(q) >= n {
		return nil, fmt.Errorf("queries: query node %d out of range (|V|=%d)", q, n)
	}
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[q] = 0
	queue := []graph.NodeID{q}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		o.ForEachNeighbor(u, func(v graph.NodeID, _ float64) {
			if dist[v] == -1 {
				dist[v] = du + 1
				queue = append(queue, v)
			}
		})
	}
	return dist, nil
}

// GraphHOP answers HOP exactly on the input graph.
func GraphHOP(g *graph.Graph, q graph.NodeID) ([]int32, error) {
	if int(q) >= g.NumNodes() {
		return nil, fmt.Errorf("queries: query node %d out of range (|V|=%d)", q, g.NumNodes())
	}
	return graph.BFS(g, q), nil
}

// SummaryHOP answers HOP on a summary graph at supernode granularity in
// O(|V|+|P|) per BFS level: all members of a supernode become reachable at
// the same hop (they share their reconstructed neighborhood), except for the
// query node's own supernode, whose remaining members are only adjacent to q
// through a self-loop.
func SummaryHOP(s *summary.Summary, q graph.NodeID) ([]int32, error) {
	n := s.NumNodes()
	if int(q) >= n {
		return nil, fmt.Errorf("queries: query node %d out of range (|V|=%d)", q, n)
	}
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[q] = 0
	ns := s.NumSupernodes()
	assigned := make([]int, ns) // members assigned so far per supernode
	sq := s.Supernode(q)
	assigned[sq] = 1

	// frontier holds supernodes that acquired newly-assigned members at the
	// current distance d; traversing any superedge assigns distance d+1 to
	// the unassigned members on the other side.
	frontier := []uint32{sq}
	for d := int32(0); len(frontier) > 0; d++ {
		var next []uint32
		for _, x := range frontier {
			s.ForEachSuperNeighbor(x, func(y uint32, _ float64) {
				if assigned[y] == len(s.Members(y)) {
					return
				}
				newly := 0
				for _, v := range s.Members(y) {
					if dist[v] == -1 {
						dist[v] = d + 1
						newly++
					}
				}
				if newly > 0 {
					assigned[y] += newly
					next = append(next, y)
				}
			})
		}
		frontier = next
	}
	return dist, nil
}

// FillUnreached replaces -1 entries with the maximum observed distance (the
// paper's convention for disconnected pairs: "the length of the longest path
// in the given (sub)graph"). If every node is unreachable, entries become
// fallback. Returns the same slice for chaining.
func FillUnreached(dist []int32, fallback int32) []int32 {
	max := int32(-1)
	for _, d := range dist {
		if d > max {
			max = d
		}
	}
	if max < 0 {
		max = fallback
	}
	for i, d := range dist {
		if d == -1 {
			dist[i] = max
		}
	}
	return dist
}

// ToFloats converts a distance vector to float64 for the accuracy metrics.
func ToFloats(dist []int32) []float64 {
	out := make([]float64, len(dist))
	for i, d := range dist {
		out[i] = float64(d)
	}
	return out
}
