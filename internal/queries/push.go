package queries

import (
	"context"
	"fmt"

	"pegasus/internal/graph"
)

// PushConfig parameterizes the forward-push local RWR approximation.
type PushConfig struct {
	// Restart is the restarting probability (default 0.05, matching RWR).
	Restart float64
	// Eps is the per-unit-degree residual tolerance: on exit every node u
	// satisfies residual(u) <= Eps·wdeg(u), which bounds the pointwise error
	// of the estimate (default 1e-7).
	Eps float64
	// MaxPushes caps the number of push operations (default 50·|V|).
	MaxPushes int
	// Ctx, when non-nil, is checked periodically (every 1024 pushes); a
	// cancelled context aborts the query with the context's error.
	Ctx context.Context
}

func (c PushConfig) withDefaults(n int) PushConfig {
	if c.Restart == 0 {
		c.Restart = 0.05
	}
	if c.Eps == 0 {
		c.Eps = 1e-7
	}
	if c.MaxPushes == 0 {
		c.MaxPushes = 50 * n
	}
	return c
}

// PushRWR approximates the RWR vector w.r.t. q by forward push (local
// search), the technique the paper's appendix cites for random-walk-based
// k-NN queries [79]: probability mass starts as a unit residual at q and is
// repeatedly "pushed" — a fraction Restart settles at the holding node, the
// rest spreads to neighbors — until all residuals are below Eps·degree.
// Unlike power iteration it touches only the region of the graph where mass
// is non-negligible, making single queries on large graphs or summaries
// far cheaper. Works over any Oracle.
func PushRWR(o Oracle, q graph.NodeID, cfg PushConfig) ([]float64, error) {
	n := o.NumNodes()
	if int(q) >= n {
		return nil, fmt.Errorf("queries: query node %d out of range (|V|=%d)", q, n)
	}
	cfg = cfg.withDefaults(n)

	wdeg := make([]float64, n)
	for u := 0; u < n; u++ {
		o.ForEachNeighbor(graph.NodeID(u), func(_ graph.NodeID, w float64) {
			wdeg[u] += w
		})
	}

	p := make([]float64, n)
	r := make([]float64, n)
	inQueue := make([]bool, n)
	r[q] = 1
	queue := []graph.NodeID{q}
	inQueue[q] = true

	pushes := 0
	for len(queue) > 0 && pushes < cfg.MaxPushes {
		if pushes&1023 == 0 {
			if err := ctxErr(cfg.Ctx); err != nil {
				return nil, err
			}
		}
		u := queue[0]
		queue = queue[1:]
		inQueue[u] = false
		ru := r[u]
		if wdeg[u] == 0 {
			// Dead end: the walk restarts at q immediately; settle the
			// restart share here and return the rest to q.
			p[u] += cfg.Restart * ru
			r[u] = 0
			rem := (1 - cfg.Restart) * ru
			if rem > 0 && u != q {
				r[q] += rem
				if !inQueue[q] && r[q] > cfg.Eps {
					queue = append(queue, q)
					inQueue[q] = true
				}
			} else if u == q {
				p[q] += rem // self-restart mass settles eventually; approximate by settling now
			}
			pushes++
			continue
		}
		if ru <= cfg.Eps*wdeg[u] {
			continue
		}
		p[u] += cfg.Restart * ru
		r[u] = 0
		share := (1 - cfg.Restart) * ru / wdeg[u]
		o.ForEachNeighbor(u, func(v graph.NodeID, w float64) {
			r[v] += share * w
			if !inQueue[v] && r[v] > cfg.Eps*wdeg[v] {
				queue = append(queue, v)
				inQueue[v] = true
			}
		})
		pushes++
	}
	// Settle leftover residuals in place: each residual's eventual settled
	// mass is proportional to it, and adding restart·r keeps the estimate a
	// lower bound improvement without another sweep.
	for u := 0; u < n; u++ {
		p[u] += cfg.Restart * r[u]
	}
	return p, nil
}

// TopK returns the k highest-scoring nodes of a score vector in descending
// order (ties broken by node ID) — the k-NN answer shape of [79].
func TopK(scores []float64, k int) []graph.NodeID {
	if k > len(scores) {
		k = len(scores)
	}
	if k <= 0 {
		return nil
	}
	idx := make([]graph.NodeID, len(scores))
	for i := range idx {
		idx[i] = graph.NodeID(i)
	}
	// Partial selection sort is O(k·n) but k is small for k-NN answers.
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(idx); j++ {
			si, sj := scores[idx[j]], scores[idx[best]]
			if si > sj || (si == sj && idx[j] < idx[best]) {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	return idx[:k]
}
