package queries

import (
	"strings"
	"testing"

	"pegasus/internal/graph"
)

// TestPHPBatchMatchesSingleCalls: the batched PHP path must be
// bit-identical to the one-shot entry points on both evaluators — the same
// invariant RWRBatch holds, now gated for the PHP bench arm.
func TestPHPBatchMatchesSingleCalls(t *testing.T) {
	g, s := sessionTestGraph(t)
	o := GraphOracle{g}
	qs := []graph.NodeID{0, 7, 7, 31, 119}
	cfg := PHPConfig{}

	got, err := PHPBatch(o, qs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		want, err := PHP(o, q, cfg)
		if err != nil {
			t.Fatal(err)
		}
		assertExactEqual(t, "oracle PHPBatch", graph.NodeID(i), got[i], want)
	}

	gotS, err := SummaryPHPBatch(s, qs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		want, err := SummaryPHP(s, q, cfg)
		if err != nil {
			t.Fatal(err)
		}
		assertExactEqual(t, "summary PHPBatch", graph.NodeID(i), gotS[i], want)
	}
}

// TestPHPBatchReportsFailingItem: an out-of-range node aborts the batch
// naming the offending item.
func TestPHPBatchReportsFailingItem(t *testing.T) {
	g, _ := sessionTestGraph(t)
	_, err := PHPBatch(GraphOracle{g}, []graph.NodeID{0, graph.NodeID(g.NumNodes())}, PHPConfig{})
	if err == nil {
		t.Fatal("out-of-range batch item did not error")
	}
	if !strings.Contains(err.Error(), "batch item 1") {
		t.Errorf("error %q does not name the failing item", err)
	}
}
