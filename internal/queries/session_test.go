package queries

import (
	"testing"

	"pegasus/internal/gen"
	"pegasus/internal/graph"
	"pegasus/internal/summary"
)

func sessionTestGraph(t *testing.T) (*graph.Graph, *summary.Summary) {
	t.Helper()
	g := gen.PlantedPartition(gen.SBMConfig{
		Nodes: 120, Communities: 3, AvgDegree: 8, MixingP: 0.1,
	}, 41)
	s := summary.Identity(g)
	return g, s
}

// TestSessionMatchesPlainCalls: a session answering many queries back to
// back must return exactly (bit-identical, not approximately) what the
// plain one-shot entry points return — scratch reuse must not leak state
// between queries, and the shared wdeg precompute must not change results.
func TestSessionMatchesPlainCalls(t *testing.T) {
	g, s := sessionTestGraph(t)
	o := GraphOracle{g}

	oSess := NewSession(o)
	sSess := NewSummarySession(s)
	rcfg := RWRConfig{}
	pcfg := PHPConfig{}
	for _, q := range []graph.NodeID{0, 7, 7, 31, 119} {
		gotR, err := oSess.RWR(q, rcfg)
		if err != nil {
			t.Fatal(err)
		}
		wantR, err := RWR(o, q, rcfg)
		if err != nil {
			t.Fatal(err)
		}
		assertExactEqual(t, "oracle RWR", q, gotR, wantR)

		// Interleave PHP on the same session: the buffers are shared across
		// the two query types, so this exercises cross-query contamination.
		gotP, err := oSess.PHP(q, pcfg)
		if err != nil {
			t.Fatal(err)
		}
		wantP, err := PHP(o, q, pcfg)
		if err != nil {
			t.Fatal(err)
		}
		assertExactEqual(t, "oracle PHP", q, gotP, wantP)

		gotSR, err := sSess.RWR(q, rcfg)
		if err != nil {
			t.Fatal(err)
		}
		wantSR, err := SummaryRWR(s, q, rcfg)
		if err != nil {
			t.Fatal(err)
		}
		assertExactEqual(t, "summary RWR", q, gotSR, wantSR)

		gotSP, err := sSess.PHP(q, pcfg)
		if err != nil {
			t.Fatal(err)
		}
		wantSP, err := SummaryPHP(s, q, pcfg)
		if err != nil {
			t.Fatal(err)
		}
		assertExactEqual(t, "summary PHP", q, gotSP, wantSP)
	}
}

func assertExactEqual(t *testing.T, label string, q graph.NodeID, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s q=%d: length %d, want %d", label, q, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s q=%d: index %d = %g, want %g (session diverged from one-shot)",
				label, q, i, got[i], want[i])
		}
	}
}

// TestSessionResultsOutliveSession: each call must return an independent
// vector; a later query on the same session must not mutate an earlier
// result.
func TestSessionResultsOutliveSession(t *testing.T) {
	g, _ := sessionTestGraph(t)
	sess := NewSession(GraphOracle{g})
	first, err := sess.RWR(3, RWRConfig{})
	if err != nil {
		t.Fatal(err)
	}
	snapshot := append([]float64(nil), first...)
	if _, err := sess.RWR(99, RWRConfig{}); err != nil {
		t.Fatal(err)
	}
	for i := range snapshot {
		if first[i] != snapshot[i] {
			t.Fatalf("result aliased session scratch: index %d changed %g -> %g",
				i, snapshot[i], first[i])
		}
	}
}

func TestRWRBatchMatchesSingles(t *testing.T) {
	g, s := sessionTestGraph(t)
	qs := []graph.NodeID{5, 0, 5, 60, 119}
	cfg := RWRConfig{Eps: 1e-12, MaxIter: 20}

	got, err := RWRBatch(GraphOracle{g}, qs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		want, err := RWR(GraphOracle{g}, q, cfg)
		if err != nil {
			t.Fatal(err)
		}
		assertExactEqual(t, "RWRBatch", q, got[i], want)
	}

	gotS, err := SummaryRWRBatch(s, qs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		want, err := SummaryRWR(s, q, cfg)
		if err != nil {
			t.Fatal(err)
		}
		assertExactEqual(t, "SummaryRWRBatch", q, gotS[i], want)
	}
}

func TestSessionOutOfRange(t *testing.T) {
	g, s := sessionTestGraph(t)
	if _, err := NewSession(GraphOracle{g}).RWR(graph.NodeID(g.NumNodes()), RWRConfig{}); err == nil {
		t.Error("oracle session accepted an out-of-range query node")
	}
	if _, err := NewSummarySession(s).PHP(graph.NodeID(g.NumNodes()), PHPConfig{}); err == nil {
		t.Error("summary session accepted an out-of-range query node")
	}
	if _, err := RWRBatch(GraphOracle{g}, []graph.NodeID{1, graph.NodeID(g.NumNodes())}, RWRConfig{}); err == nil {
		t.Error("RWRBatch accepted an out-of-range query node")
	}
}
