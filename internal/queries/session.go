package queries

import (
	"fmt"

	"pegasus/internal/graph"
	"pegasus/internal/obs"
	"pegasus/internal/summary"
)

// Session answers repeated RWR and PHP queries over one artifact while
// sharing the query-independent work across calls: the weighted-degree
// vector (and, on summaries, the per-supernode self-loop weights) is
// computed once on first use, and the iteration scratch buffers are reused
// instead of reallocated per query. A batch of B queries therefore costs
// one precompute scan plus B iteration runs, where the plain entry points
// (RWR, SummaryRWR, ...) pay the scan B times — the amortization the
// paper's multi-query serving workloads (§IV, §V) rely on.
//
// Each call returns a freshly allocated result vector, so results outlive
// the session. Sessions are NOT safe for concurrent use; create one per
// goroutine (they are cheap until first use).
type Session interface {
	// RWR answers random walk with restart w.r.t. q (Alg. 6).
	RWR(q graph.NodeID, cfg RWRConfig) ([]float64, error)
	// PHP answers penalized hitting probability w.r.t. q.
	PHP(q graph.NodeID, cfg PHPConfig) ([]float64, error)
}

// NewSession returns a Session over any Oracle, running the generic
// (neighborhood-query) implementations of RWR and PHP.
func NewSession(o Oracle) Session { return &oracleSession{o: o} }

// NewSummarySession returns a Session over a summary graph, running the
// block-accelerated implementations (O(|V|+|P|) per iteration).
func NewSummarySession(s *summary.Summary) Session { return &summarySession{s: s} }

// RWRBatch answers RWR for every node of qs through one shared Session.
// Results are in qs order. The first failing node aborts the batch; callers
// needing partial results should drive a Session directly.
func RWRBatch(o Oracle, qs []graph.NodeID, cfg RWRConfig) ([][]float64, error) {
	return rwrBatch(NewSession(o), qs, cfg)
}

// SummaryRWRBatch is RWRBatch over the block-accelerated summary evaluator.
func SummaryRWRBatch(s *summary.Summary, qs []graph.NodeID, cfg RWRConfig) ([][]float64, error) {
	return rwrBatch(NewSummarySession(s), qs, cfg)
}

func rwrBatch(sess Session, qs []graph.NodeID, cfg RWRConfig) ([][]float64, error) {
	out := make([][]float64, len(qs))
	for i, q := range qs {
		r, err := sess.RWR(q, cfg)
		if err != nil {
			return nil, fmt.Errorf("queries: batch item %d (node %d): %w", i, q, err)
		}
		out[i] = r
	}
	return out, nil
}

// PHPBatch answers PHP for every node of qs through one shared Session —
// the same weighted-degree amortization as RWRBatch (PHP shares the
// session precompute). Results are in qs order; the first failing node
// aborts the batch.
func PHPBatch(o Oracle, qs []graph.NodeID, cfg PHPConfig) ([][]float64, error) {
	return phpBatch(NewSession(o), qs, cfg)
}

// SummaryPHPBatch is PHPBatch over the block-accelerated summary evaluator.
func SummaryPHPBatch(s *summary.Summary, qs []graph.NodeID, cfg PHPConfig) ([][]float64, error) {
	return phpBatch(NewSummarySession(s), qs, cfg)
}

func phpBatch(sess Session, qs []graph.NodeID, cfg PHPConfig) ([][]float64, error) {
	out := make([][]float64, len(qs))
	for i, q := range qs {
		r, err := sess.PHP(q, cfg)
		if err != nil {
			return nil, fmt.Errorf("queries: batch item %d (node %d): %w", i, q, err)
		}
		out[i] = r
	}
	return out, nil
}

// oracleSession runs the generic implementations with shared wdeg and
// scratch. v1/v2 are the two |V|-sized iteration vectors; every query fully
// (re)initializes the parts of them it reads.
type oracleSession struct {
	o      Oracle
	wdeg   []float64
	v1, v2 []float64
}

func (s *oracleSession) init() {
	if s.wdeg != nil {
		return
	}
	n := s.o.NumNodes()
	s.wdeg = make([]float64, n)
	for u := 0; u < n; u++ {
		s.o.ForEachNeighbor(graph.NodeID(u), func(_ graph.NodeID, w float64) {
			s.wdeg[u] += w
		})
	}
	s.v1 = make([]float64, n)
	s.v2 = make([]float64, n)
}

// RWR answers random walk with restart over the generic oracle. The
// neighbor callback is hoisted out of the iteration loops: allocating a
// closure per node per iteration was measurable GC pressure at batch-query
// rates (it captures share/next by reference, so the vector swap below
// still works).
//
//pegasus:hotpath
func (s *oracleSession) RWR(q graph.NodeID, cfg RWRConfig) ([]float64, error) {
	cfg = cfg.withDefaults()
	n := s.o.NumNodes()
	if int(q) >= n {
		return nil, fmt.Errorf("queries: query node %d out of range (|V|=%d)", q, n)
	}
	s.init()
	// The session-evaluation span: a no-op unless the caller attached a
	// trace to cfg.Ctx (the serving layer does per request).
	iters := 0
	_, sp := obs.StartSpan(cfg.Ctx, "session.rwr")
	defer func() { sp.AttrInt("nodes", n); sp.AttrInt("iterations", iters); sp.End() }()
	c := 1 - cfg.Restart
	// Hot-loop locals re-sliced to n so the compiler can elide bounds
	// checks exactly as it did when these were freshly made slices.
	wdeg := s.wdeg[:n]
	r, next := s.v1[:n], s.v2[:n]
	var share float64
	spread := func(v graph.NodeID, w float64) {
		next[v] += share * w
	}
	for i := range r {
		r[i] = 1 / float64(n)
	}
	for iter := 0; iter < cfg.MaxIter; iter++ {
		if err := ctxErr(cfg.Ctx); err != nil {
			return nil, err
		}
		iters = iter + 1
		for i := range next {
			next[i] = 0
		}
		dead := 0.0
		for u := 0; u < n; u++ {
			if r[u] == 0 {
				continue
			}
			if wdeg[u] == 0 {
				dead += r[u]
				continue
			}
			share = r[u] / wdeg[u]
			s.o.ForEachNeighbor(graph.NodeID(u), spread)
		}
		delta := 0.0
		for i := range next {
			next[i] *= c
		}
		next[q] += cfg.Restart + c*dead
		for i := range next {
			d := next[i] - r[i]
			if d < 0 {
				d = -d
			}
			delta += d
		}
		r, next = next, r
		if delta < cfg.Eps {
			break
		}
	}
	out := make([]float64, n)
	copy(out, r)
	return out, nil
}

// PHP answers penalized hitting probability over the generic oracle; the
// accumulator closure is hoisted for the same reason as in RWR (it reads p
// through the captured variable, which tracks the vector swap).
//
//pegasus:hotpath
func (s *oracleSession) PHP(q graph.NodeID, cfg PHPConfig) ([]float64, error) {
	cfg = cfg.withDefaults()
	n := s.o.NumNodes()
	if int(q) >= n {
		return nil, fmt.Errorf("queries: query node %d out of range (|V|=%d)", q, n)
	}
	s.init()
	iters := 0
	_, sp := obs.StartSpan(cfg.Ctx, "session.php")
	defer func() { sp.AttrInt("nodes", n); sp.AttrInt("iterations", iters); sp.End() }()
	// Hot-loop locals re-sliced to n for bounds-check elimination.
	wdeg := s.wdeg[:n]
	p, next := s.v1[:n], s.v2[:n]
	var sum float64
	accum := func(v graph.NodeID, w float64) {
		sum += w * p[v]
	}
	for i := range p {
		p[i] = 0
	}
	p[q] = 1
	for iter := 0; iter < cfg.MaxIter; iter++ {
		if err := ctxErr(cfg.Ctx); err != nil {
			return nil, err
		}
		iters = iter + 1
		delta := 0.0
		for u := 0; u < n; u++ {
			if graph.NodeID(u) == q {
				next[u] = 1
				continue
			}
			if wdeg[u] == 0 {
				next[u] = 0
				continue
			}
			sum = 0
			s.o.ForEachNeighbor(graph.NodeID(u), accum)
			next[u] = cfg.C * sum / wdeg[u]
			if d := next[u] - p[u]; d > delta {
				delta = d
			} else if -d > delta {
				delta = -d
			}
		}
		p, next = next, p
		if delta < cfg.Eps {
			break
		}
	}
	out := make([]float64, n)
	copy(out, p)
	return out, nil
}

// summarySession runs the block-accelerated implementations with shared
// precompute. wdeg/selfW depend only on the summary (not on the query node
// or parameters), so they are computed exactly once per session. v1/v2 are
// |V|-sized iteration vectors, s1/s2 the per-supernode aggregates (the
// mass/sum and in-flow vectors); every query fully (re)initializes what it
// reads.
type summarySession struct {
	s           *summary.Summary
	wdeg, selfW []float64
	v1, v2      []float64
	s1, s2      []float64
}

func (ss *summarySession) init() {
	if ss.wdeg != nil {
		return
	}
	n := ss.s.NumNodes()
	ns := ss.s.NumSupernodes()
	ss.wdeg = make([]float64, n)
	ss.selfW = make([]float64, ns)
	for a := 0; a < ns; a++ {
		var aw float64
		ss.s.ForEachSuperNeighbor(uint32(a), func(b uint32, w float64) {
			cnt := len(ss.s.Members(b))
			if b == uint32(a) {
				ss.selfW[a] = w
				cnt-- // a member is not its own neighbor
			}
			aw += w * float64(cnt)
		})
		for _, u := range ss.s.Members(uint32(a)) {
			ss.wdeg[u] = aw
		}
	}
	ss.v1 = make([]float64, n)
	ss.v2 = make([]float64, n)
	ss.s1 = make([]float64, ns)
	ss.s2 = make([]float64, ns)
}

// RWR is the block-accelerated random walk with restart. The
// super-neighbor callback is hoisted out of the iteration loops (it reads
// the current supernode through the captured index variable), so the inner
// loops run allocation-free.
//
//pegasus:hotpath
func (ss *summarySession) RWR(q graph.NodeID, cfg RWRConfig) ([]float64, error) {
	cfg = cfg.withDefaults()
	s := ss.s
	n := s.NumNodes()
	if int(q) >= n {
		return nil, fmt.Errorf("queries: query node %d out of range (|V|=%d)", q, n)
	}
	ss.init()
	iters := 0
	_, sp := obs.StartSpan(cfg.Ctx, "session.rwr")
	defer func() { sp.AttrInt("nodes", n); sp.AttrInt("iterations", iters); sp.End() }()
	c := 1 - cfg.Restart
	ns := s.NumSupernodes()
	// Hot-loop locals re-sliced to their lengths so the compiler can elide
	// bounds checks exactly as it did when these were freshly made slices.
	wdeg, selfW := ss.wdeg[:n], ss.selfW[:ns]
	r, next := ss.v1[:n], ss.v2[:n]
	mass := ss.s1[:ns]    // Σ_{u∈A} r[u]/wdeg[u]
	superIn := ss.s2[:ns] // Σ_{B adj A} w_AB · mass_B
	var cur int
	inflow := func(b uint32, w float64) {
		superIn[cur] += w * mass[b]
	}
	for i := range r {
		r[i] = 1 / float64(n)
	}
	for iter := 0; iter < cfg.MaxIter; iter++ {
		if err := ctxErr(cfg.Ctx); err != nil {
			return nil, err
		}
		iters = iter + 1
		dead := 0.0
		for a := range mass {
			mass[a] = 0
		}
		for u := 0; u < n; u++ {
			if wdeg[u] == 0 {
				dead += r[u]
				continue
			}
			mass[s.Supernode(graph.NodeID(u))] += r[u] / wdeg[u]
		}
		for a := 0; a < ns; a++ {
			superIn[a] = 0
		}
		for cur = 0; cur < ns; cur++ {
			s.ForEachSuperNeighbor(uint32(cur), inflow)
		}
		delta := 0.0
		for u := 0; u < n; u++ {
			su := s.Supernode(graph.NodeID(u))
			in := superIn[su]
			if selfW[su] > 0 && wdeg[u] > 0 {
				in -= selfW[su] * (r[u] / wdeg[u]) // u is not its own neighbor
			}
			next[u] = c * in
		}
		next[q] += cfg.Restart + c*dead
		for i := range next {
			d := next[i] - r[i]
			if d < 0 {
				d = -d
			}
			delta += d
		}
		r, next = next, r
		if delta < cfg.Eps {
			break
		}
	}
	out := make([]float64, n)
	copy(out, r)
	return out, nil
}

// PHP is the block-accelerated penalized hitting probability; the
// super-neighbor callback is hoisted exactly as in RWR.
//
//pegasus:hotpath
func (ss *summarySession) PHP(q graph.NodeID, cfg PHPConfig) ([]float64, error) {
	cfg = cfg.withDefaults()
	s := ss.s
	n := s.NumNodes()
	if int(q) >= n {
		return nil, fmt.Errorf("queries: query node %d out of range (|V|=%d)", q, n)
	}
	ss.init()
	iters := 0
	_, sp := obs.StartSpan(cfg.Ctx, "session.php")
	defer func() { sp.AttrInt("nodes", n); sp.AttrInt("iterations", iters); sp.End() }()
	ns := s.NumSupernodes()
	// Hot-loop locals re-sliced to their lengths for bounds-check
	// elimination.
	wdeg, selfW := ss.wdeg[:n], ss.selfW[:ns]
	p, next := ss.v1[:n], ss.v2[:n]
	sumPHP := ss.s1[:ns]  // Σ_{v∈A} p[v]
	superIn := ss.s2[:ns] // Σ_{B adj A} w_AB · sumPHP_B
	var cur int
	inflow := func(b uint32, w float64) {
		superIn[cur] += w * sumPHP[b]
	}
	for i := range p {
		p[i] = 0
	}
	p[q] = 1
	for iter := 0; iter < cfg.MaxIter; iter++ {
		if err := ctxErr(cfg.Ctx); err != nil {
			return nil, err
		}
		iters = iter + 1
		for a := range sumPHP {
			sumPHP[a] = 0
		}
		for u := 0; u < n; u++ {
			sumPHP[s.Supernode(graph.NodeID(u))] += p[u]
		}
		for cur = 0; cur < ns; cur++ {
			superIn[cur] = 0
			s.ForEachSuperNeighbor(uint32(cur), inflow)
		}
		delta := 0.0
		for u := 0; u < n; u++ {
			if graph.NodeID(u) == q {
				next[u] = 1
				continue
			}
			if wdeg[u] == 0 {
				next[u] = 0
				continue
			}
			su := s.Supernode(graph.NodeID(u))
			in := superIn[su] - selfW[su]*p[u]
			next[u] = cfg.C * in / wdeg[u]
			if d := next[u] - p[u]; d > delta {
				delta = d
			} else if -d > delta {
				delta = -d
			}
		}
		p, next = next, p
		if delta < cfg.Eps {
			break
		}
	}
	out := make([]float64, n)
	copy(out, p)
	return out, nil
}
