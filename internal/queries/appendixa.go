package queries

import (
	"context"
	"fmt"
	"math"

	"pegasus/internal/graph"
)

// Appendix A of the paper argues that a wide range of graph algorithms
// access graphs only through the neighborhood query and therefore run
// directly on summary graphs: §I names node degrees, clustering
// coefficients, eigenvector centrality, hop counts and random walks. This
// file provides those algorithms over the Oracle abstraction, so each works
// identically on an exact graph and on a summary.

// Degrees returns every node's (weighted) degree through neighborhood
// queries only.
func Degrees(o Oracle) []float64 {
	n := o.NumNodes()
	out := make([]float64, n)
	for u := 0; u < n; u++ {
		o.ForEachNeighbor(graph.NodeID(u), func(_ graph.NodeID, w float64) {
			out[u] += w
		})
	}
	return out
}

// ClusteringCoefficient returns the local clustering coefficient of u: the
// fraction of u's neighbor pairs that are themselves adjacent. Edge weights
// are ignored (presence only).
func ClusteringCoefficient(o Oracle, u graph.NodeID) float64 {
	var ns []graph.NodeID
	o.ForEachNeighbor(u, func(v graph.NodeID, _ float64) { ns = append(ns, v) })
	if len(ns) < 2 {
		return 0
	}
	inN := make(map[graph.NodeID]bool, len(ns))
	for _, v := range ns {
		inN[v] = true
	}
	links := 0
	for _, v := range ns {
		o.ForEachNeighbor(v, func(w graph.NodeID, _ float64) {
			if w > v && inN[w] {
				links++
			}
		})
	}
	pairs := len(ns) * (len(ns) - 1) / 2
	return float64(links) / float64(pairs)
}

// PageRankConfig parameterizes PageRank.
type PageRankConfig struct {
	// Damping is the continuation probability (default 0.85).
	Damping float64
	// Eps is the L1 convergence tolerance (default 1e-9).
	Eps float64
	// MaxIter caps power iterations (default 200).
	MaxIter int
	// Ctx, when non-nil, is checked once per power iteration; a cancelled
	// context stops the iteration early, returning the current vector (check
	// Ctx.Err() to distinguish convergence from cancellation).
	Ctx context.Context
}

func (c PageRankConfig) withDefaults() PageRankConfig {
	if c.Damping == 0 {
		c.Damping = 0.85
	}
	if c.Eps == 0 {
		c.Eps = 1e-9
	}
	if c.MaxIter == 0 {
		c.MaxIter = 200
	}
	return c
}

// PageRank computes the PageRank vector over any Oracle (teleport uniform;
// dead-end mass redistributed uniformly).
func PageRank(o Oracle, cfg PageRankConfig) []float64 {
	cfg = cfg.withDefaults()
	n := o.NumNodes()
	if n == 0 {
		return nil
	}
	wdeg := make([]float64, n)
	for u := 0; u < n; u++ {
		o.ForEachNeighbor(graph.NodeID(u), func(_ graph.NodeID, w float64) {
			wdeg[u] += w
		})
	}
	r := make([]float64, n)
	next := make([]float64, n)
	for i := range r {
		r[i] = 1 / float64(n)
	}
	for iter := 0; iter < cfg.MaxIter; iter++ {
		if ctxErr(cfg.Ctx) != nil {
			break
		}
		dead := 0.0
		for i := range next {
			next[i] = 0
		}
		for u := 0; u < n; u++ {
			if wdeg[u] == 0 {
				dead += r[u]
				continue
			}
			share := r[u] / wdeg[u]
			o.ForEachNeighbor(graph.NodeID(u), func(v graph.NodeID, w float64) {
				next[v] += share * w
			})
		}
		base := (1-cfg.Damping)/float64(n) + cfg.Damping*dead/float64(n)
		delta := 0.0
		for i := range next {
			next[i] = cfg.Damping*next[i] + base
			d := next[i] - r[i]
			if d < 0 {
				d = -d
			}
			delta += d
		}
		r, next = next, r
		if delta < cfg.Eps {
			break
		}
	}
	return r
}

// EigenvectorCentrality computes the principal-eigenvector centrality by
// power iteration with L2 normalization. Iteration runs on A + I (shifted
// power iteration), which has the same eigenvectors but converges on
// bipartite graphs where plain iteration would oscillate.
func EigenvectorCentrality(o Oracle, maxIter int, eps float64) []float64 {
	n := o.NumNodes()
	if n == 0 {
		return nil
	}
	if maxIter == 0 {
		maxIter = 200
	}
	if eps == 0 {
		eps = 1e-9
	}
	r := make([]float64, n)
	next := make([]float64, n)
	for i := range r {
		r[i] = 1 / math.Sqrt(float64(n))
	}
	for iter := 0; iter < maxIter; iter++ {
		copy(next, r) // the +I shift
		for u := 0; u < n; u++ {
			if r[u] == 0 {
				continue
			}
			o.ForEachNeighbor(graph.NodeID(u), func(v graph.NodeID, w float64) {
				next[v] += w * r[u]
			})
		}
		norm := 0.0
		for _, x := range next {
			norm += x * x
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			return next
		}
		delta := 0.0
		for i := range next {
			next[i] /= norm
			d := next[i] - r[i]
			if d < 0 {
				d = -d
			}
			delta += d
		}
		r, next = next, r
		if delta < eps {
			break
		}
	}
	return r
}

// DFSOrder returns nodes in depth-first preorder from src (restricted to
// src's component), demonstrating traversals over the Oracle.
func DFSOrder(o Oracle, src graph.NodeID) []graph.NodeID {
	n := o.NumNodes()
	seen := make([]bool, n)
	var order []graph.NodeID
	stack := []graph.NodeID{src}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[u] {
			continue
		}
		seen[u] = true
		order = append(order, u)
		// Push neighbors in reverse discovery order for a stable preorder.
		var ns []graph.NodeID
		o.ForEachNeighbor(u, func(v graph.NodeID, _ float64) {
			if !seen[v] {
				ns = append(ns, v)
			}
		})
		for i := len(ns) - 1; i >= 0; i-- {
			stack = append(stack, ns[i])
		}
	}
	return order
}

// Dijkstra computes weighted shortest-path distances from src, treating
// each neighbor weight w as a traversal cost of 1/w (heavier superedges are
// "denser", hence cheaper to cross); on unweighted graphs it reduces to BFS
// distances. Unreachable nodes get +Inf.
func Dijkstra(o Oracle, src graph.NodeID) ([]float64, error) {
	n := o.NumNodes()
	if int(src) >= n {
		return nil, fmt.Errorf("queries: source %d out of range (|V|=%d)", src, n)
	}
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	h := &distHeap{}
	h.push(item{src, 0})
	for h.len() > 0 {
		it := h.pop()
		if it.d > dist[it.u] {
			continue
		}
		o.ForEachNeighbor(it.u, func(v graph.NodeID, w float64) {
			cost := 1.0
			if w > 0 {
				cost = 1 / w
			}
			if nd := it.d + cost; nd < dist[v] {
				dist[v] = nd
				h.push(item{v, nd})
			}
		})
	}
	return dist, nil
}

type item struct {
	u graph.NodeID
	d float64
}

// distHeap is a minimal binary min-heap on distance.
type distHeap struct{ xs []item }

func (h *distHeap) len() int { return len(h.xs) }

func (h *distHeap) push(it item) {
	h.xs = append(h.xs, it)
	i := len(h.xs) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.xs[p].d <= h.xs[i].d {
			break
		}
		h.xs[p], h.xs[i] = h.xs[i], h.xs[p]
		i = p
	}
}

func (h *distHeap) pop() item {
	top := h.xs[0]
	last := len(h.xs) - 1
	h.xs[0] = h.xs[last]
	h.xs = h.xs[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.xs) && h.xs[l].d < h.xs[small].d {
			small = l
		}
		if r < len(h.xs) && h.xs[r].d < h.xs[small].d {
			small = r
		}
		if small == i {
			break
		}
		h.xs[i], h.xs[small] = h.xs[small], h.xs[i]
		i = small
	}
	return top
}
