package selection

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestKthLargestSmall(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	cases := []struct {
		k    int
		want float64
	}{
		{1, 9}, {2, 6}, {3, 5}, {4, 4}, {5, 3}, {6, 2}, {7, 1}, {8, 1},
	}
	for _, c := range cases {
		if got := KthLargest(xs, c.k); got != c.want {
			t.Errorf("KthLargest(k=%d) = %v, want %v", c.k, got, c.want)
		}
	}
}

func TestKthSmallestSmall(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if got := KthSmallest(xs, 1); got != 1 {
		t.Errorf("KthSmallest(1) = %v, want 1", got)
	}
	if got := KthSmallest(xs, 5); got != 5 {
		t.Errorf("KthSmallest(5) = %v, want 5", got)
	}
}

func TestInputNotMutated(t *testing.T) {
	xs := []float64{5, 4, 3, 2, 1, 0, -1, 7, 8, 9, 2, 2}
	cp := append([]float64(nil), xs...)
	KthLargest(xs, 4)
	for i := range xs {
		if xs[i] != cp[i] {
			t.Fatal("input slice was mutated")
		}
	}
}

func TestPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { KthLargest(nil, 1) },
		func() { KthLargest([]float64{1}, 0) },
		func() { KthLargest([]float64{1}, 2) },
		func() { KthSmallest(nil, 1) },
		func() { KthSmallest([]float64{1, 2}, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestPropertyMatchesSort(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		xs := make([]float64, n)
		for i := range xs {
			// Include duplicates deliberately.
			xs[i] = float64(rng.Intn(20))
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		for trial := 0; trial < 5; trial++ {
			k := 1 + rng.Intn(n)
			if KthLargest(xs, k) != sorted[n-k] {
				return false
			}
			if KthSmallest(xs, k) != sorted[k-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLargeAllEqual(t *testing.T) {
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = 3.14
	}
	if got := KthLargest(xs, 5000); got != 3.14 {
		t.Fatalf("got %v, want 3.14", got)
	}
}

func BenchmarkKthLargest(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 100000)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KthLargest(xs, len(xs)/10)
	}
}
