// Package selection implements linear-time order statistics. The paper's
// adaptive thresholding (§III-E) sets θ to the ⌊β·|L|⌋-th largest entry of
// the rejected-reduction list L each iteration, and its complexity argument
// (Theorem 1) relies on an O(|L|) selection such as median of medians [27].
package selection

import "sort"

// KthLargest returns the k-th largest element of xs (1-based: k=1 is the
// maximum). It runs in expected O(n) using quickselect with median-of-medians
// pivots (worst-case linear). xs is not modified. It panics if k is out of
// range or xs is empty.
func KthLargest(xs []float64, k int) float64 {
	if len(xs) == 0 {
		panic("selection: empty input")
	}
	if k < 1 || k > len(xs) {
		panic("selection: k out of range")
	}
	buf := make([]float64, len(xs))
	copy(buf, xs)
	// k-th largest is the (n-k)-th smallest (0-based).
	return selectKth(buf, len(buf)-k)
}

// KthSmallest returns the k-th smallest element (1-based).
func KthSmallest(xs []float64, k int) float64 {
	if len(xs) == 0 {
		panic("selection: empty input")
	}
	if k < 1 || k > len(xs) {
		panic("selection: k out of range")
	}
	buf := make([]float64, len(xs))
	copy(buf, xs)
	return selectKth(buf, k-1)
}

// selectKth returns the element that would be at index k if buf were sorted
// ascending. It mutates buf.
func selectKth(buf []float64, k int) float64 {
	lo, hi := 0, len(buf)
	for hi-lo > 5 {
		pivot := medianOfMedians(buf[lo:hi])
		lt, gt := partition3(buf, lo, hi, pivot)
		switch {
		case k < lt:
			hi = lt
		case k >= gt:
			lo = gt
		default:
			return pivot
		}
	}
	seg := buf[lo:hi]
	sort.Float64s(seg)
	return seg[k-lo]
}

// partition3 performs a three-way partition of buf[lo:hi] around pivot and
// returns boundaries (lt, gt) such that buf[lo:lt] < pivot,
// buf[lt:gt] == pivot, buf[gt:hi] > pivot.
func partition3(buf []float64, lo, hi int, pivot float64) (int, int) {
	lt, i, gt := lo, lo, hi
	for i < gt {
		switch {
		case buf[i] < pivot:
			buf[i], buf[lt] = buf[lt], buf[i]
			lt++
			i++
		case buf[i] > pivot:
			gt--
			buf[i], buf[gt] = buf[gt], buf[i]
		default:
			i++
		}
	}
	return lt, gt
}

// medianOfMedians returns a pivot guaranteed to be between the 30th and 70th
// percentile of xs, by the classic groups-of-5 construction [27].
func medianOfMedians(xs []float64) float64 {
	n := len(xs)
	if n <= 5 {
		return median5(xs)
	}
	medians := make([]float64, 0, (n+4)/5)
	for i := 0; i < n; i += 5 {
		j := i + 5
		if j > n {
			j = n
		}
		medians = append(medians, median5(xs[i:j]))
	}
	return selectKth(medians, len(medians)/2)
}

// median5 returns the median of at most 5 elements without mutating input.
func median5(xs []float64) float64 {
	var tmp [5]float64
	s := tmp[:len(xs)]
	copy(s, xs)
	sort.Float64s(s)
	return s[len(s)/2]
}
